(* grt-inspect: examine a saved recording — identity, slots, interaction
   histogram — diff two recordings for remote debugging (§3.2), or render
   the phase timeline of a session report.

     dune exec bin/grt_inspect.exe -- mnist.grt
     dune exec bin/grt_inspect.exe -- --diff healthy.grt suspect.grt
     dune exec bin/grt_inspect.exe -- --timeline mnist-report.json
     dune exec bin/grt_inspect.exe -- --cache fleet-cache.json
*)

open Cmdliner

let file_arg =
  let doc = "Recording file to inspect." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let diff_arg =
  let doc = "Compare $(docv) (the subject) against FILE (the reference)." in
  Arg.(value & opt (some string) None & info [ "d"; "diff" ] ~docv:"SUBJECT" ~doc)

let timeline_arg =
  let doc =
    "Render the session report $(docv) (written by grt-record --report): per-phase time \
     attribution and latency-histogram quantiles."
  in
  Arg.(value & opt (some string) None & info [ "t"; "timeline" ] ~docv:"REPORT" ~doc)

let entries_arg =
  let doc = "Dump the first $(docv) entries." in
  Arg.(value & opt int 0 & info [ "e"; "entries" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Render the recording-cache listing $(docv) (written by grt-fleet --json \
     or --cache-out)."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"CACHE" ~doc)

let fleet_arg =
  let doc =
    "Render the fleet report $(docv) (written by grt-fleet --report): \
     service headline, SLO quantile rollups, hottest keys and memo-cache \
     profiles."
  in
  Arg.(value & opt (some string) None & info [ "fleet" ] ~docv:"REPORT" ~doc)

exception Unreadable of string

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> raise (Unreadable e)
  | ic ->
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    b

let load path =
  match Grt.Recording.verify_and_parse ~key:Grt.Orchestrate.cloud_signing_key (read_file path) with
  | Ok r -> Ok r
  | Error e -> Error (path ^ ": " ^ e)

let pp_entry ppf = function
  | Grt.Recording.Reg_write { reg; value } ->
    Format.fprintf ppf "write %-22s <- %#Lx" (Grt_gpu.Regs.name reg) value
  | Grt.Recording.Reg_read { reg; value; verify } ->
    Format.fprintf ppf "read  %-22s = %#Lx%s" (Grt_gpu.Regs.name reg) value
      (if verify then "" else "  (nondet, unverified)")
  | Grt.Recording.Poll { reg; mask; cond; _ } ->
    Format.fprintf ppf "poll  %-22s until %#Lx %s" (Grt_gpu.Regs.name reg) mask
      (match cond with Grt.Recording.Until_set -> "set" | Grt.Recording.Until_clear -> "clear")
  | Grt.Recording.Wait_irq { line } -> Format.fprintf ppf "wait-irq line %d" line
  | Grt.Recording.Mem_load { pages } ->
    Format.fprintf ppf "mem-load %d pages (%s)" (List.length pages)
      (Grt_util.Hexdump.size_to_string (List.length pages * Grt_gpu.Mem.page_size))
  | Grt.Recording.Mem_load_enc { records } ->
    let body_bytes =
      List.fold_left (fun acc (_, _, body) -> acc + Bytes.length body) 0 records
    in
    Format.fprintf ppf "mem-load %d tagged pages (%s encoded: %s)" (List.length records)
      (Grt_util.Hexdump.size_to_string body_bytes)
      (String.concat ","
         (List.map
            (fun (_, enc, _) -> Grt.Memsync.encoding_name enc)
            records))

let inspect path dump_n =
  match load path with
  | Error e -> `Error (false, e)
  | Ok r ->
    let count k = Grt.Recording.count_entries r k in
    Printf.printf "recording: %s\n" path;
    Printf.printf "  workload:   %s\n" r.Grt.Recording.workload;
    (match Grt_gpu.Sku.find_by_id r.Grt.Recording.gpu_id with
    | Some sku -> Printf.printf "  GPU:        %s (%Lx)\n" sku.Grt_gpu.Sku.name r.Grt.Recording.gpu_id
    | None -> Printf.printf "  GPU:        unknown (%Lx)\n" r.Grt.Recording.gpu_id);
    Printf.printf "  size:       %s\n"
      (Grt_util.Hexdump.size_to_string (Grt.Recording.size_bytes r));
    Printf.printf "  entries:    %d (writes %d, reads %d, polls %d, irqs %d, pages %d)\n"
      (Array.length r.Grt.Recording.entries)
      (count `Writes) (count `Reads) (count `Polls) (count `Irqs) (count `Mem_pages);
    Printf.printf "  slots:\n";
    List.iter
      (fun s ->
        Printf.printf "    %-8s %-10s va=%#Lx %s (model %s)\n"
          (match s.Grt.Recording.kind with
          | `Input -> "input"
          | `Output -> "output"
          | `Param -> "param")
          s.Grt.Recording.slot_name s.Grt.Recording.va
          (Grt_util.Hexdump.size_to_string s.Grt.Recording.actual_bytes)
          (Grt_util.Hexdump.size_to_string s.Grt.Recording.model_bytes))
      r.Grt.Recording.slots;
    if dump_n > 0 then begin
      Printf.printf "  first %d entries:\n" dump_n;
      Array.iteri
        (fun i e -> if i < dump_n then Format.printf "    %4d  %a@." i pp_entry e)
        r.Grt.Recording.entries
    end;
    `Ok ()

(* Display path: lenient validation, so a report written by a newer (or
   older) grt-record still renders — absent sections print as "n/a". A
   fleet report passed by mistake is dispatched to the fleet view. *)
let timeline path =
  match Grt_util.Json.parse (Bytes.to_string (read_file path)) with
  | Error e -> `Error (false, path ^ ": " ^ e)
  | Ok json -> (
    let schema_of j =
      match j with
      | Grt_util.Json.Obj fields -> (
        match List.assoc_opt "schema" fields with
        | Some (Grt_util.Json.Str s) -> Some s
        | _ -> None)
      | _ -> None
    in
    if schema_of json = Some Grt.Report.fleet_schema then
      match Grt.Report.validate_fleet json with
      | Error e -> `Error (false, path ^ ": " ^ e)
      | Ok () ->
        Format.printf "%a" Grt.Report.pp_fleet json;
        `Ok ()
    else
      match Grt.Report.validate_lenient json with
      | Error e -> `Error (false, path ^ ": " ^ e)
      | Ok () ->
        Format.printf "%a" Grt.Report.pp_timeline json;
        `Ok ())

let fleet path =
  match Grt_util.Json.parse (Bytes.to_string (read_file path)) with
  | Error e -> `Error (false, path ^ ": " ^ e)
  | Ok json -> (
    match Grt.Report.validate_fleet json with
    | Error e -> `Error (false, path ^ ": " ^ e)
    | Ok () ->
      Format.printf "%a" Grt.Report.pp_fleet json;
      `Ok ())

(* Cache listings come from grt-fleet as {"fleet": ..., "cache": [rows]} or
   {"cache": [rows]}; render the rows as the same table grt-fleet prints. *)
let cache_listing path =
  let module Json = Grt_util.Json in
  match Json.parse (Bytes.to_string (read_file path)) with
  | Error e -> `Error (false, path ^ ": " ^ e)
  | Ok json -> (
    let rows =
      match json with
      | Json.Obj fields -> (
        match List.assoc_opt "cache" fields with
        | Some (Json.Arr rows) -> Some rows
        | _ -> None)
      | Json.Arr rows -> Some rows
      | _ -> None
    in
    match rows with
    | None -> `Error (false, path ^ ": no \"cache\" array found")
    | Some rows ->
      let str field row =
        match row with
        | Json.Obj fields -> (
          match List.assoc_opt field fields with Some (Json.Str s) -> s | _ -> "?")
        | _ -> "?"
      in
      let num field row =
        match row with
        | Json.Obj fields -> (
          match List.assoc_opt field fields with
          | Some (Json.Num n) -> int_of_float n
          | _ -> 0)
        | _ -> 0
      in
      let resident row =
        match row with
        | Json.Obj fields -> (
          match List.assoc_opt "resident" fields with
          | Some (Json.Bool b) -> b
          | _ -> false)
        | _ -> false
      in
      Printf.printf "recording cache: %s (%d keys)\n" path (List.length rows);
      Printf.printf "%-52s %8s %10s %6s %5s %6s\n" "key (net/SKU/runtime/mode)"
        "resident" "blob(B)" "hits" "rec" "evict";
      List.iter
        (fun row ->
          Printf.printf "%-52s %8s %10d %6d %5d %6d\n" (str "label" row)
            (if resident row then "yes" else "-")
            (num "blob_bytes" row) (num "hits" row) (num "recordings" row)
            (num "evictions" row))
        rows;
      `Ok ())

let rec run path diff timeline_path dump_n cache_path fleet_path =
  try run_inner path diff timeline_path dump_n cache_path fleet_path
  with Unreadable e -> `Error (false, e)

and run_inner path diff timeline_path dump_n cache_path fleet_path =
  match (fleet_path, cache_path, timeline_path, path, diff) with
  | Some report, _, _, _, _ -> fleet report
  | None, Some cache, _, _, _ -> cache_listing cache
  | None, None, Some report, _, _ -> timeline report
  | None, None, None, None, _ ->
    `Error
      ( true,
        "a recording FILE (or --timeline REPORT, --fleet REPORT, or --cache CACHE) is required" )
  | None, None, None, Some path, None -> inspect path dump_n
  | None, None, None, Some path, Some subject_path -> (
    match (load path, load subject_path) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok reference, Ok subject ->
      let report = Grt.Debugcheck.compare_logs ~reference ~subject in
      Format.printf "%a@." Grt.Debugcheck.pp_report report;
      if Grt.Debugcheck.healthy report then `Ok () else `Error (false, "logs diverge"))

let cmd =
  let doc = "inspect or diff GR-T recordings, or render session/fleet reports" in
  let info = Cmd.info "grt-inspect" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ file_arg $ diff_arg $ timeline_arg $ entries_arg $ cache_arg $ fleet_arg))

let () = exit (Cmd.eval cmd)
