(* grt-record: run a GR-T recording session and save the signed recording.

     dune exec bin/grt_record.exe -- --net MNIST --mode OursMDS \
         --profile wifi --sku "Mali-G71 MP8" -o mnist.grt
*)

open Cmdliner

let net_arg =
  let doc = "Workload: MNIST, AlexNet, MobileNet, SqueezeNet, ResNet12, VGG16 or GatedNet." in
  Arg.(value & opt string "MNIST" & info [ "n"; "net" ] ~docv:"NET" ~doc)

let mode_arg =
  let doc = "Recorder configuration: Naive, OursM, OursMD or OursMDS." in
  Arg.(value & opt string "OursMDS" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let profile_arg =
  let doc = "Network conditions: wifi, cellular or lan." in
  Arg.(value & opt string "wifi" & info [ "p"; "profile" ] ~docv:"PROFILE" ~doc)

let sku_arg =
  let doc = "Client GPU model (see --list-skus)." in
  Arg.(value & opt string "Mali-G71 MP8" & info [ "s"; "sku" ] ~docv:"SKU" ~doc)

let seed_arg =
  let doc = "Deterministic session seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let drop_prob_arg =
  let doc =
    "Message drop probability in [0,1) applied to the chosen profile; lost exchanges are \
     retransmitted with exponential backoff. The recording stays bit-identical, only the \
     delay and energy change."
  in
  Arg.(value & opt float 0.0 & info [ "drop-prob" ] ~docv:"P" ~doc)

let window_arg =
  let doc =
    "Link sliding-window size: up to $(docv) exchanges in flight with go-back-N \
     retransmission. 1 (the default) is stop-and-wait. The recording stays bit-identical, \
     only the delay and energy change."
  in
  Arg.(value & opt int 1 & info [ "w"; "window" ] ~docv:"N" ~doc)

let max_inflight_arg =
  let doc =
    "Cap on speculative commits outstanding at once; dispatching past the cap validates the \
     oldest first. 0 (the default) means unbounded."
  in
  Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)

let memsync_dedup_arg =
  let doc =
    "Content-addressed memsync dedup: pages whose body the peer already holds ship as an \
     8-byte hash reference. Changes the recording's page-record format (still replayable on \
     this build); off by default to keep recordings byte-identical with older builds."
  in
  Arg.(value & flag & info [ "memsync-dedup" ] ~doc)

let memsync_adaptive_arg =
  let doc =
    "Per-page adaptive memsync encoding: each shipped page uses the cheapest of raw, \
     range-coded raw, delta, range-coded delta or (with --memsync-dedup) a hash reference, \
     instead of unconditional delta+range-coding."
  in
  Arg.(value & flag & info [ "memsync-adaptive" ] ~doc)

let out_arg =
  let doc = "Write the signed recording to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Record with span tracing on and write Chrome trace-event JSON to $(docv) (load it in \
     Perfetto or chrome://tracing). Tracing observes the virtual clock without moving it, so \
     the recording, counters and energy are identical to an untraced run."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc =
    "Write a JSON session report (summary, counters, latency histograms, per-phase time \
     attribution) to $(docv). Implies the same zero-cost observation as --trace-out."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let trace_capacity_arg =
  let doc =
    "Capacity of the diagnostic event ring dumped on failure (and exported to the report); \
     older events are evicted past it."
  in
  Arg.(value & opt int 4096 & info [ "trace-capacity" ] ~docv:"N" ~doc)

let list_skus_arg =
  let doc = "List known GPU SKUs and exit." in
  Arg.(value & flag & info [ "list-skus" ] ~doc)

let stats_arg =
  let doc = "Print the full counter set after recording." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let profile_of_name = function
  | "wifi" -> Some Grt_net.Profile.wifi
  | "cellular" -> Some Grt_net.Profile.cellular
  | "lan" -> Some Grt_net.Profile.lan
  | _ -> None

let write_text path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let run net_name mode_name profile_name sku_name seed drop_prob window max_inflight
    memsync_dedup memsync_adaptive out trace_out report_out trace_capacity list_skus stats =
  if list_skus then begin
    List.iter
      (fun s -> Format.printf "%a@." Grt_gpu.Sku.pp s)
      Grt_gpu.Sku.all;
    `Ok ()
  end
  else
    match
      ( Grt_mlfw.Zoo.find net_name,
        Grt.Mode.of_name mode_name,
        profile_of_name profile_name,
        Grt_gpu.Sku.find sku_name )
    with
    | None, _, _, _ -> `Error (false, "unknown network " ^ net_name)
    | _, None, _, _ -> `Error (false, "unknown mode " ^ mode_name)
    | _, _, None, _ -> `Error (false, "unknown profile " ^ profile_name)
    | _, _, _, None -> `Error (false, "unknown SKU " ^ sku_name ^ " (try --list-skus)")
    | Some net, Some mode, Some profile, Some sku ->
      if drop_prob < 0. || drop_prob >= 1. then `Error (false, "--drop-prob must be in [0,1)")
      else if window < 1 then `Error (false, "--window must be >= 1")
      else if max_inflight < 0 then `Error (false, "--max-inflight must be >= 0")
      else if trace_capacity < 1 then `Error (false, "--trace-capacity must be >= 1")
      else begin
      let profile =
        if drop_prob > 0. then Grt_net.Profile.degrade ~drop_prob profile else profile
      in
      Printf.printf "recording %s (%d GPU jobs) on %s, %s over %s...\n%!" net_name
        (Grt_mlfw.Network.job_count net) sku_name (Grt.Mode.name mode) profile.Grt_net.Profile.name;
      let config =
        let default = Grt.Mode.default_config mode in
        let cfg =
          {
            default with
            Grt.Mode.max_inflight = (if max_inflight > 0 then max_inflight else 0);
            memsync_dedup;
            memsync_adaptive;
          }
        in
        if cfg = default then None else Some cfg
      in
      let observe = trace_out <> None || report_out <> None in
      let o =
        Grt.Orchestrate.record ?config ~window ~trace_capacity ~observe ~profile ~mode ~sku ~net
          ~seed:(Int64.of_int seed) ()
      in
      Printf.printf
        "done.\n\
        \  recording delay: %.1f s (virtual)\n\
        \  blocking RTTs:   %d\n\
        \  mem sync:        %s on the wire (%s raw)\n\
        \  commits:         %d (%d speculated)\n\
        \  client energy:   %.1f J\n\
        \  recording size:  %s (%d entries)\n"
        o.Grt.Orchestrate.total_s o.Grt.Orchestrate.blocking_rtts
        (Grt_util.Hexdump.size_to_string o.Grt.Orchestrate.sync_wire_bytes)
        (Grt_util.Hexdump.size_to_string o.Grt.Orchestrate.sync_raw_bytes)
        o.Grt.Orchestrate.commits_total o.Grt.Orchestrate.commits_speculated
        o.Grt.Orchestrate.client_energy_j
        (Grt_util.Hexdump.size_to_string (Bytes.length o.Grt.Orchestrate.blob))
        (Array.length o.Grt.Orchestrate.recording.Grt.Recording.entries);
      if drop_prob > 0. then
        Printf.printf "  lossy link:      %d retransmits, %d link-down recoveries\n"
          o.Grt.Orchestrate.retransmits o.Grt.Orchestrate.link_downs;
      if window > 1 then
        Printf.printf "  window:          %d (%d window stalls, %d go-back-N resends)\n" window
          (Grt_sim.Counters.get_int o.Grt.Orchestrate.counters "net.window_stalls")
          (Grt_sim.Counters.get_int o.Grt.Orchestrate.counters "net.gbn_retransmits");
      (match out with
      | Some path ->
        let oc = open_out_bin path in
        output_bytes oc o.Grt.Orchestrate.blob;
        close_out oc;
        Printf.printf "  wrote %s\n" path
      | None -> ());
      (match (trace_out, o.Grt.Orchestrate.tracer) with
      | Some path, Some tracer ->
        write_text path (Grt_sim.Tracer.to_chrome_json tracer);
        Printf.printf "  wrote trace %s (%d spans)\n" path (Grt_sim.Tracer.span_count tracer)
      | _ -> ());
      (match report_out with
      | Some path ->
        let report =
          Grt.Report.of_outcome ~workload:net_name ~mode:(Grt.Mode.name mode)
            ~profile:profile.Grt_net.Profile.name ~seed:(Int64.of_int seed) o
        in
        write_text path (Grt_util.Json.to_string report ^ "\n");
        Printf.printf "  wrote report %s\n" path
      | None -> ());
      if stats then Format.printf "%a" Grt_sim.Counters.pp o.Grt.Orchestrate.counters;
      `Ok ()
      end

let cmd =
  let doc = "record a GPU workload with the GR-T cloud recording service (simulated)" in
  let info = Cmd.info "grt-record" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ net_arg $ mode_arg $ profile_arg $ sku_arg $ seed_arg $ drop_prob_arg
       $ window_arg $ max_inflight_arg $ memsync_dedup_arg $ memsync_adaptive_arg $ out_arg
       $ trace_out_arg $ report_arg $ trace_capacity_arg $ list_skus_arg $ stats_arg))

let () = exit (Cmd.eval cmd)
