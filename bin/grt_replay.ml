(* grt-replay: verify and replay a saved recording inside the (simulated)
   client TEE, injecting a fresh input and the model parameters.

     dune exec bin/grt_replay.exe -- -r mnist.grt --sku "Mali-G71 MP8"
*)

open Cmdliner

let recording_arg =
  let doc = "Signed recording file produced by grt-record." in
  Arg.(required & opt (some string) None & info [ "r"; "recording" ] ~docv:"FILE" ~doc)

let sku_arg =
  let doc = "GPU model of this client (must match the recording)." in
  Arg.(value & opt string "Mali-G71 MP8" & info [ "s"; "sku" ] ~docv:"SKU" ~doc)

let input_seed_arg =
  let doc = "Seed for the synthetic fresh input tensor." in
  Arg.(value & opt int 7 & info [ "input-seed" ] ~docv:"SEED" ~doc)

let param_seed_arg =
  let doc =
    "Seed for the model parameters (use the seed the workload was trained/recorded with \
     natively to compare outputs)."
  in
  Arg.(value & opt int 42 & info [ "param-seed" ] ~docv:"SEED" ~doc)

let top_arg =
  let doc = "Print the top $(docv) classes." in
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let run recording_path sku_name input_seed param_seed top =
  match Grt_gpu.Sku.find sku_name with
  | None -> `Error (false, "unknown SKU " ^ sku_name)
  | Some sku -> (
    let blob = try read_file recording_path with Sys_error e -> failwith e in
    (* Peek at the workload name to regenerate inputs/params of the right
       shape. (Signature verification happens again inside the replayer.) *)
    match Grt.Recording.verify_and_parse ~key:Grt.Orchestrate.cloud_signing_key blob with
    | Error e -> `Error (false, "recording rejected: " ^ e)
    | Ok rec_t -> (
      match Grt_mlfw.Zoo.find rec_t.Grt.Recording.workload with
      | None -> `Error (false, "recording is for unknown workload " ^ rec_t.Grt.Recording.workload)
      | Some net -> (
        let plan = Grt_mlfw.Network.expand net in
        let input = Grt_mlfw.Runner.input_values plan ~seed:(Int64.of_int input_seed) in
        let params = Grt_mlfw.Runner.weight_values plan ~seed:(Int64.of_int param_seed) in
        Printf.printf "replaying %s (%d entries) on %s...\n%!" rec_t.Grt.Recording.workload
          (Array.length rec_t.Grt.Recording.entries)
          sku_name;
        match
          Grt.Orchestrate.replay_recording ~sku ~blob ~input ~params
            ~seed:(Int64.of_int input_seed) ()
        with
        | exception Grt.Replayer.Rejected msg -> `Error (false, "replay rejected: " ^ msg)
        | exception Grt.Replayer.Divergence { kind; index; reg; expected; got } ->
          `Error
            ( false,
              Printf.sprintf
                "replay diverged at entry %d (reg %#x, %s): expected %Ld, GPU said %Ld" index reg
                (Grt.Replayer.divergence_kind_name kind)
                expected got )
        | ro ->
          let r = ro.Grt.Orchestrate.r in
          Printf.printf
            "done in %.2f ms: %d entries applied, %d reads verified, %d nondeterministic \
             skipped\n"
            (r.Grt.Replayer.delay_s *. 1e3)
            r.Grt.Replayer.entries_applied r.Grt.Replayer.reads_verified
            r.Grt.Replayer.reads_skipped_nondet;
          let out = r.Grt.Replayer.output in
          let ranked =
            List.sort
              (fun (_, a) (_, b) -> compare b a)
              (Array.to_list (Array.mapi (fun i v -> (i, v)) out))
          in
          List.iteri
            (fun rank (cls, p) ->
              if rank < top then Printf.printf "  #%d class %2d  %5.1f%%\n" (rank + 1) cls (100. *. p))
            ranked;
          `Ok ())))

let cmd =
  let doc = "replay a GR-T recording inside the client TEE (simulated)" in
  let info = Cmd.info "grt-replay" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(ret (const run $ recording_arg $ sku_arg $ input_seed_arg $ param_seed_arg $ top_arg))

let () = exit (Cmd.eval cmd)
