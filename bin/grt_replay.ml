(* grt-replay: verify and replay a saved recording inside the (simulated)
   client TEE, injecting a fresh input and the model parameters.

     dune exec bin/grt_replay.exe -- -r mnist.grt --sku "Mali-G71 MP8"

   --compiled switches to the replay-compiler fast path (compile once,
   stream-verify chunks during execution); --batch N replays N fresh inputs
   through one compiled program and session; --attest emits a signed replay
   token binding the recording's Merkle root, the SKU and the entry count. *)

open Cmdliner

let recording_arg =
  let doc = "Signed recording file produced by grt-record." in
  Arg.(required & opt (some string) None & info [ "r"; "recording" ] ~docv:"FILE" ~doc)

let sku_arg =
  let doc = "GPU model of this client (must match the recording)." in
  Arg.(value & opt string "Mali-G71 MP8" & info [ "s"; "sku" ] ~docv:"SKU" ~doc)

let input_seed_arg =
  let doc = "Seed for the synthetic fresh input tensor." in
  Arg.(value & opt int 7 & info [ "input-seed" ] ~docv:"SEED" ~doc)

let param_seed_arg =
  let doc =
    "Seed for the model parameters (use the seed the workload was trained/recorded with \
     natively to compare outputs)."
  in
  Arg.(value & opt int 42 & info [ "param-seed" ] ~docv:"SEED" ~doc)

let top_arg =
  let doc = "Print the top $(docv) classes." in
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)

let compiled_arg =
  let doc =
    "Use the compiled fast path: lower the recording to a replay program once and \
     stream-verify its chunks during execution."
  in
  Arg.(value & flag & info [ "compiled" ] ~doc)

let batch_arg =
  let doc =
    "Replay $(docv) fresh inputs (seeds input-seed, input-seed+1, ...) through one \
     session. Implies --compiled for N > 1."
  in
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)

let attest_arg =
  let doc =
    "After a successful replay, emit a signed replay token over the recording's Merkle \
     root, the SKU and the applied entry count, and verify it."
  in
  Arg.(value & flag & info [ "attest" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let print_top ~top out =
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Array.to_list (Array.mapi (fun i v -> (i, v)) out))
  in
  List.iteri
    (fun rank (cls, p) ->
      if rank < top then Printf.printf "  #%d class %2d  %5.1f%%\n" (rank + 1) cls (100. *. p))
    ranked

let attest_token ~sku ~root ~entries =
  let nonce = 0x6e6f6e63655f31L in
  let token =
    Grt_tee.Attestation.make_replay_token ~signing_key:Grt.Orchestrate.client_attestation_key
      ~root ~gpu_id:sku.Grt_gpu.Sku.gpu_id ~entries ~nonce
  in
  let verdict =
    match
      Grt_tee.Attestation.verify_replay_token
        ~verification_key:Grt.Orchestrate.client_attestation_key ~root
        ~gpu_id:sku.Grt_gpu.Sku.gpu_id ~nonce token
    with
    | Ok () -> "verifies"
    | Error e -> "INVALID: " ^ e
  in
  Printf.printf "replay token: root=%016Lx gpu=%Lx entries=%d sig=%016Lx (%s)\n"
    token.Grt_tee.Attestation.rt_root token.Grt_tee.Attestation.rt_gpu_id
    token.Grt_tee.Attestation.rt_entries token.Grt_tee.Attestation.rt_signature verdict

let run recording_path sku_name input_seed param_seed top compiled batch attest =
  match Grt_gpu.Sku.find sku_name with
  | None -> `Error (false, "unknown SKU " ^ sku_name)
  | Some sku -> (
    let blob = try read_file recording_path with Sys_error e -> failwith e in
    (* Peek at the workload name to regenerate inputs/params of the right
       shape. (Signature verification happens again inside the replayer.) *)
    match Grt.Recording.verify_and_parse ~key:Grt.Orchestrate.cloud_signing_key blob with
    | Error e -> `Error (false, "recording rejected: " ^ e)
    | Ok rec_t -> (
      match Grt_mlfw.Zoo.find rec_t.Grt.Recording.workload with
      | None -> `Error (false, "recording is for unknown workload " ^ rec_t.Grt.Recording.workload)
      | Some net -> (
        let plan = Grt_mlfw.Network.expand net in
        let params = Grt_mlfw.Runner.weight_values plan ~seed:(Int64.of_int param_seed) in
        let batch = max 1 batch in
        let compiled = compiled || batch > 1 in
        Printf.printf "replaying %s (%d entries) on %s%s...\n%!" rec_t.Grt.Recording.workload
          (Array.length rec_t.Grt.Recording.entries)
          sku_name
          (if compiled then Printf.sprintf " [compiled, batch %d]" batch else "");
        ignore net;
        match
          if compiled then begin
            let prog = Grt.Orchestrate.compile_recording ~blob () in
            let st = Grt.Replay_prog.stats prog in
            Printf.printf
              "compiled: %d ops, %d fused writes, %d static pages, %d dynamic loads\n%!"
              st.Grt.Replay_prog.ops st.Grt.Replay_prog.fused_writes
              st.Grt.Replay_prog.static_pages st.Grt.Replay_prog.dynamic_loads;
            let g, _clock, _energy =
              Grt.Orchestrate.replay_gpushim ~sku ~seed:(Int64.of_int input_seed) ()
            in
            let last = ref None in
            let t0 = Unix.gettimeofday () in
            for i = 0 to batch - 1 do
              let seed = Int64.of_int (input_seed + i) in
              let input = Grt_mlfw.Runner.input_values plan ~seed in
              let r = Grt.Replayer.replay_compiled ~gpushim:g ~prog ~input ~params () in
              last := Some r
            done;
            let host_s = Unix.gettimeofday () -. t0 in
            if batch > 1 then
              Printf.printf "batch: %d replays in %.1f ms host time (%.0f replays/s)\n" batch
                (1e3 *. host_s)
                (float_of_int batch /. host_s);
            (Option.get !last, Some (Grt.Replay_prog.root prog))
          end
          else begin
            let input = Grt_mlfw.Runner.input_values plan ~seed:(Int64.of_int input_seed) in
            let ro =
              Grt.Orchestrate.replay_recording ~sku ~blob ~input ~params
                ~seed:(Int64.of_int input_seed) ()
            in
            (ro.Grt.Orchestrate.r, None)
          end
        with
        | exception Grt.Replayer.Rejected msg -> `Error (false, "replay rejected: " ^ msg)
        | exception Grt.Replayer.Divergence { kind; index; reg; expected; got } ->
          `Error
            ( false,
              Printf.sprintf
                "replay diverged at entry %d (reg %#x, %s): expected %Ld, GPU said %Ld" index reg
                (Grt.Replayer.divergence_kind_name kind)
                expected got )
        | r, root ->
          Printf.printf
            "done in %.2f ms: %d entries applied, %d reads verified, %d nondeterministic \
             skipped\n"
            (r.Grt.Replayer.delay_s *. 1e3)
            r.Grt.Replayer.entries_applied r.Grt.Replayer.reads_verified
            r.Grt.Replayer.reads_skipped_nondet;
          print_top ~top r.Grt.Replayer.output;
          if attest then begin
            let root =
              match root with
              | Some root -> root
              | None -> (
                (* Interpreted path: recover the root from the signed header. *)
                match
                  Grt.Recording.parse_signed ~key:Grt.Orchestrate.cloud_signing_key blob
                with
                | Ok v -> v.Grt.Recording.vroot
                | Error _ -> 0L)
            in
            attest_token ~sku ~root ~entries:r.Grt.Replayer.entries_applied
          end;
          `Ok ())))

let cmd =
  let doc = "replay a GR-T recording inside the client TEE (simulated)" in
  let info = Cmd.info "grt-replay" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ recording_arg $ sku_arg $ input_seed_arg $ param_seed_arg $ top_arg
       $ compiled_arg $ batch_arg $ attest_arg))

let () = exit (Cmd.eval cmd)
