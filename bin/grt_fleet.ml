(* grt-fleet: drive the multi-session recording service with a synthetic
   Zipf client population and report fleet-level statistics.

     dune exec bin/grt_fleet.exe -- --clients 10000
     dune exec bin/grt_fleet.exe -- --clients 500 --backend threads --list-cache
     dune exec bin/grt_fleet.exe -- --clients 2000 --json fleet.json --cache-out cache.json
*)

open Cmdliner
module Service = Grt.Service
module E = Grt.Experiments
module Json = Grt_util.Json

let clients_arg =
  let doc = "Number of simulated clients." in
  Arg.(value & opt int 10_000 & info [ "c"; "clients" ] ~docv:"N" ~doc)

let zipf_arg =
  let doc = "Zipf skew of the (network, SKU) popularity distribution." in
  Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S" ~doc)

let cache_cap_arg =
  let doc = "Cache capacity in resident recordings (LRU); 0 = unbounded." in
  Arg.(value & opt int 0 & info [ "cache-cap" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Fleet generation seed (client mix, arrivals, fault draws)." in
  Arg.(value & opt int 0x666C6565 & info [ "seed" ] ~docv:"SEED" ~doc)

let interarrival_arg =
  let doc = "Mean client interarrival time in seconds (exponential)." in
  Arg.(value & opt float 0.005 & info [ "interarrival" ] ~docv:"SECONDS" ~doc)

let sequential_arg =
  let doc =
    "Run sessions to completion in arrival order instead of multiplexing \
     them over the virtual-time scheduler (the reference semantics; same \
     blobs and counters)."
  in
  Arg.(value & flag & info [ "sequential" ] ~doc)

let backend_arg =
  let doc = "Scheduler backend: effects (OCaml 5) or threads." in
  Arg.(
    value
    & opt (some (enum [ ("effects", `Effects); ("threads", `Threads) ])) None
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let domains_arg =
  let doc =
    "Shard the fleet by share group across $(docv) OCaml domains, one \
     virtual-time scheduler per shard (outcomes, blobs and svc.* totals \
     are identical at any domain count). 1 = single scheduler; on OCaml \
     4.14 shards run serially."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Write the fleet row and cache listing as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let cache_out_arg =
  let doc =
    "Write the cache contents as JSON to $(docv) (render with grt-inspect \
     --cache)."
  in
  Arg.(value & opt (some string) None & info [ "cache-out" ] ~docv:"FILE" ~doc)

let list_cache_arg =
  let doc = "Print the recording-cache contents after the run." in
  Arg.(value & flag & info [ "l"; "list-cache" ] ~doc)

let report_arg =
  let doc =
    "Run with the observability plane on and write a versioned fleet report \
     (service counters, SLO p50/p90/p99 rollups, per-key latencies, memo \
     profiles) as JSON to $(docv). Render with grt-inspect --fleet."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Run with the observability plane on and write a Chrome trace-event \
     JSON timeline to $(docv): one track per client session plus the \
     service plane on tid 0. Load in Perfetto (ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let listing_row_json (r : Service.listing_row) =
  Json.Obj
    [
      ("key", Json.Str (Printf.sprintf "%016Lx" r.Service.row_key));
      ("label", Json.Str r.Service.row_label);
      ("resident", Json.Bool r.Service.row_resident);
      ("blob_bytes", Json.int r.Service.row_blob_bytes);
      ("hits", Json.int r.Service.row_hits);
      ("recordings", Json.int r.Service.row_recordings);
      ("evictions", Json.int r.Service.row_evictions);
    ]

let print_listing rows =
  Printf.printf "%-52s %8s %10s %6s %5s %6s\n" "key (net/SKU/runtime/mode)"
    "resident" "blob(B)" "hits" "rec" "evict";
  List.iter
    (fun (r : Service.listing_row) ->
      Printf.printf "%-52s %8s %10d %6d %5d %6d\n" r.Service.row_label
        (if r.Service.row_resident then "yes" else "-")
        r.Service.row_blob_bytes r.Service.row_hits r.Service.row_recordings
        r.Service.row_evictions)
    rows

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc

let run clients zipf cache_cap seed interarrival sequential backend domains
    json_file cache_out list_cache report_file trace_out =
  if domains < 1 then `Error (false, "--domains must be >= 1")
  else
  let options =
    {
      Service.default_fleet with
      Service.clients;
      zipf_s = zipf;
      mean_interarrival_s = interarrival;
      fleet_seed = Int64.of_int seed;
    }
  in
  let observe = report_file <> None || trace_out <> None in
  let row, svc =
    E.fleet ~options ?backend ~sequential ~observe ~cache_capacity:cache_cap
      ~domains ~now:Unix.gettimeofday ~wall:Unix.gettimeofday ()
  in
  Printf.printf "fleet: %d clients, Zipf(%.2f) over %d NNs x %d SKUs (%s)\n"
    row.E.fleet_clients zipf
    (List.length options.Service.nets)
    (List.length options.Service.skus)
    row.E.fleet_label;
  Printf.printf "  recordings      %6d  (distinct keys %d, evictions %d)\n"
    row.E.fleet_recordings row.E.distinct_keys row.E.fleet_evictions;
  Printf.printf "  served          %6d  (%d resident hits + %d coalesced; %.1f%% hit rate)\n"
    (row.E.fleet_cache_hits + row.E.fleet_coalesced)
    row.E.fleet_cache_hits row.E.fleet_coalesced
    (100. *. row.E.fleet_hit_rate);
  Printf.printf "  failures        %6d\n" row.E.fleet_failures;
  Printf.printf "  throughput      %8.1f sessions/s host (%.1fs host, %.1fs virtual)\n"
    row.E.sessions_per_s row.E.host_s row.E.virtual_s;
  Printf.printf "  turnaround      %8.2fs mean, %.2fs p95\n" row.E.mean_turnaround_s
    row.E.p95_turnaround_s;
  Printf.printf "  sync traffic    %8.2f MB wire, %d blocking RTTs\n"
    row.E.fleet_sync_wire_mb row.E.fleet_blocking_rtts;
  Printf.printf "  cross-session   %6d spec-history hits, %d shared-store page hits\n"
    row.E.spec_cross_hits row.E.sync_cross_hits;
  if not sequential then begin
    Printf.printf "  scheduler       %6d yields, %d switches\n" row.E.fleet_yields
      row.E.fleet_switches;
    if row.E.fleet_domains > 1 then begin
      Printf.printf "  domains         %6d requested (%s), %.1f sessions/s wall\n"
        row.E.fleet_domains
        (if row.E.fleet_parallel then "parallel" else "serial fallback")
        row.E.wall_sessions_per_s;
      List.iter
        (fun (s : Service.shard_stat) ->
          Printf.printf "    shard %d: %d groups, %d clients, %d yields, %d switches\n"
            s.Service.shard_index s.Service.shard_groups s.Service.shard_clients
            s.Service.shard_yields s.Service.shard_switches)
        row.E.fleet_shards
    end
  end;
  let listing = Service.cache_listing svc in
  if list_cache then begin
    Printf.printf "\ncache contents (%d keys):\n" (List.length listing);
    print_listing listing
  end;
  let cache_json = Json.Arr (List.map listing_row_json listing) in
  (match json_file with
  | Some path ->
      write_json path
        (Json.Obj [ ("fleet", E.fleet_row_json row); ("cache", cache_json) ]);
      Printf.printf "\nwrote %s\n" path
  | None -> ());
  (match cache_out with
  | Some path ->
      write_json path (Json.Obj [ ("cache", cache_json) ]);
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match report_file with
  | Some path ->
      let report =
        Grt.Report.of_fleet ~fleet:(E.fleet_row_json row) ~stats:(Service.stats svc)
          ~memo:(Grt_util.Memo_stats.to_json ())
          ~observation:(Service.observation svc) ()
      in
      write_json path report;
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Grt_sim.Tracer.tracks_chrome_json (Service.fleet_tracks svc));
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s (load in ui.perfetto.dev)\n" path
  | None -> ());
  if row.E.fleet_failures > 0 then begin
    let ring = Service.service_trace svc in
    Format.printf "@.service post-mortem ring (%d failures, %d events retained):@."
      row.E.fleet_failures
      (Grt_sim.Trace.retained ring);
    List.iter
      (fun e -> Format.printf "  %a@." Grt_sim.Trace.pp_event e)
      (Grt_sim.Trace.all ring)
  end;
  `Ok ()

let cmd =
  let doc = "drive the GR-T recording service with a Zipf client fleet" in
  let info = Cmd.info "grt-fleet" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ clients_arg $ zipf_arg $ cache_cap_arg $ seed_arg
       $ interarrival_arg $ sequential_arg $ backend_arg $ domains_arg
       $ json_arg $ cache_out_arg $ list_cache_arg $ report_arg
       $ trace_out_arg))

let () = exit (Cmd.eval cmd)
