(** Virtual time.

    Every delay in the reproduction — register MMIO latency, network round
    trips, GPU job execution, driver compute — is modeled by advancing a
    virtual clock measured in nanoseconds. Observers (e.g. the energy meter)
    can subscribe to advances to integrate over time. *)

type t

val create : unit -> t

val now_ns : t -> int64
(** Current virtual time in nanoseconds since creation. *)

val now_int : t -> int
(** [now_ns] as an unboxed [int] (time is stored as one internally; 63 bits
    of nanoseconds do not overflow). Hot paths that advance or compare
    against the clock on every simulated register access use the [_int]
    entry points to avoid boxing an [int64] per call. *)

val now_s : t -> float
(** Current virtual time in seconds. *)

val advance_ns : t -> int64 -> unit
(** [advance_ns t d] moves time forward by [d] ns. [d] must be
    non-negative. *)

val advance_s : t -> float -> unit

val advance_to : t -> int64 -> unit
(** [advance_to t deadline] moves time forward to [deadline] if it is in the
    future; no-op otherwise. *)

val advance_int : t -> int -> unit
(** [advance_ns] with an unboxed delta. *)

val advance_to_int : t -> int -> unit
(** [advance_to] with an unboxed deadline. *)

val on_advance : t -> (int64 -> int64 -> unit) -> unit
(** [on_advance t f] registers [f old_now new_now], called on every
    advance. *)

val on_advance_int : t -> (int -> int -> unit) -> unit
(** [on_advance] without the per-advance boxing; preferred for observers
    that fire on every advance (the energy integrator). *)

val set_yield_hook : t -> (unit -> unit) -> unit
(** Install the cooperative-scheduling hook: {!yield} will call [f],
    suspending the caller in favour of whatever {!Sched} decides should run
    next on the shared virtual timeline. One hook per clock (sessions own
    their clocks); installing replaces any previous hook. *)

val clear_yield_hook : t -> unit

val yield : t -> unit
(** Yield point. Blocking waits ({!Grt_net.Link} exchanges, rollback
    recompute) call this after advancing the clock; with no hook installed
    (the default, every solo session) it is a no-op, so yield points are
    free outside a scheduler. *)

type span = { start_ns : int64; stop_ns : int64 }

val time : t -> (unit -> 'a) -> 'a * span
(** [time t f] runs [f] and reports the virtual span it covered. *)

val span_s : span -> float
