module Json = Grt_util.Json

type payload =
  | Degraded of { rate : float }
  | Healthy of { rate : float }
  | Link_down of { op : string; attempts : int; extra_s : float }
  | Retransmit of { op : string; attempt : int; outage : bool }
  | Window_stall of { inflight : int }
  | Profile_swap of { draining : int }
  | Commit of { site : string; accesses : int }
  | Speculate of { site : string; checks : int }
  | Rollback of { site : string; reg : string; predicted : int64; actual : int64 }
  | Replay_live of { replayed : int }
  | Evict of { label : string; client : int; blob_bytes : int }
  | Promote of { label : string; client : int }
  | Rearm of { label : string; client : int }
  | Message of { topic : string; text : string }

let payload_topic = function
  | Degraded _ | Healthy _ | Link_down _ | Retransmit _ | Window_stall _ | Profile_swap _ ->
    "link"
  | Commit _ | Speculate _ | Rollback _ | Replay_live _ -> "shim"
  | Evict _ | Promote _ | Rearm _ -> "service"
  | Message { topic; _ } -> topic

(* Render the historical detail strings byte-for-byte: the stderr post-
   mortem dump (and any test asserting on it) predates the typed payloads. *)
let render = function
  | Degraded { rate } -> Printf.sprintf "degraded (retransmit rate %.0f%%)" (100. *. rate)
  | Healthy { rate } -> Printf.sprintf "healthy (retransmit rate %.0f%%)" (100. *. rate)
  | Link_down { op; attempts; extra_s } ->
    Printf.sprintf "link_down op=%s after %d attempts (+%.3fs)" op attempts extra_s
  | Retransmit { op; attempt; outage } ->
    Printf.sprintf "retransmit op=%s attempt=%d%s" op attempt (if outage then " (outage)" else "")
  | Window_stall { inflight } -> Printf.sprintf "window stall (%d in flight)" inflight
  | Profile_swap { draining } ->
    Printf.sprintf "profile swap: draining %d in-flight send(s)" draining
  | Commit { site; accesses } -> Printf.sprintf "commit site=%s accesses=%d" site accesses
  | Speculate { site; checks } -> Printf.sprintf "speculate site=%s checks=%d" site checks
  | Rollback { site; reg; predicted; actual } ->
    Printf.sprintf "rollback site=%s reg=%s predicted=%Lx actual=%Lx" site reg predicted actual
  | Replay_live { replayed } -> Printf.sprintf "replay complete (%d entries); going live" replayed
  | Evict { label; client; blob_bytes } ->
    Printf.sprintf "evict label=%s for=client-%d (%d bytes freed)" label client blob_bytes
  | Promote { label; client } ->
    Printf.sprintf "promote label=%s client-%d takes over recording" label client
  | Rearm { label; client } ->
    Printf.sprintf "rearm label=%s after failed recording by client-%d" label client
  | Message { text; _ } -> text

type event = { at_ns : int64; payload : payload }

let topic e = payload_topic e.payload
let detail e = render e.payload

type t = {
  clock : Clock.t;
  ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) clock =
  { clock; ring = Array.make (max 1 capacity) None; next = 0; total = 0 }

let push t e =
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let event t payload = push t { at_ns = Clock.now_ns t.clock; payload }

let absorb t events = List.iter (push t) events

let event_opt t payload = match t with Some t -> event t payload | None -> ()

let emit t ~topic text = event t (Message { topic; text })

let emitf t ~topic fmt = Format.kasprintf (fun s -> emit t ~topic s) fmt

let recent ?topic:want t n =
  let cap = Array.length t.ring in
  let matches e = match want with None -> true | Some w -> String.equal (topic e) w in
  let rec go i collected acc =
    if collected >= n || i >= cap then List.rev acc
    else
      let idx = (t.next - 1 - i + (2 * cap)) mod cap in
      match t.ring.(idx) with
      | Some e when matches e -> go (i + 1) (collected + 1) (e :: acc)
      | Some _ -> go (i + 1) collected acc
      | None -> List.rev acc
  in
  go 0 0 []

let all ?topic t = List.rev (recent ?topic t (Array.length t.ring))

let topics t =
  List.fold_left
    (fun acc e ->
      let tp = topic e in
      if List.mem tp acc then acc else acc @ [ tp ])
    [] (all t)

let count t = t.total
let retained t = min t.total (Array.length t.ring)
let capacity t = Array.length t.ring

let pp_event ppf e =
  Format.fprintf ppf "[%8.3f ms] %-12s %s" (Int64.to_float e.at_ns *. 1e-6) (topic e) (detail e)

let event_json e =
  let base kind fields =
    Json.Obj
      ((("ts_ns", Json.int64 e.at_ns) :: ("topic", Json.Str (topic e))
       :: ("kind", Json.Str kind) :: fields))
  in
  match e.payload with
  | Degraded { rate } -> base "degraded" [ ("rate", Json.float rate) ]
  | Healthy { rate } -> base "healthy" [ ("rate", Json.float rate) ]
  | Link_down { op; attempts; extra_s } ->
    base "link_down"
      [ ("op", Json.Str op); ("attempts", Json.int attempts); ("extra_s", Json.float extra_s) ]
  | Retransmit { op; attempt; outage } ->
    base "retransmit"
      [ ("op", Json.Str op); ("attempt", Json.int attempt); ("outage", Json.Bool outage) ]
  | Window_stall { inflight } -> base "window_stall" [ ("inflight", Json.int inflight) ]
  | Profile_swap { draining } -> base "profile_swap" [ ("draining", Json.int draining) ]
  | Commit { site; accesses } ->
    base "commit" [ ("site", Json.Str site); ("accesses", Json.int accesses) ]
  | Speculate { site; checks } ->
    base "speculate" [ ("site", Json.Str site); ("checks", Json.int checks) ]
  | Rollback { site; reg; predicted; actual } ->
    base "rollback"
      [
        ("site", Json.Str site);
        ("reg", Json.Str reg);
        ("predicted", Json.int64 predicted);
        ("actual", Json.int64 actual);
      ]
  | Replay_live { replayed } -> base "replay_live" [ ("replayed", Json.int replayed) ]
  | Evict { label; client; blob_bytes } ->
    base "evict"
      [ ("label", Json.Str label); ("client", Json.int client); ("blob_bytes", Json.int blob_bytes) ]
  | Promote { label; client } ->
    base "promote" [ ("label", Json.Str label); ("client", Json.int client) ]
  | Rearm { label; client } ->
    base "rearm" [ ("label", Json.Str label); ("client", Json.int client) ]
  | Message { text; _ } -> base "message" [ ("text", Json.Str text) ]

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer b (event_json e);
      Buffer.add_char b '\n')
    (all t);
  Buffer.contents b
