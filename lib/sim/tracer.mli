(** Nested span tracing over the virtual clock.

    Every recorder phase the paper accounts for (§4.1/§4.2 round trips,
    commit batches, rollbacks; §7's breakdowns) gets a typed {!category}.
    Spans nest — [with_span] runs a thunk and records the virtual-time
    interval it covered, attributing the interval to the innermost open span
    (self time) while every enclosing span still sees it in its total.
    Spans close even when the thunk raises (rollbacks unwind through open
    commit spans), so the begin/end stream is balanced by construction.

    The tracer never advances the clock and is threaded as an [option]:
    [span_opt None] is a direct call, so default (untraced) sessions are
    byte-identical to pre-tracer builds.

    Exports: {!to_chrome_json} emits Chrome trace-event JSON (loadable in
    Perfetto / [chrome://tracing]); {!summary} aggregates per-category
    self/total attribution for session reports. *)

type category =
  | Establish  (** attested channel establishment (§7.1) *)
  | Boot  (** recording-VM boot and session admission (§6) *)
  | Commit  (** deferred-batch commit, sync or speculative (§4.1) *)
  | Validate_speculation  (** waiting on + checking an async response (§4.2) *)
  | Rollback_recovery  (** misprediction / link-down rollback (§4.2) *)
  | Poll_offload  (** polling loop shipped in one message (§4.3) *)
  | Memsync_down  (** cloud→client metastate dump (§5) *)
  | Memsync_up  (** client→cloud dump with a forwarded interrupt (§5) *)
  | Link_exchange  (** one wire exchange (round trip, async send, push) *)
  | Replay_compile  (** lowering a recording into a replay program *)
  | Replay_verify  (** streaming chunk-hash check before execution *)
  | Replay_execute  (** feeding a compiled replay program to the GPU *)
  | Svc_cache_lookup  (** recording-service cache decision at admission *)
  | Svc_coalesce_wait  (** waiting on an in-flight recording for the same key *)
  | Svc_turnstile_wait  (** queued behind the per-key recording turnstile *)
  | Svc_record  (** service-driven record of a cache miss *)
  | Svc_serve_cached  (** pushing a cached blob to a client *)
  | Svc_evict  (** LRU eviction making room in the recording cache *)
  | Svc_promotion  (** a coalesced waiter promoted to recorder after a failure *)

val category_name : category -> string
(** Stable kebab-case name (e.g. ["validate-speculation"]); used as the
    Chrome event [cat] and the report key. *)

val all_categories : category list

type span = {
  sp_name : string;
  sp_cat : category;
  sp_args : (string * string) list;
  sp_start_ns : int64;
  sp_stop_ns : int64;
  sp_self_ns : int64;  (** duration minus time inside child spans *)
  sp_depth : int;  (** nesting depth at open (0 = top level) *)
}

type t

val create : ?limit:int -> Clock.t -> t
(** [limit] caps retained spans (default 1_000_000); past it, completed
    spans are dropped and counted in {!dropped}. *)

val with_span :
  t -> cat:category -> ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. Exception-safe: the span closes (and the
    exception propagates) even when the thunk raises. [args] become the
    Chrome event's [args] object. *)

val span_opt :
  t option -> cat:category -> ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_span] when a tracer is present; a direct call otherwise. *)

val instant : t -> cat:category -> ?args:(string * string) list -> string -> unit
(** Zero-duration marker event. *)

val instant_opt : t option -> cat:category -> ?args:(string * string) list -> string -> unit

val absorb : into:t -> t -> unit
(** Fold another tracer's retained spans and markers into [into]: sequence
    numbers are reassigned from [into]'s stream (preserving the source's
    internal order, so its exports render after [into]'s own events) and
    timestamps carry over unchanged — both tracers must read clocks on the
    same global timeline. Parallel fleet runs use this to merge per-domain
    service-plane tracers into the main one. *)

val spans : t -> span list
(** Completed spans, in completion order. *)

val span_count : t -> int
val dropped : t -> int
val open_depth : t -> int
(** Number of spans currently open (0 once a session unwound cleanly). *)

type cat_stat = { total_ns : int64; self_ns : int64; spans : int }

val summary : t -> (category * cat_stat) list
(** Per-category attribution over completed spans, in {!all_categories}
    order (categories with no spans included with zeros). *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON array: one ["B"]/["E"] pair per completed span
    (in well-nested emission order) plus ["i"] instants. Timestamps are
    virtual microseconds. Spans still open are omitted, so the stream stays
    balanced. *)

(** {2 Multi-track export}

    A fleet run owns many tracers — one per client session (each over its
    own session-local clock) plus one for the service itself. A {!track}
    places one tracer on a Perfetto thread lane: [track_tid] is the lane,
    [track_offset_ns] shifts the tracer's session-local timestamps onto the
    fleet-global timeline (a session that arrived at t=5ms has offset
    5_000_000). Several tracks may share a [track_tid]: a promoted waiter's
    record-phase tracer renders on the same lane as its serve-phase tracer. *)

type track = {
  track_tid : int;
  track_name : string;  (** Perfetto lane label, e.g. ["client-17"] *)
  track_offset_ns : int64;
  track_tracer : t;
}

val tracks_chrome_json : ?process_name:string -> track list -> string
(** Chrome trace-event JSON for a whole fleet: [process_name] /
    [thread_name] metadata events followed by every track's balanced
    ["B"]/["E"]/["i"] stream stamped with its [track_tid] and shifted onto
    global time. Load in Perfetto: one named lane per session. *)

val summary_json : t -> Grt_util.Json.t
(** [{"<category>": {"total_s":..,"self_s":..,"spans":..}, ...}] *)
