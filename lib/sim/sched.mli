(** Cooperative multiplexing of sessions over one virtual timeline.

    Each spawned task carries a private {!Clock} (its session-local
    timeline) plus an arrival offset; the task's global time is
    [arrival + Clock.now clock]. Blocking waits inside the task advance its
    clock and hit a {!Clock.yield} point, which suspends the task; the run
    loop always resumes the runnable task with the smallest global time
    (FIFO on ties). A session run under the scheduler therefore observes
    exactly the clock readings it would observe running alone — multiplexing
    is invisible to the session — and the interleaving is a deterministic
    function of the task set.

    Two coroutine engines back the suspension: effect handlers (OCaml >= 5,
    the default there) and a thread-baton handshake ({!Sched_threads}, the
    only engine on 4.14). Both are strictly serial — exactly one task or the
    scheduler runs at any instant — so recordings are bit-identical across
    engines and compilers. *)

type t
type task
type cond

type backend = [ `Effects | `Threads ]

val default_backend : backend
(** [`Effects] on OCaml >= 5, [`Threads] on 4.14. *)

val backend_available : backend -> bool

val backend_name : backend -> string

val create : ?backend:backend -> unit -> t
(** A fresh scheduler. An unavailable [backend] request (effects on 4.14)
    silently falls back to {!default_backend}. *)

val backend : t -> backend

val spawn :
  t -> ?arrival_ns:int64 -> name:string -> clock:Clock.t -> (unit -> unit) -> task
(** [spawn t ~arrival_ns ~name ~clock body] registers a task whose local
    timeline is [clock], entering the global timeline at [arrival_ns]
    (default 0). Installs the clock's yield hook for the task's lifetime. *)

val new_cond : unit -> cond

val await : t -> cond -> unit
(** Park the running task on [cond] until {!signal_all}. Must be called from
    inside a task body. Waiting consumes virtual time: on wake the task's
    clock has been advanced to the signal instant. *)

val signal_all : t -> cond -> unit
(** Wake every waiter at the caller's current global time, in FIFO await
    order. Callable from a task or from outside the run loop. *)

val run : t -> unit
(** Drive all tasks to completion in global virtual-time order.

    A task body that raises does not abort the run: the failure is recorded
    and the remaining tasks continue ({!failures} lists them afterwards).
    @raise Deadlock if tasks remain parked on conditions nobody signals. *)

exception Deadlock of string list

val failures : t -> (string * exn * Printexc.raw_backtrace) list

val now_ns : t -> int64
(** High-water global virtual time reached by the run loop. *)

val yields : t -> int
(** Total task suspensions (yield-point hits) so far. *)

val switches : t -> int
(** Total task resumptions by the run loop. *)

val runnable : t -> int
(** Tasks currently queued runnable (ready-heap occupancy); excludes the
    running task and tasks parked on conditions. *)

val set_switch_observer : t -> (int -> unit) option -> unit
(** Install (or clear) an observability hook called at every context switch
    with {!runnable} at that instant — the fleet plane samples it into a
    queue-depth histogram. The hook must not advance clocks or touch the
    scheduler; [None] (the default) costs one branch per switch. *)
