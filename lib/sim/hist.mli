(** Log-bucketed latency/size histograms (the distribution companion to the
    flat {!Metrics} counters).

    The paper's evaluation (§7) argues over distributions — where round
    trips, commit batches and rollbacks spend their time — so the hot paths
    record full histograms, not just totals. Buckets are powers of two:
    bucket 0 holds values [<= 0], bucket [i >= 1] holds
    [2^(i-1) <= v < 2^i]. Observation is an array increment; quantiles are
    estimated by linear interpolation inside the winning bucket, which keeps
    [quantile] monotone in its argument and bounded by the exact observed
    min/max.

    A {!set} is the session-wide registry: one histogram per typed {!key},
    threaded as an [option] beside the metrics handle so default runs pay
    nothing and stay byte-identical. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val observe : t -> int -> unit
(** Record one non-negative sample (negative samples clamp to bucket 0). *)

val count : t -> int
val sum : t -> int64
val min_value : t -> int
(** Exact observed minimum; 0 when empty. *)

val max_value : t -> int
(** Exact observed maximum; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]; 0 when empty. Monotone in [q] and
    clamped to [[min_value, max_value]]. *)

val merge : into:t -> t -> unit
(** Pointwise sum of buckets/counts; min/max combine exactly. *)

val bucket_index : int -> int
(** The bucket a value lands in (exposed for tests). *)

val bucket_count : t -> int -> int
(** Occupancy of bucket [i]. *)

val buckets : int
(** Number of buckets. *)

val summary_json : t -> Grt_util.Json.t
(** [{"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}] *)

val pp : Format.formatter -> t -> unit

(** {2 The session registry} *)

type key =
  | Rtt_ns  (** per-exchange round-trip latency charged by the link, ns *)
  | Commit_accesses  (** register accesses per commit batch (§4.1) *)
  | Spec_validate_ns
      (** speculative-commit latency from async dispatch to validation *)
  | Rollback_depth  (** validated-log entries replayed per rollback (§4.2) *)
  | Gbn_span  (** frames resent per go-back-N retransmission *)
  | Sync_down_wire  (** cloud→client memsync wire bytes per event (§5) *)
  | Sync_up_wire  (** client→cloud memsync wire bytes per event (§5) *)
  | Sync_page_wire  (** wire bytes per shipped page record, header included *)
  | Replay_chunk_bytes  (** recording-chunk bytes hashed per streaming verify *)
  | Replay_exec_entries  (** log entries applied per compiled replay *)
  | Svc_turnaround_us  (** fleet: session turnaround, arrival to outcome (µs) *)
  | Svc_ttfb_us
      (** fleet: time-to-first-byte — virtual µs from arrival until the
          session starts being served or recorded (0 for an immediate cache
          hit; the coalesce/turnstile wait otherwise) *)
  | Svc_coalesce_wait_us  (** fleet: time spent waiting on an in-flight recording *)
  | Svc_turnstile_wait_us  (** fleet: time queued behind the per-key turnstile *)
  | Sched_runnable  (** fleet: runnable tasks queued at each scheduler switch *)

val key_name : key -> string
val all_keys : key list

type set

val create_set : unit -> set
val get : set -> key -> t

val record : set -> key -> int -> unit
val record_opt : set option -> key -> int -> unit
(** No-op on [None] — the zero-cost-when-disabled path. *)

val merge_set : into:set -> set -> unit
(** {!merge} every keyed histogram pointwise — how a parallel fleet run
    folds per-domain SLO sets into one. Commutative up to the exact
    min/max/bucket sums, so merge order cannot change a report. *)

val set_json : set -> Grt_util.Json.t
(** Object keyed by {!key_name}, each value a {!summary_json}. *)
