module Json = Grt_util.Json

let buckets = 63

type t = {
  h_name : string;
  counts : int array;
  mutable count : int;
  mutable sum : int64;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(name = "") () =
  { h_name = name; counts = Array.make buckets 0; count = 0; sum = 0L; min_v = 0; max_v = 0 }

let name t = t.h_name

(* Bucket 0 holds v <= 0; bucket i >= 1 holds 2^(i-1) <= v < 2^i. *)
let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (buckets - 1)
  end

let observe t v =
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- Int64.add t.sum (Int64.of_int (max 0 v));
  if t.count = 1 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let bucket_count t i = t.counts.(i)

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i <= 0 then 0 else (1 lsl i) - 1

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    (* Fractional rank over the observed samples. *)
    let rank = q *. float_of_int (t.count - 1) in
    let target = int_of_float (Float.round rank) in
    let rec find i cum =
      if i >= buckets then float_of_int t.max_v
      else begin
        let c = t.counts.(i) in
        if target < cum + c && c > 0 then begin
          (* Linear interpolation by position inside the bucket's range. *)
          let lo = float_of_int (bucket_lo i) and hi = float_of_int (bucket_hi i) in
          let frac = if c = 1 then 0. else float_of_int (target - cum) /. float_of_int (c - 1) in
          lo +. ((hi -. lo) *. frac)
        end
        else find (i + 1) (cum + c)
      end
    in
    let v = find 0 0 in
    Float.max (float_of_int (min_value t)) (Float.min (float_of_int (max_value t)) v)
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  if src.count > 0 then begin
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- Int64.add into.sum src.sum
  end

let summary_json t =
  Json.Obj
    [
      ("count", Json.int t.count);
      ("sum", Json.int64 t.sum);
      ("min", Json.int (min_value t));
      ("max", Json.int (max_value t));
      ("p50", Json.float (quantile t 0.50));
      ("p90", Json.float (quantile t 0.90));
      ("p99", Json.float (quantile t 0.99));
    ]

let pp ppf t =
  Format.fprintf ppf "%s: n=%d sum=%Ld min=%d p50=%.0f p90=%.0f p99=%.0f max=%d" t.h_name
    t.count t.sum (min_value t) (quantile t 0.50) (quantile t 0.90) (quantile t 0.99)
    (max_value t)

(* ---- the session registry ---- *)

type key =
  | Rtt_ns
  | Commit_accesses
  | Spec_validate_ns
  | Rollback_depth
  | Gbn_span
  | Sync_down_wire
  | Sync_up_wire
  | Sync_page_wire
  | Replay_chunk_bytes
  | Replay_exec_entries
  | Svc_turnaround_us
  | Svc_ttfb_us
  | Svc_coalesce_wait_us
  | Svc_turnstile_wait_us
  | Sched_runnable

let key_name = function
  | Rtt_ns -> "link.rtt_ns"
  | Commit_accesses -> "commit.accesses"
  | Spec_validate_ns -> "spec.validate_ns"
  | Rollback_depth -> "rollback.depth"
  | Gbn_span -> "gbn.span"
  | Sync_down_wire -> "sync.down_wire_bytes"
  | Sync_up_wire -> "sync.up_wire_bytes"
  | Sync_page_wire -> "sync.page_wire_bytes"
  | Replay_chunk_bytes -> "replay.chunk_bytes"
  | Replay_exec_entries -> "replay.exec_entries"
  | Svc_turnaround_us -> "svc.turnaround_us"
  | Svc_ttfb_us -> "svc.ttfb_us"
  | Svc_coalesce_wait_us -> "svc.coalesce_wait_us"
  | Svc_turnstile_wait_us -> "svc.turnstile_wait_us"
  | Sched_runnable -> "sched.runnable"

let all_keys =
  [
    Rtt_ns; Commit_accesses; Spec_validate_ns; Rollback_depth; Gbn_span; Sync_down_wire;
    Sync_up_wire; Sync_page_wire; Replay_chunk_bytes; Replay_exec_entries;
    Svc_turnaround_us; Svc_ttfb_us; Svc_coalesce_wait_us; Svc_turnstile_wait_us; Sched_runnable;
  ]

let key_index = function
  | Rtt_ns -> 0
  | Commit_accesses -> 1
  | Spec_validate_ns -> 2
  | Rollback_depth -> 3
  | Gbn_span -> 4
  | Sync_down_wire -> 5
  | Sync_up_wire -> 6
  | Sync_page_wire -> 7
  | Replay_chunk_bytes -> 8
  | Replay_exec_entries -> 9
  | Svc_turnaround_us -> 10
  | Svc_ttfb_us -> 11
  | Svc_coalesce_wait_us -> 12
  | Svc_turnstile_wait_us -> 13
  | Sched_runnable -> 14

type set = t array

let create_set () = Array.of_list (List.map (fun k -> create ~name:(key_name k) ()) all_keys)
let get (s : set) k = s.(key_index k)
let record s k v = observe (get s k) v
let record_opt s k v = match s with Some s -> record s k v | None -> ()

let merge_set ~into (src : set) =
  Array.iteri (fun i h -> merge ~into:(Array.get (into : set) i) h) src

let set_json s =
  Json.Obj (List.map (fun k -> (key_name k, summary_json (get s k))) all_keys)
