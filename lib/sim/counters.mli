(** Named statistic counters.

    The recorder, shims and network layer account everything they do
    (register accesses, commits, round trips, bytes, speculation hits) into a
    counter set which the benchmark harness turns into the paper's tables. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val add64 : t -> string -> int64 -> unit
val get : t -> string -> int64
(** Unknown counters read as zero. *)

val get_int : t -> string -> int

val cell : t -> string -> int64 ref
(** The live cell behind a counter, created at zero if absent. Typed
    front-ends ([Metrics]) cache these so repeated bumps skip the string
    hash; the cell is shared, so updates through it and through
    [add]/[incr] stay in agreement. Cached cells do not survive [reset]. *)

val reset : t -> unit
val to_alist : t -> (string * int64) list
(** Sorted by counter name. *)

val merge_into : dst:t -> src:t -> unit
(** Adds every counter of [src] into [dst]. *)

val pp : Format.formatter -> t -> unit
