(** Canonical latency constants for on-device operations.

    These are the sub-microsecond costs the paper's §3.3 contrasts with
    network delays. Centralizing them keeps the native, record and replay
    paths comparable. *)

val mmio_access_ns : int64
(** One uncached register read or write over the SoC interconnect. *)

val irq_delivery_ns : int64
(** GPU interrupt to CPU handler entry. *)

val page_table_walk_ns : int64
(** GPU-side table walk on TLB miss. *)

val cache_flush_ns_per_kb : int64
(** GPU L2 clean+invalidate throughput. *)

val driver_submit_overhead_ns : int64
(** Kernel-side cost of one job submission (context switch, locking). *)

val runtime_job_prep_ns : int64
(** Userspace runtime cost per job: command emission, dependency setup. *)

val jit_compile_ns_per_kernel : int64
(** One-time JIT compilation of a hardware-neutral kernel for a SKU. *)

val replayer_step_ns : int64
(** Replayer cost to apply one recorded interaction. *)

val gpu_flops_per_s : float
(** Modeled shader throughput of the baseline SKU (Mali G71 MP8-class,
    FP32). Per-SKU scaling happens in [Grt_gpu.Sku]. *)

val gpu_job_fixed_ns : int64
(** Fixed per-job GPU overhead: fetch descriptor, schedule cores, raise
    IRQ. *)

val link_rto_min_s : float
(** Floor for the retransmission timeout. *)

val link_rto_rtt_multiplier : float
(** Initial RTO as a multiple of the profile RTT. *)

val link_rto_backoff : float
(** Multiplicative backoff applied to the RTO after each timeout. *)

val link_rto_max_s : float
(** Ceiling for the backed-off RTO. *)

val link_max_attempts : int
(** Send attempts (first try + retransmissions) before the link gives up
    and raises [Grt_net.Link.Link_down]. *)
