let mmio_access_ns = 400L
let irq_delivery_ns = 4_000L
let page_table_walk_ns = 900L
let cache_flush_ns_per_kb = 250L
let driver_submit_overhead_ns = 50_000L
let runtime_job_prep_ns = 300_000L
let jit_compile_ns_per_kernel = 2_400_000L
let replayer_step_ns = 700L
let gpu_flops_per_s = 30.0e9
let gpu_job_fixed_ns = 45_000L

(* Link-level retransmission policy (TCP-flavored, but link-local: the
   secure channel is message-oriented, so the shim does its own ARQ). *)
let link_rto_min_s = 0.010
let link_rto_rtt_multiplier = 2.0
let link_rto_backoff = 2.0
let link_rto_max_s = 1.0
let link_max_attempts = 8
