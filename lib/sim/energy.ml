type rail = Soc_base | Cpu_busy | Radio_tx | Radio_rx | Gpu_busy

let rail_power_w = function
  | Soc_base -> 1.3
  | Cpu_busy -> 1.6
  | Radio_tx -> 0.9
  | Radio_rx -> 0.7
  | Gpu_busy -> 2.4

let rail_index = function
  | Soc_base -> 0
  | Cpu_busy -> 1
  | Radio_tx -> 2
  | Radio_rx -> 3
  | Gpu_busy -> 4

let all_rails = [ Soc_base; Cpu_busy; Radio_tx; Radio_rx; Gpu_busy ]

(* [joules] holds direct [charge_j] deposits; time-integrated draw is kept
   as unboxed active-nanosecond counters and converted to joules only when
   read. The clock observer runs on every virtual-time advance — multiple
   times per simulated MMIO access — so it must not allocate or do float
   math. 63-bit ints hold ~292 simulated years of nanoseconds. *)
type t = { active : bool array; joules : float array; active_ns : int array }

let create clock =
  let t = { active = Array.make 5 false; joules = Array.make 5 0.; active_ns = Array.make 5 0 } in
  t.active.(rail_index Soc_base) <- true;
  Clock.on_advance_int clock (fun old_now new_now ->
      let dt = new_now - old_now in
      for i = 0 to 4 do
        if Array.unsafe_get t.active i then
          Array.unsafe_set t.active_ns i (Array.unsafe_get t.active_ns i + dt)
      done);
  t

let rail_j t r =
  let i = rail_index r in
  t.joules.(i) +. (rail_power_w r *. float_of_int t.active_ns.(i) *. 1e-9)

let set_active t rail on = t.active.(rail_index rail) <- on

let with_rail t rail f =
  let i = rail_index rail in
  let prev = t.active.(i) in
  t.active.(i) <- true;
  Fun.protect ~finally:(fun () -> t.active.(i) <- prev) f

let charge_j t rail j = t.joules.(rail_index rail) <- t.joules.(rail_index rail) +. j

let by_rail_j t = List.map (fun r -> (r, rail_j t r)) all_rails

let total_j t = List.fold_left (fun acc r -> acc +. rail_j t r) 0. all_rails

let reset t =
  Array.fill t.joules 0 5 0.;
  Array.fill t.active_ns 0 5 0

let pp_rail ppf r =
  Format.pp_print_string ppf
    (match r with
    | Soc_base -> "soc_base"
    | Cpu_busy -> "cpu_busy"
    | Radio_tx -> "radio_tx"
    | Radio_rx -> "radio_rx"
    | Gpu_busy -> "gpu_busy")
