(** Typed metric registry — the telemetry spine of the recorder.

    Every statistic the engine layers account (link exchanges, register
    traffic, commit pipeline, speculation, polling offload, memory sync,
    recovery, the client-side shim) has a variant key here, so a typo in a
    counter name is a compile error and the set of metrics is enumerable.

    A [t] is a thin write-through wrapper over a legacy {!Counters.t}: every
    typed [add]/[incr] lands on the counter named {!name}[ key], which keeps
    [Counters.pp] dumps, test assertions on counter strings, and merged
    counter sets byte-identical to the stringly-typed era. Use
    {!to_counters} to hand the underlying set to code that still speaks
    strings. *)

type key =
  | Net_msgs
  | Net_bytes_tx
  | Net_bytes_rx
  | Net_blocking_rtts
  | Net_async_sends
  | Net_stall_waits
  | Net_retransmits
  | Net_drops
  | Net_corrupt_drops
  | Net_dups
  | Net_link_downs
  | Net_degraded_entries
  | Net_degraded_exits
  | Net_window_stalls  (** sends that stalled waiting for a free window slot *)
  | Net_gbn_retransmits
      (** frames re-sent as part of a go-back-N span (span sizes summed) *)
  | Reg_reads
  | Reg_writes
  | Commits_total
  | Commits_speculated
  | Commits_sync
  | Commits_accesses
  | Spec_mispredicts
  | Spec_rejected_nondet
  | Spec_epoch_stalls
  | Spec_dep_stalls
  | Spec_degraded_suppressed
  | Spec_inflight_hw
      (** high-water mark of speculative commits outstanding at once (only
          tracked when pipelining is configured) *)
  | Spec_cross_hits
      (** confident speculation hits whose evidence came from a previous
          session sharing the {!Grt.Spec_history} table (§7.3) *)
  | Poll_instances
  | Poll_offloaded
  | Poll_iters
  | Irq_waits
  | Sync_down_events
  | Sync_down_wire_bytes
  | Sync_down_raw_bytes
  | Sync_up_events
  | Sync_up_wire_bytes
  | Sync_up_raw_bytes
  | Sync_pages_visited
      (** meta pages actually examined by [sync_meta] (dirty tracking skips
          the rest) *)
  | Sync_pages_meta  (** meta pages in scope per sync, before skipping *)
  | Sync_enc_raw
  | Sync_enc_raw_rc
  | Sync_enc_delta
  | Sync_enc_delta_rc
  | Sync_enc_hash_ref  (** shipped pages by chosen wire encoding *)
  | Sync_cross_hits
      (** page records satisfied from the fleet-shared content store (wire
          carries a hash reference; the logged record stays self-contained) *)
  | Sync_cross_saved_bytes  (** wire bytes saved by those cross-session hits *)
  | Fault_injected
  | Recovery_entries
  | Recovery_pages
  | Recovery_link_downs
  | Client_reg_reads
  | Client_reg_writes
  | Client_polls
  | Client_irq_waits
  | Client_uploads
  | Client_downloads
  (* recording service (fleet plane) *)
  | Svc_sessions  (** client sessions admitted by the recording service *)
  | Svc_recordings  (** recordings completed on behalf of cache misses *)
  | Svc_cache_hits  (** sessions served straight from the recording cache *)
  | Svc_cache_misses
      (** admission decisions that had to record (includes recordings that
          later failed, and waiters promoted to recorder after a failure —
          the same count a sequential run would charge as retry misses) *)
  | Svc_coalesced  (** sessions that waited on an in-flight recording *)
  | Svc_failures  (** sessions that ended in a failed recording *)
  | Svc_evictions  (** cache entries evicted to make room *)
  | Svc_promotions
      (** coalesced waiters promoted to recorder after the elected
          recorder failed (multiplexed runs only; sequential runs retry at
          the next arrival instead, so this reads 0 there) *)

val name : key -> string
(** Legacy counter name of a key (e.g. [Net_blocking_rtts] ->
    ["net.blocking_rtts"]). *)

val all : key list
(** Every key, in declaration order. *)

val of_name : string -> key option
(** Inverse of {!name}; [None] for counters outside the typed set. *)

type t

val create : unit -> t
(** Fresh registry over a private counter set. *)

val of_counters : Counters.t -> t
(** Typed view over an existing counter set; writes land in [counters]. *)

val to_counters : t -> Counters.t
(** The underlying counter set (the legacy-name bridge). *)

val add : t -> key -> int -> unit
val add64 : t -> key -> int64 -> unit
val incr : t -> key -> unit
val get : t -> key -> int64
val get_int : t -> key -> int
val pp : Format.formatter -> t -> unit
