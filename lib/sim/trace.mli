(** Bounded in-memory event trace with typed payloads.

    Components append timestamped events; tests, the failure post-mortem
    dump and the JSONL export can inspect them. Keeping the trace bounded
    (a ring of [capacity] events) makes it safe to leave enabled during
    long benchmark sweeps.

    Payloads are a typed variant — a typo'd field is a compile error and the
    event stream is machine-readable ({!to_jsonl}) — while {!render} and
    {!pp_event} reproduce the historical one-line strings byte-for-byte for
    the stderr dump. *)

type payload =
  | Degraded of { rate : float }  (** link tripped to degraded health *)
  | Healthy of { rate : float }  (** link healed *)
  | Link_down of { op : string; attempts : int; extra_s : float }
  | Retransmit of { op : string; attempt : int; outage : bool }
  | Window_stall of { inflight : int }
  | Profile_swap of { draining : int }
  | Commit of { site : string; accesses : int }
  | Speculate of { site : string; checks : int }
  | Rollback of { site : string; reg : string; predicted : int64; actual : int64 }
  | Replay_live of { replayed : int }
      (** recovery prefix exhausted; the shim went live again *)
  | Evict of { label : string; client : int; blob_bytes : int }
      (** recording-service cache eviction while admitting [client] *)
  | Promote of { label : string; client : int }
      (** a coalesced waiter took over recording after the elected recorder
          failed *)
  | Rearm of { label : string; client : int }
      (** a failed recording left the entry blank; the next arrival (or
          promoted waiter) re-records *)
  | Message of { topic : string; text : string }  (** free-form escape hatch *)

val payload_topic : payload -> string
(** The grouping topic: ["link"] for link events, ["shim"] for recorder
    events, ["service"] for recording-service events, the embedded topic
    for [Message]. *)

val render : payload -> string
(** The historical detail string (e.g.
    ["retransmit op=round_trip attempt=2"]). *)

type event = { at_ns : int64; payload : payload }

val topic : event -> string
val detail : event -> string

type t

val create : ?capacity:int -> Clock.t -> t

val event : t -> payload -> unit
val event_opt : t option -> payload -> unit
(** The shared optional-trace helper (formerly duplicated in [Link] and
    [Shim_engine]); no-op on [None]. *)

val absorb : t -> event list -> unit
(** Append already-timestamped events (e.g. {!all} of another ring) in
    list order, keeping their [at_ns] — how a parallel fleet run folds its
    per-domain service rings into the main one. The ring stays bounded:
    absorbing more than [capacity] events drops the oldest. *)

val emit : t -> topic:string -> string -> unit
(** [Message] convenience. *)

val emitf : t -> topic:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val recent : ?topic:string -> t -> int -> event list
(** Most recent events first; optionally filtered by topic. *)

val all : ?topic:string -> t -> event list
(** Every retained event, oldest first; optionally filtered by topic. *)

val topics : t -> string list
(** Topics present among retained events, in first-appearance order. *)

val count : t -> int
(** Total events emitted (including evicted ones). *)

val retained : t -> int
(** Events still in the ring ([min count capacity]). *)

val capacity : t -> int

val pp_event : Format.formatter -> event -> unit

val event_json : event -> Grt_util.Json.t
(** [{"ts_ns":..,"topic":..,"kind":..,<payload fields>}] *)

val to_jsonl : t -> string
(** Retained events oldest-first, one JSON object per line (trailing
    newline included when non-empty). *)
