module Json = Grt_util.Json

type category =
  | Establish
  | Boot
  | Commit
  | Validate_speculation
  | Rollback_recovery
  | Poll_offload
  | Memsync_down
  | Memsync_up
  | Link_exchange
  | Replay_compile
  | Replay_verify
  | Replay_execute
  | Svc_cache_lookup
  | Svc_coalesce_wait
  | Svc_turnstile_wait
  | Svc_record
  | Svc_serve_cached
  | Svc_evict
  | Svc_promotion

let category_name = function
  | Establish -> "establish"
  | Boot -> "boot"
  | Commit -> "commit"
  | Validate_speculation -> "validate-speculation"
  | Rollback_recovery -> "rollback-recovery"
  | Poll_offload -> "poll-offload"
  | Memsync_down -> "memsync-down"
  | Memsync_up -> "memsync-up"
  | Link_exchange -> "link-exchange"
  | Replay_compile -> "replay-compile"
  | Replay_verify -> "replay-verify"
  | Replay_execute -> "replay-execute"
  | Svc_cache_lookup -> "svc-cache-lookup"
  | Svc_coalesce_wait -> "svc-coalesce-wait"
  | Svc_turnstile_wait -> "svc-turnstile-wait"
  | Svc_record -> "svc-record"
  | Svc_serve_cached -> "svc-serve-cached"
  | Svc_evict -> "svc-evict"
  | Svc_promotion -> "svc-waiter-promotion"

let all_categories =
  [
    Establish; Boot; Commit; Validate_speculation; Rollback_recovery; Poll_offload;
    Memsync_down; Memsync_up; Link_exchange; Replay_compile; Replay_verify; Replay_execute;
    Svc_cache_lookup; Svc_coalesce_wait; Svc_turnstile_wait; Svc_record; Svc_serve_cached;
    Svc_evict; Svc_promotion;
  ]

type span = {
  sp_name : string;
  sp_cat : category;
  sp_args : (string * string) list;
  sp_start_ns : int64;
  sp_stop_ns : int64;
  sp_self_ns : int64;
  sp_depth : int;
}

(* The begin/end interleaving is reconstructed at export time from per-span
   open/close sequence numbers (cheaper than keeping a second event list,
   and balanced by construction: each retained span contributes exactly one
   B and one E). *)
type closed = { c_span : span; c_open_seq : int; c_close_seq : int }

type frame = {
  f_name : string;
  f_cat : category;
  f_args : (string * string) list;
  f_start : int64;
  f_open_seq : int;
  f_depth : int;
  mutable f_child_ns : int64;
}

type marker = { m_name : string; m_cat : category; m_args : (string * string) list; m_at : int64; m_seq : int }

type t = {
  clock : Clock.t;
  limit : int;
  mutable seq : int;
  mutable stack : frame list;
  mutable closed : closed list; (* newest first *)
  mutable closed_count : int;
  mutable dropped : int;
  mutable markers : marker list; (* newest first *)
}

let create ?(limit = 1_000_000) clock =
  { clock; limit; seq = 0; stack = []; closed = []; closed_count = 0; dropped = 0; markers = [] }

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let close t frame =
  (match t.stack with
  | top :: rest when top == frame -> t.stack <- rest
  | _ ->
    (* Defensive: frames unwind innermost-first via Fun.protect, so the
       frame must be on top; drop down to it if an observer misbehaved. *)
    let rec pop = function
      | top :: rest when top != frame -> pop rest
      | _ :: rest -> rest
      | [] -> []
    in
    t.stack <- pop t.stack);
  let stop = Clock.now_ns t.clock in
  let dur = Int64.sub stop frame.f_start in
  (match t.stack with
  | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns dur
  | [] -> ());
  let c_close_seq = next_seq t in
  if t.closed_count >= t.limit then t.dropped <- t.dropped + 1
  else begin
    let span =
      {
        sp_name = frame.f_name;
        sp_cat = frame.f_cat;
        sp_args = frame.f_args;
        sp_start_ns = frame.f_start;
        sp_stop_ns = stop;
        sp_self_ns = Int64.sub dur frame.f_child_ns;
        sp_depth = frame.f_depth;
      }
    in
    t.closed <- { c_span = span; c_open_seq = frame.f_open_seq; c_close_seq } :: t.closed;
    t.closed_count <- t.closed_count + 1
  end

let with_span t ~cat ?(args = []) ~name f =
  let frame =
    {
      f_name = name;
      f_cat = cat;
      f_args = args;
      f_start = Clock.now_ns t.clock;
      f_open_seq = next_seq t;
      f_depth = List.length t.stack;
      f_child_ns = 0L;
    }
  in
  t.stack <- frame :: t.stack;
  Fun.protect ~finally:(fun () -> close t frame) f

let span_opt t ~cat ?args ~name f =
  match t with None -> f () | Some t -> with_span t ~cat ?args ~name f

let instant t ~cat ?(args = []) name =
  t.markers <-
    { m_name = name; m_cat = cat; m_args = args; m_at = Clock.now_ns t.clock; m_seq = next_seq t }
    :: t.markers

let instant_opt t ~cat ?args name =
  match t with None -> () | Some t -> instant t ~cat ?args name

(* Fold [src]'s retained spans and markers into [into], reassigning
   sequence numbers from [into]'s stream while preserving [src]'s own
   event order; timestamps come over unchanged (both tracers are assumed
   to read clocks on the same global timeline). Used by parallel fleet
   runs to merge per-domain service tracers. *)
let absorb ~into src =
  let evs =
    List.concat_map
      (fun c -> [ (c.c_open_seq, `Open c); (c.c_close_seq, `Close c) ])
      src.closed
    @ List.map (fun m -> (m.m_seq, `Mark m)) src.markers
  in
  let evs = List.sort (fun (a, _) (b, _) -> compare a b) evs in
  let opens = Hashtbl.create 16 in
  List.iter
    (fun (_, e) ->
      match e with
      | `Open c -> Hashtbl.replace opens c.c_open_seq (next_seq into)
      | `Close c ->
        let o =
          match Hashtbl.find_opt opens c.c_open_seq with
          | Some o -> o
          | None -> next_seq into
        in
        let cl = next_seq into in
        if into.closed_count >= into.limit then into.dropped <- into.dropped + 1
        else begin
          into.closed <- { c_span = c.c_span; c_open_seq = o; c_close_seq = cl } :: into.closed;
          into.closed_count <- into.closed_count + 1
        end
      | `Mark m -> into.markers <- { m with m_seq = next_seq into } :: into.markers)
    evs;
  into.dropped <- into.dropped + src.dropped

let spans t = List.rev_map (fun c -> c.c_span) t.closed
let span_count t = t.closed_count
let dropped t = t.dropped
let open_depth t = List.length t.stack

type cat_stat = { total_ns : int64; self_ns : int64; spans : int }

let summary t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun { c_span = sp; _ } ->
      let prev =
        match Hashtbl.find_opt table sp.sp_cat with
        | Some s -> s
        | None -> { total_ns = 0L; self_ns = 0L; spans = 0 }
      in
      Hashtbl.replace table sp.sp_cat
        {
          total_ns = Int64.add prev.total_ns (Int64.sub sp.sp_stop_ns sp.sp_start_ns);
          self_ns = Int64.add prev.self_ns sp.sp_self_ns;
          spans = prev.spans + 1;
        })
    t.closed;
  List.map
    (fun cat ->
      ( cat,
        match Hashtbl.find_opt table cat with
        | Some s -> s
        | None -> { total_ns = 0L; self_ns = 0L; spans = 0 } ))
    all_categories

(* ---- Chrome trace-event export ---- *)

let ts_us ns = Int64.to_float ns /. 1e3

let event_json ?(pid = 1) ?(tid = 1) ~ph ~name ~cat ~ts ~args () =
  let base =
    [
      ("name", Json.Str name);
      ("cat", Json.Str (category_name cat));
      ("ph", Json.Str ph);
      ("ts", Json.Num ts);
      ("pid", Json.int pid);
      ("tid", Json.int tid);
    ]
  in
  let base = if ph = "i" then base @ [ ("s", Json.Str "t") ] else base in
  if args = [] then Json.Obj base
  else Json.Obj (base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ])

(* One tracer's B/E/i stream in seq order (well-nested by construction),
   timestamps shifted by [offset_ns] and stamped with [pid]/[tid]. *)
let track_events ?pid ?tid ?(offset_ns = 0L) t =
  let shift ns = ts_us (Int64.add offset_ns ns) in
  let events =
    List.concat_map
      (fun { c_span = sp; c_open_seq; c_close_seq } ->
        [
          ( c_open_seq,
            event_json ?pid ?tid ~ph:"B" ~name:sp.sp_name ~cat:sp.sp_cat
              ~ts:(shift sp.sp_start_ns) ~args:sp.sp_args () );
          ( c_close_seq,
            event_json ?pid ?tid ~ph:"E" ~name:sp.sp_name ~cat:sp.sp_cat
              ~ts:(shift sp.sp_stop_ns) ~args:[] () );
        ])
      t.closed
    @ List.map
        (fun m ->
          ( m.m_seq,
            event_json ?pid ?tid ~ph:"i" ~name:m.m_name ~cat:m.m_cat ~ts:(shift m.m_at)
              ~args:m.m_args () ))
        t.markers
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) events in
  List.map snd sorted

let to_chrome_json t = Json.to_string (Json.Arr (track_events t))

(* ---- Multi-track export (fleet runs) ---- *)

type track = {
  track_tid : int;
  track_name : string;
  track_offset_ns : int64;
  track_tracer : t;
}

let meta_event ~name ~pid ~tid ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.int pid);
      ("tid", Json.int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let tracks_chrome_json ?(process_name = "grt-fleet") tracks =
  let pid = 1 in
  (* One thread_name metadata per distinct tid; a tid registered twice keeps
     its first name (a promoted waiter's record tracer rides the same track
     as its serve tracer). *)
  let seen = Hashtbl.create 64 in
  let names =
    List.filter_map
      (fun tr ->
        if Hashtbl.mem seen tr.track_tid then None
        else begin
          Hashtbl.add seen tr.track_tid ();
          Some (meta_event ~name:"thread_name" ~pid ~tid:tr.track_tid ~value:tr.track_name)
        end)
      tracks
  in
  let events =
    List.concat_map
      (fun tr ->
        track_events ~pid ~tid:tr.track_tid ~offset_ns:tr.track_offset_ns tr.track_tracer)
      tracks
  in
  Json.to_string
    (Json.Arr ((meta_event ~name:"process_name" ~pid ~tid:0 ~value:process_name :: names) @ events))

let seconds ns = Int64.to_float ns *. 1e-9

let summary_json t =
  Json.Obj
    (List.map
       (fun (cat, s) ->
         ( category_name cat,
           Json.Obj
             [
               ("total_s", Json.float (seconds s.total_ns));
               ("self_s", Json.float (seconds s.self_ns));
               ("spans", Json.int s.spans);
             ] ))
       (summary t))
