type key =
  (* link *)
  | Net_msgs
  | Net_bytes_tx
  | Net_bytes_rx
  | Net_blocking_rtts
  | Net_async_sends
  | Net_stall_waits
  | Net_retransmits
  | Net_drops
  | Net_corrupt_drops
  | Net_dups
  | Net_link_downs
  | Net_degraded_entries
  | Net_degraded_exits
  | Net_window_stalls
  | Net_gbn_retransmits
  (* recorder-side register traffic *)
  | Reg_reads
  | Reg_writes
  (* commit pipeline *)
  | Commits_total
  | Commits_speculated
  | Commits_sync
  | Commits_accesses
  (* speculation *)
  | Spec_mispredicts
  | Spec_rejected_nondet
  | Spec_epoch_stalls
  | Spec_dep_stalls
  | Spec_degraded_suppressed
  | Spec_inflight_hw
  | Spec_cross_hits
  (* polling *)
  | Poll_instances
  | Poll_offloaded
  | Poll_iters
  | Irq_waits
  (* memory synchronization *)
  | Sync_down_events
  | Sync_down_wire_bytes
  | Sync_down_raw_bytes
  | Sync_up_events
  | Sync_up_wire_bytes
  | Sync_up_raw_bytes
  | Sync_pages_visited
  | Sync_pages_meta
  | Sync_enc_raw
  | Sync_enc_raw_rc
  | Sync_enc_delta
  | Sync_enc_delta_rc
  | Sync_enc_hash_ref
  | Sync_cross_hits
  | Sync_cross_saved_bytes
  (* fault injection + recovery *)
  | Fault_injected
  | Recovery_entries
  | Recovery_pages
  | Recovery_link_downs
  (* client-side shim *)
  | Client_reg_reads
  | Client_reg_writes
  | Client_polls
  | Client_irq_waits
  | Client_uploads
  | Client_downloads
  (* recording service (fleet plane) *)
  | Svc_sessions
  | Svc_recordings
  | Svc_cache_hits
  | Svc_cache_misses
  | Svc_coalesced
  | Svc_failures
  | Svc_evictions
  | Svc_promotions

let name = function
  | Net_msgs -> "net.msgs"
  | Net_bytes_tx -> "net.bytes_tx"
  | Net_bytes_rx -> "net.bytes_rx"
  | Net_blocking_rtts -> "net.blocking_rtts"
  | Net_async_sends -> "net.async_sends"
  | Net_stall_waits -> "net.stall_waits"
  | Net_retransmits -> "net.retransmits"
  | Net_drops -> "net.drops"
  | Net_corrupt_drops -> "net.corrupt_drops"
  | Net_dups -> "net.dups"
  | Net_link_downs -> "net.link_downs"
  | Net_degraded_entries -> "net.degraded_entries"
  | Net_degraded_exits -> "net.degraded_exits"
  | Net_window_stalls -> "net.window_stalls"
  | Net_gbn_retransmits -> "net.gbn_retransmits"
  | Reg_reads -> "reg.reads"
  | Reg_writes -> "reg.writes"
  | Commits_total -> "commits.total"
  | Commits_speculated -> "commits.speculated"
  | Commits_sync -> "commits.sync"
  | Commits_accesses -> "commits.accesses"
  | Spec_mispredicts -> "spec.mispredicts"
  | Spec_rejected_nondet -> "spec.rejected_nondet"
  | Spec_epoch_stalls -> "spec.epoch_stalls"
  | Spec_dep_stalls -> "spec.dep_stalls"
  | Spec_degraded_suppressed -> "spec.degraded_suppressed"
  | Spec_inflight_hw -> "spec.inflight_hw"
  | Spec_cross_hits -> "spec.history_cross_hits"
  | Poll_instances -> "poll.instances"
  | Poll_offloaded -> "poll.offloaded"
  | Poll_iters -> "poll.iters"
  | Irq_waits -> "irq.waits"
  | Sync_down_events -> "sync.down_events"
  | Sync_down_wire_bytes -> "sync.down_wire_bytes"
  | Sync_down_raw_bytes -> "sync.down_raw_bytes"
  | Sync_up_events -> "sync.up_events"
  | Sync_up_wire_bytes -> "sync.up_wire_bytes"
  | Sync_up_raw_bytes -> "sync.up_raw_bytes"
  | Sync_pages_visited -> "sync.pages_visited"
  | Sync_pages_meta -> "sync.pages_meta"
  | Sync_enc_raw -> "sync.enc_raw"
  | Sync_enc_raw_rc -> "sync.enc_raw_rc"
  | Sync_enc_delta -> "sync.enc_delta"
  | Sync_enc_delta_rc -> "sync.enc_delta_rc"
  | Sync_enc_hash_ref -> "sync.enc_hash_ref"
  | Sync_cross_hits -> "sync.cross_hits"
  | Sync_cross_saved_bytes -> "sync.cross_saved_bytes"
  | Fault_injected -> "fault.injected"
  | Recovery_entries -> "recovery.entries"
  | Recovery_pages -> "recovery.pages"
  | Recovery_link_downs -> "recovery.link_downs"
  | Client_reg_reads -> "client.reg_reads"
  | Client_reg_writes -> "client.reg_writes"
  | Client_polls -> "client.polls"
  | Client_irq_waits -> "client.irq_waits"
  | Client_uploads -> "client.uploads"
  | Client_downloads -> "client.downloads"
  | Svc_sessions -> "svc.sessions"
  | Svc_recordings -> "svc.recordings"
  | Svc_cache_hits -> "svc.cache_hits"
  | Svc_cache_misses -> "svc.cache_misses"
  | Svc_coalesced -> "svc.coalesced"
  | Svc_failures -> "svc.failures"
  | Svc_evictions -> "svc.evictions"
  | Svc_promotions -> "svc.promotions"

let all =
  [
    Net_msgs; Net_bytes_tx; Net_bytes_rx; Net_blocking_rtts; Net_async_sends; Net_stall_waits;
    Net_retransmits; Net_drops; Net_corrupt_drops; Net_dups; Net_link_downs;
    Net_degraded_entries; Net_degraded_exits; Net_window_stalls; Net_gbn_retransmits;
    Reg_reads; Reg_writes; Commits_total;
    Commits_speculated; Commits_sync; Commits_accesses; Spec_mispredicts; Spec_rejected_nondet;
    Spec_epoch_stalls; Spec_dep_stalls; Spec_degraded_suppressed; Spec_inflight_hw;
    Spec_cross_hits;
    Poll_instances;
    Poll_offloaded; Poll_iters; Irq_waits; Sync_down_events; Sync_down_wire_bytes;
    Sync_down_raw_bytes; Sync_up_events; Sync_up_wire_bytes; Sync_up_raw_bytes;
    Sync_pages_visited; Sync_pages_meta; Sync_enc_raw; Sync_enc_raw_rc; Sync_enc_delta;
    Sync_enc_delta_rc; Sync_enc_hash_ref; Sync_cross_hits; Sync_cross_saved_bytes;
    Fault_injected;
    Recovery_entries; Recovery_pages; Recovery_link_downs; Client_reg_reads; Client_reg_writes;
    Client_polls; Client_irq_waits; Client_uploads; Client_downloads;
    Svc_sessions; Svc_recordings; Svc_cache_hits; Svc_cache_misses; Svc_coalesced; Svc_failures;
    Svc_evictions; Svc_promotions;
  ]

let of_name s = List.find_opt (fun k -> String.equal (name k) s) all

(* Dense ordinal of a key, in declaration order; [n_keys] bounds the cell
   cache below. Kept in lock-step with [name]. *)
let n_keys = 65

let index = function
  | Net_msgs -> 0
  | Net_bytes_tx -> 1
  | Net_bytes_rx -> 2
  | Net_blocking_rtts -> 3
  | Net_async_sends -> 4
  | Net_stall_waits -> 5
  | Net_retransmits -> 6
  | Net_drops -> 7
  | Net_corrupt_drops -> 8
  | Net_dups -> 9
  | Net_link_downs -> 10
  | Net_degraded_entries -> 11
  | Net_degraded_exits -> 12
  | Net_window_stalls -> 13
  | Net_gbn_retransmits -> 14
  | Reg_reads -> 15
  | Reg_writes -> 16
  | Commits_total -> 17
  | Commits_speculated -> 18
  | Commits_sync -> 19
  | Commits_accesses -> 20
  | Spec_mispredicts -> 21
  | Spec_rejected_nondet -> 22
  | Spec_epoch_stalls -> 23
  | Spec_dep_stalls -> 24
  | Spec_degraded_suppressed -> 25
  | Spec_inflight_hw -> 26
  | Spec_cross_hits -> 27
  | Poll_instances -> 28
  | Poll_offloaded -> 29
  | Poll_iters -> 30
  | Irq_waits -> 31
  | Sync_down_events -> 32
  | Sync_down_wire_bytes -> 33
  | Sync_down_raw_bytes -> 34
  | Sync_up_events -> 35
  | Sync_up_wire_bytes -> 36
  | Sync_up_raw_bytes -> 37
  | Sync_pages_visited -> 38
  | Sync_pages_meta -> 39
  | Sync_enc_raw -> 40
  | Sync_enc_raw_rc -> 41
  | Sync_enc_delta -> 42
  | Sync_enc_delta_rc -> 43
  | Sync_enc_hash_ref -> 44
  | Sync_cross_hits -> 45
  | Sync_cross_saved_bytes -> 46
  | Fault_injected -> 47
  | Recovery_entries -> 48
  | Recovery_pages -> 49
  | Recovery_link_downs -> 50
  | Client_reg_reads -> 51
  | Client_reg_writes -> 52
  | Client_polls -> 53
  | Client_irq_waits -> 54
  | Client_uploads -> 55
  | Client_downloads -> 56
  | Svc_sessions -> 57
  | Svc_recordings -> 58
  | Svc_cache_hits -> 59
  | Svc_cache_misses -> 60
  | Svc_coalesced -> 61
  | Svc_failures -> 62
  | Svc_evictions -> 63
  | Svc_promotions -> 64

(* Write-through onto a legacy counter set: the typed spine and the stringly
   world always agree, and [Counters.pp] output is byte-identical to what it
   was when every call site spelled the name out. Each typed key caches the
   counter's live cell (shared with the string table) the first time it is
   bumped, so the steady-state cost of a bump is an array load and an int64
   add -- no string hashing. Cells are cached lazily, never eagerly: a key
   that is read but never bumped must stay absent from [Counters.to_alist].
*)
type t = { counters : Counters.t; cells : int64 ref option array }

let create () = { counters = Counters.create (); cells = Array.make n_keys None }
let of_counters counters = { counters; cells = Array.make n_keys None }
let to_counters t = t.counters

let cell t k =
  let i = index k in
  match Array.unsafe_get t.cells i with
  | Some c -> c
  | None ->
    let c = Counters.cell t.counters (name k) in
    t.cells.(i) <- Some c;
    c

let add64 t k v =
  let c = cell t k in
  c := Int64.add !c v

let add t k v = add64 t k (Int64.of_int v)
let incr t k = add t k 1

(* Reads go through the string table so they neither create a cell nor
   observe anything the stringly API would not. *)
let get t k = Counters.get t.counters (name k)
let get_int t k = Counters.get_int t.counters (name k)

let pp ppf t = Counters.pp ppf t.counters
