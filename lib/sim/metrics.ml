type key =
  (* link *)
  | Net_msgs
  | Net_bytes_tx
  | Net_bytes_rx
  | Net_blocking_rtts
  | Net_async_sends
  | Net_stall_waits
  | Net_retransmits
  | Net_drops
  | Net_corrupt_drops
  | Net_dups
  | Net_link_downs
  | Net_degraded_entries
  | Net_degraded_exits
  | Net_window_stalls
  | Net_gbn_retransmits
  (* recorder-side register traffic *)
  | Reg_reads
  | Reg_writes
  (* commit pipeline *)
  | Commits_total
  | Commits_speculated
  | Commits_sync
  | Commits_accesses
  (* speculation *)
  | Spec_mispredicts
  | Spec_rejected_nondet
  | Spec_epoch_stalls
  | Spec_dep_stalls
  | Spec_degraded_suppressed
  | Spec_inflight_hw
  | Spec_cross_hits
  (* polling *)
  | Poll_instances
  | Poll_offloaded
  | Poll_iters
  | Irq_waits
  (* memory synchronization *)
  | Sync_down_events
  | Sync_down_wire_bytes
  | Sync_down_raw_bytes
  | Sync_up_events
  | Sync_up_wire_bytes
  | Sync_up_raw_bytes
  | Sync_pages_visited
  | Sync_pages_meta
  | Sync_enc_raw
  | Sync_enc_raw_rc
  | Sync_enc_delta
  | Sync_enc_delta_rc
  | Sync_enc_hash_ref
  | Sync_cross_hits
  | Sync_cross_saved_bytes
  (* fault injection + recovery *)
  | Fault_injected
  | Recovery_entries
  | Recovery_pages
  | Recovery_link_downs
  (* client-side shim *)
  | Client_reg_reads
  | Client_reg_writes
  | Client_polls
  | Client_irq_waits
  | Client_uploads
  | Client_downloads

let name = function
  | Net_msgs -> "net.msgs"
  | Net_bytes_tx -> "net.bytes_tx"
  | Net_bytes_rx -> "net.bytes_rx"
  | Net_blocking_rtts -> "net.blocking_rtts"
  | Net_async_sends -> "net.async_sends"
  | Net_stall_waits -> "net.stall_waits"
  | Net_retransmits -> "net.retransmits"
  | Net_drops -> "net.drops"
  | Net_corrupt_drops -> "net.corrupt_drops"
  | Net_dups -> "net.dups"
  | Net_link_downs -> "net.link_downs"
  | Net_degraded_entries -> "net.degraded_entries"
  | Net_degraded_exits -> "net.degraded_exits"
  | Net_window_stalls -> "net.window_stalls"
  | Net_gbn_retransmits -> "net.gbn_retransmits"
  | Reg_reads -> "reg.reads"
  | Reg_writes -> "reg.writes"
  | Commits_total -> "commits.total"
  | Commits_speculated -> "commits.speculated"
  | Commits_sync -> "commits.sync"
  | Commits_accesses -> "commits.accesses"
  | Spec_mispredicts -> "spec.mispredicts"
  | Spec_rejected_nondet -> "spec.rejected_nondet"
  | Spec_epoch_stalls -> "spec.epoch_stalls"
  | Spec_dep_stalls -> "spec.dep_stalls"
  | Spec_degraded_suppressed -> "spec.degraded_suppressed"
  | Spec_inflight_hw -> "spec.inflight_hw"
  | Spec_cross_hits -> "spec.history_cross_hits"
  | Poll_instances -> "poll.instances"
  | Poll_offloaded -> "poll.offloaded"
  | Poll_iters -> "poll.iters"
  | Irq_waits -> "irq.waits"
  | Sync_down_events -> "sync.down_events"
  | Sync_down_wire_bytes -> "sync.down_wire_bytes"
  | Sync_down_raw_bytes -> "sync.down_raw_bytes"
  | Sync_up_events -> "sync.up_events"
  | Sync_up_wire_bytes -> "sync.up_wire_bytes"
  | Sync_up_raw_bytes -> "sync.up_raw_bytes"
  | Sync_pages_visited -> "sync.pages_visited"
  | Sync_pages_meta -> "sync.pages_meta"
  | Sync_enc_raw -> "sync.enc_raw"
  | Sync_enc_raw_rc -> "sync.enc_raw_rc"
  | Sync_enc_delta -> "sync.enc_delta"
  | Sync_enc_delta_rc -> "sync.enc_delta_rc"
  | Sync_enc_hash_ref -> "sync.enc_hash_ref"
  | Sync_cross_hits -> "sync.cross_hits"
  | Sync_cross_saved_bytes -> "sync.cross_saved_bytes"
  | Fault_injected -> "fault.injected"
  | Recovery_entries -> "recovery.entries"
  | Recovery_pages -> "recovery.pages"
  | Recovery_link_downs -> "recovery.link_downs"
  | Client_reg_reads -> "client.reg_reads"
  | Client_reg_writes -> "client.reg_writes"
  | Client_polls -> "client.polls"
  | Client_irq_waits -> "client.irq_waits"
  | Client_uploads -> "client.uploads"
  | Client_downloads -> "client.downloads"

let all =
  [
    Net_msgs; Net_bytes_tx; Net_bytes_rx; Net_blocking_rtts; Net_async_sends; Net_stall_waits;
    Net_retransmits; Net_drops; Net_corrupt_drops; Net_dups; Net_link_downs;
    Net_degraded_entries; Net_degraded_exits; Net_window_stalls; Net_gbn_retransmits;
    Reg_reads; Reg_writes; Commits_total;
    Commits_speculated; Commits_sync; Commits_accesses; Spec_mispredicts; Spec_rejected_nondet;
    Spec_epoch_stalls; Spec_dep_stalls; Spec_degraded_suppressed; Spec_inflight_hw;
    Spec_cross_hits;
    Poll_instances;
    Poll_offloaded; Poll_iters; Irq_waits; Sync_down_events; Sync_down_wire_bytes;
    Sync_down_raw_bytes; Sync_up_events; Sync_up_wire_bytes; Sync_up_raw_bytes;
    Sync_pages_visited; Sync_pages_meta; Sync_enc_raw; Sync_enc_raw_rc; Sync_enc_delta;
    Sync_enc_delta_rc; Sync_enc_hash_ref; Sync_cross_hits; Sync_cross_saved_bytes;
    Fault_injected;
    Recovery_entries; Recovery_pages; Recovery_link_downs; Client_reg_reads; Client_reg_writes;
    Client_polls; Client_irq_waits; Client_uploads; Client_downloads;
  ]

let of_name s = List.find_opt (fun k -> String.equal (name k) s) all

(* Write-through onto a legacy counter set: the typed spine and the stringly
   world always agree, and [Counters.pp] output is byte-identical to what it
   was when every call site spelled the name out. *)
type t = { counters : Counters.t }

let create () = { counters = Counters.create () }
let of_counters counters = { counters }
let to_counters t = t.counters

let add t k v = Counters.add t.counters (name k) v
let add64 t k v = Counters.add64 t.counters (name k) v
let incr t k = Counters.incr t.counters (name k)
let get t k = Counters.get t.counters (name k)
let get_int t k = Counters.get_int t.counters (name k)

let pp ppf t = Counters.pp ppf t.counters
