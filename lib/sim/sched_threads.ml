(* Thread-backed coroutines — the portable engine under {!Sched}.

   OCaml 4.14 has no effect handlers, so the scheduler's suspend/resume is
   built on systhreads with a strict baton handshake: at any instant exactly
   one of {scheduler, coroutine} runs, the other blocks on a condition
   variable. The handoff is fully synchronous — [resume] does not return
   until the coroutine has yielded, finished, or raised — so scheduling
   decisions (and therefore every recorded session) are exactly as
   deterministic as with the effects engine; only the context-switch cost
   differs. On OCaml 5 the same code doubles as the fallback engine so CI
   can prove both paths on one compiler. *)

type status =
  | Yielded
  | Done
  | Raised of exn * Printexc.raw_backtrace

type t = {
  m : Mutex.t;
  to_coro : Condition.t;  (* scheduler -> coroutine baton *)
  to_sched : Condition.t;  (* coroutine -> scheduler baton *)
  mutable turn : [ `Sched | `Coro ];
  mutable outcome : status option;  (* set by the coroutine at each handoff *)
  mutable started : bool;
  body : (unit -> unit) -> unit;  (* receives its yield function *)
}

let spawn body =
  {
    m = Mutex.create ();
    to_coro = Condition.create ();
    to_sched = Condition.create ();
    turn = `Sched;
    outcome = None;
    started = false;
    body;
  }

(* Block until the scheduler hands the baton over. Caller holds [t.m]. *)
let wait_for_baton t = while t.turn <> `Coro do Condition.wait t.to_coro t.m done

(* Hand the baton back with [st] and, for [Yielded], wait to be resumed. *)
let hand_back t st =
  Mutex.lock t.m;
  t.outcome <- Some st;
  t.turn <- `Sched;
  Condition.signal t.to_sched;
  (match st with Yielded -> wait_for_baton t | Done | Raised _ -> ());
  Mutex.unlock t.m

let yield t () = hand_back t Yielded

let main t () =
  Mutex.lock t.m;
  wait_for_baton t;
  Mutex.unlock t.m;
  let st =
    try
      t.body (yield t);
      Done
    with e -> Raised (e, Printexc.get_raw_backtrace ())
  in
  hand_back t st

let resume t =
  match t.outcome with
  | Some (Done | Raised _) -> invalid_arg "Sched_threads.resume: coroutine already finished"
  | _ ->
    if not t.started then begin
      t.started <- true;
      ignore (Thread.create (main t) ())
    end;
    Mutex.lock t.m;
    t.outcome <- None;
    t.turn <- `Coro;
    Condition.signal t.to_coro;
    while t.outcome = None do Condition.wait t.to_sched t.m done;
    let st = Option.get t.outcome in
    Mutex.unlock t.m;
    st
