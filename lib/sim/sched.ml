(* Virtual-time multiplexing of cooperative sessions (ROADMAP item 1).

   Each task owns a private {!Clock} — its session-local timeline, so a
   session multiplexed here is bit-identical to the same session run alone —
   plus an arrival offset placing that timeline on the shared global one:

     global(task) = arrival_ns + Clock.now task.clock

   Blocking waits inside a task ({!Grt_net.Link} exchanges, rollback
   recompute) advance the task's clock and then call {!Clock.yield}, whose
   hook (installed at [spawn]) suspends the task's coroutine. The run loop
   always resumes the runnable task with the smallest global time (FIFO on
   ties, by spawn order), so sessions interleave in global virtual-time
   order and the interleaving is a pure function of the task set — no host
   clocks, no OS scheduling, bit-for-bit reproducible on both coroutine
   engines. *)

type backend = Sched_backend.kind

let default_backend : backend = Sched_backend.default
let backend_available = Sched_backend.available
let backend_name = function `Effects -> "effects" | `Threads -> "threads"

type task = {
  id : int;
  name : string;
  clock : Clock.t;
  arrival_ns : int;
  mutable coro : Sched_backend.t option;
  mutable st : [ `Ready | `Running | `Blocked | `Done | `Failed of exn * Printexc.raw_backtrace ];
  mutable wake_ns : int;  (* global ns at which the task next becomes runnable *)
}

(* Binary min-heap on (wake_ns, seq): seq is a monotonic push counter, so
   equal wake times pop in push order — the deterministic FIFO tie-break. *)
module Heap = struct
  type entry = { key : int; seq : int; task : task }
  type h = { mutable a : entry array; mutable n : int; mutable seqc : int }

  let create () = { a = [||]; n = 0; seqc = 0 }

  let lt x y = x.key < y.key || (x.key = y.key && x.seq < y.seq)

  let push h task =
    let e = { key = task.wake_ns; seq = h.seqc; task } in
    h.seqc <- h.seqc + 1;
    if h.n = Array.length h.a then begin
      let cap = max 16 (2 * h.n) in
      let a' = Array.make cap e in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    (* sift up *)
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.a.(0) <- h.a.(h.n);
        (* sift down *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.n && lt h.a.(l) h.a.(!s) then s := l;
          if r < h.n && lt h.a.(r) h.a.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let tmp = h.a.(!s) in
            h.a.(!s) <- h.a.(!i);
            h.a.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some top.task
    end
end

type t = {
  backend : backend;
  heap : Heap.h;
  mutable tasks : task list;  (* newest first *)
  mutable running : task option;
  mutable global_ns : int;  (* high-water of resumed wake times *)
  mutable next_id : int;
  mutable yields : int;
  mutable switches : int;
  mutable on_switch : (int -> unit) option;
      (* observability hook: called at every context switch with the number
         of tasks still queued runnable; never advances any clock *)
}

type cond = { mutable waiters : task list (* newest first *) }

let create ?backend () =
  let backend = match backend with Some b -> b | None -> Sched_backend.default in
  let backend = if Sched_backend.available backend then backend else Sched_backend.default in
  {
    backend;
    heap = Heap.create ();
    tasks = [];
    running = None;
    global_ns = 0;
    next_id = 0;
    yields = 0;
    switches = 0;
    on_switch = None;
  }

let backend t = t.backend
let now_ns t = Int64.of_int t.global_ns
let yields t = t.yields
let switches t = t.switches
let runnable t = t.heap.Heap.n
let set_switch_observer t f = t.on_switch <- f

let task_global task = task.arrival_ns + Clock.now_int task.clock

let spawn t ?(arrival_ns = 0L) ~name ~clock body =
  if Int64.compare arrival_ns 0L < 0 then invalid_arg "Sched.spawn: negative arrival";
  let task =
    {
      id = t.next_id;
      name;
      clock;
      arrival_ns = Int64.to_int arrival_ns;
      coro = None;
      st = `Ready;
      wake_ns = Int64.to_int arrival_ns;
    }
  in
  t.next_id <- t.next_id + 1;
  let coro =
    Sched_backend.spawn t.backend (fun yield_coro ->
        (* Yield points record the task's new global position, then hand
           control to the run loop. The hook lives exactly as long as the
           task body so a clock outliving the scheduler is safe. *)
        Clock.set_yield_hook clock (fun () ->
            task.wake_ns <- task_global task;
            t.yields <- t.yields + 1;
            yield_coro ());
        Fun.protect ~finally:(fun () -> Clock.clear_yield_hook clock) body)
  in
  task.coro <- Some coro;
  t.tasks <- task :: t.tasks;
  Heap.push t.heap task;
  task

let new_cond () = { waiters = [] }

(* Suspend the running task until [signal_all]. The task leaves the ready
   heap (state [`Blocked]) and is re-inserted by the signaller. *)
let await t cond =
  match t.running with
  | None -> invalid_arg "Sched.await: no task is running"
  | Some task ->
    task.st <- `Blocked;
    cond.waiters <- task :: cond.waiters;
    Clock.yield task.clock;
    (* resumed: the signaller advanced our clock to the signal time *)
    ()

(* Wake every waiter at the signaller's current global time: waiting is real
   virtual time, so each waiter's session clock is advanced to the signal
   instant before it re-enters the ready heap. Waiters re-queue in FIFO
   await order. *)
let signal_all t cond =
  let wake_ns =
    match t.running with Some task -> task_global task | None -> t.global_ns
  in
  let ws = List.rev cond.waiters in
  cond.waiters <- [];
  List.iter
    (fun w ->
      w.st <- `Ready;
      Clock.advance_to_int w.clock (wake_ns - w.arrival_ns);
      w.wake_ns <- max (task_global w) wake_ns;
      Heap.push t.heap w)
    ws

exception Deadlock of string list
(* run ended with tasks still blocked on conditions nobody signals *)

let run t =
  let rec loop () =
    match Heap.pop t.heap with
    | None -> ()
    | Some task ->
      (match task.st with
      | `Ready ->
        if task.wake_ns > t.global_ns then t.global_ns <- task.wake_ns;
        task.st <- `Running;
        t.running <- Some task;
        t.switches <- t.switches + 1;
        (match t.on_switch with Some f -> f t.heap.Heap.n | None -> ());
        let status = Sched_backend.resume (Option.get task.coro) in
        t.running <- None;
        (match status with
        | Sched_threads.Yielded ->
          (* [`Blocked] means the task parked itself on a cond mid-yield;
             the signaller will re-queue it. *)
          if task.st = `Running then begin
            task.st <- `Ready;
            Heap.push t.heap task
          end
        | Sched_threads.Done -> task.st <- `Done
        | Sched_threads.Raised (e, bt) -> task.st <- `Failed (e, bt))
      | _ -> ());
      loop ()
  in
  loop ();
  match List.filter (fun task -> task.st = `Blocked) t.tasks with
  | [] -> ()
  | blocked -> raise (Deadlock (List.rev_map (fun task -> task.name) blocked))

let failures t =
  List.rev
    (List.filter_map
       (fun task -> match task.st with `Failed (e, bt) -> Some (task.name, e, bt) | _ -> None)
       t.tasks)
