(* Virtual time is kept as an unboxed [int] nanosecond counter (63 bits ≈
   146 years, so overflow is not a concern). The clock advance is the
   hottest operation in the whole simulation — every MMIO access, poll spin
   and replayer step goes through it — and an [int64] counter would box on
   every add and compare. The public API stays [int64]; the [_int] variants
   below let same-process hot paths (the device's event queue, the energy
   integrator) avoid the boxing entirely. *)

type t = {
  mutable now : int;
  mutable observers : (int -> int -> unit) list;
  mutable yield_hook : (unit -> unit) option;
      (* cooperative-scheduling hook: blocking waits (network exchanges,
         rollback recompute) call [yield] after advancing, handing control to
         a multiplexing scheduler. [None] (the default) makes [yield] free,
         so solo sessions are unaffected. *)
}

let create () = { now = 0; observers = []; yield_hook = None }

let set_yield_hook t f = t.yield_hook <- Some f

let clear_yield_hook t = t.yield_hook <- None

let yield t = match t.yield_hook with Some f -> f () | None -> ()

let now_int t = t.now

let now_ns t = Int64.of_int t.now

let now_s t = float_of_int t.now *. 1e-9

let advance_int t d =
  if d < 0 then invalid_arg "Clock.advance_ns: negative delta";
  if d > 0 then begin
    let old_now = t.now in
    t.now <- old_now + d;
    List.iter (fun f -> f old_now t.now) t.observers
  end

let advance_ns t d = advance_int t (Int64.to_int d)

let advance_s t s =
  if s < 0. then invalid_arg "Clock.advance_s: negative delta";
  advance_ns t (Int64.of_float (s *. 1e9))

let advance_to_int t deadline = if deadline > t.now then advance_int t (deadline - t.now)

let advance_to t deadline = advance_to_int t (Int64.to_int deadline)

let on_advance_int t f = t.observers <- f :: t.observers

let on_advance t f =
  on_advance_int t (fun old_now new_now -> f (Int64.of_int old_now) (Int64.of_int new_now))

type span = { start_ns : int64; stop_ns : int64 }

let time t f =
  let start_ns = now_ns t in
  let v = f () in
  (v, { start_ns; stop_ns = now_ns t })

let span_s { start_ns; stop_ns } = Int64.to_float (Int64.sub stop_ns start_ns) *. 1e-9
