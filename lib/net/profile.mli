(** Network conditions between the cloud recording service and the client
    TEE. The paper evaluates under NetEm-shaped WiFi (20 ms RTT, 80 Mbps) and
    cellular (50 ms RTT, 40 Mbps) conditions (§7.2). *)

type faults = {
  drop_prob : float;  (** probability a message is silently lost *)
  dup_prob : float;  (** probability a message is delivered twice *)
  corrupt_prob : float;  (** probability the payload arrives damaged *)
  jitter_s : float;  (** max extra one-way delay, drawn uniformly *)
}

val no_faults : faults
(** A perfect channel: all probabilities zero, no jitter. *)

type t = {
  name : string;
  rtt_s : float;  (** full round-trip time for a minimal message *)
  bandwidth_bps : float;  (** symmetric goodput *)
  per_message_s : float;  (** fixed per-message processing overhead *)
  faults : faults;  (** channel impairments; [no_faults] for presets *)
}

val wifi : t
(** 20 ms RTT, 80 Mbps. *)

val cellular : t
(** 50 ms RTT, 40 Mbps. *)

val lan : t
(** 0.2 ms RTT, 1 Gbps — a wired-lab control case. *)

val custom : name:string -> rtt_ms:float -> bandwidth_mbps:float -> t

val degrade :
  ?dup_prob:float ->
  ?corrupt_prob:float ->
  ?jitter_s:float ->
  drop_prob:float ->
  t ->
  t
(** [degrade ~drop_prob p] is [p] with channel impairments applied. The
    profile is renamed so experiment caches keyed by name don't collide
    with the clean profile. Probabilities must be in [0, 1); raises
    [Invalid_argument] otherwise. *)

val has_faults : t -> bool

val one_way_s : t -> int -> float
(** [one_way_s p bytes] is the latency for one message of [bytes] payload:
    half the RTT plus serialization plus per-message overhead. *)

val round_trip_s : t -> send_bytes:int -> recv_bytes:int -> float
(** Latency of a blocking request/response exchange. *)

val pp : Format.formatter -> t -> unit
