module Costs = Grt_sim.Costs
module Metrics = Grt_sim.Metrics
module Trace = Grt_sim.Trace
module Tracer = Grt_sim.Tracer
module Hist = Grt_sim.Hist

type health = Healthy | Degraded

exception Link_down of { attempts : int; op : string }

(* Ring over recent exchanges used to detect a persistently lossy channel
   (degraded mode, hysteresis: trip high, clear low). Distinct from the
   transmission [window] below, which bounds exchanges in flight. *)
let health_ring_size = 64

let degraded_trip = 0.20
let degraded_clear = degraded_trip /. 4.

(* One windowed exchange in flight: its byte cost (needed to re-charge the
   whole unacked span on a go-back-N retransmission) and the virtual time at
   which its response lands. Completions are clamped monotonic by
   [deliver_at], so the pipe is ordered oldest-first by completion. *)
type inflight = {
  if_send_bytes : int;
  if_recv_bytes : int;
  if_completion : int64;
}

type t = {
  mutable profile : Profile.t;
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t option;
  metrics : Metrics.t option;
  trace : Trace.t option;
  tracer : Tracer.t option;
  hists : Hist.set option;
  rng : Grt_util.Rng.t;
  window : int;
  mutable pipe : inflight list; (* oldest first; always [] when window = 1 *)
  mutable last_delivery : int64;
  health_ring : Bytes.t;
  mutable ring_fill : int;
  mutable ring_pos : int;
  mutable ring_sum : int;
  mutable health : health;
  mutable outage_countdown : int option;
}

let create ~clock ?energy ?counters ?trace ?tracer ?hists ?(seed = 0x4C494E4BL) ?(window = 1)
    profile =
  if window < 1 then invalid_arg "Link.create: window must be >= 1";
  {
    profile;
    clock;
    energy;
    metrics = Option.map Metrics.of_counters counters;
    trace;
    tracer;
    hists;
    rng = Grt_util.Rng.create ~seed;
    window;
    pipe = [];
    last_delivery = 0L;
    health_ring = Bytes.make health_ring_size '\000';
    ring_fill = 0;
    ring_pos = 0;
    ring_sum = 0;
    health = Healthy;
    outage_countdown = None;
  }

let profile t = t.profile
let window t = t.window
let clock t = t.clock
let health t = t.health
let inject_outage_after t n = t.outage_countdown <- Some n

let count t key v = match t.metrics with Some m -> Metrics.add m key v | None -> ()

let set_profile t p =
  (* Windowed sends still in flight were priced under the old profile; drain
     them before the swap so they cannot complete against the new profile's
     costs. The newest pipe entry has the latest completion (monotonic
     clamp), so one clock advance retires the whole span. The degraded-health
     ring deliberately carries over: channel history survives a handover. *)
  (match List.rev t.pipe with
  | [] -> ()
  | newest :: _ ->
    Trace.event_opt t.trace (Trace.Profile_swap { draining = List.length t.pipe });
    Grt_sim.Clock.advance_to t.clock newest.if_completion;
    t.pipe <- []);
  t.profile <- p

let charge_radio t ~tx_bytes ~rx_bytes =
  (* The client radio is active while bytes are on the air in either
     direction; energy is charged per transfer rather than via rails because
     async sends overlap with computation. *)
  match t.energy with
  | None -> ()
  | Some e ->
    let tx_s = float_of_int (8 * tx_bytes) /. t.profile.Profile.bandwidth_bps in
    let rx_s = float_of_int (8 * rx_bytes) /. t.profile.Profile.bandwidth_bps in
    (* Each message also keeps the radio awake for roughly the per-message
       overhead window. *)
    let awake = 2. *. t.profile.Profile.per_message_s in
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_tx
      ((tx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_tx);
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_rx
      ((rx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_rx)

let account t ~send_bytes ~recv_bytes =
  count t Metrics.Net_msgs 2;
  count t Metrics.Net_bytes_tx send_bytes;
  count t Metrics.Net_bytes_rx recv_bytes;
  charge_radio t ~tx_bytes:recv_bytes ~rx_bytes:send_bytes
(* Note: [send_bytes] is cloud->client, which the *client* receives; the
   client energy model therefore sees it as RX. *)

let note_transfer t ~retransmitted =
  let v = if retransmitted then 1 else 0 in
  if t.ring_fill = health_ring_size then
    t.ring_sum <- t.ring_sum - Char.code (Bytes.get t.health_ring t.ring_pos)
  else t.ring_fill <- t.ring_fill + 1;
  Bytes.set t.health_ring t.ring_pos (Char.chr v);
  t.ring_sum <- t.ring_sum + v;
  t.ring_pos <- (t.ring_pos + 1) mod health_ring_size;
  let rate = float_of_int t.ring_sum /. float_of_int (max 1 t.ring_fill) in
  match t.health with
  | Healthy when t.ring_fill >= health_ring_size / 2 && rate >= degraded_trip ->
    t.health <- Degraded;
    count t Metrics.Net_degraded_entries 1;
    Trace.event_opt t.trace (Trace.Degraded { rate })
  | Degraded when rate <= degraded_clear ->
    t.health <- Healthy;
    count t Metrics.Net_degraded_exits 1;
    Trace.event_opt t.trace (Trace.Healthy { rate })
  | _ -> ()

let rto t attempt =
  let base =
    Float.max Costs.link_rto_min_s (Costs.link_rto_rtt_multiplier *. t.profile.Profile.rtt_s)
  in
  Float.min Costs.link_rto_max_s (base *. (Costs.link_rto_backoff ** float_of_int (attempt - 1)))

(* Go-back-N loss detection. With a window the sender keeps frames (and their
   cumulative acks) flowing behind a loss, so the receiver spots the sequence
   hole as soon as the next frame lands and NAKs it ([Frame.Nak]): the sender
   learns of the loss after about one round trip plus a few per-message
   overheads, instead of sitting out a conservatively backed-off RTO.
   Stop-and-wait has no later traffic to reveal the gap and must rely on the
   timer. The RTO still caps the wait (min) so a dead link degrades
   identically, and late attempts still back off toward [Link_down]. *)
let gbn_detect t attempt =
  Float.min (rto t attempt)
    (Float.max Costs.link_rto_min_s
       (t.profile.Profile.rtt_s +. (4. *. t.profile.Profile.per_message_s)))

let reap t =
  let now = Grt_sim.Clock.now_ns t.clock in
  t.pipe <- List.filter (fun e -> Int64.compare e.if_completion now > 0) t.pipe

(* Block until the transmission window has a free slot: advance the virtual
   clock to the oldest in-flight completion and retire it. Only meaningful
   when window > 1 (the pipe is never populated otherwise). *)
let rec stall_for_slot t =
  reap t;
  if List.length t.pipe >= t.window then begin
    match t.pipe with
    | [] -> ()
    | oldest :: rest ->
      count t Metrics.Net_window_stalls 1;
      Trace.event_opt t.trace (Trace.Window_stall { inflight = List.length t.pipe });
      Grt_sim.Clock.advance_to t.clock oldest.if_completion;
      Grt_sim.Clock.yield t.clock;
      t.pipe <- rest;
      stall_for_slot t
  end

(* Go-back-N: a retransmission resends the oldest unacked frame *and*
   everything sent after it. Re-charge bytes and radio energy for the whole
   unacked span and record the span length. *)
let resend_span t =
  match t.pipe with
  | [] -> ()
  | pipe ->
    count t Metrics.Net_gbn_retransmits (List.length pipe);
    Hist.record_opt t.hists Hist.Gbn_span (List.length pipe);
    List.iter
      (fun e -> account t ~send_bytes:e.if_send_bytes ~recv_bytes:e.if_recv_bytes)
      pipe

(* One leg of an exchange: lost, damaged (receiver drops it on CRC), or
   delivered. *)
let leg_outcome t =
  let f = t.profile.Profile.faults in
  if Grt_util.Rng.float t.rng 1.0 < f.Profile.drop_prob then `Dropped
  else if
    f.Profile.corrupt_prob > 0. && Grt_util.Rng.float t.rng 1.0 < f.Profile.corrupt_prob
  then `Corrupt
  else begin
    if f.Profile.dup_prob > 0. && Grt_util.Rng.float t.rng 1.0 < f.Profile.dup_prob then
      (* Duplicate delivery: the sequence number identifies it and the
         receiver discards it; only the counter records it happened. *)
      count t Metrics.Net_dups 1;
    `Ok
  end

(* ARQ attempt loop shared by both transmission disciplines. Draws fault
   outcomes per leg; a lost or damaged leg fails the whole attempt, the
   sender waits [detect attempt] seconds (stop-and-wait: the exponentially
   backed-off RTO; windowed: go-back-N NAK detection) and retransmits
   ([on_retransmit] re-charges the resent bytes and energy). Returns the
   extra delay (detection waits + jitter) in seconds; the caller folds it
   into the exchange latency. Raises [Link_down] — after advancing the clock
   past the final timeout — once [Costs.link_max_attempts] attempts have
   failed. Both disciplines draw from the RNG in the same order, so exchange
   outcomes are window-invariant; only the charged delay differs. *)
let run_arq t ~op ~legs ~detect ~on_retransmit =
  let fail_down ~extra ~retransmitted =
    count t Metrics.Net_link_downs 1;
    Trace.event_opt t.trace
      (Trace.Link_down { op; attempts = Costs.link_max_attempts; extra_s = extra });
    Grt_sim.Clock.advance_s t.clock extra;
    note_transfer t ~retransmitted;
    raise (Link_down { attempts = Costs.link_max_attempts; op })
  in
  match t.outage_countdown with
  | Some 0 ->
    (* Deterministic hard outage: every attempt times out. *)
    t.outage_countdown <- None;
    let extra = ref 0. in
    for a = 1 to Costs.link_max_attempts do
      extra := !extra +. detect a;
      if a > 1 then begin
        count t Metrics.Net_retransmits 1;
        Trace.event_opt t.trace (Trace.Retransmit { op; attempt = a; outage = true });
        on_retransmit ()
      end
    done;
    fail_down ~extra:!extra ~retransmitted:true
  | Some n ->
    t.outage_countdown <- Some (n - 1);
    note_transfer t ~retransmitted:false;
    0.
  | None ->
    if not (Profile.has_faults t.profile) then begin
      note_transfer t ~retransmitted:false;
      0.
    end
    else begin
      let f = t.profile.Profile.faults in
      let extra = ref 0. in
      let rec attempt a =
        if a > Costs.link_max_attempts then fail_down ~extra:!extra ~retransmitted:true;
        if a > 1 then begin
          count t Metrics.Net_retransmits 1;
          Trace.event_opt t.trace (Trace.Retransmit { op; attempt = a; outage = false });
          on_retransmit ()
        end;
        let ok = ref true in
        for _ = 1 to legs do
          if !ok then
            match leg_outcome t with
            | `Dropped ->
              count t Metrics.Net_drops 1;
              ok := false
            | `Corrupt ->
              count t Metrics.Net_corrupt_drops 1;
              ok := false
            | `Ok -> ()
        done;
        if !ok then begin
          if f.Profile.jitter_s > 0. then
            extra := !extra +. Grt_util.Rng.float t.rng f.Profile.jitter_s;
          note_transfer t ~retransmitted:(a > 1);
          !extra
        end
        else begin
          extra := !extra +. detect a;
          attempt (a + 1)
        end
      in
      attempt 1
    end

(* Dispatch on the transmission discipline. The window=1 path is exactly the
   historical stop-and-wait code; the windowed path swaps the RTO ladder for
   go-back-N detection and re-charges the unacked span per retransmission. *)
let arq t ~op ~legs ~charge_attempt =
  if t.window = 1 then run_arq t ~op ~legs ~detect:(rto t) ~on_retransmit:charge_attempt
  else
    run_arq t ~op ~legs ~detect:(gbn_detect t)
      ~on_retransmit:(fun () ->
        charge_attempt ();
        resend_span t)

(* Jitter and retransmission must not reorder deliveries: the channel is
   FIFO (sequence numbers), so completion times are clamped monotonic. *)
let deliver_at t completion =
  let completion =
    if Int64.compare completion t.last_delivery < 0 then t.last_delivery else completion
  in
  t.last_delivery <- completion;
  completion

let round_trip t ~send_bytes ~recv_bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"round_trip" (fun () ->
      if t.window > 1 then stall_for_slot t;
      account t ~send_bytes ~recv_bytes;
      count t Metrics.Net_blocking_rtts 1;
      let extra =
        arq t ~op:"round_trip" ~legs:2 ~charge_attempt:(fun () ->
            account t ~send_bytes ~recv_bytes)
      in
      let latency = Profile.round_trip_s t.profile ~send_bytes ~recv_bytes +. extra in
      Hist.record_opt t.hists Hist.Rtt_ns (int_of_float (latency *. 1e9));
      Grt_sim.Clock.advance_s t.clock latency;
      ignore (deliver_at t (Grt_sim.Clock.now_ns t.clock)));
  Grt_sim.Clock.yield t.clock

let async_send t ~send_bytes ~recv_bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"async_send" (fun () ->
      if t.window > 1 then stall_for_slot t;
      account t ~send_bytes ~recv_bytes;
      count t Metrics.Net_async_sends 1;
      let extra =
        arq t ~op:"async_send" ~legs:2 ~charge_attempt:(fun () ->
            account t ~send_bytes ~recv_bytes)
      in
      let latency = Profile.round_trip_s t.profile ~send_bytes ~recv_bytes +. extra in
      Hist.record_opt t.hists Hist.Rtt_ns (int_of_float (latency *. 1e9));
      let completion =
        deliver_at t (Int64.add (Grt_sim.Clock.now_ns t.clock) (Int64.of_float (latency *. 1e9)))
      in
      if t.window > 1 then
        t.pipe <-
          t.pipe
          @ [ { if_send_bytes = send_bytes; if_recv_bytes = recv_bytes; if_completion = completion } ];
      completion)

let wait_until t deadline =
  if Int64.compare deadline (Grt_sim.Clock.now_ns t.clock) > 0 then begin
    count t Metrics.Net_stall_waits 1;
    Grt_sim.Clock.advance_to t.clock deadline;
    Grt_sim.Clock.yield t.clock
  end

(* One-way pushes retransmit on payload loss only; the tiny reverse ack is
   assumed reliable (its loss would be repaired by the next exchange). *)
let one_way_to_client t ~bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"one_way_to_client" (fun () ->
      if t.window > 1 then stall_for_slot t;
      count t Metrics.Net_msgs 1;
      count t Metrics.Net_bytes_tx bytes;
      charge_radio t ~tx_bytes:0 ~rx_bytes:bytes;
      let extra =
        arq t ~op:"one_way_to_client" ~legs:1 ~charge_attempt:(fun () ->
            count t Metrics.Net_msgs 1;
            count t Metrics.Net_bytes_tx bytes;
            charge_radio t ~tx_bytes:0 ~rx_bytes:bytes)
      in
      Grt_sim.Clock.advance_s t.clock (Profile.one_way_s t.profile bytes +. extra);
      ignore (deliver_at t (Grt_sim.Clock.now_ns t.clock)));
  Grt_sim.Clock.yield t.clock

let one_way_from_client t ~bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"one_way_from_client" (fun () ->
      if t.window > 1 then stall_for_slot t;
      count t Metrics.Net_msgs 1;
      count t Metrics.Net_bytes_rx bytes;
      charge_radio t ~tx_bytes:bytes ~rx_bytes:0;
      let extra =
        arq t ~op:"one_way_from_client" ~legs:1 ~charge_attempt:(fun () ->
            count t Metrics.Net_msgs 1;
            count t Metrics.Net_bytes_rx bytes;
            charge_radio t ~tx_bytes:bytes ~rx_bytes:0)
      in
      Grt_sim.Clock.advance_s t.clock (Profile.one_way_s t.profile bytes +. extra);
      ignore (deliver_at t (Grt_sim.Clock.now_ns t.clock)));
  Grt_sim.Clock.yield t.clock

let counter_int t key = match t.metrics with Some m -> Metrics.get_int m key | None -> 0

let blocking_rtts t = counter_int t Metrics.Net_blocking_rtts
let stall_waits t = counter_int t Metrics.Net_stall_waits
let retransmits t = counter_int t Metrics.Net_retransmits
let window_stalls t = counter_int t Metrics.Net_window_stalls
let inflight t = List.length t.pipe

let bytes_tx t = match t.metrics with Some m -> Metrics.get m Metrics.Net_bytes_tx | None -> 0L

let bytes_rx t = match t.metrics with Some m -> Metrics.get m Metrics.Net_bytes_rx | None -> 0L
