module Costs = Grt_sim.Costs
module Metrics = Grt_sim.Metrics
module Trace = Grt_sim.Trace
module Tracer = Grt_sim.Tracer
module Hist = Grt_sim.Hist

type health = Healthy | Degraded

exception Link_down of { attempts : int; op : string }

(* Ring over recent exchanges used to detect a persistently lossy channel
   (degraded mode, hysteresis: trip high, clear low). Distinct from the
   transmission [window] below, which bounds exchanges in flight. *)
let health_ring_size = 64

let degraded_trip = 0.20
let degraded_clear = degraded_trip /. 4.

(* The windowed in-flight pipe is a ring of parallel int arrays sized
   [window]: byte costs (needed to re-charge the whole unacked span on a
   go-back-N retransmission) and the virtual time, in unboxed ns, at which
   each response lands. Completions are clamped monotonic by [deliver_at],
   so the ring is ordered oldest-first from [pipe_head]. Exchanges run on
   every simulated commit, so the pipe must not allocate per send. *)
type t = {
  mutable profile : Profile.t;
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t option;
  metrics : Metrics.t option;
  trace : Trace.t option;
  tracer : Tracer.t option;
  hists : Hist.set option;
  rng : Grt_util.Rng.t;
  window : int;
  pipe_send : int array; (* length [window]; unused when window = 1 *)
  pipe_recv : int array;
  pipe_done : int array; (* completion ns, oldest first from pipe_head *)
  mutable pipe_head : int;
  mutable pipe_count : int;
  mutable last_delivery : int; (* ns; 63 bits do not overflow *)
  health_ring : Bytes.t;
  mutable ring_fill : int;
  mutable ring_pos : int;
  mutable ring_sum : int;
  mutable health : health;
  mutable outage_countdown : int option;
}

let create ~clock ?energy ?counters ?trace ?tracer ?hists ?(seed = 0x4C494E4BL) ?(window = 1)
    profile =
  if window < 1 then invalid_arg "Link.create: window must be >= 1";
  {
    profile;
    clock;
    energy;
    metrics = Option.map Metrics.of_counters counters;
    trace;
    tracer;
    hists;
    rng = Grt_util.Rng.create ~seed;
    window;
    pipe_send = Array.make window 0;
    pipe_recv = Array.make window 0;
    pipe_done = Array.make window 0;
    pipe_head = 0;
    pipe_count = 0;
    last_delivery = 0;
    health_ring = Bytes.make health_ring_size '\000';
    ring_fill = 0;
    ring_pos = 0;
    ring_sum = 0;
    health = Healthy;
    outage_countdown = None;
  }

let profile t = t.profile
let window t = t.window
let clock t = t.clock
let health t = t.health
let inject_outage_after t n = t.outage_countdown <- Some n

let count t key v = match t.metrics with Some m -> Metrics.add m key v | None -> ()

let set_profile t p =
  (* Windowed sends still in flight were priced under the old profile; drain
     them before the swap so they cannot complete against the new profile's
     costs. The newest pipe entry has the latest completion (monotonic
     clamp), so one clock advance retires the whole span. The degraded-health
     ring deliberately carries over: channel history survives a handover. *)
  if t.pipe_count > 0 then begin
    Trace.event_opt t.trace (Trace.Profile_swap { draining = t.pipe_count });
    let newest = t.pipe_done.((t.pipe_head + t.pipe_count - 1) mod t.window) in
    Grt_sim.Clock.advance_to_int t.clock newest;
    t.pipe_head <- 0;
    t.pipe_count <- 0
  end;
  t.profile <- p

let charge_radio t ~tx_bytes ~rx_bytes =
  (* The client radio is active while bytes are on the air in either
     direction; energy is charged per transfer rather than via rails because
     async sends overlap with computation. *)
  match t.energy with
  | None -> ()
  | Some e ->
    let tx_s = float_of_int (8 * tx_bytes) /. t.profile.Profile.bandwidth_bps in
    let rx_s = float_of_int (8 * rx_bytes) /. t.profile.Profile.bandwidth_bps in
    (* Each message also keeps the radio awake for roughly the per-message
       overhead window. *)
    let awake = 2. *. t.profile.Profile.per_message_s in
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_tx
      ((tx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_tx);
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_rx
      ((rx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_rx)

let account t ~send_bytes ~recv_bytes =
  count t Metrics.Net_msgs 2;
  count t Metrics.Net_bytes_tx send_bytes;
  count t Metrics.Net_bytes_rx recv_bytes;
  charge_radio t ~tx_bytes:recv_bytes ~rx_bytes:send_bytes
(* Note: [send_bytes] is cloud->client, which the *client* receives; the
   client energy model therefore sees it as RX. *)

let note_transfer t ~retransmitted =
  let v = if retransmitted then 1 else 0 in
  if t.ring_fill = health_ring_size then
    t.ring_sum <- t.ring_sum - Char.code (Bytes.get t.health_ring t.ring_pos)
  else t.ring_fill <- t.ring_fill + 1;
  Bytes.set t.health_ring t.ring_pos (Char.chr v);
  t.ring_sum <- t.ring_sum + v;
  t.ring_pos <- (t.ring_pos + 1) mod health_ring_size;
  let rate = float_of_int t.ring_sum /. float_of_int (max 1 t.ring_fill) in
  match t.health with
  | Healthy when t.ring_fill >= health_ring_size / 2 && rate >= degraded_trip ->
    t.health <- Degraded;
    count t Metrics.Net_degraded_entries 1;
    Trace.event_opt t.trace (Trace.Degraded { rate })
  | Degraded when rate <= degraded_clear ->
    t.health <- Healthy;
    count t Metrics.Net_degraded_exits 1;
    Trace.event_opt t.trace (Trace.Healthy { rate })
  | _ -> ()

let rto t attempt =
  let base =
    Float.max Costs.link_rto_min_s (Costs.link_rto_rtt_multiplier *. t.profile.Profile.rtt_s)
  in
  Float.min Costs.link_rto_max_s (base *. (Costs.link_rto_backoff ** float_of_int (attempt - 1)))

(* Go-back-N loss detection. With a window the sender keeps frames (and their
   cumulative acks) flowing behind a loss, so the receiver spots the sequence
   hole as soon as the next frame lands and NAKs it ([Frame.Nak]): the sender
   learns of the loss after about one round trip plus a few per-message
   overheads, instead of sitting out a conservatively backed-off RTO.
   Stop-and-wait has no later traffic to reveal the gap and must rely on the
   timer. The RTO still caps the wait (min) so a dead link degrades
   identically, and late attempts still back off toward [Link_down]. *)
let gbn_detect t attempt =
  Float.min (rto t attempt)
    (Float.max Costs.link_rto_min_s
       (t.profile.Profile.rtt_s +. (4. *. t.profile.Profile.per_message_s)))

(* Both disciplines share the ARQ loop; the detection wait is the only
   difference, so the loop dispatches on the window size instead of taking
   the wait as a closure. *)
let detect t attempt = if t.window = 1 then rto t attempt else gbn_detect t attempt

let pipe_pop t =
  t.pipe_head <- (t.pipe_head + 1) mod t.window;
  t.pipe_count <- t.pipe_count - 1

let reap t =
  let now = Grt_sim.Clock.now_int t.clock in
  while t.pipe_count > 0 && t.pipe_done.(t.pipe_head) <= now do
    pipe_pop t
  done

(* Block until the transmission window has a free slot: advance the virtual
   clock to the oldest in-flight completion and retire it. Only meaningful
   when window > 1 (the pipe is never populated otherwise). *)
let rec stall_for_slot t =
  reap t;
  if t.pipe_count >= t.window then begin
    count t Metrics.Net_window_stalls 1;
    Trace.event_opt t.trace (Trace.Window_stall { inflight = t.pipe_count });
    Grt_sim.Clock.advance_to_int t.clock t.pipe_done.(t.pipe_head);
    Grt_sim.Clock.yield t.clock;
    pipe_pop t;
    stall_for_slot t
  end

(* Go-back-N: a retransmission resends the oldest unacked frame *and*
   everything sent after it. Re-charge bytes and radio energy for the whole
   unacked span and record the span length. *)
let resend_span t =
  if t.pipe_count > 0 then begin
    count t Metrics.Net_gbn_retransmits t.pipe_count;
    Hist.record_opt t.hists Hist.Gbn_span t.pipe_count;
    for i = 0 to t.pipe_count - 1 do
      let s = (t.pipe_head + i) mod t.window in
      account t ~send_bytes:t.pipe_send.(s) ~recv_bytes:t.pipe_recv.(s)
    done
  end

(* One leg of an exchange: lost, damaged (receiver drops it on CRC), or
   delivered. *)
let leg_outcome t =
  let f = t.profile.Profile.faults in
  if Grt_util.Rng.float t.rng 1.0 < f.Profile.drop_prob then `Dropped
  else if
    f.Profile.corrupt_prob > 0. && Grt_util.Rng.float t.rng 1.0 < f.Profile.corrupt_prob
  then `Corrupt
  else begin
    if f.Profile.dup_prob > 0. && Grt_util.Rng.float t.rng 1.0 < f.Profile.dup_prob then
      (* Duplicate delivery: the sequence number identifies it and the
         receiver discards it; only the counter records it happened. *)
      count t Metrics.Net_dups 1;
    `Ok
  end

(* What a retransmission re-charges. A variant rather than a callback so the
   ARQ loop costs no closure per exchange. *)
type charge = Charge_exchange | Charge_push_to_client | Charge_push_from_client

let charge_attempt t charge ~send_bytes ~recv_bytes =
  (match charge with
  | Charge_exchange -> account t ~send_bytes ~recv_bytes
  | Charge_push_to_client ->
    count t Metrics.Net_msgs 1;
    count t Metrics.Net_bytes_tx send_bytes;
    charge_radio t ~tx_bytes:0 ~rx_bytes:send_bytes
  | Charge_push_from_client ->
    count t Metrics.Net_msgs 1;
    count t Metrics.Net_bytes_rx recv_bytes;
    charge_radio t ~tx_bytes:recv_bytes ~rx_bytes:0);
  (* Go-back-N: the whole unacked span goes out again with the resent
     frame. A no-op under stop-and-wait (the pipe is empty). *)
  if t.window > 1 then resend_span t

let fail_down t ~op ~extra ~retransmitted =
  count t Metrics.Net_link_downs 1;
  Trace.event_opt t.trace
    (Trace.Link_down { op; attempts = Costs.link_max_attempts; extra_s = extra });
  Grt_sim.Clock.advance_s t.clock extra;
  note_transfer t ~retransmitted;
  raise (Link_down { attempts = Costs.link_max_attempts; op })

(* ARQ attempt loop shared by both transmission disciplines. Draws fault
   outcomes per leg; a lost or damaged leg fails the whole attempt, the
   sender waits [detect t attempt] seconds (stop-and-wait: the exponentially
   backed-off RTO; windowed: go-back-N NAK detection) and retransmits,
   re-charging the resent bytes and energy per [charge]. Returns the
   extra delay (detection waits + jitter) in seconds; the caller folds it
   into the exchange latency. Raises [Link_down] — after advancing the clock
   past the final timeout — once [Costs.link_max_attempts] attempts have
   failed. Both disciplines draw from the RNG in the same order, so exchange
   outcomes are window-invariant; only the charged delay differs. *)
let run_arq t ~op ~legs ~charge ~send_bytes ~recv_bytes =
  match t.outage_countdown with
  | Some 0 ->
    (* Deterministic hard outage: every attempt times out. *)
    t.outage_countdown <- None;
    let extra = ref 0. in
    for a = 1 to Costs.link_max_attempts do
      extra := !extra +. detect t a;
      if a > 1 then begin
        count t Metrics.Net_retransmits 1;
        Trace.event_opt t.trace (Trace.Retransmit { op; attempt = a; outage = true });
        charge_attempt t charge ~send_bytes ~recv_bytes
      end
    done;
    fail_down t ~op ~extra:!extra ~retransmitted:true
  | Some n ->
    t.outage_countdown <- Some (n - 1);
    note_transfer t ~retransmitted:false;
    0.
  | None ->
    if not (Profile.has_faults t.profile) then begin
      note_transfer t ~retransmitted:false;
      0.
    end
    else begin
      let f = t.profile.Profile.faults in
      let extra = ref 0. in
      let rec attempt a =
        if a > Costs.link_max_attempts then
          fail_down t ~op ~extra:!extra ~retransmitted:true;
        if a > 1 then begin
          count t Metrics.Net_retransmits 1;
          Trace.event_opt t.trace (Trace.Retransmit { op; attempt = a; outage = false });
          charge_attempt t charge ~send_bytes ~recv_bytes
        end;
        let ok = ref true in
        for _ = 1 to legs do
          if !ok then
            match leg_outcome t with
            | `Dropped ->
              count t Metrics.Net_drops 1;
              ok := false
            | `Corrupt ->
              count t Metrics.Net_corrupt_drops 1;
              ok := false
            | `Ok -> ()
        done;
        if !ok then begin
          if f.Profile.jitter_s > 0. then
            extra := !extra +. Grt_util.Rng.float t.rng f.Profile.jitter_s;
          note_transfer t ~retransmitted:(a > 1);
          !extra
        end
        else begin
          extra := !extra +. detect t a;
          attempt (a + 1)
        end
      in
      attempt 1
    end

(* Jitter and retransmission must not reorder deliveries: the channel is
   FIFO (sequence numbers), so completion times are clamped monotonic. *)
let deliver_at t completion =
  let completion = if completion < t.last_delivery then t.last_delivery else completion in
  t.last_delivery <- completion;
  completion

let round_trip_run t ~send_bytes ~recv_bytes =
  if t.window > 1 then stall_for_slot t;
  account t ~send_bytes ~recv_bytes;
  count t Metrics.Net_blocking_rtts 1;
  let extra =
    run_arq t ~op:"round_trip" ~legs:2 ~charge:Charge_exchange ~send_bytes ~recv_bytes
  in
  let latency = Profile.round_trip_s t.profile ~send_bytes ~recv_bytes +. extra in
  let lat_ns = int_of_float (latency *. 1e9) in
  Hist.record_opt t.hists Hist.Rtt_ns lat_ns;
  Grt_sim.Clock.advance_int t.clock lat_ns;
  ignore (deliver_at t (Grt_sim.Clock.now_int t.clock))

let round_trip t ~send_bytes ~recv_bytes =
  (match t.tracer with
  | None -> round_trip_run t ~send_bytes ~recv_bytes
  | Some _ ->
    Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"round_trip" (fun () ->
        round_trip_run t ~send_bytes ~recv_bytes));
  Grt_sim.Clock.yield t.clock

let async_send_run t ~send_bytes ~recv_bytes =
  if t.window > 1 then stall_for_slot t;
  account t ~send_bytes ~recv_bytes;
  count t Metrics.Net_async_sends 1;
  let extra =
    run_arq t ~op:"async_send" ~legs:2 ~charge:Charge_exchange ~send_bytes ~recv_bytes
  in
  let latency = Profile.round_trip_s t.profile ~send_bytes ~recv_bytes +. extra in
  let lat_ns = int_of_float (latency *. 1e9) in
  Hist.record_opt t.hists Hist.Rtt_ns lat_ns;
  let completion = deliver_at t (Grt_sim.Clock.now_int t.clock + lat_ns) in
  if t.window > 1 then begin
    let slot = (t.pipe_head + t.pipe_count) mod t.window in
    t.pipe_send.(slot) <- send_bytes;
    t.pipe_recv.(slot) <- recv_bytes;
    t.pipe_done.(slot) <- completion;
    t.pipe_count <- t.pipe_count + 1
  end;
  completion

let async_send_int t ~send_bytes ~recv_bytes =
  match t.tracer with
  | None -> async_send_run t ~send_bytes ~recv_bytes
  | Some _ ->
    Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"async_send" (fun () ->
        async_send_run t ~send_bytes ~recv_bytes)

let async_send t ~send_bytes ~recv_bytes =
  Int64.of_int (async_send_int t ~send_bytes ~recv_bytes)

let wait_until_int t deadline =
  if deadline > Grt_sim.Clock.now_int t.clock then begin
    count t Metrics.Net_stall_waits 1;
    Grt_sim.Clock.advance_to_int t.clock deadline;
    Grt_sim.Clock.yield t.clock
  end

let wait_until t deadline = wait_until_int t (Int64.to_int deadline)

(* One-way pushes retransmit on payload loss only; the tiny reverse ack is
   assumed reliable (its loss would be repaired by the next exchange). *)
let one_way_to_client t ~bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"one_way_to_client" (fun () ->
      if t.window > 1 then stall_for_slot t;
      count t Metrics.Net_msgs 1;
      count t Metrics.Net_bytes_tx bytes;
      charge_radio t ~tx_bytes:0 ~rx_bytes:bytes;
      let extra =
        run_arq t ~op:"one_way_to_client" ~legs:1 ~charge:Charge_push_to_client
          ~send_bytes:bytes ~recv_bytes:0
      in
      Grt_sim.Clock.advance_int t.clock
        (int_of_float ((Profile.one_way_s t.profile bytes +. extra) *. 1e9));
      ignore (deliver_at t (Grt_sim.Clock.now_int t.clock)));
  Grt_sim.Clock.yield t.clock

let one_way_from_client t ~bytes =
  Tracer.span_opt t.tracer ~cat:Tracer.Link_exchange ~name:"one_way_from_client" (fun () ->
      if t.window > 1 then stall_for_slot t;
      count t Metrics.Net_msgs 1;
      count t Metrics.Net_bytes_rx bytes;
      charge_radio t ~tx_bytes:bytes ~rx_bytes:0;
      let extra =
        run_arq t ~op:"one_way_from_client" ~legs:1 ~charge:Charge_push_from_client
          ~send_bytes:0 ~recv_bytes:bytes
      in
      Grt_sim.Clock.advance_int t.clock
        (int_of_float ((Profile.one_way_s t.profile bytes +. extra) *. 1e9));
      ignore (deliver_at t (Grt_sim.Clock.now_int t.clock)));
  Grt_sim.Clock.yield t.clock

let counter_int t key = match t.metrics with Some m -> Metrics.get_int m key | None -> 0

let blocking_rtts t = counter_int t Metrics.Net_blocking_rtts
let stall_waits t = counter_int t Metrics.Net_stall_waits
let retransmits t = counter_int t Metrics.Net_retransmits
let window_stalls t = counter_int t Metrics.Net_window_stalls
let inflight t = t.pipe_count

let bytes_tx t = match t.metrics with Some m -> Metrics.get m Metrics.Net_bytes_tx | None -> 0L

let bytes_rx t = match t.metrics with Some m -> Metrics.get m Metrics.Net_bytes_rx | None -> 0L
