type faults = {
  drop_prob : float;
  dup_prob : float;
  corrupt_prob : float;
  jitter_s : float;
}

let no_faults = { drop_prob = 0.; dup_prob = 0.; corrupt_prob = 0.; jitter_s = 0. }

type t = {
  name : string;
  rtt_s : float;
  bandwidth_bps : float;
  per_message_s : float;
  faults : faults;
}

let wifi =
  { name = "wifi"; rtt_s = 0.020; bandwidth_bps = 80.0e6; per_message_s = 40e-6; faults = no_faults }

let cellular =
  {
    name = "cellular";
    rtt_s = 0.050;
    bandwidth_bps = 40.0e6;
    per_message_s = 60e-6;
    faults = no_faults;
  }

let lan =
  { name = "lan"; rtt_s = 0.0002; bandwidth_bps = 1.0e9; per_message_s = 5e-6; faults = no_faults }

let custom ~name ~rtt_ms ~bandwidth_mbps =
  if rtt_ms < 0. || bandwidth_mbps <= 0. then invalid_arg "Profile.custom";
  {
    name;
    rtt_s = rtt_ms /. 1e3;
    bandwidth_bps = bandwidth_mbps *. 1e6;
    per_message_s = 40e-6;
    faults = no_faults;
  }

let valid_prob p = p >= 0. && p < 1.

let degrade ?(dup_prob = 0.) ?(corrupt_prob = 0.) ?(jitter_s = 0.) ~drop_prob p =
  if
    not
      (valid_prob drop_prob && valid_prob dup_prob && valid_prob corrupt_prob && jitter_s >= 0.)
  then invalid_arg "Profile.degrade";
  let faults = { drop_prob; dup_prob; corrupt_prob; jitter_s } in
  let name =
    if faults = no_faults then p.name
    else Printf.sprintf "%s+loss%.2g%%" p.name (100. *. (drop_prob +. corrupt_prob))
  in
  { p with name; faults }

let has_faults p = p.faults <> no_faults

let one_way_s p bytes =
  (p.rtt_s /. 2.) +. (float_of_int (8 * bytes) /. p.bandwidth_bps) +. p.per_message_s

let round_trip_s p ~send_bytes ~recv_bytes = one_way_s p send_bytes +. one_way_s p recv_bytes

let pp ppf p =
  Format.fprintf ppf "%s (RTT %.0f ms, BW %.0f Mbps)" p.name (p.rtt_s *. 1e3)
    (p.bandwidth_bps /. 1e6);
  if has_faults p then
    Format.fprintf ppf " [drop %.1f%%, dup %.1f%%, corrupt %.1f%%, jitter %.1f ms]"
      (100. *. p.faults.drop_prob) (100. *. p.faults.dup_prob) (100. *. p.faults.corrupt_prob)
      (p.faults.jitter_s *. 1e3)
