type kind =
  | Commit_request
  | Commit_response
  | Poll_offload
  | Poll_result
  | Mem_sync
  | Mem_sync_ack
  | Irq_notify
  | Recording_download
  | Control
  | Ack
  | Nak

let kind_to_int = function
  | Commit_request -> 1
  | Commit_response -> 2
  | Poll_offload -> 3
  | Poll_result -> 4
  | Mem_sync -> 5
  | Mem_sync_ack -> 6
  | Irq_notify -> 7
  | Recording_download -> 8
  | Control -> 9
  | Ack -> 10
  | Nak -> 11

let kind_of_int = function
  | 1 -> Some Commit_request
  | 2 -> Some Commit_response
  | 3 -> Some Poll_offload
  | 4 -> Some Poll_result
  | 5 -> Some Mem_sync
  | 6 -> Some Mem_sync_ack
  | 7 -> Some Irq_notify
  | 8 -> Some Recording_download
  | 9 -> Some Control
  | 10 -> Some Ack
  | 11 -> Some Nak
  | _ -> None

let magic = 0x47525446 (* "GRTF" *)

let overhead_bytes = 4 + 1 + 4 + 4 + 4 (* magic + kind + seq + length + crc *)

type msg = { kind : kind; seq : int; payload : bytes }

(* The CRC covers kind, seq, length and payload — everything after the
   magic — so a damaged sequence number is caught, not just a damaged
   payload. *)
let crc_of_body body =
  Int32.to_int (Grt_util.Hashing.crc32 body) land 0xFFFFFFFF

let seal ?(seq = 0) kind payload =
  let body = Grt_util.Byte_buf.create ~capacity:(Bytes.length payload + 13) () in
  Grt_util.Byte_buf.add_u8 body (kind_to_int kind);
  Grt_util.Byte_buf.add_u32 body (seq land 0xFFFFFFFF);
  Grt_util.Byte_buf.add_u32 body (Bytes.length payload);
  Grt_util.Byte_buf.add_bytes body payload;
  let body = Grt_util.Byte_buf.contents body in
  let buf = Grt_util.Byte_buf.create ~capacity:(Bytes.length body + 8) () in
  Grt_util.Byte_buf.add_u32 buf magic;
  Grt_util.Byte_buf.add_bytes buf body;
  Grt_util.Byte_buf.add_u32 buf (crc_of_body body);
  Grt_util.Byte_buf.contents buf

let ack ~seq = seal ~seq Ack Bytes.empty

let open_full frame =
  try
    let r = Grt_util.Byte_buf.Reader.of_bytes frame in
    let m = Grt_util.Byte_buf.Reader.u32 r in
    if m <> magic then Error "frame: bad magic"
    else
      match Grt_util.Byte_buf.Reader.u8 r |> kind_of_int with
      | None -> Error "frame: unknown kind"
      | Some kind ->
        let seq = Grt_util.Byte_buf.Reader.u32 r in
        let len = Grt_util.Byte_buf.Reader.u32 r in
        let payload = Grt_util.Byte_buf.Reader.bytes r len in
        let crc = Grt_util.Byte_buf.Reader.u32 r in
        if Bytes.length frame < 4 + 9 + len then Error "frame: truncated"
        else if crc <> crc_of_body (Bytes.sub frame 4 (9 + len)) then
          Error "frame: CRC mismatch"
        else Ok { kind; seq; payload }
  with Failure _ -> Error "frame: truncated"

let open_ frame =
  match open_full frame with Ok m -> Ok (m.kind, m.payload) | Error _ as e -> e
