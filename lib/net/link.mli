(** Cost-accounting view of the cloud/client connection.

    The recording session is simulated in one process; the link does not move
    bytes, it charges their cost: virtual-clock delay, radio energy on the
    client, and statistic counters. It supports both blocking round trips
    (synchronous commits) and fire-and-forget sends whose completion time is
    returned so callers can overlap computation (speculative commits, §4.2).

    {b Transmission disciplines.} With the default [window = 1] every
    exchange runs stop-and-wait ARQ: lost or damaged legs time out, the
    sender backs off exponentially ([Grt_sim.Costs.link_rto_*]) and
    retransmits, and after [Grt_sim.Costs.link_max_attempts] failures the
    link raises [Link_down]. With [window = N > 1] the link becomes a
    sliding-window pipeline: up to N exchanges may be in flight at once
    (excess sends stall on the oldest completion — [net.window_stalls]),
    completion stays monotonic FIFO, and loss recovery is go-back-N — the
    receiver NAKs the first sequence hole ([Frame.Nak]) so the sender detects
    a loss after roughly one round trip instead of a backed-off RTO, then
    resends the oldest unacked frame plus every later in-flight frame (the
    span's bytes and energy are re-charged; [net.gbn_retransmits] counts the
    span sizes).

    Both disciplines draw faults from the same seeded [Grt_util.Rng] in the
    same order, so for a given (seed, profile, traffic) triple the exchange
    {e outcomes} (success / [Link_down] attempt counts) are identical across
    window sizes; only the modeled clock, energy, and counters differ. *)

type t

type health = Healthy | Degraded

exception Link_down of { attempts : int; op : string }
(** The ARQ gave up on an exchange: [attempts] sends (first try plus
    retransmissions) all timed out. The virtual clock has already been
    advanced past the final timeout when this is raised. *)

val create :
  clock:Grt_sim.Clock.t ->
  ?energy:Grt_sim.Energy.t ->
  ?counters:Grt_sim.Counters.t ->
  ?trace:Grt_sim.Trace.t ->
  ?tracer:Grt_sim.Tracer.t ->
  ?hists:Grt_sim.Hist.set ->
  ?seed:int64 ->
  ?window:int ->
  Profile.t ->
  t
(** [seed] defaults to a fixed constant so fault draws are reproducible even
    when the caller does not thread a seed through. [window] (default 1 =
    stop-and-wait) is the sliding-window size: how many exchanges may be in
    flight before a send stalls; raises [Invalid_argument] if < 1. [trace]
    receives retransmit / link-down / degraded-transition / window events
    under topic ["link"]. [tracer] gets a [Link_exchange] span per exchange;
    [hists] gets the charged latency ([Rtt_ns]) and go-back-N span sizes
    ([Gbn_span]). All three observers default to off and cost nothing. *)

val profile : t -> Profile.t

val window : t -> int
(** The configured sliding-window size (1 = stop-and-wait). *)

val set_profile : t -> Profile.t -> unit
(** Swap network conditions mid-session (e.g. an experiment moving from a
    clean to a lossy phase). Any windowed sends still in flight are drained
    first — the virtual clock advances to the last outstanding completion and
    the pipe empties — so exchanges priced under the old profile can never
    complete against the new one's costs. Counters and the degraded-health
    ring carry over. *)

val clock : t -> Grt_sim.Clock.t

val health : t -> health
(** [Degraded] once the retransmission rate over a ring of recent exchanges
    trips a high-water threshold; back to [Healthy] after the rate falls
    under a quarter of it (hysteresis, so the policy doesn't flap). *)

val inject_outage_after : t -> int -> unit
(** [inject_outage_after t n]: after [n] more successful exchanges, the next
    one deterministically times out every attempt and raises [Link_down].
    Test hook for recovery paths — independent of the random fault draws. *)

val round_trip : t -> send_bytes:int -> recv_bytes:int -> unit
(** Blocking exchange: advances the clock by the full round-trip latency
    (plus any retransmission timeouts and jitter) and counts one blocking
    RTT. In windowed mode, first stalls until a window slot is free. Raises
    [Link_down] if the ARQ gives up. *)

val async_send : t -> send_bytes:int -> recv_bytes:int -> int64
(** Non-blocking exchange: charges bytes and energy now, returns the absolute
    virtual time (ns) at which the response will have arrived. Does not
    advance the clock and does not count a blocking RTT — except in windowed
    mode when the pipe already holds [window] exchanges, in which case the
    clock first advances to the oldest in-flight completion
    ([net.window_stalls]). Completion times are clamped monotonic so jitter
    never reorders the FIFO channel. Raises [Link_down] if the ARQ gives
    up. *)

val async_send_int : t -> send_bytes:int -> recv_bytes:int -> int
(** [async_send] with the completion time as an unboxed [int] of ns (the
    clock stores time as one; 63 bits do not overflow). The speculation
    pipeline dispatches one exchange per commit, so the hot path uses the
    [_int] entry points to avoid boxing an [int64] per send. *)

val wait_until : t -> int64 -> unit
(** Advance the clock to an [async_send] completion time (no-op if already
    past). Counts [net.stall_waits] only when an actual wait occurred. *)

val wait_until_int : t -> int -> unit
(** [wait_until] with an unboxed deadline, paired with
    {!async_send_int}. *)

val one_way_to_client : t -> bytes:int -> unit
(** Blocking one-way push (e.g. the final recording download). *)

val one_way_from_client : t -> bytes:int -> unit
(** Blocking one-way upload (interrupt forwarding plus the client's memory
    dump, §5). *)

val blocking_rtts : t -> int
(** Number of blocking round trips charged so far. *)

val stall_waits : t -> int
(** Number of speculative commits that stalled on their completion time. *)

val retransmits : t -> int
(** Number of retransmitted exchanges so far. *)

val window_stalls : t -> int
(** Number of sends that stalled waiting for a free window slot. *)

val inflight : t -> int
(** Exchanges currently in the transmission pipe (always 0 when
    [window = 1]; in-flight entries whose completion has passed are only
    retired lazily, at the next send or [set_profile]). *)

val bytes_tx : t -> int64
val bytes_rx : t -> int64
