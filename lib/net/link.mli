(** Cost-accounting view of the cloud/client connection.

    The recording session is simulated in one process; the link does not move
    bytes, it charges their cost: virtual-clock delay, radio energy on the
    client, and statistic counters. It supports both blocking round trips
    (synchronous commits) and fire-and-forget sends whose completion time is
    returned so callers can overlap computation (speculative commits, §4.2).

    When the profile carries faults, every exchange runs a stop-and-wait ARQ:
    lost or damaged legs time out, the sender backs off exponentially
    ([Grt_sim.Costs.link_rto_*]) and retransmits, and after
    [Grt_sim.Costs.link_max_attempts] failures the link raises [Link_down].
    All fault draws come from a seeded [Grt_util.Rng], so a given (seed,
    profile, traffic) triple is fully deterministic. *)

type t

type health = Healthy | Degraded

exception Link_down of { attempts : int; op : string }
(** The ARQ gave up on an exchange: [attempts] sends (first try plus
    retransmissions) all timed out. The virtual clock has already been
    advanced past the final timeout when this is raised. *)

val create :
  clock:Grt_sim.Clock.t ->
  ?energy:Grt_sim.Energy.t ->
  ?counters:Grt_sim.Counters.t ->
  ?trace:Grt_sim.Trace.t ->
  ?seed:int64 ->
  Profile.t ->
  t
(** [seed] defaults to a fixed constant so fault draws are reproducible even
    when the caller does not thread a seed through. [trace] receives
    retransmit / link-down / degraded-transition events under topic
    ["link"]. *)

val profile : t -> Profile.t

val set_profile : t -> Profile.t -> unit
(** Swap network conditions mid-session (e.g. an experiment moving from a
    clean to a lossy phase). Counters and the degraded-mode window carry
    over. *)

val clock : t -> Grt_sim.Clock.t

val health : t -> health
(** [Degraded] once the retransmission rate over a sliding window of recent
    exchanges trips a high-water threshold; back to [Healthy] after the rate
    falls under a quarter of it (hysteresis, so the policy doesn't flap). *)

val inject_outage_after : t -> int -> unit
(** [inject_outage_after t n]: after [n] more successful exchanges, the next
    one deterministically times out every attempt and raises [Link_down].
    Test hook for recovery paths — independent of the random fault draws. *)

val round_trip : t -> send_bytes:int -> recv_bytes:int -> unit
(** Blocking exchange: advances the clock by the full round-trip latency
    (plus any retransmission timeouts and jitter) and counts one blocking
    RTT. Raises [Link_down] if the ARQ gives up. *)

val async_send : t -> send_bytes:int -> recv_bytes:int -> int64
(** Non-blocking exchange: charges bytes and energy now, returns the absolute
    virtual time (ns) at which the response will have arrived. Does not
    advance the clock and does not count a blocking RTT. Completion times are
    clamped monotonic so jitter never reorders the FIFO channel. Raises
    [Link_down] if the ARQ gives up. *)

val wait_until : t -> int64 -> unit
(** Advance the clock to an [async_send] completion time (no-op if already
    past). Counts [net.stall_waits] only when an actual wait occurred. *)

val one_way_to_client : t -> bytes:int -> unit
(** Blocking one-way push (e.g. the final recording download). *)

val one_way_from_client : t -> bytes:int -> unit
(** Blocking one-way upload (interrupt forwarding plus the client's memory
    dump, §5). *)

val blocking_rtts : t -> int
(** Number of blocking round trips charged so far. *)

val stall_waits : t -> int
(** Number of speculative commits that stalled on their completion time. *)

val retransmits : t -> int
(** Number of retransmitted exchanges so far. *)

val bytes_tx : t -> int64
val bytes_rx : t -> int64
