(** Message framing for the cloud/client channel: a type tag, a sequence
    number, a length and a CRC-32 trailer. The secure-channel layer in
    [Grt_tee] wraps frames with authentication; this layer catches accidental
    corruption and lets the link detect retransmitted duplicates. *)

type kind =
  | Commit_request
  | Commit_response
  | Poll_offload
  | Poll_result
  | Mem_sync
  | Mem_sync_ack
  | Irq_notify
  | Recording_download
  | Control
  | Ack  (** link-level cumulative acknowledgement of a sequence number *)
  | Nak
      (** go-back-N negative acknowledgement: the receiver saw a sequence
          hole at [seq]; the sender resends from there (windowed links) *)

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

type msg = { kind : kind; seq : int; payload : bytes }

val seal : ?seq:int -> kind -> bytes -> bytes
(** [seal ?seq kind payload] builds a framed message. [seq] defaults to 0
    and is truncated to 32 bits. *)

val ack : seq:int -> bytes
(** An empty [Ack] frame carrying [seq]. *)

val open_ : bytes -> (kind * bytes, string) result
(** [open_ frame] validates magic, length and CRC and returns the payload. *)

val open_full : bytes -> (msg, string) result
(** Like [open_] but also exposes the sequence number. The CRC covers the
    header fields after the magic as well as the payload, so a damaged
    sequence number is rejected too. *)

val overhead_bytes : int
(** Framing overhead added to every message. *)
