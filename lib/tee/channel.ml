type t = { key : Crypto.key; mutable nonce : int64 }

let establish ~link ~verification_key ~vm_signing_key ~vm_measurement ~expected ~nonce =
  (* RTT 1: hello + nonce out, quote back. *)
  Grt_net.Link.round_trip link ~send_bytes:64 ~recv_bytes:256;
  let quote = Attestation.make_quote ~signing_key:vm_signing_key vm_measurement ~nonce in
  match Attestation.verify ~verification_key ~expected ~nonce quote with
  | Error _ as e -> e
  | Ok () ->
    (* RTT 2: key agreement. *)
    Grt_net.Link.round_trip link ~send_bytes:128 ~recv_bytes:128;
    let key =
      Crypto.derive
        (Printf.sprintf "session-%Lx" nonce)
        (Printf.sprintf "m=%Lx" (Attestation.quote_measurement quote))
    in
    Ok { key; nonce = 1L }

let session_key t = t.key

let wire_overhead = Grt_net.Frame.overhead_bytes + Crypto.sealed_overhead

let seal_message t kind payload =
  t.nonce <- Int64.add t.nonce 1L;
  (* The channel nonce doubles as the frame sequence number, so the link's
     ARQ can spot retransmitted duplicates without extra state. *)
  let framed = Grt_net.Frame.seal ~seq:(Int64.to_int t.nonce land 0xFFFFFFFF) kind payload in
  Crypto.seal ~key:t.key ~nonce:t.nonce framed

let open_message t blob =
  match Crypto.open_ ~key:t.key blob with
  | Error _ as e -> e
  | Ok framed -> Grt_net.Frame.open_ framed

let open_message_full t blob =
  match Crypto.open_ ~key:t.key blob with
  | Error _ as e -> e
  | Ok framed -> Grt_net.Frame.open_full framed
