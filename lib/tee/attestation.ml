type measurement = { kernel : string; gpu_stack : string; devicetree : string }

let measure m =
  Grt_util.Hashing.fnv1a_string (Printf.sprintf "%s\x00%s\x00%s" m.kernel m.gpu_stack m.devicetree)

type quote = { digest : int64; nonce : int64; signature : int64 }

let signed_payload digest nonce =
  let buf = Grt_util.Byte_buf.create ~capacity:16 () in
  Grt_util.Byte_buf.add_i64 buf digest;
  Grt_util.Byte_buf.add_i64 buf nonce;
  Grt_util.Byte_buf.contents buf

let make_quote ~signing_key m ~nonce =
  let digest = measure m in
  { digest; nonce; signature = Crypto.mac ~key:signing_key (signed_payload digest nonce) }

let quote_measurement q = q.digest
let quote_nonce q = q.nonce

let verify ~verification_key ~expected ~nonce q =
  if not (Crypto.verify ~key:verification_key (signed_payload q.digest q.nonce) q.signature) then
    Error "attestation: bad signature"
  else if not (Int64.equal q.nonce nonce) then Error "attestation: nonce mismatch (replay?)"
  else if not (Int64.equal q.digest (measure expected)) then
    Error "attestation: unexpected measurement"
  else Ok ()

let tamper q = { q with signature = Int64.logxor q.signature 0x4L }

(* ---- replay attestation (SAGE-style execution tokens) ---- *)

type replay_token = {
  rt_root : int64;
  rt_gpu_id : int64;
  rt_entries : int;
  rt_nonce : int64;
  rt_signature : int64;
}

let replay_token_payload ~root ~gpu_id ~entries ~nonce =
  let buf = Grt_util.Byte_buf.create ~capacity:32 () in
  Grt_util.Byte_buf.add_i64 buf root;
  Grt_util.Byte_buf.add_i64 buf gpu_id;
  Grt_util.Byte_buf.add_varint buf entries;
  Grt_util.Byte_buf.add_i64 buf nonce;
  Grt_util.Byte_buf.contents buf

let make_replay_token ~signing_key ~root ~gpu_id ~entries ~nonce =
  {
    rt_root = root;
    rt_gpu_id = gpu_id;
    rt_entries = entries;
    rt_nonce = nonce;
    rt_signature = Crypto.mac ~key:signing_key (replay_token_payload ~root ~gpu_id ~entries ~nonce);
  }

let verify_replay_token ~verification_key ~root ~gpu_id ~nonce t =
  if
    not
      (Crypto.verify ~key:verification_key
         (replay_token_payload ~root:t.rt_root ~gpu_id:t.rt_gpu_id ~entries:t.rt_entries
            ~nonce:t.rt_nonce)
         t.rt_signature)
  then Error "replay token: bad signature"
  else if not (Int64.equal t.rt_nonce nonce) then Error "replay token: nonce mismatch (replay?)"
  else if not (Int64.equal t.rt_root root) then
    Error "replay token: attests a different recording"
  else if not (Int64.equal t.rt_gpu_id gpu_id) then Error "replay token: attests a different GPU"
  else Ok ()

let tamper_replay_token t = { t with rt_signature = Int64.logxor t.rt_signature 0x10L }
