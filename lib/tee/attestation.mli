(** Remote attestation of the cloud recording VM.

    Before a record run, the client TEE challenges the cloud VM with a
    nonce; the VM responds with a quote over its measurement (kernel + GPU
    stack image) signed by a key the verifier trusts. Only the control flow
    matters for the reproduction: good quotes verify, tampered measurements
    or replayed nonces fail (§7.1). *)

type measurement = { kernel : string; gpu_stack : string; devicetree : string }

val measure : measurement -> int64

type quote

val make_quote : signing_key:Crypto.key -> measurement -> nonce:int64 -> quote
val quote_measurement : quote -> int64
val quote_nonce : quote -> int64

val verify :
  verification_key:Crypto.key ->
  expected:measurement ->
  nonce:int64 ->
  quote ->
  (unit, string) result

val tamper : quote -> quote
(** Flip a bit in the signature — for negative tests. *)

(** {2 Replay attestation}

    After a compiled replay, the client TEE can emit a token binding the
    recording's Merkle root (the identity of the exact entry log that
    ran), the GPU SKU it ran on, and the number of entries applied — a
    verifier holding the expected root learns {e which} GPU execution
    happened, in the style of SAGE's attested execution (PAPERS.md). *)

type replay_token = {
  rt_root : int64;  (** Merkle root over the recording's chunk hashes *)
  rt_gpu_id : int64;
  rt_entries : int;  (** log entries applied by the replay *)
  rt_nonce : int64;
  rt_signature : int64;
}

val make_replay_token :
  signing_key:Crypto.key -> root:int64 -> gpu_id:int64 -> entries:int -> nonce:int64 -> replay_token

val verify_replay_token :
  verification_key:Crypto.key ->
  root:int64 ->
  gpu_id:int64 ->
  nonce:int64 ->
  replay_token ->
  (unit, string) result

val tamper_replay_token : replay_token -> replay_token
(** Flip a bit in the signature — for negative tests. *)
