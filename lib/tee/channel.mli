(** Authenticated, encrypted cloud/client channel.

    Wraps {!Grt_net.Frame} messages with {!Crypto.seal}. Establishment
    performs the attested handshake: the TEE sends a nonce, verifies the
    VM's quote, then both sides derive the session key. The handshake's
    round trips and the per-message overhead are charged to the link —
    the "security overhead" of §7.1. *)

type t

val establish :
  link:Grt_net.Link.t ->
  verification_key:Crypto.key ->
  vm_signing_key:Crypto.key ->
  vm_measurement:Attestation.measurement ->
  expected:Attestation.measurement ->
  nonce:int64 ->
  (t, string) result
(** Simulates both endpoints of the handshake (2 RTTs on [link]). *)

val session_key : t -> Crypto.key

val seal_message : t -> Grt_net.Frame.kind -> bytes -> bytes
(** Frame, then seal. Each call uses a fresh nonce. *)

val open_message : t -> bytes -> (Grt_net.Frame.kind * bytes, string) result

val open_message_full : t -> bytes -> (Grt_net.Frame.msg, string) result
(** Like [open_message] but also exposes the frame sequence number (the
    sender's channel nonce), which duplicate-delivery detection keys on. *)

val wire_overhead : int
(** Bytes added to every payload by framing + sealing. *)
