(* Adaptive order-0 arithmetic coder in the Witten–Neal–Cleary style:
   32-bit interval registers with underflow (pending-bit) handling, driven by
   an adaptive byte-frequency model whose total is kept below 2^16 so that
   [range * cum] stays within int64 precision. *)

let code_bits = 32
let whole = Int64.shift_left 1L code_bits
let half = Int64.shift_right_logical whole 1
let quarter = Int64.shift_right_logical whole 2
let three_quarter = Int64.add half quarter
let max_total = (1 lsl 16) - 1

module Model = struct
  type t = { freq : int array; mutable total : int }

  let create () = { freq = Array.make 256 1; total = 256 }

  let cumulative t sym =
    let c = ref 0 in
    for i = 0 to sym - 1 do
      c := !c + t.freq.(i)
    done;
    !c

  let find t target =
    let c = ref 0 and sym = ref 0 in
    while !c + t.freq.(!sym) <= target do
      c := !c + t.freq.(!sym);
      incr sym
    done;
    (!sym, !c)

  let update t sym =
    t.freq.(sym) <- t.freq.(sym) + 24;
    t.total <- t.total + 24;
    if t.total >= max_total then begin
      t.total <- 0;
      for i = 0 to 255 do
        t.freq.(i) <- (t.freq.(i) / 2) + 1;
        t.total <- t.total + t.freq.(i)
      done
    end
end

module Bit_writer = struct
  type t = { buf : Byte_buf.t; mutable acc : int; mutable nbits : int }

  let create buf = { buf; acc = 0; nbits = 0 }

  let put t bit =
    t.acc <- (t.acc lsl 1) lor bit;
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then begin
      Byte_buf.add_u8 t.buf t.acc;
      t.acc <- 0;
      t.nbits <- 0
    end

  let flush t =
    while t.nbits <> 0 do
      put t 0
    done
end

module Bit_reader = struct
  type t = { r : Byte_buf.Reader.r; mutable acc : int; mutable nbits : int }

  let create r = { r; acc = 0; nbits = 0 }

  let get t =
    if t.nbits = 0 then begin
      t.acc <- (if Byte_buf.Reader.remaining t.r > 0 then Byte_buf.Reader.u8 t.r else 0);
      t.nbits <- 8
    end;
    t.nbits <- t.nbits - 1;
    (t.acc lsr t.nbits) land 1
end

let encode data =
  let n = Bytes.length data in
  let out = Byte_buf.create ~capacity:(max 16 (n / 4)) () in
  Byte_buf.add_varint out n;
  let bw = Bit_writer.create out in
  let model = Model.create () in
  let low = ref 0L and high = ref (Int64.sub whole 1L) and pending = ref 0 in
  let emit bit =
    Bit_writer.put bw bit;
    let inverse = 1 - bit in
    while !pending > 0 do
      Bit_writer.put bw inverse;
      decr pending
    done
  in
  for i = 0 to n - 1 do
    let sym = Char.code (Bytes.get data i) in
    let cum_lo = Model.cumulative model sym in
    let cum_hi = cum_lo + model.Model.freq.(sym) in
    let total = Int64.of_int model.Model.total in
    let range = Int64.add (Int64.sub !high !low) 1L in
    high := Int64.add !low (Int64.sub (Int64.div (Int64.mul range (Int64.of_int cum_hi)) total) 1L);
    low := Int64.add !low (Int64.div (Int64.mul range (Int64.of_int cum_lo)) total);
    let continue = ref true in
    while !continue do
      if Int64.compare !high half < 0 then emit 0
      else if Int64.compare !low half >= 0 then begin
        emit 1;
        low := Int64.sub !low half;
        high := Int64.sub !high half
      end
      else if Int64.compare !low quarter >= 0 && Int64.compare !high three_quarter < 0 then begin
        incr pending;
        low := Int64.sub !low quarter;
        high := Int64.sub !high quarter
      end
      else continue := false;
      if !continue then begin
        low := Int64.shift_left !low 1;
        high := Int64.add (Int64.shift_left !high 1) 1L
      end
    done;
    Model.update model sym
  done;
  (* Disambiguate the final interval. *)
  incr pending;
  if Int64.compare !low quarter < 0 then emit 0 else emit 1;
  Bit_writer.flush bw;
  Byte_buf.contents out

let decode blob =
  let r = Byte_buf.Reader.of_bytes blob in
  let n = Byte_buf.Reader.varint r in
  let out = Bytes.create n in
  let br = Bit_reader.create r in
  let model = Model.create () in
  let low = ref 0L and high = ref (Int64.sub whole 1L) and value = ref 0L in
  for _ = 1 to code_bits do
    value := Int64.logor (Int64.shift_left !value 1) (Int64.of_int (Bit_reader.get br))
  done;
  for i = 0 to n - 1 do
    let total = Int64.of_int model.Model.total in
    let range = Int64.add (Int64.sub !high !low) 1L in
    let target =
      Int64.to_int
        (Int64.div (Int64.sub (Int64.mul (Int64.add (Int64.sub !value !low) 1L) total) 1L) range)
    in
    let sym, cum_lo = Model.find model (min target (model.Model.total - 1)) in
    let cum_hi = cum_lo + model.Model.freq.(sym) in
    high := Int64.add !low (Int64.sub (Int64.div (Int64.mul range (Int64.of_int cum_hi)) total) 1L);
    low := Int64.add !low (Int64.div (Int64.mul range (Int64.of_int cum_lo)) total);
    let continue = ref true in
    while !continue do
      if Int64.compare !high half < 0 then ()
      else if Int64.compare !low half >= 0 then begin
        low := Int64.sub !low half;
        high := Int64.sub !high half;
        value := Int64.sub !value half
      end
      else if Int64.compare !low quarter >= 0 && Int64.compare !high three_quarter < 0 then begin
        low := Int64.sub !low quarter;
        high := Int64.sub !high quarter;
        value := Int64.sub !value quarter
      end
      else continue := false;
      if !continue then begin
        low := Int64.shift_left !low 1;
        high := Int64.add (Int64.shift_left !high 1) 1L;
        value := Int64.logor (Int64.shift_left !value 1) (Int64.of_int (Bit_reader.get br))
      end
    done;
    Model.update model sym;
    Bytes.set out i (Char.chr sym)
  done;
  out

let ratio data =
  let n = Bytes.length data in
  if n = 0 then 1.0 else float_of_int (Bytes.length (encode data)) /. float_of_int n

(* Guarded container: a leading tag byte distinguishes range-coded output
   from a stored-raw fallback, so incompressible input never expands by more
   than the tag byte. The bare [encode]/[decode] pair is kept untouched for
   callers that do their own accounting. *)

let guard_tag_raw = 0
let guard_tag_rc = 1

let encode_guarded data =
  let coded = encode data in
  if Bytes.length coded < Bytes.length data then begin
    let out = Bytes.create (Bytes.length coded + 1) in
    Bytes.set out 0 (Char.chr guard_tag_rc);
    Bytes.blit coded 0 out 1 (Bytes.length coded);
    out
  end
  else begin
    let out = Bytes.create (Bytes.length data + 1) in
    Bytes.set out 0 (Char.chr guard_tag_raw);
    Bytes.blit data 0 out 1 (Bytes.length data);
    out
  end

let decode_guarded blob =
  if Bytes.length blob = 0 then failwith "Range_coder.decode_guarded: empty input"
  else begin
    let body = Bytes.sub blob 1 (Bytes.length blob - 1) in
    match Char.code (Bytes.get blob 0) with
    | 0 -> body
    | 1 -> decode body
    | tag -> failwith (Printf.sprintf "Range_coder.decode_guarded: bad tag %d" tag)
  end
