(* Adaptive order-0 arithmetic coder in the Witten–Neal–Cleary style:
   32-bit interval registers with underflow (pending-bit) handling, driven by
   an adaptive byte-frequency model whose total is kept below 2^16 so that
   [range * cum] stays within integer precision.

   This runs on every changed page the recorder ships, so the hot loop is
   engineered to do no per-byte allocation and no linear scans: interval
   registers are native ints (every intermediate fits in 48 bits, so 63-bit
   int arithmetic is exact and truncating division matches the historical
   Int64 formulation bit for bit). The adaptive model keeps a plain
   frequency array: the recorder's pages are zero-dominated, so the
   prefix scan for the common low symbols is shorter than any tree. *)

let code_bits = 32
let whole = 1 lsl code_bits
let half = whole lsr 1
let quarter = whole lsr 2
let three_quarter = half + quarter
let max_total = (1 lsl 16) - 1

module Model = struct
  type t = { freq : int array; mutable total : int }

  let create () = { freq = Array.make 256 1; total = 256 }

  let cumulative t sym =
    let freq = t.freq in
    let c = ref 0 in
    for i = 0 to sym - 1 do
      c := !c + Array.unsafe_get freq i
    done;
    !c

  let find t target =
    let freq = t.freq in
    let c = ref 0 and sym = ref 0 in
    while !c + Array.unsafe_get freq !sym <= target do
      c := !c + Array.unsafe_get freq !sym;
      incr sym
    done;
    (!sym, !c)

  let update t sym =
    Array.unsafe_set t.freq sym (Array.unsafe_get t.freq sym + 24);
    t.total <- t.total + 24;
    if t.total >= max_total then begin
      t.total <- 0;
      for i = 0 to 255 do
        t.freq.(i) <- (t.freq.(i) / 2) + 1;
        t.total <- t.total + t.freq.(i)
      done
    end
end

module Bit_writer = struct
  type t = { buf : Byte_buf.t; mutable acc : int; mutable nbits : int }

  let create buf = { buf; acc = 0; nbits = 0 }

  let put t bit =
    t.acc <- (t.acc lsl 1) lor bit;
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then begin
      Byte_buf.add_u8 t.buf t.acc;
      t.acc <- 0;
      t.nbits <- 0
    end

  let flush t =
    while t.nbits <> 0 do
      put t 0
    done
end

module Bit_reader = struct
  type t = { r : Byte_buf.Reader.r; mutable acc : int; mutable nbits : int }

  let create r = { r; acc = 0; nbits = 0 }

  let get t =
    if t.nbits = 0 then begin
      t.acc <- (if Byte_buf.Reader.remaining t.r > 0 then Byte_buf.Reader.u8 t.r else 0);
      t.nbits <- 8
    end;
    t.nbits <- t.nbits - 1;
    (t.acc lsr t.nbits) land 1
end

(* [encode] is a pure function of its input, and the recorder feeds it the
   same page contents over and over — identical pages recur within a session
   (job status flips back and forth), across sessions of one workload, and
   across a fleet recording the same network (the same observation behind
   the service's content-addressed recording cache). A small content-keyed
   memo therefore short-circuits most real encodes. Hash collisions cannot
   corrupt output: the stored input is compared byte-for-byte before the
   cached blob is reused, and both sides of the memo are copies so callers
   can keep mutating their buffers. *)
let memo_limit = 1024

(* Domain-local (Par.Dls): each domain gets a private table, so parallel
   fleet shards never contend on — or corrupt — a shared Hashtbl. The memo
   is a pure cache, so per-domain cold starts change hit counts only,
   never output bytes. *)
let memo_key : (int, bytes * bytes) Hashtbl.t Par.Dls.key =
  Par.Dls.key (fun () -> Hashtbl.create 256)

let content_key data = Hashing.quick data

let encode_raw data =
  let n = Bytes.length data in
  let out = Byte_buf.create ~capacity:(max 16 (n / 4)) () in
  Byte_buf.add_varint out n;
  let bw = Bit_writer.create out in
  let model = Model.create () in
  let low = ref 0 and high = ref (whole - 1) and pending = ref 0 in
  let emit bit =
    Bit_writer.put bw bit;
    let inverse = 1 - bit in
    while !pending > 0 do
      Bit_writer.put bw inverse;
      decr pending
    done
  in
  for i = 0 to n - 1 do
    let sym = Char.code (Bytes.unsafe_get data i) in
    let cum_lo = Model.cumulative model sym in
    let cum_hi = cum_lo + Array.unsafe_get model.Model.freq sym in
    let total = model.Model.total in
    let range = !high - !low + 1 in
    (* [cum_hi = total] and [cum_lo = 0] make the quotient trivial ([range]
       resp. [0]); skipping the division is exact and saves the dominant
       cost of coding the most- and least-significant symbols. *)
    if cum_hi <> total then high := !low + (range * cum_hi / total) - 1;
    if cum_lo <> 0 then low := !low + (range * cum_lo / total);
    let continue = ref true in
    while !continue do
      if !high < half then emit 0
      else if !low >= half then begin
        emit 1;
        low := !low - half;
        high := !high - half
      end
      else if !low >= quarter && !high < three_quarter then begin
        incr pending;
        low := !low - quarter;
        high := !high - quarter
      end
      else continue := false;
      if !continue then begin
        low := !low lsl 1;
        high := (!high lsl 1) + 1
      end
    done;
    Model.update model sym
  done;
  (* Disambiguate the final interval. *)
  incr pending;
  if !low < quarter then emit 0 else emit 1;
  Bit_writer.flush bw;
  Byte_buf.contents out

let encode_stats = Memo_stats.register "rc.encode"
let decode_stats = Memo_stats.register "rc.decode"

(* Shared miss path for both memo tables: profile the recompute, account
   the resident footprint (input + output bytes), reset at capacity. *)
let memo_insert stats tbl key ~input ~output ~prior =
  Memo_stats.miss stats;
  (match prior with
  | None -> ()
  | Some (old_in, old_out) ->
    Memo_stats.mismatch stats;
    Memo_stats.replaced stats
      ~old_bytes:(Bytes.length old_in + Bytes.length old_out)
      ~bytes:(Bytes.length input + Bytes.length output));
  if Hashtbl.length tbl >= memo_limit then begin
    Memo_stats.evicted stats ~entries:(Hashtbl.length tbl);
    Hashtbl.reset tbl
  end;
  if not (Hashtbl.mem tbl key) then
    Memo_stats.added stats ~bytes:(Bytes.length input + Bytes.length output);
  Hashtbl.replace tbl key (input, output)

let encode data =
  let memo = Par.Dls.get memo_key in
  let key = content_key data in
  match Hashtbl.find_opt memo key with
  | Some (input, coded) when Bytes.equal input data ->
    Memo_stats.hit encode_stats;
    Bytes.copy coded
  | prior ->
    let coded = encode_raw data in
    memo_insert encode_stats memo key ~input:(Bytes.copy data) ~output:coded
      ~prior;
    Bytes.copy coded

let decode_raw blob =
  let r = Byte_buf.Reader.of_bytes blob in
  let n = Byte_buf.Reader.varint r in
  let out = Bytes.create n in
  let br = Bit_reader.create r in
  let model = Model.create () in
  let low = ref 0 and high = ref (whole - 1) and value = ref 0 in
  for _ = 1 to code_bits do
    value := (!value lsl 1) lor Bit_reader.get br
  done;
  for i = 0 to n - 1 do
    let total = model.Model.total in
    let range = !high - !low + 1 in
    let target = (((!value - !low + 1) * total) - 1) / range in
    let target = if target > total - 1 then total - 1 else target in
    let sym, cum_lo = Model.find model target in
    let cum_hi = cum_lo + Array.unsafe_get model.Model.freq sym in
    if cum_hi <> total then high := !low + (range * cum_hi / total) - 1;
    if cum_lo <> 0 then low := !low + (range * cum_lo / total);
    let continue = ref true in
    while !continue do
      if !high < half then ()
      else if !low >= half then begin
        low := !low - half;
        high := !high - half;
        value := !value - half
      end
      else if !low >= quarter && !high < three_quarter then begin
        low := !low - quarter;
        high := !high - quarter;
        value := !value - quarter
      end
      else continue := false;
      if !continue then begin
        low := !low lsl 1;
        high := (!high lsl 1) + 1;
        value := (!value lsl 1) lor Bit_reader.get br
      end
    done;
    Model.update model sym;
    Bytes.unsafe_set out i (Char.unsafe_chr sym)
  done;
  out

(* Decode gets the same memo treatment as encode: the client applies the
   same coded pages every time a workload's sync stream repeats, and decode
   is a pure function of the blob. *)
let decode_memo_key : (int, bytes * bytes) Hashtbl.t Par.Dls.key =
  Par.Dls.key (fun () -> Hashtbl.create 256)

let decode blob =
  let decode_memo = Par.Dls.get decode_memo_key in
  let key = content_key blob in
  match Hashtbl.find_opt decode_memo key with
  | Some (input, data) when Bytes.equal input blob ->
    Memo_stats.hit decode_stats;
    Bytes.copy data
  | prior ->
    let data = decode_raw blob in
    memo_insert decode_stats decode_memo key ~input:(Bytes.copy blob)
      ~output:data ~prior;
    Bytes.copy data

let ratio data =
  let n = Bytes.length data in
  if n = 0 then 1.0 else float_of_int (Bytes.length (encode data)) /. float_of_int n

(* Guarded container: a leading tag byte distinguishes range-coded output
   from a stored-raw fallback, so incompressible input never expands by more
   than the tag byte. The bare [encode]/[decode] pair is kept untouched for
   callers that do their own accounting. *)

let guard_tag_raw = 0
let guard_tag_rc = 1

let encode_guarded data =
  let coded = encode data in
  if Bytes.length coded < Bytes.length data then begin
    let out = Bytes.create (Bytes.length coded + 1) in
    Bytes.set out 0 (Char.chr guard_tag_rc);
    Bytes.blit coded 0 out 1 (Bytes.length coded);
    out
  end
  else begin
    let out = Bytes.create (Bytes.length data + 1) in
    Bytes.set out 0 (Char.chr guard_tag_raw);
    Bytes.blit data 0 out 1 (Bytes.length data);
    out
  end

let decode_guarded blob =
  if Bytes.length blob = 0 then failwith "Range_coder.decode_guarded: empty input"
  else begin
    let body = Bytes.sub blob 1 (Bytes.length blob - 1) in
    match Char.code (Bytes.get blob 0) with
    | 0 -> body
    | 1 -> decode body
    | tag -> failwith (Printf.sprintf "Range_coder.decode_guarded: bad tag %d" tag)
  end
