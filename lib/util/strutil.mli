(** Tiny string predicates shared across the tree (the stdlib grew
    [String.starts_with] only in 4.13; these also read better at call
    sites that classify driver function names). *)

val has_prefix : string -> string -> bool
(** [has_prefix p s] is true iff [s] starts with [p]. *)

val has_suffix : string -> string -> bool
(** [has_suffix suf s] is true iff [s] ends with [suf]. *)

val contains_sub : string -> string -> bool
(** [contains_sub sub s] is true iff [sub] occurs somewhere in [s]. *)
