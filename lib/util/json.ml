type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)
let int64 i = Num (Int64.to_float i)
let float f = Num f
let str s = Str s

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest of the standard round-trippable precisions. *)
    let s12 = Printf.sprintf "%.12g" f in
    if float_of_string s12 = f then s12 else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s -> Buffer.add_string b (escape s)
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      items;
    Buffer.add_char b ']'
  | Obj members ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (escape k);
        Buffer.add_char b ':';
        to_buffer b v)
      members;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ---- parser ---- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            (* Encode the code point as UTF-8 (surrogates are kept as-is in
               the BMP encoding — good enough for trace payloads). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "unknown escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  with Bad msg -> Error msg

let member k = function Obj members -> List.assoc_opt k members | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr l -> Some l | _ -> None
let to_obj = function Obj m -> Some m | _ -> None
