(** Process-wide profiling registry for the content-keyed memo tables.

    The hot-path memos (range-coder encode/decode, page hashing, recording
    sign/verify) are pure caches: they can only change performance, never
    bytes. That also makes them invisible — a memo that thrashes or whose
    quick-key collides shows up as wall-clock, not as a counter. Each memo
    registers one [t] here and bumps it from its own hit/miss branches, so
    [bench speed --json] can attribute cache behaviour per memo.

    Counters are plain [int] cells on the host side of the simulation: they
    are deliberately outside the virtual clock, the typed {!Metrics} plane
    and every recorded blob, so instrumentation cannot perturb outcomes.

    Cells are *domain-local* (via {!Par.Dls}), matching the memo tables
    they profile: each domain counts against its own private caches, so a
    parallel fleet run is race-free by construction. [t] itself is a
    process-wide handle — register at module-initialisation time, before
    any domain is spawned. A worker domain hands its numbers back with
    {!export}; the spawning domain folds them in with {!absorb}, after
    which {!to_json} reports the whole run. On 4.14 there is one implicit
    domain and export/absorb degenerate to a copy.

    - [hits]        full-verification hits ([Bytes.equal] passed)
    - [misses]      lookups that had to recompute (absent or mismatched)
    - [mismatches]  quick-key matched but the full compare failed (the
                    collision the full verification exists to catch); every
                    mismatch is also counted as a miss
    - [evictions]   entries dropped by capacity resets, summed
    - [resident] / [resident_bytes]  live-entry gauges (approximate key +
      payload footprint as reported by the call site) *)

type t

val register : string -> t
(** [register name] returns the stats cell for [name], creating it on first
    use. Idempotent: the same name always yields the same cell, so module
    initialisers can call it unconditionally. *)

val name : t -> string

val hit : t -> unit
val miss : t -> unit
val mismatch : t -> unit

val evicted : t -> entries:int -> unit
(** A capacity reset dropped [entries] live entries: adds to the eviction
    counter and zeroes both resident gauges. *)

val added : t -> bytes:int -> unit
(** A new entry became resident, occupying roughly [bytes]. *)

val replaced : t -> old_bytes:int -> bytes:int -> unit
(** An existing entry was overwritten in place (quick-key collision):
    resident count is unchanged, the byte gauge moves by the difference. *)

type snap = {
  s_hits : int;
  s_misses : int;
  s_mismatches : int;
  s_evictions : int;
  s_resident : int;
  s_resident_bytes : int;
}

val snapshot : t -> snap
(** The calling domain's counters for [t]. *)

val export : unit -> (string * snap) list
(** Every cell of the *calling domain*, sorted by name — a worker domain
    calls this just before finishing so the spawner can {!absorb} it. *)

val absorb : (string * snap) list -> unit
(** Fold an {!export}ed worker profile into the calling domain's cells
    (counters and resident gauges sum; unknown names are ignored). *)

val all : unit -> t list
(** Every registered cell, sorted by name. *)

val reset_counters : unit -> unit
(** Zero hit/miss/mismatch/eviction counters on every cell, keeping the
    resident gauges (they describe live tables, not a sampling window).
    The bench harness calls this before each measured row. *)

val snap_json : snap -> Json.t
val to_json : unit -> Json.t
(** Object keyed by memo name, each value a {!snap_json}. *)
