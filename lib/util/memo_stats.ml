(* Cells are domain-local: each memo's Hashtbl lives in Domain.DLS (see the
   call sites), so the counters that profile it must too — a shared cell
   would be both racy and wrong (it would attribute one domain's misses to
   another's table). [t] is therefore a process-wide *handle* (a name and a
   dense id, assigned at module initialisation on the main domain) and the
   mutable counters live in a per-domain array indexed by that id. Worker
   domains export their arrays ({!export}) and the main domain folds them
   in ({!absorb}) when a parallel fleet run merges. *)

type t = { id : int; ms_name : string }

type cell = {
  mutable hits : int;
  mutable misses : int;
  mutable mismatches : int;
  mutable evictions : int;
  mutable resident : int;
  mutable resident_bytes : int;
}

let new_cell () =
  { hits = 0; misses = 0; mismatches = 0; evictions = 0; resident = 0; resident_bytes = 0 }

(* Registration order; read-only once domains are spawned. A handful of
   memos per process, registered from module initialisers. *)
let handles : t list ref = ref []
let next_id = ref 0

let cells_key : cell array ref Par.Dls.key = Par.Dls.key (fun () -> ref [||])

(* The calling domain's cell for [h], growing this domain's array to cover
   every handle registered so far. After the first growth the lookup is two
   loads and a bounds check — nothing on the memo hot path allocates. *)
let cell (h : t) =
  let store = Par.Dls.get cells_key in
  let arr = !store in
  if h.id < Array.length arr then arr.(h.id)
  else begin
    let n = !next_id in
    let grown =
      Array.init n (fun i -> if i < Array.length arr then arr.(i) else new_cell ())
    in
    store := grown;
    grown.(h.id)
  end

let register name =
  match List.find_opt (fun t -> String.equal t.ms_name name) !handles with
  | Some t -> t
  | None ->
    let t = { id = !next_id; ms_name = name } in
    incr next_id;
    handles := t :: !handles;
    t

let name t = t.ms_name

let hit t =
  let c = cell t in
  c.hits <- c.hits + 1

let miss t =
  let c = cell t in
  c.misses <- c.misses + 1

let mismatch t =
  let c = cell t in
  c.mismatches <- c.mismatches + 1

let evicted t ~entries =
  let c = cell t in
  c.evictions <- c.evictions + entries;
  c.resident <- 0;
  c.resident_bytes <- 0

let added t ~bytes =
  let c = cell t in
  c.resident <- c.resident + 1;
  c.resident_bytes <- c.resident_bytes + bytes

let replaced t ~old_bytes ~bytes =
  let c = cell t in
  c.resident_bytes <- c.resident_bytes - old_bytes + bytes

type snap = {
  s_hits : int;
  s_misses : int;
  s_mismatches : int;
  s_evictions : int;
  s_resident : int;
  s_resident_bytes : int;
}

let snapshot t =
  let c = cell t in
  {
    s_hits = c.hits;
    s_misses = c.misses;
    s_mismatches = c.mismatches;
    s_evictions = c.evictions;
    s_resident = c.resident;
    s_resident_bytes = c.resident_bytes;
  }

let all () = List.sort (fun a b -> compare a.ms_name b.ms_name) !handles

let reset_counters () =
  List.iter
    (fun t ->
      let c = cell t in
      c.hits <- 0;
      c.misses <- 0;
      c.mismatches <- 0;
      c.evictions <- 0)
    !handles

let export () = List.map (fun t -> (t.ms_name, snapshot t)) (all ())

let absorb snaps =
  List.iter
    (fun (nm, s) ->
      match List.find_opt (fun t -> String.equal t.ms_name nm) !handles with
      | None -> ()
      | Some t ->
        let c = cell t in
        c.hits <- c.hits + s.s_hits;
        c.misses <- c.misses + s.s_misses;
        c.mismatches <- c.mismatches + s.s_mismatches;
        c.evictions <- c.evictions + s.s_evictions;
        c.resident <- c.resident + s.s_resident;
        c.resident_bytes <- c.resident_bytes + s.s_resident_bytes)
    snaps

let snap_json s =
  Json.Obj
    [
      ("hits", Json.int s.s_hits);
      ("misses", Json.int s.s_misses);
      ("mismatches", Json.int s.s_mismatches);
      ("evictions", Json.int s.s_evictions);
      ("resident", Json.int s.s_resident);
      ("resident_bytes", Json.int s.s_resident_bytes);
    ]

let to_json () =
  Json.Obj (List.map (fun t -> (t.ms_name, snap_json (snapshot t))) (all ()))
