type t = {
  ms_name : string;
  mutable hits : int;
  mutable misses : int;
  mutable mismatches : int;
  mutable evictions : int;
  mutable resident : int;
  mutable resident_bytes : int;
}

(* A handful of memos per process; an assoc list keeps registration
   allocation-free after startup and [all] trivially stable. *)
let registry : t list ref = ref []

let register name =
  match List.find_opt (fun t -> String.equal t.ms_name name) !registry with
  | Some t -> t
  | None ->
    let t =
      {
        ms_name = name;
        hits = 0;
        misses = 0;
        mismatches = 0;
        evictions = 0;
        resident = 0;
        resident_bytes = 0;
      }
    in
    registry := t :: !registry;
    t

let name t = t.ms_name
let hit t = t.hits <- t.hits + 1
let miss t = t.misses <- t.misses + 1
let mismatch t = t.mismatches <- t.mismatches + 1

let evicted t ~entries =
  t.evictions <- t.evictions + entries;
  t.resident <- 0;
  t.resident_bytes <- 0

let added t ~bytes =
  t.resident <- t.resident + 1;
  t.resident_bytes <- t.resident_bytes + bytes

let replaced t ~old_bytes ~bytes =
  t.resident_bytes <- t.resident_bytes - old_bytes + bytes

type snap = {
  s_hits : int;
  s_misses : int;
  s_mismatches : int;
  s_evictions : int;
  s_resident : int;
  s_resident_bytes : int;
}

let snapshot t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_mismatches = t.mismatches;
    s_evictions = t.evictions;
    s_resident = t.resident;
    s_resident_bytes = t.resident_bytes;
  }

let all () =
  List.sort (fun a b -> compare a.ms_name b.ms_name) !registry

let reset_counters () =
  List.iter
    (fun t ->
      t.hits <- 0;
      t.misses <- 0;
      t.mismatches <- 0;
      t.evictions <- 0)
    !registry

let snap_json s =
  Json.Obj
    [
      ("hits", Json.int s.s_hits);
      ("misses", Json.int s.s_misses);
      ("mismatches", Json.int s.s_mismatches);
      ("evictions", Json.int s.s_evictions);
      ("resident", Json.int s.s_resident);
      ("resident_bytes", Json.int s.s_resident_bytes);
    ]

let to_json () =
  Json.Obj (List.map (fun t -> (t.ms_name, snap_json (snapshot t))) (all ()))
