type sym = {
  id : int;
  origin : string;
  mutable binding : int64 option;
  mutable speculative : bool;
}

type t =
  | Const of int64
  | Sym of sym
  | Bin of binop * t * t
  | Un of unop * t

and binop = Or | And | Xor | Add | Sub | Shl | Shr

and unop = Not

let const v = Const v
let of_int v = Const (Int64.of_int v)

(* Sym ids only correlate reads *within* a session (they never reach the
   wire or a signed blob), so a per-domain counter (Par.Dls) is enough:
   ids stay unique inside each domain and allocation stays a plain incr. *)
let counter_key : int ref Par.Dls.key = Par.Dls.key (fun () -> ref 0)

let fresh_sym ~origin =
  let counter = Par.Dls.get counter_key in
  incr counter;
  { id = !counter; origin; binding = None; speculative = false }

let sym s = Sym s

let bind s v ~speculative =
  (match s.binding with
  | Some prev when not (Int64.equal prev v) ->
    invalid_arg
      (Printf.sprintf "Sexpr.bind: symbol #%d (%s) already bound to %Ld, got %Ld" s.id s.origin
         prev v)
  | _ -> ());
  s.binding <- Some v;
  s.speculative <- speculative

let confirm s = s.speculative <- false

let rebind s v =
  s.binding <- Some v;
  s.speculative <- false

let apply_bin op a b =
  match op with
  | Or -> Int64.logor a b
  | And -> Int64.logand a b
  | Xor -> Int64.logxor a b
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let rec eval = function
  | Const v -> Some v
  | Sym s -> s.binding
  | Bin (op, a, b) -> (
    match (eval a, eval b) with Some va, Some vb -> Some (apply_bin op va vb) | _ -> None)
  | Un (Not, a) -> Option.map Int64.lognot (eval a)

(* Build with constant folding so long chains of concrete math stay flat. *)
let bin op a b =
  match (a, b) with
  | Const va, Const vb -> Const (apply_bin op va vb)
  | _ -> Bin (op, a, b)

let logor a b = bin Or a b
let logand a b = bin And a b
let logxor a b = bin Xor a b
let add a b = bin Add a b
let sub a b = bin Sub a b
let shift_left a n = bin Shl a (of_int n)
let shift_right a n = bin Shr a (of_int n)
let lognot = function Const v -> Const (Int64.lognot v) | e -> Un (Not, e)

let force_exn e =
  match eval e with
  | Some v -> v
  | None -> failwith "Sexpr.force_exn: expression contains unbound symbols"

let is_concrete e = Option.is_some (eval e)

let unbound_syms e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Sym s ->
      if Option.is_none s.binding && not (Hashtbl.mem seen s.id) then begin
        Hashtbl.add seen s.id ();
        acc := s :: !acc
      end
    | Bin (_, a, b) ->
      go a;
      go b
    | Un (_, a) -> go a
  in
  go e;
  List.rev !acc

let rec speculative = function
  | Const _ -> false
  | Sym s -> s.speculative
  | Bin (_, a, b) -> speculative a || speculative b
  | Un (_, a) -> speculative a

let rec pp ppf = function
  | Const v -> Format.fprintf ppf "%#Lx" v
  | Sym s -> (
    match s.binding with
    | Some v -> Format.fprintf ppf "S%d=%#Lx" s.id v
    | None -> Format.fprintf ppf "S%d(%s)" s.id s.origin)
  | Bin (op, a, b) ->
    let ops =
      match op with
      | Or -> "|"
      | And -> "&"
      | Xor -> "^"
      | Add -> "+"
      | Sub -> "-"
      | Shl -> "<<"
      | Shr -> ">>"
    in
    Format.fprintf ppf "(%a %s %a)" pp a ops pp b
  | Un (Not, a) -> Format.fprintf ppf "~%a" pp a
