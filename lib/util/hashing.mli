(** Non-cryptographic and keyed hashing used across the simulator.

    [fnv1a_*] are used for content signatures (page deltas, commit-site
    signatures). [hmac] is a keyed construction over FNV; it stands in for a
    real HMAC in the simulated trust chain — the point is to exercise the
    sign/verify control flow, not to provide actual cryptographic strength. *)

val fnv1a_bytes : ?seed:int64 -> bytes -> int64
(** Hash an entire byte buffer. *)

val fnv1a_sub : bytes -> pos:int -> len:int -> int64
(** Hash a slice of a byte buffer. *)

val fnv1a_string : string -> int64

val combine : int64 -> int64 -> int64
(** Mix two hash values into one (order-sensitive). *)

val hmac : key:string -> bytes -> int64
(** Keyed hash: distinct keys produce unrelated digests for the same data. *)

val quick : ?seed:int -> bytes -> int
(** Fast word-at-a-time content key for process-internal memo tables. This
    is NOT a wire-format hash — it may change between versions — and
    collisions are expected to be resolved by the caller (compare the full
    input before trusting a hit). Roughly 8x the throughput of the
    byte-sequential [fnv1a_bytes]. *)

val quick_sparse : ?seed:int -> bytes -> int
(** Like [quick] but samples one word per 64-byte line (falling back to
    [quick] under 128 bytes). Intended for memo keys over large blobs where
    the caller verifies hits with a full comparison; collisions merely cost
    a recompute. *)

val crc32 : bytes -> int32
(** CRC-32 (IEEE polynomial), used for framing checksums on the simulated
    network channel. *)
