let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0
