(** Order-0 adaptive range coder.

    GR-T compresses memory-dump deltas with range encoding (§5). This is a
    real, self-contained implementation: an adaptive byte-frequency model
    driving a 64-bit carryless range coder. Compression ratios on the sparse,
    zero-dominated dumps the recorder produces are what make the paper's
    meta-only synchronization traffic numbers hold. *)

val encode : bytes -> bytes
(** [encode data] compresses [data]. The output embeds the original length. *)

val decode : bytes -> bytes
(** [decode blob] inverts {!encode}. Raises [Failure] on corrupt input. *)

val ratio : bytes -> float
(** [ratio data] is [compressed_size /. original_size] (1.0 for empty
    input). Convenience for traffic accounting. *)

val encode_guarded : bytes -> bytes
(** Like {!encode} but prefixed with a 1-byte tag and falling back to
    storing the input raw whenever coding would expand it: the output is
    never more than one byte larger than the input. *)

val decode_guarded : bytes -> bytes
(** Inverts {!encode_guarded}. Raises [Failure] on corrupt input. *)
