(** Minimal JSON tree: enough to write the observability artifacts (Chrome
    trace events, session reports, the bench trajectory) and to parse them
    back in tests — no external dependency.

    Numbers are floats, as in JSON itself; [int] / [int64] constructors are
    provided for convenience and serialize without a fractional part when
    the value is integral. Serialization of floats picks the shortest
    decimal form that round-trips through [float_of_string], so
    [parse (to_string v)] reproduces [v] exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
val int64 : int64 -> t
val float : float -> t
val str : string -> t

val escape : string -> string
(** [escape s] is the quoted JSON string literal for [s] (including the
    surrounding double quotes), with control characters, quotes and
    backslashes escaped. *)

val number_to_string : float -> string
(** Shortest decimal form that round-trips; integral values print without a
    fractional part. *)

val to_string : t -> string
(** Compact single-line serialization. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the subset above (no trailing garbage). Object member
    order is preserved. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on missing key or
    non-object. *)

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
val to_obj : t -> (string * t) list option
