(* Wire format: varint total_len, varint span_count, then per span:
   varint offset-delta (from end of previous span), varint length, raw
   bytes. Adjacent changes closer than [merge_gap] bytes are merged into one
   span to amortize header overhead. *)

let merge_gap = 8

let scan_spans old_ fresh =
  let n = Bytes.length old_ in
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    (* Fast path over unchanged content: a 64-bit word equality covers its
       eight byte positions, so the byte-state machine below only ever runs
       in the neighborhood of an actual difference. Span boundaries are
       decided by the byte loop exactly as before. *)
    while
      !i + 8 <= n && Int64.equal (Bytes.get_int64_le old_ !i) (Bytes.get_int64_le fresh !i)
    do
      i := !i + 8
    done;
    if !i < n && Bytes.get old_ !i <> Bytes.get fresh !i then begin
      let start = !i in
      let last_change = ref !i in
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        if Bytes.get old_ !i <> Bytes.get fresh !i then begin
          last_change := !i;
          incr i
        end
        else if !i - !last_change < merge_gap then incr i
        else stop := true
      done;
      spans := (start, !last_change - start + 1) :: !spans
    end
    else incr i
  done;
  List.rev !spans

let diff ~old_ ~fresh =
  if Bytes.length old_ <> Bytes.length fresh then
    invalid_arg "Delta.diff: length mismatch";
  let spans = scan_spans old_ fresh in
  let out = Byte_buf.create () in
  Byte_buf.add_varint out (Bytes.length old_);
  Byte_buf.add_varint out (List.length spans);
  let prev_end = ref 0 in
  List.iter
    (fun (off, len) ->
      Byte_buf.add_varint out (off - !prev_end);
      Byte_buf.add_varint out len;
      Byte_buf.add_sub out fresh ~pos:off ~len;
      prev_end := off + len)
    spans;
  Byte_buf.contents out

let apply ~old_ ~delta =
  let r = Byte_buf.Reader.of_bytes delta in
  let total = Byte_buf.Reader.varint r in
  if total <> Bytes.length old_ then failwith "Delta.apply: base length mismatch";
  let fresh = Bytes.copy old_ in
  let count = Byte_buf.Reader.varint r in
  let pos = ref 0 in
  for _ = 1 to count do
    let gap = Byte_buf.Reader.varint r in
    let len = Byte_buf.Reader.varint r in
    pos := !pos + gap;
    let data = Byte_buf.Reader.bytes r len in
    Bytes.blit data 0 fresh !pos len;
    pos := !pos + len
  done;
  fresh

let is_identity delta =
  let r = Byte_buf.Reader.of_bytes delta in
  let _total = Byte_buf.Reader.varint r in
  Byte_buf.Reader.varint r = 0
