(** Domain-level parallelism, portable across compilers.

    OCaml 5 exposes true shared-memory parallelism through [Domain]; 4.14
    has neither domains nor domain-local storage. This module is the one
    place the rest of the tree touches either, provided as two build-time
    variants (see the version-select rules in [lib/util/dune], the same
    mechanism as [Grt_sim.Sched_backend]):

    - [par.domains.ml-gen] (OCaml >= 5.0): [Dls] is [Domain.DLS],
      {!run_shards} spawns one domain per shard beyond the first.
    - [par.serial.ml-gen]  (OCaml < 5.0): [Dls] keys are lazily-initialised
      process globals (a single implicit domain), {!run_shards} maps
      shards in index order on the calling thread.

    Both variants satisfy this interface, so callers are written once. The
    serial variant is semantically the [domains = 1] degenerate case: code
    that is correct when every shard runs on the calling domain in index
    order is correct under both variants. *)

module Dls : sig
  type 'a key

  val key : (unit -> 'a) -> 'a key
  (** [key init] allocates a storage key. Each domain lazily initialises
      its own slot with [init] on first {!get}; the serial variant has one
      process-wide slot. Call at module-initialisation time (before any
      domain is spawned). *)

  val get : 'a key -> 'a
  (** The calling domain's slot (initialising it if needed). *)
end

val parallelism_available : bool
(** Whether {!run_shards} can actually overlap shards (OCaml >= 5.0). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] on 4.14 — an
    upper bound worth using for fleet sharding on this host. *)

val run_shards : (int -> 'a -> 'b) -> 'a array -> 'b array
(** [run_shards f shards] computes [[| f 0 shards.(0); f 1 shards.(1); .. |]].

    On OCaml 5 with two or more shards, every shard runs on a fresh
    spawned domain (the caller only joins), so [f]'s domain-local state is
    private to its shard. On 4.14 (or with a single shard) the shards run
    serially in index order on the calling domain.

    [f] must therefore tolerate both executions: shards may only share
    state that is immutable (or domain-local) for the duration of the
    call. If any shard raises, the remaining shards still run to
    completion (domains must be joined) and the lowest-indexed shard's
    exception is re-raised. *)
