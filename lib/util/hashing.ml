let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Hashing.fnv1a_sub: slice out of bounds";
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let fnv1a_bytes ?(seed = fnv_offset) b =
  let h = ref seed in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let fnv1a_string s = fnv1a_bytes (Bytes.unsafe_of_string s)

let combine a b =
  let h = Int64.logxor a (Int64.add b 0x9E3779B97F4A7C15L) in
  Int64.mul (Int64.logxor h (Int64.shift_right_logical h 29)) fnv_prime

let hmac ~key data =
  let inner = fnv1a_bytes ~seed:(fnv1a_string ("grt-ipad:" ^ key)) data in
  let outer_seed = fnv1a_string ("grt-opad:" ^ key) in
  combine outer_seed inner

(* Process-internal memo key: FNV-style fold over 8-byte words, so the
   dependency chain advances a word at a time instead of a byte at a time.
   Never serialized — collisions only cost the caller's full comparison. *)
let quick ?(seed = 0x1B873593) b =
  let n = Bytes.length b in
  let h = ref (seed + n) in
  let i = ref 0 in
  while !i + 8 <= n do
    h := (!h lxor Int64.to_int (Bytes.get_int64_le b !i)) * 0x100000001B3;
    i := !i + 8
  done;
  while !i < n do
    h := (!h lxor Char.code (Bytes.unsafe_get b !i)) * 0x100000001B3;
    incr i
  done;
  !h

(* Sparse memo key for megabyte-scale buffers (signed recording blobs):
   samples one 8-byte word per 64-byte cache line plus the tail word, so the
   key costs an eighth of [quick]. Only safe where the memo verifies hits
   with a full [Bytes.equal] — a collision between buffers differing solely
   in unsampled bytes degrades to a recompute, never a wrong answer. *)
let quick_sparse ?(seed = 0x1B873593) b =
  let n = Bytes.length b in
  if n < 128 then quick ~seed b
  else begin
    let h = ref (seed + n) in
    let i = ref 0 in
    while !i + 8 <= n do
      h := (!h lxor Int64.to_int (Bytes.get_int64_le b !i)) * 0x100000001B3;
      i := !i + 64
    done;
    h := (!h lxor Int64.to_int (Bytes.get_int64_le b (n - 8))) * 0x100000001B3;
    !h
  end

let crc_table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 b =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = 0 to Bytes.length b - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl
