module Kernels = Grt_gpu.Kernels
module Job_desc = Grt_gpu.Job_desc

(* Buffers live in a synthetic flat address space: buffer [i] starts at
   [i * buf_stride] bytes, giving Kernels the same VA-based interface the GPU
   provides, backed by a Kernels.Flat paged store. *)

let buf_stride = 1 lsl 24

let run (plan : Network.plan) ~weights ~input =
  let names = List.mapi (fun i (b : Network.buffer_spec) -> (b.Network.bname, i)) plan.Network.buffers in
  let lengths =
    List.map (fun (b : Network.buffer_spec) -> max 1 (b.Network.actual_bytes / 4)) plan.Network.buffers
    |> Array.of_list
  in
  let index name =
    match List.assoc_opt name names with
    | Some i -> i
    | None -> invalid_arg ("Reference.run: unknown buffer " ^ name)
  in
  let va name = Int64.of_int (index name * buf_stride) in
  let flat = Kernels.Flat.create () in
  let ctx = Kernels.Flat.ctx flat in
  (* Load inputs and weights. *)
  let blit name values =
    let base = index name * buf_stride in
    let len = lengths.(index name) in
    Array.iteri
      (fun i v -> if i < len then Kernels.Flat.write_f32 flat (Int64.of_int (base + (4 * i))) v)
      values
  in
  blit plan.Network.input_buffer input;
  List.iter (fun (name, values) -> blit name values) weights;
  List.iter
    (fun (j : Network.job_spec) ->
      let desc =
        {
          Job_desc.op = j.Network.op;
          shader_va = 0L;
          input_va = va j.Network.input;
          input2_va = (match j.Network.input2 with Some n -> va n | None -> 0L);
          bias_va = (match j.Network.bias with Some n -> va n | None -> 0L);
          output_va = va j.Network.output;
          params = j.Network.mat;
          next_va = 0L;
        }
      in
      Kernels.execute ctx desc)
    plan.Network.jobs;
  let out = index plan.Network.output_buffer in
  Array.init lengths.(out) (fun i ->
      Kernels.Flat.read_f32 flat (Int64.of_int ((out * buf_stride) + (4 * i))))
