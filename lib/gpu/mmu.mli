(** GPU MMU: LPAE-style 3-level page tables living in shared memory.

    The driver builds these tables (§2.1); the GPU walks them; snapshots of
    table pages are part of the recorded metastate (§2.3, §5). The virtual
    address space is 39-bit with 4 KiB pages; level 2 additionally supports
    2 MiB block mappings, which the runtime uses for large model-scale data
    buffers.

    Descriptor bits (an idealized LPAE):
    - bits 1:0 — 0b11 = table (L1/L2) or page (L3); 0b01 = 2 MiB block (L2)
    - bit 6 — writable
    - bit 7 — executable (GPU shader code; metastate detection keys on this)
    - bit 8 — cacheable
    - bit 10 — access flag (must be set under {!Sku.Lpae_v8})
    - bits 39:12 — output physical address *)

type flags = { writable : bool; executable : bool; cacheable : bool }

val rw_data : flags
val ro_data : flags
val rx_code : flags

type fault = Unmapped | Permission of string | Bad_format

val pp_fault : Format.formatter -> fault -> unit

type t
(** A page-table hierarchy rooted in shared memory. *)

val create : Mem.t -> fmt:Sku.pt_format -> t
(** Allocates the root table page. *)

val root_pa : t -> int64
val format : t -> Sku.pt_format

val of_root : Mem.t -> fmt:Sku.pt_format -> root:int64 -> t
(** View an existing hierarchy (the GPU side: TRANSTAB register value). *)

val map_page : t -> va:int64 -> pa:int64 -> flags:flags -> unit
(** Map one 4 KiB page. Raises [Invalid_argument] on misaligned inputs. *)

val map_block : t -> va:int64 -> pa:int64 -> flags:flags -> unit
(** Map one 2 MiB block. *)

val unmap_page : t -> va:int64 -> unit
(** Clears the L3 entry (or the block entry covering the page). *)

val translate : t -> va:int64 -> access:[ `Read | `Write | `Exec ] -> (int64, fault) result
(** Walk the tables. Enforces validity, permissions and (v8) access flag. *)

val table_pages : t -> int64 list
(** PFNs of every table page reachable from the root — the page-table part
    of the metastate. *)

val iter_table_pfns : t -> (int -> unit) -> unit
(** Allocation-free {!table_pages}: applies [f] to every live table page's
    pfn as a native int, root first then walk order (each table reached
    once — unsorted). The memsync page-table cache rebuild runs on every
    mapping change, so this walk must stay off the allocator. *)

val mapped_spans : t -> (int64 * int * flags) list
(** [(va, bytes, flags)] for every mapped leaf, coalesced over contiguous
    identical mappings; used by metastate classification. *)
