let page_shift = 12
let page_size = 1 lsl page_shift

exception Protected_page_write of int64

type t = {
  pages : (int64, bytes) Hashtbl.t;
  mutable next_pfn : int64;
  mutable dirty : (int64, unit) Hashtbl.t;
  protected_ : (int64, unit) Hashtbl.t;
  mutable gen : int64;
  page_gens : (int64, int64) Hashtbl.t;
}

let create () =
  {
    pages = Hashtbl.create 1024;
    next_pfn = 0x100L;
    dirty = Hashtbl.create 256;
    protected_ = Hashtbl.create 8;
    gen = 0L;
    page_gens = Hashtbl.create 256;
  }

(* Every write path stamps the page with a fresh generation; readers can
   compare stamps to skip pages untouched since their last visit. Unlike
   [dirty], generations are never reset, so independent observers (e.g. the
   two memsync directions) cannot clobber each other's view. *)
let touch_gen t pfn =
  t.gen <- Int64.add t.gen 1L;
  Hashtbl.replace t.page_gens pfn t.gen

let write_gen t = t.gen

let page_gen t pfn = match Hashtbl.find_opt t.page_gens pfn with Some g -> g | None -> 0L

let protect_pages t pfns = List.iter (fun pfn -> Hashtbl.replace t.protected_ pfn ()) pfns

let unprotect_all t = Hashtbl.reset t.protected_

let protected_pfns t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.protected_ [] |> List.sort Int64.compare

let page_of_addr addr = Int64.shift_right_logical addr page_shift

let alloc_pages t n =
  if n <= 0 then invalid_arg "Mem.alloc_pages";
  let base = t.next_pfn in
  t.next_pfn <- Int64.add t.next_pfn (Int64.of_int n);
  Int64.shift_left base page_shift

let page_for t pfn ~write =
  if write && Hashtbl.mem t.protected_ pfn then raise (Protected_page_write pfn);
  match Hashtbl.find_opt t.pages pfn with
  | Some p ->
    if write then begin
      Hashtbl.replace t.dirty pfn ();
      touch_gen t pfn
    end;
    Some p
  | None ->
    if write then begin
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages pfn p;
      Hashtbl.replace t.dirty pfn ();
      touch_gen t pfn;
      Some p
    end
    else None

(* Borrowed page buffers for the kernel streams. The buffers are the live
   backing store: a [page_rw] borrow marks the page dirty and stamps a fresh
   generation once, standing in for the per-write bookkeeping the borrower
   then skips — sound at page granularity because both are idempotent per
   page and nothing observes them mid-job. Borrows must not be held across
   [restore] (which rebinds buffers); [set_page] blits in place, so buffers
   stay valid across image reinstalls. *)

let page_ro t pfn = Hashtbl.find_opt t.pages pfn

let page_rw t pfn =
  match page_for t pfn ~write:true with Some p -> p | None -> assert false

let read_u8 t addr =
  let pfn = page_of_addr addr in
  match page_for t pfn ~write:false with
  | None -> 0
  | Some p -> Char.code (Bytes.unsafe_get p (Int64.to_int (Int64.logand addr 0xFFFL)))

let write_u8 t addr v =
  let pfn = page_of_addr addr in
  match page_for t pfn ~write:true with
  | None -> assert false
  | Some p -> Bytes.unsafe_set p (Int64.to_int (Int64.logand addr 0xFFFL)) (Char.unsafe_chr (v land 0xFF))

(* Multi-byte accessors take a direct in-page fast path and fall back to
   byte-by-byte when straddling a page boundary. *)

let read_u32 t addr =
  let off = Int64.to_int (Int64.logand addr 0xFFFL) in
  if off <= page_size - 4 then
    match page_for t (page_of_addr addr) ~write:false with
    | None -> 0L
    | Some p -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFFFFFFL
  else begin
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (Int64.add addr 1L) in
    let b2 = read_u8 t (Int64.add addr 2L) in
    let b3 = read_u8 t (Int64.add addr 3L) in
    Int64.logor
      (Int64.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
      (Int64.shift_left (Int64.of_int b3) 24)
  end

let write_u32 t addr v =
  let off = Int64.to_int (Int64.logand addr 0xFFFL) in
  if off <= page_size - 4 then begin
    match page_for t (page_of_addr addr) ~write:true with
    | None -> assert false
    | Some p -> Bytes.set_int32_le p off (Int64.to_int32 v)
  end
  else begin
    let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
    write_u8 t addr v;
    write_u8 t (Int64.add addr 1L) (v lsr 8);
    write_u8 t (Int64.add addr 2L) (v lsr 16);
    write_u8 t (Int64.add addr 3L) (v lsr 24)
  end

let read_u64 t addr =
  let lo = read_u32 t addr in
  let hi = read_u32 t (Int64.add addr 4L) in
  Int64.logor lo (Int64.shift_left hi 32)

let write_u64 t addr v =
  write_u32 t addr (Int64.logand v 0xFFFFFFFFL);
  write_u32 t (Int64.add addr 4L) (Int64.shift_right_logical v 32)

let read_f32 t addr = Int32.float_of_bits (Int64.to_int32 (read_u32 t addr))

let write_f32 t addr f = write_u32 t addr (Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL)

(* Bulk float-array transfer for the data slots. The per-element accessors
   pay a page-table lookup (and, on writes, dirty/generation stamping) per
   4-byte access; slots span whole runs of pages, so resolve each page once
   and move the span with direct [Bytes] accesses. Page-straddling elements
   cannot occur: spans are split on page boundaries and f32s are 4-aligned
   within a span only if [addr] is — an unaligned start falls back to the
   per-element path. *)

let write_f32_array t addr values =
  let n = Array.length values in
  if not (Int64.equal (Int64.logand addr 3L) 0L) then
    for i = 0 to n - 1 do
      write_f32 t (Int64.add addr (Int64.of_int (4 * i))) values.(i)
    done
  else begin
    let i = ref 0 in
    while !i < n do
      let a = Int64.add addr (Int64.of_int (4 * !i)) in
      let off = Int64.to_int (Int64.logand a 0xFFFL) in
      let here = min (n - !i) ((page_size - off) / 4) in
      (match page_for t (page_of_addr a) ~write:true with
      | None -> assert false
      | Some p ->
        for k = 0 to here - 1 do
          Bytes.set_int32_le p (off + (4 * k)) (Int32.bits_of_float values.(!i + k))
        done);
      i := !i + here
    done
  end

let read_f32_array t addr n =
  if not (Int64.equal (Int64.logand addr 3L) 0L) then
    Array.init n (fun i -> read_f32 t (Int64.add addr (Int64.of_int (4 * i))))
  else begin
    let out = Array.make n 0.0 in
    let i = ref 0 in
    while !i < n do
      let a = Int64.add addr (Int64.of_int (4 * !i)) in
      let off = Int64.to_int (Int64.logand a 0xFFFL) in
      let here = min (n - !i) ((page_size - off) / 4) in
      (match page_for t (page_of_addr a) ~write:false with
      | None -> ()
      | Some p ->
        for k = 0 to here - 1 do
          out.(!i + k) <- Int32.float_of_bits (Bytes.get_int32_le p (off + (4 * k)))
        done);
      i := !i + here
    done;
    out
  end

let read_bytes t addr n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i (Char.unsafe_chr (read_u8 t (Int64.add addr (Int64.of_int i))))
  done;
  out

let write_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t (Int64.add addr (Int64.of_int i)) (Char.code (Bytes.unsafe_get b i))
  done

let get_page t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> Bytes.copy p
  | None -> Bytes.make page_size '\000'

let set_page t pfn b =
  if Bytes.length b <> page_size then invalid_arg "Mem.set_page: wrong size";
  if Hashtbl.mem t.protected_ pfn then raise (Protected_page_write pfn);
  (* Blit over an already-materialized page rather than rebinding a fresh
     copy: page buffers never escape (readers get copies), and replayed
     memory images rewrite the same pfns every session. *)
  (match Hashtbl.find_opt t.pages pfn with
  | Some p -> Bytes.blit b 0 p 0 page_size
  | None -> Hashtbl.replace t.pages pfn (Bytes.copy b));
  Hashtbl.replace t.dirty pfn ();
  touch_gen t pfn

let sorted_keys h =
  Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort Int64.compare

let materialized_pages t = sorted_keys t.pages

let dirty_pages t = sorted_keys t.dirty

let clear_dirty t = Hashtbl.reset t.dirty

let dirty_bytes t = Hashtbl.length t.dirty * page_size

type snapshot = { snap_pages : (int64 * bytes) list; snap_next : int64; snap_dirty : int64 list }

let snapshot t =
  {
    snap_pages = Hashtbl.fold (fun k v acc -> (k, Bytes.copy v) :: acc) t.pages [];
    snap_next = t.next_pfn;
    snap_dirty = dirty_pages t;
  }

let restore t s =
  let stale = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  Hashtbl.reset t.pages;
  List.iter (fun (k, v) -> Hashtbl.replace t.pages k (Bytes.copy v)) s.snap_pages;
  t.next_pfn <- s.snap_next;
  Hashtbl.reset t.dirty;
  List.iter (fun k -> Hashtbl.replace t.dirty k ()) s.snap_dirty;
  (* Rollback may have changed any page that existed before or after the
     restore; restamp them all so generation-based observers re-examine
     them rather than trusting a pre-rollback stamp. *)
  List.iter (touch_gen t) stale;
  List.iter (fun (k, _) -> touch_gen t k) s.snap_pages
