let page_shift = 12
let page_size = 1 lsl page_shift

exception Protected_page_write of int64

(* Flat page store: PFNs below [dense_limit] index directly into dense
   arrays (grown geometrically as the bump allocator climbs); anything
   above spills into small int-keyed hash tables. Every hot-path quantity
   — generation counter, dirty flags, materialization — lives in unboxed
   [int]/[Bytes] form; the public API stays [int64] and converts at the
   edge. PFNs always fit in a native int: a page number is an address
   shifted right by 12, so even a full 64-bit address yields < 2^52.

   Invariants (enforced by the differential suite in test_mem_flat):
   - [pages.(pfn) == Bytes.empty] iff the page is unmaterialized; a
     materialized buffer is exactly [page_size] bytes and is the live
     backing store (borrows stay valid across [set_page], not [restore]).
   - [mat]/[mat_len] lists each materialized dense pfn exactly once, in
     materialization order; [spill] keys cover the rest.
   - [dirtyb.(pfn) <> '\000'] iff pfn is in [dl.(0..dl_len)], exactly once,
     so [dirty_bytes] is a counter read and [clear_dirty] is O(dirty).
   - [gens.(pfn)] only ever increases, and advances exactly when the
     original Hashtbl implementation stamped the page. *)

let dense_limit = 1 lsl 16

type t = {
  mutable cap : int; (* length of the dense arrays, a power of two *)
  mutable pages : bytes array; (* Bytes.empty = unmaterialized *)
  mutable gens : int array; (* 0 = never written *)
  mutable dirtyb : Bytes.t; (* per-pfn dirty flag *)
  mutable protb : Bytes.t; (* per-pfn protected flag *)
  mutable mat : int array; (* materialized dense pfns, append order *)
  mutable mat_len : int;
  mutable dl : int array; (* dirty dense pfns, append order *)
  mutable dl_len : int;
  mutable gen : int;
  mutable next_pfn : int;
  spill : (int, bytes) Hashtbl.t;
  spill_gens : (int, int) Hashtbl.t;
  spill_dirty : (int, unit) Hashtbl.t;
  spill_prot : (int, unit) Hashtbl.t;
  mutable prot_list : int list; (* dense protected pfns, unordered *)
  mutable prot_sorted : int64 list option; (* memoized sorted materialization *)
}

let create () =
  let cap = 1024 in
  {
    cap;
    pages = Array.make cap Bytes.empty;
    gens = Array.make cap 0;
    dirtyb = Bytes.make cap '\000';
    protb = Bytes.make cap '\000';
    mat = Array.make 256 0;
    mat_len = 0;
    dl = Array.make 256 0;
    dl_len = 0;
    gen = 0;
    next_pfn = 0x100;
    spill = Hashtbl.create 8;
    spill_gens = Hashtbl.create 8;
    spill_dirty = Hashtbl.create 8;
    spill_prot = Hashtbl.create 8;
    prot_list = [];
    prot_sorted = None;
  }

let grow t pfn =
  let ncap = ref t.cap in
  while pfn >= !ncap do
    ncap := !ncap * 2
  done;
  let ncap = min !ncap dense_limit in
  let pages = Array.make ncap Bytes.empty in
  Array.blit t.pages 0 pages 0 t.cap;
  let gens = Array.make ncap 0 in
  Array.blit t.gens 0 gens 0 t.cap;
  let dirtyb = Bytes.make ncap '\000' in
  Bytes.blit t.dirtyb 0 dirtyb 0 t.cap;
  let protb = Bytes.make ncap '\000' in
  Bytes.blit t.protb 0 protb 0 t.cap;
  t.pages <- pages;
  t.gens <- gens;
  t.dirtyb <- dirtyb;
  t.protb <- protb;
  t.cap <- ncap

let push_int arr len v =
  (* amortized-growth int vector; returns the (possibly fresh) backing *)
  let arr = if len = Array.length arr then begin
      let bigger = Array.make (2 * Array.length arr) 0 in
      Array.blit arr 0 bigger 0 len;
      bigger
    end
    else arr
  in
  Array.unsafe_set arr len v;
  arr

let mat_push t pfn =
  t.mat <- push_int t.mat t.mat_len pfn;
  t.mat_len <- t.mat_len + 1

let dirty_push t pfn =
  t.dl <- push_int t.dl t.dl_len pfn;
  t.dl_len <- t.dl_len + 1

(* Every write path stamps the page with a fresh generation; readers can
   compare stamps to skip pages untouched since their last visit. Unlike
   the dirty set, generations are never reset, so independent observers
   (e.g. the two memsync directions) cannot clobber each other's view. *)
let touch_gen t pfn =
  let g = t.gen + 1 in
  t.gen <- g;
  if pfn >= 0 && pfn < dense_limit then begin
    if pfn >= t.cap then grow t pfn;
    Array.unsafe_set t.gens pfn g
  end
  else Hashtbl.replace t.spill_gens pfn g

let write_gen_int t = t.gen
let write_gen t = Int64.of_int t.gen

let page_gen_at t pfn =
  if pfn >= 0 && pfn < t.cap then Array.unsafe_get t.gens pfn
  else if pfn >= 0 && pfn < dense_limit then 0
  else match Hashtbl.find_opt t.spill_gens pfn with Some g -> g | None -> 0

let page_gen t pfn = Int64.of_int (page_gen_at t (Int64.to_int pfn))

let protect_pages t pfns =
  List.iter
    (fun pfn64 ->
      let pfn = Int64.to_int pfn64 in
      if pfn >= 0 && pfn < dense_limit then begin
        if pfn >= t.cap then grow t pfn;
        if Bytes.get t.protb pfn = '\000' then begin
          Bytes.set t.protb pfn '\001';
          t.prot_list <- pfn :: t.prot_list
        end
      end
      else Hashtbl.replace t.spill_prot pfn ())
    pfns;
  t.prot_sorted <- None

let unprotect_all t =
  List.iter (fun pfn -> Bytes.set t.protb pfn '\000') t.prot_list;
  t.prot_list <- [];
  Hashtbl.reset t.spill_prot;
  t.prot_sorted <- Some []

let protected_pfns t =
  match t.prot_sorted with
  | Some l -> l
  | None ->
    let l =
      Hashtbl.fold
        (fun k () acc -> Int64.of_int k :: acc)
        t.spill_prot
        (List.rev_map Int64.of_int t.prot_list)
      |> List.sort Int64.compare
    in
    t.prot_sorted <- Some l;
    l

let page_of_addr addr = Int64.shift_right_logical addr page_shift

let page_index addr = Int64.to_int (Int64.shift_right_logical addr page_shift)

let alloc_pages t n =
  if n <= 0 then invalid_arg "Mem.alloc_pages";
  let base = t.next_pfn in
  t.next_pfn <- t.next_pfn + n;
  Int64.shift_left (Int64.of_int base) page_shift

(* Borrowed page buffers — the hot path. [borrow_ro] never materializes and
   returns the [Bytes.empty] sentinel for absent pages (a physical-equality
   check, not a length test, is the contract). [borrow_rw] materializes,
   checks protection, and performs the dirty/generation stamping exactly
   where the historical Hashtbl implementation did. *)

let borrow_ro t pfn =
  if pfn >= 0 && pfn < t.cap then Array.unsafe_get t.pages pfn
  else if pfn >= 0 && pfn < dense_limit then Bytes.empty
  else match Hashtbl.find_opt t.spill pfn with Some p -> p | None -> Bytes.empty

let spill_rw t pfn =
  if Hashtbl.mem t.spill_prot pfn then raise (Protected_page_write (Int64.of_int pfn));
  let p =
    match Hashtbl.find_opt t.spill pfn with
    | Some p -> p
    | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.spill pfn p;
      p
  in
  Hashtbl.replace t.spill_dirty pfn ();
  let g = t.gen + 1 in
  t.gen <- g;
  Hashtbl.replace t.spill_gens pfn g;
  p

let borrow_rw t pfn =
  if pfn >= 0 && pfn < dense_limit then begin
    if pfn >= t.cap then grow t pfn;
    if Bytes.unsafe_get t.protb pfn <> '\000' then
      raise (Protected_page_write (Int64.of_int pfn));
    let p0 = Array.unsafe_get t.pages pfn in
    let p =
      if p0 != Bytes.empty then p0
      else begin
        let p = Bytes.make page_size '\000' in
        Array.unsafe_set t.pages pfn p;
        mat_push t pfn;
        p
      end
    in
    if Bytes.unsafe_get t.dirtyb pfn = '\000' then begin
      Bytes.unsafe_set t.dirtyb pfn '\001';
      dirty_push t pfn
    end;
    let g = t.gen + 1 in
    t.gen <- g;
    Array.unsafe_set t.gens pfn g;
    p
  end
  else spill_rw t pfn

let page_ro t pfn =
  let p = borrow_ro t (Int64.to_int pfn) in
  if p == Bytes.empty then None else Some p

let page_rw t pfn = borrow_rw t (Int64.to_int pfn)

let read_u8 t addr =
  let p = borrow_ro t (page_index addr) in
  if p == Bytes.empty then 0
  else Char.code (Bytes.unsafe_get p (Int64.to_int (Int64.logand addr 0xFFFL)))

let write_u8 t addr v =
  let p = borrow_rw t (page_index addr) in
  Bytes.unsafe_set p (Int64.to_int (Int64.logand addr 0xFFFL)) (Char.unsafe_chr (v land 0xFF))

(* Multi-byte accessors take a direct in-page fast path and fall back to
   byte-by-byte when straddling a page boundary. *)

let read_u32 t addr =
  let off = Int64.to_int (Int64.logand addr 0xFFFL) in
  if off <= page_size - 4 then begin
    let p = borrow_ro t (page_index addr) in
    if p == Bytes.empty then 0L
    else Int64.logand (Int64.of_int32 (Bytes.get_int32_le p off)) 0xFFFFFFFFL
  end
  else begin
    let b0 = read_u8 t addr in
    let b1 = read_u8 t (Int64.add addr 1L) in
    let b2 = read_u8 t (Int64.add addr 2L) in
    let b3 = read_u8 t (Int64.add addr 3L) in
    Int64.logor
      (Int64.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
      (Int64.shift_left (Int64.of_int b3) 24)
  end

let write_u32 t addr v =
  let off = Int64.to_int (Int64.logand addr 0xFFFL) in
  if off <= page_size - 4 then begin
    let p = borrow_rw t (page_index addr) in
    Bytes.set_int32_le p off (Int64.to_int32 v)
  end
  else begin
    let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
    write_u8 t addr v;
    write_u8 t (Int64.add addr 1L) (v lsr 8);
    write_u8 t (Int64.add addr 2L) (v lsr 16);
    write_u8 t (Int64.add addr 3L) (v lsr 24)
  end

let read_u64 t addr =
  let lo = read_u32 t addr in
  let hi = read_u32 t (Int64.add addr 4L) in
  Int64.logor lo (Int64.shift_left hi 32)

let write_u64 t addr v =
  write_u32 t addr (Int64.logand v 0xFFFFFFFFL);
  write_u32 t (Int64.add addr 4L) (Int64.shift_right_logical v 32)

let read_f32 t addr = Int32.float_of_bits (Int64.to_int32 (read_u32 t addr))

let write_f32 t addr f = write_u32 t addr (Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL)

(* Bulk float-array transfer for the data slots. The per-element accessors
   pay a page resolution (and, on writes, dirty/generation stamping) per
   4-byte access; slots span whole runs of pages, so resolve each page once
   and move the span with direct [Bytes] accesses. Page-straddling elements
   cannot occur: spans are split on page boundaries and f32s are 4-aligned
   within a span only if [addr] is — an unaligned start falls back to the
   per-element path. *)

let write_f32_array t addr values =
  let n = Array.length values in
  if not (Int64.equal (Int64.logand addr 3L) 0L) then
    for i = 0 to n - 1 do
      write_f32 t (Int64.add addr (Int64.of_int (4 * i))) values.(i)
    done
  else begin
    let i = ref 0 in
    while !i < n do
      let a = Int64.add addr (Int64.of_int (4 * !i)) in
      let off = Int64.to_int (Int64.logand a 0xFFFL) in
      let here = min (n - !i) ((page_size - off) / 4) in
      let p = borrow_rw t (page_index a) in
      for k = 0 to here - 1 do
        Bytes.set_int32_le p (off + (4 * k)) (Int32.bits_of_float values.(!i + k))
      done;
      i := !i + here
    done
  end

let read_f32_array t addr n =
  if not (Int64.equal (Int64.logand addr 3L) 0L) then
    Array.init n (fun i -> read_f32 t (Int64.add addr (Int64.of_int (4 * i))))
  else begin
    let out = Array.make n 0.0 in
    let i = ref 0 in
    while !i < n do
      let a = Int64.add addr (Int64.of_int (4 * !i)) in
      let off = Int64.to_int (Int64.logand a 0xFFFL) in
      let here = min (n - !i) ((page_size - off) / 4) in
      let p = borrow_ro t (page_index a) in
      if p != Bytes.empty then
        for k = 0 to here - 1 do
          out.(!i + k) <- Int32.float_of_bits (Bytes.get_int32_le p (off + (4 * k)))
        done;
      i := !i + here
    done;
    out
  end

(* Byte-span transfer, split on page boundaries like the f32 bulk paths. *)

let read_bytes t addr n =
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let a = Int64.add addr (Int64.of_int !i) in
    let off = Int64.to_int (Int64.logand a 0xFFFL) in
    let here = min (n - !i) (page_size - off) in
    let p = borrow_ro t (page_index a) in
    if p == Bytes.empty then Bytes.fill out !i here '\000'
    else Bytes.blit p off out !i here;
    i := !i + here
  done;
  out

let write_bytes t addr b =
  let n = Bytes.length b in
  let i = ref 0 in
  while !i < n do
    let a = Int64.add addr (Int64.of_int !i) in
    let off = Int64.to_int (Int64.logand a 0xFFFL) in
    let here = min (n - !i) (page_size - off) in
    let p = borrow_rw t (page_index a) in
    Bytes.blit b !i p off here;
    i := !i + here
  done

let get_page t pfn =
  let p = borrow_ro t (Int64.to_int pfn) in
  if p == Bytes.empty then Bytes.make page_size '\000' else Bytes.copy p

let is_protected t pfn =
  if pfn >= 0 && pfn < t.cap then Bytes.unsafe_get t.protb pfn <> '\000'
  else if pfn >= 0 && pfn < dense_limit then false
  else Hashtbl.mem t.spill_prot pfn

let set_page t pfn64 b =
  if Bytes.length b <> page_size then invalid_arg "Mem.set_page: wrong size";
  let pfn = Int64.to_int pfn64 in
  if is_protected t pfn then raise (Protected_page_write pfn64);
  (* Blit over an already-materialized page rather than rebinding a fresh
     copy: page buffers never escape (readers get copies), and replayed
     memory images rewrite the same pfns every session. *)
  if pfn >= 0 && pfn < dense_limit then begin
    if pfn >= t.cap then grow t pfn;
    let p0 = Array.unsafe_get t.pages pfn in
    if p0 != Bytes.empty then Bytes.blit b 0 p0 0 page_size
    else begin
      Array.unsafe_set t.pages pfn (Bytes.copy b);
      mat_push t pfn
    end;
    if Bytes.unsafe_get t.dirtyb pfn = '\000' then begin
      Bytes.unsafe_set t.dirtyb pfn '\001';
      dirty_push t pfn
    end
  end
  else begin
    (match Hashtbl.find_opt t.spill pfn with
    | Some p -> Bytes.blit b 0 p 0 page_size
    | None -> Hashtbl.replace t.spill pfn (Bytes.copy b));
    Hashtbl.replace t.spill_dirty pfn ()
  end;
  touch_gen t pfn

let sorted_pfns dense len spill =
  let l = Hashtbl.fold (fun k _ acc -> Int64.of_int k :: acc) spill [] in
  let l = ref l in
  for i = len - 1 downto 0 do
    l := Int64.of_int (Array.unsafe_get dense i) :: !l
  done;
  List.sort Int64.compare !l

let materialized_pages t = sorted_pfns t.mat t.mat_len t.spill

let dirty_pages t = sorted_pfns t.dl t.dl_len t.spill_dirty

let clear_dirty t =
  for i = 0 to t.dl_len - 1 do
    Bytes.unsafe_set t.dirtyb (Array.unsafe_get t.dl i) '\000'
  done;
  t.dl_len <- 0;
  Hashtbl.reset t.spill_dirty

let dirty_bytes t = (t.dl_len + Hashtbl.length t.spill_dirty) * page_size

type snapshot = { snap_pages : (int * bytes) list; snap_next : int; snap_dirty : int list }

let snapshot t =
  let acc = ref (Hashtbl.fold (fun k v acc -> (k, Bytes.copy v) :: acc) t.spill []) in
  for i = t.mat_len - 1 downto 0 do
    let pfn = Array.unsafe_get t.mat i in
    acc := (pfn, Bytes.copy t.pages.(pfn)) :: !acc
  done;
  let dirty = ref (Hashtbl.fold (fun k () acc -> k :: acc) t.spill_dirty []) in
  for i = t.dl_len - 1 downto 0 do
    dirty := Array.unsafe_get t.dl i :: !dirty
  done;
  { snap_pages = !acc; snap_next = t.next_pfn; snap_dirty = !dirty }

let restore t s =
  let stale = ref (Hashtbl.fold (fun k _ acc -> k :: acc) t.spill []) in
  for i = t.mat_len - 1 downto 0 do
    stale := Array.unsafe_get t.mat i :: !stale
  done;
  (* Drop every current page, then rebind fresh copies of the snapshot's.
     Borrowed buffers are invalidated, as documented. *)
  for i = 0 to t.mat_len - 1 do
    Array.unsafe_set t.pages (Array.unsafe_get t.mat i) Bytes.empty
  done;
  t.mat_len <- 0;
  Hashtbl.reset t.spill;
  List.iter
    (fun (pfn, body) ->
      if pfn >= 0 && pfn < dense_limit then begin
        if pfn >= t.cap then grow t pfn;
        Array.unsafe_set t.pages pfn (Bytes.copy body);
        mat_push t pfn
      end
      else Hashtbl.replace t.spill pfn (Bytes.copy body))
    s.snap_pages;
  t.next_pfn <- s.snap_next;
  clear_dirty t;
  List.iter
    (fun pfn ->
      if pfn >= 0 && pfn < dense_limit then begin
        if pfn >= t.cap then grow t pfn;
        if Bytes.get t.dirtyb pfn = '\000' then begin
          Bytes.set t.dirtyb pfn '\001';
          dirty_push t pfn
        end
      end
      else Hashtbl.replace t.spill_dirty pfn ())
    s.snap_dirty;
  (* Rollback may have changed any page that existed before or after the
     restore; restamp them all so generation-based observers re-examine
     them rather than trusting a pre-rollback stamp. *)
  List.iter (touch_gen t) !stale;
  List.iter (fun (pfn, _) -> touch_gen t pfn) s.snap_pages
