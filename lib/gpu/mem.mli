(** Sparse physical memory shared by CPU and GPU.

    Pages are 4 KiB and materialized on demand. The store tracks dirty pages
    (for cache-maintenance cost modeling and delta synchronization) and
    supports snapshots (for misprediction rollback, §4.2). Physical addresses
    are [int64]; unmapped reads return zeroes, like DRAM scrubbed at boot. *)

val page_size : int
val page_shift : int

type t

val create : unit -> t

val alloc_pages : t -> int -> int64
(** [alloc_pages t n] reserves [n] fresh zeroed pages and returns the
    physical address of the first. Allocation is a simple bump pointer — the
    simulator never frees physical pages within a session. *)

val read_u8 : t -> int64 -> int
val write_u8 : t -> int64 -> int -> unit
val read_u32 : t -> int64 -> int64
val write_u32 : t -> int64 -> int64 -> unit
val read_u64 : t -> int64 -> int64
val write_u64 : t -> int64 -> int64 -> unit
val read_f32 : t -> int64 -> float
val write_f32 : t -> int64 -> float -> unit
val write_f32_array : t -> int64 -> float array -> unit
(** Bulk f32 store: one page resolution (and one dirty/generation stamp)
    per page touched instead of per element. Equivalent to a [write_f32]
    loop. *)

val read_f32_array : t -> int64 -> int -> float array
(** Bulk f32 load, the read-side counterpart of [write_f32_array]. *)

val read_bytes : t -> int64 -> int -> bytes
val write_bytes : t -> int64 -> bytes -> unit

val page_of_addr : int64 -> int64
(** Page frame number containing an address. *)

(** {2 Unboxed hot-path variants}

    The store is a dense int-indexed array with a spill table for sparse
    high PFNs; these entry points skip the [int64] boxing and option
    allocation of the classic API. PFNs always fit a native [int] (an
    address shifted right by {!page_shift} is below 2{^52}). *)

val page_index : int64 -> int
(** [page_index addr] is {!page_of_addr} as a native int. *)

val borrow_ro : t -> int -> bytes
(** Allocation-free {!page_ro}: borrow the live backing buffer by int PFN,
    or the [Bytes.empty] sentinel when the page was never materialized
    (test with physical equality against [Bytes.empty]). Same borrow rules
    as {!page_ro}. *)

val borrow_rw : t -> int -> bytes
(** Allocation-free {!page_rw} by int PFN: materializes, marks dirty and
    stamps a generation once. Raises {!Protected_page_write}. *)

val page_gen_at : t -> int -> int
(** Unboxed {!page_gen} by int PFN ([0] if the page was never written). *)

val write_gen_int : t -> int
(** Unboxed {!write_gen}. *)

val get_page : t -> int64 -> bytes
(** [get_page t pfn] returns a copy of the page (zeroes if never written). *)

val page_ro : t -> int64 -> bytes option
(** Borrow the live backing buffer of a materialized page, for read-side
    kernel streams. The buffer stays valid (and current) across [set_page],
    which blits in place; it must not be held across {!restore}, and must
    not be written through. *)

val page_rw : t -> int64 -> bytes
(** Borrow the live backing buffer for writing, materializing the page if
    needed. Marks the page dirty and stamps a fresh generation once, in
    place of the per-write bookkeeping the borrower skips — equivalent at
    page granularity. Raises {!Protected_page_write} on protected pages. *)

val set_page : t -> int64 -> bytes -> unit
(** Install page contents (must be exactly [page_size] bytes). *)

val materialized_pages : t -> int64 list
(** PFNs of all pages that have been written, sorted. *)

val dirty_pages : t -> int64 list
(** PFNs dirtied since the last [clear_dirty], sorted. *)

val clear_dirty : t -> unit
val dirty_bytes : t -> int

val write_gen : t -> int64
(** Monotonic write-generation counter: bumped on every page write. Never
    reset, unlike the dirty set, so multiple observers can each remember
    the stamp they last examined. *)

val page_gen : t -> int64 -> int64
(** Generation stamp of the last write touching the page ([0L] if it was
    never written). A page whose stamp has not advanced since an observer
    last looked is guaranteed to hold identical bytes; rollback via
    {!restore} restamps every affected page. *)

exception Protected_page_write of int64
(** Raised on a write to a protected page — GR-T's continuous validation
    (§5): after a memory dump is shipped, the dumped region is unmapped
    from the CPU so any spurious access traps instead of silently
    diverging the two parties' views. *)

val protect_pages : t -> int64 list -> unit
(** Add PFNs to the protected set. *)

val unprotect_all : t -> unit
val protected_pfns : t -> int64 list

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Restores page contents, the allocator position and dirty state. *)
