exception Kernel_fault of string

(* Kernels see memory as 4 KiB pages of bytes, through per-buffer streams.
   Each stream is a one-entry TLB: a page-aligned VA plus the backing bytes
   of that page, refilled by [smiss] (which performs MMU translation on the
   device, or page-table lookup in [Flat]). Separate streams per operand
   matter: a conv inner loop alternates input and weight reads, and a shared
   cache would miss on every access. The hit path is pure unboxed int
   arithmetic — no [int64] or float boxing — which is what makes simulated
   job execution cheap enough to benchmark the machinery around it. *)

type stream = {
  mutable sbase : int;  (** page-aligned VA of the cached page; -1 = empty *)
  mutable spage : bytes;  (** backing bytes of that page *)
  smiss : stream -> int -> bytes;
      (** refill: resolve [va]'s page, store it in the stream, return it *)
}

type ctx = { c_in : stream; c_in2 : stream; c_bias : stream; c_out : stream }

let new_stream smiss = { sbase = -1; spage = Bytes.empty; smiss }

external get32 : bytes -> int -> int32 = "%caml_bytes_get32"
external set32 : bytes -> int -> int32 -> unit = "%caml_bytes_set32"
external swap32 : int32 -> int32 = "%bswap_int32"

let[@inline] get32_le b i = if Sys.big_endian then swap32 (get32 b i) else get32 b i
let[@inline] set32_le b i v = set32 b i (if Sys.big_endian then swap32 v else v)

let[@inline] getf (s : stream) va =
  let page = va land lnot 0xFFF in
  let p = if page = s.sbase then s.spage else s.smiss s va in
  Int32.float_of_bits (get32_le p (va land 0xFFF))

let[@inline] setf (s : stream) va v =
  let page = va land lnot 0xFFF in
  let p = if page = s.sbase then s.spage else s.smiss s va in
  set32_le p (va land 0xFFF) (Int32.bits_of_float v)

(* A self-contained paged address space: the reference executor and kernel
   unit tests need [ctx]s that are not backed by a simulated device. Pages
   materialize on first touch (reads of untouched memory see zeros) and are
   shared between all four streams, so reads always observe prior writes. *)
module Flat = struct
  type t = (int, bytes) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let page (t : t) va =
    let pn = va lsr 12 in
    match Hashtbl.find_opt t pn with
    | Some p -> p
    | None ->
      let p = Bytes.make 4096 '\000' in
      Hashtbl.replace t pn p;
      p

  let ctx t =
    let miss (s : stream) va =
      let p = page t va in
      s.sbase <- va land lnot 0xFFF;
      s.spage <- p;
      p
    in
    { c_in = new_stream miss; c_in2 = new_stream miss; c_bias = new_stream miss; c_out = new_stream miss }

  let read_f32 t va =
    let va = Int64.to_int va in
    Int32.float_of_bits (get32_le (page t va) (va land 0xFFF))

  let write_f32 t va v =
    let va = Int64.to_int va in
    set32_le (page t va) (va land 0xFFF) (Int32.bits_of_float v)
end

let fail fmt = Printf.ksprintf (fun s -> raise (Kernel_fault s)) fmt

let partition_range ~total ~part_idx ~part_count =
  if part_count <= 0 || part_idx < 0 || part_idx >= part_count then
    fail "bad partition %d/%d" part_idx part_count;
  let q = total / part_count and r = total mod part_count in
  let first = (part_idx * q) + min part_idx r in
  let count = q + if part_idx < r then 1 else 0 in
  (first, count)

(* CHW indexing *)
let chw ~h ~w c y x = (((c * h) + y) * w) + x

let check_conv_geometry p =
  let open Job_desc in
  let expect_h = ((p.in_h + (2 * p.pad) - p.kh) / p.stride) + 1 in
  let expect_w = ((p.in_w + (2 * p.pad) - p.kw) / p.stride) + 1 in
  if expect_h <> p.out_h || expect_w <> p.out_w then
    fail "conv geometry mismatch: got %dx%d want %dx%d" p.out_h p.out_w expect_h expect_w

(* Tensor base VAs as unboxed ints; element [idx] of a buffer at [base] is
   the f32 at [base + 4*idx]. The stream accessors index bytes within a
   4 KiB page, so bases must be 4-aligned — [execute] checks this once. *)

let conv2d ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  let first_oc, n_oc = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  let inb = Int64.to_int d.input_va
  and wb = Int64.to_int d.input2_va
  and bb = Int64.to_int d.bias_va
  and ob = Int64.to_int d.output_va in
  for oc = first_oc to first_oc + n_oc - 1 do
    let bias = if bb = 0 then 0.0 else getf ctx.c_bias (bb + (4 * oc)) in
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let acc = ref bias in
        for ic = 0 to p.in_c - 1 do
          for ky = 0 to p.kh - 1 do
            let iy = (oy * p.stride) + ky - p.pad in
            if iy >= 0 && iy < p.in_h then
              for kx = 0 to p.kw - 1 do
                let ix = (ox * p.stride) + kx - p.pad in
                if ix >= 0 && ix < p.in_w then begin
                  let wi = (((((oc * p.in_c) + ic) * p.kh) + ky) * p.kw) + kx in
                  let v = getf ctx.c_in (inb + (4 * in_idx ic iy ix)) in
                  let w = getf ctx.c_in2 (wb + (4 * wi)) in
                  acc := !acc +. (v *. w)
                end
              done
          done
        done;
        let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
        setf ctx.c_out (ob + (4 * out_idx oc oy ox)) r
      done
    done
  done

let depthwise ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  if p.in_c <> p.out_c then fail "depthwise needs in_c = out_c";
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  let inb = Int64.to_int d.input_va
  and wb = Int64.to_int d.input2_va
  and bb = Int64.to_int d.bias_va
  and ob = Int64.to_int d.output_va in
  for c = 0 to p.out_c - 1 do
    let bias = if bb = 0 then 0.0 else getf ctx.c_bias (bb + (4 * c)) in
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let acc = ref bias in
        for ky = 0 to p.kh - 1 do
          let iy = (oy * p.stride) + ky - p.pad in
          if iy >= 0 && iy < p.in_h then
            for kx = 0 to p.kw - 1 do
              let ix = (ox * p.stride) + kx - p.pad in
              if ix >= 0 && ix < p.in_w then begin
                let wi = (((c * p.kh) + ky) * p.kw) + kx in
                acc := !acc +. (getf ctx.c_in (inb + (4 * in_idx c iy ix)) *. getf ctx.c_in2 (wb + (4 * wi)))
              end
            done
        done;
        let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
        setf ctx.c_out (ob + (4 * out_idx c oy ox)) r
      done
    done
  done

let fc ctx (d : Job_desc.t) =
  let p = d.params in
  let in_n = p.in_c * p.in_h * p.in_w in
  let out_n = p.out_c in
  if in_n <= 0 || out_n <= 0 then fail "fc: empty shape";
  let first, count = partition_range ~total:out_n ~part_idx:p.part_idx ~part_count:p.part_count in
  let inb = Int64.to_int d.input_va
  and wb = Int64.to_int d.input2_va
  and bb = Int64.to_int d.bias_va
  and ob = Int64.to_int d.output_va in
  for o = first to first + count - 1 do
    let acc = ref (if bb = 0 then 0.0 else getf ctx.c_bias (bb + (4 * o))) in
    for i = 0 to in_n - 1 do
      acc := !acc +. (getf ctx.c_in (inb + (4 * i)) *. getf ctx.c_in2 (wb + (4 * ((o * in_n) + i))))
    done;
    let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
    setf ctx.c_out (ob + (4 * o)) r
  done

let maxpool ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  if p.in_c <> p.out_c then fail "maxpool needs in_c = out_c";
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  for c = 0 to p.out_c - 1 do
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let best = ref neg_infinity in
        for ky = 0 to p.kh - 1 do
          let iy = (oy * p.stride) + ky - p.pad in
          if iy >= 0 && iy < p.in_h then
            for kx = 0 to p.kw - 1 do
              let ix = (ox * p.stride) + kx - p.pad in
              if ix >= 0 && ix < p.in_w then begin
                let v = getf ctx.c_in (inb + (4 * in_idx c iy ix)) in
                if v > !best then best := v
              end
            done
        done;
        setf ctx.c_out (ob + (4 * out_idx c oy ox)) !best
      done
    done
  done

let avgpool_global ctx (d : Job_desc.t) =
  let p = d.params in
  if p.out_h <> 1 || p.out_w <> 1 || p.in_c <> p.out_c then fail "avgpool: expects global CxHxW -> Cx1x1";
  let n = p.in_h * p.in_w in
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  for c = 0 to p.in_c - 1 do
    let acc = ref 0.0 in
    for y = 0 to p.in_h - 1 do
      for x = 0 to p.in_w - 1 do
        acc := !acc +. getf ctx.c_in (inb + (4 * in_idx c y x))
      done
    done;
    setf ctx.c_out (ob + (4 * c)) (!acc /. float_of_int n)
  done

let flat_len (p : Job_desc.params) = p.out_c * p.out_h * p.out_w

let relu ctx (d : Job_desc.t) =
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  for i = 0 to flat_len d.params - 1 do
    let v = getf ctx.c_in (inb + (4 * i)) in
    setf ctx.c_out (ob + (4 * i)) (if v < 0.0 then 0.0 else v)
  done

let copy ctx (d : Job_desc.t) =
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  for i = 0 to flat_len d.params - 1 do
    setf ctx.c_out (ob + (4 * i)) (getf ctx.c_in (inb + (4 * i)))
  done

let add ctx (d : Job_desc.t) =
  let p = d.params in
  let inb = Int64.to_int d.input_va
  and in2b = Int64.to_int d.input2_va
  and ob = Int64.to_int d.output_va in
  for i = 0 to flat_len p - 1 do
    let v = getf ctx.c_in (inb + (4 * i)) +. getf ctx.c_in2 (in2b + (4 * i)) in
    setf ctx.c_out (ob + (4 * i)) (if p.relu && v < 0.0 then 0.0 else v)
  done

let unary_elementwise f ctx (d : Job_desc.t) =
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  for i = 0 to flat_len d.params - 1 do
    setf ctx.c_out (ob + (4 * i)) (f (getf ctx.c_in (inb + (4 * i))))
  done

let mul ctx (d : Job_desc.t) =
  let inb = Int64.to_int d.input_va
  and in2b = Int64.to_int d.input2_va
  and ob = Int64.to_int d.output_va in
  for i = 0 to flat_len d.params - 1 do
    setf ctx.c_out (ob + (4 * i)) (getf ctx.c_in (inb + (4 * i)) *. getf ctx.c_in2 (in2b + (4 * i)))
  done

let concat2 ctx (d : Job_desc.t) =
  let p = d.params in
  if p.in_c + p.in2_c <> p.out_c then fail "concat2: channel mismatch";
  if p.in_h <> p.out_h || p.in_w <> p.out_w then fail "concat2: spatial mismatch";
  let plane = p.out_h * p.out_w in
  let inb = Int64.to_int d.input_va
  and in2b = Int64.to_int d.input2_va
  and ob = Int64.to_int d.output_va in
  for i = 0 to (p.in_c * plane) - 1 do
    setf ctx.c_out (ob + (4 * i)) (getf ctx.c_in (inb + (4 * i)))
  done;
  let off = p.in_c * plane in
  for i = 0 to (p.in2_c * plane) - 1 do
    setf ctx.c_out (ob + (4 * (off + i))) (getf ctx.c_in2 (in2b + (4 * i)))
  done

let softmax ctx (d : Job_desc.t) =
  let p = d.params in
  let n = p.in_c * p.in_h * p.in_w in
  if n <= 0 then fail "softmax: empty";
  let inb = Int64.to_int d.input_va and ob = Int64.to_int d.output_va in
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = getf ctx.c_in (inb + (4 * i)) in
    if v > !m then m := v
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    let e = exp (getf ctx.c_in (inb + (4 * i)) -. !m) in
    setf ctx.c_out (ob + (4 * i)) e;
    sum := !sum +. e
  done;
  for i = 0 to n - 1 do
    setf ctx.c_out (ob + (4 * i)) (getf ctx.c_out (ob + (4 * i)) /. !sum)
  done

(* Stream offsets are computed page-relative, so tensor bases must be f32
   aligned (real command streams guarantee this; a descriptor that does not
   is malformed). *)
let check_aligned (d : Job_desc.t) =
  let bad v = Int64.logand v 3L <> 0L in
  if bad d.input_va || bad d.input2_va || bad d.bias_va || bad d.output_va then
    fail "tensor VA not 4-byte aligned"

let execute ctx (d : Job_desc.t) =
  check_aligned d;
  match d.op with
  | Shader.Conv2d -> conv2d ctx d
  | Shader.Depthwise -> depthwise ctx d
  | Shader.Fc -> fc ctx d
  | Shader.Maxpool -> maxpool ctx d
  | Shader.Avgpool -> avgpool_global ctx d
  | Shader.Relu -> relu ctx d
  | Shader.Copy -> copy ctx d
  | Shader.Add -> add ctx d
  | Shader.Concat2 -> concat2 ctx d
  | Shader.Softmax -> softmax ctx d
  | Shader.Tanh -> unary_elementwise tanh ctx d
  | Shader.Sigmoid -> unary_elementwise (fun x -> 1.0 /. (1.0 +. exp (-.x))) ctx d
  | Shader.Mul -> mul ctx d

let flops op (p : Job_desc.params) =
  let i64 = Int64.of_int in
  let out_plane = p.out_h * p.out_w in
  match op with
  | Shader.Conv2d ->
    let _, n_oc = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
    i64 (2 * n_oc * out_plane * p.in_c * p.kh * p.kw)
  | Shader.Depthwise -> i64 (2 * p.out_c * out_plane * p.kh * p.kw)
  | Shader.Fc ->
    let in_n = p.in_c * p.in_h * p.in_w in
    let _, count = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
    i64 (2 * count * in_n)
  | Shader.Maxpool -> i64 (p.out_c * out_plane * p.kh * p.kw)
  | Shader.Avgpool -> i64 (p.in_c * p.in_h * p.in_w)
  | Shader.Relu | Shader.Copy -> i64 (p.out_c * out_plane)
  | Shader.Add | Shader.Mul -> i64 (2 * p.out_c * out_plane)
  | Shader.Tanh | Shader.Sigmoid -> i64 (8 * p.out_c * out_plane)
  | Shader.Concat2 -> i64 (p.out_c * out_plane)
  | Shader.Softmax -> i64 (4 * p.in_c * p.in_h * p.in_w)
