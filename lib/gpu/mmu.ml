type flags = { writable : bool; executable : bool; cacheable : bool }

let rw_data = { writable = true; executable = false; cacheable = true }
let ro_data = { writable = false; executable = false; cacheable = true }
let rx_code = { writable = false; executable = true; cacheable = true }

type fault = Unmapped | Permission of string | Bad_format

let pp_fault ppf = function
  | Unmapped -> Format.pp_print_string ppf "unmapped"
  | Permission s -> Format.fprintf ppf "permission(%s)" s
  | Bad_format -> Format.pp_print_string ppf "bad-format"

type t = { mem : Mem.t; fmt : Sku.pt_format; root : int64 }

let desc_table = 0b11
let desc_block = 0b01
let desc_type_mask = 0b11
let bit_writable = 0x40
let bit_executable = 0x80
let bit_cacheable = 0x100
let bit_access = 0x400
let pa_mask = 0xFF_FFFF_F000

(* Descriptors are read and manipulated as native ints: every field the
   walker touches — the 40-bit PA under [pa_mask], the type bits, the
   permission bits — lives below bit 41, far inside OCaml's 63-bit int.
   (A raw [write_u64] of garbage with bit 63 set would be truncated by the
   conversion; the type/PA bits the walk inspects are unaffected.) Tables
   are page-aligned, so one [Mem.borrow_ro] per level resolves all 512
   descriptors of that table without further lookups or boxing. *)

let level_index va level =
  (* level 1 -> bits 38:30, level 2 -> 29:21, level 3 -> 20:12 *)
  let shift = 12 + (9 * (3 - level)) in
  Int64.to_int (Int64.shift_right_logical va shift) land 0x1FF

(* Read descriptor [idx] of the table page holding [table_pa] (page-aligned),
   as a native int; 0 when the table page was never materialized. *)
let desc_at mem table_pa idx =
  let p = Mem.borrow_ro mem (Mem.page_index table_pa) in
  if p == Bytes.empty then 0 else Int64.to_int (Bytes.get_int64_le p (8 * idx))

let create mem ~fmt =
  let root = Mem.alloc_pages mem 1 in
  (* Touch the page so it is materialized and tracked as metastate. *)
  Mem.write_u64 mem root 0L;
  { mem; fmt; root }

let root_pa t = t.root
let format t = t.fmt

let of_root mem ~fmt ~root = { mem; fmt; root }

let flag_bits t flags =
  let v = ref 0 in
  if flags.writable then v := !v lor bit_writable;
  if flags.executable then v := !v lor bit_executable;
  if flags.cacheable then v := !v lor bit_cacheable;
  (match t.fmt with Sku.Lpae_v8 -> v := !v lor bit_access | Sku.Lpae_v7 -> ());
  !v

let entry_addr table_pa idx = Int64.add table_pa (Int64.of_int (8 * idx))

(* Descend to [level], allocating intermediate tables as needed. *)
let rec table_for t table_pa va level target =
  if level = target then table_pa
  else begin
    let idx = level_index va level in
    let e = desc_at t.mem table_pa idx in
    let next =
      if e land desc_type_mask = desc_table then Int64.of_int (e land pa_mask)
      else begin
        let fresh = Mem.alloc_pages t.mem 1 in
        Mem.write_u64 t.mem fresh 0L;
        Mem.write_u64 t.mem (entry_addr table_pa idx)
          (Int64.logor fresh (Int64.of_int desc_table));
        fresh
      end
    in
    table_for t next va (level + 1) target
  end

let check_align what v bits =
  if Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L) <> 0L then
    invalid_arg (Printf.sprintf "Mmu: misaligned %s" what)

let map_page t ~va ~pa ~flags =
  check_align "va" va 12;
  check_align "pa" pa 12;
  let l3 = table_for t t.root va 1 3 in
  let ea = entry_addr l3 (level_index va 3) in
  Mem.write_u64 t.mem ea (Int64.logor pa (Int64.of_int (flag_bits t flags lor desc_table)))

let map_block t ~va ~pa ~flags =
  check_align "va" va 21;
  check_align "pa" pa 21;
  let l2 = table_for t t.root va 1 2 in
  let ea = entry_addr l2 (level_index va 2) in
  Mem.write_u64 t.mem ea (Int64.logor pa (Int64.of_int (flag_bits t flags lor desc_block)))

let unmap_page t ~va =
  check_align "va" va 12;
  let l2 = table_for t t.root va 1 2 in
  let e2 = desc_at t.mem l2 (level_index va 2) in
  if e2 land desc_type_mask = desc_block then
    Mem.write_u64 t.mem (entry_addr l2 (level_index va 2)) 0L
  else if e2 land desc_type_mask = desc_table then begin
    let l3 = Int64.of_int (e2 land pa_mask) in
    Mem.write_u64 t.mem (entry_addr l3 (level_index va 3)) 0L
  end

let check_perm t e ~access =
  let need bit msg = if e land bit = 0 then Error (Permission msg) else Ok () in
  let access_ok =
    match t.fmt with
    | Sku.Lpae_v8 -> need bit_access "access-flag"
    | Sku.Lpae_v7 -> Ok ()
  in
  match access_ok with
  | Error _ as err -> err
  | Ok () -> (
    match access with
    | `Read -> Ok ()
    | `Write -> need bit_writable "write"
    | `Exec -> need bit_executable "exec")

let translate t ~va ~access =
  let e1 = desc_at t.mem t.root (level_index va 1) in
  if e1 land desc_type_mask <> desc_table then Error Unmapped
  else begin
    let l2 = Int64.of_int (e1 land pa_mask) in
    let e2 = desc_at t.mem l2 (level_index va 2) in
    let ty2 = e2 land desc_type_mask in
    if ty2 = desc_block then
      match check_perm t e2 ~access with
      | Error _ as err -> err
      | Ok () ->
        let base = e2 land pa_mask in
        Ok (Int64.logor (Int64.of_int base) (Int64.logand va 0x1F_FFFFL))
    else if ty2 = desc_table then begin
      let l3 = Int64.of_int (e2 land pa_mask) in
      let e3 = desc_at t.mem l3 (level_index va 3) in
      if e3 land desc_type_mask <> desc_table then Error Unmapped
      else
        match check_perm t e3 ~access with
        | Error _ as err -> err
        | Ok () ->
          let base = e3 land pa_mask in
          Ok (Int64.logor (Int64.of_int base) (Int64.logand va 0xFFFL))
    end
    else if e2 = 0 then Error Unmapped
    else Error Bad_format
  end

(* The walkers below resolve each table page once and scan its descriptors
   with direct byte reads — this is what keeps the memsync page-table cache
   rebuild (every mapping change invalidates it) off the allocator. *)

let iter_table_pfns t f =
  let root_pfn = Mem.page_index t.root in
  f root_pfn;
  let root_p = Mem.borrow_ro t.mem root_pfn in
  if root_p != Bytes.empty then
    for i1 = 0 to 511 do
      let e1 = Int64.to_int (Bytes.get_int64_le root_p (8 * i1)) in
      if e1 land desc_type_mask = desc_table then begin
        let l2_pfn = (e1 land pa_mask) lsr 12 in
        f l2_pfn;
        let l2_p = Mem.borrow_ro t.mem l2_pfn in
        if l2_p != Bytes.empty then
          for i2 = 0 to 511 do
            let e2 = Int64.to_int (Bytes.get_int64_le l2_p (8 * i2)) in
            if e2 land desc_type_mask = desc_table then f ((e2 land pa_mask) lsr 12)
          done
      end
    done

let table_pages t =
  let acc = ref [] in
  iter_table_pfns t (fun pfn -> acc := Int64.of_int pfn :: !acc);
  List.sort_uniq Int64.compare !acc

let flags_of_entry e =
  {
    writable = e land bit_writable <> 0;
    executable = e land bit_executable <> 0;
    cacheable = e land bit_cacheable <> 0;
  }

let mapped_spans t =
  let leaves = ref [] in
  let root_p = Mem.borrow_ro t.mem (Mem.page_index t.root) in
  if root_p != Bytes.empty then
    for i1 = 0 to 511 do
      let e1 = Int64.to_int (Bytes.get_int64_le root_p (8 * i1)) in
      if e1 land desc_type_mask = desc_table then begin
        let l2_p = Mem.borrow_ro t.mem ((e1 land pa_mask) lsr 12) in
        if l2_p != Bytes.empty then
          for i2 = 0 to 511 do
            let e2 = Int64.to_int (Bytes.get_int64_le l2_p (8 * i2)) in
            let va2 =
              Int64.logor
                (Int64.shift_left (Int64.of_int i1) 30)
                (Int64.shift_left (Int64.of_int i2) 21)
            in
            let ty2 = e2 land desc_type_mask in
            if ty2 = desc_block then leaves := (va2, 1 lsl 21, flags_of_entry e2) :: !leaves
            else if ty2 = desc_table then begin
              let l3_p = Mem.borrow_ro t.mem ((e2 land pa_mask) lsr 12) in
              if l3_p != Bytes.empty then
                for i3 = 0 to 511 do
                  let e3 = Int64.to_int (Bytes.get_int64_le l3_p (8 * i3)) in
                  if e3 land desc_type_mask = desc_table then begin
                    let va = Int64.logor va2 (Int64.shift_left (Int64.of_int i3) 12) in
                    leaves := (va, Mem.page_size, flags_of_entry e3) :: !leaves
                  end
                done
            end
          done
      end
    done;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b) !leaves in
  (* Coalesce contiguous identical-flag spans. *)
  let rec merge = function
    | (va1, len1, f1) :: (va2, len2, f2) :: rest
      when Int64.add va1 (Int64.of_int len1) = va2 && f1 = f2 ->
      merge ((va1, len1 + len2, f1) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge sorted
