type irq_line = Job_irq | Gpu_irq | Mmu_irq

let pp_irq_line ppf l =
  Format.pp_print_string ppf
    (match l with Job_irq -> "job" | Gpu_irq -> "gpu" | Mmu_irq -> "mmu")

type domain = { mutable ready : int64; mutable pending_on : int64; mutable pending_off : int64 }

type slot = {
  mutable head : int64;
  mutable tail : int64;
  mutable affinity : int64;
  mutable config : int64;
  mutable status : int64;
  mutable head_next : int64;
  mutable affinity_next : int64;
  mutable config_next : int64;
}

type address_space = {
  mutable transtab : int64;
  mutable memattr : int64;
  mutable lockaddr : int64;
  mutable as_status : int64;
  mutable faultstatus : int64;
  mutable faultaddress : int64;
}

type event = { deadline : int; action : unit -> unit }  (* deadline: unboxed ns *)

type t = {
  sku : Sku.t;
  mem : Mem.t;
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t option;
  (* interrupt blocks: rawstat / mask per line *)
  mutable gpu_rawstat : int64;
  mutable gpu_mask : int64;
  mutable job_rawstat : int64;
  mutable job_mask : int64;
  mutable mmu_rawstat : int64;
  mutable mmu_mask : int64;
  (* config *)
  mutable shader_config : int64;
  mutable tiler_config : int64;
  mutable l2_mmu_config : int64;
  mutable mmu_config : int64;
  (* power domains *)
  shader_dom : domain;
  tiler_dom : domain;
  l2_dom : domain;
  (* job and MMU blocks *)
  slots : slot array;
  spaces : address_space array;
  (* flush id: increments per cache flush, salted per session *)
  mutable flush_count : int64;
  session_salt : int64;
  misc : (int, int64) Hashtbl.t; (* PRFCNT and similar plain storage registers *)
  mutable events : event list;
  mutable jobs_executed : int;
  mutable last_fault : string option;
  mutable resetting : bool;
}

let sku t = t.sku
let mem t = t.mem
let clock t = t.clock
let jobs_executed t = t.jobs_executed
let last_fault t = t.last_fault

let fresh_domain () = { ready = 0L; pending_on = 0L; pending_off = 0L }

let fresh_slot () =
  {
    head = 0L;
    tail = 0L;
    affinity = 0L;
    config = 0L;
    status = Regs.js_status_idle;
    head_next = 0L;
    affinity_next = 0L;
    config_next = 0L;
  }

let fresh_as () =
  { transtab = 0L; memattr = 0L; lockaddr = 0L; as_status = 0L; faultstatus = 0L; faultaddress = 0L }

let create ?energy ~clock ~mem ~sku ~session_salt () =
  {
    sku;
    mem;
    clock;
    energy;
    gpu_rawstat = 0L;
    gpu_mask = 0L;
    job_rawstat = 0L;
    job_mask = 0L;
    mmu_rawstat = 0L;
    mmu_mask = 0L;
    shader_config = sku.Sku.quirk_shader_config;
    tiler_config = 0L;
    l2_mmu_config = 0L;
    mmu_config = sku.Sku.quirk_mmu_config;
    shader_dom = fresh_domain ();
    tiler_dom = fresh_domain ();
    l2_dom = fresh_domain ();
    slots = Array.init Regs.job_slot_count (fun _ -> fresh_slot ());
    spaces = Array.init Regs.as_count (fun _ -> fresh_as ());
    flush_count = 0L;
    session_salt;
    misc = Hashtbl.create 16;
    events = [];
    jobs_executed = 0;
    last_fault = None;
    resetting = false;
  }

let schedule t ~after_ns action =
  let deadline = Grt_sim.Clock.now_int t.clock + Int64.to_int after_ns in
  t.events <- { deadline; action } :: t.events

(* Apply all events whose deadline has passed, in deadline order. Called on
   every register access, so the nothing-due case (including the common
   one-pending-job-completion case) must not allocate. *)
let rec none_due now = function
  | [] -> true
  | e :: tl -> e.deadline > now && none_due now tl

let refresh t =
  match t.events with
  | [] -> ()
  | [ e ] ->
    (* Dominant case: one pending event (a job completion, a flush). Fire
       it without the partition/sort allocation of the general path. *)
    if e.deadline <= Grt_sim.Clock.now_int t.clock then begin
      t.events <- [];
      e.action ()
    end
  | evs ->
    let now = Grt_sim.Clock.now_int t.clock in
    if none_due now evs then ()
    else begin
      let due, later = List.partition (fun e -> e.deadline <= now) evs in
      t.events <- later;
      List.iter (fun e -> e.action ()) (List.sort (fun a b -> compare a.deadline b.deadline) due)
    end

let next_event_ns t =
  match t.events with
  | [] -> None
  | es -> Some (Int64.of_int (List.fold_left (fun acc e -> min acc e.deadline) max_int es))

let raise_gpu_irq t bits = t.gpu_rawstat <- Int64.logor t.gpu_rawstat bits

(* Restore the pristine register file, as after a cold power cycle: every
   block back to its create-time value, pending timed events discarded. The
   clock is untouched (time does not rewind) and [jobs_executed] keeps
   counting across cycles. Replay sessions that reuse one device depend on
   this: recordings are made against a fresh device, so every register a
   recording reads before first writing it must hold its reset value. *)
let power_cycle t =
  t.gpu_rawstat <- 0L;
  t.gpu_mask <- 0L;
  t.job_rawstat <- 0L;
  t.job_mask <- 0L;
  t.mmu_rawstat <- 0L;
  t.mmu_mask <- 0L;
  t.shader_config <- t.sku.Sku.quirk_shader_config;
  t.tiler_config <- 0L;
  t.l2_mmu_config <- 0L;
  t.mmu_config <- t.sku.Sku.quirk_mmu_config;
  List.iter
    (fun d ->
      d.ready <- 0L;
      d.pending_on <- 0L;
      d.pending_off <- 0L)
    [ t.shader_dom; t.tiler_dom; t.l2_dom ];
  Array.iteri (fun i _ -> t.slots.(i) <- fresh_slot ()) t.slots;
  Array.iteri (fun i _ -> t.spaces.(i) <- fresh_as ()) t.spaces;
  t.flush_count <- 0L;
  Hashtbl.reset t.misc;
  t.events <- [];
  t.last_fault <- None;
  t.resetting <- false

(* ---- power domains ---- *)

let domain_power_on t dom mask =
  dom.pending_on <- Int64.logor dom.pending_on mask;
  schedule t ~after_ns:(Int64.of_int (t.sku.Sku.power_up_us * 1000)) (fun () ->
      dom.ready <- Int64.logor dom.ready dom.pending_on;
      dom.pending_on <- 0L;
      raise_gpu_irq t Regs.irq_power_changed_all)

let domain_power_off t dom mask =
  dom.pending_off <- Int64.logor dom.pending_off mask;
  schedule t ~after_ns:(Int64.of_int (t.sku.Sku.power_up_us * 500)) (fun () ->
      dom.ready <- Int64.logand dom.ready (Int64.lognot dom.pending_off);
      dom.pending_off <- 0L;
      raise_gpu_irq t Regs.irq_power_changed_all)

(* ---- resets and cache maintenance ---- *)

let do_soft_reset t =
  t.resetting <- true;
  schedule t ~after_ns:(Int64.of_int (t.sku.Sku.reset_us * 1000)) (fun () ->
      t.resetting <- false;
      t.shader_dom.ready <- 0L;
      t.tiler_dom.ready <- 0L;
      t.l2_dom.ready <- 0L;
      t.shader_config <- t.sku.Sku.quirk_shader_config;
      t.mmu_config <- t.sku.Sku.quirk_mmu_config;
      Array.iter
        (fun s ->
          s.head <- 0L;
          s.status <- Regs.js_status_idle)
        t.slots;
      Array.iter
        (fun a ->
          a.transtab <- 0L;
          a.as_status <- 0L)
        t.spaces;
      t.job_rawstat <- 0L;
      t.mmu_rawstat <- 0L;
      raise_gpu_irq t Regs.irq_reset_completed)

let do_cache_flush t =
  let dirty_kb = Mem.dirty_bytes t.mem / 1024 in
  let duration =
    Int64.add 8_000L (Int64.mul (Int64.of_int dirty_kb) Grt_sim.Costs.cache_flush_ns_per_kb)
  in
  schedule t ~after_ns:duration (fun () ->
      t.flush_count <- Int64.add t.flush_count 1L;
      Mem.clear_dirty t.mem;
      raise_gpu_irq t Regs.irq_clean_caches_completed)

(* ---- MMU ---- *)

let as_flush_duration cmd =
  if Int64.equal cmd Regs.as_cmd_flush_mem then 25_000L
  else if Int64.equal cmd Regs.as_cmd_flush_pt then 12_000L
  else 3_000L

let do_as_command t idx cmd =
  let sp = t.spaces.(idx) in
  if
    Int64.equal cmd Regs.as_cmd_update || Int64.equal cmd Regs.as_cmd_flush_pt
    || Int64.equal cmd Regs.as_cmd_flush_mem || Int64.equal cmd Regs.as_cmd_lock
    || Int64.equal cmd Regs.as_cmd_unlock
  then begin
    sp.as_status <- Regs.as_status_flush_active;
    schedule t ~after_ns:(as_flush_duration cmd) (fun () -> sp.as_status <- 0L)
  end

(* ---- job execution ---- *)

exception Gpu_fault of string

let mmu_for t ~as_idx =
  let sp = t.spaces.(as_idx) in
  if Int64.equal sp.transtab 0L then raise (Gpu_fault "AS not configured");
  Mmu.of_root t.mem ~fmt:t.sku.Sku.pt_format ~root:(Int64.logand sp.transtab (Int64.lognot 0xFFFL))

let record_mmu_fault t ~as_idx ~va reason =
  let sp = t.spaces.(as_idx) in
  sp.faultstatus <- 1L;
  sp.faultaddress <- va;
  t.mmu_rawstat <- Int64.logor t.mmu_rawstat (Int64.shift_left 1L as_idx);
  t.last_fault <- Some reason

let translate_or_fault t mmu ~as_idx ~va ~access =
  match Mmu.translate mmu ~va ~access with
  | Ok pa -> pa
  | Error f ->
    let reason = Format.asprintf "translation fault at %Lx: %a" va Mmu.pp_fault f in
    record_mmu_fault t ~as_idx ~va reason;
    raise (Gpu_fault reason)

(* Kernel streams: each operand gets a one-entry TLB over the live page
   buffers (see Kernels), backed here by a per-chain direct-mapped software
   TLB so a stream switching pages (a conv walking input channels) does not
   redo the MMU walk for a page translated moments ago. Reads of pages never
   materialized see a shared zero page without materializing them — that
   would perturb the memsync working set. A write miss that materializes a
   page displaces any read-side cache of the same VA so reads cannot keep
   serving the stale zero page. *)
let zero_page = Bytes.make Mem.page_size '\000'
let tlb_size = 256

let kernel_ctx t mmu ~as_idx =
  let rtag = Array.make tlb_size (-1)
  and rpage = Array.make tlb_size Bytes.empty
  and wtag = Array.make tlb_size (-1)
  and wpage = Array.make tlb_size Bytes.empty in
  let fill (s : Kernels.stream) va p =
    s.Kernels.sbase <- va land lnot 0xFFF;
    s.Kernels.spage <- p;
    p
  in
  let rmiss (s : Kernels.stream) va =
    let page = va land lnot 0xFFF in
    let idx = (va lsr 12) land (tlb_size - 1) in
    if Array.unsafe_get rtag idx = page then fill s va (Array.unsafe_get rpage idx)
    else begin
      let pa = translate_or_fault t mmu ~as_idx ~va:(Int64.of_int va) ~access:`Read in
      let p =
        match Mem.page_ro t.mem (Mem.page_of_addr pa) with Some p -> p | None -> zero_page
      in
      rtag.(idx) <- page;
      rpage.(idx) <- p;
      fill s va p
    end
  in
  let c_in = Kernels.new_stream rmiss
  and c_in2 = Kernels.new_stream rmiss
  and c_bias = Kernels.new_stream rmiss in
  let wmiss (s : Kernels.stream) va =
    let page = va land lnot 0xFFF in
    let idx = (va lsr 12) land (tlb_size - 1) in
    if Array.unsafe_get wtag idx = page then fill s va (Array.unsafe_get wpage idx)
    else begin
      let pa = translate_or_fault t mmu ~as_idx ~va:(Int64.of_int va) ~access:`Write in
      let p = Mem.page_rw t.mem (Mem.page_of_addr pa) in
      wtag.(idx) <- page;
      wpage.(idx) <- p;
      if rtag.(idx) = page && rpage.(idx) != p then rtag.(idx) <- -1;
      let inval (r : Kernels.stream) =
        if r.Kernels.sbase = page && r.Kernels.spage != p then r.Kernels.sbase <- -1
      in
      inval c_in;
      inval c_in2;
      inval c_bias;
      fill s va p
    end
  in
  { Kernels.c_in; c_in2; c_bias; c_out = Kernels.new_stream wmiss }

let validate_shader t mmu ~as_idx ~va ~op =
  let pa = translate_or_fault t mmu ~as_idx ~va ~access:`Exec in
  let hdr_bytes = Mem.read_bytes t.mem pa Shader.header_size in
  match Shader.parse_header hdr_bytes with
  | Error e -> raise (Gpu_fault e)
  | Ok h ->
    if not (Int64.equal h.Shader.gpu_id t.sku.Sku.gpu_id) then
      raise
        (Gpu_fault
           (Printf.sprintf "shader SKU mismatch: built for %Lx, device is %Lx" h.Shader.gpu_id
              t.sku.Sku.gpu_id));
    if h.Shader.op <> op then raise (Gpu_fault "shader/descriptor opcode mismatch")

let powered_up t =
  Int64.compare t.shader_dom.ready 0L > 0 && Int64.compare t.l2_dom.ready 0L > 0

(* Host (wall-clock) seconds this process has spent doing the GPU's side of
   job execution, across every device: descriptor-chain walk, MMU
   translation, shader validation and the kernel math. All of it stands in
   for silicon — on real hardware the GPU fetches and runs the chain itself
   and the host pays only the doorbell MMIO write — so benchmarks of the
   replayer subtract this from their wall-clock samples. *)
(* Domain-local so parallel fleet shards don't race the accumulator; the
   replayer benches that subtract it run single-domain, where one slot sees
   every sample. *)
let gpu_host_acc_key : float ref Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> ref 0.)

let gpu_host_acc () = Grt_util.Par.Dls.get gpu_host_acc_key

let gpu_host_seconds () = !(gpu_host_acc ())

let job_duration_ns t (d : Job_desc.t) =
  let f = Int64.to_float d.params.Job_desc.flops_hint in
  let compute_s = f /. Sku.flops_per_s t.sku in
  Int64.add Grt_sim.Costs.gpu_job_fixed_ns (Int64.of_float (compute_s *. 1e9))

let start_job_chain t ~slot_idx =
  let host_t0 = Sys.time () in
  let acc = gpu_host_acc () in
  Fun.protect ~finally:(fun () -> acc := !acc +. Sys.time () -. host_t0)
  @@ fun () ->
  let slot = t.slots.(slot_idx) in
  let as_idx = Int64.to_int (Int64.logand slot.config 0x7L) in
  slot.status <- Regs.js_status_active;
  let finish status_bits js_status fault =
    (* Completion is scheduled after the accumulated chain duration. *)
    slot.status <- Regs.js_status_active;
    fun () ->
      slot.status <- js_status;
      slot.head <- 0L;
      t.job_rawstat <- Int64.logor t.job_rawstat status_bits;
      (match fault with Some f -> t.last_fault <- Some f | None -> ())
  in
  try
    if not (powered_up t) then raise (Gpu_fault "job started with cores powered down");
    let mmu = mmu_for t ~as_idx in
    let ctx = kernel_ctx t mmu ~as_idx in
    let total_ns = ref 0L in
    let rec run_chain va =
      if not (Int64.equal va 0L) then begin
        let pa = translate_or_fault t mmu ~as_idx ~va ~access:`Read in
        match Job_desc.read t.mem ~pa with
        | Error e ->
          Job_desc.write_status t.mem ~pa (Job_desc.Fault 1);
          raise (Gpu_fault e)
        | Ok d ->
          validate_shader t mmu ~as_idx ~va:d.Job_desc.shader_va ~op:d.Job_desc.op;
          (try Kernels.execute ctx d
           with Kernels.Kernel_fault msg ->
             Job_desc.write_status t.mem ~pa (Job_desc.Fault 2);
             raise (Gpu_fault msg));
          Job_desc.write_status t.mem ~pa Job_desc.Done;
          t.jobs_executed <- t.jobs_executed + 1;
          total_ns := Int64.add !total_ns (job_duration_ns t d);
          run_chain d.Job_desc.next_va
      end
    in
    run_chain slot.head;
    (match t.energy with
    | Some e ->
      Grt_sim.Energy.charge_j e Grt_sim.Energy.Gpu_busy
        (Int64.to_float !total_ns *. 1e-9 *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Gpu_busy)
    | None -> ());
    let done_bit = Int64.shift_left 1L slot_idx in
    schedule t ~after_ns:!total_ns (finish done_bit Regs.js_status_done None)
  with Gpu_fault msg ->
    let fail_bit = Int64.shift_left 1L (16 + slot_idx) in
    schedule t ~after_ns:20_000L
      (finish fail_bit Regs.js_status_fault_bad_descriptor (Some msg))

(* ---- register file ---- *)

let slot_reg r =
  (* Decode a job-slot register offset into (slot, offset) if applicable. *)
  if r >= 0x1800 && r < 0x1800 + (Regs.job_slot_count * 0x80) then
    Some ((r - 0x1800) / 0x80, (r - 0x1800) mod 0x80)
  else None

let as_reg r =
  if r >= 0x2400 && r < 0x2400 + (Regs.as_count * 0x40) then
    Some ((r - 0x2400) / 0x40, (r - 0x2400) mod 0x40)
  else None

let texture_features_value i = Int64.of_int (0x00FF_0000 lor i)

let read_reg t r =
  Grt_sim.Clock.advance_ns t.clock Grt_sim.Costs.mmio_access_ns;
  refresh t;
  let sku = t.sku in
  if r = Regs.gpu_id then sku.Sku.gpu_id
  else if r = Regs.l2_features then Int64.of_int (0x07 lor (sku.Sku.l2_slices lsl 8))
  else if r = Regs.tiler_features then Int64.of_int (0x809 lor (sku.Sku.tiler_units lsl 12))
  else if r = Regs.mem_features then 0x1L
  else if r = Regs.mmu_features then
    Int64.of_int (39 lor (match sku.Sku.pt_format with Sku.Lpae_v7 -> 0x100 | Sku.Lpae_v8 -> 0x200))
  else if r = Regs.as_present then Int64.sub (Int64.shift_left 1L sku.Sku.address_spaces) 1L
  else if r = Regs.gpu_irq_rawstat then t.gpu_rawstat
  else if r = Regs.gpu_irq_mask then t.gpu_mask
  else if r = Regs.gpu_irq_status then Int64.logand t.gpu_rawstat t.gpu_mask
  else if r = Regs.gpu_status then (if t.resetting then 1L else 0L)
  else if r = Regs.latest_flush_id then
    Int64.logand (Int64.add t.flush_count t.session_salt) 0xFFFF_FFFFL
  else if r = Regs.thread_max_threads then Int64.of_int (256 * sku.Sku.shader_cores)
  else if r = Regs.thread_max_workgroup_size then 384L
  else if r = Regs.thread_features then 0x0400_0400L
  else if r >= Regs.texture_features 0 && r <= Regs.texture_features 3 then
    texture_features_value ((r - Regs.texture_features 0) / 4)
  else if r >= Regs.js_features 0 && r <= Regs.js_features 15 then begin
    let i = (r - Regs.js_features 0) / 4 in
    if i < Regs.job_slot_count then 0x20EL else 0L
  end
  else if r >= Regs.prfcnt_base_lo && r <= Regs.prfcnt_mmu_l2_en then
    Option.value ~default:0L (Hashtbl.find_opt t.misc r)
  else if r = Regs.shader_present_lo then Sku.shader_present_mask sku
  else if r = Regs.shader_present_hi then 0L
  else if r = Regs.tiler_present_lo then Sku.tiler_present_mask sku
  else if r = Regs.l2_present_lo then Sku.l2_present_mask sku
  else if r = Regs.shader_ready_lo then t.shader_dom.ready
  else if r = Regs.tiler_ready_lo then t.tiler_dom.ready
  else if r = Regs.l2_ready_lo then t.l2_dom.ready
  else if r = Regs.shader_pwron_lo || r = Regs.tiler_pwron_lo || r = Regs.l2_pwron_lo then 0L
  else if r = Regs.shader_config then t.shader_config
  else if r = Regs.tiler_config then t.tiler_config
  else if r = Regs.l2_mmu_config then t.l2_mmu_config
  else if r = Regs.mmu_config then t.mmu_config
  else if r = Regs.job_irq_rawstat then t.job_rawstat
  else if r = Regs.job_irq_mask then t.job_mask
  else if r = Regs.job_irq_status then Int64.logand t.job_rawstat t.job_mask
  else if r = Regs.mmu_irq_rawstat then t.mmu_rawstat
  else if r = Regs.mmu_irq_mask then t.mmu_mask
  else if r = Regs.mmu_irq_status then Int64.logand t.mmu_rawstat t.mmu_mask
  else
    match slot_reg r with
    | Some (i, 0x00) -> t.slots.(i).head
    | Some (i, 0x08) -> t.slots.(i).tail
    | Some (i, 0x10) -> t.slots.(i).affinity
    | Some (i, 0x18) -> t.slots.(i).config
    | Some (i, 0x24) -> t.slots.(i).status
    | Some (i, 0x40) -> t.slots.(i).head_next
    | Some (i, 0x50) -> t.slots.(i).affinity_next
    | Some (i, 0x58) -> t.slots.(i).config_next
    | Some (_, _) -> 0L
    | None -> (
      match as_reg r with
      | Some (i, 0x00) -> Int64.logand t.spaces.(i).transtab 0xFFFF_FFFFL
      | Some (i, 0x04) -> Int64.shift_right_logical t.spaces.(i).transtab 32
      | Some (i, 0x08) -> t.spaces.(i).memattr
      | Some (i, 0x10) -> t.spaces.(i).lockaddr
      | Some (i, 0x1C) -> t.spaces.(i).faultstatus
      | Some (i, 0x20) -> t.spaces.(i).faultaddress
      | Some (i, 0x28) -> t.spaces.(i).as_status
      | Some (_, _) -> 0L
      | None -> 0L)

let write_reg t r v =
  Grt_sim.Clock.advance_ns t.clock Grt_sim.Costs.mmio_access_ns;
  refresh t;
  if r = Regs.gpu_irq_clear then t.gpu_rawstat <- Int64.logand t.gpu_rawstat (Int64.lognot v)
  else if r = Regs.gpu_irq_mask then t.gpu_mask <- v
  else if r = Regs.gpu_command then begin
    if Int64.equal v Regs.cmd_soft_reset || Int64.equal v Regs.cmd_hard_reset then do_soft_reset t
    else if Int64.equal v Regs.cmd_clean_caches || Int64.equal v Regs.cmd_clean_inv_caches then
      do_cache_flush t
  end
  else if r = Regs.shader_config then t.shader_config <- v
  else if r = Regs.tiler_config then t.tiler_config <- v
  else if r = Regs.l2_mmu_config then t.l2_mmu_config <- v
  else if r = Regs.mmu_config then t.mmu_config <- v
  else if r >= Regs.prfcnt_base_lo && r <= Regs.prfcnt_mmu_l2_en then Hashtbl.replace t.misc r v
  else if r = Regs.shader_pwron_lo then domain_power_on t t.shader_dom v
  else if r = Regs.tiler_pwron_lo then domain_power_on t t.tiler_dom v
  else if r = Regs.l2_pwron_lo then domain_power_on t t.l2_dom v
  else if r = Regs.shader_pwroff_lo then domain_power_off t t.shader_dom v
  else if r = Regs.tiler_pwroff_lo then domain_power_off t t.tiler_dom v
  else if r = Regs.l2_pwroff_lo then domain_power_off t t.l2_dom v
  else if r = Regs.job_irq_clear then t.job_rawstat <- Int64.logand t.job_rawstat (Int64.lognot v)
  else if r = Regs.job_irq_mask then t.job_mask <- v
  else if r = Regs.mmu_irq_clear then t.mmu_rawstat <- Int64.logand t.mmu_rawstat (Int64.lognot v)
  else if r = Regs.mmu_irq_mask then t.mmu_mask <- v
  else
    match slot_reg r with
    | Some (i, 0x00) -> t.slots.(i).head <- Int64.logor (Int64.logand t.slots.(i).head 0xFFFF_FFFF_0000_0000L) v
    | Some (i, 0x04) ->
      t.slots.(i).head <-
        Int64.logor (Int64.logand t.slots.(i).head 0xFFFF_FFFFL) (Int64.shift_left v 32)
    | Some (i, 0x08) -> t.slots.(i).tail <- v
    | Some (i, 0x10) -> t.slots.(i).affinity <- v
    | Some (i, 0x18) -> t.slots.(i).config <- v
    | Some (i, 0x20) -> if Int64.equal v Regs.js_cmd_start then start_job_chain t ~slot_idx:i
    | Some (i, 0x40) ->
      t.slots.(i).head_next <-
        Int64.logor (Int64.logand t.slots.(i).head_next 0xFFFF_FFFF_0000_0000L) v
    | Some (i, 0x44) ->
      t.slots.(i).head_next <-
        Int64.logor (Int64.logand t.slots.(i).head_next 0xFFFF_FFFFL) (Int64.shift_left v 32)
    | Some (i, 0x50) -> t.slots.(i).affinity_next <- v
    | Some (i, 0x58) -> t.slots.(i).config_next <- v
    | Some (i, 0x60) ->
      (* The _NEXT interface: START latches the staged registers into the
         active set and kicks the chain, as on real job managers. *)
      if Int64.equal v Regs.js_cmd_start then begin
        let slot = t.slots.(i) in
        slot.head <- slot.head_next;
        slot.affinity <- slot.affinity_next;
        slot.config <- slot.config_next;
        start_job_chain t ~slot_idx:i
      end
    | Some (_, _) -> ()
    | None -> (
      match as_reg r with
      | Some (i, 0x00) ->
        t.spaces.(i).transtab <- Int64.logor (Int64.logand t.spaces.(i).transtab 0xFFFF_FFFF_0000_0000L) v
      | Some (i, 0x04) ->
        t.spaces.(i).transtab <-
          Int64.logor (Int64.logand t.spaces.(i).transtab 0xFFFF_FFFFL) (Int64.shift_left v 32)
      | Some (i, 0x08) -> t.spaces.(i).memattr <- v
      | Some (i, 0x10) -> t.spaces.(i).lockaddr <- v
      | Some (i, 0x18) -> do_as_command t i v
      | Some (_, _) -> ()
      | None -> ())

let irq_pending t =
  refresh t;
  let lines = ref [] in
  if Int64.compare (Int64.logand t.mmu_rawstat t.mmu_mask) 0L <> 0 then lines := Mmu_irq :: !lines;
  if Int64.compare (Int64.logand t.gpu_rawstat t.gpu_mask) 0L <> 0 then lines := Gpu_irq :: !lines;
  if Int64.compare (Int64.logand t.job_rawstat t.job_mask) 0L <> 0 then lines := Job_irq :: !lines;
  !lines

let wait_for_irq t ~timeout_ns =
  let deadline = Grt_sim.Clock.now_int t.clock + Int64.to_int timeout_ns in
  let rec loop () =
    match irq_pending t with
    | line :: _ -> Some line
    | [] -> (
      match next_event_ns t with
      | Some ev when Int64.to_int ev <= deadline ->
        Grt_sim.Clock.advance_to t.clock ev;
        loop ()
      | _ ->
        if Grt_sim.Clock.now_int t.clock < deadline then begin
          Grt_sim.Clock.advance_to_int t.clock deadline;
          loop ()
        end
        else None)
  in
  loop ()
