(** The GPU device model.

    A passive register-programmed machine on the shared virtual clock:
    writes start work (power transitions, cache maintenance, resets, job
    chains) whose completion is scheduled as timed events; reads observe
    current state after due events are applied. Job chains are walked through
    the GPU MMU, shaders are validated against the device's SKU, and kernels
    execute with real numerics — so a replayed recording produces real
    outputs.

    Register accesses advance the clock by the MMIO cost; job execution
    charges GPU energy for its modeled duration. *)

type t

type irq_line = Job_irq | Gpu_irq | Mmu_irq

val create :
  ?energy:Grt_sim.Energy.t ->
  clock:Grt_sim.Clock.t ->
  mem:Mem.t ->
  sku:Sku.t ->
  session_salt:int64 ->
  unit ->
  t
(** [session_salt] perturbs the nondeterministic registers
    ([LATEST_FLUSH_ID]) so that distinct record runs observe different
    values, as on real hardware. *)

val sku : t -> Sku.t
val mem : t -> Mem.t
val clock : t -> Grt_sim.Clock.t

val read_reg : t -> Regs.t -> int64
val write_reg : t -> Regs.t -> int64 -> unit

val power_cycle : t -> unit
(** Restore the pristine register file, as after a cold power cycle: every
    register block back to its create-time value, pending timed events
    discarded. The clock is untouched (time does not rewind) and
    [jobs_executed] keeps counting. Lets one device host many replay
    sessions: recordings are made against a fresh device, so a reused one
    must present reset values to every register the recording reads before
    writing. *)

val irq_pending : t -> irq_line list
(** Asserted (unmasked, uncleared) interrupt lines right now. *)

val next_event_ns : t -> int64 option
(** Deadline of the earliest scheduled hardware event, if any. *)

val wait_for_irq : t -> timeout_ns:int64 -> irq_line option
(** Advance the clock until an interrupt line asserts or the timeout
    elapses. Used by the native driver loop and by GPUShim. *)

val jobs_executed : t -> int
(** Total jobs completed since creation (test/bench introspection). *)

val gpu_host_seconds : unit -> float
(** Cumulative host (wall-clock) seconds this process has spent doing the
    GPU's side of job execution (descriptor-chain walk, MMU translation,
    shader validation, kernel math), across all devices. That work stands
    in for silicon — on real hardware the GPU fetches and runs the chain
    itself and the host pays only the doorbell write — so benchmarks of
    replayer machinery subtract the delta of this counter from their
    wall-clock samples. *)

val last_fault : t -> string option
(** Description of the most recent job/MMU fault, for diagnostics. *)

val pp_irq_line : Format.formatter -> irq_line -> unit
