(** Compute kernels — the numerics the shader cores perform.

    Tensors are FP32 in CHW layout at GPU virtual addresses. Kernels see
    memory as 4 KiB pages of bytes through per-operand {!stream}s — one-entry
    TLBs the memory provider refills on miss (performing MMU translation on
    the device), exactly as real shader cores fetch through their own TLBs.
    Distinct streams per operand keep alternating input/weight accesses from
    thrashing a shared cache, and the stream hit path is free of [int64] and
    float boxing, which keeps simulated job execution cheap. Output-channel
    partitioning ([part_idx]/[part_count]) lets the runtime split one logical
    operator across several GPU jobs. *)

exception Kernel_fault of string

type stream = {
  mutable sbase : int;  (** page-aligned VA of the cached page; -1 = empty *)
  mutable spage : bytes;  (** backing bytes of that page (4 KiB) *)
  smiss : stream -> int -> bytes;
      (** refill: resolve the page holding [va], cache it in the stream
          ([sbase]/[spage]), and return it. May raise (e.g. a translation
          fault). *)
}

type ctx = {
  c_in : stream;  (** first input tensor *)
  c_in2 : stream;  (** second input / weights *)
  c_bias : stream;  (** bias vector *)
  c_out : stream;  (** output tensor (write stream) *)
}

val new_stream : (stream -> int -> bytes) -> stream
(** Fresh empty stream with the given miss handler. *)

val getf : stream -> int -> float
(** Read the FP32 at a (4-aligned) GPU VA through the stream's page cache. *)

val setf : stream -> int -> float -> unit
(** Write the FP32 at a (4-aligned) GPU VA through the stream's page cache. *)

(** A self-contained paged address space for [ctx]s not backed by a simulated
    device: the CPU reference executor and kernel unit tests. Pages
    materialize on first touch (untouched memory reads as zeros) and are
    shared across all four streams, so reads observe prior writes. *)
module Flat : sig
  type t

  val create : unit -> t
  val ctx : t -> ctx

  val read_f32 : t -> int64 -> float
  val write_f32 : t -> int64 -> float -> unit
end

val execute : ctx -> Job_desc.t -> unit
(** Run the job's operator. Raises {!Kernel_fault} on inconsistent shapes or
    unaligned tensor VAs. *)

val partition_range : total:int -> part_idx:int -> part_count:int -> int * int
(** [(first, count)] of the slice a partition covers; partitions differ by at
    most one element and tile the whole range. *)

val flops : Shader.op -> Job_desc.params -> int64
(** Analytic FLOP count of a job at the shapes given — used both by the
    runtime to stamp [flops_hint] at model scale and by tests. *)
