type t = int

(* GPU control block: 0x0000 .. 0x0FFF *)

let gpu_id = 0x0000
let l2_features = 0x0004
let tiler_features = 0x000C
let mem_features = 0x0010
let mmu_features = 0x0014
let as_present = 0x0018
let gpu_irq_rawstat = 0x0020
let gpu_irq_clear = 0x0024
let gpu_irq_mask = 0x0028
let gpu_irq_status = 0x002C
let gpu_command = 0x0030
let gpu_status = 0x0034
let latest_flush_id = 0x0038
let thread_max_threads = 0x00A0
let thread_max_workgroup_size = 0x00A4
let thread_features = 0x00AC

let texture_features i =
  if i < 0 || i > 3 then invalid_arg "Regs.texture_features";
  0x00B0 + (4 * i)

let js_features i =
  if i < 0 || i > 15 then invalid_arg "Regs.js_features";
  0x00C0 + (4 * i)

let prfcnt_base_lo = 0x0060
let prfcnt_base_hi = 0x0064
let prfcnt_config = 0x0068
let prfcnt_jm_en = 0x006C
let prfcnt_shader_en = 0x0070
let prfcnt_tiler_en = 0x0074
let prfcnt_mmu_l2_en = 0x007C

let shader_present_lo = 0x0100
let shader_present_hi = 0x0104
let tiler_present_lo = 0x0110
let l2_present_lo = 0x0120
let shader_ready_lo = 0x0140
let tiler_ready_lo = 0x0150
let l2_ready_lo = 0x0160
let shader_pwron_lo = 0x0180
let tiler_pwron_lo = 0x0190
let l2_pwron_lo = 0x01A0
let shader_pwroff_lo = 0x01C0
let tiler_pwroff_lo = 0x01D0
let l2_pwroff_lo = 0x01E0
let shader_config = 0x0F04
let tiler_config = 0x0F08
let l2_mmu_config = 0x0F0C
let mmu_config = 0x0F10

let irq_gpu_fault = 0x1L
let irq_reset_completed = 0x100L
let irq_power_changed_all = 0x400L
let irq_clean_caches_completed = 0x20000L

let cmd_nop = 0L
let cmd_soft_reset = 1L
let cmd_hard_reset = 2L
let cmd_clean_caches = 7L
let cmd_clean_inv_caches = 8L

(* Job control block: 0x1000 .. 0x1FFF *)

let job_irq_rawstat = 0x1000
let job_irq_clear = 0x1004
let job_irq_mask = 0x1008
let job_irq_status = 0x100C
let job_slot_count = 3

let js_base i =
  if i < 0 || i >= job_slot_count then invalid_arg "Regs.js_base";
  0x1800 + (i * 0x80)

let js_head_lo i = js_base i + 0x00
let js_head_hi i = js_base i + 0x04
let js_tail_lo i = js_base i + 0x08
let js_affinity_lo i = js_base i + 0x10
let js_config i = js_base i + 0x18
let js_status i = js_base i + 0x24
let js_command i = js_base i + 0x20
let js_head_next_lo i = js_base i + 0x40
let js_head_next_hi i = js_base i + 0x44
let js_affinity_next_lo i = js_base i + 0x50
let js_config_next i = js_base i + 0x58
let js_command_next i = js_base i + 0x60

let js_cmd_nop = 0L
let js_cmd_start = 1L
let js_cmd_soft_stop = 2L
let js_cmd_hard_stop = 3L

let js_status_idle = 0x00L
let js_status_active = 0x08L
let js_status_done = 0x01L
let js_status_fault_shader_mismatch = 0x40L
let js_status_fault_bad_descriptor = 0x41L
let js_status_fault_translation = 0x42L

(* MMU block: 0x2000 .. 0x2FFF *)

let mmu_irq_rawstat = 0x2000
let mmu_irq_clear = 0x2004
let mmu_irq_mask = 0x2008
let mmu_irq_status = 0x200C
let as_count = 8

let as_base i =
  if i < 0 || i >= as_count then invalid_arg "Regs.as_base";
  0x2400 + (i * 0x40)

let as_transtab_lo i = as_base i + 0x00
let as_transtab_hi i = as_base i + 0x04
let as_memattr_lo i = as_base i + 0x08
let as_lockaddr_lo i = as_base i + 0x10
let as_command i = as_base i + 0x18
let as_faultstatus i = as_base i + 0x1C
let as_faultaddress_lo i = as_base i + 0x20
let as_status i = as_base i + 0x28

let as_cmd_nop = 0L
let as_cmd_update = 1L
let as_cmd_lock = 2L
let as_cmd_unlock = 3L
let as_cmd_flush_pt = 4L
let as_cmd_flush_mem = 5L

let as_status_flush_active = 1L

let name_uncached r =
  let in_block base count stride lo hi f =
    (* Find a register inside a repeated block, e.g. job slots. *)
    if r >= base && r < base + (count * stride) then
      let idx = (r - base) / stride in
      let off = (r - base) mod stride in
      if off >= lo && off <= hi then Some (f idx off) else None
    else None
  in
  let fixed =
    [
      (gpu_id, "GPU_ID");
      (l2_features, "L2_FEATURES");
      (tiler_features, "TILER_FEATURES");
      (mem_features, "MEM_FEATURES");
      (mmu_features, "MMU_FEATURES");
      (as_present, "AS_PRESENT");
      (gpu_irq_rawstat, "GPU_IRQ_RAWSTAT");
      (gpu_irq_clear, "GPU_IRQ_CLEAR");
      (gpu_irq_mask, "GPU_IRQ_MASK");
      (gpu_irq_status, "GPU_IRQ_STATUS");
      (gpu_command, "GPU_COMMAND");
      (gpu_status, "GPU_STATUS");
      (latest_flush_id, "LATEST_FLUSH_ID");
      (thread_max_threads, "THREAD_MAX_THREADS");
      (thread_max_workgroup_size, "THREAD_MAX_WORKGROUP_SIZE");
      (thread_features, "THREAD_FEATURES");
      (shader_present_lo, "SHADER_PRESENT_LO");
      (shader_present_hi, "SHADER_PRESENT_HI");
      (tiler_present_lo, "TILER_PRESENT_LO");
      (l2_present_lo, "L2_PRESENT_LO");
      (shader_ready_lo, "SHADER_READY_LO");
      (tiler_ready_lo, "TILER_READY_LO");
      (l2_ready_lo, "L2_READY_LO");
      (shader_pwron_lo, "SHADER_PWRON_LO");
      (tiler_pwron_lo, "TILER_PWRON_LO");
      (l2_pwron_lo, "L2_PWRON_LO");
      (shader_pwroff_lo, "SHADER_PWROFF_LO");
      (tiler_pwroff_lo, "TILER_PWROFF_LO");
      (l2_pwroff_lo, "L2_PWROFF_LO");
      (shader_config, "SHADER_CONFIG");
      (tiler_config, "TILER_CONFIG");
      (l2_mmu_config, "L2_MMU_CONFIG");
      (mmu_config, "MMU_CONFIG");
      (job_irq_rawstat, "JOB_IRQ_RAWSTAT");
      (job_irq_clear, "JOB_IRQ_CLEAR");
      (job_irq_mask, "JOB_IRQ_MASK");
      (job_irq_status, "JOB_IRQ_STATUS");
      (mmu_irq_rawstat, "MMU_IRQ_RAWSTAT");
      (mmu_irq_clear, "MMU_IRQ_CLEAR");
      (mmu_irq_mask, "MMU_IRQ_MASK");
      (mmu_irq_status, "MMU_IRQ_STATUS");
    ]
  in
  match List.assoc_opt r fixed with
  | Some n -> n
  | None -> (
    if r >= 0x00B0 && r < 0x00C0 then Printf.sprintf "TEXTURE_FEATURES_%d" ((r - 0xB0) / 4)
    else if r >= 0x00C0 && r < 0x0100 then Printf.sprintf "JS%d_FEATURES" ((r - 0xC0) / 4)
    else if r >= 0x0060 && r < 0x0080 then Printf.sprintf "PRFCNT_0x%02x" r
    else
      match in_block 0x1800 job_slot_count 0x80 0 0x7F (fun i off -> Printf.sprintf "JS%d+0x%02x" i off) with
      | Some n -> n
      | None -> (
        match in_block 0x2400 as_count 0x40 0 0x3F (fun i off -> Printf.sprintf "AS%d+0x%02x" i off) with
        | Some n -> n
        | None -> Printf.sprintf "REG_0x%04x" r))

(* [name] is asked for on every shimmed register access (symbol origins,
   trace labels); rebuilding the lookup list and formatting would dominate
   the access itself, so resolved names are cached per offset. The register
   space a driver touches is small; the cap only guards against a caller
   probing arbitrary offsets. *)
let name_cache_key : (int, string) Hashtbl.t Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> Hashtbl.create 256)

let name r =
  let name_cache = Grt_util.Par.Dls.get name_cache_key in
  match Hashtbl.find_opt name_cache r with
  | Some s -> s
  | None ->
    let s = name_uncached r in
    if Hashtbl.length name_cache >= 4096 then Hashtbl.reset name_cache;
    Hashtbl.add name_cache r s;
    s

let is_nondeterministic r = r = latest_flush_id
