(** Per-site speculation history (§4.2, §7.3).

    Maps a driver commit site (function @ trigger # access-signature, see
    {!Wire.site_key}) to the read-value vectors its last few commits
    produced. A site qualifies for speculation once its last [k] outcomes
    are identical ({!confident}); the paper uses k = 3. The table is
    sharable across record runs of different workloads — §7.3's "retaining
    register access history in between" — which is why it lives outside
    {!Drivershim.t} and is passed in at create time.

    Policy notes, enforced by the callers:
    - {!observe} must record only true client observations, never injected
      fault values or timeout sentinels, or one transient fault poisons
      every later prediction at the site;
    - {!forget} drops a site whose poll timed out — the prediction is about
      to fail validation, and stale confidence would re-speculate the same
      wrong value on every recovery attempt. *)

type t

val create : unit -> t

val lookup : t -> string -> int64 array list
(** Recorded outcome vectors, newest first; [[]] for an unknown site. *)

val observe : t -> k:int -> string -> int64 array -> unit
(** Prepend an outcome vector, keeping at most [max 1 k] entries. *)

val forget : t -> string -> unit

val confident : t -> k:int -> string -> int64 array option
(** The predicted outcome vector, iff the site has at least [k] recorded
    outcomes and they are all equal. A hit whose evidence includes an entry
    observed before the current epoch also bumps {!cross_hits}. *)

val new_epoch : t -> unit
(** Start a new observation epoch. The recording service calls this at each
    session start on a shared table, so {!cross_hits} can distinguish
    confidence earned within the running session from confidence carried
    over from previous sessions of the same (network, SKU). *)

val cross_hits : t -> int
(** Confident hits so far whose evidence spans a previous epoch — §7.3's
    cross-session speculation benefit, exported by the service as
    [spec.history_cross_hits]. *)

val sites : t -> string list
(** Known sites, in no particular order (diagnostics). *)

val size : t -> int
