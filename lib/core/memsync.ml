module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Session = Grt_runtime.Session

type region = {
  name : string;
  usage : Session.usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

let region_of_session (r : Session.region) =
  {
    name = r.Session.name;
    usage = r.Session.usage;
    va = r.Session.va;
    pa = r.Session.pa;
    model_bytes = r.Session.model_bytes;
    actual_bytes = r.Session.actual_bytes;
  }

type encoding = Enc_raw | Enc_raw_rc | Enc_delta | Enc_delta_rc | Enc_hash_ref

let encoding_to_int = function
  | Enc_raw -> 0
  | Enc_raw_rc -> 1
  | Enc_delta -> 2
  | Enc_delta_rc -> 3
  | Enc_hash_ref -> 4

let encoding_of_int = function
  | 0 -> Some Enc_raw
  | 1 -> Some Enc_raw_rc
  | 2 -> Some Enc_delta
  | 3 -> Some Enc_delta_rc
  | 4 -> Some Enc_hash_ref
  | _ -> None

let encoding_name = function
  | Enc_raw -> "raw"
  | Enc_raw_rc -> "raw+rc"
  | Enc_delta -> "delta"
  | Enc_delta_rc -> "delta+rc"
  | Enc_hash_ref -> "hash-ref"

(* Page content hash. The digest is wire format (hash-ref bodies ship it),
   so it must remain FNV-1a — but the same page contents are hashed over
   and over as a workload resyncs, so a quick-keyed memo (full compare on
   hit, see [Hashing.quick]) avoids re-walking the page byte by byte. *)
(* Domain-local: a private table per domain keeps parallel fleet shards
   race-free; the digest itself is FNV-1a either way. *)
let hash_memo_key : (int, bytes * int64) Hashtbl.t Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> Hashtbl.create 256)

let hash_memo_cap = 1024

let hash_stats = Grt_util.Memo_stats.register "memsync.hash_page"

let hash_page b =
  let hash_memo = Grt_util.Par.Dls.get hash_memo_key in
  let k = Grt_util.Hashing.quick b in
  match Hashtbl.find_opt hash_memo k with
  | Some (input, h) when Bytes.equal input b ->
    Grt_util.Memo_stats.hit hash_stats;
    h
  | prior ->
    Grt_util.Memo_stats.miss hash_stats;
    (match prior with
    | Some (old_in, _) ->
      Grt_util.Memo_stats.mismatch hash_stats;
      Grt_util.Memo_stats.replaced hash_stats
        ~old_bytes:(Bytes.length old_in + 8)
        ~bytes:(Bytes.length b + 8)
    | None -> ());
    let h = Grt_util.Hashing.fnv1a_bytes b in
    if Hashtbl.length hash_memo >= hash_memo_cap then begin
      Grt_util.Memo_stats.evicted hash_stats ~entries:(Hashtbl.length hash_memo);
      Hashtbl.reset hash_memo
    end;
    if not (Hashtbl.mem hash_memo k) then
      Grt_util.Memo_stats.added hash_stats ~bytes:(Bytes.length b + 8);
    Hashtbl.replace hash_memo k (Bytes.copy b, h);
    h

(* Content-addressed page store: hash of a full page body -> the body.
   Collisions are guarded at the lookup sites with [Bytes.equal]. *)
module Store = struct
  type s = (int64, bytes) Hashtbl.t

  let create () : s = Hashtbl.create 64
  let learn (s : s) data = Hashtbl.replace s (hash_page data) (Bytes.copy data)
  let find (s : s) h = Hashtbl.find_opt s h
end

(* Flat scan state for [sync_meta]: the merged meta-pfn set as a sorted int
   array, with the generation each pfn carried when last examined (-1 =
   never). Rebuilt only when the merged set itself changes; stamps carry
   over, so a rebuild never forgets what the scan has seen. *)
type meta_fast = {
  mf_pfns : int array;  (* merged meta pfns, sorted ascending *)
  mf_last : int array;  (* generation at last examination; -1 = never *)
  mutable mf_pfns64 : int64 list option;  (* lazy boxed view for {!meta_pfns} *)
}

(* Walked page-table pages with flat generation stamps: the walk is redone
   whenever any pt page was rewritten (every mapping change), so both the
   validity check and the rewalk must stay off the allocator. *)
type pt_cache = {
  ptc_pfns : int array;  (* sorted, deduped *)
  ptc_gens : int array;  (* stamp of each page when walked *)
  ptc_roots : (Grt_gpu.Sku.pt_format * int64) list;
}

type t = {
  cfg : Mode.config;
  mutable regions : region list;
  mutable pt_roots : (Grt_gpu.Sku.pt_format * int64) list;
  baseline : (int, bytes) Hashtbl.t;
      (* last contents examined per pfn (int-keyed; pfns fit native ints) *)
  sent_store : Store.s;
      (* bodies this endpoint shipped (sender role): the peer decoded each
         of them, so a later identical page can go out as a hash reference *)
  recv_store : Store.s;
      (* bodies received from the peer (receiver role for the opposite
         direction): resolves inbound hash references *)
  mutable region_pfn_cache : int64 list option;
  mutable region_pfn_fast : int array option;  (* same set, sorted int array *)
  mutable pt_cache : pt_cache option;
  mutable meta_fast : meta_fast option;
  mutable meta_stale : bool;
      (* a root/region registration may have changed the merged set: rebuild
         it on next use. The stale [meta_fast] is kept — its last-examined
         stamps carry over to the rebuilt set, like the old per-pfn stamp
         table survived cache invalidations. *)
  mutable walk_scratch : int array;  (* reusable buffer for the pt walk *)
  shipped_data : (string, unit) Hashtbl.t; (* data regions the peer holds (Naive) *)
  shared : Store.s option;
      (* fleet-wide store shared by every session recorded under the same
         cache key: content another session already pushed to this client
         population travels as a hash reference (wire accounting only — the
         logged record keeps its full self-contained encoding) *)
}

let create ?shared cfg =
  {
    cfg;
    regions = [];
    pt_roots = [];
    baseline = Hashtbl.create 256;
    sent_store = Store.create ();
    recv_store = Store.create ();
    region_pfn_cache = None;
    region_pfn_fast = None;
    pt_cache = None;
    meta_fast = None;
    meta_stale = false;
    walk_scratch = Array.make 64 0;
    shipped_data = Hashtbl.create 64;
    shared;
  }

let tagged_wire cfg = cfg.Mode.memsync_dedup || cfg.Mode.memsync_adaptive

let register_region t r =
  t.regions <- r :: t.regions;
  t.region_pfn_cache <- None;
  t.region_pfn_fast <- None;
  t.meta_stale <- true

let regions t = List.rev t.regions

let region_containing t ~va =
  List.find_opt
    (fun r ->
      Int64.compare va r.va >= 0
      && Int64.compare va (Int64.add r.va (Int64.of_int (max r.model_bytes r.actual_bytes))) < 0)
    t.regions

let register_pt_root t ~fmt ~root_pa =
  if not (List.exists (fun (_, r) -> Int64.equal r root_pa) t.pt_roots) then begin
    t.pt_roots <- (fmt, root_pa) :: t.pt_roots;
    t.pt_cache <- None;
    t.meta_stale <- true
  end

let region_pfns r =
  (* Materialized pages of a region: its allocation is PA-contiguous. *)
  let first = Mem.page_of_addr r.pa in
  let n_pages = (r.actual_bytes + Mem.page_size - 1) / Mem.page_size in
  List.init (max 1 n_pages) (fun i -> Int64.add first (Int64.of_int i))

(* Meta-region pfns, memoized: the set only changes when a region is
   registered, which drops the cache. *)
let meta_region_pfns t =
  match t.region_pfn_cache with
  | Some pfns -> pfns
  | None ->
    let pfns =
      List.filter (fun r -> Session.usage_is_metastate r.usage) t.regions
      |> List.concat_map region_pfns
      |> List.sort_uniq Int64.compare
    in
    t.region_pfn_cache <- Some pfns;
    pfns

(* Sorted int-array view of the metastate region pfns, derived lazily from
   the list cache (both drop when a region is registered). *)
let meta_region_fast t =
  match t.region_pfn_fast with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.map Int64.to_int (meta_region_pfns t)) in
    t.region_pfn_fast <- Some a;
    a

(* Walk every registered root into [walk_scratch]; returns the table pfns
   as a fresh sorted deduped int array (the only allocation). *)
let pt_walk t mem =
  let n = ref 0 in
  let push pfn =
    let buf = t.walk_scratch in
    let len = Array.length buf in
    if !n >= len then begin
      let bigger = Array.make (2 * len) 0 in
      Array.blit buf 0 bigger 0 !n;
      t.walk_scratch <- bigger
    end;
    t.walk_scratch.(!n) <- pfn;
    incr n
  in
  List.iter (fun (fmt, root) -> Mmu.iter_table_pfns (Mmu.of_root mem ~fmt ~root) push) t.pt_roots;
  let n = !n in
  if n = 0 then [||]
  else begin
    let a = Array.sub t.walk_scratch 0 n in
    (* Table pages are allocated sequentially, so the walk emits them
       near-sorted: insertion sort is O(n) on that input and dodges the
       per-comparison closure dispatch of [Array.sort]. *)
    for i = 1 to n - 1 do
      let v = Array.unsafe_get a i in
      let j = ref (i - 1) in
      while !j >= 0 && Array.unsafe_get a !j > v do
        Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
        decr j
      done;
      Array.unsafe_set a (!j + 1) v
    done;
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!m - 1) then begin
        a.(!m) <- a.(i);
        incr m
      end
    done;
    if !m = n then a else Array.sub a 0 !m
  end

(* Page-table pages, cached with flat per-page generation stamps. Growing a
   table writes the parent table's entry, which restamps the parent page — so
   any structural change invalidates the cache and forces a rewalk. Returns
   the pfns plus whether the page *set* changed: a rewalk that finds the
   same set (tables merely rewritten in place — every mapping change
   restamps pt pages) reports [false], so the merged meta set downstream is
   not rebuilt. *)
let pt_pages t mem =
  let stamps_valid c =
    let n = Array.length c.ptc_pfns in
    let rec go i =
      i >= n
      || Mem.page_gen_at mem (Array.unsafe_get c.ptc_pfns i) = Array.unsafe_get c.ptc_gens i
         && go (i + 1)
    in
    (c.ptc_roots == t.pt_roots || c.ptc_roots = t.pt_roots) && go 0
  in
  match t.pt_cache with
  | Some c when stamps_valid c -> (c.ptc_pfns, false)
  | cached ->
    let pfns = pt_walk t mem in
    let n = Array.length pfns in
    let gens = Array.make n 0 in
    for i = 0 to n - 1 do
      gens.(i) <- Mem.page_gen_at mem pfns.(i)
    done;
    let set_changed = match cached with Some c -> c.ptc_pfns <> pfns | None -> true in
    t.pt_cache <- Some { ptc_pfns = pfns; ptc_gens = gens; ptc_roots = t.pt_roots };
    (pfns, set_changed)

(* The merged meta set (pt pages ∪ metastate-region pages) with its flat
   scan state. Rebuilt — by two-pointer union of the sorted halves — only
   when one of them changed; the last-examined stamps carry over by pfn so
   a rebuild never re-ships pages the scan already saw. *)
let meta_fast t mem =
  let pt, set_changed = pt_pages t mem in
  let rebuild = set_changed || t.meta_stale in
  match t.meta_fast with
  | Some mf when not rebuild -> mf
  | cur ->
    t.meta_stale <- false;
    (
    let regions = meta_region_fast t in
    let np = Array.length pt and nr = Array.length regions in
    let out = Array.make (np + nr) 0 in
    let rec merge i j k =
      if i < np && j < nr then begin
        let a = pt.(i) and b = regions.(j) in
        if a < b then begin
          out.(k) <- a;
          merge (i + 1) j (k + 1)
        end
        else if b < a then begin
          out.(k) <- b;
          merge i (j + 1) (k + 1)
        end
        else begin
          out.(k) <- a;
          merge (i + 1) (j + 1) (k + 1)
        end
      end
      else if i < np then begin
        out.(k) <- pt.(i);
        merge (i + 1) j (k + 1)
      end
      else if j < nr then begin
        out.(k) <- regions.(j);
        merge i (j + 1) (k + 1)
      end
      else k
    in
    let m = merge 0 0 0 in
    let pfns = if m = Array.length out then out else Array.sub out 0 m in
    match cur with
    | Some mf when mf.mf_pfns = pfns -> mf (* same set after all: keep scan stamps *)
    | _ ->
      let last = Array.make m (-1) in
      (match cur with
      | Some old ->
        (* both sorted: carry last-examined stamps over by two-pointer walk *)
        let no = Array.length old.mf_pfns in
        let oi = ref 0 in
        for i = 0 to m - 1 do
          let p = pfns.(i) in
          while !oi < no && old.mf_pfns.(!oi) < p do
            incr oi
          done;
          if !oi < no && old.mf_pfns.(!oi) = p then last.(i) <- old.mf_last.(!oi)
        done
      | None -> ());
      let mf = { mf_pfns = pfns; mf_last = last; mf_pfns64 = None } in
      t.meta_fast <- Some mf;
      mf)

let meta_pfns t mem =
  let mf = meta_fast t mem in
  match mf.mf_pfns64 with
  | Some l -> l
  | None ->
    let l = Array.to_list (Array.map Int64.of_int mf.mf_pfns) in
    mf.mf_pfns64 <- Some l;
    l

type page_record = {
  pfn : int64;
  data : bytes;  (* full page contents *)
  enc : encoding;
  body : bytes;  (* wire form of the contents under [enc] *)
  wire : int;  (* bytes charged to the link for this record, header included *)
  cross : bool;
      (* a cross-session dedup hit: the shared store held this content, so
         only a hash reference is charged to the wire. [enc]/[body] keep the
         full encoding, which is what gets logged — recordings stay
         self-contained and byte-identical with or without sharing. *)
}

type sync_payload = {
  records : page_record list;
  tagged : bool;
  wire_bytes : int;
  raw_bytes : int;
  visited : int;
  total : int;
}

let pages p = List.map (fun r -> (r.pfn, r.data)) p.records
let wire_records p = List.map (fun r -> (r.pfn, r.enc, r.body)) p.records

let payload_of_pages pgs =
  {
    records =
      List.map
        (fun (pfn, data) -> { pfn; data; enc = Enc_raw; body = data; wire = 0; cross = false })
        pgs;
    tagged = false;
    wire_bytes = 0;
    raw_bytes = 0;
    visited = 0;
    total = 0;
  }

let per_page_header = 12 (* untagged wire: fixed pfn + length per page *)

let varint_size n =
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go (max n 0) 1

(* Tagged wire accounting mirrors the record's serialized form exactly:
   varint pfn + one encoding-tag byte + varint body length + body. *)
let tagged_record_wire ~pfn ~body =
  varint_size (Int64.to_int pfn) + 1 + varint_size (Bytes.length body) + Bytes.length body

(* The historical pipeline: delta against the baseline when enabled, then
   range coding when enabled. The body doubles as the wire-accounting form;
   it is never decoded (untagged payloads carry the full contents). *)
let encode_legacy t ~previous ~pfn ~current =
  let enc, body =
    match (t.cfg.Mode.delta_dumps, previous) with
    | true, Some prev ->
      let d = Grt_util.Delta.diff ~old_:prev ~fresh:current in
      if t.cfg.Mode.compress_dumps then (Enc_delta_rc, Grt_util.Range_coder.encode d)
      else (Enc_delta, d)
    | _ ->
      if t.cfg.Mode.compress_dumps then (Enc_raw_rc, Grt_util.Range_coder.encode current)
      else (Enc_raw, current)
  in
  { pfn; data = current; enc; body; wire = Bytes.length body + per_page_header; cross = false }

(* Tagged encoding: bodies are decoded on the receiving side. The encoding
   tag itself says whether a body is range-coded, so no in-band container
   byte is needed — the adaptive min-selection below is the expansion guard
   at this layer (the codec-level [encode_guarded] serves callers without a
   side channel). A hash reference ships only when the sender itself put
   that exact body on the wire before — which the receiver, by
   construction, has decoded and stored. *)
let hash_ref_wire ~pfn = varint_size (Int64.to_int pfn) + 1 + varint_size 8 + 8

let encode_tagged t ~previous ~pfn ~current =
  let mk enc body =
    { pfn; data = current; enc; body; wire = tagged_record_wire ~pfn ~body; cross = false }
  in
  let h = hash_page current in
  let hash_hit =
    t.cfg.Mode.memsync_dedup
    &&
    match Store.find t.sent_store h with
    | Some body -> Bytes.equal body current
    | None -> false
  in
  let r =
    if hash_hit then begin
      let body = Bytes.create 8 in
      Bytes.set_int64_le body 0 h;
      mk Enc_hash_ref body
    end
    else if t.cfg.Mode.memsync_adaptive then begin
      let candidates =
        (Enc_raw, current)
        :: (Enc_raw_rc, Grt_util.Range_coder.encode current)
        ::
        (match previous with
        | Some prev ->
          let d = Grt_util.Delta.diff ~old_:prev ~fresh:current in
          [ (Enc_delta, d); (Enc_delta_rc, Grt_util.Range_coder.encode d) ]
        | None -> [])
      in
      let enc, body =
        List.fold_left
          (fun (e0, b0) (e, b) ->
            if Bytes.length b < Bytes.length b0 then (e, b) else (e0, b0))
          (List.hd candidates) (List.tl candidates)
      in
      mk enc body
    end
    else begin
      (* dedup without adaptive selection: a store miss falls back to the
         historical delta/compression chain, byte-identical to the untagged
         wire format *)
      match (t.cfg.Mode.delta_dumps, previous) with
      | true, Some prev ->
        let d = Grt_util.Delta.diff ~old_:prev ~fresh:current in
        if t.cfg.Mode.compress_dumps then mk Enc_delta_rc (Grt_util.Range_coder.encode d)
        else mk Enc_delta d
      | _ ->
        if t.cfg.Mode.compress_dumps then mk Enc_raw_rc (Grt_util.Range_coder.encode current)
        else mk Enc_raw current
    end
  in
  (* Cross-session dedup: content an earlier same-key session shipped to
     this client population needs only a hash reference on the wire. The
     record keeps its full encoding ([enc]/[body] untouched) so the logged
     recording is identical with or without a shared store; only the wire
     charge and the [cross] flag change. *)
  let r =
    match t.shared with
    | Some sh when t.cfg.Mode.memsync_dedup && r.enc <> Enc_hash_ref -> (
      match Store.find sh h with
      | Some b when Bytes.equal b current -> { r with wire = hash_ref_wire ~pfn; cross = true }
      | _ -> r)
    | _ -> r
  in
  Store.learn t.sent_store current;
  (match t.shared with Some sh -> Store.learn sh current | None -> ());
  r

(* Stand-in contents of a never-materialized page: compared against (and
   copied from) but never written through. *)
let zero_page = Bytes.make Mem.page_size '\000'

let sync_meta t mem =
  let mf = meta_fast t mem in
  let pfns = mf.mf_pfns and last = mf.mf_last in
  let total = Array.length pfns in
  let tagged = tagged_wire t.cfg in
  let dirty_filter = t.cfg.Mode.memsync_dirty in
  let records = ref [] and wire = ref 0 and raw = ref 0 and visited = ref 0 in
  for i = 0 to total - 1 do
    let pfn = Array.unsafe_get pfns i in
    let gen = Mem.page_gen_at mem pfn in
    let seen = Array.unsafe_get last i in
    let unchanged = dirty_filter && seen >= 0 && gen <= seen in
    if not unchanged then begin
      incr visited;
      Array.unsafe_set last i gen;
      (* Compare in place against the baseline; copy only when the page
         actually changed (the copy is then shared by the shipped record
         and the new baseline entry — both are read-only downstream). *)
      let view = Mem.borrow_ro mem pfn in
      let view = if view == Bytes.empty then zero_page else view in
      let prev = try Hashtbl.find t.baseline pfn with Not_found -> Bytes.empty in
      let same = prev != Bytes.empty && Bytes.equal prev view in
      if not same then begin
        raw := !raw + Mem.page_size;
        let current = Bytes.copy view in
        let previous = if prev == Bytes.empty then None else Some prev in
        let pfn = Int64.of_int pfn in
        let r =
          if tagged then encode_tagged t ~previous ~pfn ~current
          else encode_legacy t ~previous ~pfn ~current
        in
        records := r :: !records;
        wire := !wire + r.wire;
        Hashtbl.replace t.baseline (Int64.to_int pfn) current
      end
    end
  done;
  { records = List.rev !records; tagged; wire_bytes = !wire; raw_bytes = !raw; visited = !visited; total }

let decode_records store mem records =
  List.map
    (fun (pfn, enc, body) ->
      let data =
        match enc with
        | Enc_raw -> body
        | Enc_raw_rc -> Grt_util.Range_coder.decode body
        | Enc_delta -> Grt_util.Delta.apply ~old_:(Mem.get_page mem pfn) ~delta:body
        | Enc_delta_rc ->
          Grt_util.Delta.apply ~old_:(Mem.get_page mem pfn)
            ~delta:(Grt_util.Range_coder.decode body)
        | Enc_hash_ref -> (
          if Bytes.length body <> 8 then failwith "Memsync: malformed hash reference";
          match Store.find store (Bytes.get_int64_le body 0) with
          | Some d -> d
          | None -> failwith "Memsync: hash reference to unknown page content")
      in
      Mem.set_page mem pfn data;
      Store.learn store data;
      (pfn, data))
    records

let apply_records t mem records = decode_records t.recv_store mem records

let apply t mem payload =
  if payload.tagged then ignore (apply_records t mem (wire_records payload))
  else List.iter (fun r -> Mem.set_page mem r.pfn r.data) payload.records

let note_peer_page t pfn contents =
  Hashtbl.replace t.baseline (Int64.to_int pfn) (Bytes.copy contents)

let note_shipped t pfn contents =
  Hashtbl.replace t.baseline (Int64.to_int pfn) (Bytes.copy contents);
  if tagged_wire t.cfg then begin
    Store.learn t.sent_store contents;
    match t.shared with Some sh -> Store.learn sh contents | None -> ()
  end

(* Walk the descriptor chain in local memory and apply [f] to every data
   region it references, tagged with its role. *)
let fold_chain_regions t mem ~chain_va f =
  let desc_pa_of_va va =
    match region_containing t ~va with
    | Some r -> Some (Int64.add r.pa (Int64.sub va r.va))
    | None -> None
  in
  let note role va =
    if not (Int64.equal va 0L) then
      match region_containing t ~va with
      | Some r when not (Session.usage_is_metastate r.usage) -> f role r
      | _ -> ()
  in
  let rec walk va guard =
    if guard > 0 && not (Int64.equal va 0L) then
      match desc_pa_of_va va with
      | None -> ()
      | Some pa -> (
        match Grt_gpu.Job_desc.read mem ~pa with
        | Error _ -> ()
        | Ok d ->
          note `In d.Grt_gpu.Job_desc.input_va;
          note `In d.Grt_gpu.Job_desc.input2_va;
          note `In d.Grt_gpu.Job_desc.bias_va;
          note `Out d.Grt_gpu.Job_desc.output_va;
          walk d.Grt_gpu.Job_desc.next_va (guard - 1))
  in
  walk chain_va 64

let naive_down_bytes t mem ~chain_va =
  let total = ref 0 in
  fold_chain_regions t mem ~chain_va (fun _role r ->
      if not (Hashtbl.mem t.shipped_data r.name) then begin
        Hashtbl.add t.shipped_data r.name ();
        total := !total + r.model_bytes
      end);
  !total

let naive_up_bytes t mem ~chain_va =
  let seen = Hashtbl.create 4 in
  let total = ref 0 in
  fold_chain_regions t mem ~chain_va (fun role r ->
      match role with
      | `Out ->
        if not (Hashtbl.mem seen r.name) then begin
          Hashtbl.add seen r.name ();
          total := !total + r.model_bytes
        end
      | `In -> ());
  !total
