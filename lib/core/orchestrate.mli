(** End-to-end GR-T sessions (§3.1's workflow).

    [record] runs the whole online-recording pipeline: attested channel
    establishment, GPU isolation on the client, the cloud GPU stack dry-
    running the workload against the client GPU through DriverShim/GPUShim,
    misprediction recovery if speculation goes wrong, recording signing and
    download. [replay_recording] then reproduces the computation inside the
    client TEE on fresh inputs without touching the network. *)

val cloud_signing_key : Grt_tee.Crypto.key

val cloud_measurement : Grt_tee.Attestation.measurement
(** Measurement of {!Cloudvm.default_image}, which [record] boots. *)

type record_outcome = {
  blob : bytes;  (** signed recording, as downloaded by the client *)
  recording : Recording.t;
  total_s : float;  (** end-to-end recording delay *)
  client_energy_j : float;
  blocking_rtts : int;
  sync_wire_bytes : int;  (** memory-sync traffic, both directions *)
  sync_raw_bytes : int;
  commits_total : int;
  commits_speculated : int;
  speculated_by_category : (Drivershim.category * int) list;
  spec_rejected_nondet : int;
  accesses_total : int;
  poll_instances : int;
  poll_offloaded : int;
  rollbacks : int;
  rollback_s : float;  (** time spent in misprediction recovery *)
  retransmits : int;  (** link-level retransmitted exchanges *)
  link_downs : int;  (** mid-session link losses recovered from *)
  counters : Grt_sim.Counters.t;
  segments : bytes list;
      (** per-layer recording segments when recorded with [`Per_layer]
          granularity (Figure 2); empty otherwise *)
  tracer : Grt_sim.Tracer.t option;
      (** the session's span tracer, when recorded with [observe] — export
          with {!Grt_sim.Tracer.to_chrome_json} / summarize in a report *)
  hists : Grt_sim.Hist.set option;  (** latency/size histograms, iff [observe] *)
}

(** One recording session as a steppable value: establish → boot → attempt
    loop → finalize/sign held as re-entrant per-session state instead of a
    call stack, so the {!Service} can multiplex many sessions over one
    {!Grt_sim.Sched}. Stage boundaries are yield points (free for a solo
    session), and [run] under a scheduler produces byte-identical blobs,
    counters and clock readings to a direct {!record} call. *)
module Pipeline : sig
  type t

  val create : Session_ctx.t -> t

  val step : t -> [ `More | `Done of record_outcome ]
  (** Advance one stage. [`Done] is idempotent. Exceptions out of a stage
      leave the pipeline at the failed stage (callers own the post-mortem —
      {!run} dumps the trace ring). *)

  val run : t -> record_outcome
  (** Step to completion, yielding the session clock between stages; dumps
      the diagnostic trace ring and re-raises if a stage fails. *)

  val ctx : t -> Session_ctx.t

  val stage_name : t -> string
  (** ["created"], ["established"], ["booted"], ["attempted"] or
      ["finished"] — for progress surfaces. *)
end

val serve_cached : Session_ctx.t -> blob:bytes -> unit
(** The cache-hit path: establish the attested channel, download the
    already-signed [blob] over the session's link, and verify it — no dry
    run. Raises [Failure] if verification fails. *)

val record :
  ?history:Drivershim.history ->
  ?inject_fault_after:int ->
  ?inject_outage_after:int ->
  ?config:Mode.config ->
  ?granularity:[ `Monolithic | `Per_layer ] ->
  ?window:int ->
  ?trace_capacity:int ->
  ?observe:bool ->
  profile:Grt_net.Profile.t ->
  mode:Mode.t ->
  sku:Grt_gpu.Sku.t ->
  net:Grt_mlfw.Network.t ->
  seed:int64 ->
  unit ->
  record_outcome
(** Runs one record session on a fresh virtual clock. [history] carries
    speculation history across workloads (§7.3). [inject_fault_after n]
    corrupts the response to the [n]-th speculated commit of the first
    attempt, forcing one rollback. [inject_outage_after k] makes the link's
    [k]-th exchange deterministically time out all retransmission attempts,
    forcing a [Link_down] recovery. [config] overrides the default knobs
    for [mode] (ablations). [window] (default 1 = stop-and-wait) sets the
    link's sliding-window size; pair with [config.max_inflight] to pipeline
    speculative commits over it. [trace_capacity] sizes the diagnostic event
    ring dumped on failure. [observe] (default false) turns on the span
    tracer and histograms, surfaced in the outcome; observation never moves
    the virtual clock, so observed and default runs produce identical
    recordings, counters and energy. Window size and fault draws may move
    the clock, energy and counters — never the signed recording bytes. *)

type replay_outcome = {
  r : Replayer.result;
  setup_s : float;  (** verification + data injection, before stimuli *)
}

val replay_segments :
  sku:Grt_gpu.Sku.t ->
  blobs:bytes list ->
  input:float array ->
  params:(string * float array) list ->
  seed:int64 ->
  unit ->
  replay_outcome
(** Composable replay of per-layer segments on a fresh client (Figure 2). *)

val replay_recording :
  sku:Grt_gpu.Sku.t ->
  blob:bytes ->
  input:float array ->
  params:(string * float array) list ->
  seed:int64 ->
  unit ->
  replay_outcome
(** Replay on a fresh client (own clock and energy meter), as an app inside
    the TEE would. Raises {!Replayer.Rejected} / {!Replayer.Divergence}. *)

val client_attestation_key : Grt_tee.Crypto.key
(** The client TEE's signing identity for replay-attestation tokens. *)

val compile_recording : ?tracer:Grt_sim.Tracer.t -> blob:bytes -> unit -> Replay_prog.t
(** Header-verify and lower a signed blob once (see {!Replay_prog}); chunk
    hashes are checked streamingly at execution. Raises {!Replayer.Rejected}
    on a bad blob. *)

val replay_gpushim :
  sku:Grt_gpu.Sku.t -> seed:int64 -> unit -> Gpushim.t * Grt_sim.Clock.t * Grt_sim.Energy.t
(** A fresh client session (own clock and energy meter) configured exactly
    as {!replay_recording} would build it — for batch replays that reuse
    one session across many {!Replayer.replay_compiled} calls. *)

val replay_compiled :
  sku:Grt_gpu.Sku.t ->
  prog:Replay_prog.t ->
  input:float array ->
  params:(string * float array) list ->
  seed:int64 ->
  unit ->
  replay_outcome
(** {!replay_recording}'s fast path: same fresh-client construction, but
    executing an already-compiled program. *)
