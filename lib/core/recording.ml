module Byte_buf = Grt_util.Byte_buf

type poll_cond = Until_set | Until_clear

type entry =
  | Reg_write of { reg : int; value : int64 }
  | Reg_read of { reg : int; value : int64; verify : bool }
  | Poll of { reg : int; mask : int64; cond : poll_cond; max_iters : int; spin_ns : int64 }
  | Wait_irq of { line : int }
  | Mem_load of { pages : (int64 * bytes) list }
  | Mem_load_enc of { records : (int64 * Memsync.encoding * bytes) list }

(* Entry log under construction (newest first), with O(1) length — the
   speculation machinery marks log positions on every commit, so length
   must not cost a traversal. Shared by the shim and its recovery
   replayer. *)
type log = { mutable items : entry list; mutable len : int }

let new_log () = { items = []; len = 0 }

let log_push l e =
  l.items <- e :: l.items;
  l.len <- l.len + 1

let irq_line_to_int = function
  | Grt_gpu.Device.Job_irq -> 0
  | Grt_gpu.Device.Gpu_irq -> 1
  | Grt_gpu.Device.Mmu_irq -> 2

let irq_line_of_int = function
  | 0 -> Some Grt_gpu.Device.Job_irq
  | 1 -> Some Grt_gpu.Device.Gpu_irq
  | 2 -> Some Grt_gpu.Device.Mmu_irq
  | _ -> None

type slot = {
  slot_name : string;
  kind : [ `Input | `Output | `Param ];
  va : int64;
  pa : int64;
  actual_bytes : int;
  model_bytes : int;
}

type t = {
  workload : string;
  gpu_id : int64;
  entries : entry array;
  slots : slot list;
}

let input_slot t = List.find_opt (fun s -> s.kind = `Input) t.slots
let output_slot t = List.find_opt (fun s -> s.kind = `Output) t.slots
let param_slots t = List.filter (fun s -> s.kind = `Param) t.slots

let magic = 0x47525452 (* "GRTR" *)
let version = 1
let version_chunked = 2

let default_chunk_entries = 64

let kind_to_int = function `Input -> 0 | `Output -> 1 | `Param -> 2

let kind_of_int = function 0 -> Some `Input | 1 -> Some `Output | 2 -> Some `Param | _ -> None

let add_entry buf = function
  | Reg_write { reg; value } ->
    Byte_buf.add_u8 buf 1;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf value
  | Reg_read { reg; value; verify } ->
    Byte_buf.add_u8 buf 2;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf value;
    Byte_buf.add_u8 buf (if verify then 1 else 0)
  | Poll { reg; mask; cond; max_iters; spin_ns } ->
    Byte_buf.add_u8 buf 3;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf mask;
    Byte_buf.add_u8 buf (match cond with Until_set -> 1 | Until_clear -> 0);
    Byte_buf.add_varint buf max_iters;
    Byte_buf.add_i64 buf spin_ns
  | Wait_irq { line } ->
    Byte_buf.add_u8 buf 4;
    Byte_buf.add_u8 buf line
  | Mem_load { pages } ->
    Byte_buf.add_u8 buf 5;
    Byte_buf.add_varint buf (List.length pages);
    List.iter
      (fun (pfn, data) ->
        Byte_buf.add_i64 buf pfn;
        Byte_buf.add_varint buf (Bytes.length data);
        Byte_buf.add_bytes buf data)
      pages
  | Mem_load_enc { records } ->
    Byte_buf.add_u8 buf 6;
    Byte_buf.add_varint buf (List.length records);
    List.iter
      (fun (pfn, enc, body) ->
        (* pfns are page frame numbers, well within varint range *)
        Byte_buf.add_varint buf (Int64.to_int pfn);
        Byte_buf.add_u8 buf (Memsync.encoding_to_int enc);
        Byte_buf.add_varint buf (Bytes.length body);
        Byte_buf.add_bytes buf body)
      records

let read_entry r =
  match Byte_buf.Reader.u8 r with
  | 1 ->
    let reg = Byte_buf.Reader.u32 r in
    let value = Byte_buf.Reader.i64 r in
    Reg_write { reg; value }
  | 2 ->
    let reg = Byte_buf.Reader.u32 r in
    let value = Byte_buf.Reader.i64 r in
    let verify = Byte_buf.Reader.u8 r = 1 in
    Reg_read { reg; value; verify }
  | 3 ->
    let reg = Byte_buf.Reader.u32 r in
    let mask = Byte_buf.Reader.i64 r in
    let cond = if Byte_buf.Reader.u8 r = 1 then Until_set else Until_clear in
    let max_iters = Byte_buf.Reader.varint r in
    let spin_ns = Byte_buf.Reader.i64 r in
    Poll { reg; mask; cond; max_iters; spin_ns }
  | 4 ->
    let line = Byte_buf.Reader.u8 r in
    (* Reject unmapped IRQ lines here, where the blob is being validated —
       not at replay time, where they would surface as a confusing
       [Irq_mismatch] divergence against a line that cannot exist. *)
    if irq_line_of_int line = None then
      failwith (Printf.sprintf "recording: invalid IRQ line %d" line);
    Wait_irq { line }
  | 5 ->
    let n = Byte_buf.Reader.varint r in
    let pages =
      List.init n (fun _ ->
          let pfn = Byte_buf.Reader.i64 r in
          let len = Byte_buf.Reader.varint r in
          (pfn, Byte_buf.Reader.bytes r len))
    in
    Mem_load { pages }
  | 6 ->
    let n = Byte_buf.Reader.varint r in
    let records =
      List.init n (fun _ ->
          let pfn = Int64.of_int (Byte_buf.Reader.varint r) in
          let enc =
            match Memsync.encoding_of_int (Byte_buf.Reader.u8 r) with
            | Some e -> e
            | None -> failwith "recording: bad page encoding tag"
          in
          let len = Byte_buf.Reader.varint r in
          (pfn, enc, Byte_buf.Reader.bytes r len))
    in
    Mem_load_enc { records }
  | tag -> failwith (Printf.sprintf "recording: unknown entry tag %d" tag)

let add_slot buf s =
  Byte_buf.add_string buf s.slot_name;
  Byte_buf.add_u8 buf (kind_to_int s.kind);
  Byte_buf.add_i64 buf s.va;
  Byte_buf.add_i64 buf s.pa;
  Byte_buf.add_varint buf s.actual_bytes;
  Byte_buf.add_varint buf s.model_bytes

let read_slot r =
  let slot_name = Byte_buf.Reader.string r in
  let kind =
    match kind_of_int (Byte_buf.Reader.u8 r) with
    | Some k -> k
    | None -> failwith "recording: bad slot kind"
  in
  let va = Byte_buf.Reader.i64 r in
  let pa = Byte_buf.Reader.i64 r in
  let actual_bytes = Byte_buf.Reader.varint r in
  let model_bytes = Byte_buf.Reader.varint r in
  { slot_name; kind; va; pa; actual_bytes; model_bytes }

let serialize t =
  let buf = Byte_buf.create ~capacity:4096 () in
  Byte_buf.add_u32 buf magic;
  Byte_buf.add_u16 buf version;
  Byte_buf.add_string buf t.workload;
  Byte_buf.add_i64 buf t.gpu_id;
  Byte_buf.add_varint buf (List.length t.slots);
  List.iter (add_slot buf) t.slots;
  Byte_buf.add_varint buf (Array.length t.entries);
  Array.iter (add_entry buf) t.entries;
  Byte_buf.contents buf

let deserialize data =
  try
    let r = Byte_buf.Reader.of_bytes data in
    if Byte_buf.Reader.u32 r <> magic then Error "recording: bad magic"
    else if Byte_buf.Reader.u16 r <> version then Error "recording: unsupported version"
    else begin
      let workload = Byte_buf.Reader.string r in
      let gpu_id = Byte_buf.Reader.i64 r in
      let n_slots = Byte_buf.Reader.varint r in
      let slots = List.init n_slots (fun _ -> read_slot r) in
      let n_entries = Byte_buf.Reader.varint r in
      let entries = Array.init n_entries (fun _ -> read_entry r) in
      Ok { workload; gpu_id; entries; slots }
    end
  with Failure msg -> Error msg

(* ---- chunked format (version 2) ----

   The v2 blob splits the entry log into chunks so verification can stream:

     header  := magic ∥ u16 2 ∥ workload ∥ gpu_id ∥ slots
                ∥ varint total_entries ∥ varint n_chunks
                ∥ n_chunks × (varint entry_count ∥ varint byte_len ∥ i64 hash)
                ∥ i64 merkle_root
     blob    := header ∥ i64 mac(header) ∥ chunk bodies

   Only the header is MACed; each chunk body is covered by its signed FNV
   hash, and the Merkle root over the chunk hashes names the whole entry
   log for attestation. A replayer may therefore verify the header once and
   check each chunk hash just before executing that chunk (streaming), while
   [verify_and_parse] keeps the eager everything-up-front contract. *)

type chunk = {
  chunk_first : int;
  chunk_count : int;
  chunk_hash : int64;
  chunk_raw : bytes;
}

type verified = {
  vrec : t;
  vversion : int;
  vchunks : chunk array;
  vroot : int64;
}

let entries_bytes entries =
  let buf = Byte_buf.create ~capacity:4096 () in
  Array.iter (add_entry buf) entries;
  Byte_buf.contents buf

(* Merkle fold over the leaf hashes: pairwise [Hashing.combine], odd leaf
   promoted; a single leaf is its own root; zero leaves hash the empty
   string (an empty entry log still has a well-defined identity). *)
let merkle_root hashes =
  let rec up = function
    | [] -> Grt_util.Hashing.fnv1a_bytes Bytes.empty
    | [ h ] -> h
    | hs ->
      let rec pair = function
        | a :: b :: rest -> Grt_util.Hashing.combine a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      up (pair hs)
  in
  up hashes

let sign_v1 ~key t =
  let body = serialize t in
  let buf = Byte_buf.create ~capacity:(Bytes.length body + 8) () in
  Byte_buf.add_bytes buf body;
  Byte_buf.add_i64 buf (Grt_tee.Crypto.mac ~key body);
  Byte_buf.contents buf

(* Serialize the whole entry log once, recording where each chunk of
   [chunk_entries] entries ends: [bounds.(i)] is the byte offset at which
   chunk [i] starts, [bounds.(n_chunks)] the total length. Chunk bodies and
   their hashes are then slices of this one buffer — no per-chunk copies. *)
let chunk_bounds ~chunk_entries entries =
  let n = Array.length entries in
  let n_chunks = (n + chunk_entries - 1) / chunk_entries in
  let buf = Byte_buf.create ~capacity:4096 () in
  let bounds = Array.make (n_chunks + 1) 0 in
  Array.iteri
    (fun i e ->
      add_entry buf e;
      if (i + 1) mod chunk_entries = 0 then bounds.((i + 1) / chunk_entries) <- Byte_buf.length buf)
    entries;
  bounds.(n_chunks) <- Byte_buf.length buf;
  (Byte_buf.contents buf, bounds)

(* [sign] and [verify_and_parse] are pure functions of their inputs, and the
   recording service re-signs (and every client re-verifies) byte-identical
   logs whenever the same workload is recorded again — the observation
   behind the service's content-addressed recording cache. Small
   content-keyed memos therefore short-circuit the work on repeats; a hit
   is trusted only after comparing the stored input in full, so collisions
   cannot leak a wrong blob.

   [sign]'s memo is keyed on the *entry stream* rather than the serialized
   body, so a hit skips the chunk serialization pass as well as the FNV
   walk: scalar fields mix into the key directly, page payloads via the
   sparse word-sampled hash, and the hit guard is a structural comparison
   with [Bytes.equal] on every payload. The stored snapshot deep-copies
   payload bytes, so callers that keep mutating their page buffers cannot
   poison the memo. *)
let memo_cap = 32

let entry_mix h v = (h lxor v) * 0x100000001B3

let entry_key h = function
  | Reg_write { reg; value } -> entry_mix (entry_mix h (1 + reg)) (Int64.to_int value)
  | Reg_read { reg; value; verify } ->
    entry_mix (entry_mix (entry_mix h 2) (reg lxor Int64.to_int value)) (if verify then 3 else 4)
  | Poll { reg; mask; cond; max_iters; spin_ns } ->
    let h = entry_mix (entry_mix h 5) (reg lxor Int64.to_int mask) in
    entry_mix
      (entry_mix h (match cond with Until_set -> 6 | Until_clear -> 7))
      (max_iters lxor Int64.to_int spin_ns)
  | Wait_irq { line } -> entry_mix h (8 + line)
  | Mem_load { pages } ->
    List.fold_left
      (fun h (pfn, b) -> Grt_util.Hashing.quick_sparse ~seed:(entry_mix h (Int64.to_int pfn)) b)
      (entry_mix h 9) pages
  | Mem_load_enc { records } ->
    List.fold_left
      (fun h (pfn, enc, b) ->
        let h = entry_mix (entry_mix h (Int64.to_int pfn)) (Memsync.encoding_to_int enc) in
        Grt_util.Hashing.quick_sparse ~seed:h b)
      (entry_mix h 10) records

let entry_eq a b =
  match (a, b) with
  | Reg_write x, Reg_write y -> x.reg = y.reg && Int64.equal x.value y.value
  | Reg_read x, Reg_read y ->
    x.reg = y.reg && Int64.equal x.value y.value && x.verify = y.verify
  | Poll x, Poll y ->
    x.reg = y.reg && Int64.equal x.mask y.mask && x.cond = y.cond && x.max_iters = y.max_iters
    && Int64.equal x.spin_ns y.spin_ns
  | Wait_irq x, Wait_irq y -> x.line = y.line
  | Mem_load x, Mem_load y ->
    List.equal
      (fun (p, b) (q, c) -> Int64.equal p q && Bytes.equal b c)
      x.pages y.pages
  | Mem_load_enc x, Mem_load_enc y ->
    List.equal
      (fun (p, e, b) (q, f, c) -> Int64.equal p q && e = f && Bytes.equal b c)
      x.records y.records
  | _ -> false

let entries_eq a b = Array.length a = Array.length b && Array.for_all2 entry_eq a b

let entry_copy = function
  | Mem_load { pages } -> Mem_load { pages = List.map (fun (p, b) -> (p, Bytes.copy b)) pages }
  | Mem_load_enc { records } ->
    Mem_load_enc { records = List.map (fun (p, e, b) -> (p, e, Bytes.copy b)) records }
  | e -> e

(* Domain-local, like every content-keyed memo: parallel fleet shards sign
   against private tables. *)
let sign_memo_key : (int, bytes * entry array * bytes) Hashtbl.t Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> Hashtbl.create 16)

let sign_stats = Grt_util.Memo_stats.register "recording.sign"

let sign ?(chunk_entries = default_chunk_entries) ~key t =
  if chunk_entries <= 0 then invalid_arg "Recording.sign: chunk_entries must be positive";
  let sign_memo = Grt_util.Par.Dls.get sign_memo_key in
  let meta_buf = Byte_buf.create ~capacity:256 () in
  Byte_buf.add_varint meta_buf chunk_entries;
  Byte_buf.add_string meta_buf key;
  Byte_buf.add_string meta_buf t.workload;
  Byte_buf.add_i64 meta_buf t.gpu_id;
  Byte_buf.add_varint meta_buf (List.length t.slots);
  List.iter (add_slot meta_buf) t.slots;
  let meta = Byte_buf.contents meta_buf in
  let memo_key = Array.fold_left entry_key (Grt_util.Hashing.quick meta) t.entries in
  match Hashtbl.find_opt sign_memo memo_key with
  | Some (m, es, blob) when Bytes.equal m meta && entries_eq es t.entries ->
    Grt_util.Memo_stats.hit sign_stats;
    Bytes.copy blob
  | prior ->
    Grt_util.Memo_stats.miss sign_stats;
    (match prior with
    | Some _ -> Grt_util.Memo_stats.mismatch sign_stats
    | None -> ());
    let body, bounds = chunk_bounds ~chunk_entries t.entries in
    let n = Array.length t.entries in
    let n_chunks = Array.length bounds - 1 in
    let hashes =
      Array.init n_chunks (fun i ->
          Grt_util.Hashing.fnv1a_sub body ~pos:bounds.(i) ~len:(bounds.(i + 1) - bounds.(i)))
    in
    let header = Byte_buf.create ~capacity:4096 () in
    Byte_buf.add_u32 header magic;
    Byte_buf.add_u16 header version_chunked;
    Byte_buf.add_string header t.workload;
    Byte_buf.add_i64 header t.gpu_id;
    Byte_buf.add_varint header (List.length t.slots);
    List.iter (add_slot header) t.slots;
    Byte_buf.add_varint header n;
    Byte_buf.add_varint header n_chunks;
    Array.iteri
      (fun i h ->
        Byte_buf.add_varint header (min chunk_entries (n - (i * chunk_entries)));
        Byte_buf.add_varint header (bounds.(i + 1) - bounds.(i));
        Byte_buf.add_i64 header h)
      hashes;
    Byte_buf.add_i64 header (merkle_root (Array.to_list hashes));
    let hdr = Byte_buf.contents header in
    let blob = Byte_buf.create ~capacity:(Bytes.length hdr + 8 + Bytes.length body) () in
    Byte_buf.add_bytes blob hdr;
    Byte_buf.add_i64 blob (Grt_tee.Crypto.mac ~key hdr);
    Byte_buf.add_bytes blob body;
    let blob = Byte_buf.contents blob in
    (* Resident footprint: meta + blob copies (the entry-spine snapshot is
       shared page bytes, not counted). *)
    let footprint = Bytes.length meta + Bytes.length blob in
    if Hashtbl.length sign_memo >= memo_cap then begin
      Grt_util.Memo_stats.evicted sign_stats ~entries:(Hashtbl.length sign_memo);
      Hashtbl.reset sign_memo
    end;
    (match (Hashtbl.mem sign_memo memo_key, prior) with
    | false, _ -> Grt_util.Memo_stats.added sign_stats ~bytes:footprint
    | true, Some (m, _, b) ->
      Grt_util.Memo_stats.replaced sign_stats
        ~old_bytes:(Bytes.length m + Bytes.length b)
        ~bytes:footprint
    | true, None -> ());
    Hashtbl.replace sign_memo memo_key (meta, Array.map entry_copy t.entries, Bytes.copy blob);
    blob

let parse_chunk_entries chunk =
  let r = Byte_buf.Reader.of_bytes chunk.chunk_raw in
  let entries = Array.init chunk.chunk_count (fun _ -> read_entry r) in
  if Byte_buf.Reader.remaining r <> 0 then failwith "recording: trailing bytes in chunk";
  entries

(* Parse + verify the MACed part of either blob format. For v1 that is the
   whole blob (entry bodies included); for v2 only the header — chunk
   bodies are parsed, and their lengths checked, but their hashes are the
   caller's to verify (eagerly in [verify_and_parse], streamingly in the
   replay compiler). *)
let parse_signed ~key blob =
  try
    let n = Bytes.length blob in
    if n < 14 then Error "recording: truncated"
    else begin
      let r = Byte_buf.Reader.of_bytes blob in
      if Byte_buf.Reader.u32 r <> magic then Error "recording: bad magic"
      else begin
        match Byte_buf.Reader.u16 r with
        | 1 ->
          if n < 8 then Error "recording: truncated"
          else begin
            let body = Bytes.sub blob 0 (n - 8) in
            let tag = Bytes.get_int64_le blob (n - 8) in
            if not (Grt_tee.Crypto.verify ~key body tag) then
              Error "recording: signature verification failed"
            else
              match deserialize body with
              | Error e -> Error e
              | Ok rec_t ->
                Ok
                  {
                    vrec = rec_t;
                    vversion = 1;
                    vchunks = [||];
                    vroot = Grt_util.Hashing.fnv1a_bytes (entries_bytes rec_t.entries);
                  }
          end
        | 2 ->
          let workload = Byte_buf.Reader.string r in
          let gpu_id = Byte_buf.Reader.i64 r in
          let n_slots = Byte_buf.Reader.varint r in
          let slots = List.init n_slots (fun _ -> read_slot r) in
          let total_entries = Byte_buf.Reader.varint r in
          let n_chunks = Byte_buf.Reader.varint r in
          let metas =
            Array.init n_chunks (fun _ ->
                let count = Byte_buf.Reader.varint r in
                let len = Byte_buf.Reader.varint r in
                let hash = Byte_buf.Reader.i64 r in
                (count, len, hash))
          in
          let root = Byte_buf.Reader.i64 r in
          let header_len = Byte_buf.Reader.pos r in
          let tag = Byte_buf.Reader.i64 r in
          if not (Grt_tee.Crypto.verify ~key (Bytes.sub blob 0 header_len) tag) then
            Error "recording: signature verification failed"
          else if
            not (Int64.equal root (merkle_root (Array.to_list (Array.map (fun (_, _, h) -> h) metas))))
          then Error "recording: Merkle root does not cover the chunk hashes"
          else begin
            let first = ref 0 in
            let chunks =
              Array.map
                (fun (count, len, hash) ->
                  let raw = Byte_buf.Reader.bytes r len in
                  let c = { chunk_first = !first; chunk_count = count; chunk_hash = hash; chunk_raw = raw } in
                  first := !first + count;
                  c)
                metas
            in
            if Byte_buf.Reader.remaining r <> 0 then Error "recording: trailing bytes after chunks"
            else if !first <> total_entries then Error "recording: chunk entry counts disagree with header"
            else
              let entries = Array.concat (Array.to_list (Array.map parse_chunk_entries chunks)) in
              Ok { vrec = { workload; gpu_id; entries; slots }; vversion = 2; vchunks = chunks; vroot = root }
          end
        | v -> Error (Printf.sprintf "recording: unsupported version %d" v)
      end
    end
  with Failure msg -> Error msg

let verify_chunk c =
  Int64.equal (Grt_util.Hashing.fnv1a_bytes c.chunk_raw) c.chunk_hash

let verify_memo_key : (int, bytes * string * (t, string) result) Hashtbl.t Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> Hashtbl.create 16)

let verify_stats = Grt_util.Memo_stats.register "recording.verify"

let verify_and_parse_raw ~key blob =
  match parse_signed ~key blob with
  | Error e -> Error e
  | Ok v ->
    let bad = ref None in
    Array.iter
      (fun c -> if !bad = None && not (verify_chunk c) then bad := Some c.chunk_first)
      v.vchunks;
    (match !bad with
    | Some first -> Error (Printf.sprintf "recording: chunk at entry %d failed verification" first)
    | None -> Ok v.vrec)

(* Memoized verification (see the note above [sign]): the verdict on a
   byte-identical blob under the same key is deterministic, so a repeat
   verify returns the cached parse. The entry array's spine is copied on a
   hit — callers are free to patch entries of a parsed recording (the
   tamper-detection tests do) without poisoning the cache. *)
let verify_and_parse ~key blob =
  let verify_memo = Grt_util.Par.Dls.get verify_memo_key in
  let memo_key = Grt_util.Hashing.quick_sparse ~seed:(Hashtbl.hash key) blob in
  match Hashtbl.find_opt verify_memo memo_key with
  | Some (b, k, res) when String.equal k key && Bytes.equal b blob -> (
    Grt_util.Memo_stats.hit verify_stats;
    match res with
    | Ok r -> Ok { r with entries = Array.copy r.entries }
    | Error _ as e -> e)
  | prior ->
    Grt_util.Memo_stats.miss verify_stats;
    (match prior with
    | Some _ -> Grt_util.Memo_stats.mismatch verify_stats
    | None -> ());
    let res = verify_and_parse_raw ~key blob in
    let footprint = Bytes.length blob + String.length key in
    if Hashtbl.length verify_memo >= memo_cap then begin
      Grt_util.Memo_stats.evicted verify_stats ~entries:(Hashtbl.length verify_memo);
      Hashtbl.reset verify_memo
    end;
    (match (Hashtbl.mem verify_memo memo_key, prior) with
    | false, _ -> Grt_util.Memo_stats.added verify_stats ~bytes:footprint
    | true, Some (b, k, _) ->
      Grt_util.Memo_stats.replaced verify_stats
        ~old_bytes:(Bytes.length b + String.length k)
        ~bytes:footprint
    | true, None -> ());
    Hashtbl.replace verify_memo memo_key (Bytes.copy blob, key, res);
    (match res with
    | Ok r -> Ok { r with entries = Array.copy r.entries }
    | Error _ as e -> e)

let size_bytes t = Bytes.length (serialize t)

let count_entries t what =
  Array.fold_left
    (fun acc e ->
      match (what, e) with
      | `Writes, Reg_write _ -> acc + 1
      | `Reads, Reg_read _ -> acc + 1
      | `Polls, Poll _ -> acc + 1
      | `Irqs, Wait_irq _ -> acc + 1
      | `Mem_pages, Mem_load { pages } -> acc + List.length pages
      | `Mem_pages, Mem_load_enc { records } -> acc + List.length records
      | _ -> acc)
    0 t.entries
