module Byte_buf = Grt_util.Byte_buf

type poll_cond = Until_set | Until_clear

type entry =
  | Reg_write of { reg : int; value : int64 }
  | Reg_read of { reg : int; value : int64; verify : bool }
  | Poll of { reg : int; mask : int64; cond : poll_cond; max_iters : int; spin_ns : int64 }
  | Wait_irq of { line : int }
  | Mem_load of { pages : (int64 * bytes) list }
  | Mem_load_enc of { records : (int64 * Memsync.encoding * bytes) list }

let irq_line_to_int = function
  | Grt_gpu.Device.Job_irq -> 0
  | Grt_gpu.Device.Gpu_irq -> 1
  | Grt_gpu.Device.Mmu_irq -> 2

let irq_line_of_int = function
  | 0 -> Some Grt_gpu.Device.Job_irq
  | 1 -> Some Grt_gpu.Device.Gpu_irq
  | 2 -> Some Grt_gpu.Device.Mmu_irq
  | _ -> None

type slot = {
  slot_name : string;
  kind : [ `Input | `Output | `Param ];
  va : int64;
  pa : int64;
  actual_bytes : int;
  model_bytes : int;
}

type t = {
  workload : string;
  gpu_id : int64;
  entries : entry array;
  slots : slot list;
}

let input_slot t = List.find_opt (fun s -> s.kind = `Input) t.slots
let output_slot t = List.find_opt (fun s -> s.kind = `Output) t.slots
let param_slots t = List.filter (fun s -> s.kind = `Param) t.slots

let magic = 0x47525452 (* "GRTR" *)
let version = 1

let kind_to_int = function `Input -> 0 | `Output -> 1 | `Param -> 2

let kind_of_int = function 0 -> Some `Input | 1 -> Some `Output | 2 -> Some `Param | _ -> None

let add_entry buf = function
  | Reg_write { reg; value } ->
    Byte_buf.add_u8 buf 1;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf value
  | Reg_read { reg; value; verify } ->
    Byte_buf.add_u8 buf 2;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf value;
    Byte_buf.add_u8 buf (if verify then 1 else 0)
  | Poll { reg; mask; cond; max_iters; spin_ns } ->
    Byte_buf.add_u8 buf 3;
    Byte_buf.add_u32 buf reg;
    Byte_buf.add_i64 buf mask;
    Byte_buf.add_u8 buf (match cond with Until_set -> 1 | Until_clear -> 0);
    Byte_buf.add_varint buf max_iters;
    Byte_buf.add_i64 buf spin_ns
  | Wait_irq { line } ->
    Byte_buf.add_u8 buf 4;
    Byte_buf.add_u8 buf line
  | Mem_load { pages } ->
    Byte_buf.add_u8 buf 5;
    Byte_buf.add_varint buf (List.length pages);
    List.iter
      (fun (pfn, data) ->
        Byte_buf.add_i64 buf pfn;
        Byte_buf.add_varint buf (Bytes.length data);
        Byte_buf.add_bytes buf data)
      pages
  | Mem_load_enc { records } ->
    Byte_buf.add_u8 buf 6;
    Byte_buf.add_varint buf (List.length records);
    List.iter
      (fun (pfn, enc, body) ->
        (* pfns are page frame numbers, well within varint range *)
        Byte_buf.add_varint buf (Int64.to_int pfn);
        Byte_buf.add_u8 buf (Memsync.encoding_to_int enc);
        Byte_buf.add_varint buf (Bytes.length body);
        Byte_buf.add_bytes buf body)
      records

let read_entry r =
  match Byte_buf.Reader.u8 r with
  | 1 ->
    let reg = Byte_buf.Reader.u32 r in
    let value = Byte_buf.Reader.i64 r in
    Reg_write { reg; value }
  | 2 ->
    let reg = Byte_buf.Reader.u32 r in
    let value = Byte_buf.Reader.i64 r in
    let verify = Byte_buf.Reader.u8 r = 1 in
    Reg_read { reg; value; verify }
  | 3 ->
    let reg = Byte_buf.Reader.u32 r in
    let mask = Byte_buf.Reader.i64 r in
    let cond = if Byte_buf.Reader.u8 r = 1 then Until_set else Until_clear in
    let max_iters = Byte_buf.Reader.varint r in
    let spin_ns = Byte_buf.Reader.i64 r in
    Poll { reg; mask; cond; max_iters; spin_ns }
  | 4 -> Wait_irq { line = Byte_buf.Reader.u8 r }
  | 5 ->
    let n = Byte_buf.Reader.varint r in
    let pages =
      List.init n (fun _ ->
          let pfn = Byte_buf.Reader.i64 r in
          let len = Byte_buf.Reader.varint r in
          (pfn, Byte_buf.Reader.bytes r len))
    in
    Mem_load { pages }
  | 6 ->
    let n = Byte_buf.Reader.varint r in
    let records =
      List.init n (fun _ ->
          let pfn = Int64.of_int (Byte_buf.Reader.varint r) in
          let enc =
            match Memsync.encoding_of_int (Byte_buf.Reader.u8 r) with
            | Some e -> e
            | None -> failwith "recording: bad page encoding tag"
          in
          let len = Byte_buf.Reader.varint r in
          (pfn, enc, Byte_buf.Reader.bytes r len))
    in
    Mem_load_enc { records }
  | tag -> failwith (Printf.sprintf "recording: unknown entry tag %d" tag)

let serialize t =
  let buf = Byte_buf.create ~capacity:4096 () in
  Byte_buf.add_u32 buf magic;
  Byte_buf.add_u16 buf version;
  Byte_buf.add_string buf t.workload;
  Byte_buf.add_i64 buf t.gpu_id;
  Byte_buf.add_varint buf (List.length t.slots);
  List.iter
    (fun s ->
      Byte_buf.add_string buf s.slot_name;
      Byte_buf.add_u8 buf (kind_to_int s.kind);
      Byte_buf.add_i64 buf s.va;
      Byte_buf.add_i64 buf s.pa;
      Byte_buf.add_varint buf s.actual_bytes;
      Byte_buf.add_varint buf s.model_bytes)
    t.slots;
  Byte_buf.add_varint buf (Array.length t.entries);
  Array.iter (add_entry buf) t.entries;
  Byte_buf.contents buf

let deserialize data =
  try
    let r = Byte_buf.Reader.of_bytes data in
    if Byte_buf.Reader.u32 r <> magic then Error "recording: bad magic"
    else if Byte_buf.Reader.u16 r <> version then Error "recording: unsupported version"
    else begin
      let workload = Byte_buf.Reader.string r in
      let gpu_id = Byte_buf.Reader.i64 r in
      let n_slots = Byte_buf.Reader.varint r in
      let slots =
        List.init n_slots (fun _ ->
            let slot_name = Byte_buf.Reader.string r in
            let kind =
              match kind_of_int (Byte_buf.Reader.u8 r) with
              | Some k -> k
              | None -> failwith "recording: bad slot kind"
            in
            let va = Byte_buf.Reader.i64 r in
            let pa = Byte_buf.Reader.i64 r in
            let actual_bytes = Byte_buf.Reader.varint r in
            let model_bytes = Byte_buf.Reader.varint r in
            { slot_name; kind; va; pa; actual_bytes; model_bytes })
      in
      let n_entries = Byte_buf.Reader.varint r in
      let entries = Array.init n_entries (fun _ -> read_entry r) in
      Ok { workload; gpu_id; entries; slots }
    end
  with Failure msg -> Error msg

let sign ~key t =
  let body = serialize t in
  let buf = Byte_buf.create ~capacity:(Bytes.length body + 8) () in
  Byte_buf.add_bytes buf body;
  Byte_buf.add_i64 buf (Grt_tee.Crypto.mac ~key body);
  Byte_buf.contents buf

let verify_and_parse ~key blob =
  let n = Bytes.length blob in
  if n < 8 then Error "recording: truncated"
  else begin
    let body = Bytes.sub blob 0 (n - 8) in
    let tag = Bytes.get_int64_le blob (n - 8) in
    if not (Grt_tee.Crypto.verify ~key body tag) then
      Error "recording: signature verification failed"
    else deserialize body
  end

let size_bytes t = Bytes.length (serialize t)

let count_entries t what =
  Array.fold_left
    (fun acc e ->
      match (what, e) with
      | `Writes, Reg_write _ -> acc + 1
      | `Reads, Reg_read _ -> acc + 1
      | `Polls, Poll _ -> acc + 1
      | `Irqs, Wait_irq _ -> acc + 1
      | `Mem_pages, Mem_load { pages } -> acc + List.length pages
      | `Mem_pages, Mem_load_enc { records } -> acc + List.length records
      | _ -> acc)
    0 t.entries
