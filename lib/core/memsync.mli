(** Selective memory synchronization (§5).

    The cloud (GPU stack) and client (GPU) each hold a local memory; at job
    boundaries the shims exchange just enough of it to preserve the semantics
    of CPU/GPU interaction. A [t] tracks one direction's sender state — the
    baseline of pages the peer is known to hold, plus a content-addressed
    store of every body it ever shipped — and the same endpoint's receiver
    state for the opposite direction (the store that resolves inbound hash
    references).

    Metastate = page-table pages (walked from the registered roots) plus the
    materialized pages of regions mapped as [Code] or [Cmd]. Program data
    (inputs, weights, activations) is never shipped in meta-only mode; in
    Naive mode its *model-scale* size is charged per referenced buffer.

    The fast path: {!Grt_gpu.Mem.page_gen} stamps let [sync_meta] skip pages
    untouched since their last examination ([Mode.memsync_dirty]); the page-
    table walk and region page lists are cached and invalidated by the same
    stamps. With [Mode.memsync_dedup] / [Mode.memsync_adaptive] the wire
    switches to tagged page records carrying the cheapest encoding per page,
    including an 8-byte reference to content the peer provably holds. *)

type region = {
  name : string;
  usage : Grt_runtime.Session.usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

val region_of_session : Grt_runtime.Session.region -> region

(** How one shipped page is represented on the wire. [Enc_hash_ref] bodies
    are an 8-byte content hash; the other encodings are self-describing. *)
type encoding = Enc_raw | Enc_raw_rc | Enc_delta | Enc_delta_rc | Enc_hash_ref

val encoding_to_int : encoding -> int
val encoding_of_int : int -> encoding option
val encoding_name : encoding -> string

val hash_page : bytes -> int64
(** Content hash used by the page stores (FNV-1a 64). *)

(** Receiver-side content store, also usable standalone (the replayer keeps
    one to resolve hash references while re-applying a recording). *)
module Store : sig
  type s

  val create : unit -> s
  val learn : s -> bytes -> unit
  val find : s -> int64 -> bytes option
end

type t

val create : ?shared:Store.s -> Mode.config -> t
(** [?shared] is a fleet-wide content store shared by all sessions recorded
    under the same cache key (see {!Service}): a page body some earlier
    same-key session already shipped is charged to the wire as an 8-byte
    hash reference ([cross = true] on its record) instead of its full
    encoding. Sharing affects wire accounting and metrics only — the logged
    record keeps the full self-contained encoding, so recordings are
    byte-identical with or without a shared store. *)

val register_region : t -> region -> unit
val regions : t -> region list
val region_containing : t -> va:int64 -> region option

val register_pt_root : t -> fmt:Grt_gpu.Sku.pt_format -> root_pa:int64 -> unit
(** Called when the shim observes an AS_TRANSTAB programming. *)

val meta_pfns : t -> Grt_gpu.Mem.t -> int64 list
(** Current metastate page set, sorted. Cached: the page-table walk reruns
    only when a walked table page's generation stamp moved or a root/region
    was registered. *)

type page_record = {
  pfn : int64;
  data : bytes;  (** full page contents *)
  enc : encoding;
  body : bytes;  (** wire form of the contents under [enc] *)
  wire : int;  (** bytes charged to the link for this record, header included *)
  cross : bool;
      (** the shared cross-session store already held this content, so [wire]
          is a hash reference's size; [enc]/[body] (and the logged record)
          still carry the full encoding *)
}

val tagged_record_wire : pfn:int64 -> body:bytes -> int
(** Wire-accounting bytes for one tagged page record — exactly its
    serialized size: varint pfn + encoding-tag byte + varint length +
    body. *)

val hash_ref_wire : pfn:int64 -> int
(** Wire-accounting bytes for a hash-reference record for [pfn] (8-byte
    body) — what a cross-session dedup hit is charged. *)

type sync_payload = {
  records : page_record list;
  tagged : bool;
      (** true when the wire carries per-record encoding tags ([Mode.memsync_dedup]
          or [Mode.memsync_adaptive]); false is the historical full-page format *)
  wire_bytes : int;  (** bytes on the wire after encoding *)
  raw_bytes : int;  (** bytes before delta + compression *)
  visited : int;  (** meta pages examined (dirty tracking skips the rest) *)
  total : int;  (** meta pages in scope *)
}

val pages : sync_payload -> (int64 * bytes) list
(** The shipped pages as [(pfn, full contents)], in record order. *)

val wire_records : sync_payload -> (int64 * encoding * bytes) list
(** The tagged wire form of the payload, for logging into a recording. *)

val payload_of_pages : (int64 * bytes) list -> sync_payload
(** Wrap already-known full pages (e.g. from a logged [Mem_load] entry)
    into an untagged payload with zero wire accounting. *)

val per_page_header : int
(** Wire-accounting bytes charged per page record (pfn + length). *)

val sync_meta : t -> Grt_gpu.Mem.t -> sync_payload
(** Diff the metastate against the baseline, advance the baseline, and
    return what must be shipped. *)

val apply : t -> Grt_gpu.Mem.t -> sync_payload -> unit
(** Install the shipped pages into the receiving memory, [t] being the
    receiving endpoint: tagged payloads are decoded through [t]'s content
    store (which learns every installed body), untagged ones install the
    full contents directly. *)

val apply_records : t -> Grt_gpu.Mem.t -> (int64 * encoding * bytes) list -> (int64 * bytes) list
(** Decode and install tagged wire records (e.g. from a logged
    [Mem_load_enc] entry) through [t]'s receiver store; returns the full
    installed contents in order. *)

val decode_records :
  Store.s -> Grt_gpu.Mem.t -> (int64 * encoding * bytes) list -> (int64 * bytes) list
(** Same, against a standalone store — the replayer's path. Raises
    [Failure] on a hash reference the store cannot resolve. *)

val note_peer_page : t -> int64 -> bytes -> unit
(** Teach the baseline that the peer now holds [contents] for [pfn] —
    called when a page arrives from the other direction, so it is not
    echoed back on the next sync. Deliberately does {e not} feed the dedup
    store: hash references must only point at content this sender shipped
    itself, or a recording's references could dangle on replay. *)

val note_shipped : t -> int64 -> bytes -> unit
(** Re-teach the sender state while replaying a validated log prefix
    (§4.2): baseline plus, under the tagged format, the shipped-content
    store — as if this endpoint had shipped the page live. *)

val naive_down_bytes : t -> Grt_gpu.Mem.t -> chain_va:int64 -> int
(** Model-scale bytes Naive mode must push to the client before the job at
    [chain_va]: every referenced data buffer the client does not hold yet
    (weights and staged inputs ship once; activations the GPU produced are
    already client-side). *)

val naive_up_bytes : t -> Grt_gpu.Mem.t -> chain_va:int64 -> int
(** Model-scale bytes Naive mode pulls back after the job: the output
    buffers the GPU wrote. *)
