module Profile = Grt_net.Profile
module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo

type ctx = {
  sku : Grt_gpu.Sku.t;
  seed : int64;
  cache : (string, Orchestrate.record_outcome) Hashtbl.t;
  histories : (string, Drivershim.history) Hashtbl.t;
  native_cache : (string, Native.run_result) Hashtbl.t;
}

let create_ctx ?(sku = Grt_gpu.Sku.g71_mp8) ?(seed = 42L) () =
  {
    sku;
    seed;
    cache = Hashtbl.create 64;
    histories = Hashtbl.create 8;
    native_cache = Hashtbl.create 8;
  }

let history_for ctx ~profile ~mode =
  let key = Printf.sprintf "%s/%s" profile.Profile.name (Mode.name mode) in
  match Hashtbl.find_opt ctx.histories key with
  | Some h -> h
  | None ->
    let h = Drivershim.fresh_history () in
    Hashtbl.replace ctx.histories key h;
    h

let record_outcome ctx ~profile ~mode net =
  let key =
    Printf.sprintf "%s/%s/%s" profile.Profile.name (Mode.name mode) net.Network.name
  in
  match Hashtbl.find_opt ctx.cache key with
  | Some o -> o
  | None ->
    let history = history_for ctx ~profile ~mode in
    let o =
      Orchestrate.record ~history ~profile ~mode ~sku:ctx.sku ~net ~seed:ctx.seed ()
    in
    Hashtbl.replace ctx.cache key o;
    o

let native ctx net =
  match Hashtbl.find_opt ctx.native_cache net.Network.name with
  | Some r -> r
  | None ->
    let clock = Grt_sim.Clock.create () in
    let plan = Network.expand net in
    let input = Grt_mlfw.Runner.input_values plan ~seed:ctx.seed in
    let r = Native.run_inference ~clock ~sku:ctx.sku ~net ~seed:ctx.seed ~input () in
    Hashtbl.replace ctx.native_cache net.Network.name r;
    r

(* ---- Figure 7 ---- *)

type fig7_row = { workload : string; delays : (Mode.t * float) list }

let fig7 ctx ~profile =
  List.map
    (fun net ->
      {
        workload = net.Network.name;
        delays =
          List.map
            (fun mode -> (mode, (record_outcome ctx ~profile ~mode net).Orchestrate.total_s))
            Mode.all;
      })
    Zoo.all

(* ---- Table 1 ---- *)

type table1_row = {
  workload : string;
  gpu_jobs : int;
  rtts_m : int;
  rtts_md : int;
  rtts_mds : int;
  memsync_naive_mb : float;
  memsync_ours_mb : float;
}

let mb bytes = float_of_int bytes /. 1048576.

let table1 ctx ~profile =
  List.map
    (fun net ->
      let m = record_outcome ctx ~profile ~mode:Mode.Ours_m net in
      let md = record_outcome ctx ~profile ~mode:Mode.Ours_md net in
      let mds = record_outcome ctx ~profile ~mode:Mode.Ours_mds net in
      let naive = record_outcome ctx ~profile ~mode:Mode.Naive net in
      {
        workload = net.Network.name;
        gpu_jobs = Network.job_count net;
        rtts_m = m.Orchestrate.blocking_rtts;
        rtts_md = md.Orchestrate.blocking_rtts;
        rtts_mds = mds.Orchestrate.blocking_rtts;
        memsync_naive_mb = mb naive.Orchestrate.sync_wire_bytes;
        memsync_ours_mb = mb m.Orchestrate.sync_raw_bytes;
      })
    Zoo.all

(* ---- Table 2 ---- *)

type table2_row = {
  workload : string;
  native_ms : float;
  replay_ms : float;
  outputs_match : bool;
}

let table2 ctx =
  List.map
    (fun net ->
      let nat = native ctx net in
      let mds = record_outcome ctx ~profile:Profile.wifi ~mode:Mode.Ours_mds net in
      let plan = Network.expand net in
      let input = Grt_mlfw.Runner.input_values plan ~seed:ctx.seed in
      let params = Grt_mlfw.Runner.weight_values plan ~seed:ctx.seed in
      let ro =
        Orchestrate.replay_recording ~sku:ctx.sku ~blob:mds.Orchestrate.blob ~input ~params
          ~seed:ctx.seed ()
      in
      let matches =
        Array.length ro.Orchestrate.r.Replayer.output = Array.length nat.Native.output
        && Array.for_all2
             (fun a b -> Int32.equal (Int32.bits_of_float a) (Int32.bits_of_float b))
             ro.Orchestrate.r.Replayer.output nat.Native.output
      in
      {
        workload = net.Network.name;
        native_ms = nat.Native.delay_s *. 1e3;
        replay_ms = ro.Orchestrate.r.Replayer.delay_s *. 1e3;
        outputs_match = matches;
      })
    Zoo.all

(* ---- Figure 8 ---- *)

type fig8_row = {
  workload : string;
  total_speculated : int;
  shares : (Drivershim.category * float) list;
}

let fig8 ctx ~profile =
  List.map
    (fun net ->
      let o = record_outcome ctx ~profile ~mode:Mode.Ours_mds net in
      let total = max 1 o.Orchestrate.commits_speculated in
      {
        workload = net.Network.name;
        total_speculated = o.Orchestrate.commits_speculated;
        shares =
          List.map
            (fun (c, n) -> (c, float_of_int n /. float_of_int total))
            o.Orchestrate.speculated_by_category;
      })
    Zoo.all

(* ---- Figure 9 ---- *)

type fig9_row = {
  workload : string;
  record_naive_j : float;
  record_mds_j : float;
  replay_j : float;
}

let fig9 ctx ~profile =
  List.map
    (fun net ->
      let naive = record_outcome ctx ~profile ~mode:Mode.Naive net in
      let mds = record_outcome ctx ~profile ~mode:Mode.Ours_mds net in
      let plan = Network.expand net in
      let input = Grt_mlfw.Runner.input_values plan ~seed:ctx.seed in
      let params = Grt_mlfw.Runner.weight_values plan ~seed:ctx.seed in
      let ro =
        Orchestrate.replay_recording ~sku:ctx.sku ~blob:mds.Orchestrate.blob ~input ~params
          ~seed:ctx.seed ()
      in
      {
        workload = net.Network.name;
        record_naive_j = naive.Orchestrate.client_energy_j;
        record_mds_j = mds.Orchestrate.client_energy_j;
        replay_j = Option.value ~default:0.0 ro.Orchestrate.r.Replayer.energy_j;
      })
    Zoo.all

(* ---- §7.3 statistics ---- *)

type stats_row = {
  workload : string;
  accesses : int;
  commits : int;
  accesses_per_commit : float;
  speculated_pct : float;
  rejected_nondet : int;
}

let deferral_stats ctx ~profile =
  List.map
    (fun net ->
      let o = record_outcome ctx ~profile ~mode:Mode.Ours_mds net in
      {
        workload = net.Network.name;
        accesses = o.Orchestrate.accesses_total;
        commits = o.Orchestrate.commits_total;
        accesses_per_commit =
          float_of_int o.Orchestrate.accesses_total /. float_of_int (max 1 o.Orchestrate.commits_total);
        speculated_pct =
          100.0 *. float_of_int o.Orchestrate.commits_speculated
          /. float_of_int (max 1 o.Orchestrate.commits_total);
        rejected_nondet = o.Orchestrate.spec_rejected_nondet;
      })
    Zoo.all

(* ---- §7.3 polling ---- *)

type polling_row = {
  workload : string;
  instances : int;
  offloaded : int;
  rtts_without_offload : int;
  rtts_with_offload : int;
}

let polling ctx ~profile =
  List.map
    (fun net ->
      let with_off = record_outcome ctx ~profile ~mode:Mode.Ours_mds net in
      let cfg = { (Mode.default_config Mode.Ours_mds) with Mode.offload_polling = false } in
      let without =
        Orchestrate.record ~config:cfg ~profile ~mode:Mode.Ours_mds ~sku:ctx.sku ~net
          ~seed:ctx.seed ()
      in
      {
        workload = net.Network.name;
        instances = with_off.Orchestrate.poll_instances;
        offloaded = with_off.Orchestrate.poll_offloaded;
        rtts_without_offload = without.Orchestrate.blocking_rtts;
        rtts_with_offload = with_off.Orchestrate.blocking_rtts;
      })
    Zoo.all

(* ---- §7.3 misprediction ---- *)

type rollback_row = {
  workload : string;
  detected : bool;
  rollbacks : int;
  rollback_s : float;
  completed : bool;
}

let rollback ctx ~profile ~nets =
  List.map
    (fun net ->
      (* Warm the history first so there is speculation to poison, then
         inject deep into the run (the worst case of §7.3). *)
      let history = Drivershim.fresh_history () in
      let warm () =
        Orchestrate.record ~history ~profile ~mode:Mode.Ours_mds ~sku:ctx.sku ~net
          ~seed:ctx.seed ()
      in
      ignore (warm ());
      let inject_at = 50 + (Network.job_count net * 10) in
      let o =
        Orchestrate.record ~history ~inject_fault_after:inject_at ~profile ~mode:Mode.Ours_mds
          ~sku:ctx.sku ~net ~seed:(Int64.add ctx.seed 1L) ()
      in
      {
        workload = net.Network.name;
        detected = o.Orchestrate.rollbacks > 0;
        rollbacks = o.Orchestrate.rollbacks;
        rollback_s = o.Orchestrate.rollback_s;
        completed = Array.length o.Orchestrate.recording.Recording.entries > 0;
      })
    nets

(* ---- ablation ---- *)

type ablation_row = { label : string; delay_s : float; rtts : int; sync_mb : float }

let ablation ctx ~profile ~net =
  let base = Mode.default_config Mode.Ours_mds in
  let variants =
    [
      ("GR-T (all techniques)", base);
      ("k=1 (aggressive speculation)", { base with Mode.spec_history_k = 1 });
      ("k=5 (conservative speculation)", { base with Mode.spec_history_k = 5 });
      ("no polling offload", { base with Mode.offload_polling = false });
      ("no dump compression", { base with Mode.compress_dumps = false });
      ("no dump deltas", { base with Mode.delta_dumps = false });
      ("deferral everywhere (no hot scope)", { base with Mode.hot_function_scope = false });
      ("no continuous validation", { base with Mode.continuous_validation = false });
    ]
  in
  List.map
    (fun (label, cfg) ->
      let o =
        Orchestrate.record ~config:cfg ~profile ~mode:cfg.Mode.mode ~sku:ctx.sku ~net
          ~seed:ctx.seed ()
      in
      {
        label;
        delay_s = o.Orchestrate.total_s;
        rtts = o.Orchestrate.blocking_rtts;
        sync_mb = mb o.Orchestrate.sync_wire_bytes;
      })
    variants

(* ---- fault campaign ----

   Record the same workload over increasingly lossy channels and check the
   property the whole PR hangs on: the link is a cost model, retransmission
   and degraded-mode fallbacks change *when* things happen, never *what* is
   recorded — so the signed blob must stay bit-identical to the zero-fault
   recording. *)

type fault_row = {
  profile_name : string;
  window : int;
  drop_prob : float;
  total_s : float;
  retransmits : int;
  degraded_entries : int;
  rollbacks : int;
  link_downs : int;
  blob_identical : bool;
}

let fault_campaign ctx ?(drops = [ 0.0; 0.01; 0.05; 0.1 ]) ?(windows = [ 1; 4 ]) ~net () =
  List.concat_map
    (fun base ->
      (* Each run gets a fresh history so speculation warms up identically;
         the cache is bypassed for the same reason. A windowed run also
         pipelines speculative commits ([max_inflight] = window) so the wire
         window is actually exercised. *)
      let run ~window profile =
        let config =
          { (Mode.default_config Mode.Ours_mds) with
            Mode.max_inflight = (if window > 1 then window else 0)
          }
        in
        Orchestrate.record ~history:(Drivershim.fresh_history ()) ~config ~window ~profile
          ~mode:Mode.Ours_mds ~sku:ctx.sku ~net ~seed:ctx.seed ()
      in
      (* One reference per base profile: the stop-and-wait zero-fault
         recording. Every windowed and lossy variant must reproduce its
         signed blob bit-for-bit. *)
      let reference = run ~window:1 base in
      List.concat_map
        (fun window ->
          List.map
            (fun drop ->
              let o =
                if drop = 0. && window = 1 then reference
                else
                  run ~window (if drop = 0. then base else Profile.degrade ~drop_prob:drop base)
              in
              {
                profile_name = base.Profile.name;
                window;
                drop_prob = drop;
                total_s = o.Orchestrate.total_s;
                retransmits = o.Orchestrate.retransmits;
                degraded_entries =
                  Grt_sim.Counters.get_int o.Orchestrate.counters "net.degraded_entries";
                rollbacks = o.Orchestrate.rollbacks;
                link_downs = o.Orchestrate.link_downs;
                blob_identical = Bytes.equal o.Orchestrate.blob reference.Orchestrate.blob;
              })
            drops)
        windows)
    [ Profile.wifi; Profile.cellular ]

(* ---- memsync fast-path sweep ----

   A synthetic two-endpoint rig: one sender memory with a Cmd region of
   [pages] pages, one receiver memory, and a Memsync pair between them.
   Each round dirties [dirtied] pages — bodies drawn from a deterministic
   mix of sparse (range coding wins), dense random (raw wins) and
   small-perturbation (delta wins) content, with [dup_rate] of the writes
   reusing a body written before (dedup's habitat) — then syncs and applies.
   The receiver must end bit-identical to the sender under every variant. *)

type memsync_sweep_row = {
  variant : string;
  dirtied_per_round : int;
  dup_rate : float;
  sweep_rounds : int;
  sweep_pages : int;
  sweep_wire_bytes : int;
  sweep_raw_bytes : int;
  pages_visited : int;
  hash_hits : int;
  enc_mix : (string * int) list;
  sync_us : float;  (* host-side microseconds per sync_meta call *)
  reproduced : bool;
}

let memsync_variants =
  [
    ("legacy", fun c -> { c with Mode.memsync_dirty = false });
    ("dirty", fun (c : Mode.config) -> c);
    ("dirty+dedup", fun c -> { c with Mode.memsync_dedup = true });
    ( "dirty+dedup+adaptive",
      fun c -> { c with Mode.memsync_dedup = true; memsync_adaptive = true } );
  ]

let memsync_sweep_one ~variant ~tweak ~pages ~rounds ~dirtied ~dup_rate =
  let module Mem = Grt_gpu.Mem in
  let cfg = tweak (Mode.default_config Mode.Ours_mds) in
  let mem_s = Mem.create () and mem_r = Mem.create () in
  let pa = Mem.alloc_pages mem_s pages in
  let first = Mem.page_of_addr pa in
  let sender = Memsync.create cfg and receiver = Memsync.create cfg in
  Memsync.register_region sender
    {
      Memsync.name = "sweep-cmd";
      usage = Grt_runtime.Session.Cmd;
      va = 0x1000_0000L;
      pa;
      model_bytes = pages * Mem.page_size;
      actual_bytes = pages * Mem.page_size;
    };
  let rng = Grt_util.Rng.create ~seed:0x5eed_5eedL in
  let pool = ref [||] in
  let fresh_body pfn =
    let b =
      match Grt_util.Rng.int rng 3 with
      | 0 ->
        (* sparse: almost all zeroes *)
        let b = Bytes.make Mem.page_size '\000' in
        for _ = 0 to 31 do
          Bytes.set b (Grt_util.Rng.int rng Mem.page_size) '\x42'
        done;
        b
      | 1 -> Grt_util.Rng.bytes rng Mem.page_size (* dense: incompressible *)
      | _ ->
        (* perturbation of the page's current contents *)
        let b = Mem.get_page mem_s pfn in
        for _ = 0 to 7 do
          Bytes.set b (Grt_util.Rng.int rng Mem.page_size)
            (Char.chr (Grt_util.Rng.int rng 256))
        done;
        b
    in
    pool := Array.append !pool [| b |];
    b
  in
  let wire = ref 0 and raw = ref 0 and visited = ref 0 and hash_hits = ref 0 in
  let enc_counts = Hashtbl.create 8 in
  let t0 = Sys.time () in
  for _round = 1 to rounds do
    for _i = 1 to dirtied do
      let pfn = Int64.add first (Int64.of_int (Grt_util.Rng.int rng pages)) in
      let body =
        if Array.length !pool > 0 && Grt_util.Rng.float rng 1.0 < dup_rate then
          !pool.(Grt_util.Rng.int rng (Array.length !pool))
        else fresh_body pfn
      in
      Mem.set_page mem_s pfn body
    done;
    let p = Memsync.sync_meta sender mem_s in
    wire := !wire + p.Memsync.wire_bytes;
    raw := !raw + p.Memsync.raw_bytes;
    visited := !visited + p.Memsync.visited;
    List.iter
      (fun (r : Memsync.page_record) ->
        let n = Memsync.encoding_name r.Memsync.enc in
        Hashtbl.replace enc_counts n
          (1 + Option.value ~default:0 (Hashtbl.find_opt enc_counts n));
        if r.Memsync.enc = Memsync.Enc_hash_ref then incr hash_hits)
      p.Memsync.records;
    Memsync.apply receiver mem_r p
  done;
  let elapsed = Sys.time () -. t0 in
  let reproduced =
    List.for_all
      (fun i ->
        let pfn = Int64.add first (Int64.of_int i) in
        Bytes.equal (Mem.get_page mem_s pfn) (Mem.get_page mem_r pfn))
      (List.init pages (fun i -> i))
  in
  {
    variant;
    dirtied_per_round = dirtied;
    dup_rate;
    sweep_rounds = rounds;
    sweep_pages = pages;
    sweep_wire_bytes = !wire;
    sweep_raw_bytes = !raw;
    pages_visited = !visited;
    hash_hits = !hash_hits;
    enc_mix =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) enc_counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    sync_us = elapsed /. float_of_int rounds *. 1e6;
    reproduced;
  }

let memsync_sweep ?(pages = 64) ?(rounds = 8) ?(dirtied = [ 4; 16; 64 ])
    ?(dup_rates = [ 0.0; 0.5; 0.9 ]) () =
  List.concat_map
    (fun (variant, tweak) ->
      List.concat_map
        (fun d ->
          List.map
            (fun dup -> memsync_sweep_one ~variant ~tweak ~pages ~rounds ~dirtied:d ~dup_rate:dup)
            dup_rates)
        dirtied)
    memsync_variants

(* ---- memsync fast path on a real workload ----

   The same recording, baseline config vs. the full fast path (dirty
   tracking is on by default in both; the fast path adds dedup + adaptive
   encoding). Each run replays its own blob against the native output, so
   the row proves the tagged record format round-trips end to end. *)

type memsync_workload_row = {
  config_label : string;
  net_name : string;
  down_wire_bytes : int;
  up_wire_bytes : int;
  blob_bytes : int;
  mpages_visited : int;
  mpages_meta : int;
  workload_enc_mix : (string * int) list;
  replay_matches : bool;
}

let memsync_workload ctx ~net =
  let base = Mode.default_config Mode.Ours_mds in
  let fast = { base with Mode.memsync_dedup = true; memsync_adaptive = true } in
  let nat = native ctx net in
  let plan = Network.expand net in
  let input = Grt_mlfw.Runner.input_values plan ~seed:ctx.seed in
  let params = Grt_mlfw.Runner.weight_values plan ~seed:ctx.seed in
  List.map
    (fun (config_label, cfg) ->
      let o =
        Orchestrate.record ~history:(Drivershim.fresh_history ()) ~config:cfg
          ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku:ctx.sku ~net ~seed:ctx.seed ()
      in
      let ro =
        Orchestrate.replay_recording ~sku:ctx.sku ~blob:o.Orchestrate.blob ~input ~params
          ~seed:ctx.seed ()
      in
      let matches =
        Array.length ro.Orchestrate.r.Replayer.output = Array.length nat.Native.output
        && Array.for_all2
             (fun a b -> Int32.equal (Int32.bits_of_float a) (Int32.bits_of_float b))
             ro.Orchestrate.r.Replayer.output nat.Native.output
      in
      let c k = Grt_sim.Counters.get_int o.Orchestrate.counters k in
      {
        config_label;
        net_name = net.Network.name;
        down_wire_bytes = c "sync.down_wire_bytes";
        up_wire_bytes = c "sync.up_wire_bytes";
        blob_bytes = Bytes.length o.Orchestrate.blob;
        mpages_visited = c "sync.pages_visited";
        mpages_meta = c "sync.pages_meta";
        workload_enc_mix =
          List.filter_map
            (fun e ->
              let n = Memsync.encoding_name e in
              let v =
                c ("sync.enc_" ^ String.map (function '+' | '-' -> '_' | ch -> ch) n)
              in
              if v > 0 then Some (n, v) else None)
            [
              Memsync.Enc_raw;
              Memsync.Enc_raw_rc;
              Memsync.Enc_delta;
              Memsync.Enc_delta_rc;
              Memsync.Enc_hash_ref;
            ];
        replay_matches = matches;
      })
    [ ("baseline", base); ("fastpath", fast) ]

(* ---- replay throughput: interpreted vs compiled (ROADMAP item 2) ----

   Host-side replays/sec for the three replay paths:

   - interpreted: [Orchestrate.replay_recording] — eager blob verification,
     entry-log interpretation, fresh client session per replay;
   - compiled cold: compile + execute once per replay (what a client pays
     the first time it sees a blob);
   - compiled warm: compile once, one client session reused across the
     batch — chunk hashes verified on first execution only, poll hints and
     decoded memory images live across iterations. This is the paper's
     deployment shape: one recording, millions of replays.

   Rates use [Sys.time] (host CPU seconds); the measurement loop grows
   until the sample is long enough for the timer's resolution. Outputs are
   additionally checked bit-identical between the interpreted and compiled
   paths across several fresh input seeds. *)

type replay_bench_row = {
  workload : string;
  entries : int;
  interpreted_rps : float;
  compiled_cold_rps : float;
  compiled_warm_rps : float;
  warm_speedup : float;  (** compiled_warm_rps / interpreted_rps *)
  fused_writes : int;
  static_pages : int;
  dynamic_loads : int;
  bit_identical : bool;
}

(* Replayer-machinery throughput: repeat [f] until at least [min_elapsed]
   host seconds are sampled (or [max_reps] is hit), starting from [reps]
   calls. Host time spent doing the GPU's side of job execution (chain
   walk, MMU translation, shader validation, kernel math) is subtracted
   from each sample — that work stands in for silicon, runs identically in
   every replay path, and on real hardware costs the replayer nothing — so the
   rate isolates the machinery the compiled path actually optimizes:
   parse, verify, decode, entry dispatch, slot and memory-image I/O. *)
let host_rate ?(min_elapsed = 0.05) ~reps ~max_reps f =
  let rec go reps =
    let k0 = Grt_gpu.Device.gpu_host_seconds () in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    let dt =
      Sys.time () -. t0 -. (Grt_gpu.Device.gpu_host_seconds () -. k0)
    in
    if dt < min_elapsed && reps < max_reps then go (min max_reps (reps * 4))
    else float_of_int reps /. Float.max dt 1e-9
  in
  go reps

let replay_bench ?(nets = Zoo.all) ?(iters = 3) ctx =
  List.map
    (fun net ->
      let mds = record_outcome ctx ~profile:Profile.wifi ~mode:Mode.Ours_mds net in
      let blob = mds.Orchestrate.blob in
      let plan = Network.expand net in
      let input = Grt_mlfw.Runner.input_values plan ~seed:ctx.seed in
      let params = Grt_mlfw.Runner.weight_values plan ~seed:ctx.seed in
      let interpreted () =
        Orchestrate.replay_recording ~sku:ctx.sku ~blob ~input ~params ~seed:ctx.seed ()
      in
      let compiled_cold () =
        let prog = Orchestrate.compile_recording ~blob () in
        Orchestrate.replay_compiled ~sku:ctx.sku ~prog ~input ~params ~seed:ctx.seed ()
      in
      let prog = Orchestrate.compile_recording ~blob () in
      let gpushim, _, energy = Orchestrate.replay_gpushim ~sku:ctx.sku ~seed:ctx.seed () in
      let compiled_warm () =
        Replayer.replay_compiled ~gpushim ~prog ~input ~params ~energy ()
      in
      (* Correctness first (and it warms the program: hints, caches, chunk
         checks), then the timed runs. *)
      let bit_identical =
        List.for_all
          (fun seed ->
            let input = Grt_mlfw.Runner.input_values plan ~seed in
            let a =
              Orchestrate.replay_recording ~sku:ctx.sku ~blob ~input ~params ~seed:ctx.seed ()
            in
            let b =
              Orchestrate.replay_compiled ~sku:ctx.sku ~prog ~input ~params ~seed:ctx.seed ()
            in
            let wa = a.Orchestrate.r.Replayer.output and wb = b.Orchestrate.r.Replayer.output in
            Array.length wa = Array.length wb
            && Array.for_all2
                 (fun x y -> Int32.equal (Int32.bits_of_float x) (Int32.bits_of_float y))
                 wa wb
            && a.Orchestrate.r.Replayer.entries_applied = b.Orchestrate.r.Replayer.entries_applied)
          [ ctx.seed; 7L; 13L ]
      in
      ignore (compiled_warm ());
      let interpreted_rps = host_rate ~reps:iters ~max_reps:iters (fun () -> ignore (interpreted ())) in
      let compiled_cold_rps =
        host_rate ~reps:iters ~max_reps:(iters * 8) (fun () -> ignore (compiled_cold ()))
      in
      let compiled_warm_rps =
        host_rate ~reps:(iters * 10) ~max_reps:100_000 (fun () -> ignore (compiled_warm ()))
      in
      let st = Replay_prog.stats prog in
      {
        workload = net.Network.name;
        entries = st.Replay_prog.entries;
        interpreted_rps;
        compiled_cold_rps;
        compiled_warm_rps;
        warm_speedup = compiled_warm_rps /. Float.max interpreted_rps 1e-9;
        fused_writes = st.Replay_prog.fused_writes;
        static_pages = st.Replay_prog.static_pages;
        dynamic_loads = st.Replay_prog.dynamic_loads;
        bit_identical;
      })
    nets

(* ---- Fleet: the recording service under a Zipf client population ----

   One row per execution mode of the same generated fleet, so the printed
   table directly shows that multiplexed and sequential runs agree on every
   semantic column (recordings, hit rate, wire traffic) and differ only in
   host cost and scheduler stats. *)

type fleet_row = {
  fleet_label : string;  (* "sequential", "multiplexed/<backend>", "parallel/<backend>/d<N>" *)
  fleet_clients : int;
  distinct_keys : int;
  fleet_recordings : int;
  fleet_cache_hits : int;
  fleet_coalesced : int;
  fleet_failures : int;
  fleet_evictions : int;
  fleet_hit_rate : float;
  host_s : float;
  sessions_per_s : float;  (* clients / host_s *)
  host_wall_s : float;  (* elapsed host time, outside the virtual timeline *)
  wall_sessions_per_s : float;  (* clients / host_wall_s — the scaling metric *)
  virtual_s : float;  (* fleet-wide virtual-time span *)
  mean_turnaround_s : float;
  p95_turnaround_s : float;
  fleet_sync_wire_mb : float;  (* aggregate memsync traffic, both dirs *)
  fleet_blocking_rtts : int;
  spec_cross_hits : int;  (* §7.3 history hits across sessions *)
  sync_cross_hits : int;  (* pages served from the shared content store *)
  fleet_yields : int;  (* 0 for sequential *)
  fleet_switches : int;
  fleet_domains : int;  (* domains requested *)
  fleet_parallel : bool;  (* shards actually ran on separate domains *)
  fleet_shards : Service.shard_stat list;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let fleet ?(options = Service.default_fleet) ?backend ?(sequential = false)
    ?(observe = false) ?(cache_capacity = 0) ?(domains = 1) ?(now = Sys.time)
    ?wall () =
  let wall = match wall with Some w -> w | None -> now in
  let specs = Service.zipf_fleet options in
  let svc = Service.create ~cache_capacity () in
  let t0 = now () in
  let w0 = wall () in
  let reports, rs = Service.run ?backend ~sequential ~observe ~domains svc specs in
  let host_wall_s = Float.max (wall () -. w0) 1e-9 in
  let host_s = Float.max (now () -. t0) 1e-9 in
  let st = Service.stats svc in
  let agg = Service.aggregate svc reports in
  let g k = Grt_sim.Counters.get_int agg (Grt_sim.Metrics.name k) in
  let turnarounds =
    Array.of_list (List.map (fun r -> r.Service.turnaround_s) reports)
  in
  Array.sort compare turnarounds;
  let mean_turnaround_s =
    match Array.length turnarounds with
    | 0 -> 0.
    | n -> Array.fold_left ( +. ) 0. turnarounds /. float_of_int n
  in
  let row =
    {
      fleet_label =
        (match (rs.Service.rs_mode, rs.Service.rs_backend) with
        | "sequential", _ -> "sequential"
        | mode, backend ->
          let b = Option.value ~default:"?" backend in
          if rs.Service.rs_domains > 1 then
            Printf.sprintf "%s/%s/d%d" mode b rs.Service.rs_domains
          else mode ^ "/" ^ b);
      fleet_clients = st.Service.sessions;
      distinct_keys = List.length (Service.cache_listing svc);
      fleet_recordings = st.Service.recordings;
      fleet_cache_hits = st.Service.cache_hits;
      fleet_coalesced = st.Service.coalesced;
      fleet_failures = st.Service.failures;
      fleet_evictions = st.Service.evictions;
      fleet_hit_rate = Service.hit_rate st;
      host_s;
      sessions_per_s = float_of_int st.Service.sessions /. host_s;
      host_wall_s;
      wall_sessions_per_s = float_of_int st.Service.sessions /. host_wall_s;
      virtual_s = Int64.to_float rs.Service.rs_virtual_ns /. 1e9;
      mean_turnaround_s;
      p95_turnaround_s = percentile turnarounds 0.95;
      fleet_sync_wire_mb =
        float_of_int
          (g Grt_sim.Metrics.Sync_down_wire_bytes
          + g Grt_sim.Metrics.Sync_up_wire_bytes)
        /. 1e6;
      fleet_blocking_rtts = g Grt_sim.Metrics.Net_blocking_rtts;
      spec_cross_hits = g Grt_sim.Metrics.Spec_cross_hits;
      sync_cross_hits = g Grt_sim.Metrics.Sync_cross_hits;
      fleet_yields = rs.Service.rs_yields;
      fleet_switches = rs.Service.rs_switches;
      fleet_domains = rs.Service.rs_domains;
      fleet_parallel = rs.Service.rs_parallel;
      fleet_shards = rs.Service.rs_shards;
    }
  in
  (row, svc)

(* ---- Simulator raw speed (ROADMAP item 5) ----

   Host-side throughput of the *recording* hot loop: how many simulated
   register accesses per host second a full record session sustains, and how
   many minor-heap words each access costs. Every byte of every recording
   flows through the layers this measures (Mem/Mmu page stores, the
   queue→wire lowering, the link's exchange path), so the rows double as an
   allocation-regression tripwire: [speed_ceilings] pins a per-row
   minor-words/access ceiling, and callers (the CI smoke) can fail a run
   whose allocation rate regresses above it.

   Like [replay_bench], host seconds spent doing the GPU's side of job
   execution (kernel math, chain walk) are subtracted: that work stands in
   for silicon and runs identically in every mode, so the rate isolates the
   simulator machinery. Each iteration records with a fresh speculation
   history so every iteration takes the same path (no cross-iteration
   warming) and the accesses count is iteration-invariant. *)

type speed_row = {
  speed_label : string;
  speed_accesses : int;  (** simulated register accesses per session *)
  speed_iters : int;
  speed_host_s : float;  (** host seconds across all iterations, GPU time excluded *)
  accesses_per_s : float;
  minor_words_per_access : float;
  speed_memo : Grt_util.Json.t;
      (** per-memo hit/miss profile over this row's measured window *)
}

(* Measured on the flat-store + memoized-sign hot path (2026-08): Naive
   334.6, OursMDS 450.5, dedup 460.5, w4 419.9 minor-words/access. The
   ceilings leave ~25% headroom for hashtable-resize and iteration-count
   jitter; a breach means a new per-access allocation crept into the
   record path, not machine noise (allocation counts are deterministic). *)
let speed_ceilings =
  [
    ("record/MNIST/Naive", 420.);
    ("record/MNIST/OursMDS", 570.);
    ("record/MNIST/OursMDS-dedup", 580.);
    ("record/MNIST/OursMDS-w4", 530.);
  ]

let speed_ceiling label = List.assoc_opt label speed_ceilings

let speed ?(iters = 6) ctx =
  let net = Zoo.mnist in
  let session ?window ?config mode () =
    Orchestrate.record
      ~history:(Drivershim.fresh_history ())
      ?window ?config ~profile:Profile.wifi ~mode ~sku:ctx.sku ~net ~seed:ctx.seed ()
  in
  let measure label f =
    (* Warm-up run: fault in code paths and page tables, and probe the
       per-session access count (deterministic, so one probe suffices). *)
    let probe = f () in
    let accesses = probe.Orchestrate.accesses_total in
    (* Memo profile covers only the measured iterations: the warm-up's
       compulsory misses would otherwise drown the steady-state hit rate. *)
    Grt_util.Memo_stats.reset_counters ();
    (* Grow the batch until the sample comfortably exceeds [Sys.time]'s
       resolution; recording sessions are milliseconds-scale, so this
       settles after at most a couple of rounds. *)
    let rec sample iters =
      let k0 = Grt_gpu.Device.gpu_host_seconds () in
      let w0 = Gc.minor_words () in
      let t0 = Sys.time () in
      for _ = 1 to iters do
        ignore (f ())
      done;
      let host_s = Sys.time () -. t0 -. (Grt_gpu.Device.gpu_host_seconds () -. k0) in
      let minor_words = Gc.minor_words () -. w0 in
      if host_s < 0.08 && iters < 4096 then sample (iters * 4)
      else (iters, Float.max host_s 1e-9, minor_words)
    in
    let iters, host_s, minor_words = sample iters in
    let total_accesses = float_of_int (accesses * iters) in
    {
      speed_label = label;
      speed_accesses = accesses;
      speed_iters = iters;
      speed_host_s = host_s;
      accesses_per_s = total_accesses /. host_s;
      minor_words_per_access = minor_words /. Float.max total_accesses 1.;
      speed_memo = Grt_util.Memo_stats.to_json ();
    }
  in
  [
    measure "record/MNIST/Naive" (session Mode.Naive);
    measure "record/MNIST/OursMDS" (session Mode.Ours_mds);
    measure "record/MNIST/OursMDS-dedup"
      (session
         ~config:
           {
             (Mode.default_config Mode.Ours_mds) with
             Mode.memsync_dedup = true;
             memsync_adaptive = true;
           }
         Mode.Ours_mds);
    measure "record/MNIST/OursMDS-w4"
      (session ~window:4
         ~config:{ (Mode.default_config Mode.Ours_mds) with Mode.max_inflight = 4 }
         Mode.Ours_mds);
  ]

(* ---- JSON row export (bench --json, CI artifacts) ----

   One function per row type, mirroring the printed tables field for field
   so a test can assert the JSON rows carry exactly the table's values. *)

module Json = Grt_util.Json

let fig7_row_json (r : fig7_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("delays_s", Json.Obj (List.map (fun (m, d) -> (Mode.name m, Json.float d)) r.delays));
    ]

let table1_row_json (r : table1_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("gpu_jobs", Json.int r.gpu_jobs);
      ("rtts_m", Json.int r.rtts_m);
      ("rtts_md", Json.int r.rtts_md);
      ("rtts_mds", Json.int r.rtts_mds);
      ("memsync_naive_mb", Json.float r.memsync_naive_mb);
      ("memsync_ours_mb", Json.float r.memsync_ours_mb);
    ]

let table2_row_json (r : table2_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("native_ms", Json.float r.native_ms);
      ("replay_ms", Json.float r.replay_ms);
      ("outputs_match", Json.Bool r.outputs_match);
    ]

let fig8_row_json (r : fig8_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("total_speculated", Json.int r.total_speculated);
      ( "shares",
        Json.Obj
          (List.map
             (fun (c, s) -> (Drivershim.category_name c, Json.float s))
             r.shares) );
    ]

let fig9_row_json (r : fig9_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("record_naive_j", Json.float r.record_naive_j);
      ("record_mds_j", Json.float r.record_mds_j);
      ("replay_j", Json.float r.replay_j);
    ]

let stats_row_json (r : stats_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("accesses", Json.int r.accesses);
      ("commits", Json.int r.commits);
      ("accesses_per_commit", Json.float r.accesses_per_commit);
      ("speculated_pct", Json.float r.speculated_pct);
      ("rejected_nondet", Json.int r.rejected_nondet);
    ]

let polling_row_json (r : polling_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("instances", Json.int r.instances);
      ("offloaded", Json.int r.offloaded);
      ("rtts_without_offload", Json.int r.rtts_without_offload);
      ("rtts_with_offload", Json.int r.rtts_with_offload);
    ]

let rollback_row_json (r : rollback_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("detected", Json.Bool r.detected);
      ("rollbacks", Json.int r.rollbacks);
      ("rollback_s", Json.float r.rollback_s);
      ("completed", Json.Bool r.completed);
    ]

let replay_bench_row_json (r : replay_bench_row) =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("entries", Json.int r.entries);
      ("interpreted_rps", Json.float r.interpreted_rps);
      ("compiled_cold_rps", Json.float r.compiled_cold_rps);
      ("compiled_warm_rps", Json.float r.compiled_warm_rps);
      ("warm_speedup", Json.float r.warm_speedup);
      ("fused_writes", Json.int r.fused_writes);
      ("static_pages", Json.int r.static_pages);
      ("dynamic_loads", Json.int r.dynamic_loads);
      ("bit_identical", Json.Bool r.bit_identical);
    ]

let ablation_row_json (r : ablation_row) =
  Json.Obj
    [
      ("label", Json.Str r.label);
      ("delay_s", Json.float r.delay_s);
      ("rtts", Json.int r.rtts);
      ("sync_mb", Json.float r.sync_mb);
    ]

let memsync_sweep_row_json (r : memsync_sweep_row) =
  Json.Obj
    [
      ("variant", Json.Str r.variant);
      ("dirtied_per_round", Json.int r.dirtied_per_round);
      ("dup_rate", Json.float r.dup_rate);
      ("rounds", Json.int r.sweep_rounds);
      ("pages", Json.int r.sweep_pages);
      ("wire_bytes", Json.int r.sweep_wire_bytes);
      ("raw_bytes", Json.int r.sweep_raw_bytes);
      ("pages_visited", Json.int r.pages_visited);
      ("hash_hits", Json.int r.hash_hits);
      ("enc_mix", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) r.enc_mix));
      ("sync_us", Json.float r.sync_us);
      ("reproduced", Json.Bool r.reproduced);
    ]

let memsync_workload_row_json (r : memsync_workload_row) =
  Json.Obj
    [
      ("config", Json.Str r.config_label);
      ("workload", Json.Str r.net_name);
      ("down_wire_bytes", Json.int r.down_wire_bytes);
      ("up_wire_bytes", Json.int r.up_wire_bytes);
      ("blob_bytes", Json.int r.blob_bytes);
      ("pages_visited", Json.int r.mpages_visited);
      ("pages_meta", Json.int r.mpages_meta);
      ( "enc_mix",
        Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) r.workload_enc_mix) );
      ("replay_matches", Json.Bool r.replay_matches);
    ]

let fault_row_json (r : fault_row) =
  Json.Obj
    [
      ("profile", Json.Str r.profile_name);
      ("window", Json.int r.window);
      ("drop_prob", Json.float r.drop_prob);
      ("total_s", Json.float r.total_s);
      ("retransmits", Json.int r.retransmits);
      ("degraded_entries", Json.int r.degraded_entries);
      ("rollbacks", Json.int r.rollbacks);
      ("link_downs", Json.int r.link_downs);
      ("blob_identical", Json.Bool r.blob_identical);
    ]

let fleet_row_json (r : fleet_row) =
  Json.Obj
    [
      ("label", Json.Str r.fleet_label);
      ("clients", Json.int r.fleet_clients);
      ("distinct_keys", Json.int r.distinct_keys);
      ("recordings", Json.int r.fleet_recordings);
      ("cache_hits", Json.int r.fleet_cache_hits);
      ("coalesced", Json.int r.fleet_coalesced);
      ("failures", Json.int r.fleet_failures);
      ("evictions", Json.int r.fleet_evictions);
      ("hit_rate", Json.float r.fleet_hit_rate);
      ("host_s", Json.float r.host_s);
      ("sessions_per_s", Json.float r.sessions_per_s);
      ("host_wall_s", Json.float r.host_wall_s);
      ("wall_sessions_per_s", Json.float r.wall_sessions_per_s);
      ("virtual_s", Json.float r.virtual_s);
      ("mean_turnaround_s", Json.float r.mean_turnaround_s);
      ("p95_turnaround_s", Json.float r.p95_turnaround_s);
      ("sync_wire_mb", Json.float r.fleet_sync_wire_mb);
      ("blocking_rtts", Json.int r.fleet_blocking_rtts);
      ("spec_cross_hits", Json.int r.spec_cross_hits);
      ("sync_cross_hits", Json.int r.sync_cross_hits);
      ("yields", Json.int r.fleet_yields);
      ("switches", Json.int r.fleet_switches);
      ("domains", Json.int r.fleet_domains);
      ("parallel", Json.Bool r.fleet_parallel);
      ( "shards",
        Json.Arr
          (List.map
             (fun (s : Service.shard_stat) ->
               Json.Obj
                 [
                   ("index", Json.int s.Service.shard_index);
                   ("groups", Json.int s.Service.shard_groups);
                   ("clients", Json.int s.Service.shard_clients);
                   ("yields", Json.int s.Service.shard_yields);
                   ("switches", Json.int s.Service.shard_switches);
                 ])
             r.fleet_shards) );
    ]

let speed_row_json (r : speed_row) =
  Json.Obj
    [
      ("label", Json.Str r.speed_label);
      ("accesses", Json.int r.speed_accesses);
      ("iters", Json.int r.speed_iters);
      ("host_s", Json.float r.speed_host_s);
      ("accesses_per_s", Json.float r.accesses_per_s);
      ("minor_words_per_access", Json.float r.minor_words_per_access);
      ( "ceiling_minor_words_per_access",
        match speed_ceiling r.speed_label with
        | Some c -> Json.float c
        | None -> Json.Null );
      ("memo_stats", r.speed_memo);
    ]
