(** The multi-session recording service.

    The cloud side of §3.1 at fleet scale: many clients request recordings;
    the service multiplexes their sessions over one virtual timeline
    ({!Grt_sim.Sched}) and answers repeat requests from a content-addressed
    cache of already-signed blobs, so the expensive dry run happens once per
    distinct (workload, GPU, stack, wire format) and every other client
    pays only the attested download.

    Cross-session state (§7.3): sessions of the same (network, SKU) share
    one {!Spec_history} table — later recordings speculate confidently from
    the first access — and same-key sessions share a {!Memsync.Store} so a
    re-recording after eviction ships mostly hash references.

    Determinism: cache decisions are taken at client *arrival*, in arrival
    order, and recordings of a share group are serialized in ticket order
    assigned at decision time. A failed recording re-arms its entry by
    promoting the earliest coalesced waiter into the recorder role (it
    inherits the failed ticket's turnstile slot), mirroring sequential
    mode's retry at the next same-key arrival. The multiplexed and
    sequential execution modes therefore produce identical signed blobs
    and identical per-session counters (only waiting time and outcome
    labelling — [Cache_hit] vs [Coalesced] — differ), which the
    interleaving-determinism property test checks, lossy channels and
    bounded caches included. *)

type key = int64

val runtime_version : string
(** The GPU-stack identity baked into every cache key (the image name of
    {!Cloudvm.default_image}). *)

val cache_key : cfg:Mode.config -> sku:Grt_gpu.Sku.t -> net:Grt_mlfw.Network.t -> key
(** FNV-1a over (network, SKU, runtime version, recording-format mode
    flags). Wire-invariant knobs (dirty tracking) are excluded. *)

val key_label : cfg:Mode.config -> sku:Grt_gpu.Sku.t -> net:Grt_mlfw.Network.t -> string
(** Human-readable form of the key's components. *)

val recording_seed : key -> int64
(** The seed recordings under [key] run with. Key-derived — not
    client-derived — so the cached blob is a deterministic function of the
    key, whichever client triggers the recording. *)

type client_spec = {
  client_id : int;  (** unique per fleet *)
  arrival_ns : int64;  (** global virtual arrival time *)
  net : Grt_mlfw.Network.t;
  sku : Grt_gpu.Sku.t;
  profile : Grt_net.Profile.t;
  cfg : Mode.config;
  inject_fault_after : int option;
      (** armed only if this client ends up recording *)
}

type outcome =
  | Recorded of Orchestrate.record_outcome  (** this client ran the dry run *)
  | Cache_hit  (** served from a resident blob *)
  | Coalesced  (** waited on an in-flight recording, then served *)
  | Failed of string

val outcome_name : outcome -> string

val served : outcome -> bool
(** [Cache_hit] or [Coalesced]. *)

type session_report = {
  spec : client_spec;
  key : key;
  label : string;
  outcome : outcome;
  turnaround_s : float;
      (** session-clock time from arrival to served/recorded, including any
          coalescing wait *)
  blob_bytes : int;
  counters : Grt_sim.Counters.t;  (** this session's counter set *)
}

type t

val create : ?cache_capacity:int -> unit -> t
(** [cache_capacity] bounds resident entries (LRU by decision-time touch
    order, preferring victims idle since before the current run); 0
    (default) = unbounded. Per-key shared stores and per-group histories
    survive eviction — only the signed blob is dropped. *)

type shard_stat = {
  shard_index : int;
  shard_groups : int;  (** distinct share groups executed on this shard *)
  shard_clients : int;
  shard_yields : int;
  shard_switches : int;
}

type run_stats = {
  rs_mode : string;  (** ["sequential"], ["multiplexed"] or ["parallel"] *)
  rs_domains : int;  (** domains requested (1 unless mode is parallel) *)
  rs_parallel : bool;
      (** the shards actually ran on separate domains — [false] on 4.14's
          serial fallback or when only one shard materialized *)
  rs_backend : string option;  (** scheduler engine; [None] for sequential *)
  rs_virtual_ns : int64;  (** fleet makespan on the virtual timeline *)
  rs_yields : int;  (** task suspensions, summed over shards *)
  rs_switches : int;  (** task resumptions, summed over shards *)
  rs_shards : shard_stat list;  (** one row per executed shard *)
}

val run :
  ?backend:Grt_sim.Sched.backend ->
  ?sequential:bool ->
  ?observe:bool ->
  ?domains:int ->
  t ->
  client_spec list ->
  session_report list * run_stats
(** Process a fleet. Clients are ordered by (arrival, id) first. With
    [sequential] (default false) each session runs to completion at its
    arrival — the reference semantics; otherwise sessions are multiplexed
    over a virtual-time scheduler. Reports come back in arrival order. The
    service may be reused across runs — the cache and shared stores
    persist.

    [domains] (default 1; ignored when [sequential]) shards the fleet by
    share group across up to that many OCaml domains, one scheduler per
    shard. Cache decisions are still taken serially at plan time in
    arrival order, sessions that share any mutable state stay on one
    shard, and the per-domain planes are folded back in deterministic
    shard order — so outcomes, signed blobs, per-session counters and
    every [svc.*] total are identical to [~domains:1] (the qcheck fleet
    property pins this). On OCaml 4.14 the shards run serially with the
    same observable results. Raises [Invalid_argument] when [domains < 1].

    [observe] (default false) turns on the fleet observability plane for
    this run: per-session span tracers (one Perfetto track each, see
    {!fleet_tracks}), service-phase spans/markers, and the SLO histogram
    set exposed via {!observation}. Observation is write-only — outcomes,
    blobs and per-session counters are identical with it on or off. *)

val aggregate : t -> session_report list -> Grt_sim.Counters.t
(** Fleet-wide counter set: every session's counters merged
    ({!Grt_sim.Counters.merge_into}) plus the service's own [svc.*]
    counters. *)

val service_counters : t -> Grt_sim.Counters.t
(** The service's own counters ([svc.sessions], [svc.cache_hits],
    [svc.coalesced], [svc.recordings], [svc.evictions], [svc.failures],
    plus [svc.cache_misses] and — multiplexed runs only —
    [svc.promotions]). *)

val service_trace : t -> Grt_sim.Trace.t
(** The service's always-on bounded post-mortem ring (topic ["service"]):
    cache evictions, waiter promotions and entry re-arms as typed payloads,
    timestamped on the service-plane clock. Dump it next to the link/shim
    rings when a fleet run fails. *)

type stats = {
  sessions : int;
  recordings : int;
  cache_hits : int;
  cache_misses : int;  (** admissions that had to record (retries included) *)
  coalesced : int;
  promotions : int;  (** waiters promoted to recorder (multiplexed runs only) *)
  failures : int;
  evictions : int;
  resident : int;  (** entries currently in the cache *)
  resident_bytes : int;  (** signed-blob bytes held *)
}

val stats : t -> stats
val hit_rate : stats -> float

(** {2 The fleet observability plane}

    Enabled per run with [run ~observe:true]; everything below reads back
    what that run collected. The plane is write-only: its clock is advanced
    but never yielded, and nothing it records feeds back into decisions,
    seeds or counters — outcomes are bit-identical with it on or off. *)

type track = {
  track_client : int;
  track_arrival_ns : int64;  (** shift onto the fleet-global timeline *)
  track_tracer : Grt_sim.Tracer.t;
}

type observation = {
  obs_hists : Grt_sim.Hist.set;
      (** fleet SLO series: [Svc_turnaround_us], [Svc_ttfb_us],
          [Svc_coalesce_wait_us], [Svc_turnstile_wait_us],
          [Sched_runnable] *)
  obs_tracer : Grt_sim.Tracer.t;
      (** the service's own track: cache-lookup/evict/promotion markers on
          the service-plane clock *)
  mutable obs_tracks : track list;  (** per-session tracks, newest first *)
  obs_key_ttfb : (string, Grt_sim.Hist.t) Hashtbl.t;
  obs_key_turnaround : (string, Grt_sim.Hist.t) Hashtbl.t;
}

val observation : t -> observation option
(** The last run's observation; [None] when the run was unobserved. *)

val fleet_tracks : t -> Grt_sim.Tracer.track list
(** The last observed run as Perfetto tracks: tid 0 is the service plane,
    client [i] renders on lane [i+1] offset by its arrival (a promoted
    waiter's record tracer rides its own lane too). Empty when
    unobserved. Feed to {!Grt_sim.Tracer.tracks_chrome_json}. *)

type listing_row = {
  row_key : key;
  row_label : string;
  row_resident : bool;
  row_blob_bytes : int;
  row_hits : int;
  row_recordings : int;
  row_evictions : int;
}

val cache_listing : t -> listing_row list
(** Every key the service has ever recorded (resident or evicted), sorted
    by label — the [grt_fleet]/[grt_inspect] cache-contents view. *)

type fleet_options = {
  clients : int;
  zipf_s : float;  (** popularity skew over (net, sku) ranks *)
  nets : Grt_mlfw.Network.t list;
  skus : Grt_gpu.Sku.t list;
  fleet_cfg : Mode.config;
  mean_interarrival_s : float;
  fault_fraction : float;  (** clients that arm [inject_fault_after] *)
  degraded_fraction : float;  (** clients behind a lossy channel *)
  fleet_seed : int64;
}

val fastpath_cfg : Mode.config
(** [Ours_mds] + dedup + adaptive encoding — the fleet default. *)

val default_fleet : fleet_options
(** 10k clients, Zipf 1.1 over the full Zoo × SKU catalog, 5 ms mean
    interarrival, 5% fault clients, 10% degraded channels. *)

val zipf_fleet : fleet_options -> client_spec list
(** Deterministic fleet generation from [fleet_seed]: Zipf-popular
    (net, sku) picks, a WiFi-heavy profile mix with optional degradation,
    exponential interarrivals. *)
