(* Shared engine state of the cloud-side recorder, plus the validation
   machinery that every dispatch path needs: the outstanding-speculation
   queue, its drain (which raises [Mispredict]), and the asynchronous
   dispatch of a speculated commit. The commit state machine itself lives
   in [Drivershim]; the memory-sync flow in [Sync_flow]. This module has
   no [.mli] on purpose — it is the internal state spine of the [grt]
   library, and its record fields are accessed directly by the modules
   that compose it. *)

module Backend = Grt_driver.Backend
module Regs = Grt_gpu.Regs
module Sexpr = Grt_util.Sexpr
module Strutil = Grt_util.Strutil
module Link = Grt_net.Link
module Metrics = Grt_sim.Metrics
module Trace = Grt_sim.Trace
module Tracer = Grt_sim.Tracer
module Hist = Grt_sim.Hist

exception
  Mispredict of {
    site : string;
    reg : int;
    predicted : int64;
    actual : int64;
    valid_log : Recording.entry list;
        (* interactions validated before the failing commit — the prefix
           both parties replay locally to fast-forward (§4.2) *)
  }

type category = Init | Interrupt | Power | Polling | Other

let category_name = function
  | Init -> "Init"
  | Interrupt -> "Interrupt"
  | Power -> "Power state"
  | Polling -> "Polling"
  | Other -> "Other"

let all_categories = [ Init; Interrupt; Power; Polling; Other ]

type outstanding = {
  o_completion : int; (* ns, unboxed (paired with [Link.async_send_int]) *)
  o_dispatched : int; (* virtual time of the async dispatch, ns *)
  o_site : string;
  o_checks : (int * int64 * int64) list; (* reg, predicted, actual *)
  o_syms : Sexpr.sym list;
  o_log_mark : int; (* length of the log before this commit's entries *)
}

type thread = Main | Irq

type head = { mutable lo : int64; mutable hi : int64 }
(* Pending job-chain head, sniffed off js_head writes; shared between the
   live path and recovery replay (both go through [sniff]). *)

type t = {
  cfg : Mode.config;
  link : Link.t;
  gpushim : Gpushim.t;
  cloud_mem : Grt_gpu.Mem.t;
  metrics : Metrics.t option;
  trace : Grt_sim.Trace.t option;
  tracer : Tracer.t option;
  hists : Hist.set option;
  history : Spec_history.t;
  wire_overhead : int;
  downlink : Memsync.t;
  recovery : Recovery.t;
  sniff : int -> int64 -> unit;
  head : head;
  log : Recording.log; (* newest first; shared with [recovery] *)
  main_queue : Wire.pending list ref;
  irq_queue : Wire.pending list ref;
  mutable cur_thread : thread;
  mutable hot_stack : string list;
  mutable outstanding : outstanding list; (* oldest first *)
  mutable epoch_tainted : bool;
  mutable commits_total : int;
  mutable commits_speculated : int;
  mutable spec_rejected_nondet : int;
  mutable accesses_total : int;
  mutable accesses_deferred : int;
  by_category : (category, int ref) Hashtbl.t;
  mutable inject_countdown : int option;
  mutable suppress_read_log : int option;
  mutable segment_marks : int list; (* log positions of layer boundaries, newest first *)
  mutable in_poll_loop : bool;
      (* §4.3: speculation on polling-loop iterations would require
         predicting the iteration count, which is nondeterministic — the
         shim never speculates on in-loop reads. *)
}

let sniff_root_and_head ~gpushim ~downlink ~head reg v =
  (* Track page-table roots (for metastate classification, on both the
     downlink and the client's uplink) and the pending job-chain head. *)
  for as_idx = 0 to Regs.as_count - 1 do
    if reg = Regs.as_transtab_lo as_idx then begin
      let root = Int64.logand v (Int64.lognot 0xFFFL) in
      if not (Int64.equal root 0L) then begin
        let fmt = (Grt_gpu.Device.sku (Gpushim.device gpushim)).Grt_gpu.Sku.pt_format in
        Memsync.register_pt_root downlink ~fmt ~root_pa:root;
        Memsync.register_pt_root (Gpushim.uplink gpushim) ~fmt ~root_pa:root
      end
    end
  done;
  if reg = Regs.js_head_lo 0 || reg = Regs.js_head_next_lo 0 then head.lo <- v;
  if reg = Regs.js_head_hi 0 || reg = Regs.js_head_next_hi 0 then head.hi <- v

let create ~cfg ~link ~gpushim ~cloud_mem ?counters ?trace ?tracer ?hists ?history ?sync_store
    ?(wire_overhead = 0) ?(replay_prefix = []) () =
  let metrics = Option.map Metrics.of_counters counters in
  let downlink = Memsync.create ?shared:sync_store cfg in
  let head = { lo = 0L; hi = 0L } in
  let log = Recording.new_log () in
  let sniff = sniff_root_and_head ~gpushim ~downlink ~head in
  let recovery =
    Recovery.create ~cfg ~gpushim ~cloud_mem ~downlink ~clock:(Link.clock link) ?metrics ?trace
      ~log ~sniff replay_prefix
  in
  {
    cfg;
    link;
    gpushim;
    cloud_mem;
    metrics;
    trace;
    tracer;
    hists;
    history = (match history with Some h -> h | None -> Spec_history.create ());
    wire_overhead;
    downlink;
    recovery;
    sniff;
    head;
    log;
    main_queue = ref [];
    irq_queue = ref [];
    cur_thread = Main;
    hot_stack = [];
    outstanding = [];
    epoch_tainted = false;
    commits_total = 0;
    commits_speculated = 0;
    spec_rejected_nondet = 0;
    accesses_total = 0;
    accesses_deferred = 0;
    by_category = Hashtbl.create 8;
    inject_countdown = None;
    suppress_read_log = None;
    segment_marks = [];
    in_poll_loop = false;
  }

let count t key v = match t.metrics with Some m -> Metrics.add m key v | None -> ()

let queue_ref t = match t.cur_thread with Main -> t.main_queue | Irq -> t.irq_queue

let current_hot t = match t.hot_stack with fn :: _ -> Some fn | [] -> None

let category_of t ~is_poll =
  if is_poll then Polling
  else
    match current_hot t with
    | Some fn
      when Strutil.has_prefix "kbase_gpuprops" fn
           || Strutil.has_prefix "kbase_pm_hw_issues" fn
           || Strutil.has_prefix "kbase_pm_init_hw" fn ->
      Init
    | Some fn when Strutil.contains_sub "irq" fn -> Interrupt
    | Some fn when Strutil.has_prefix "kbase_pm_" fn -> Power
    | Some _ | None -> Other

let bump_category t cat =
  match Hashtbl.find_opt t.by_category cat with
  | Some r -> incr r
  | None -> Hashtbl.replace t.by_category cat (ref 1)

(* Speculation-policy shorthands over the shared history (§4.2). *)
let spec_k t = t.cfg.Mode.spec_history_k
let history_confident t site = Spec_history.confident t.history ~k:(spec_k t) site
let history_update t site values = Spec_history.observe t.history ~k:(spec_k t) site values
let history_forget t site = Spec_history.forget t.history site

let request_bytes t n = Wire.request_bytes ~overhead:t.wire_overhead n
let response_bytes t n = Wire.response_bytes ~overhead:t.wire_overhead n

let site_key t ~trigger queue =
  Wire.site_key ~fn:(Option.value ~default:"<cold>" (current_hot t)) ~trigger queue

let apply_now t wire = Gpushim.apply_accesses t.gpushim wire

let maybe_inject t (actuals : int64 array) =
  match t.inject_countdown with
  | Some 0 when Array.length actuals > 0 ->
    t.inject_countdown <- None;
    count t Metrics.Fault_injected 1;
    let flipped = Array.copy actuals in
    flipped.(0) <- Int64.logxor flipped.(0) 0x1L;
    flipped
  | Some 0 -> actuals (* hold until a commit that actually carries a read *)
  | Some n ->
    t.inject_countdown <- Some (n - 1);
    actuals
  | None -> actuals

(* Degraded-mode policy: while the link reports a persistently lossy
   channel, speculation is suspended and commits go out synchronously —
   optimistic work is cheap to start but expensive to roll back when the
   retransmitting channel keeps stretching validation latencies. *)
let degraded_now t = t.cfg.Mode.degraded_mode && Link.health t.link = Link.Degraded

let log_applied t queue (actuals : int64 array) =
  let rec go queue i =
    match queue with
    | [] -> ()
    | Wire.Qr { reg; _ } :: rest ->
      assert (i < Array.length actuals);
      if t.suppress_read_log <> Some reg then
        Recording.log_push t.log
          (Recording.Reg_read
             { reg; value = actuals.(i); verify = not (Regs.is_nondeterministic reg) });
      go rest (i + 1)
    | Wire.Qw { reg; expr } :: rest ->
      (* By apply time every referenced symbol is bound. *)
      let value = match Sexpr.eval expr with Some v -> v | None -> 0L in
      Recording.log_push t.log (Recording.Reg_write { reg; value });
      go rest i
  in
  go queue 0

(* ---- draining / validation ---- *)

(* Validate one outstanding speculative commit: wait until its response has
   landed, compare every prediction against the actual register value,
   confirm its symbols. Raises [Mispredict] — carrying the validated log
   prefix both sides replay locally (§4.2) — on the first wrong
   prediction. *)
let validate_one t o =
  Tracer.span_opt t.tracer ~cat:Tracer.Validate_speculation
    ~args:[ ("site", o.o_site) ]
    ~name:"validate" (fun () ->
      Link.wait_until_int t.link o.o_completion;
      Hist.record_opt t.hists Hist.Spec_validate_ns
        (Grt_sim.Clock.now_int (Link.clock t.link) - o.o_dispatched);
      List.iter
        (fun (reg, predicted, actual) ->
          if not (Int64.equal predicted actual) then begin
            count t Metrics.Spec_mispredicts 1;
            Trace.event_opt t.trace
              (Trace.Rollback { site = o.o_site; reg = Regs.name reg; predicted; actual });
            (* Everything logged before this commit is validated truth; the
               recovery replays it locally on both sides. *)
            let all = List.rev t.log.Recording.items in
            let rec take n = function
              | [] -> []
              | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
            in
            raise
              (Mispredict
                 { site = o.o_site; reg; predicted; actual; valid_log = take o.o_log_mark all })
          end)
        o.o_checks;
      List.iter Sexpr.confirm o.o_syms)

let drain t =
  let pending = t.outstanding in
  t.outstanding <- [];
  List.iter (validate_one t) pending;
  t.epoch_tainted <- false

(* Partial drain for the pipelining cap: validate the oldest outstanding
   commit only, in FIFO order. Unlike [drain] this leaves [epoch_tainted]
   alone — the epoch still holds unvalidated speculation. *)
let drain_oldest t =
  match t.outstanding with
  | [] -> ()
  | o :: rest ->
    t.outstanding <- rest;
    validate_one t o

(* High-water mark of speculative commits outstanding at once. Only tracked
   when pipelining is configured, so default (stop-and-wait, unbounded)
   runs keep byte-identical counter dumps. *)
let note_inflight_depth t =
  if t.cfg.Mode.max_inflight > 0 || Link.window t.link > 1 then
    match t.metrics with
    | Some m ->
      let depth = List.length t.outstanding in
      let hw = Metrics.get_int m Metrics.Spec_inflight_hw in
      if depth > hw then Metrics.add m Metrics.Spec_inflight_hw (depth - hw)
    | None -> ()

(* Ship a speculated commit asynchronously and queue it for validation when
   the response lands (shared by batch commits and offloaded polls). With
   [Mode.max_inflight > 0], first make room by validating the oldest
   outstanding commits — a misprediction surfacing here aborts the current
   commit exactly like one caught at a full drain. *)
let dispatch_speculative t ~site ~send ~recv ~checks ~syms ~log_mark ~bind =
  let cap = t.cfg.Mode.max_inflight in
  if cap > 0 then
    while List.length t.outstanding >= cap do
      drain_oldest t
    done;
  let dispatched = Grt_sim.Clock.now_int (Link.clock t.link) in
  let completion = Link.async_send_int t.link ~send_bytes:send ~recv_bytes:recv in
  bind ();
  t.outstanding <-
    t.outstanding
    @ [
        {
          o_completion = completion;
          o_dispatched = dispatched;
          o_site = site;
          o_checks = checks;
          o_syms = syms;
          o_log_mark = log_mark;
        };
      ];
  note_inflight_depth t;
  t.commits_speculated <- t.commits_speculated + 1;
  count t Metrics.Commits_speculated 1;
  Trace.event_opt t.trace (Trace.Speculate { site; checks = List.length checks })
