(** Misprediction recovery: local replay of the validated prefix (§4.2).

    After a misprediction (or a link outage), both parties fast-forward
    without the network: the client feeds the logged stimuli to its
    physical GPU, rebuilding its hardware state, while the cloud feeds the
    logged responses to the re-executing driver. Entries are appended to
    the shared interaction log as they replay, so the final recording is
    the validated prefix plus the live continuation.

    The module owns only the shrinking prefix; the log itself is a
    [Recording.entry list ref] shared with {!Drivershim} (newest first),
    and page-table-root / job-head sniffing on replayed writes is delegated
    back to the shim through the [sniff] callback — recovery replays
    through the same bookkeeping the live path uses, so going live after
    the prefix runs dry is seamless. *)

exception Recovery_diverged of string
(** Re-execution departed from the validated log — the driver asked for an
    access the prefix does not contain at this position. Indicates
    nondeterminism the recorder failed to forestall. *)

type t

val create :
  cfg:Mode.config ->
  gpushim:Gpushim.t ->
  cloud_mem:Grt_gpu.Mem.t ->
  downlink:Memsync.t ->
  clock:Grt_sim.Clock.t ->
  ?metrics:Grt_sim.Metrics.t ->
  ?trace:Grt_sim.Trace.t ->
  log:Recording.log ->
  sniff:(int -> int64 -> unit) ->
  Recording.entry list ->
  t
(** The trailing argument is the validated prefix to replay, oldest first.
    Each replayed entry charges [Grt_sim.Costs.replayer_step_ns] to
    [clock] and bumps [recovery.entries] / [recovery.pages]. [trace]
    receives a [Replay_live] event when the prefix runs dry. *)

val active : t -> bool
(** Entries remain to replay; the shim must route accesses here. *)

val pop_memloads : t -> unit
(** Install any memory snapshots sitting at the head of the prefix. Called
    before each access dispatch so a trailing [Mem_load] cannot strand the
    replay in recovery mode. *)

val prefix_pop : t -> Recording.entry option
(** Consume the next non-[Mem_load] entry ([None] once live). *)

val read : t -> int -> Grt_util.Sexpr.t
(** Serve a register read from the log (always a concrete constant) while
    replaying it against the client GPU. Raises {!Recovery_diverged} on any
    mismatch with the logged entry. *)

val write : t -> int -> unit
(** Replay a register write: the logged value goes to the client GPU and
    through the shim's [sniff] bookkeeping. Raises {!Recovery_diverged} on
    mismatch. *)

val poll :
  t ->
  reg:int ->
  mask:int64 ->
  cond:Grt_driver.Backend.poll_cond ->
  max_iters:int ->
  spin_ns:int64 ->
  Grt_driver.Backend.poll_result
(** Re-run an offloaded polling loop locally against the client GPU (the
    log stores the loop, not its iterations). Raises {!Recovery_diverged}
    on mismatch. *)

val wait_irq : t -> timeout_us:int -> Grt_gpu.Device.irq_line option
(** Replay an interrupt wait; the client's metastate dump is applied
    locally with no network traffic. Raises {!Recovery_diverged} on
    mismatch or if no interrupt arrives. *)
