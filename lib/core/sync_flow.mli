(** Memory-synchronization flow over the recorder engine state (§5).

    The cloud keeps the GPU {e metastate} (page tables, shaders, command
    streams) mirrored on the client: {!down} ships the dirty metastate
    pages right before each job-start register write, {!up} brings the
    client's GPU-written words (job statuses) back with each forwarded
    interrupt. Both directions charge the link for the wire form (delta +
    optional compression per [Mode.compress_dumps]; whole-image bytes when
    the mode forgoes meta-only sync) and account [sync.*] metrics; the
    downlink dump is also appended to the interaction log as a [Mem_load]
    entry so recovery and replay can reproduce it. *)

val down : Shim_engine.t -> unit
(** Cloud→client metastate dump. Under continuous validation the dumped
    pages are CPU-protected until {!up} returns them (§5). *)

val up : Shim_engine.t -> unit
(** Client→cloud dump of GPU-written status words; installs the payload
    into cloud memory and teaches the downlink baseline so the same pages
    are not shipped back down. *)
