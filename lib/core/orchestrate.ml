module Link = Grt_net.Link
module Sku = Grt_gpu.Sku
module Network = Grt_mlfw.Network
module Metrics = Grt_sim.Metrics
module Tracer = Grt_sim.Tracer
module Hist = Grt_sim.Hist
module Ctx = Session_ctx

let cloud_signing_key : Grt_tee.Crypto.key = "grt-cloud-recording-service-v1"

let cloud_measurement = Cloudvm.default_image.Cloudvm.measurement

type record_outcome = {
  blob : bytes;
  recording : Recording.t;
  total_s : float;
  client_energy_j : float;
  blocking_rtts : int;
  sync_wire_bytes : int;
  sync_raw_bytes : int;
  commits_total : int;
  commits_speculated : int;
  speculated_by_category : (Drivershim.category * int) list;
  spec_rejected_nondet : int;
  accesses_total : int;
  poll_instances : int;
  poll_offloaded : int;
  rollbacks : int;
  rollback_s : float;
  retransmits : int;
  link_downs : int;
  counters : Grt_sim.Counters.t;
  segments : bytes list;
      (* per-layer recording segments when recorded with [`Per_layer]
         granularity (Figure 2); empty otherwise *)
  tracer : Grt_sim.Tracer.t option;
  hists : Grt_sim.Hist.set option;
}

(* Misprediction recovery (§4.2): both parties restart and replay the
   validated log locally — no network round trips. The cloud side dominates:
   driver reload plus JIT recompilation of the workload's kernels. *)
let rollback_cost_s ~entries_so_far ~jit_kernels =
  let driver_reload = 0.5 in
  let jit = float_of_int jit_kernels *. Int64.to_float Grt_sim.Costs.jit_compile_ns_per_kernel *. 1e-9 in
  (* Re-preparing the GPU jobs covered by the validated log dominates: the
     runtime re-emits and re-optimizes each one while fast-forwarding. *)
  let recompile = float_of_int entries_so_far *. 7.5e-4 in
  driver_reload +. jit +. recompile

(* Mispredictions can surface wrapped in [Fun.Finally_raised] when the
   validating drain runs inside a cleanup handler (hot-function exit). *)
let rec mispredict_prefix = function
  | Drivershim.Mispredict { valid_log; _ } -> Some valid_log
  | Fun.Finally_raised e -> mispredict_prefix e
  | _ -> None

(* A [Link_down] can likewise surface through a cleanup handler. *)
let rec is_link_down = function
  | Link.Link_down _ -> true
  | Fun.Finally_raised e -> is_link_down e
  | _ -> false

(* ---- the recording pipeline: establish → boot → attempt loop →
   finalize/sign, all sharing one Session_ctx ---- *)

(* Attested channel establishment (§7.1): one-time handshake cost. *)
let establish (ctx : Ctx.t) =
  Tracer.span_opt ctx.tracer ~cat:Tracer.Establish ~name:"establish" @@ fun () ->
  let channel =
    match
      Grt_tee.Channel.establish ~link:ctx.link ~verification_key:cloud_signing_key
        ~vm_signing_key:cloud_signing_key ~vm_measurement:cloud_measurement
        ~expected:cloud_measurement
        ~nonce:(Grt_util.Hashing.combine ctx.seed 0x6e6f6e6365L)
    with
    | Ok c -> c
    | Error e -> failwith ("attestation failed: " ^ e)
  in
  ignore (Grt_tee.Channel.session_key channel)

(* Boot the recording VM: the image picks the device tree (and thus the
   driver binding) matching the client's attested GPU (§6). *)
let boot (ctx : Ctx.t) =
  Tracer.span_opt ctx.tracer ~cat:Tracer.Boot ~name:"boot" @@ fun () ->
  let vm =
    match Cloudvm.boot Cloudvm.default_image ~client_gpu_id:ctx.sku.Sku.gpu_id with
    | Ok vm -> vm
    | Error e -> failwith (Format.asprintf "cloud VM boot failed: %a" Cloudvm.pp_boot_error e)
  in
  (match Cloudvm.begin_session vm ~client:(Printf.sprintf "client-%Lx" ctx.seed) with
  | Ok () -> ()
  | Error e -> failwith (Format.asprintf "cloud VM refused session: %a" Cloudvm.pp_boot_error e));
  vm

(* The dry-run attempt loop: record until the workload completes, rolling
   both parties back onto the validated log prefix after a misprediction
   (§4.2) or a link outage. *)
let attempt_loop (ctx : Ctx.t) ~devicetree =
  let rec attempt n prefix =
    if n > 8 then failwith "recording failed: too many rollbacks";
    let gpushim =
      Gpushim.create ~clock:ctx.clock ~sku:ctx.sku ~energy:ctx.energy ~counters:ctx.counters
        ~session_salt:(Ctx.session_salt ctx) ~cfg:ctx.cfg ()
    in
    Gpushim.isolate gpushim;
    let cloud_mem = Grt_gpu.Mem.create () in
    let shim =
      Drivershim.create ~cfg:ctx.cfg ~link:ctx.link ~gpushim ~cloud_mem ~counters:ctx.counters
        ~trace:ctx.trace ?tracer:ctx.tracer ?hists:ctx.hists ~history:ctx.history
        ?sync_store:ctx.sync_store ~wire_overhead:Grt_tee.Channel.wire_overhead
        ~replay_prefix:prefix ()
    in
    (match ctx.inject_fault_after with
    | Some k ->
      Drivershim.inject_fault_after shim k;
      ctx.inject_fault_after <- None
    | None -> ());
    let regions = ref [] in
    let on_region (r : Grt_runtime.Session.region) =
      let mr = Memsync.region_of_session r in
      regions := mr :: !regions;
      Memsync.register_region (Drivershim.downlink shim) mr;
      Memsync.register_region (Gpushim.uplink gpushim) mr
    in
    let drv =
      Grt_driver.Kbase.create ~backend:(Drivershim.backend shim) ~mem:cloud_mem
        ~coherency_ace:devicetree.Cloudvm.coherency_ace
    in
    try
      Grt_driver.Kbase.init drv;
      let session = Grt_runtime.Session.create ~drv ~as_idx:1 ~clock:ctx.clock ~on_region () in
      (* Dry run: no weights, no input — the cloud never sees them (§2.3). *)
      let runner = Grt_mlfw.Runner.setup ~session ~plan:ctx.plan ~seed:ctx.seed ~load_weights:false in
      (match ctx.granularity with
      | `Monolithic -> Grt_mlfw.Runner.run runner
      | `Per_layer ->
        Grt_mlfw.Runner.run
          ~between_layers:(fun ~prev:_ ~next:_ -> Drivershim.mark_segment shim)
          runner);
      Grt_driver.Kbase.shutdown drv;
      Drivershim.finalize shim;
      (gpushim, shim, session, runner)
    with
    | e when mispredict_prefix e <> None ->
      let valid_log = Option.get (mispredict_prefix e) in
      (* Both parties restart and fast-forward through the validated log
         locally (§4.2). The dominant cost — driver reload and GPU job
         re-preparation on the cloud — is charged here; the log replay
         itself advances the clock as it runs in the next attempt. *)
      Tracer.span_opt ctx.tracer ~cat:Tracer.Rollback_recovery
        ~args:[ ("cause", "mispredict") ] ~name:"rollback" (fun () ->
          Hist.record_opt ctx.hists Hist.Rollback_depth (List.length valid_log);
          Ctx.charge_rollback ctx
            (rollback_cost_s ~entries_so_far:(List.length valid_log) ~jit_kernels:10));
      Gpushim.release gpushim;
      attempt (n + 1) valid_log
    | e when is_link_down e ->
      (* The ARQ gave up mid-session. Recovery mirrors a misprediction:
         restart from the longest validated log prefix and fast-forward
         locally while the channel re-establishes. Responses to commits
         still in flight were never validated, so they are replayed live. *)
      let valid_log = Drivershim.validated_prefix shim in
      Metrics.add ctx.metrics Metrics.Recovery_link_downs 1;
      Tracer.span_opt ctx.tracer ~cat:Tracer.Rollback_recovery
        ~args:[ ("cause", "link_down") ] ~name:"rollback" (fun () ->
          Hist.record_opt ctx.hists Hist.Rollback_depth (List.length valid_log);
          Ctx.charge_rollback ctx
            (rollback_cost_s ~entries_so_far:(List.length valid_log) ~jit_kernels:10));
      Gpushim.release gpushim;
      attempt (n + 1) valid_log
  in
  attempt 0 []

(* Assemble and sign the recording; build the slot binding table; ship the
   blob to the client and account the stats of the whole session. *)
let finalize_and_sign (ctx : Ctx.t) ~vm ~gpushim ~shim ~runner =
  let plan = ctx.plan in
  let slot_of_region kind name =
    let r = Grt_mlfw.Runner.region runner name in
    {
      Recording.slot_name = name;
      kind;
      va = r.Grt_runtime.Session.va;
      pa = r.Grt_runtime.Session.pa;
      actual_bytes = r.Grt_runtime.Session.actual_bytes;
      model_bytes = r.Grt_runtime.Session.model_bytes;
    }
  in
  let slots =
    slot_of_region `Input plan.Network.input_buffer
    :: slot_of_region `Output plan.Network.output_buffer
    :: List.map (slot_of_region `Param) plan.Network.weight_buffers
  in
  let recording =
    {
      Recording.workload = ctx.net.Network.name;
      gpu_id = ctx.sku.Sku.gpu_id;
      entries = Array.of_list (Drivershim.entries shim);
      slots;
    }
  in
  (* Per-layer granularity (Figure 2): cut the log at the layer marks and
     sign each segment as its own recording, with its own slot table. *)
  let segments =
    match ctx.granularity with
    | `Monolithic -> []
    | `Per_layer ->
      let entries = recording.Recording.entries in
      let bounds = (0 :: Drivershim.segment_marks shim) @ [ Array.length entries ] in
      let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | _ -> [] in
      let weight_for_layer layer suffix =
        let name = Printf.sprintf "%s.%02d" suffix layer in
        if List.mem name plan.Network.weight_buffers then [ slot_of_region `Param name ] else []
      in
      List.mapi
        (fun i (lo, hi) ->
          (* Segment i covers layer i of the plan. *)
          let jobs_of_layer =
            List.filter (fun (j : Network.job_spec) -> j.Network.layer = i) plan.Network.jobs
          in
          let input_name =
            match jobs_of_layer with j :: _ -> j.Network.input | [] -> plan.Network.input_buffer
          in
          let output_name =
            match jobs_of_layer with j :: _ -> j.Network.output | [] -> plan.Network.output_buffer
          in
          let seg =
            {
              Recording.workload = Printf.sprintf "%s/layer%02d" ctx.net.Network.name i;
              gpu_id = ctx.sku.Sku.gpu_id;
              entries = Array.sub entries lo (hi - lo);
              slots =
                ({ (slot_of_region `Input input_name) with Recording.kind = `Input }
                :: { (slot_of_region `Output output_name) with Recording.kind = `Output }
                :: (weight_for_layer i "w" @ weight_for_layer i "b"));
            }
          in
          Recording.sign ~key:cloud_signing_key seg)
        (pairs bounds)
  in
  let blob = Recording.sign ~key:cloud_signing_key recording in
  (* The client downloads and verifies the recording. *)
  Link.one_way_to_client ctx.link ~bytes:(Bytes.length blob);
  (match Recording.verify_and_parse ~key:cloud_signing_key blob with
  | Ok _ -> ()
  | Error e -> failwith ("client rejected recording: " ^ e));
  Gpushim.release gpushim;
  Cloudvm.end_session vm;
  let get = Ctx.stat ctx in
  {
    blob;
    recording;
    total_s = Grt_sim.Clock.now_s ctx.clock;
    client_energy_j = Grt_sim.Energy.total_j ctx.energy;
    blocking_rtts = get Metrics.Net_blocking_rtts;
    sync_wire_bytes = get Metrics.Sync_down_wire_bytes + get Metrics.Sync_up_wire_bytes;
    sync_raw_bytes = get Metrics.Sync_down_raw_bytes + get Metrics.Sync_up_raw_bytes;
    commits_total = Drivershim.commits_total shim;
    commits_speculated = Drivershim.commits_speculated shim;
    speculated_by_category = Drivershim.speculated_by_category shim;
    spec_rejected_nondet = Drivershim.spec_rejected_nondet shim;
    accesses_total = Drivershim.accesses_total shim;
    poll_instances = get Metrics.Poll_instances;
    poll_offloaded = get Metrics.Poll_offloaded;
    rollbacks = ctx.rollbacks;
    rollback_s = ctx.rollback_s;
    retransmits = get Metrics.Net_retransmits;
    link_downs = get Metrics.Recovery_link_downs;
    counters = ctx.counters;
    segments;
    tracer = ctx.tracer;
    hists = ctx.hists;
  }

(* Failure post-mortem: the whole retained event ring, grouped by topic and
   oldest-first within each, so the sequence that led to the failure reads
   top to bottom. (The old dump printed a newest-first slice of 32, which
   interleaved topics and cut off exactly the establishment-era events that
   explain mispredict storms.) *)
let dump_trace (ctx : Ctx.t) =
  let tr = ctx.trace in
  let retained = Grt_sim.Trace.retained tr in
  if retained > 0 then begin
    let evicted = Grt_sim.Trace.count tr - retained in
    Format.eprintf "--- recording failed; %d recorder event(s)%s ---@." retained
      (if evicted > 0 then
         Printf.sprintf " (%d older evicted; raise --trace-capacity)" evicted
       else "");
    List.iter
      (fun topic ->
        Format.eprintf "[%s]@." topic;
        List.iter
          (fun e -> Format.eprintf "  %a@." Grt_sim.Trace.pp_event e)
          (Grt_sim.Trace.all ~topic tr))
      (Grt_sim.Trace.topics tr);
    Format.eprintf "--- end of trace ---@."
  end

(* Re-entrant per-session pipeline state: the stage reached so far plus the
   artifacts later stages need, so a session is a value that can be stepped
   (and multiplexed by {!Grt_sim.Sched}) rather than a call stack. Stage
   boundaries are yield points — free for a solo session. *)
module Pipeline = struct
  type stage =
    | Created
    | Established
    | Booted of Cloudvm.t
    | Attempted of {
        vm : Cloudvm.t;
        gpushim : Gpushim.t;
        shim : Drivershim.t;
        runner : Grt_mlfw.Runner.t;
      }
    | Finished of record_outcome

  type t = { ctx : Ctx.t; mutable stage : stage }

  let create ctx = { ctx; stage = Created }
  let ctx t = t.ctx

  let stage_name t =
    match t.stage with
    | Created -> "created"
    | Established -> "established"
    | Booted _ -> "booted"
    | Attempted _ -> "attempted"
    | Finished _ -> "finished"

  let step t =
    match t.stage with
    | Created ->
      establish t.ctx;
      t.stage <- Established;
      `More
    | Established ->
      let vm = boot t.ctx in
      t.stage <- Booted vm;
      `More
    | Booted vm ->
      let gpushim, shim, _session, runner =
        attempt_loop t.ctx ~devicetree:(Cloudvm.selected_tree vm)
      in
      t.stage <- Attempted { vm; gpushim; shim; runner };
      `More
    | Attempted { vm; gpushim; shim; runner } ->
      let outcome = finalize_and_sign t.ctx ~vm ~gpushim ~shim ~runner in
      t.stage <- Finished outcome;
      `Done outcome
    | Finished outcome -> `Done outcome

  let run t =
    let rec go () =
      match step t with
      | `More ->
        Grt_sim.Clock.yield t.ctx.Ctx.clock;
        go ()
      | `Done outcome -> outcome
    in
    try go ()
    with e ->
      (* Session post-mortem (mispredict storms, Recovery_diverged, link
         collapse): surface the link/shim event ring. *)
      let bt = Printexc.get_raw_backtrace () in
      dump_trace t.ctx;
      Printexc.raise_with_backtrace e bt
end

(* Serve an already-recorded blob to a fresh client: the attested channel
   still has to be established and the download + verification still happen
   — only the dry run is skipped (the service's cache-hit path). *)
let serve_cached (ctx : Ctx.t) ~blob =
  establish ctx;
  Link.one_way_to_client ctx.link ~bytes:(Bytes.length blob);
  match Recording.verify_and_parse ~key:cloud_signing_key blob with
  | Ok _ -> ()
  | Error e -> failwith ("client rejected recording: " ^ e)

let record ?history ?inject_fault_after ?inject_outage_after ?config ?(granularity = `Monolithic)
    ?window ?trace_capacity ?observe ~profile ~mode ~sku ~net ~seed () =
  let cfg = match config with Some c -> c | None -> Mode.default_config mode in
  let options =
    {
      Ctx.default_options with
      Ctx.history;
      inject_fault_after;
      window = (match window with Some w -> w | None -> Ctx.default_options.Ctx.window);
      trace_capacity;
      observe = (match observe with Some o -> o | None -> false);
    }
  in
  let ctx = Ctx.create ~options ~cfg ~profile ~sku ~net ~seed ~granularity () in
  (match inject_outage_after with Some k -> Link.inject_outage_after ctx.link k | None -> ());
  Pipeline.run (Pipeline.create ctx)

type replay_outcome = { r : Replayer.result; setup_s : float }

(* The client TEE's own signing identity for replay-attestation tokens
   (distinct from the cloud's recording-service key). *)
let client_attestation_key : Grt_tee.Crypto.key = "grt-client-tee-attestation-v1"

let compile_recording ?tracer ~blob () =
  match Replay_prog.of_blob ?tracer ~key:cloud_signing_key blob with
  | Ok prog -> prog
  | Error e -> raise (Replayer.Rejected e)

let replay_gpushim ~sku ~seed () =
  let clock = Grt_sim.Clock.create () in
  let energy = Grt_sim.Energy.create clock in
  let cfg = Mode.default_config Mode.Ours_mds in
  let gpushim =
    Gpushim.create ~clock ~sku ~energy
      ~session_salt:(Grt_util.Hashing.combine seed 0x7265706CL)
      ~cfg ()
  in
  (gpushim, clock, energy)

let replay_compiled ~sku ~prog ~input ~params ~seed () =
  let gpushim, clock, energy = replay_gpushim ~sku ~seed () in
  let t0 = Grt_sim.Clock.now_s clock in
  let r = Replayer.replay_compiled ~gpushim ~prog ~input ~params ~energy () in
  { r; setup_s = Grt_sim.Clock.now_s clock -. t0 -. r.Replayer.delay_s }

let replay_recording ~sku ~blob ~input ~params ~seed () =
  let clock = Grt_sim.Clock.create () in
  let energy = Grt_sim.Energy.create clock in
  let cfg = Mode.default_config Mode.Ours_mds in
  let gpushim =
    Gpushim.create ~clock ~sku ~energy
      ~session_salt:(Grt_util.Hashing.combine seed 0x7265706CL)
      ~cfg ()
  in
  let t0 = Grt_sim.Clock.now_s clock in
  let r =
    Replayer.replay ~gpushim ~signing_key:cloud_signing_key ~blob ~input ~params ~energy ()
  in
  { r; setup_s = Grt_sim.Clock.now_s clock -. t0 -. r.Replayer.delay_s }

let replay_segments ~sku ~blobs ~input ~params ~seed () =
  let clock = Grt_sim.Clock.create () in
  let energy = Grt_sim.Energy.create clock in
  let cfg = Mode.default_config Mode.Ours_mds in
  let gpushim =
    Gpushim.create ~clock ~sku ~energy
      ~session_salt:(Grt_util.Hashing.combine seed 0x7365676CL)
      ~cfg ()
  in
  let t0 = Grt_sim.Clock.now_s clock in
  let r =
    Replayer.replay_segments ~gpushim ~signing_key:cloud_signing_key ~blobs ~input ~params
      ~energy ()
  in
  { r; setup_s = Grt_sim.Clock.now_s clock -. t0 -. r.Replayer.delay_s }
