(** GPUShim — the client-TEE half of the recorder (§3.2, §6).

    Instantiated as a TEE module on the client: it locks the GPU into the
    secure world for the duration of a record (or replay) session, applies
    the cloud's committed register accesses to the physical GPU in exact
    program order, runs offloaded polling loops, forwards interrupts, and
    ships the client-side memory deltas (GPU-written job status) back up.

    Committed writes may carry symbolic expressions referencing reads from
    the same batch; the shim resolves them incrementally as it applies the
    batch — the client never sees an unresolvable (i.e. speculative) value. *)

type wire_expr =
  | Lit of int64
  | Batch of int  (** value of the [n]-th read in this batch *)
  | Bop of Grt_util.Sexpr.binop * wire_expr * wire_expr
  | Unot of wire_expr

type wire_access = W_read of int | W_write of int * wire_expr

type t

val create :
  clock:Grt_sim.Clock.t ->
  sku:Grt_gpu.Sku.t ->
  ?energy:Grt_sim.Energy.t ->
  ?counters:Grt_sim.Counters.t ->
  session_salt:int64 ->
  cfg:Mode.config ->
  unit ->
  t
(** Builds the client's memory, device and TZASC state. *)

val device : t -> Grt_gpu.Device.t
val mem : t -> Grt_gpu.Mem.t
val worlds : t -> Grt_tee.Worlds.t
val monitor : t -> Grt_tee.Monitor.t
val uplink : t -> Memsync.t
(** The client→cloud sync state; the orchestrator registers regions here. *)

val isolate : t -> unit
(** SMC to the secure monitor: lock GPU MMIO, the GPU memory carveout and
    the GPU's power/clock controls to the secure world, and reroute the
    GPU's interrupt lines to the TEE (§6). *)

val release : t -> unit
val isolated : t -> bool

exception Not_isolated

val apply_accesses : t -> wire_access list -> int64 array
(** Apply a committed batch in order; returns the concrete value of every
    read, in batch order (a fresh array, never mutated afterwards). Raises
    {!Not_isolated} if the GPU is not locked to the TEE, and [Failure] on
    unresolvable write expressions. *)

val run_poll :
  t ->
  reg:int ->
  mask:int64 ->
  cond:Grt_driver.Backend.poll_cond ->
  max_iters:int ->
  spin_ns:int64 ->
  (int * int64) option
(** Execute an offloaded polling loop against the device; [None] on
    timeout. *)

val wait_irq : t -> timeout_ns:int64 -> Grt_gpu.Device.irq_line option

val upload_meta : t -> Memsync.sync_payload
(** Client→cloud dump: metastate pages changed since the last exchange
    (e.g. job statuses the GPU wrote). *)

val load_pages : t -> Memsync.sync_payload -> unit
(** Install a cloud→client dump into client memory (tagged payloads are
    decoded through the uplink's receiver store). *)

val load_records : t -> (int64 * Memsync.encoding * bytes) list -> (int64 * bytes) list
(** Install a logged [Mem_load_enc] entry (validated-prefix replay):
    decode against client memory and the receiver store, returning the
    full installed contents. *)

val power_cycle : t -> unit
(** Cold power cycle (pristine register file, clean dirty ledger), for
    batch replay sessions that reuse one shim. Raises {!Not_isolated} when
    the GPU is not locked to the TEE. Costs no virtual time — a no-op on a
    fresh shim, so single replays are unaffected. *)

val reset_gpu : t -> unit
(** Soft-reset and quiesce the GPU (used before replay-based recovery and
    around replay sessions). *)
