module Backend = Grt_driver.Backend
module Device = Grt_gpu.Device
module Sexpr = Grt_util.Sexpr
module Metrics = Grt_sim.Metrics

let backend ?counters dev =
  let metrics = Option.map Metrics.of_counters counters in
  let count key = match metrics with Some m -> Metrics.incr m key | None -> () in
  let clock = Device.clock dev in
  let read_reg reg =
    count Metrics.Reg_reads;
    Sexpr.const (Device.read_reg dev reg)
  in
  let write_reg reg v =
    count Metrics.Reg_writes;
    Device.write_reg dev reg (Sexpr.force_exn v)
  in
  let poll_reg ~reg ~mask ~cond ~max_iters ~spin_ns =
    count Metrics.Poll_instances;
    let rec loop i =
      if i >= max_iters then Backend.Poll_timeout
      else begin
        let v = Device.read_reg dev reg in
        count Metrics.Reg_reads;
        count Metrics.Poll_iters;
        let ok =
          match cond with
          | Backend.Bits_set -> Int64.logand v mask = mask
          | Backend.Bits_clear -> Int64.logand v mask = 0L
        in
        if ok then Backend.Poll_ok { iters = i + 1; value = v }
        else begin
          Grt_sim.Clock.advance_ns clock spin_ns;
          loop (i + 1)
        end
      end
    in
    loop 0
  in
  {
    Backend.read_reg;
    write_reg;
    force = Sexpr.force_exn;
    poll_reg;
    delay_us = (fun us -> Grt_sim.Clock.advance_ns clock (Int64.of_int (us * 1000)));
    lock = (fun _ -> ());
    unlock = (fun _ -> ());
    externalize = (fun _ -> ());
    now_us = (fun () -> Int64.div (Grt_sim.Clock.now_ns clock) 1000L);
    wait_irq =
      (fun ~timeout_us ->
        count Metrics.Irq_waits;
        Device.wait_for_irq dev ~timeout_ns:(Int64.of_int (timeout_us * 1000)));
    irq_scope = (fun f -> f ());
    enter_hot = (fun _ -> ());
    exit_hot = (fun _ -> ());
  }

type run_result = {
  output : float array;
  delay_s : float;
  job_delay_s : float;
  setup_s : float;
  energy_j : float option;
}

let run_inference ?energy ?counters ~clock ~sku ~net ~seed ~input () =
  let mem = Grt_gpu.Mem.create () in
  let dev =
    Device.create ?energy ~clock ~mem ~sku
      ~session_salt:(Grt_util.Hashing.fnv1a_string ("native:" ^ net.Grt_mlfw.Network.name))
      ()
  in
  let b = backend ?counters dev in
  let drv = Grt_driver.Kbase.create ~backend:b ~mem ~coherency_ace:true in
  let start = Grt_sim.Clock.now_s clock in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  Grt_driver.Kbase.init drv;
  let session = Grt_runtime.Session.create ~drv ~as_idx:1 ~clock ?energy () in
  let plan = Grt_mlfw.Network.expand net in
  let runner = Grt_mlfw.Runner.setup ~session ~plan ~seed ~load_weights:true in
  Grt_mlfw.Runner.set_input runner input;
  let setup_done = Grt_sim.Clock.now_s clock in
  Grt_mlfw.Runner.run runner;
  let output = Grt_mlfw.Runner.get_output runner in
  Grt_driver.Kbase.shutdown drv;
  let finish = Grt_sim.Clock.now_s clock in
  {
    output;
    delay_s = finish -. start;
    job_delay_s = finish -. setup_done;
    setup_s = setup_done -. start;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }
