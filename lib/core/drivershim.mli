(** DriverShim — the cloud half of the recorder (§4, §5).

    Sits at the bottom of the cloud VM's GPU stack, interposing every
    register access the (instrumented) driver makes and forwarding it to the
    client GPU over the network, while logging everything into the
    recording. Implements, per the active {!Mode.config}:

    - {b deferral}: per-thread queues of register accesses executed
      symbolically, committed in batches at control-dependency, kernel-API,
      explicit-delay and hot-function boundaries (§4.1);
    - {b speculation}: commits whose register-read outcomes were identical in
      the last [k] occurrences at the same driver site go out asynchronously
      with predicted values; validation happens when the response lands, and
      mismatches raise {!Mispredict} so the orchestrator can roll both sides
      back (§4.2). Speculative values are tainted; commits or dumps that
      depend on them stall until validation, so speculative state never
      reaches the client;
    - {b polling offload}: simple polling loops ship to the client in one
      round trip (speculated when history permits) (§4.3);
    - {b memory synchronization}: metastate dumps ship right before each
      job-start register write; client dumps come back with each forwarded
      interrupt (§5). *)

exception
  Mispredict of {
    site : string;
    reg : int;
    predicted : int64;
    actual : int64;
    valid_log : Recording.entry list;
        (** interactions validated before the failing commit — the prefix
            both parties replay locally to fast-forward (§4.2) *)
  }

exception Recovery_diverged of string
(** Re-export of {!Recovery.Recovery_diverged}: re-execution departed from
    the validated log during recovery — indicates nondeterminism the
    recorder failed to forestall. *)

type category = Init | Interrupt | Power | Polling | Other

val category_name : category -> string
val all_categories : category list

(** Speculation history — keyed by driver commit site. Sharable across
    record runs of different workloads (§7.3 "retaining register access
    history in between"). The equation with {!Spec_history.t} is public so
    a {!Session_ctx} can carry the table without depending on this
    module. *)
type history = Spec_history.t

val fresh_history : unit -> history

type t

val create :
  cfg:Mode.config ->
  link:Grt_net.Link.t ->
  gpushim:Gpushim.t ->
  cloud_mem:Grt_gpu.Mem.t ->
  ?counters:Grt_sim.Counters.t ->
  ?trace:Grt_sim.Trace.t ->
  ?tracer:Grt_sim.Tracer.t ->
  ?hists:Grt_sim.Hist.set ->
  ?history:history ->
  ?sync_store:Memsync.Store.s ->
  ?wire_overhead:int ->
  ?replay_prefix:Recording.entry list ->
  unit ->
  t
(** [replay_prefix] puts the shim in recovery mode: until the prefix is
    exhausted, register accesses are served from the validated log — the
    client feeds the recorded stimuli to its physical GPU and the cloud
    feeds the recorded responses to the driver, with no network traffic
    (§4.2's rollback). Once the prefix runs dry the shim goes live.
    [trace] receives commit / speculate / rollback events under topic
    ["shim"]. [tracer] gets nested spans per commit / validation /
    offloaded poll; [hists] gets commit batch sizes and speculation
    validation latencies. All observers default to off. *)

val backend : t -> Grt_driver.Backend.t
(** The instrumented-driver interface. *)

val downlink : t -> Memsync.t
(** Cloud→client sync state; the orchestrator registers regions here (and in
    the GPUShim uplink). *)

val finalize : t -> unit
(** Commit any leftover accesses and drain outstanding speculative commits.
    Must be called before reading the log. *)

val entries : t -> Recording.entry list
(** The interaction log, in order. *)

val validated_prefix : t -> Recording.entry list
(** The longest log prefix whose client responses have been validated: the
    full log when no speculative commit is outstanding, else everything
    before the oldest one. This is the safe resume point after a
    [Grt_net.Link.Link_down], mirroring a misprediction's [valid_log]. *)

val mark_segment : t -> unit
(** Note a recording-segment boundary at the current log position — the
    per-layer granularity of Figure 2 (a developer choice, §2.3). *)

val segment_marks : t -> int list
(** Boundary positions, in order. *)

val commits_total : t -> int
val commits_speculated : t -> int
val speculated_by_category : t -> (category * int) list
val spec_rejected_nondet : t -> int
(** Commits that failed the speculation criteria due to nondeterministic
    register values (§7.3). *)

val accesses_deferred : t -> int
val accesses_total : t -> int

val inject_fault_after : t -> int -> unit
(** Corrupt the client's response to the [n]-th speculated commit (counted
    from now) — the §7.3 misprediction experiment. *)
