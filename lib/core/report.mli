(** Exportable session reports.

    One JSON document per recording session, assembled from an
    {!Orchestrate.record_outcome}: identity (workload / mode / profile /
    seed), headline summary numbers, the full counter set, and — when the
    session was recorded with [observe] — the latency/size histograms and
    the per-phase span attribution. The schema is versioned and checked by
    {!validate} so downstream tooling can fail fast on drift. *)

val schema : string
(** ["grt-session-report"]. *)

val version : int
(** Current schema version ([1]). *)

val of_outcome :
  workload:string ->
  mode:string ->
  profile:string ->
  seed:int64 ->
  Orchestrate.record_outcome ->
  Grt_util.Json.t
(** Build the report document. [histograms] and [phases] members are
    present iff the outcome carries a {!Grt_sim.Hist.set} /
    {!Grt_sim.Tracer.t} (i.e. the session ran with [observe]). *)

val validate : Grt_util.Json.t -> (unit, string) result
(** Structural schema check: schema/version match, the session and summary
    members carry the required typed fields, metrics is an object of
    numbers, and histograms/phases (when present) have well-formed
    entries. *)

val pp_timeline : Format.formatter -> Grt_util.Json.t -> unit
(** Human-readable view of a report: the session line, the per-phase
    self/total attribution (when [phases] is present) and histogram
    quantiles (when [histograms] is present). Optional sections that are
    absent print as ["n/a"] rather than failing, so the view tolerates
    reports from older or newer writers (pair with {!validate_lenient}). *)

val validate_lenient : Grt_util.Json.t -> (unit, string) result
(** Version-skew-tolerant check for session reports: the schema name must
    match but any numeric version is accepted, and session / summary /
    histograms / phases are each optional — only type-checked when
    present. Use for display paths ([grt_inspect --timeline]); keep
    {!validate} for round-trip tests and CI gates. *)

(** {2 Fleet reports}

    One JSON document per [grt_fleet] run: the fleet row, the service
    counter rollup, and — when the run was observed — SLO latency
    quantiles, per-key rollups and memo-cache profiles. *)

val fleet_schema : string
(** ["grt-fleet-report"]. *)

val fleet_version : int
(** Current fleet schema version ([1]). *)

val of_fleet :
  fleet:Grt_util.Json.t ->
  stats:Service.stats ->
  ?memo:Grt_util.Json.t ->
  observation:Service.observation option ->
  unit ->
  Grt_util.Json.t
(** Build the fleet report. [fleet] is the experiment's own row object
    (embedded verbatim); [stats] becomes the [service] member (counts plus
    hit rate). With an [observation], the [slo] member carries p50/p90/p99
    summaries of the fleet histogram set and [per_key] the per-label
    turnaround/TTFB rollups. [memo] (the {!Grt_util.Memo_stats.to_json}
    snapshot) is embedded when given. *)

val validate_fleet : Grt_util.Json.t -> (unit, string) result
(** Structural check for fleet reports: schema/version match, [fleet] is a
    flat object of scalars, [service] carries the required numeric counts,
    and [slo]/[per_key]/[memo] (when present) have well-formed entries. *)

val pp_fleet : Format.formatter -> Grt_util.Json.t -> unit
(** Human-readable fleet view: service headline, SLO quantile table,
    hottest keys and memo-cache profile. Absent optional sections print as
    ["n/a"]. *)
