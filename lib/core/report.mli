(** Exportable session reports.

    One JSON document per recording session, assembled from an
    {!Orchestrate.record_outcome}: identity (workload / mode / profile /
    seed), headline summary numbers, the full counter set, and — when the
    session was recorded with [observe] — the latency/size histograms and
    the per-phase span attribution. The schema is versioned and checked by
    {!validate} so downstream tooling can fail fast on drift. *)

val schema : string
(** ["grt-session-report"]. *)

val version : int
(** Current schema version ([1]). *)

val of_outcome :
  workload:string ->
  mode:string ->
  profile:string ->
  seed:int64 ->
  Orchestrate.record_outcome ->
  Grt_util.Json.t
(** Build the report document. [histograms] and [phases] members are
    present iff the outcome carries a {!Grt_sim.Hist.set} /
    {!Grt_sim.Tracer.t} (i.e. the session ran with [observe]). *)

val validate : Grt_util.Json.t -> (unit, string) result
(** Structural schema check: schema/version match, the session and summary
    members carry the required typed fields, metrics is an object of
    numbers, and histograms/phases (when present) have well-formed
    entries. *)

val pp_timeline : Format.formatter -> Grt_util.Json.t -> unit
(** Human-readable view of a report: the session line, the per-phase
    self/total attribution (when [phases] is present) and histogram
    quantiles (when [histograms] is present). *)
