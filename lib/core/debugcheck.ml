module Regs = Grt_gpu.Regs

type divergence =
  | Value_differs of { index : int; reg : int; reference : int64; subject : int64 }
  | Structure_differs of { index : int; reference : string; subject : string }
  | Subject_truncated of { at : int }
  | Subject_longer of { extra : int }

let entry_shape = function
  | Recording.Reg_write { reg; _ } -> Printf.sprintf "write %s" (Regs.name reg)
  | Recording.Reg_read { reg; _ } -> Printf.sprintf "read %s" (Regs.name reg)
  | Recording.Poll { reg; _ } -> Printf.sprintf "poll %s" (Regs.name reg)
  | Recording.Wait_irq { line } -> Printf.sprintf "wait_irq %d" line
  | Recording.Mem_load { pages } -> Printf.sprintf "mem_load (%d pages)" (List.length pages)
  | Recording.Mem_load_enc { records } ->
    Printf.sprintf "mem_load_enc (%d pages)" (List.length records)

let pp_divergence ppf = function
  | Value_differs { index; reg; reference; subject } ->
    Format.fprintf ppf "entry %d: %s read %#Lx on the reference device but %#Lx on the subject"
      index (Regs.name reg) reference subject
  | Structure_differs { index; reference; subject } ->
    Format.fprintf ppf "entry %d: reference performs '%s' but subject performs '%s'" index
      reference subject
  | Subject_truncated { at } -> Format.fprintf ppf "subject log ends early at entry %d" at
  | Subject_longer { extra } -> Format.fprintf ppf "subject log has %d extra entries" extra

type report = {
  compared : int;
  matching : int;
  first_divergence : divergence option;
  value_divergences : int;
  divergent_regs : (int * int) list;
}

(* Two entries "structurally" agree when they are the same kind of
   interaction on the same register; values of verified reads must also
   agree. Writes carry driver-computed values which may legitimately embed
   nondeterministic inputs (the flush id in the job config), so only exact
   structural identity is required of them when values differ on
   nondet-tainted registers. *)
let compare_entry index a b =
  match (a, b) with
  | ( Recording.Reg_read { reg = r1; value = v1; verify = true },
      Recording.Reg_read { reg = r2; value = v2; verify = true } )
    when r1 = r2 ->
    if Int64.equal v1 v2 then Ok ()
    else Error (Value_differs { index; reg = r1; reference = v1; subject = v2 })
  | Recording.Reg_read { reg = r1; verify = false; _ }, Recording.Reg_read { reg = r2; verify = false; _ }
    when r1 = r2 ->
    Ok ()
  | Recording.Reg_write { reg = r1; value = v1 }, Recording.Reg_write { reg = r2; value = v2 }
    when r1 = r2 ->
    (* Job-config writes embed the nondeterministic flush id (§7.3). *)
    if Int64.equal v1 v2 || r1 = Regs.js_config 0 || r1 = Regs.js_config_next 0 then Ok ()
    else Error (Value_differs { index; reg = r1; reference = v1; subject = v2 })
  | Recording.Poll { reg = r1; _ }, Recording.Poll { reg = r2; _ } when r1 = r2 -> Ok ()
  | Recording.Wait_irq { line = l1 }, Recording.Wait_irq { line = l2 } when l1 = l2 -> Ok ()
  | Recording.Mem_load _, Recording.Mem_load _ -> Ok ()
  | Recording.Mem_load_enc _, Recording.Mem_load_enc _ -> Ok ()
  | _ ->
    Error (Structure_differs { index; reference = entry_shape a; subject = entry_shape b })

let compare_logs ~reference ~subject =
  let ra = reference.Recording.entries and sa = subject.Recording.entries in
  let n = min (Array.length ra) (Array.length sa) in
  let matching = ref 0 in
  let first = ref None in
  let value_divs = ref 0 in
  let by_reg = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    match compare_entry i ra.(i) sa.(i) with
    | Ok () -> incr matching
    | Error d ->
      if !first = None then first := Some d;
      (match d with
      | Value_differs { reg; _ } ->
        incr value_divs;
        Hashtbl.replace by_reg reg (1 + Option.value ~default:0 (Hashtbl.find_opt by_reg reg))
      | _ -> ())
  done;
  let first =
    match !first with
    | Some _ as d -> d
    | None ->
      if Array.length sa < Array.length ra then Some (Subject_truncated { at = Array.length sa })
      else if Array.length sa > Array.length ra then
        Some (Subject_longer { extra = Array.length sa - Array.length ra })
      else None
  in
  let divergent_regs =
    Hashtbl.fold (fun reg c acc -> (reg, c) :: acc) by_reg []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    compared = n;
    matching = !matching;
    first_divergence = first;
    value_divergences = !value_divs;
    divergent_regs;
  }

let healthy r = r.first_divergence = None

let pp_report ppf r =
  if healthy r then
    Format.fprintf ppf "healthy: %d/%d interactions match the reference" r.matching r.compared
  else begin
    Format.fprintf ppf "DIVERGENT: %d/%d interactions match; %d differing register values@\n"
      r.matching r.compared r.value_divergences;
    (match r.first_divergence with
    | Some d -> Format.fprintf ppf "first: %a@\n" pp_divergence d
    | None -> ());
    List.iteri
      (fun i (reg, count) ->
        if i < 5 then Format.fprintf ppf "  %-24s %d divergent reads@\n" (Regs.name reg) count)
      r.divergent_regs
  end
