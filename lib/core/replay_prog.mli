(** The replay compiler (ROADMAP item 2).

    Lowers a verified {!Recording.t} into a flat preprocessed program the
    replayer executes without re-parsing the blob or re-decoding memsync
    wire records: consecutive register writes fuse into one run, polls
    remember their first-success iteration from the previous execution
    (falling back to a live spin on mismatch), and the memory image is
    decoded once at compile time wherever the records are
    position-independent. Compile once, replay many — the batch fast path.

    Verification of version-2 blobs is {e streaming}: {!of_blob} checks the
    signed header only, and the executor ({!Replayer.replay_compiled})
    checks each chunk's hash just before that chunk's ops run. Version-1
    blobs are verified in full up front (their MAC covers the whole body)
    and compile to a single pre-checked group. *)

type op =
  | Write_run of { regs : int array; values : int64 array }
      (** fused run of consecutive register writes *)
  | Read of { reg : int; value : int64; verify : bool; index : int }
  | Poll of {
      reg : int;
      mask : int64;
      cond : Recording.poll_cond;
      max_iters : int;
      spin_ns : int64;
      index : int;
      mutable hint : int;
          (** first-success iteration of the last execution; -1 = unknown.
              The executor updates it after every poll. *)
    }
  | Wait_irq of { want : Grt_gpu.Device.irq_line; line : int; index : int }
  | Load_static of {
      pages : (int64 * bytes) array;
      learn : bool;
      mutable stamps : (Grt_gpu.Mem.t * int64 array) option;
    }
      (** memory image precomputed at compile time; [learn] = feed bodies to
          the execution store (true for tagged records, false for plain
          [Mem_load]s, matching the interpreter). [stamps] holds the target
          memory and the per-page generation recorded right after the last
          install: on the next execution against the same memory, pages
          whose generation is unchanged provably still hold this image and
          are skipped. *)
  | Load_dynamic of {
      records : (int64 * Memsync.encoding * bytes) list;
      index : int;
      mutable cached : (int64 * bytes) array option;
          (** installed by the executor after the first (live) decode *)
    }

type group = {
  ops : op array;
  chunk : Recording.chunk option;
      (** the signed chunk backing these ops; [None] for v1 blobs *)
  mutable checked : bool;  (** chunk hash verified (streaming, once) *)
}

type stats = {
  entries : int;
  ops : int;
  fused_writes : int;  (** register writes absorbed into multi-write runs *)
  static_pages : int;  (** memory-image pages decoded at compile time *)
  dynamic_loads : int;  (** entries that must decode against live memory once *)
  polls : int;
}

type t = {
  source : Recording.t;
  root : int64;  (** Merkle root over chunk hashes — the identity attested *)
  wire_version : int;
  groups : group array;
  stats : stats;
}

val source : t -> Recording.t
val root : t -> int64
val wire_version : t -> int
val stats : t -> stats

val compile : ?tracer:Grt_sim.Tracer.t -> Recording.verified -> t

val of_blob : ?tracer:Grt_sim.Tracer.t -> key:Grt_tee.Crypto.key -> bytes -> (t, string) result
(** [parse_signed] + [compile]: header-verified, chunk hashes left to the
    executor's streaming check. *)
