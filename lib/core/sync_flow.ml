open Shim_engine
module Link = Grt_net.Link
module Metrics = Grt_sim.Metrics

let chain_va t = Int64.logor t.head.lo (Int64.shift_left t.head.hi 32)

(* Wire cost of the metastate payload. Tagged payloads carry their own
   accounting; the historical uncompressed path charges full pages plus a
   header per page. *)
let meta_wire t (payload : Memsync.sync_payload) =
  if payload.Memsync.tagged || t.cfg.Mode.compress_dumps then payload.Memsync.wire_bytes
  else
    payload.Memsync.raw_bytes + (Memsync.per_page_header * List.length payload.Memsync.records)

let enc_key = function
  | Memsync.Enc_raw -> Metrics.Sync_enc_raw
  | Memsync.Enc_raw_rc -> Metrics.Sync_enc_raw_rc
  | Memsync.Enc_delta -> Metrics.Sync_enc_delta
  | Memsync.Enc_delta_rc -> Metrics.Sync_enc_delta_rc
  | Memsync.Enc_hash_ref -> Metrics.Sync_enc_hash_ref

let payload_metrics t (payload : Memsync.sync_payload) =
  count t Metrics.Sync_pages_visited payload.Memsync.visited;
  count t Metrics.Sync_pages_meta payload.Memsync.total;
  List.iter
    (fun (r : Memsync.page_record) ->
      count t (enc_key r.Memsync.enc) 1;
      (* cross-session dedup hits: counted only when they occur, so solo
         sessions never materialize these counter cells *)
      if r.Memsync.cross then begin
        count t Metrics.Sync_cross_hits 1;
        count t Metrics.Sync_cross_saved_bytes
          (Memsync.tagged_record_wire ~pfn:r.Memsync.pfn ~body:r.Memsync.body - r.Memsync.wire)
      end;
      Hist.record_opt t.hists Hist.Sync_page_wire r.Memsync.wire)
    payload.Memsync.records

let down t =
  Tracer.span_opt t.tracer ~cat:Tracer.Memsync_down ~name:"sync_down" @@ fun () ->
  let payload = Memsync.sync_meta t.downlink t.cloud_mem in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_down_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire t payload + data_bytes + t.wire_overhead in
  count t Metrics.Sync_down_events 1;
  count t Metrics.Sync_down_wire_bytes wire;
  count t Metrics.Sync_down_raw_bytes (payload.Memsync.raw_bytes + data_bytes);
  payload_metrics t payload;
  Hist.record_opt t.hists Hist.Sync_down_wire wire;
  Link.one_way_to_client t.link ~bytes:wire;
  Gpushim.load_pages t.gpushim payload;
  if payload.Memsync.records <> [] then
    Recording.log_push t.log
      (if payload.Memsync.tagged then
         Recording.Mem_load_enc { records = Memsync.wire_records payload }
       else Recording.Mem_load { pages = Memsync.pages payload });
  (* Continuous validation (§5): the dumped metastate now belongs to the
     GPU; unmap it from the CPU until the job interrupt returns it. *)
  if t.cfg.Mode.continuous_validation then
    Grt_gpu.Mem.protect_pages t.cloud_mem (Memsync.meta_pfns t.downlink t.cloud_mem)

let up t =
  Tracer.span_opt t.tracer ~cat:Tracer.Memsync_up ~name:"sync_up" @@ fun () ->
  if t.cfg.Mode.continuous_validation then Grt_gpu.Mem.unprotect_all t.cloud_mem;
  let payload = Gpushim.upload_meta t.gpushim in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_up_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire t payload + data_bytes + t.wire_overhead in
  count t Metrics.Sync_up_events 1;
  count t Metrics.Sync_up_wire_bytes wire;
  count t Metrics.Sync_up_raw_bytes (payload.Memsync.raw_bytes + data_bytes);
  payload_metrics t payload;
  Hist.record_opt t.hists Hist.Sync_up_wire wire;
  Link.one_way_from_client t.link ~bytes:wire;
  (* Install the client's changes (job status words) and teach the downlink
     baseline so they are not shipped back. *)
  Memsync.apply t.downlink t.cloud_mem payload;
  List.iter
    (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data)
    (Memsync.pages payload)
