open Shim_engine
module Link = Grt_net.Link
module Metrics = Grt_sim.Metrics

let chain_va t = Int64.logor t.head.lo (Int64.shift_left t.head.hi 32)

let down t =
  Tracer.span_opt t.tracer ~cat:Tracer.Memsync_down ~name:"sync_down" @@ fun () ->
  let payload = Memsync.sync_meta t.downlink t.cloud_mem in
  let meta_wire =
    if t.cfg.Mode.compress_dumps then payload.Memsync.wire_bytes
    else payload.Memsync.raw_bytes + (12 * List.length payload.Memsync.pages)
  in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_down_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire + data_bytes + t.wire_overhead in
  count t Metrics.Sync_down_events 1;
  count t Metrics.Sync_down_wire_bytes wire;
  count t Metrics.Sync_down_raw_bytes (payload.Memsync.raw_bytes + data_bytes);
  Hist.record_opt t.hists Hist.Sync_down_wire wire;
  Link.one_way_to_client t.link ~bytes:wire;
  Gpushim.load_pages t.gpushim payload;
  if payload.Memsync.pages <> [] then
    t.log := Recording.Mem_load { pages = payload.Memsync.pages } :: !(t.log);
  (* Continuous validation (§5): the dumped metastate now belongs to the
     GPU; unmap it from the CPU until the job interrupt returns it. *)
  if t.cfg.Mode.continuous_validation then
    Grt_gpu.Mem.protect_pages t.cloud_mem (Memsync.meta_pfns t.downlink t.cloud_mem)

let up t =
  Tracer.span_opt t.tracer ~cat:Tracer.Memsync_up ~name:"sync_up" @@ fun () ->
  if t.cfg.Mode.continuous_validation then Grt_gpu.Mem.unprotect_all t.cloud_mem;
  let payload = Gpushim.upload_meta t.gpushim in
  let meta_wire =
    if t.cfg.Mode.compress_dumps then payload.Memsync.wire_bytes
    else payload.Memsync.raw_bytes + (12 * List.length payload.Memsync.pages)
  in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_up_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire + data_bytes + t.wire_overhead in
  count t Metrics.Sync_up_events 1;
  count t Metrics.Sync_up_wire_bytes wire;
  count t Metrics.Sync_up_raw_bytes (payload.Memsync.raw_bytes + data_bytes);
  Hist.record_opt t.hists Hist.Sync_up_wire wire;
  Link.one_way_from_client t.link ~bytes:wire;
  (* Install the client's changes (job status words) and teach the downlink
     baseline so they are not shipped back. *)
  Memsync.apply t.cloud_mem payload;
  List.iter
    (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data)
    payload.Memsync.pages
