module Backend = Grt_driver.Backend
module Regs = Grt_gpu.Regs
module Sexpr = Grt_util.Sexpr
module Link = Grt_net.Link

exception
  Mispredict of {
    site : string;
    reg : int;
    predicted : int64;
    actual : int64;
    valid_log : Recording.entry list;
        (** interactions validated before the failing commit — the prefix
            both parties replay locally to fast-forward (§4.2) *)
  }

exception Recovery_diverged of string

type category = Init | Interrupt | Power | Polling | Other

let category_name = function
  | Init -> "Init"
  | Interrupt -> "Interrupt"
  | Power -> "Power state"
  | Polling -> "Polling"
  | Other -> "Other"

let all_categories = [ Init; Interrupt; Power; Polling; Other ]

type history = (string, int64 array list) Hashtbl.t

let fresh_history () : history = Hashtbl.create 128

type pending = Qr of { reg : int; sym : Sexpr.sym } | Qw of { reg : int; expr : Sexpr.t }

type outstanding = {
  o_completion : int64;
  o_site : string;
  o_checks : (int * int64 * int64) list; (* reg, predicted, actual *)
  o_syms : Sexpr.sym list;
  o_log_mark : int; (* length of the log before this commit's entries *)
}

type thread = Main | Irq

type t = {
  cfg : Mode.config;
  link : Link.t;
  gpushim : Gpushim.t;
  cloud_mem : Grt_gpu.Mem.t;
  counters : Grt_sim.Counters.t option;
  history : history;
  wire_overhead : int;
  downlink : Memsync.t;
  main_queue : pending list ref;
  irq_queue : pending list ref;
  mutable cur_thread : thread;
  mutable hot_stack : string list;
  mutable outstanding : outstanding list; (* oldest first *)
  mutable epoch_tainted : bool;
  mutable log : Recording.entry list; (* newest first *)
  mutable commits_total : int;
  mutable commits_speculated : int;
  mutable spec_rejected_nondet : int;
  mutable accesses_total : int;
  mutable accesses_deferred : int;
  by_category : (category, int ref) Hashtbl.t;
  mutable inject_countdown : int option;
  mutable last_head_lo : int64;
  mutable last_head_hi : int64;
  mutable suppress_read_log : int option;
  mutable segment_marks : int list; (* log positions of layer boundaries, newest first *)
  mutable prefix : Recording.entry list;
      (* misprediction recovery: validated interactions to replay locally
         (oldest first); empty once live *)
  mutable in_poll_loop : bool;
      (* §4.3: speculation on polling-loop iterations would require
         predicting the iteration count, which is nondeterministic — the
         shim never speculates on in-loop reads. *)
      (* register whose reads are represented by a Poll entry rather than
         individual Reg_read entries (replay re-iterates the loop itself) *)
}

let create ~cfg ~link ~gpushim ~cloud_mem ?counters ?history ?(wire_overhead = 0)
    ?(replay_prefix = []) () =
  {
    cfg;
    link;
    gpushim;
    cloud_mem;
    counters;
    history = (match history with Some h -> h | None -> fresh_history ());
    wire_overhead;
    downlink = Memsync.create cfg;
    main_queue = ref [];
    irq_queue = ref [];
    cur_thread = Main;
    hot_stack = [];
    outstanding = [];
    epoch_tainted = false;
    log = [];
    commits_total = 0;
    commits_speculated = 0;
    spec_rejected_nondet = 0;
    accesses_total = 0;
    accesses_deferred = 0;
    by_category = Hashtbl.create 8;
    inject_countdown = None;
    last_head_lo = 0L;
    last_head_hi = 0L;
    suppress_read_log = None;
    segment_marks = [];
    prefix = replay_prefix;
    in_poll_loop = false;
  }

let downlink t = t.downlink

let count t name v = match t.counters with Some c -> Grt_sim.Counters.add c name v | None -> ()

let queue_ref t = match t.cur_thread with Main -> t.main_queue | Irq -> t.irq_queue

let current_hot t = match t.hot_stack with fn :: _ -> Some fn | [] -> None

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let category_of t ~is_poll =
  if is_poll then Polling
  else
    match current_hot t with
    | Some fn when has_prefix "kbase_gpuprops" fn || has_prefix "kbase_pm_hw_issues" fn
                   || has_prefix "kbase_pm_init_hw" fn ->
      Init
    | Some fn when contains_sub "irq" fn -> Interrupt
    | Some fn when has_prefix "kbase_pm_" fn -> Power
    | Some _ | None -> Other

let bump_category t cat =
  match Hashtbl.find_opt t.by_category cat with
  | Some r -> incr r
  | None -> Hashtbl.replace t.by_category cat (ref 1)

(* ---- speculation history ---- *)

let history_lookup t site = Option.value ~default:[] (Hashtbl.find_opt t.history site)

let history_update t site values =
  let prev = history_lookup t site in
  let keep = max 1 t.cfg.Mode.spec_history_k in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  Hashtbl.replace t.history site (take keep (values :: prev))

let history_forget t site = Hashtbl.remove t.history site

let history_confident t site =
  let k = t.cfg.Mode.spec_history_k in
  let entries = history_lookup t site in
  if List.length entries < k then None
  else
    match entries with
    | first :: rest -> if List.for_all (fun v -> v = first) rest then Some first else None
    | [] -> None

(* ---- wire conversion ---- *)

exception Need_drain

let to_wire queue =
  let batch_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let n_reads = ref 0 in
  List.iter
    (function
      | Qr { sym; _ } ->
        Hashtbl.replace batch_index sym.Sexpr.id !n_reads;
        incr n_reads
      | Qw _ -> ())
    queue;
  let rec conv = function
    | Sexpr.Const v -> Gpushim.Lit v
    | Sexpr.Sym s -> (
      match Hashtbl.find_opt batch_index s.Sexpr.id with
      | Some i -> Gpushim.Batch i
      | None -> (
        match s.Sexpr.binding with
        | Some v when not s.Sexpr.speculative -> Gpushim.Lit v
        | Some _ -> raise Need_drain
        | None -> failwith "DriverShim: write references unbound symbol outside batch"))
    | Sexpr.Bin (op, a, b) -> Gpushim.Bop (op, conv a, conv b)
    | Sexpr.Un (Sexpr.Not, a) -> Gpushim.Unot (conv a)
  in
  List.map
    (function
      | Qr { reg; _ } -> Gpushim.W_read reg
      | Qw { reg; expr } -> Gpushim.W_write (reg, conv expr))
    queue

let request_bytes t n_accesses = 24 + (14 * n_accesses) + t.wire_overhead

let response_bytes t n_reads = 16 + (8 * n_reads) + t.wire_overhead

(* ---- draining / validation ---- *)

let drain t =
  let pending = t.outstanding in
  t.outstanding <- [];
  List.iter
    (fun o ->
      Link.wait_until t.link o.o_completion;
      List.iter
        (fun (reg, predicted, actual) ->
          if not (Int64.equal predicted actual) then begin
            count t "spec.mispredicts" 1;
            (* Everything logged before this commit is validated truth; the
               recovery replays it locally on both sides. *)
            let all = List.rev t.log in
            let rec take n = function
              | [] -> []
              | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
            in
            raise
              (Mispredict
                 { site = o.o_site; reg; predicted; actual; valid_log = take o.o_log_mark all })
          end)
        o.o_checks;
      List.iter Sexpr.confirm o.o_syms)
    pending;
  t.epoch_tainted <- false

(* ---- memory synchronization (§5) ---- *)

let chain_va t = Int64.logor t.last_head_lo (Int64.shift_left t.last_head_hi 32)

let sync_down t =
  let payload = Memsync.sync_meta t.downlink t.cloud_mem in
  let meta_wire =
    if t.cfg.Mode.compress_dumps then payload.Memsync.wire_bytes
    else payload.Memsync.raw_bytes + (12 * List.length payload.Memsync.pages)
  in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_down_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire + data_bytes + t.wire_overhead in
  count t "sync.down_events" 1;
  count t "sync.down_wire_bytes" wire;
  count t "sync.down_raw_bytes" (payload.Memsync.raw_bytes + data_bytes);
  Link.one_way_to_client t.link ~bytes:wire;
  Gpushim.load_pages t.gpushim payload;
  if payload.Memsync.pages <> [] then
    t.log <- Recording.Mem_load { pages = payload.Memsync.pages } :: t.log;
  (* Continuous validation (§5): the dumped metastate now belongs to the
     GPU; unmap it from the CPU until the job interrupt returns it. *)
  if t.cfg.Mode.continuous_validation then
    Grt_gpu.Mem.protect_pages t.cloud_mem (Memsync.meta_pfns t.downlink t.cloud_mem)

let sync_up t =
  if t.cfg.Mode.continuous_validation then Grt_gpu.Mem.unprotect_all t.cloud_mem;
  let payload = Gpushim.upload_meta t.gpushim in
  let meta_wire =
    if t.cfg.Mode.compress_dumps then payload.Memsync.wire_bytes
    else payload.Memsync.raw_bytes + (12 * List.length payload.Memsync.pages)
  in
  let data_bytes =
    if Mode.meta_only_sync t.cfg.Mode.mode then 0
    else Memsync.naive_up_bytes t.downlink t.cloud_mem ~chain_va:(chain_va t)
  in
  let wire = meta_wire + data_bytes + t.wire_overhead in
  count t "sync.up_events" 1;
  count t "sync.up_wire_bytes" wire;
  count t "sync.up_raw_bytes" (payload.Memsync.raw_bytes + data_bytes);
  Link.one_way_from_client t.link ~bytes:wire;
  (* Install the client's changes (job status words) and teach the downlink
     baseline so they are not shipped back. *)
  Memsync.apply t.cloud_mem payload;
  List.iter
    (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data)
    payload.Memsync.pages

(* ---- committing ---- *)

let log_applied t queue actuals =
  let rec go queue actuals =
    match queue with
    | [] -> ()
    | Qr { reg; _ } :: rest -> (
      match actuals with
      | v :: more ->
        if t.suppress_read_log <> Some reg then
          t.log <-
            Recording.Reg_read { reg; value = v; verify = not (Regs.is_nondeterministic reg) }
            :: t.log;
        go rest more
      | [] -> assert false)
    | Qw { reg; expr } :: rest ->
      (* By apply time every referenced symbol is bound. *)
      let value = match Sexpr.eval expr with Some v -> v | None -> 0L in
      t.log <- Recording.Reg_write { reg; value } :: t.log;
      go rest actuals
  in
  go queue actuals

let site_key t ~trigger queue =
  let fn = Option.value ~default:"<cold>" (current_hot t) in
  let sig_hash =
    List.fold_left
      (fun acc q ->
        let v = match q with Qr { reg; _ } -> (reg * 2) + 1 | Qw { reg; _ } -> reg * 2 in
        Grt_util.Hashing.combine acc (Int64.of_int v))
      (Grt_util.Hashing.fnv1a_string fn)
      queue
  in
  Printf.sprintf "%s@%s#%Lx" fn trigger sig_hash

let apply_now t wire = Gpushim.apply_accesses t.gpushim wire

let read_syms queue =
  List.filter_map (function Qr { reg; sym } -> Some (reg, sym) | Qw _ -> None) queue

let maybe_inject t actuals =
  match (t.inject_countdown, actuals) with
  | Some 0, v :: rest ->
    t.inject_countdown <- None;
    count t "fault.injected" 1;
    Int64.logxor v 0x1L :: rest
  | Some 0, [] -> [] (* hold until a commit that actually carries a read *)
  | Some n, _ ->
    t.inject_countdown <- Some (n - 1);
    actuals
  | None, _ -> actuals

(* Degraded-mode policy: while the link reports a persistently lossy
   channel, speculation is suspended and commits go out synchronously —
   optimistic work is cheap to start but expensive to roll back when the
   retransmitting channel keeps stretching validation latencies. *)
let degraded_now t = t.cfg.Mode.degraded_mode && Link.health t.link = Link.Degraded

let commit t ~trigger =
  let qr = queue_ref t in
  let queue = List.rev !qr in
  qr := [];
  if queue <> [] then begin
    t.commits_total <- t.commits_total + 1;
    count t "commits.total" 1;
    count t "commits.accesses" (List.length queue);
    if t.epoch_tainted && t.outstanding <> [] then begin
      count t "spec.epoch_stalls" 1;
      drain t
    end;
    let wire = try to_wire queue with Need_drain ->
      count t "spec.dep_stalls" 1;
      drain t;
      to_wire queue
    in
    let site = site_key t ~trigger queue in
    let reads = read_syms queue in
    let n_reads = List.length reads in
    let nondet = List.exists (fun (reg, _) -> Regs.is_nondeterministic reg) reads in
    let confident = if nondet then None else history_confident t site in
    let send = request_bytes t (List.length queue) in
    let recv = response_bytes t n_reads in
    let speculate_values =
      if (not (Mode.speculation t.cfg.Mode.mode)) || t.in_poll_loop then None
      else if degraded_now t then begin
        count t "spec.degraded_suppressed" 1;
        None
      end
      else if n_reads = 0 then Some [||] (* write-only commits go out asynchronously *)
      else confident
    in
    if Mode.speculation t.cfg.Mode.mode && nondet then begin
      t.spec_rejected_nondet <- t.spec_rejected_nondet + 1;
      count t "spec.rejected_nondet" 1
    end;
    match speculate_values with
    | Some predicted when Array.length predicted = n_reads ->
      let log_mark = List.length t.log in
      let actuals = apply_now t wire in
      let actuals_checked = maybe_inject t actuals in
      let completion = Link.async_send t.link ~send_bytes:send ~recv_bytes:recv in
      List.iteri
        (fun i (_, sym) -> Sexpr.bind sym predicted.(i) ~speculative:true)
        reads;
      let checks =
        List.mapi (fun i (reg, _) -> (reg, predicted.(i), List.nth actuals_checked i)) reads
      in
      t.outstanding <-
        t.outstanding
        @ [
            {
              o_completion = completion;
              o_site = site;
              o_checks = checks;
              o_syms = List.map snd reads;
              o_log_mark = log_mark;
            };
          ];
      t.commits_speculated <- t.commits_speculated + 1;
      count t "commits.speculated" 1;
      bump_category t (category_of t ~is_poll:(trigger = "poll"));
      if n_reads > 0 then history_update t site (Array.of_list actuals);
      log_applied t queue actuals
    | Some _ | None ->
      (* Synchronous commit. FIFO delivery means every outstanding response
         arrives no later than this one, so the blocking round trip also
         covers their validation — drain afterwards, when the waits are
         free. *)
      Link.round_trip t.link ~send_bytes:send ~recv_bytes:recv;
      drain t;
      let actuals = apply_now t wire in
      List.iteri (fun i (_, sym) -> Sexpr.bind sym (List.nth actuals i) ~speculative:false) reads;
      if n_reads > 0 then history_update t site (Array.of_list actuals);
      count t "commits.sync" 1;
      log_applied t queue actuals
  end

let sniff_root_and_head t reg v =
  (* Track page-table roots (for metastate classification, on both the
     downlink and the client's uplink) and the pending job-chain head. *)
  for as_idx = 0 to Regs.as_count - 1 do
    if reg = Regs.as_transtab_lo as_idx then begin
      let root = Int64.logand v (Int64.lognot 0xFFFL) in
      if not (Int64.equal root 0L) then begin
        let fmt = (Grt_gpu.Device.sku (Gpushim.device t.gpushim)).Grt_gpu.Sku.pt_format in
        Memsync.register_pt_root t.downlink ~fmt ~root_pa:root;
        Memsync.register_pt_root (Gpushim.uplink t.gpushim) ~fmt ~root_pa:root
      end
    end
  done;
  if reg = Regs.js_head_lo 0 || reg = Regs.js_head_next_lo 0 then t.last_head_lo <- v;
  if reg = Regs.js_head_hi 0 || reg = Regs.js_head_next_hi 0 then t.last_head_hi <- v

(* ---- misprediction recovery: local replay of the validated prefix ----

   Both parties fast-forward without the network: the client feeds the
   logged stimuli to its physical GPU (rebuilding its hardware state), the
   cloud feeds the logged responses to the re-executing driver. Entries are
   appended to the fresh log as they replay, so the final recording is the
   prefix plus the live continuation. *)

let step_cost t = Grt_sim.Clock.advance_ns (Link.clock t.link) Grt_sim.Costs.replayer_step_ns

let in_recovery t = t.prefix <> []

let recovery_fail fmt = Printf.ksprintf (fun m -> raise (Recovery_diverged m)) fmt

(* Apply any memory snapshots sitting at the head of the prefix. *)
let rec pop_memloads t =
  match t.prefix with
  | Recording.Mem_load { pages } :: rest ->
    t.prefix <- rest;
    step_cost t;
    count t "recovery.pages" (List.length pages);
    Gpushim.load_pages t.gpushim { Memsync.pages; wire_bytes = 0; raw_bytes = 0 };
    List.iter (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data) pages;
    t.log <- Recording.Mem_load { pages } :: t.log;
    pop_memloads t
  | _ -> ()

let prefix_pop t =
  pop_memloads t;
  match t.prefix with
  | [] -> None
  | e :: rest ->
    t.prefix <- rest;
    step_cost t;
    count t "recovery.entries" 1;
    Some e

let recovery_read t reg =
  match prefix_pop t with
  | Some (Recording.Reg_read { reg = r; value; verify = _ }) when r = reg ->
    (* The client replays the read against its GPU to keep read-sensitive
       hardware state moving; the driver consumes the logged value. *)
    ignore (Grt_gpu.Device.read_reg (Gpushim.device t.gpushim) reg);
    t.log <- Recording.Reg_read { reg; value; verify = not (Regs.is_nondeterministic reg) } :: t.log;
    Sexpr.const value
  | Some e ->
    recovery_fail "expected read of %s, log has %s" (Regs.name reg)
      (match e with
      | Recording.Reg_write { reg; _ } -> "write " ^ Regs.name reg
      | Recording.Reg_read { reg; _ } -> "read " ^ Regs.name reg
      | Recording.Poll { reg; _ } -> "poll " ^ Regs.name reg
      | Recording.Wait_irq _ -> "wait_irq"
      | Recording.Mem_load _ -> "mem_load")
  | None -> recovery_fail "prefix exhausted mid-access (read %s)" (Regs.name reg)

let recovery_write t reg =
  match prefix_pop t with
  | Some (Recording.Reg_write { reg = r; value }) when r = reg ->
    sniff_root_and_head t reg value;
    Grt_gpu.Device.write_reg (Gpushim.device t.gpushim) reg value;
    t.log <- Recording.Reg_write { reg; value } :: t.log
  | Some _ -> recovery_fail "log does not expect a write of %s here" (Regs.name reg)
  | None -> recovery_fail "prefix exhausted mid-access (write %s)" (Regs.name reg)

let recovery_poll t ~reg ~mask ~cond ~max_iters ~spin_ns =
  match prefix_pop t with
  | Some (Recording.Poll { reg = r; _ }) when r = reg ->
    t.log <-
      Recording.Poll
        {
          reg;
          mask;
          cond =
            (match cond with
            | Backend.Bits_set -> Recording.Until_set
            | Backend.Bits_clear -> Recording.Until_clear);
          max_iters;
          spin_ns;
        }
      :: t.log;
    (match Gpushim.run_poll t.gpushim ~reg ~mask ~cond ~max_iters ~spin_ns with
    | Some (iters, value) -> Backend.Poll_ok { iters; value }
    | None -> Backend.Poll_timeout)
  | Some _ -> recovery_fail "log does not expect a poll of %s here" (Regs.name reg)
  | None -> recovery_fail "prefix exhausted mid-access (poll %s)" (Regs.name reg)

let recovery_wait_irq t ~timeout_us =
  match prefix_pop t with
  | Some (Recording.Wait_irq { line }) -> (
    match Gpushim.wait_irq t.gpushim ~timeout_ns:(Int64.of_int (timeout_us * 1000)) with
    | Some got ->
      t.log <- Recording.Wait_irq { line = Recording.irq_line_to_int got } :: t.log;
      (* Local status exchange, no network: the cloud's memory learns the
         GPU-written words directly. *)
      if t.cfg.Mode.continuous_validation then Grt_gpu.Mem.unprotect_all t.cloud_mem;
      let payload = Gpushim.upload_meta t.gpushim in
      Memsync.apply t.cloud_mem payload;
      List.iter (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data) payload.Memsync.pages;
      ignore line;
      Some got
    | None -> recovery_fail "no interrupt while replaying the log")
  | Some _ -> recovery_fail "log does not expect an interrupt wait here"
  | None -> recovery_fail "prefix exhausted mid-access (wait_irq)"

(* ---- backend implementation ---- *)

let deferral_active t =
  Mode.deferral t.cfg.Mode.mode
  && ((not t.cfg.Mode.hot_function_scope) || t.hot_stack <> [])

let sniff_write t reg expr =
  (* Detect the job-start write that triggers a downlink sync (§5). *)
  (match Sexpr.eval expr with
  | Some v -> sniff_root_and_head t reg v
  | None -> ());
  if reg = Regs.js_command 0 || reg = Regs.js_command_next 0 then
    match Sexpr.eval expr with
    | Some v when Int64.equal v Regs.js_cmd_start -> sync_down t
    | _ -> ()

let read_reg t reg =
  t.accesses_total <- t.accesses_total + 1;
  count t "reg.reads" 1;
  if deferral_active t then begin
    t.accesses_deferred <- t.accesses_deferred + 1;
    let sym = Sexpr.fresh_sym ~origin:(Regs.name reg) in
    let qr = queue_ref t in
    qr := Qr { reg; sym } :: !qr;
    Sexpr.sym sym
  end
  else begin
    let qr = queue_ref t in
    let sym = Sexpr.fresh_sym ~origin:(Regs.name reg) in
    qr := Qr { reg; sym } :: !qr;
    commit t ~trigger:"sync";
    Sexpr.const (Option.get (Sexpr.eval (Sexpr.sym sym)))
  end

let write_reg t reg expr =
  t.accesses_total <- t.accesses_total + 1;
  count t "reg.writes" 1;
  sniff_write t reg expr;
  let qr = queue_ref t in
  qr := Qw { reg; expr } :: !qr;
  if deferral_active t then t.accesses_deferred <- t.accesses_deferred + 1
  else commit t ~trigger:"sync"

let force t expr =
  match Sexpr.eval expr with
  | Some v ->
    if Sexpr.speculative expr then t.epoch_tainted <- true;
    v
  | None -> (
    commit t ~trigger:"control";
    match Sexpr.eval expr with
    | Some v ->
      if Sexpr.speculative expr then t.epoch_tainted <- true;
      v
    | None -> failwith "DriverShim.force: symbol still unbound after commit")

let log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns =
  t.log <-
    Recording.Poll
      {
        reg;
        mask;
        cond =
          (match cond with
          | Backend.Bits_set -> Recording.Until_set
          | Backend.Bits_clear -> Recording.Until_clear);
        max_iters;
        spin_ns;
      }
    :: t.log

let poll_reg t ~reg ~mask ~cond ~max_iters ~spin_ns =
  count t "poll.instances" 1;
  if t.cfg.Mode.offload_polling then begin
    (* Flush pending accesses so the loop observes their effects, then ship
       the loop in one message (§4.3). *)
    commit t ~trigger:"poll";
    log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns;
    count t "poll.offloaded" 1;
    let site =
      Printf.sprintf "poll:%s:%Lx:%s" (Regs.name reg) mask
        (match cond with Backend.Bits_set -> "set" | Backend.Bits_clear -> "clear")
    in
    let send = request_bytes t 2 and recv = response_bytes t 2 in
    let run () = Gpushim.run_poll t.gpushim ~reg ~mask ~cond ~max_iters ~spin_ns in
    let speculate =
      if Regs.is_nondeterministic reg then None
      else if degraded_now t then begin
        count t "spec.degraded_suppressed" 1;
        None
      end
      else history_confident t site
    in
    match speculate with
    | Some predicted when Array.length predicted = 1 ->
      let log_mark = List.length t.log - 1 in
      (* the Poll entry itself was just logged; exclude it from the prefix *)
      let result = run () in
      let observed = match result with Some (_, v) -> v | None -> -1L in
      let checked = match maybe_inject t [ observed ] with v :: _ -> v | [] -> observed in
      let completion = Link.async_send t.link ~send_bytes:send ~recv_bytes:recv in
      t.outstanding <-
        t.outstanding
        @ [
            {
              o_completion = completion;
              o_site = site;
              o_checks = [ (reg, predicted.(0), checked) ];
              o_syms = [];
              o_log_mark = max 0 log_mark;
            };
          ];
      t.commits_total <- t.commits_total + 1;
      t.commits_speculated <- t.commits_speculated + 1;
      count t "commits.total" 1;
      count t "commits.speculated" 1;
      bump_category t Polling;
      (* History learns only the true observation, never the injected value
         used for the validation check — one transient fault must not poison
         future predictions at this site — and never the -1L timeout
         sentinel, which is not a register value. A timeout instead forgets
         the site: the prediction is about to fail validation, and keeping
         the stale confidence would re-speculate the same wrong value on
         every recovery attempt. *)
      (match result with
      | Some (_, v) -> history_update t site [| v |]
      | None -> history_forget t site);
      (match result with
      | Some (iters, _) -> Backend.Poll_ok { iters; value = predicted.(0) }
      | None -> Backend.Poll_ok { iters = max_iters; value = predicted.(0) })
    | _ ->
      drain t;
      Link.round_trip t.link ~send_bytes:send ~recv_bytes:recv;
      t.commits_total <- t.commits_total + 1;
      count t "commits.total" 1;
      count t "commits.sync" 1;
      (match run () with
      | Some (iters, value) ->
        history_update t site [| value |];
        Backend.Poll_ok { iters; value }
      | None -> Backend.Poll_timeout)
  end
  else begin
    (* Iterate remotely: every iteration reads the register through the
       normal path, costing a round trip (§4.3's "problem" case). The loop
       is represented in the log by a single Poll entry; individual
       iteration reads are suppressed so replay re-iterates on its own
       device timing. *)
    commit t ~trigger:"poll";
    log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns;
    t.suppress_read_log <- Some reg;
    t.in_poll_loop <- true;
    Fun.protect
      ~finally:(fun () ->
        t.suppress_read_log <- None;
        t.in_poll_loop <- false)
      (fun () ->
        let rec loop i =
          if i >= max_iters then Backend.Poll_timeout
          else begin
            let v = force t (read_reg t reg) in
            count t "poll.iters" 1;
            let ok =
              match cond with
              | Backend.Bits_set -> Int64.logand v mask = mask
              | Backend.Bits_clear -> Int64.logand v mask = 0L
            in
            if ok then Backend.Poll_ok { iters = i + 1; value = v } else loop (i + 1)
          end
        in
        loop 0)
  end

let wait_irq t ~timeout_us =
  commit t ~trigger:"wait_irq";
  count t "irq.waits" 1;
  match Gpushim.wait_irq t.gpushim ~timeout_ns:(Int64.of_int (timeout_us * 1000)) with
  | None -> None
  | Some line ->
    t.log <- Recording.Wait_irq { line = Recording.irq_line_to_int line } :: t.log;
    sync_up t;
    Some line

let backend t =
  (* In recovery mode every operation is answered from the validated log
     with local GPU replay; once the prefix runs dry the live machinery
     takes over transparently. *)
  let recovering () =
    if in_recovery t then begin
      pop_memloads t;
      in_recovery t
    end
    else false
  in
  {
    Backend.read_reg =
      (fun reg ->
        if recovering () then begin
          count t "reg.reads" 1;
          t.accesses_total <- t.accesses_total + 1;
          recovery_read t reg
        end
        else read_reg t reg);
    write_reg =
      (fun reg v ->
        if recovering () then begin
          count t "reg.writes" 1;
          t.accesses_total <- t.accesses_total + 1;
          recovery_write t reg
        end
        else write_reg t reg v);
    force = (fun e -> force t e);
    poll_reg =
      (fun ~reg ~mask ~cond ~max_iters ~spin_ns ->
        if recovering () then begin
          count t "poll.instances" 1;
          recovery_poll t ~reg ~mask ~cond ~max_iters ~spin_ns
        end
        else poll_reg t ~reg ~mask ~cond ~max_iters ~spin_ns);
    delay_us =
      (fun us ->
        if recovering () then Grt_sim.Clock.advance_ns (Link.clock t.link) (Int64.of_int (us * 1000))
        else begin
          (* Explicit delays are commit barriers (§4.1). *)
          commit t ~trigger:"delay";
          Grt_sim.Clock.advance_ns (Link.clock t.link) (Int64.of_int (us * 1000))
        end);
    lock =
      (fun _ ->
        if (not (in_recovery t)) && t.cfg.Mode.commit_on_kernel_api then commit t ~trigger:"lock");
    unlock =
      (fun _ ->
        if (not (in_recovery t)) && t.cfg.Mode.commit_on_kernel_api then
          commit t ~trigger:"unlock");
    externalize =
      (fun _ ->
        if not (in_recovery t) then begin
          (* printk must observe fully validated state (§4.2). *)
          commit t ~trigger:"externalize";
          drain t
        end);
    now_us = (fun () -> Int64.div (Grt_sim.Clock.now_ns (Link.clock t.link)) 1000L);
    wait_irq =
      (fun ~timeout_us ->
        if recovering () then recovery_wait_irq t ~timeout_us else wait_irq t ~timeout_us);
    irq_scope =
      (fun f ->
        let prev = t.cur_thread in
        t.cur_thread <- Irq;
        Fun.protect ~finally:(fun () ->
            commit t ~trigger:"irq_exit";
            t.cur_thread <- prev)
          f);
    enter_hot = (fun fn -> t.hot_stack <- fn :: t.hot_stack);
    exit_hot =
      (fun _ ->
        (match t.hot_stack with [] -> () | _ :: rest -> t.hot_stack <- rest);
        if t.cfg.Mode.hot_function_scope then commit t ~trigger:"hot_exit";
        (* The speculative branch's local state dies with the hot function;
           taint that escapes through driver state is still carried by the
           symbols themselves. *)
        t.epoch_tainted <- false);
  }

let finalize t =
  commit t ~trigger:"finalize";
  drain t

let entries t = List.rev t.log

let validated_prefix t =
  (* Everything logged before the oldest unvalidated speculative commit is
     confirmed truth; with nothing outstanding, the whole log is. Used by
     the orchestrator to resume after a [Link.Link_down], exactly like a
     misprediction's [valid_log]. *)
  let all = List.rev t.log in
  match t.outstanding with
  | [] -> all
  | o :: _ ->
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take o.o_log_mark all

let mark_segment t = t.segment_marks <- List.length t.log :: t.segment_marks

let segment_marks t = List.rev t.segment_marks

let commits_total t = t.commits_total
let commits_speculated t = t.commits_speculated
let spec_rejected_nondet t = t.spec_rejected_nondet
let accesses_total t = t.accesses_total
let accesses_deferred t = t.accesses_deferred

let speculated_by_category t =
  List.map
    (fun c -> (c, match Hashtbl.find_opt t.by_category c with Some r -> !r | None -> 0))
    all_categories

let inject_fault_after t n = t.inject_countdown <- Some n
