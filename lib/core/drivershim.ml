open Shim_engine
module Backend = Grt_driver.Backend
module Regs = Grt_gpu.Regs
module Sexpr = Grt_util.Sexpr
module Link = Grt_net.Link
module Metrics = Grt_sim.Metrics

exception Mispredict = Shim_engine.Mispredict
exception Recovery_diverged = Recovery.Recovery_diverged

type category = Shim_engine.category = Init | Interrupt | Power | Polling | Other

let category_name = Shim_engine.category_name
let all_categories = Shim_engine.all_categories

type history = Spec_history.t

let fresh_history = Spec_history.create

type t = Shim_engine.t

let create = Shim_engine.create

let downlink (t : t) = t.downlink

(* ---- committing ---- *)

let commit t ~trigger =
  let qr = queue_ref t in
  let queue = List.rev !qr in
  qr := [];
  if queue <> [] then begin
    let site = site_key t ~trigger queue in
    (* Build the span argument list only when a tracer is attached. *)
    (match t.tracer with
    | None -> fun body -> body ()
    | Some _ ->
      Tracer.span_opt t.tracer ~cat:Tracer.Commit
        ~args:[ ("site", site); ("trigger", trigger) ]
        ~name:"commit")
    @@ fun () ->
    t.commits_total <- t.commits_total + 1;
    count t Metrics.Commits_total 1;
    count t Metrics.Commits_accesses (List.length queue);
    Hist.record_opt t.hists Hist.Commit_accesses (List.length queue);
    if t.epoch_tainted && t.outstanding <> [] then begin
      count t Metrics.Spec_epoch_stalls 1;
      drain t
    end;
    let wire =
      try Wire.to_wire queue
      with Wire.Need_drain ->
        count t Metrics.Spec_dep_stalls 1;
        drain t;
        Wire.to_wire queue
    in
    let reads = Wire.read_syms queue in
    let n_reads = List.length reads in
    let nondet = List.exists (fun (reg, _) -> Regs.is_nondeterministic reg) reads in
    let confident = if nondet then None else history_confident t site in
    let send = request_bytes t (List.length queue) in
    let recv = response_bytes t n_reads in
    let speculate_values =
      if (not (Mode.speculation t.cfg.Mode.mode)) || t.in_poll_loop then None
      else if degraded_now t then begin
        count t Metrics.Spec_degraded_suppressed 1;
        None
      end
      else if n_reads = 0 then Some [||] (* write-only commits go out asynchronously *)
      else confident
    in
    if Mode.speculation t.cfg.Mode.mode && nondet then begin
      t.spec_rejected_nondet <- t.spec_rejected_nondet + 1;
      count t Metrics.Spec_rejected_nondet 1
    end;
    match speculate_values with
    | Some predicted when Array.length predicted = n_reads ->
      let log_mark = t.log.Recording.len in
      let actuals = apply_now t wire in
      let actuals_checked = maybe_inject t actuals in
      let checks =
        List.mapi
          (fun i (reg, _) -> (reg, predicted.(i), actuals_checked.(i)))
          reads
      in
      dispatch_speculative t ~site ~send ~recv ~checks ~syms:(List.map snd reads) ~log_mark
        ~bind:(fun () ->
          List.iteri (fun i (_, sym) -> Sexpr.bind sym predicted.(i) ~speculative:true) reads);
      bump_category t (category_of t ~is_poll:(trigger = "poll"));
      if n_reads > 0 then history_update t site actuals;
      log_applied t queue actuals
    | Some _ | None ->
      (* Synchronous commit. FIFO delivery means every outstanding response
         arrives no later than this one, so the blocking round trip also
         covers their validation — drain afterwards, when the waits are
         free. *)
      Link.round_trip t.link ~send_bytes:send ~recv_bytes:recv;
      drain t;
      let actuals = apply_now t wire in
      List.iteri (fun i (_, sym) -> Sexpr.bind sym actuals.(i) ~speculative:false) reads;
      if n_reads > 0 then history_update t site actuals;
      count t Metrics.Commits_sync 1;
      Trace.event_opt t.trace (Trace.Commit { site; accesses = List.length queue });
      log_applied t queue actuals
  end

(* ---- backend implementation ---- *)

let deferral_active t =
  Mode.deferral t.cfg.Mode.mode
  && ((not t.cfg.Mode.hot_function_scope) || t.hot_stack <> [])

let sniff_write t reg expr =
  (* Detect the job-start write that triggers a downlink sync (§5). *)
  (match Sexpr.eval expr with Some v -> t.sniff reg v | None -> ());
  if reg = Regs.js_command 0 || reg = Regs.js_command_next 0 then
    match Sexpr.eval expr with
    | Some v when Int64.equal v Regs.js_cmd_start -> Sync_flow.down t
    | _ -> ()

let read_reg t reg =
  t.accesses_total <- t.accesses_total + 1;
  count t Metrics.Reg_reads 1;
  if deferral_active t then begin
    t.accesses_deferred <- t.accesses_deferred + 1;
    let sym = Sexpr.fresh_sym ~origin:(Regs.name reg) in
    let qr = queue_ref t in
    qr := Wire.Qr { reg; sym } :: !qr;
    Sexpr.sym sym
  end
  else begin
    let qr = queue_ref t in
    let sym = Sexpr.fresh_sym ~origin:(Regs.name reg) in
    qr := Wire.Qr { reg; sym } :: !qr;
    commit t ~trigger:"sync";
    Sexpr.const (Option.get (Sexpr.eval (Sexpr.sym sym)))
  end

let write_reg t reg expr =
  t.accesses_total <- t.accesses_total + 1;
  count t Metrics.Reg_writes 1;
  sniff_write t reg expr;
  let qr = queue_ref t in
  qr := Wire.Qw { reg; expr } :: !qr;
  if deferral_active t then t.accesses_deferred <- t.accesses_deferred + 1
  else commit t ~trigger:"sync"

let force t expr =
  match Sexpr.eval expr with
  | Some v ->
    if Sexpr.speculative expr then t.epoch_tainted <- true;
    v
  | None -> (
    commit t ~trigger:"control";
    match Sexpr.eval expr with
    | Some v ->
      if Sexpr.speculative expr then t.epoch_tainted <- true;
      v
    | None -> failwith "DriverShim.force: symbol still unbound after commit")

let log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns =
  Recording.log_push t.log
    (Recording.Poll
       {
         reg;
         mask;
         cond =
           (match cond with
           | Backend.Bits_set -> Recording.Until_set
           | Backend.Bits_clear -> Recording.Until_clear);
         max_iters;
         spin_ns;
       })

let poll_reg t ~reg ~mask ~cond ~max_iters ~spin_ns =
  count t Metrics.Poll_instances 1;
  if t.cfg.Mode.offload_polling then begin
    (* Flush pending accesses so the loop observes their effects, then ship
       the loop in one message (§4.3). *)
    commit t ~trigger:"poll";
    log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns;
    count t Metrics.Poll_offloaded 1;
    let site =
      Printf.sprintf "poll:%s:%Lx:%s" (Regs.name reg) mask
        (match cond with Backend.Bits_set -> "set" | Backend.Bits_clear -> "clear")
    in
    Tracer.span_opt t.tracer ~cat:Tracer.Poll_offload ~args:[ ("site", site) ] ~name:"poll"
    @@ fun () ->
    let send = request_bytes t 2 and recv = response_bytes t 2 in
    let run () = Gpushim.run_poll t.gpushim ~reg ~mask ~cond ~max_iters ~spin_ns in
    let speculate =
      if Regs.is_nondeterministic reg then None
      else if degraded_now t then begin
        count t Metrics.Spec_degraded_suppressed 1;
        None
      end
      else history_confident t site
    in
    match speculate with
    | Some predicted when Array.length predicted = 1 ->
      let log_mark = t.log.Recording.len - 1 in
      (* the Poll entry itself was just logged; exclude it from the prefix *)
      let result = run () in
      let observed = match result with Some (_, v) -> v | None -> -1L in
      let checked = (maybe_inject t [| observed |]).(0) in
      t.commits_total <- t.commits_total + 1;
      count t Metrics.Commits_total 1;
      Hist.record_opt t.hists Hist.Commit_accesses 2;
      dispatch_speculative t ~site ~send ~recv
        ~checks:[ (reg, predicted.(0), checked) ]
        ~syms:[] ~log_mark:(max 0 log_mark) ~bind:(fun () -> ());
      bump_category t Polling;
      (* History learns only the true observation, never the injected value
         used for the validation check — one transient fault must not poison
         future predictions at this site — and never the -1L timeout
         sentinel, which is not a register value. A timeout instead forgets
         the site: the prediction is about to fail validation, and keeping
         the stale confidence would re-speculate the same wrong value on
         every recovery attempt. *)
      (match result with
      | Some (_, v) -> history_update t site [| v |]
      | None -> history_forget t site);
      (match result with
      | Some (iters, _) -> Backend.Poll_ok { iters; value = predicted.(0) }
      | None -> Backend.Poll_ok { iters = max_iters; value = predicted.(0) })
    | _ ->
      drain t;
      Link.round_trip t.link ~send_bytes:send ~recv_bytes:recv;
      t.commits_total <- t.commits_total + 1;
      count t Metrics.Commits_total 1;
      count t Metrics.Commits_sync 1;
      Hist.record_opt t.hists Hist.Commit_accesses 2;
      Trace.event_opt t.trace (Trace.Commit { site; accesses = 2 });
      (match run () with
      | Some (iters, value) ->
        history_update t site [| value |];
        Backend.Poll_ok { iters; value }
      | None -> Backend.Poll_timeout)
  end
  else begin
    (* Iterate remotely: every iteration reads the register through the
       normal path, costing a round trip (§4.3's "problem" case). The loop
       is represented in the log by a single Poll entry; individual
       iteration reads are suppressed so replay re-iterates on its own
       device timing. *)
    commit t ~trigger:"poll";
    log_poll t ~reg ~mask ~cond ~max_iters ~spin_ns;
    t.suppress_read_log <- Some reg;
    t.in_poll_loop <- true;
    Fun.protect
      ~finally:(fun () ->
        t.suppress_read_log <- None;
        t.in_poll_loop <- false)
      (fun () ->
        let rec loop i =
          if i >= max_iters then Backend.Poll_timeout
          else begin
            let v = force t (read_reg t reg) in
            count t Metrics.Poll_iters 1;
            let ok =
              match cond with
              | Backend.Bits_set -> Int64.logand v mask = mask
              | Backend.Bits_clear -> Int64.logand v mask = 0L
            in
            if ok then Backend.Poll_ok { iters = i + 1; value = v } else loop (i + 1)
          end
        in
        loop 0)
  end

let wait_irq t ~timeout_us =
  commit t ~trigger:"wait_irq";
  count t Metrics.Irq_waits 1;
  match Gpushim.wait_irq t.gpushim ~timeout_ns:(Int64.of_int (timeout_us * 1000)) with
  | None -> None
  | Some line ->
    Recording.log_push t.log (Recording.Wait_irq { line = Recording.irq_line_to_int line });
    Sync_flow.up t;
    Some line

let backend t =
  (* In recovery mode every operation is answered from the validated log
     with local GPU replay; once the prefix runs dry the live machinery
     takes over transparently. *)
  let recovering () =
    if Recovery.active t.recovery then begin
      Recovery.pop_memloads t.recovery;
      Recovery.active t.recovery
    end
    else false
  in
  let in_recovery () = Recovery.active t.recovery in
  {
    Backend.read_reg =
      (fun reg ->
        if recovering () then begin
          count t Metrics.Reg_reads 1;
          t.accesses_total <- t.accesses_total + 1;
          Recovery.read t.recovery reg
        end
        else read_reg t reg);
    write_reg =
      (fun reg v ->
        if recovering () then begin
          count t Metrics.Reg_writes 1;
          t.accesses_total <- t.accesses_total + 1;
          Recovery.write t.recovery reg
        end
        else write_reg t reg v);
    force = (fun e -> force t e);
    poll_reg =
      (fun ~reg ~mask ~cond ~max_iters ~spin_ns ->
        if recovering () then begin
          count t Metrics.Poll_instances 1;
          Recovery.poll t.recovery ~reg ~mask ~cond ~max_iters ~spin_ns
        end
        else poll_reg t ~reg ~mask ~cond ~max_iters ~spin_ns);
    delay_us =
      (fun us ->
        if recovering () then Grt_sim.Clock.advance_ns (Link.clock t.link) (Int64.of_int (us * 1000))
        else begin
          (* Explicit delays are commit barriers (§4.1). *)
          commit t ~trigger:"delay";
          Grt_sim.Clock.advance_ns (Link.clock t.link) (Int64.of_int (us * 1000))
        end);
    lock =
      (fun _ ->
        if (not (in_recovery ())) && t.cfg.Mode.commit_on_kernel_api then commit t ~trigger:"lock");
    unlock =
      (fun _ ->
        if (not (in_recovery ())) && t.cfg.Mode.commit_on_kernel_api then
          commit t ~trigger:"unlock");
    externalize =
      (fun _ ->
        if not (in_recovery ()) then begin
          (* printk must observe fully validated state (§4.2). *)
          commit t ~trigger:"externalize";
          drain t
        end);
    now_us = (fun () -> Int64.div (Grt_sim.Clock.now_ns (Link.clock t.link)) 1000L);
    wait_irq =
      (fun ~timeout_us ->
        if recovering () then Recovery.wait_irq t.recovery ~timeout_us else wait_irq t ~timeout_us);
    irq_scope =
      (fun f ->
        let prev = t.cur_thread in
        t.cur_thread <- Irq;
        Fun.protect ~finally:(fun () ->
            commit t ~trigger:"irq_exit";
            t.cur_thread <- prev)
          f);
    enter_hot = (fun fn -> t.hot_stack <- fn :: t.hot_stack);
    exit_hot =
      (fun _ ->
        (match t.hot_stack with [] -> () | _ :: rest -> t.hot_stack <- rest);
        if t.cfg.Mode.hot_function_scope then commit t ~trigger:"hot_exit";
        (* The speculative branch's local state dies with the hot function;
           taint that escapes through driver state is still carried by the
           symbols themselves. *)
        t.epoch_tainted <- false);
  }

let finalize t =
  commit t ~trigger:"finalize";
  drain t

let entries t = List.rev t.log.Recording.items

let validated_prefix t =
  (* Everything logged before the oldest unvalidated speculative commit is
     confirmed truth; with nothing outstanding, the whole log is. Used by
     the orchestrator to resume after a [Link.Link_down], exactly like a
     misprediction's [valid_log]. *)
  let all = List.rev t.log.Recording.items in
  match t.outstanding with
  | [] -> all
  | o :: _ ->
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take o.o_log_mark all

let mark_segment t = t.segment_marks <- t.log.Recording.len :: t.segment_marks

let segment_marks t = List.rev t.segment_marks

let commits_total t = t.commits_total
let commits_speculated t = t.commits_speculated
let spec_rejected_nondet t = t.spec_rejected_nondet
let accesses_total t = t.accesses_total
let accesses_deferred t = t.accesses_deferred

let speculated_by_category t =
  List.map
    (fun c -> (c, match Hashtbl.find_opt t.by_category c with Some r -> !r | None -> 0))
    all_categories

let inject_fault_after t n = t.inject_countdown <- Some n
