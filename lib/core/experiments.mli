(** Experiment drivers for every table and figure in the paper's evaluation
    (§7). The benchmark harness prints these; the test suite checks their
    qualitative claims (who wins, by roughly what factor).

    Record outcomes are cached per (profile, mode, network) within a run so
    the tables that share data (Figure 7, Table 1, Figure 8, Figure 9) do
    not repeat simulations. Within one (profile, mode) sweep the speculation
    history is retained across workloads, as in §7.3. *)

type ctx

val create_ctx : ?sku:Grt_gpu.Sku.t -> ?seed:int64 -> unit -> ctx

val record_outcome :
  ctx -> profile:Grt_net.Profile.t -> mode:Mode.t -> Grt_mlfw.Network.t -> Orchestrate.record_outcome
(** Cached. Networks recorded in Table 1 order share history per
    (profile, mode). *)

(** Figure 7: end-to-end recording delays (seconds) per network and mode. *)
type fig7_row = { workload : string; delays : (Mode.t * float) list }

val fig7 : ctx -> profile:Grt_net.Profile.t -> fig7_row list

(** Table 1: blocking round trips and memory-sync traffic. *)
type table1_row = {
  workload : string;
  gpu_jobs : int;
  rtts_m : int;
  rtts_md : int;
  rtts_mds : int;
  memsync_naive_mb : float;
  memsync_ours_mb : float;
}

val table1 : ctx -> profile:Grt_net.Profile.t -> table1_row list

(** Table 2: replay vs native inference delay (ms). *)
type table2_row = {
  workload : string;
  native_ms : float;
  replay_ms : float;
  outputs_match : bool;  (** replayed output bit-equal to native *)
}

val table2 : ctx -> table2_row list

(** Figure 8: breakdown of speculative commits by driver routine category. *)
type fig8_row = {
  workload : string;
  total_speculated : int;
  shares : (Drivershim.category * float) list;  (** normalized to 1.0 *)
}

val fig8 : ctx -> profile:Grt_net.Profile.t -> fig8_row list

(** Figure 9: whole-client energy for record (Naive vs GR-T) and replay. *)
type fig9_row = {
  workload : string;
  record_naive_j : float;
  record_mds_j : float;
  replay_j : float;
}

val fig9 : ctx -> profile:Grt_net.Profile.t -> fig9_row list

(** §7.3 deferral/speculation statistics. *)
type stats_row = {
  workload : string;
  accesses : int;
  commits : int;
  accesses_per_commit : float;
  speculated_pct : float;
  rejected_nondet : int;
}

val deferral_stats : ctx -> profile:Grt_net.Profile.t -> stats_row list

(** §7.3 polling offload. *)
type polling_row = {
  workload : string;
  instances : int;
  offloaded : int;
  rtts_without_offload : int;  (** blocking RTTs with offload disabled *)
  rtts_with_offload : int;
}

val polling : ctx -> profile:Grt_net.Profile.t -> polling_row list

(** §7.3 misprediction: inject a wrong register value, measure recovery. *)
type rollback_row = {
  workload : string;
  detected : bool;
  rollbacks : int;
  rollback_s : float;
  completed : bool;  (** the re-run finished and produced a recording *)
}

val rollback : ctx -> profile:Grt_net.Profile.t -> nets:Grt_mlfw.Network.t list -> rollback_row list

(** Ablation over the design knobs DESIGN.md calls out. *)
type ablation_row = { label : string; delay_s : float; rtts : int; sync_mb : float }

val ablation : ctx -> profile:Grt_net.Profile.t -> net:Grt_mlfw.Network.t -> ablation_row list

(** Lossy-link campaign: sweep window size × drop probability over the wifi
    and cellular profiles and check each run's signed blob against the
    stop-and-wait zero-fault recording (they must be bit-identical — window
    size and faults may move the clock and the counters, never the recorded
    interactions). *)
type fault_row = {
  profile_name : string;  (** base profile swept (wifi, cellular) *)
  window : int;  (** link sliding-window size (1 = stop-and-wait) *)
  drop_prob : float;
  total_s : float;
  retransmits : int;
  degraded_entries : int;  (** times the link tripped into degraded mode *)
  rollbacks : int;
  link_downs : int;
  blob_identical : bool;
      (** blob matches the window=1 zero-fault recording *)
}

val fault_campaign :
  ctx -> ?drops:float list -> ?windows:int list -> net:Grt_mlfw.Network.t -> unit -> fault_row list
(** [drops] defaults to [0; 0.01; 0.05; 0.1]; [windows] to [[1; 4]]
    (windowed runs also set [Mode.max_inflight] to the window size). *)

(** Memsync fast-path sweep on a synthetic sender/receiver pair: pages
    dirtied per round × duplicate-content rate × feature variant (legacy,
    dirty tracking, +dedup, +adaptive encoding). [reproduced] asserts the
    receiver memory ended bit-identical to the sender's. *)
type memsync_sweep_row = {
  variant : string;
  dirtied_per_round : int;
  dup_rate : float;
  sweep_rounds : int;
  sweep_pages : int;
  sweep_wire_bytes : int;
  sweep_raw_bytes : int;
  pages_visited : int;  (** total meta pages examined across all rounds *)
  hash_hits : int;  (** pages shipped as 8-byte hash references *)
  enc_mix : (string * int) list;  (** chosen encoding name -> record count *)
  sync_us : float;  (** host-side microseconds per [sync_meta] call *)
  reproduced : bool;
}

val memsync_sweep :
  ?pages:int -> ?rounds:int -> ?dirtied:int list -> ?dup_rates:float list -> unit ->
  memsync_sweep_row list
(** Defaults: 64 pages, 8 rounds, dirtied [[4; 16; 64]], dup rates
    [[0; 0.5; 0.9]]. *)

(** Memsync fast path on a real workload: baseline config vs. dedup +
    adaptive encoding, same seed — wire bytes, blob size, visit counts and
    a replay-vs-native output check per row. *)
type memsync_workload_row = {
  config_label : string;  (** "baseline" or "fastpath" *)
  net_name : string;
  down_wire_bytes : int;
  up_wire_bytes : int;
  blob_bytes : int;
  mpages_visited : int;
  mpages_meta : int;
  workload_enc_mix : (string * int) list;  (** nonzero encoding counters *)
  replay_matches : bool;
}

val memsync_workload : ctx -> net:Grt_mlfw.Network.t -> memsync_workload_row list

(** Fleet benchmark: the {!Service} under a Zipf client population. One row
    per execution mode of the same generated fleet; multiplexed and
    sequential rows agree on every semantic column (recordings, hit rate,
    wire traffic) and differ only in host cost and scheduler stats. *)
type fleet_row = {
  fleet_label : string;
      (** ["sequential"], ["multiplexed/<backend>"] or
          ["parallel/<backend>/d<N>"] *)
  fleet_clients : int;
  distinct_keys : int;  (** distinct cache keys the population hit *)
  fleet_recordings : int;
  fleet_cache_hits : int;
  fleet_coalesced : int;
  fleet_failures : int;
  fleet_evictions : int;
  fleet_hit_rate : float;  (** (hits + coalesced) / sessions *)
  host_s : float;
  sessions_per_s : float;  (** clients / host_s *)
  host_wall_s : float;
      (** elapsed host seconds over the whole run, measured outside the
          virtual timeline — with [domains > 1] on a multicore host this
          drops below [host_s] (CPU seconds keep being spent on every
          domain) *)
  wall_sessions_per_s : float;  (** clients / host_wall_s — the scaling metric *)
  virtual_s : float;  (** fleet-wide virtual-time span *)
  mean_turnaround_s : float;
  p95_turnaround_s : float;
  fleet_sync_wire_mb : float;  (** aggregate memsync traffic, both dirs *)
  fleet_blocking_rtts : int;
  spec_cross_hits : int;  (** §7.3 history hits across sessions *)
  sync_cross_hits : int;  (** pages served from the shared content store *)
  fleet_yields : int;  (** 0 for sequential *)
  fleet_switches : int;
  fleet_domains : int;  (** domains requested *)
  fleet_parallel : bool;  (** shards actually ran on separate domains *)
  fleet_shards : Service.shard_stat list;  (** per-shard scheduler stats *)
}

val fleet :
  ?options:Service.fleet_options ->
  ?backend:Grt_sim.Sched.backend ->
  ?sequential:bool ->
  ?observe:bool ->
  ?cache_capacity:int ->
  ?domains:int ->
  ?now:(unit -> float) ->
  ?wall:(unit -> float) ->
  unit ->
  fleet_row * Service.t
(** Generate [options]'s fleet ({!Service.zipf_fleet}), run it through a
    fresh service, and summarize. [now] (default [Sys.time]) supplies the
    host clock for [sessions_per_s]; [wall] (default [now]) supplies the
    elapsed-time clock for [wall_sessions_per_s] — pass
    [Unix.gettimeofday]. [domains] (default 1) shards the multiplexed run
    across OCaml domains ({!Service.run}); semantic columns are identical
    at any domain count, only host/wall costs and shard stats move.
    [observe] (default false) enables the fleet observability plane
    ({!Service.run}) so the returned service carries an
    {!Service.observation} for {!Report.of_fleet} / Perfetto export. The
    service is returned for {!Service.cache_listing}. *)

(** {2 JSON row export}

    One function per row type, mirroring the printed table field for field,
    so [bench/main.exe --json] can emit machine-readable copies of exactly
    what it prints (asserted by the test suite). *)

type replay_bench_row = {
  workload : string;
  entries : int;
  interpreted_rps : float;  (** replays/sec, interpreted path, fresh session each *)
  compiled_cold_rps : float;  (** compile + execute per replay *)
  compiled_warm_rps : float;  (** compile once, session reused across the batch *)
  warm_speedup : float;  (** compiled_warm_rps / interpreted_rps *)
  fused_writes : int;
  static_pages : int;
  dynamic_loads : int;
  bit_identical : bool;  (** compiled output == interpreted, several seeds *)
}

val replay_bench : ?nets:Grt_mlfw.Network.t list -> ?iters:int -> ctx -> replay_bench_row list
(** Host-side replay throughput, interpreted vs compiled (cold and warm),
    plus the compiled-path correctness check (ROADMAP item 2). *)

type speed_row = {
  speed_label : string;
  speed_accesses : int;  (** simulated register accesses per session *)
  speed_iters : int;
  speed_host_s : float;  (** host seconds across all iterations, GPU time excluded *)
  accesses_per_s : float;
  minor_words_per_access : float;
  speed_memo : Grt_util.Json.t;
      (** {!Grt_util.Memo_stats.to_json} over this row's measured window
          (counters reset after the warm-up probe), exported as the
          [memo_stats] member of {!speed_row_json} *)
}

val speed : ?iters:int -> ctx -> speed_row list
(** Recording-hot-loop throughput (ROADMAP item 5): simulated register
    accesses per host second and minor-heap words per access, over full
    MNIST record sessions in the modes that exercise each rewritten layer
    (naive, speculative, tagged-memsync, windowed link). Fresh speculation
    history per iteration, GPU-side host time excluded — see the
    implementation comment for the methodology. *)

val speed_ceilings : (string * float) list
(** Checked-in minor-words/access ceiling per {!speed} row label. An
    allocation regression in the wire/queue/memory hot path shows up as a
    row exceeding its ceiling; the CI speed smoke fails on it. *)

val speed_ceiling : string -> float option
(** Ceiling for one row label, if pinned. *)

val fig7_row_json : fig7_row -> Grt_util.Json.t
val table1_row_json : table1_row -> Grt_util.Json.t
val table2_row_json : table2_row -> Grt_util.Json.t
val fig8_row_json : fig8_row -> Grt_util.Json.t
val fig9_row_json : fig9_row -> Grt_util.Json.t
val stats_row_json : stats_row -> Grt_util.Json.t
val polling_row_json : polling_row -> Grt_util.Json.t
val rollback_row_json : rollback_row -> Grt_util.Json.t
val ablation_row_json : ablation_row -> Grt_util.Json.t
val fault_row_json : fault_row -> Grt_util.Json.t
val replay_bench_row_json : replay_bench_row -> Grt_util.Json.t
val memsync_sweep_row_json : memsync_sweep_row -> Grt_util.Json.t
val memsync_workload_row_json : memsync_workload_row -> Grt_util.Json.t
val fleet_row_json : fleet_row -> Grt_util.Json.t
val speed_row_json : speed_row -> Grt_util.Json.t
