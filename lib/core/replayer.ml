module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem

exception Rejected of string

type divergence_kind = Value_mismatch | Poll_timeout | Irq_mismatch

let divergence_kind_name = function
  | Value_mismatch -> "value mismatch"
  | Poll_timeout -> "poll timeout"
  | Irq_mismatch -> "IRQ mismatch"

exception
  Divergence of { kind : divergence_kind; index : int; reg : int; expected : int64; got : int64 }

type result = {
  output : float array;
  delay_s : float;
  entries_applied : int;
  reads_verified : int;
  reads_skipped_nondet : int;
  energy_j : float option;
}

let write_slot_floats mem (slot : Recording.slot) values =
  let n = min (Array.length values) (slot.Recording.actual_bytes / 4) in
  for i = 0 to n - 1 do
    Mem.write_f32 mem (Int64.add slot.Recording.pa (Int64.of_int (4 * i))) values.(i)
  done

let read_slot_floats mem (slot : Recording.slot) =
  Array.init (slot.Recording.actual_bytes / 4) (fun i ->
      Mem.read_f32 mem (Int64.add slot.Recording.pa (Int64.of_int (4 * i))))

let apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied entries =
  Array.iteri
    (fun index entry ->
      incr applied;
      Grt_sim.Clock.advance_ns clock Grt_sim.Costs.replayer_step_ns;
      match entry with
      | Recording.Mem_load { pages } ->
        (* The metastate snapshot for the upcoming interactions. *)
        List.iter (fun (pfn, data) -> Mem.set_page mem pfn data) pages
      | Recording.Mem_load_enc { records } ->
        (* Tagged snapshot: decode in log order; hash references resolve
           against bodies earlier entries carried in full. *)
        ignore (Memsync.decode_records store mem records)
      | Recording.Reg_write { reg; value } -> Device.write_reg dev reg value
      | Recording.Reg_read { reg; value; verify } ->
        let got = Device.read_reg dev reg in
        if verify then begin
          incr reads_verified;
          if not (Int64.equal got value) then
            raise (Divergence { kind = Value_mismatch; index; reg; expected = value; got })
        end
        else incr skipped
      | Recording.Poll { reg; mask; cond; max_iters; spin_ns } ->
        let rec loop i =
          if i >= max_iters then
            (* Not a wrong value — the condition never held within the
               recorded iteration budget. [expected] carries the mask. *)
            raise (Divergence { kind = Poll_timeout; index; reg; expected = mask; got = -1L })
          else begin
            let v = Device.read_reg dev reg in
            let ok =
              match cond with
              | Recording.Until_set -> Int64.logand v mask = mask
              | Recording.Until_clear -> Int64.logand v mask = 0L
            in
            if not ok then begin
              Grt_sim.Clock.advance_ns clock spin_ns;
              loop (i + 1)
            end
          end
        in
        loop 0
      | Recording.Wait_irq { line } -> (
        let want = Recording.irq_line_of_int line in
        match Gpushim.wait_irq gpushim ~timeout_ns:4_000_000_000L with
        | Some got when Some got = want -> ()
        | Some got_line ->
          raise
            (Divergence
               {
                 kind = Irq_mismatch;
                 index;
                 reg = -1;
                 expected = Int64.of_int line;
                 got = Int64.of_int (Recording.irq_line_to_int got_line);
               })
        | None ->
          raise
            (Divergence
               { kind = Irq_mismatch; index; reg = -1; expected = Int64.of_int line; got = -1L })))
    entries

let replay ~gpushim ~signing_key ~blob ~input ~params ?energy () =
  let rec_t =
    match Recording.verify_and_parse ~key:signing_key blob with
    | Ok r -> r
    | Error e -> raise (Rejected e)
  in
  let dev = Gpushim.device gpushim in
  let sku = Device.sku dev in
  if not (Int64.equal rec_t.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id) then
    raise
      (Rejected
         (Printf.sprintf "recording is for GPU %Lx but this device is %Lx (SKU mismatch)"
            rec_t.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id));
  let clock = Device.clock dev in
  let mem = Gpushim.mem gpushim in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  let start_s = Grt_sim.Clock.now_s clock in
  Gpushim.isolate gpushim;
  Gpushim.reset_gpu gpushim;
  (* Install fresh data into the recorded slots before feeding stimuli. *)
  (match Recording.input_slot rec_t with
  | Some slot -> write_slot_floats mem slot input
  | None -> raise (Rejected "recording has no input slot"));
  let param_slots = Recording.param_slots rec_t in
  List.iter
    (fun (name, values) ->
      match List.find_opt (fun s -> String.equal s.Recording.slot_name name) param_slots with
      | Some slot -> write_slot_floats mem slot values
      | None -> raise (Rejected (Printf.sprintf "unknown parameter slot %s" name)))
    params;
  let reads_verified = ref 0 and skipped = ref 0 and applied = ref 0 in
  let store = Memsync.Store.create () in
  apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied
    rec_t.Recording.entries;
  let output =
    match Recording.output_slot rec_t with
    | Some slot -> read_slot_floats mem slot
    | None -> raise (Rejected "recording has no output slot")
  in
  (* Clean up all hardware state before handing the GPU back (§3.2). *)
  Gpushim.reset_gpu gpushim;
  Gpushim.release gpushim;
  {
    output;
    delay_s = Grt_sim.Clock.now_s clock -. start_s;
    entries_applied = !applied;
    reads_verified = !reads_verified;
    reads_skipped_nondet = !skipped;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }

let replay_segments ~gpushim ~signing_key ~blobs ~input ~params ?energy () =
  if blobs = [] then raise (Rejected "no segments");
  let dev = Gpushim.device gpushim in
  let sku = Device.sku dev in
  let segments =
    List.map
      (fun blob ->
        match Recording.verify_and_parse ~key:signing_key blob with
        | Ok r ->
          if not (Int64.equal r.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id) then
            raise (Rejected "segment recorded on a different GPU SKU");
          r
        | Error e -> raise (Rejected e))
      blobs
  in
  let clock = Device.clock dev in
  let mem = Gpushim.mem gpushim in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  let start_s = Grt_sim.Clock.now_s clock in
  Gpushim.isolate gpushim;
  Gpushim.reset_gpu gpushim;
  (* Fresh input into the first segment; parameters into whichever segment
     declares their slot. *)
  (match Recording.input_slot (List.hd segments) with
  | Some slot -> write_slot_floats mem slot input
  | None -> raise (Rejected "first segment has no input slot"));
  List.iter
    (fun (name, values) ->
      let slot =
        List.find_map
          (fun seg ->
            List.find_opt (fun s -> String.equal s.Recording.slot_name name)
              (Recording.param_slots seg))
          segments
      in
      match slot with
      | Some slot -> write_slot_floats mem slot values
      | None -> raise (Rejected (Printf.sprintf "unknown parameter slot %s" name)))
    params;
  let reads_verified = ref 0 and skipped = ref 0 and applied = ref 0 in
  let store = Memsync.Store.create () in
  List.iter
    (fun seg ->
      apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied
        seg.Recording.entries)
    segments;
  let last = List.nth segments (List.length segments - 1) in
  let output =
    match Recording.output_slot last with
    | Some slot -> read_slot_floats mem slot
    | None -> raise (Rejected "last segment has no output slot")
  in
  Gpushim.reset_gpu gpushim;
  Gpushim.release gpushim;
  {
    output;
    delay_s = Grt_sim.Clock.now_s clock -. start_s;
    entries_applied = !applied;
    reads_verified = !reads_verified;
    reads_skipped_nondet = !skipped;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }
