module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem

exception Rejected of string

type divergence_kind = Value_mismatch | Poll_timeout | Irq_mismatch

let divergence_kind_name = function
  | Value_mismatch -> "value mismatch"
  | Poll_timeout -> "poll timeout"
  | Irq_mismatch -> "IRQ mismatch"

exception
  Divergence of { kind : divergence_kind; index : int; reg : int; expected : int64; got : int64 }

type result = {
  output : float array;
  delay_s : float;
  entries_applied : int;
  reads_verified : int;
  reads_skipped_nondet : int;
  energy_j : float option;
}

let write_slot_floats mem (slot : Recording.slot) values =
  (* A silent [min] here once truncated oversized arrays and left stale
     bytes beyond short ones — either way the replay computes on data the
     caller did not supply. Reject mismatches outright. *)
  let expected = slot.Recording.actual_bytes / 4 in
  if Array.length values <> expected then
    raise
      (Rejected
         (Printf.sprintf "slot %s expects %d floats but got %d" slot.Recording.slot_name
            expected (Array.length values)));
  Mem.write_f32_array mem slot.Recording.pa values

let read_slot_floats mem (slot : Recording.slot) =
  Mem.read_f32_array mem slot.Recording.pa (slot.Recording.actual_bytes / 4)

let apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied entries =
  Array.iteri
    (fun index entry ->
      incr applied;
      Grt_sim.Clock.advance_ns clock Grt_sim.Costs.replayer_step_ns;
      match entry with
      | Recording.Mem_load { pages } ->
        (* The metastate snapshot for the upcoming interactions. *)
        List.iter (fun (pfn, data) -> Mem.set_page mem pfn data) pages
      | Recording.Mem_load_enc { records } ->
        (* Tagged snapshot: decode in log order; hash references resolve
           against bodies earlier entries carried in full. *)
        ignore (Memsync.decode_records store mem records)
      | Recording.Reg_write { reg; value } -> Device.write_reg dev reg value
      | Recording.Reg_read { reg; value; verify } ->
        let got = Device.read_reg dev reg in
        if verify then begin
          incr reads_verified;
          if not (Int64.equal got value) then
            raise (Divergence { kind = Value_mismatch; index; reg; expected = value; got })
        end
        else incr skipped
      | Recording.Poll { reg; mask; cond; max_iters; spin_ns } ->
        let rec loop i =
          if i >= max_iters then
            (* Not a wrong value — the condition never held within the
               recorded iteration budget. [expected] carries the mask. *)
            raise (Divergence { kind = Poll_timeout; index; reg; expected = mask; got = -1L })
          else begin
            let v = Device.read_reg dev reg in
            let ok =
              match cond with
              | Recording.Until_set -> Int64.logand v mask = mask
              | Recording.Until_clear -> Int64.logand v mask = 0L
            in
            if not ok then begin
              Grt_sim.Clock.advance_ns clock spin_ns;
              loop (i + 1)
            end
          end
        in
        loop 0
      | Recording.Wait_irq { line } -> (
        let want = Recording.irq_line_of_int line in
        match Gpushim.wait_irq gpushim ~timeout_ns:4_000_000_000L with
        | Some got when Some got = want -> ()
        | Some got_line ->
          raise
            (Divergence
               {
                 kind = Irq_mismatch;
                 index;
                 reg = -1;
                 expected = Int64.of_int line;
                 got = Int64.of_int (Recording.irq_line_to_int got_line);
               })
        | None ->
          raise
            (Divergence
               { kind = Irq_mismatch; index; reg = -1; expected = Int64.of_int line; got = -1L })))
    entries

(* §3.2 cleanup, exception-safe: a [Divergence] (or any other exception)
   raised mid-session must not leave the GPU isolated and dirty — the next
   session would find it locked to the TEE with stale jobs pending. On the
   success path the body has already reset and released, so the finalizer
   sees [isolated = false] and does nothing; the observable behaviour of a
   clean replay is unchanged. *)
let protect_session gpushim body =
  Fun.protect
    ~finally:(fun () ->
      if Gpushim.isolated gpushim then begin
        (try Gpushim.reset_gpu gpushim with _ -> ());
        Gpushim.release gpushim
      end)
    body

let check_sku dev (rec_t : Recording.t) =
  let sku = Device.sku dev in
  if not (Int64.equal rec_t.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id) then
    raise
      (Rejected
         (Printf.sprintf "recording is for GPU %Lx but this device is %Lx (SKU mismatch)"
            rec_t.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id))

let replay ~gpushim ~signing_key ~blob ~input ~params ?energy () =
  let rec_t =
    match Recording.verify_and_parse ~key:signing_key blob with
    | Ok r -> r
    | Error e -> raise (Rejected e)
  in
  let dev = Gpushim.device gpushim in
  check_sku dev rec_t;
  let clock = Device.clock dev in
  let mem = Gpushim.mem gpushim in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  let start_s = Grt_sim.Clock.now_s clock in
  Gpushim.isolate gpushim;
  protect_session gpushim @@ fun () ->
  Gpushim.reset_gpu gpushim;
  (* Install fresh data into the recorded slots before feeding stimuli. *)
  (match Recording.input_slot rec_t with
  | Some slot -> write_slot_floats mem slot input
  | None -> raise (Rejected "recording has no input slot"));
  let param_slots = Recording.param_slots rec_t in
  List.iter
    (fun (name, values) ->
      match List.find_opt (fun s -> String.equal s.Recording.slot_name name) param_slots with
      | Some slot -> write_slot_floats mem slot values
      | None -> raise (Rejected (Printf.sprintf "unknown parameter slot %s" name)))
    params;
  let reads_verified = ref 0 and skipped = ref 0 and applied = ref 0 in
  let store = Memsync.Store.create () in
  apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied
    rec_t.Recording.entries;
  let output =
    match Recording.output_slot rec_t with
    | Some slot -> read_slot_floats mem slot
    | None -> raise (Rejected "recording has no output slot")
  in
  (* Clean up all hardware state before handing the GPU back (§3.2). *)
  Gpushim.reset_gpu gpushim;
  Gpushim.release gpushim;
  {
    output;
    delay_s = Grt_sim.Clock.now_s clock -. start_s;
    entries_applied = !applied;
    reads_verified = !reads_verified;
    reads_skipped_nondet = !skipped;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }

let replay_segments ~gpushim ~signing_key ~blobs ~input ~params ?energy () =
  if blobs = [] then raise (Rejected "no segments");
  let dev = Gpushim.device gpushim in
  let sku = Device.sku dev in
  let segments =
    List.map
      (fun blob ->
        match Recording.verify_and_parse ~key:signing_key blob with
        | Ok r ->
          if not (Int64.equal r.Recording.gpu_id sku.Grt_gpu.Sku.gpu_id) then
            raise (Rejected "segment recorded on a different GPU SKU");
          r
        | Error e -> raise (Rejected e))
      blobs
  in
  let clock = Device.clock dev in
  let mem = Gpushim.mem gpushim in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  let start_s = Grt_sim.Clock.now_s clock in
  Gpushim.isolate gpushim;
  protect_session gpushim @@ fun () ->
  Gpushim.reset_gpu gpushim;
  (* Fresh input into the first segment; parameters into whichever segment
     declares their slot. *)
  (match Recording.input_slot (List.hd segments) with
  | Some slot -> write_slot_floats mem slot input
  | None -> raise (Rejected "first segment has no input slot"));
  List.iter
    (fun (name, values) ->
      let slot =
        List.find_map
          (fun seg ->
            List.find_opt (fun s -> String.equal s.Recording.slot_name name)
              (Recording.param_slots seg))
          segments
      in
      match slot with
      | Some slot -> write_slot_floats mem slot values
      | None -> raise (Rejected (Printf.sprintf "unknown parameter slot %s" name)))
    params;
  let reads_verified = ref 0 and skipped = ref 0 and applied = ref 0 in
  let store = Memsync.Store.create () in
  List.iter
    (fun seg ->
      apply_entries ~gpushim ~clock ~mem ~dev ~store ~reads_verified ~skipped ~applied
        seg.Recording.entries)
    segments;
  let last = List.nth segments (List.length segments - 1) in
  let output =
    match Recording.output_slot last with
    | Some slot -> read_slot_floats mem slot
    | None -> raise (Rejected "last segment has no output slot")
  in
  Gpushim.reset_gpu gpushim;
  Gpushim.release gpushim;
  {
    output;
    delay_s = Grt_sim.Clock.now_s clock -. start_s;
    entries_applied = !applied;
    reads_verified = !reads_verified;
    reads_skipped_nondet = !skipped;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }

(* ---- compiled replay (Replay_prog fast path) ---- *)

(* Execute a poll op. Warm path: charge the clock for the [hint] failed
   iterations the interpreter would have spun through — each one a register
   read plus the recorded spin — then read once. The device model fires
   events by deadline against the virtual clock, so one read at the
   advanced time observes exactly what the interpreter's (hint+1)-th read
   observed, at the same virtual cost. If the GPU is not ready at the
   hinted iteration we fall back to the live spin from hint+1, which again
   matches the interpreter's clock arithmetic exactly; either way the
   first-success iteration is re-learned for the next execution. *)
let exec_poll ~clock ~dev ~reg ~mask ~cond ~max_iters ~spin_ns ~index ~hint =
  let ok v =
    match cond with
    | Recording.Until_set -> Int64.logand v mask = mask
    | Recording.Until_clear -> Int64.logand v mask = 0L
  in
  let rec live i =
    if i >= max_iters then
      raise (Divergence { kind = Poll_timeout; index; reg; expected = mask; got = -1L })
    else begin
      let v = Device.read_reg dev reg in
      if ok v then i
      else begin
        Grt_sim.Clock.advance_ns clock spin_ns;
        live (i + 1)
      end
    end
  in
  if hint > 0 && hint < max_iters then begin
    Grt_sim.Clock.advance_ns clock
      (Int64.mul (Int64.of_int hint) (Int64.add spin_ns Grt_sim.Costs.mmio_access_ns));
    let v = Device.read_reg dev reg in
    if ok v then hint
    else begin
      Grt_sim.Clock.advance_ns clock spin_ns;
      live (hint + 1)
    end
  end
  else live 0

let exec_prog ~gpushim ~clock ~mem ~dev ?tracer ?hists (prog : Replay_prog.t) ~reads_verified
    ~skipped ~applied () =
  let open Replay_prog in
  (* A live store is needed only while some dynamic load is still uncached;
     once every decode is memoized, replays skip content-store bookkeeping
     entirely. While it exists, every entry that would have fed the
     interpreter's store must feed this one, or a later hash reference
     could dangle. *)
  let needs_store =
    Array.exists
      (fun (g : group) ->
        Array.exists (function Load_dynamic { cached = None; _ } -> true | _ -> false) g.ops)
      prog.groups
  in
  let store = if needs_store then Some (Memsync.Store.create ()) else None in
  let step () =
    incr applied;
    Grt_sim.Clock.advance_ns clock Grt_sim.Costs.replayer_step_ns
  in
  Array.iter
    (fun (g : group) ->
      if not g.checked then begin
        (match g.chunk with
        | Some c ->
          Grt_sim.Tracer.span_opt tracer ~cat:Grt_sim.Tracer.Replay_verify ~name:"chunk"
            ~args:[ ("entry", string_of_int c.Recording.chunk_first) ]
          @@ fun () ->
          Grt_sim.Hist.record_opt hists Grt_sim.Hist.Replay_chunk_bytes
            (Bytes.length c.Recording.chunk_raw);
          if not (Recording.verify_chunk c) then
            raise
              (Rejected
                 (Printf.sprintf "recording: chunk at entry %d failed verification"
                    c.Recording.chunk_first))
        | None -> ());
        g.checked <- true
      end;
      Array.iter
        (fun op ->
          match op with
          | Write_run { regs; values } ->
            for k = 0 to Array.length regs - 1 do
              step ();
              Device.write_reg dev regs.(k) values.(k)
            done
          | Read { reg; value; verify; index } ->
            step ();
            let got = Device.read_reg dev reg in
            if verify then begin
              incr reads_verified;
              if not (Int64.equal got value) then
                raise (Divergence { kind = Value_mismatch; index; reg; expected = value; got })
            end
            else incr skipped
          | Poll p ->
            step ();
            p.hint <-
              exec_poll ~clock ~dev ~reg:p.reg ~mask:p.mask ~cond:p.cond ~max_iters:p.max_iters
                ~spin_ns:p.spin_ns ~index:p.index ~hint:p.hint
          | Wait_irq { want; line; index } -> (
            step ();
            match Gpushim.wait_irq gpushim ~timeout_ns:4_000_000_000L with
            | Some got when got = want -> ()
            | Some got_line ->
              raise
                (Divergence
                   {
                     kind = Irq_mismatch;
                     index;
                     reg = -1;
                     expected = Int64.of_int line;
                     got = Int64.of_int (Recording.irq_line_to_int got_line);
                   })
            | None ->
              raise
                (Divergence
                   { kind = Irq_mismatch; index; reg = -1; expected = Int64.of_int line; got = -1L }))
          | Load_static l ->
            step ();
            (if l.learn then
               match store with
               | Some s -> Array.iter (fun (_, data) -> Memsync.Store.learn s data) l.pages
               | None -> ());
            let install () =
              let stamps =
                Array.map
                  (fun (pfn, data) ->
                    Mem.set_page mem pfn data;
                    Mem.page_gen mem pfn)
                  l.pages
              in
              l.stamps <- Some (mem, stamps)
            in
            (* Warm sessions re-install the same image into the same memory;
               an unchanged generation proves the page still holds it. *)
            (match l.stamps with
            | Some (m, stamps) when m == mem ->
              Array.iteri
                (fun k (pfn, data) ->
                  if not (Int64.equal (Mem.page_gen mem pfn) stamps.(k)) then begin
                    Mem.set_page mem pfn data;
                    stamps.(k) <- Mem.page_gen mem pfn
                  end)
                l.pages
            | _ -> install ());
          | Load_dynamic d -> (
            step ();
            match d.cached with
            | Some pages ->
              Array.iter
                (fun (_, data) ->
                  match store with Some s -> Memsync.Store.learn s data | None -> ())
                pages;
              Array.iter (fun (pfn, data) -> Mem.set_page mem pfn data) pages
            | None ->
              let s =
                match store with Some s -> s | None -> assert false (* needs_store saw us *)
              in
              d.cached <- Some (Array.of_list (Memsync.decode_records s mem d.records))))
        g.ops)
    prog.groups

let replay_compiled ~gpushim ~prog ~input ~params ?energy ?tracer ?hists () =
  let rec_t = Replay_prog.source prog in
  let dev = Gpushim.device gpushim in
  check_sku dev rec_t;
  let clock = Device.clock dev in
  let mem = Gpushim.mem gpushim in
  let energy_start = Option.map Grt_sim.Energy.total_j energy in
  let start_s = Grt_sim.Clock.now_s clock in
  Gpushim.isolate gpushim;
  protect_session gpushim @@ fun () ->
  (* Batch sessions reuse one shim: power-cycle back to the pristine state
     the recording was made against (free on a fresh shim), then run the
     same recorded-cost soft reset the interpreter runs. *)
  Gpushim.power_cycle gpushim;
  Gpushim.reset_gpu gpushim;
  (match Recording.input_slot rec_t with
  | Some slot -> write_slot_floats mem slot input
  | None -> raise (Rejected "recording has no input slot"));
  let param_slots = Recording.param_slots rec_t in
  List.iter
    (fun (name, values) ->
      match List.find_opt (fun s -> String.equal s.Recording.slot_name name) param_slots with
      | Some slot -> write_slot_floats mem slot values
      | None -> raise (Rejected (Printf.sprintf "unknown parameter slot %s" name)))
    params;
  let reads_verified = ref 0 and skipped = ref 0 and applied = ref 0 in
  Grt_sim.Tracer.span_opt tracer ~cat:Grt_sim.Tracer.Replay_execute ~name:"execute" (fun () ->
      exec_prog ~gpushim ~clock ~mem ~dev ?tracer ?hists prog ~reads_verified ~skipped ~applied ());
  Grt_sim.Hist.record_opt hists Grt_sim.Hist.Replay_exec_entries !applied;
  let output =
    match Recording.output_slot rec_t with
    | Some slot -> read_slot_floats mem slot
    | None -> raise (Rejected "recording has no output slot")
  in
  Gpushim.reset_gpu gpushim;
  Gpushim.release gpushim;
  {
    output;
    delay_s = Grt_sim.Clock.now_s clock -. start_s;
    entries_applied = !applied;
    reads_verified = !reads_verified;
    reads_skipped_nondet = !skipped;
    energy_j =
      (match (energy, energy_start) with
      | Some e, Some j0 -> Some (Grt_sim.Energy.total_j e -. j0)
      | _ -> None);
  }
