(** Recordings: the interaction log plus the data-slot binding table.

    A recording is what the cloud service produces from a dry run and what
    the client TEE replays (§2.3, §3.2). It contains:

    - the ordered CPU→GPU stimuli and GPU→CPU responses: register writes,
      register reads (with expected values), polling loops, interrupt waits;
    - memory images: the metastate pages (page tables, shaders, command
      streams) the cloud synchronized before each job;
    - the binding table: where new inputs, model parameters and outputs live
      in the recorded GPU address space — replay injects fresh data there;
    - the SKU identity it was recorded against, and the cloud's signature.

    The replayer refuses recordings whose signature does not verify or whose
    SKU does not match the local GPU (§2.4). *)

type poll_cond = Until_set | Until_clear

type entry =
  | Reg_write of { reg : int; value : int64 }
  | Reg_read of { reg : int; value : int64; verify : bool }
      (** [verify = false] for legitimately nondeterministic registers *)
  | Poll of { reg : int; mask : int64; cond : poll_cond; max_iters : int; spin_ns : int64 }
  | Wait_irq of { line : int }  (** 0 = job, 1 = gpu, 2 = mmu *)
  | Mem_load of { pages : (int64 * bytes) list }  (** (pfn, contents) *)
  | Mem_load_enc of { records : (int64 * Memsync.encoding * bytes) list }
      (** tagged page records under the memsync dedup/adaptive wire format:
          [(pfn, encoding, wire body)]. Decoded in log order against the
          replayer's content store — a hash reference always resolves to a
          body carried in full by an earlier record. *)

type log = { mutable items : entry list; mutable len : int }
(** Entry log under construction, newest first, with O(1) length. *)

val new_log : unit -> log
val log_push : log -> entry -> unit

val irq_line_to_int : Grt_gpu.Device.irq_line -> int
val irq_line_of_int : int -> Grt_gpu.Device.irq_line option

type slot = {
  slot_name : string;
  kind : [ `Input | `Output | `Param ];
  va : int64;
  pa : int64;
  actual_bytes : int;
  model_bytes : int;
}

type t = {
  workload : string;
  gpu_id : int64;
  entries : entry array;
  slots : slot list;
}

val input_slot : t -> slot option
val output_slot : t -> slot option
val param_slots : t -> slot list

val serialize : t -> bytes
(** Version-1 flat body (no signature): the legacy on-wire entry log. *)

val deserialize : bytes -> (t, string) result

val default_chunk_entries : int
(** Entries per chunk used by [sign] unless overridden (64). *)

val sign : ?chunk_entries:int -> key:Grt_tee.Crypto.key -> t -> bytes
(** Signed version-2 chunked blob — the artifact the client downloads.
    The entry log is split into chunks of [chunk_entries]; the signed
    header carries each chunk's FNV hash and their Merkle root, so a
    replayer can verify chunks as it streams them. *)

val sign_v1 : key:Grt_tee.Crypto.key -> t -> bytes
(** Legacy version-1 blob: flat body with an appended MAC. Still produced
    by old cloud services; [verify_and_parse] accepts both formats. *)

val verify_and_parse : key:Grt_tee.Crypto.key -> bytes -> (t, string) result
(** Full eager verification: signature, and for v2 blobs every chunk hash
    and the Merkle root. Accepts v1 and v2 blobs. *)

(** {2 Streaming access}

    The replay compiler parses the signed header once and defers each
    chunk's hash check to just before that chunk executes. *)

type chunk = {
  chunk_first : int;  (** index of the chunk's first entry in the log *)
  chunk_count : int;
  chunk_hash : int64;  (** signed FNV-1a hash of [chunk_raw] *)
  chunk_raw : bytes;
}

type verified = {
  vrec : t;
  vversion : int;  (** wire version the blob used: 1 or 2 *)
  vchunks : chunk array;  (** empty for v1 blobs (verified up front) *)
  vroot : int64;  (** Merkle root over chunk hashes — the recording's identity *)
}

val parse_signed : key:Grt_tee.Crypto.key -> bytes -> (verified, string) result
(** Verify the MACed portion (whole blob for v1, header for v2) and parse.
    v2 chunk bodies are {e not} hash-checked here — callers stream-verify
    them with [verify_chunk], or use [verify_and_parse] for the eager
    contract. *)

val verify_chunk : chunk -> bool
(** [verify_chunk c] recomputes [c.chunk_raw]'s hash against the signed
    [c.chunk_hash]. *)

val merkle_root : int64 list -> int64
(** Pairwise [Hashing.combine] fold; the identity attested for a replay. *)

val size_bytes : t -> int
val count_entries : t -> [ `Writes | `Reads | `Polls | `Irqs | `Mem_pages ] -> int
