(** Recordings: the interaction log plus the data-slot binding table.

    A recording is what the cloud service produces from a dry run and what
    the client TEE replays (§2.3, §3.2). It contains:

    - the ordered CPU→GPU stimuli and GPU→CPU responses: register writes,
      register reads (with expected values), polling loops, interrupt waits;
    - memory images: the metastate pages (page tables, shaders, command
      streams) the cloud synchronized before each job;
    - the binding table: where new inputs, model parameters and outputs live
      in the recorded GPU address space — replay injects fresh data there;
    - the SKU identity it was recorded against, and the cloud's signature.

    The replayer refuses recordings whose signature does not verify or whose
    SKU does not match the local GPU (§2.4). *)

type poll_cond = Until_set | Until_clear

type entry =
  | Reg_write of { reg : int; value : int64 }
  | Reg_read of { reg : int; value : int64; verify : bool }
      (** [verify = false] for legitimately nondeterministic registers *)
  | Poll of { reg : int; mask : int64; cond : poll_cond; max_iters : int; spin_ns : int64 }
  | Wait_irq of { line : int }  (** 0 = job, 1 = gpu, 2 = mmu *)
  | Mem_load of { pages : (int64 * bytes) list }  (** (pfn, contents) *)
  | Mem_load_enc of { records : (int64 * Memsync.encoding * bytes) list }
      (** tagged page records under the memsync dedup/adaptive wire format:
          [(pfn, encoding, wire body)]. Decoded in log order against the
          replayer's content store — a hash reference always resolves to a
          body carried in full by an earlier record. *)

val irq_line_to_int : Grt_gpu.Device.irq_line -> int
val irq_line_of_int : int -> Grt_gpu.Device.irq_line option

type slot = {
  slot_name : string;
  kind : [ `Input | `Output | `Param ];
  va : int64;
  pa : int64;
  actual_bytes : int;
  model_bytes : int;
}

type t = {
  workload : string;
  gpu_id : int64;
  entries : entry array;
  slots : slot list;
}

val input_slot : t -> slot option
val output_slot : t -> slot option
val param_slots : t -> slot list

val serialize : t -> bytes
val deserialize : bytes -> (t, string) result

val sign : key:Grt_tee.Crypto.key -> t -> bytes
(** Serialized recording with an appended signature — the artifact the
    client downloads. *)

val verify_and_parse : key:Grt_tee.Crypto.key -> bytes -> (t, string) result

val size_bytes : t -> int
val count_entries : t -> [ `Writes | `Reads | `Polls | `Irqs | `Mem_pages ] -> int
