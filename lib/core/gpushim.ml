module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem
module Regs = Grt_gpu.Regs
module Worlds = Grt_tee.Worlds
module Sexpr = Grt_util.Sexpr
module Metrics = Grt_sim.Metrics

type wire_expr =
  | Lit of int64
  | Batch of int
  | Bop of Sexpr.binop * wire_expr * wire_expr
  | Unot of wire_expr

type wire_access = W_read of int | W_write of int * wire_expr

type t = {
  clock : Grt_sim.Clock.t;
  mem : Mem.t;
  device : Device.t;
  worlds : Worlds.t;
  monitor : Grt_tee.Monitor.t;
  uplink : Memsync.t;
  metrics : Metrics.t option;
  mutable isolated : bool;
}

let gpu_mmio = "gpu-mmio"
let gpu_carveout = "gpu-memory"
let gpu_power_clock = "gpu-power-clock"

let gpu_resources = [ gpu_mmio; gpu_carveout; gpu_power_clock ]

(* GIC lines of the GPU block, as in the device tree (§6). *)
let irq_job = 33
let irq_gpu = 34
let irq_mmu = 35
let gpu_irqs = [ irq_job; irq_gpu; irq_mmu ]

let create ~clock ~sku ?energy ?counters ~session_salt ~cfg () =
  let mem = Mem.create () in
  let device = Device.create ?energy ~clock ~mem ~sku ~session_salt () in
  let worlds = Worlds.create () in
  List.iter (fun name -> Worlds.add_resource worlds ~name ~secure:false) gpu_resources;
  let monitor = Grt_tee.Monitor.create worlds in
  List.iter2
    (fun irq name -> Grt_tee.Monitor.register_interrupt monitor ~irq ~name)
    gpu_irqs [ "gpu-job"; "gpu-irq"; "gpu-mmu" ];
  {
    clock;
    mem;
    device;
    worlds;
    monitor;
    uplink = Memsync.create cfg;
    metrics = Option.map Metrics.of_counters counters;
    isolated = false;
  }

let device t = t.device
let mem t = t.mem
let worlds t = t.worlds
let monitor t = t.monitor
let uplink t = t.uplink

let isolate t =
  (* SMC into the monitor: TZASC flips plus interrupt rerouting (§6). *)
  Grt_tee.Monitor.smc_claim_for_secure t.monitor ~caller:Worlds.Secure ~resources:gpu_resources
    ~irqs:gpu_irqs;
  t.isolated <- true

let release t =
  Grt_tee.Monitor.smc_release t.monitor ~caller:Worlds.Secure ~resources:gpu_resources
    ~irqs:gpu_irqs;
  t.isolated <- false

let isolated t = t.isolated

exception Not_isolated

let count t key = match t.metrics with Some m -> Metrics.incr m key | None -> ()

let require_isolation t = if not t.isolated then raise Not_isolated

(* [limit] is how many batch slots are filled so far: a write may only
   reference reads that precede it in the request. *)
let rec eval_expr batch limit = function
  | Lit v -> v
  | Batch i ->
    if i < 0 || i >= limit then failwith "GPUShim: batch reference out of range"
    else batch.(i)
  | Bop (op, a, b) ->
    let va = eval_expr batch limit a and vb = eval_expr batch limit b in
    (match op with
    | Sexpr.Or -> Int64.logor va vb
    | Sexpr.And -> Int64.logand va vb
    | Sexpr.Xor -> Int64.logxor va vb
    | Sexpr.Add -> Int64.add va vb
    | Sexpr.Sub -> Int64.sub va vb
    | Sexpr.Shl -> Int64.shift_left va (Int64.to_int vb land 63)
    | Sexpr.Shr -> Int64.shift_right_logical va (Int64.to_int vb land 63))
  | Unot a -> Int64.lognot (eval_expr batch limit a)

let sniff_transtab t reg value =
  (* Learn page-table roots as the driver programs them, so metastate
     classification can walk the tables. *)
  for as_idx = 0 to Regs.as_count - 1 do
    if reg = Regs.as_transtab_lo as_idx then begin
      let root = Int64.logand value (Int64.lognot 0xFFFL) in
      if not (Int64.equal root 0L) then
        Memsync.register_pt_root t.uplink ~fmt:(Device.sku t.device).Grt_gpu.Sku.pt_format
          ~root_pa:root
    end
  done

let apply_accesses t accesses =
  require_isolation t;
  let n_reads =
    List.fold_left (fun n a -> match a with W_read _ -> n + 1 | W_write _ -> n) 0 accesses
  in
  let batch = Array.make n_reads 0L in
  let next_read = ref 0 in
  List.iter
    (fun access ->
      match access with
      | W_read reg ->
        count t Metrics.Client_reg_reads;
        batch.(!next_read) <- Device.read_reg t.device reg;
        incr next_read
      | W_write (reg, expr) ->
        count t Metrics.Client_reg_writes;
        let v = eval_expr batch !next_read expr in
        sniff_transtab t reg v;
        Device.write_reg t.device reg v)
    accesses;
  batch

let run_poll t ~reg ~mask ~cond ~max_iters ~spin_ns =
  require_isolation t;
  count t Metrics.Client_polls;
  let rec loop i =
    if i >= max_iters then None
    else begin
      let v = Device.read_reg t.device reg in
      let ok =
        match cond with
        | Grt_driver.Backend.Bits_set -> Int64.logand v mask = mask
        | Grt_driver.Backend.Bits_clear -> Int64.logand v mask = 0L
      in
      if ok then Some (i + 1, v)
      else begin
        Grt_sim.Clock.advance_ns t.clock spin_ns;
        loop (i + 1)
      end
    end
  in
  loop 0

let wait_irq t ~timeout_ns =
  require_isolation t;
  count t Metrics.Client_irq_waits;
  match Device.wait_for_irq t.device ~timeout_ns with
  | None -> None
  | Some line ->
    (* The monitor must be routing this line to the secure world, or the
       normal-world OS would have consumed the interrupt. *)
    let irq =
      match line with
      | Grt_gpu.Device.Job_irq -> irq_job
      | Grt_gpu.Device.Gpu_irq -> irq_gpu
      | Grt_gpu.Device.Mmu_irq -> irq_mmu
    in
    (match Grt_tee.Monitor.deliver_irq t.monitor ~irq with
    | Worlds.Secure -> Some line
    | Worlds.Normal -> raise Not_isolated)

let upload_meta t =
  require_isolation t;
  count t Metrics.Client_uploads;
  Memsync.sync_meta t.uplink t.mem

let load_pages t payload =
  require_isolation t;
  count t Metrics.Client_downloads;
  Memsync.apply t.uplink t.mem payload;
  (* The cloud now knows these contents; don't echo them back on upload. *)
  List.iter
    (fun (pfn, data) -> Memsync.note_peer_page t.uplink pfn data)
    (Memsync.pages payload)

let load_records t records =
  require_isolation t;
  count t Metrics.Client_downloads;
  let pages = Memsync.apply_records t.uplink t.mem records in
  List.iter (fun (pfn, data) -> Memsync.note_peer_page t.uplink pfn data) pages;
  pages

(* Cold power cycle between replay sessions that share one shim: pristine
   registers plus a clean dirty-page ledger, so the next session's cache
   flushes cost what the recording's did. Memory contents survive — every
   page the replay depends on is re-installed by the recording's own
   Mem_load entries or the fresh slot injection. *)
let power_cycle t =
  require_isolation t;
  Device.power_cycle t.device;
  Grt_gpu.Mem.clear_dirty (Device.mem t.device)

let reset_gpu t =
  require_isolation t;
  Device.write_reg t.device Regs.gpu_command Regs.cmd_soft_reset;
  let deadline = Int64.add (Grt_sim.Clock.now_ns t.clock) 10_000_000L in
  let rec wait () =
    let v = Device.read_reg t.device Regs.gpu_irq_rawstat in
    if Int64.logand v Regs.irq_reset_completed <> 0L then
      Device.write_reg t.device Regs.gpu_irq_clear Regs.irq_reset_completed
    else if Int64.compare (Grt_sim.Clock.now_ns t.clock) deadline < 0 then begin
      Grt_sim.Clock.advance_ns t.clock 1_000L;
      wait ()
    end
    else failwith "GPUShim: reset timeout"
  in
  wait ()
