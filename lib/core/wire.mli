(** Queue→wire conversion and message byte accounting (§4.1).

    A deferring shim accumulates {!pending} register accesses per thread;
    at a commit boundary the queue is lowered to the {!Gpushim.wire_access}
    form the client applies — reads become batch positions, write
    expressions are resolved against earlier reads of the same batch or
    against already-validated bindings — and the message sizes charged to
    the link are computed here, so cloud and client agree on the framing by
    construction. *)

type pending =
  | Qr of { reg : int; sym : Grt_util.Sexpr.sym }
  | Qw of { reg : int; expr : Grt_util.Sexpr.t }

exception Need_drain
(** A queued write references a {e speculative} binding from an earlier,
    not-yet-validated commit. Speculative values must never reach the
    client (§4.2): the caller drains outstanding commits — turning the
    binding into validated truth — and converts again. *)

val to_wire : pending list -> Gpushim.wire_access list
(** Lower a queue (oldest first) to the client wire form. Raises
    {!Need_drain} as described above; [Failure] on an unbound symbol that
    is not part of this batch (a shim bug, not a recoverable state). *)

val request_bytes : overhead:int -> int -> int
(** [request_bytes ~overhead n] — cloud→client commit message carrying [n]
    accesses: 24-byte header plus 14 bytes per access (opcode, register,
    operand) plus the configured per-message [overhead] (transport
    framing). *)

val response_bytes : overhead:int -> int -> int
(** [response_bytes ~overhead n] — client→cloud response carrying [n] read
    values: 16-byte header plus 8 bytes per value plus [overhead]. *)

val read_syms : pending list -> (int * Grt_util.Sexpr.sym) list
(** The queue's reads, in order, as (register, symbol) pairs. *)

val site_key : fn:string -> trigger:string -> pending list -> string
(** Stable identity of a driver commit site: the innermost hot function
    [fn] (or ["<cold>"]), the commit [trigger], and a hash of the queue's
    access signature (registers and read/write kinds, not values). Keys
    the speculation history (§4.2). *)
