(* Replay programs: a recording lowered once into a flat preprocessed form
   so batch replays skip parse/decode entirely (ROADMAP item 2).

   The interpreter in [Replayer.apply_entries] re-walks the raw entry log —
   re-matching constructors, re-decoding memsync wire records, re-spinning
   polls from iteration zero — on every replay. This pass runs once per
   recording and produces:

   - fused runs of consecutive register writes (one op, k stimuli);
   - polls carrying the first-success iteration learned on the first
     execution, so later replays charge the skipped spin time in one clock
     advance and read the register once (falling back to a live spin, and
     re-learning the hint, when the GPU is not ready at the hinted
     iteration);
   - memory images decoded at compile time wherever the wire records are
     position-independent (raw, compressed-raw, and hash references that
     resolve against content an earlier record carried); delta-encoded
     records depend on the live memory and stay dynamic, decoded on the
     first execution and memoized — sound because the metastate they
     patch is input-independent (§2.3).

   Verification is streaming for version-2 blobs: [of_blob] checks only
   the signed header; each chunk's hash is checked by the executor just
   before that chunk's ops run (and never again for the same program). *)

module Device = Grt_gpu.Device

type op =
  | Write_run of { regs : int array; values : int64 array }
  | Read of { reg : int; value : int64; verify : bool; index : int }
  | Poll of {
      reg : int;
      mask : int64;
      cond : Recording.poll_cond;
      max_iters : int;
      spin_ns : int64;
      index : int;
      mutable hint : int;  (** first-success iteration of the last execution; -1 = unknown *)
    }
  | Wait_irq of { want : Device.irq_line; line : int; index : int }
  | Load_static of {
      pages : (int64 * bytes) array;
      learn : bool;
      mutable stamps : (Grt_gpu.Mem.t * int64 array) option;
    }
      (** memory image precomputed at compile; [learn] feeds the bodies to
          the execution store (tagged records do, plain [Mem_load]s do not) *)
  | Load_dynamic of {
      records : (int64 * Memsync.encoding * bytes) list;
      index : int;
      mutable cached : (int64 * bytes) array option;
    }

type group = {
  ops : op array;
  chunk : Recording.chunk option;  (** [None]: covered by the v1 whole-blob MAC *)
  mutable checked : bool;
}

type stats = {
  entries : int;
  ops : int;
  fused_writes : int;  (** register writes absorbed into multi-write runs *)
  static_pages : int;  (** memory-image pages decoded at compile time *)
  dynamic_loads : int;  (** Mem_load_enc entries that must decode live once *)
  polls : int;
}

type t = {
  source : Recording.t;
  root : int64;
  wire_version : int;
  groups : group array;
  stats : stats;
}

let source t = t.source
let root t = t.root
let wire_version t = t.wire_version
let stats t = t.stats

(* Decode one tagged record without touching live memory, when its encoding
   permits: raw bodies and hash references to content already in [store].
   Delta records patch whatever the page holds at that point of the replay,
   so they are never static. *)
let static_body store (_pfn, enc, body) =
  match enc with
  | Memsync.Enc_raw -> Some body
  | Memsync.Enc_raw_rc -> Some (Grt_util.Range_coder.decode body)
  | Memsync.Enc_hash_ref ->
    if Bytes.length body <> 8 then failwith "Memsync: malformed hash reference"
    else Memsync.Store.find store (Bytes.get_int64_le body 0)
  | Memsync.Enc_delta | Memsync.Enc_delta_rc -> None

(* The compile-time store mirrors what the executor's store will have
   learned: every statically decodable body. It can only ever hold a subset
   of the execution store (delta results are unknown here), so a hash
   reference it resolves is guaranteed to resolve identically at run time,
   and one it cannot resolve is conservatively classified dynamic. *)
let lower_mem_enc store ~index records =
  let decoded = List.map (fun r -> (r, static_body store r)) records in
  List.iter (function _, Some b -> Memsync.Store.learn store b | _, None -> ()) decoded;
  if List.for_all (fun (_, d) -> d <> None) decoded then
    Load_static
      {
        pages = Array.of_list (List.map (fun ((pfn, _, _), d) -> (pfn, Option.get d)) decoded);
        learn = true;
        stamps = None;
      }
  else Load_dynamic { records; index; cached = None }

let lower_range store entries ~first ~count =
  let ops = ref [] in
  let stop = first + count in
  let i = ref first in
  while !i < stop do
    (match entries.(!i) with
    | Recording.Reg_write _ ->
      let j = ref !i in
      while
        !j < stop && match entries.(!j) with Recording.Reg_write _ -> true | _ -> false
      do
        incr j
      done;
      let n = !j - !i in
      let regs = Array.make n 0 and values = Array.make n 0L in
      for k = 0 to n - 1 do
        match entries.(!i + k) with
        | Recording.Reg_write { reg; value } ->
          regs.(k) <- reg;
          values.(k) <- value
        | _ -> assert false
      done;
      ops := Write_run { regs; values } :: !ops;
      i := !j - 1
    | Recording.Reg_read { reg; value; verify } -> ops := Read { reg; value; verify; index = !i } :: !ops
    | Recording.Poll { reg; mask; cond; max_iters; spin_ns } ->
      ops := Poll { reg; mask; cond; max_iters; spin_ns; index = !i; hint = -1 } :: !ops
    | Recording.Wait_irq { line } -> (
      match Recording.irq_line_of_int line with
      | Some want -> ops := Wait_irq { want; line; index = !i } :: !ops
      | None ->
        (* [Recording.deserialize] rejects these; belt and braces. *)
        failwith (Printf.sprintf "replay_prog: invalid IRQ line %d" line))
    | Recording.Mem_load { pages } ->
      ops := Load_static { pages = Array.of_list pages; learn = false; stamps = None } :: !ops
    | Recording.Mem_load_enc { records } -> ops := lower_mem_enc store ~index:!i records :: !ops);
    incr i
  done;
  Array.of_list (List.rev !ops)

let stats_of groups ~entries =
  let ops = ref 0 and fused = ref 0 and static_pages = ref 0 and dyn = ref 0 and polls = ref 0 in
  Array.iter
    (fun (g : group) ->
      ops := !ops + Array.length g.ops;
      Array.iter
        (function
          | Write_run { regs; _ } -> if Array.length regs > 1 then fused := !fused + Array.length regs - 1
          | Load_static { pages; _ } -> static_pages := !static_pages + Array.length pages
          | Load_dynamic _ -> incr dyn
          | Poll _ -> incr polls
          | Read _ | Wait_irq _ -> ())
        g.ops)
    groups;
  { entries; ops = !ops; fused_writes = !fused; static_pages = !static_pages; dynamic_loads = !dyn; polls = !polls }

(* Rebuild every op with freshly allocated boxes and arrays, in execution
   order. Lowering interleaves op allocation with the recording's 4 KiB page
   payloads, so the boxed registers/values the executor dereferences per
   entry end up scattered across the heap; copying them last packs the hot
   data contiguously and measurably cuts cache misses in the warm loop. The
   page payload bytes themselves are shared, not copied — they are cold
   until a (re)install. *)
let compact_groups groups =
  let box v = Int64.logor v 0L in
  let compact_op = function
    | Write_run { regs; values } ->
      Write_run { regs = Array.copy regs; values = Array.map box values }
    | Read { reg; value; verify; index } -> Read { reg; value = box value; verify; index }
    | Poll { reg; mask; cond; max_iters; spin_ns; index; hint } ->
      Poll { reg; mask = box mask; cond; max_iters; spin_ns = box spin_ns; index; hint }
    | Wait_irq _ as op -> op
    | Load_static { pages; learn; stamps } ->
      Load_static { pages = Array.map (fun (pfn, data) -> (box pfn, data)) pages; learn; stamps }
    | Load_dynamic _ as op -> op
  in
  Array.map (fun (g : group) -> { g with ops = Array.map compact_op g.ops }) groups

let compile ?tracer (v : Recording.verified) =
  Grt_sim.Tracer.span_opt tracer ~cat:Grt_sim.Tracer.Replay_compile ~name:"compile"
    ~args:
      [
        ("entries", string_of_int (Array.length v.Recording.vrec.Recording.entries));
        ("chunks", string_of_int (Array.length v.Recording.vchunks));
      ]
  @@ fun () ->
  let rec_t = v.Recording.vrec in
  let entries = rec_t.Recording.entries in
  let store = Memsync.Store.create () in
  let groups =
    if Array.length v.Recording.vchunks = 0 then
      (* v1 blob: the whole-body MAC already covered every entry. *)
      [|
        { ops = lower_range store entries ~first:0 ~count:(Array.length entries); chunk = None; checked = true };
      |]
    else
      Array.map
        (fun c ->
          {
            ops =
              lower_range store entries ~first:c.Recording.chunk_first
                ~count:c.Recording.chunk_count;
            chunk = Some c;
            checked = false;
          })
        v.Recording.vchunks
  in
  let groups = compact_groups groups in
  {
    source = rec_t;
    root = v.Recording.vroot;
    wire_version = v.Recording.vversion;
    groups;
    stats = stats_of groups ~entries:(Array.length entries);
  }

let of_blob ?tracer ~key blob =
  Result.map (compile ?tracer) (Recording.parse_signed ~key blob)
