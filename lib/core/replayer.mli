(** The in-TEE replayer (§2.3, §3.2).

    A few hundred lines with no GPU-stack dependency: it verifies a signed
    recording, locks the GPU to the secure world, loads the recorded
    metastate pages, injects fresh input and model parameters into the
    recorded data slots, and feeds the recorded register stimuli to the GPU
    — verifying that the GPU's responses match the recording (except
    registers marked nondeterministic). The GPU executes the same jobs on
    the new data and the output is read back from the recorded output slot.

    Rejects recordings that fail signature verification or that were
    recorded on a different GPU SKU. *)

exception Rejected of string

type divergence_kind =
  | Value_mismatch  (** a verified register read returned the wrong value *)
  | Poll_timeout
      (** a recorded poll never satisfied its condition within the recorded
          iteration budget; [expected] carries the poll mask, [got] is -1 *)
  | Irq_mismatch
      (** the wrong interrupt line fired, or none did ([got] = -1) *)

val divergence_kind_name : divergence_kind -> string

exception
  Divergence of { kind : divergence_kind; index : int; reg : int; expected : int64; got : int64 }
(** The GPU's behaviour departed from the recording — replay aborts rather
    than continue on corrupt state. [kind] distinguishes a genuine value
    mismatch from a poll that timed out or a missing/wrong interrupt. *)

type result = {
  output : float array;
  delay_s : float;  (** end-to-end replay delay *)
  entries_applied : int;
  reads_verified : int;
  reads_skipped_nondet : int;
  energy_j : float option;
}

val replay :
  gpushim:Gpushim.t ->
  signing_key:Grt_tee.Crypto.key ->
  blob:bytes ->
  input:float array ->
  params:(string * float array) list ->
  ?energy:Grt_sim.Energy.t ->
  unit ->
  result
(** [params] are keyed by the recording's parameter-slot names (the weight
    buffer names of the plan). Missing slots stay zero; unknown names raise
    {!Rejected}. *)

val replay_segments :
  gpushim:Gpushim.t ->
  signing_key:Grt_tee.Crypto.key ->
  blobs:bytes list ->
  input:float array ->
  params:(string * float array) list ->
  ?energy:Grt_sim.Energy.t ->
  unit ->
  result
(** Composable replay of per-layer recording segments (Figure 2): each
    segment is verified independently, the fresh input goes into the first
    segment's input slot, parameters into whichever segment declares them,
    intermediate activations flow through GPU memory, and the output comes
    from the last segment. The GPU is reset once before and once after the
    whole sequence. *)

val replay_compiled :
  gpushim:Gpushim.t ->
  prog:Replay_prog.t ->
  input:float array ->
  params:(string * float array) list ->
  ?energy:Grt_sim.Energy.t ->
  ?tracer:Grt_sim.Tracer.t ->
  ?hists:Grt_sim.Hist.set ->
  unit ->
  result
(** The fast path: execute a compiled replay program (see {!Replay_prog}).
    Compile once, call this per replay — parse, wire-record decode and (for
    v2 blobs) chunk-hash verification are not repeated; each chunk's hash
    is checked just before its first execution (streaming), polls reuse the
    first-success iteration learned by the previous execution, and decoded
    memory images are reused. Semantics — outputs, verification, divergence
    detection, virtual-clock cost per applied entry — match {!replay}
    exactly; the savings are host-side. The GPU is reset and released even
    when a {!Divergence} (or any other exception) aborts the session, as
    with {!replay}. *)
