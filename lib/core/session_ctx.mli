(** Shared context of one recording session.

    One [t] is created per {!Orchestrate.record} call and threaded through
    the pipeline stages (establish → boot → attempt loop → finalize/sign)
    in place of long optional-argument plumbing: the virtual clock, the
    client energy model, the counter set with its typed {!Grt_sim.Metrics}
    view, the diagnostic {!Grt_sim.Trace} ring (shared by the link and the
    driver shim), the seeded link, and the speculation history — plus the
    mutable rollback accounting the attempt loop updates. *)

type t = {
  cfg : Mode.config;
  seed : int64;
  sku : Grt_gpu.Sku.t;
  net : Grt_mlfw.Network.t;
  plan : Grt_mlfw.Network.plan;
  granularity : [ `Monolithic | `Per_layer ];
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t;
  counters : Grt_sim.Counters.t;
  metrics : Grt_sim.Metrics.t;  (** typed view over [counters] *)
  trace : Grt_sim.Trace.t;  (** link + shim event ring, dumped on failure *)
  tracer : Grt_sim.Tracer.t option;  (** span tracer; present iff [observe] *)
  hists : Grt_sim.Hist.set option;  (** latency/size histograms; iff [observe] *)
  link : Grt_net.Link.t;
  history : Spec_history.t;  (** shared across attempts (and sessions, §7.3) *)
  mutable inject_fault_after : int option;
      (** armed once, on the first attempt that consumes it (§7.3) *)
  mutable rollbacks : int;
  mutable rollback_s : float;
}

val create :
  ?history:Spec_history.t ->
  ?inject_fault_after:int ->
  ?window:int ->
  ?trace_capacity:int ->
  ?observe:bool ->
  cfg:Mode.config ->
  profile:Grt_net.Profile.t ->
  sku:Grt_gpu.Sku.t ->
  net:Grt_mlfw.Network.t ->
  seed:int64 ->
  granularity:[ `Monolithic | `Per_layer ] ->
  unit ->
  t
(** Build the session infrastructure: clock, energy, counters/metrics,
    trace ring, and the link (fault-seeded from [seed]; [window], default 1,
    is the link's sliding-window size). [trace_capacity] sizes the event
    ring. [observe] (default false) additionally creates the span
    {!Grt_sim.Tracer} and the {!Grt_sim.Hist} registry; the default path
    carries [None]s and stays byte-identical to an unobserved build. *)

val session_salt : t -> int64
(** The GPU's nondeterministic-state salt: a property of the physical
    device, stable across rollback attempts within a session. *)

val charge_rollback : t -> float -> unit
(** Account one rollback of the given cost and advance the clock by it. *)

val stat : t -> Grt_sim.Metrics.key -> int
(** Typed counter lookup, for assembling the outcome record. *)
