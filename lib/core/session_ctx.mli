(** Shared context of one recording session.

    One [t] is created per recording session and threaded through the
    pipeline stages (establish → boot → attempt loop → finalize/sign)
    in place of long optional-argument plumbing: the virtual clock, the
    client energy model, the counter set with its typed {!Grt_sim.Metrics}
    view, the diagnostic {!Grt_sim.Trace} ring (shared by the link and the
    driver shim), the seeded link, and the speculation history — plus the
    mutable rollback accounting the attempt loop updates. *)

(** The session's optional knobs, gathered into one record (callers
    override individual fields of {!default_options}). *)
type options = {
  history : Spec_history.t option;
      (** speculation history to reuse; fresh when [None]. Shared across
          sessions by the recording service (§7.3). *)
  sync_store : Memsync.Store.s option;
      (** fleet-shared memsync content store (see {!Memsync.create});
          [None] for a solo session *)
  inject_fault_after : int option;
      (** corrupt the response to the [n]-th speculated commit of the first
          attempt, forcing one rollback *)
  window : int;  (** link sliding-window size; 1 = stop-and-wait *)
  trace_capacity : int option;  (** diagnostic event-ring size *)
  observe : bool;  (** create the span tracer + histogram registry *)
}

val default_options : options
(** No history, no shared store, no fault, window 1, default ring,
    unobserved. *)

type t = {
  cfg : Mode.config;
  seed : int64;
  sku : Grt_gpu.Sku.t;
  net : Grt_mlfw.Network.t;
  plan : Grt_mlfw.Network.plan;
  granularity : [ `Monolithic | `Per_layer ];
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t;
  counters : Grt_sim.Counters.t;
  metrics : Grt_sim.Metrics.t;  (** typed view over [counters] *)
  trace : Grt_sim.Trace.t;  (** link + shim event ring, dumped on failure *)
  tracer : Grt_sim.Tracer.t option;  (** span tracer; present iff [observe] *)
  hists : Grt_sim.Hist.set option;  (** latency/size histograms; iff [observe] *)
  link : Grt_net.Link.t;
  history : Spec_history.t;  (** shared across attempts (and sessions, §7.3) *)
  sync_store : Memsync.Store.s option;  (** fleet-shared content store *)
  mutable inject_fault_after : int option;
      (** armed once, on the first attempt that consumes it (§7.3) *)
  mutable rollbacks : int;
  mutable rollback_s : float;
}

val create :
  ?options:options ->
  ?clock:Grt_sim.Clock.t ->
  cfg:Mode.config ->
  profile:Grt_net.Profile.t ->
  sku:Grt_gpu.Sku.t ->
  net:Grt_mlfw.Network.t ->
  seed:int64 ->
  granularity:[ `Monolithic | `Per_layer ] ->
  unit ->
  t
(** Build the session infrastructure: clock, energy, counters/metrics,
    trace ring, and the link (fault-seeded from [seed]). [options] defaults
    to {!default_options}; with [observe] unset the default path carries
    [None]s and stays byte-identical to an unobserved build.

    [clock] threads an existing session clock instead of creating a fresh
    one — the recording service uses this to promote a coalesced waiter
    into a recorder mid-task, where the new context must keep advancing
    the clock the scheduler registered at spawn. All time accounting
    (energy integration, link costs, watchdogs) is delta-based, so a
    context built on an already-advanced clock behaves identically to one
    starting at zero. *)

val session_salt : t -> int64
(** The GPU's nondeterministic-state salt: a property of the physical
    device, stable across rollback attempts within a session. *)

val charge_rollback : t -> float -> unit
(** Account one rollback of the given cost, advance the clock by it, and
    yield to the scheduler (no-op for a solo session). *)

val stat : t -> Grt_sim.Metrics.key -> int
(** Typed counter lookup, for assembling the outcome record. *)
