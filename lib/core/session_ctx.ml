module Link = Grt_net.Link

type options = {
  history : Spec_history.t option;
  sync_store : Memsync.Store.s option;
  inject_fault_after : int option;
  window : int;
  trace_capacity : int option;
  observe : bool;
}

let default_options =
  {
    history = None;
    sync_store = None;
    inject_fault_after = None;
    window = 1;
    trace_capacity = None;
    observe = false;
  }

type t = {
  cfg : Mode.config;
  seed : int64;
  sku : Grt_gpu.Sku.t;
  net : Grt_mlfw.Network.t;
  plan : Grt_mlfw.Network.plan;
  granularity : [ `Monolithic | `Per_layer ];
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t;
  counters : Grt_sim.Counters.t;
  metrics : Grt_sim.Metrics.t;
  trace : Grt_sim.Trace.t;
  tracer : Grt_sim.Tracer.t option;
  hists : Grt_sim.Hist.set option;
  link : Link.t;
  history : Spec_history.t;
  sync_store : Memsync.Store.s option;
  mutable inject_fault_after : int option;
  mutable rollbacks : int;
  mutable rollback_s : float;
}

let create ?(options = default_options) ?clock ~cfg ~profile ~sku ~net ~seed ~granularity () =
  let clock = match clock with Some c -> c | None -> Grt_sim.Clock.create () in
  let energy = Grt_sim.Energy.create clock in
  let counters = Grt_sim.Counters.create () in
  let trace = Grt_sim.Trace.create ?capacity:options.trace_capacity clock in
  let tracer = if options.observe then Some (Grt_sim.Tracer.create clock) else None in
  let hists = if options.observe then Some (Grt_sim.Hist.create_set ()) else None in
  (* The link's fault draws derive from the session seed so a lossy run is
     exactly reproducible. *)
  let link =
    Link.create ~clock ~energy ~counters ~trace ?tracer ?hists
      ~seed:(Grt_util.Hashing.combine seed 0x6C696E6BL)
      ~window:options.window profile
  in
  {
    cfg;
    seed;
    sku;
    net;
    plan = Grt_mlfw.Network.expand net;
    granularity;
    clock;
    energy;
    counters;
    metrics = Grt_sim.Metrics.of_counters counters;
    trace;
    tracer;
    hists;
    link;
    history = (match options.history with Some h -> h | None -> Spec_history.create ());
    sync_store = options.sync_store;
    inject_fault_after = options.inject_fault_after;
    rollbacks = 0;
    rollback_s = 0.;
  }

let session_salt t = Grt_util.Hashing.combine t.seed 0x5a17L

let charge_rollback t cost =
  t.rollbacks <- t.rollbacks + 1;
  t.rollback_s <- t.rollback_s +. cost;
  Grt_sim.Clock.advance_s t.clock cost;
  Grt_sim.Clock.yield t.clock

let stat t key = Grt_sim.Metrics.get_int t.metrics key
