module Backend = Grt_driver.Backend
module Regs = Grt_gpu.Regs
module Sexpr = Grt_util.Sexpr
module Metrics = Grt_sim.Metrics

exception Recovery_diverged of string

type t = {
  cfg : Mode.config;
  gpushim : Gpushim.t;
  cloud_mem : Grt_gpu.Mem.t;
  downlink : Memsync.t;
  clock : Grt_sim.Clock.t;
  metrics : Metrics.t option;
  trace : Grt_sim.Trace.t option;
  log : Recording.log; (* shared with the shim; newest first *)
  sniff : int -> int64 -> unit; (* root/head sniffing on replayed writes *)
  mutable prefix : Recording.entry list; (* oldest first; empty once live *)
  mutable replayed : int;
}

let create ~cfg ~gpushim ~cloud_mem ~downlink ~clock ?metrics ?trace ~log ~sniff prefix =
  { cfg; gpushim; cloud_mem; downlink; clock; metrics; trace; log; sniff; prefix; replayed = 0 }

let count t key v = match t.metrics with Some m -> Metrics.add m key v | None -> ()

let step_cost t = Grt_sim.Clock.advance_ns t.clock Grt_sim.Costs.replayer_step_ns

let active t = t.prefix <> []

(* One entry left the prefix; on the last one, note the transition to live. *)
let note_pop t =
  t.replayed <- t.replayed + 1;
  if t.prefix = [] then
    Grt_sim.Trace.event_opt t.trace (Grt_sim.Trace.Replay_live { replayed = t.replayed })

let fail fmt = Printf.ksprintf (fun m -> raise (Recovery_diverged m)) fmt

(* Apply any memory snapshots sitting at the head of the prefix. *)
let rec pop_memloads t =
  match t.prefix with
  | Recording.Mem_load { pages } :: rest ->
    t.prefix <- rest;
    note_pop t;
    step_cost t;
    count t Metrics.Recovery_pages (List.length pages);
    Gpushim.load_pages t.gpushim (Memsync.payload_of_pages pages);
    List.iter (fun (pfn, data) -> Memsync.note_shipped t.downlink pfn data) pages;
    Recording.log_push t.log (Recording.Mem_load { pages });
    pop_memloads t
  | Recording.Mem_load_enc { records } :: rest ->
    t.prefix <- rest;
    note_pop t;
    step_cost t;
    count t Metrics.Recovery_pages (List.length records);
    (* Decode on the client, then re-teach this attempt's fresh downlink
       sender state so later live syncs delta/dedup against the same view
       the recording's replayer will hold. *)
    let pages = Gpushim.load_records t.gpushim records in
    List.iter (fun (pfn, data) -> Memsync.note_shipped t.downlink pfn data) pages;
    Recording.log_push t.log (Recording.Mem_load_enc { records });
    pop_memloads t
  | _ -> ()

let prefix_pop t =
  pop_memloads t;
  match t.prefix with
  | [] -> None
  | e :: rest ->
    t.prefix <- rest;
    note_pop t;
    step_cost t;
    count t Metrics.Recovery_entries 1;
    Some e

let read t reg =
  match prefix_pop t with
  | Some (Recording.Reg_read { reg = r; value; verify = _ }) when r = reg ->
    (* The client replays the read against its GPU to keep read-sensitive
       hardware state moving; the driver consumes the logged value. *)
    ignore (Grt_gpu.Device.read_reg (Gpushim.device t.gpushim) reg);
    Recording.log_push t.log
      (Recording.Reg_read { reg; value; verify = not (Regs.is_nondeterministic reg) });
    Sexpr.const value
  | Some e ->
    fail "expected read of %s, log has %s" (Regs.name reg)
      (match e with
      | Recording.Reg_write { reg; _ } -> "write " ^ Regs.name reg
      | Recording.Reg_read { reg; _ } -> "read " ^ Regs.name reg
      | Recording.Poll { reg; _ } -> "poll " ^ Regs.name reg
      | Recording.Wait_irq _ -> "wait_irq"
      | Recording.Mem_load _ | Recording.Mem_load_enc _ -> "mem_load")
  | None -> fail "prefix exhausted mid-access (read %s)" (Regs.name reg)

let write t reg =
  match prefix_pop t with
  | Some (Recording.Reg_write { reg = r; value }) when r = reg ->
    t.sniff reg value;
    Grt_gpu.Device.write_reg (Gpushim.device t.gpushim) reg value;
    Recording.log_push t.log (Recording.Reg_write { reg; value })
  | Some _ -> fail "log does not expect a write of %s here" (Regs.name reg)
  | None -> fail "prefix exhausted mid-access (write %s)" (Regs.name reg)

let poll t ~reg ~mask ~cond ~max_iters ~spin_ns =
  match prefix_pop t with
  | Some (Recording.Poll { reg = r; _ }) when r = reg ->
    Recording.log_push t.log
      (Recording.Poll
         {
           reg;
           mask;
           cond =
             (match cond with
             | Backend.Bits_set -> Recording.Until_set
             | Backend.Bits_clear -> Recording.Until_clear);
           max_iters;
           spin_ns;
         });
    (match Gpushim.run_poll t.gpushim ~reg ~mask ~cond ~max_iters ~spin_ns with
    | Some (iters, value) -> Backend.Poll_ok { iters; value }
    | None -> Backend.Poll_timeout)
  | Some _ -> fail "log does not expect a poll of %s here" (Regs.name reg)
  | None -> fail "prefix exhausted mid-access (poll %s)" (Regs.name reg)

let wait_irq t ~timeout_us =
  match prefix_pop t with
  | Some (Recording.Wait_irq { line }) -> (
    match Gpushim.wait_irq t.gpushim ~timeout_ns:(Int64.of_int (timeout_us * 1000)) with
    | Some got ->
      Recording.log_push t.log (Recording.Wait_irq { line = Recording.irq_line_to_int got });
      (* Local status exchange, no network: the cloud's memory learns the
         GPU-written words directly. *)
      if t.cfg.Mode.continuous_validation then Grt_gpu.Mem.unprotect_all t.cloud_mem;
      let payload = Gpushim.upload_meta t.gpushim in
      Memsync.apply t.downlink t.cloud_mem payload;
      List.iter
        (fun (pfn, data) -> Memsync.note_peer_page t.downlink pfn data)
        (Memsync.pages payload);
      ignore line;
      Some got
    | None -> fail "no interrupt while replaying the log")
  | Some _ -> fail "log does not expect an interrupt wait here"
  | None -> fail "prefix exhausted mid-access (wait_irq)"
