(** Recorder configurations compared in the evaluation (§7.2).

    - [Naive]: a blocking round trip per register access, full GPU memory
      synchronized before/after every job.
    - [Ours_m]: adds meta-only memory synchronization (§5).
    - [Ours_md]: adds register access deferral (§4.1) — one RTT per commit.
    - [Ours_mds]: adds speculation and polling-loop offload (§4.2, §4.3) —
      GR-T with all techniques. *)

type t = Naive | Ours_m | Ours_md | Ours_mds

val all : t list
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit

val meta_only_sync : t -> bool
val deferral : t -> bool
val speculation : t -> bool

(** Fine-grained knobs, for the ablation benches. *)
type config = {
  mode : t;
  spec_history_k : int;  (** confidence threshold (paper: 3) *)
  offload_polling : bool;
  compress_dumps : bool;
  delta_dumps : bool;
  commit_on_kernel_api : bool;
      (** commit at lock/unlock boundaries (disabling this is unsound under
          concurrency and exists only to measure the cost of soundness) *)
  hot_function_scope : bool;  (** restrict deferral to profiled hot functions *)
  continuous_validation : bool;
      (** §5's safety net: unmap dumped regions from the CPU between a job
          start and its completion so spurious accesses trap *)
  degraded_mode : bool;
      (** when the link reports a persistently lossy channel, suspend
          speculation and commit synchronously until it recovers *)
  max_inflight : int;
      (** cap on speculative commits outstanding at once. 0 (the default)
          means unbounded — the historical behaviour, where only epoch and
          dependency stalls drain the queue. With [n > 0], dispatching the
          (n+1)-th speculative commit first validates the oldest outstanding
          one in FIFO order; pair with a [Link] window of the same size to
          pipeline the wire ([net.window_stalls] then backpressures the
          shim). Validation order, [validated_prefix] and degraded-mode
          suppression are unaffected. *)
  memsync_dirty : bool;
      (** skip meta pages whose {!Grt_gpu.Mem.page_gen} stamp has not moved
          since the last sync instead of byte-comparing every page. Pure
          visit-count optimization: on by default, the wire stays
          byte-identical either way. *)
  memsync_dedup : bool;
      (** content-addressed page store: ship an 8-byte hash reference when
          the peer provably holds the page body already. Changes the wire
          and recording format (tagged page records), so it is off by
          default. *)
  memsync_adaptive : bool;
      (** pick the cheapest per-page encoding (raw / range-coded raw /
          delta / range-coded delta / hash reference) instead of applying
          delta + range coding unconditionally. Implies the tagged wire
          format; off by default. *)
}

val default_config : t -> config
