type t = (string, int64 array list) Hashtbl.t

let create () : t = Hashtbl.create 128

let lookup t site = Option.value ~default:[] (Hashtbl.find_opt t site)

let observe t ~k site values =
  let prev = lookup t site in
  let keep = max 1 k in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  Hashtbl.replace t site (take keep (values :: prev))

let forget t site = Hashtbl.remove t site

let confident t ~k site =
  let entries = lookup t site in
  if List.length entries < k then None
  else
    match entries with
    | first :: rest -> if List.for_all (fun v -> v = first) rest then Some first else None
    | [] -> None

let sites t = Hashtbl.fold (fun site _ acc -> site :: acc) t []

let size t = Hashtbl.length t
