(* Entries are tagged with the epoch in which they were observed; an epoch
   is one recording session ({!new_epoch} is called at each session start by
   the recording service). A confident hit whose evidence includes an entry
   from an earlier epoch is a *cross-session* hit — speculation bootstrapped
   by history retained from a previous recording (§7.3). *)

type entry = { values : int64 array; epoch : int }

type t = {
  tbl : (string, entry list) Hashtbl.t;
  mutable epoch : int;
  mutable cross_hits : int;
}

let create () = { tbl = Hashtbl.create 128; epoch = 0; cross_hits = 0 }

let entries t site = Option.value ~default:[] (Hashtbl.find_opt t.tbl site)
let lookup t site = List.map (fun e -> e.values) (entries t site)

let observe t ~k site values =
  let prev = entries t site in
  let keep = max 1 k in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  Hashtbl.replace t.tbl site (take keep ({ values; epoch = t.epoch } :: prev))

let forget t site = Hashtbl.remove t.tbl site

let confident t ~k site =
  let es = entries t site in
  if List.length es < k then None
  else
    match es with
    | first :: rest ->
      if List.for_all (fun e -> e.values = first.values) rest then begin
        if List.exists (fun (e : entry) -> e.epoch < t.epoch) es then
          t.cross_hits <- t.cross_hits + 1;
        Some first.values
      end
      else None
    | [] -> None

let new_epoch t = t.epoch <- t.epoch + 1
let cross_hits t = t.cross_hits

let sites t = Hashtbl.fold (fun site _ acc -> site :: acc) t.tbl []

let size t = Hashtbl.length t.tbl
