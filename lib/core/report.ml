module Json = Grt_util.Json

let schema = "grt-session-report"
let version = 1

let of_outcome ~workload ~mode ~profile ~seed (o : Orchestrate.record_outcome) =
  let session =
    Json.Obj
      [
        ("workload", Json.Str workload);
        ("mode", Json.Str mode);
        ("profile", Json.Str profile);
        ("seed", Json.int64 seed);
      ]
  in
  let summary =
    Json.Obj
      [
        ("total_s", Json.float o.total_s);
        ("client_energy_j", Json.float o.client_energy_j);
        ("blocking_rtts", Json.int o.blocking_rtts);
        ("sync_wire_bytes", Json.int o.sync_wire_bytes);
        ("sync_raw_bytes", Json.int o.sync_raw_bytes);
        ("commits_total", Json.int o.commits_total);
        ("commits_speculated", Json.int o.commits_speculated);
        ("accesses_total", Json.int o.accesses_total);
        ("poll_instances", Json.int o.poll_instances);
        ("poll_offloaded", Json.int o.poll_offloaded);
        ("rollbacks", Json.int o.rollbacks);
        ("rollback_s", Json.float o.rollback_s);
        ("retransmits", Json.int o.retransmits);
        ("link_downs", Json.int o.link_downs);
        ("recording_bytes", Json.int (Bytes.length o.blob));
        ("entries", Json.int (Array.length o.recording.Recording.entries));
      ]
  in
  let metrics =
    Json.Obj
      (List.map (fun (k, v) -> (k, Json.int64 v)) (Grt_sim.Counters.to_alist o.counters))
  in
  let base =
    [
      ("schema", Json.Str schema);
      ("version", Json.int version);
      ("session", session);
      ("summary", summary);
      ("metrics", metrics);
    ]
  in
  let base =
    match o.hists with
    | Some hs -> base @ [ ("histograms", Grt_sim.Hist.set_json hs) ]
    | None -> base
  in
  let base =
    match o.tracer with
    | Some tr -> base @ [ ("phases", Grt_sim.Tracer.summary_json tr) ]
    | None -> base
  in
  Json.Obj base

(* ---- schema validation ---- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let need_obj ctx = function
  | Json.Obj fields -> Ok fields
  | _ -> Error (ctx ^ ": expected an object")

let need_field ctx fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing %S" ctx name)

let need_num ctx fields name =
  let* v = need_field ctx fields name in
  match v with
  | Json.Num n -> Ok n
  | _ -> Error (Printf.sprintf "%s: %S must be a number" ctx name)

let need_str ctx fields name =
  let* v = need_field ctx fields name in
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "%s: %S must be a string" ctx name)

let all_ok ctx f entries =
  List.fold_left (fun acc (k, v) -> match acc with Error _ -> acc | Ok () -> f (ctx ^ "." ^ k) v) (Ok ()) entries

let validate_hist ctx v =
  let* fields = need_obj ctx v in
  let rec need = function
    | [] -> Ok ()
    | name :: rest ->
      let* _ = need_num ctx fields name in
      need rest
  in
  need [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ]

let validate_phase ctx v =
  let* fields = need_obj ctx v in
  let rec need = function
    | [] -> Ok ()
    | name :: rest ->
      let* _ = need_num ctx fields name in
      need rest
  in
  need [ "total_s"; "self_s"; "spans" ]

let validate json =
  let* top = need_obj "report" json in
  let* s = need_str "report" top "schema" in
  if s <> schema then Error (Printf.sprintf "schema mismatch: %S" s)
  else
    let* v = need_num "report" top "version" in
    if int_of_float v <> version then
      Error (Printf.sprintf "version mismatch: %g (tool understands %d)" v version)
    else
      let* session = need_field "report" top "session" in
      let* sf = need_obj "session" session in
      let* _ = need_str "session" sf "workload" in
      let* _ = need_str "session" sf "mode" in
      let* _ = need_str "session" sf "profile" in
      let* _ = need_num "session" sf "seed" in
      let* summary = need_field "report" top "summary" in
      let* sm = need_obj "summary" summary in
      let rec need = function
        | [] -> Ok ()
        | name :: rest ->
          let* _ = need_num "summary" sm name in
          need rest
      in
      let* () =
        need
          [
            "total_s"; "client_energy_j"; "blocking_rtts"; "commits_total"; "commits_speculated";
            "rollbacks"; "rollback_s"; "recording_bytes"; "entries";
          ]
      in
      let* metrics = need_field "report" top "metrics" in
      let* mf = need_obj "metrics" metrics in
      let* () =
        all_ok "metrics"
          (fun ctx v -> match v with Json.Num _ -> Ok () | _ -> Error (ctx ^ ": not a number"))
          mf
      in
      let* () =
        match List.assoc_opt "histograms" top with
        | None -> Ok ()
        | Some h ->
          let* hf = need_obj "histograms" h in
          all_ok "histograms" validate_hist hf
      in
      (match List.assoc_opt "phases" top with
      | None -> Ok ()
      | Some p ->
        let* pf = need_obj "phases" p in
        all_ok "phases" validate_phase pf)

(* ---- human-readable timeline ---- *)

let num fields name = match List.assoc_opt name fields with Some (Json.Num n) -> n | _ -> 0.

let str fields name = match List.assoc_opt name fields with Some (Json.Str s) -> s | _ -> "?"

let pp_timeline ppf json =
  match json with
  | Json.Obj top ->
    (match List.assoc_opt "session" top with
    | Some (Json.Obj s) ->
      Format.fprintf ppf "session: %s / %s over %s (seed %.0f)@." (str s "workload")
        (str s "mode") (str s "profile") (num s "seed")
    | _ -> ());
    (match List.assoc_opt "summary" top with
    | Some (Json.Obj s) ->
      Format.fprintf ppf "  %.2f s end to end, %.1f J, %.0f blocking RTTs, %.0f rollbacks@."
        (num s "total_s") (num s "client_energy_j") (num s "blocking_rtts") (num s "rollbacks")
    | _ -> ());
    (match List.assoc_opt "phases" top with
    | Some (Json.Obj phases) ->
      Format.fprintf ppf "phases (virtual time, self / total):@.";
      List.iter
        (fun (cat, v) ->
          match v with
          | Json.Obj f when num f "spans" > 0. ->
            Format.fprintf ppf "  %-21s %9.3f s / %9.3f s  (%.0f span%s)@." cat (num f "self_s")
              (num f "total_s") (num f "spans")
              (if num f "spans" = 1. then "" else "s")
          | _ -> ())
        phases
    | _ -> Format.fprintf ppf "phases: absent (record with --trace-out or --report)@.");
    (match List.assoc_opt "histograms" top with
    | Some (Json.Obj hists) ->
      Format.fprintf ppf "distributions (p50 / p90 / p99):@.";
      List.iter
        (fun (key, v) ->
          match v with
          | Json.Obj f when num f "count" > 0. ->
            Format.fprintf ppf "  %-21s %12.0f / %12.0f / %12.0f  (n=%.0f)@." key (num f "p50")
              (num f "p90") (num f "p99") (num f "count")
          | _ -> ())
        hists
    | _ -> ())
  | _ -> Format.fprintf ppf "not a report object@."
