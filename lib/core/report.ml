module Json = Grt_util.Json

let schema = "grt-session-report"
let version = 1
let fleet_schema = "grt-fleet-report"
let fleet_version = 1

let of_outcome ~workload ~mode ~profile ~seed (o : Orchestrate.record_outcome) =
  let session =
    Json.Obj
      [
        ("workload", Json.Str workload);
        ("mode", Json.Str mode);
        ("profile", Json.Str profile);
        ("seed", Json.int64 seed);
      ]
  in
  let summary =
    Json.Obj
      [
        ("total_s", Json.float o.total_s);
        ("client_energy_j", Json.float o.client_energy_j);
        ("blocking_rtts", Json.int o.blocking_rtts);
        ("sync_wire_bytes", Json.int o.sync_wire_bytes);
        ("sync_raw_bytes", Json.int o.sync_raw_bytes);
        ("commits_total", Json.int o.commits_total);
        ("commits_speculated", Json.int o.commits_speculated);
        ("accesses_total", Json.int o.accesses_total);
        ("poll_instances", Json.int o.poll_instances);
        ("poll_offloaded", Json.int o.poll_offloaded);
        ("rollbacks", Json.int o.rollbacks);
        ("rollback_s", Json.float o.rollback_s);
        ("retransmits", Json.int o.retransmits);
        ("link_downs", Json.int o.link_downs);
        ("recording_bytes", Json.int (Bytes.length o.blob));
        ("entries", Json.int (Array.length o.recording.Recording.entries));
      ]
  in
  let metrics =
    Json.Obj
      (List.map (fun (k, v) -> (k, Json.int64 v)) (Grt_sim.Counters.to_alist o.counters))
  in
  let base =
    [
      ("schema", Json.Str schema);
      ("version", Json.int version);
      ("session", session);
      ("summary", summary);
      ("metrics", metrics);
    ]
  in
  let base =
    match o.hists with
    | Some hs -> base @ [ ("histograms", Grt_sim.Hist.set_json hs) ]
    | None -> base
  in
  let base =
    match o.tracer with
    | Some tr -> base @ [ ("phases", Grt_sim.Tracer.summary_json tr) ]
    | None -> base
  in
  Json.Obj base

(* ---- the fleet report ---- *)

module Hist = Grt_sim.Hist

let slo_keys =
  [
    ("turnaround_us", Hist.Svc_turnaround_us);
    ("ttfb_us", Hist.Svc_ttfb_us);
    ("coalesce_wait_us", Hist.Svc_coalesce_wait_us);
    ("turnstile_wait_us", Hist.Svc_turnstile_wait_us);
    ("queue_depth", Hist.Sched_runnable);
  ]

let of_fleet ~fleet ~(stats : Service.stats) ?memo ~observation () =
  let service =
    Json.Obj
      [
        ("sessions", Json.int stats.Service.sessions);
        ("recordings", Json.int stats.Service.recordings);
        ("cache_hits", Json.int stats.Service.cache_hits);
        ("cache_misses", Json.int stats.Service.cache_misses);
        ("coalesced", Json.int stats.Service.coalesced);
        ("promotions", Json.int stats.Service.promotions);
        ("failures", Json.int stats.Service.failures);
        ("evictions", Json.int stats.Service.evictions);
        ("resident", Json.int stats.Service.resident);
        ("resident_bytes", Json.int stats.Service.resident_bytes);
        ("hit_rate", Json.float (Service.hit_rate stats));
      ]
  in
  let base =
    [
      ("schema", Json.Str fleet_schema);
      ("version", Json.int fleet_version);
      ("fleet", fleet);
      ("service", service);
    ]
  in
  let base =
    match observation with
    | None -> base
    | Some (o : Service.observation) ->
      let slo =
        Json.Obj
          (List.map (fun (name, k) -> (name, Hist.summary_json (Hist.get o.Service.obs_hists k))) slo_keys)
      in
      let per_key =
        Hashtbl.fold
          (fun label turnaround acc ->
            let row =
              [
                ("label", Json.Str label);
                ("sessions", Json.int (Hist.count turnaround));
                ("turnaround_us", Hist.summary_json turnaround);
              ]
            in
            let row =
              match Hashtbl.find_opt o.Service.obs_key_ttfb label with
              | Some ttfb -> row @ [ ("ttfb_us", Hist.summary_json ttfb) ]
              | None -> row
            in
            (label, Json.Obj row) :: acc)
          o.Service.obs_key_turnaround []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      base @ [ ("slo", slo); ("per_key", Json.Arr per_key) ]
  in
  let base = match memo with None -> base | Some m -> base @ [ ("memo", m) ] in
  Json.Obj base

(* ---- schema validation ---- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let need_obj ctx = function
  | Json.Obj fields -> Ok fields
  | _ -> Error (ctx ^ ": expected an object")

let need_field ctx fields name =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing %S" ctx name)

let need_num ctx fields name =
  let* v = need_field ctx fields name in
  match v with
  | Json.Num n -> Ok n
  | _ -> Error (Printf.sprintf "%s: %S must be a number" ctx name)

let need_str ctx fields name =
  let* v = need_field ctx fields name in
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "%s: %S must be a string" ctx name)

let all_ok ctx f entries =
  List.fold_left (fun acc (k, v) -> match acc with Error _ -> acc | Ok () -> f (ctx ^ "." ^ k) v) (Ok ()) entries

let validate_hist ctx v =
  let* fields = need_obj ctx v in
  let rec need = function
    | [] -> Ok ()
    | name :: rest ->
      let* _ = need_num ctx fields name in
      need rest
  in
  need [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ]

let validate_phase ctx v =
  let* fields = need_obj ctx v in
  let rec need = function
    | [] -> Ok ()
    | name :: rest ->
      let* _ = need_num ctx fields name in
      need rest
  in
  need [ "total_s"; "self_s"; "spans" ]

let validate json =
  let* top = need_obj "report" json in
  let* s = need_str "report" top "schema" in
  if s <> schema then Error (Printf.sprintf "schema mismatch: %S" s)
  else
    let* v = need_num "report" top "version" in
    if int_of_float v <> version then
      Error (Printf.sprintf "version mismatch: %g (tool understands %d)" v version)
    else
      let* session = need_field "report" top "session" in
      let* sf = need_obj "session" session in
      let* _ = need_str "session" sf "workload" in
      let* _ = need_str "session" sf "mode" in
      let* _ = need_str "session" sf "profile" in
      let* _ = need_num "session" sf "seed" in
      let* summary = need_field "report" top "summary" in
      let* sm = need_obj "summary" summary in
      let rec need = function
        | [] -> Ok ()
        | name :: rest ->
          let* _ = need_num "summary" sm name in
          need rest
      in
      let* () =
        need
          [
            "total_s"; "client_energy_j"; "blocking_rtts"; "commits_total"; "commits_speculated";
            "rollbacks"; "rollback_s"; "recording_bytes"; "entries";
          ]
      in
      let* metrics = need_field "report" top "metrics" in
      let* mf = need_obj "metrics" metrics in
      let* () =
        all_ok "metrics"
          (fun ctx v -> match v with Json.Num _ -> Ok () | _ -> Error (ctx ^ ": not a number"))
          mf
      in
      let* () =
        match List.assoc_opt "histograms" top with
        | None -> Ok ()
        | Some h ->
          let* hf = need_obj "histograms" h in
          all_ok "histograms" validate_hist hf
      in
      (match List.assoc_opt "phases" top with
      | None -> Ok ()
      | Some p ->
        let* pf = need_obj "phases" p in
        all_ok "phases" validate_phase pf)

(* Lenient variant for [grt_inspect --timeline]: the schema name must still
   match (a fleet report or arbitrary JSON is a different document, not an
   older one), but the version may skew and every section is optional —
   present sections are still type-checked. Reports written by older or
   newer tools render with "n/a" holes instead of being rejected. *)
let validate_lenient json =
  let* top = need_obj "report" json in
  let* s = need_str "report" top "schema" in
  if s <> schema then Error (Printf.sprintf "schema mismatch: %S" s)
  else
    let* _ = need_num "report" top "version" in
    let check_obj name checker =
      match List.assoc_opt name top with
      | None -> Ok ()
      | Some v ->
        let* fields = need_obj name v in
        checker fields
    in
    let* () =
      check_obj "session" (fun sf ->
          all_ok "session"
            (fun ctx v ->
              match v with Json.Num _ | Json.Str _ -> Ok () | _ -> Error (ctx ^ ": bad field"))
            sf)
    in
    let* () =
      check_obj "summary" (fun sm ->
          all_ok "summary"
            (fun ctx v -> match v with Json.Num _ -> Ok () | _ -> Error (ctx ^ ": not a number"))
            sm)
    in
    let* () = check_obj "histograms" (fun hf -> all_ok "histograms" validate_hist hf) in
    check_obj "phases" (fun pf -> all_ok "phases" validate_phase pf)

let validate_fleet json =
  let* top = need_obj "fleet-report" json in
  let* s = need_str "fleet-report" top "schema" in
  if s <> fleet_schema then Error (Printf.sprintf "schema mismatch: %S" s)
  else
    let* v = need_num "fleet-report" top "version" in
    if int_of_float v <> fleet_version then
      Error (Printf.sprintf "version mismatch: %g (tool understands %d)" v fleet_version)
    else
      let* fleet = need_field "fleet-report" top "fleet" in
      let* ff = need_obj "fleet" fleet in
      let* () =
        all_ok "fleet"
          (fun ctx v ->
            match v with
            | Json.Num _ | Json.Str _ | Json.Bool _ -> Ok ()
            | Json.Arr rows when ctx = "fleet.shards" ->
              (* per-shard stat rows of a domain-parallel run *)
              List.fold_left
                (fun acc row ->
                  let* () = acc in
                  let* rf = need_obj ctx row in
                  all_ok ctx
                    (fun c v ->
                      match v with Json.Num _ -> Ok () | _ -> Error (c ^ ": not a number"))
                    rf)
                (Ok ()) rows
            | _ -> Error (ctx ^ ": bad field"))
          ff
      in
      let* service = need_field "fleet-report" top "service" in
      let* sf = need_obj "service" service in
      let rec need = function
        | [] -> Ok ()
        | name :: rest ->
          let* _ = need_num "service" sf name in
          need rest
      in
      let* () =
        need
          [
            "sessions"; "recordings"; "cache_hits"; "cache_misses"; "coalesced"; "promotions";
            "failures"; "evictions"; "hit_rate";
          ]
      in
      let* () =
        match List.assoc_opt "slo" top with
        | None -> Ok ()
        | Some s ->
          let* slo = need_obj "slo" s in
          all_ok "slo" validate_hist slo
      in
      let* () =
        match List.assoc_opt "per_key" top with
        | None -> Ok ()
        | Some (Json.Arr rows) ->
          List.fold_left
            (fun acc row ->
              let* () = acc in
              let* rf = need_obj "per_key[]" row in
              let* _ = need_str "per_key[]" rf "label" in
              let* _ = need_num "per_key[]" rf "sessions" in
              let* tr = need_field "per_key[]" rf "turnaround_us" in
              validate_hist "per_key[].turnaround_us" tr)
            (Ok ()) rows
        | Some _ -> Error "per_key: expected an array"
      in
      (match List.assoc_opt "memo" top with
      | None -> Ok ()
      | Some m ->
        let* mf = need_obj "memo" m in
        all_ok "memo"
          (fun ctx v ->
            let* fields = need_obj ctx v in
            all_ok ctx
              (fun c v -> match v with Json.Num _ -> Ok () | _ -> Error (c ^ ": not a number"))
              fields)
          mf)

(* ---- human-readable timeline ---- *)

let num fields name = match List.assoc_opt name fields with Some (Json.Num n) -> n | _ -> 0.

let str fields name = match List.assoc_opt name fields with Some (Json.Str s) -> s | _ -> "?"

let pp_timeline ppf json =
  match json with
  | Json.Obj top ->
    (match List.assoc_opt "session" top with
    | Some (Json.Obj s) ->
      Format.fprintf ppf "session: %s / %s over %s (seed %.0f)@." (str s "workload")
        (str s "mode") (str s "profile") (num s "seed")
    | _ -> Format.fprintf ppf "session: n/a@.");
    (match List.assoc_opt "summary" top with
    | Some (Json.Obj s) ->
      Format.fprintf ppf "  %.2f s end to end, %.1f J, %.0f blocking RTTs, %.0f rollbacks@."
        (num s "total_s") (num s "client_energy_j") (num s "blocking_rtts") (num s "rollbacks")
    | _ -> Format.fprintf ppf "  summary: n/a@.");
    (match List.assoc_opt "phases" top with
    | Some (Json.Obj phases) ->
      Format.fprintf ppf "phases (virtual time, self / total):@.";
      List.iter
        (fun (cat, v) ->
          match v with
          | Json.Obj f when num f "spans" > 0. ->
            Format.fprintf ppf "  %-21s %9.3f s / %9.3f s  (%.0f span%s)@." cat (num f "self_s")
              (num f "total_s") (num f "spans")
              (if num f "spans" = 1. then "" else "s")
          | _ -> ())
        phases
    | _ -> Format.fprintf ppf "phases: absent (record with --trace-out or --report)@.");
    (match List.assoc_opt "histograms" top with
    | Some (Json.Obj hists) ->
      Format.fprintf ppf "distributions (p50 / p90 / p99):@.";
      List.iter
        (fun (key, v) ->
          match v with
          | Json.Obj f when num f "count" > 0. ->
            Format.fprintf ppf "  %-21s %12.0f / %12.0f / %12.0f  (n=%.0f)@." key (num f "p50")
              (num f "p90") (num f "p99") (num f "count")
          | _ -> ())
        hists
    | _ -> ())
  | _ -> Format.fprintf ppf "not a report object@."

(* ---- human-readable fleet view ---- *)

let pp_hist_line ppf name f =
  if num f "count" > 0. then
    Format.fprintf ppf "  %-21s %12.0f / %12.0f / %12.0f  (n=%.0f)@." name (num f "p50")
      (num f "p90") (num f "p99") (num f "count")
  else Format.fprintf ppf "  %-21s n/a (no samples)@." name

let pp_fleet ppf json =
  match json with
  | Json.Obj top ->
    (match List.assoc_opt "fleet" top with
    | Some (Json.Obj f) ->
      Format.fprintf ppf "fleet: %s — %.0f clients, %.0f distinct keys@." (str f "label")
        (num f "clients") (num f "distinct_keys")
    | _ -> Format.fprintf ppf "fleet: n/a@.");
    (match List.assoc_opt "service" top with
    | Some (Json.Obj s) ->
      Format.fprintf ppf
        "  %.0f sessions: %.0f hits + %.0f coalesced (%.1f%% hit rate), %.0f recordings, %.0f \
         failures@."
        (num s "sessions") (num s "cache_hits") (num s "coalesced")
        (100. *. num s "hit_rate")
        (num s "recordings") (num s "failures");
      Format.fprintf ppf
        "  cache: %.0f misses, %.0f evictions, %.0f promotions, %.0f resident (%.1f KB)@."
        (num s "cache_misses") (num s "evictions") (num s "promotions") (num s "resident")
        (num s "resident_bytes" /. 1024.)
    | _ -> Format.fprintf ppf "  service: n/a@.");
    (match List.assoc_opt "slo" top with
    | Some (Json.Obj slo) ->
      Format.fprintf ppf "SLO rollup (p50 / p90 / p99):@.";
      List.iter (fun (name, v) -> match v with Json.Obj f -> pp_hist_line ppf name f | _ -> ()) slo
    | _ -> Format.fprintf ppf "SLO rollup: n/a (run with --report on an observed fleet)@.");
    (match List.assoc_opt "per_key" top with
    | Some (Json.Arr rows) when rows <> [] ->
      let rows =
        List.filter_map (fun r -> match r with Json.Obj f -> Some f | _ -> None) rows
      in
      let rows =
        List.sort (fun a b -> compare (num b "sessions") (num a "sessions")) rows
      in
      let shown = List.filteri (fun i _ -> i < 10) rows in
      Format.fprintf ppf "hottest keys (turnaround p50 / p90 / p99 µs):@.";
      List.iter
        (fun f ->
          match List.assoc_opt "turnaround_us" f with
          | Some (Json.Obj h) ->
            Format.fprintf ppf "  %-44s %5.0f sess %10.0f / %10.0f / %10.0f@." (str f "label")
              (num f "sessions") (num h "p50") (num h "p90") (num h "p99")
          | _ -> ())
        shown;
      if List.length rows > List.length shown then
        Format.fprintf ppf "  … %d more keys@." (List.length rows - List.length shown)
    | _ -> Format.fprintf ppf "per-key rollup: n/a@.");
    (match List.assoc_opt "memo" top with
    | Some (Json.Obj memos) ->
      Format.fprintf ppf "memo caches (hit / miss / mismatch / evicted, resident):@.";
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Obj f ->
            Format.fprintf ppf "  %-21s %8.0f / %6.0f / %4.0f / %6.0f  %5.0f (%.1f KB)@." name
              (num f "hits") (num f "misses") (num f "mismatches") (num f "evictions")
              (num f "resident")
              (num f "resident_bytes" /. 1024.)
          | _ -> ())
        memos
    | _ -> ())
  | _ -> Format.fprintf ppf "not a fleet report object@."
