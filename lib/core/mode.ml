type t = Naive | Ours_m | Ours_md | Ours_mds

let all = [ Naive; Ours_m; Ours_md; Ours_mds ]

let name = function
  | Naive -> "Naive"
  | Ours_m -> "OursM"
  | Ours_md -> "OursMD"
  | Ours_mds -> "OursMDS"

let of_name s =
  List.find_opt (fun m -> String.lowercase_ascii (name m) = String.lowercase_ascii s) all

let pp ppf m = Format.pp_print_string ppf (name m)

let meta_only_sync = function Naive -> false | Ours_m | Ours_md | Ours_mds -> true

let deferral = function Naive | Ours_m -> false | Ours_md | Ours_mds -> true

let speculation = function Ours_mds -> true | Naive | Ours_m | Ours_md -> false

type config = {
  mode : t;
  spec_history_k : int;
  offload_polling : bool;
  compress_dumps : bool;
  delta_dumps : bool;
  commit_on_kernel_api : bool;
  hot_function_scope : bool;
  continuous_validation : bool;
  degraded_mode : bool;
  max_inflight : int;
  memsync_dirty : bool;
  memsync_dedup : bool;
  memsync_adaptive : bool;
}

let default_config mode =
  {
    mode;
    spec_history_k = 3;
    offload_polling = (mode = Ours_mds);
    compress_dumps = meta_only_sync mode;
    delta_dumps = meta_only_sync mode;
    commit_on_kernel_api = true;
    hot_function_scope = true;
    continuous_validation = true;
    degraded_mode = true;
    max_inflight = 0;
    memsync_dirty = true;
    memsync_dedup = false;
    memsync_adaptive = false;
  }
