module Sched = Grt_sim.Sched
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters
module Metrics = Grt_sim.Metrics
module Hist = Grt_sim.Hist
module Tracer = Grt_sim.Tracer
module Trace = Grt_sim.Trace
module Sku = Grt_gpu.Sku
module Network = Grt_mlfw.Network
module Profile = Grt_net.Profile
module Hashing = Grt_util.Hashing
module Ctx = Session_ctx

type key = int64

let runtime_version = Cloudvm.default_image.Cloudvm.image_name

(* ---- cache key derivation ----

   A recording is reusable across clients exactly when it was produced by
   the same GPU stack for the same workload on the same silicon with the
   same wire format. The key folds each of those dimensions with FNV-1a;
   only the recording-format-bearing mode flags participate (dirty tracking
   is wire-invariant, so it is deliberately excluded). *)

let flag b = if b then 1L else 0L

let cache_key ~(cfg : Mode.config) ~(sku : Sku.t) ~(net : Network.t) =
  let h = Hashing.fnv1a_string net.Network.name in
  let h = Hashing.combine h (Hashing.fnv1a_string sku.Sku.name) in
  let h = Hashing.combine h (Hashing.fnv1a_string runtime_version) in
  let h = Hashing.combine h (Hashing.fnv1a_string (Mode.name cfg.Mode.mode)) in
  let h = Hashing.combine h (flag cfg.Mode.memsync_dedup) in
  Hashing.combine h (flag cfg.Mode.memsync_adaptive)

let key_label ~(cfg : Mode.config) ~(sku : Sku.t) ~(net : Network.t) =
  Printf.sprintf "%s/%s/%s/%s%s%s" net.Network.name sku.Sku.name runtime_version
    (Mode.name cfg.Mode.mode)
    (if cfg.Mode.memsync_dedup then "+dedup" else "")
    (if cfg.Mode.memsync_adaptive then "+adaptive" else "")

(* Recording sessions run under a key-derived seed, not a client-derived
   one: the signed blob depends on the seed (device salts, dry-run data),
   so deriving it from the key makes the cached artifact a deterministic
   function of the key — whichever client happens to trigger the recording,
   and however many times an evicted key is re-recorded. *)
let recording_seed key = Hashing.combine key 0x7265636f7264L (* "record" *)

let serve_seed key ~client_id = Hashing.combine (recording_seed key) (Int64.of_int client_id)

(* ---- clients ---- *)

type client_spec = {
  client_id : int;
  arrival_ns : int64;
  net : Network.t;
  sku : Sku.t;
  profile : Profile.t;
  cfg : Mode.config;
  inject_fault_after : int option;
}

type outcome =
  | Recorded of Orchestrate.record_outcome
  | Cache_hit
  | Coalesced
  | Failed of string

let outcome_name = function
  | Recorded _ -> "recorded"
  | Cache_hit -> "cache_hit"
  | Coalesced -> "coalesced"
  | Failed _ -> "failed"

let served = function Cache_hit | Coalesced -> true | Recorded _ | Failed _ -> false

type session_report = {
  spec : client_spec;
  key : key;
  label : string;
  outcome : outcome;
  turnaround_s : float;
  blob_bytes : int;
  counters : Counters.t;
}

(* ---- service state ---- *)

(* Per-key state that outlives cache residency: eviction drops the signed
   blob, not the fleet's knowledge. The shared memsync store models what
   the client population already holds, so a re-recording after eviction
   ships mostly hash references; the stats feed the cache listing. *)
type keyed = {
  key : key;
  label : string;
  sync_store : Memsync.Store.s;
  mutable hits : int;  (* cache hits + coalesced serves *)
  mutable recordings : int;
  mutable evictions : int;
}

type entry = {
  uid : int;  (* identity for per-run condition variables *)
  keyed : keyed;
  mutable blob : bytes option;
  mutable inflight : bool;
  mutable last_touch : int;  (* decision sequence number (LRU order) *)
  mutable touch_epoch : int;  (* run counter at the last touch *)
}

(* ---- observability plane ----

   The fleet plane is strictly write-only with respect to outcomes: its
   clock is advanced with [advance_to] (never yielded), its histograms and
   tracer read clocks without moving them, and nothing here feeds back into
   decisions, seeds or session counters — so a run with the plane enabled
   is outcome-identical to one without (the differential test pins this). *)

type track = {
  track_client : int;
  track_arrival_ns : int64;
  track_tracer : Tracer.t;
}

type observation = {
  obs_hists : Hist.set;  (* fleet-wide SLO series (turnaround, TTFB, waits) *)
  obs_tracer : Tracer.t;  (* the service's own track: lookups, evicts, promotions *)
  mutable obs_tracks : track list;  (* per-session span tracks, newest first *)
  obs_key_ttfb : (string, Hist.t) Hashtbl.t;  (* label -> TTFB series *)
  obs_key_turnaround : (string, Hist.t) Hashtbl.t;  (* label -> turnaround series *)
}

type t = {
  capacity : int;  (* resident entries; 0 = unbounded *)
  cache : (key, entry) Hashtbl.t;
  keyed_tbl : (key, keyed) Hashtbl.t;
  histories : (string, Spec_history.t) Hashtbl.t;
      (* (net, sku) -> speculation history shared across all sessions of
         that pair, whatever their mode flags (§7.3) *)
  svc : Counters.t;
  svc_m : Metrics.t;  (* typed write-through view over [svc] *)
  svc_clock : Clock.t;
      (* service-plane timeline: advanced (never yielded) to each admission's
         arrival, so service events carry fleet-global timestamps *)
  svc_trace : Trace.t;
      (* always-on bounded post-mortem ring (topic "service"): evictions,
         waiter promotions, re-arms — dumped when a fleet run fails *)
  mutable touch_seq : int;
  mutable uid_seq : int;
  mutable run_epoch : int;  (* bumped per [run]; feeds eviction preference *)
  mutable obs : observation option;  (* present for the duration of an observed run *)
}

let create ?(cache_capacity = 0) () =
  if cache_capacity < 0 then invalid_arg "Service.create: negative capacity";
  let svc = Counters.create () in
  let svc_clock = Clock.create () in
  {
    capacity = cache_capacity;
    cache = Hashtbl.create 64;
    keyed_tbl = Hashtbl.create 64;
    histories = Hashtbl.create 16;
    svc;
    svc_m = Metrics.of_counters svc;
    svc_clock;
    svc_trace = Trace.create ~capacity:1024 svc_clock;
    touch_seq = 0;
    uid_seq = 0;
    run_epoch = 0;
    obs = None;
  }

let service_counters t = t.svc
let service_trace t = t.svc_trace
let observation t = t.obs
let obs_tracer t = match t.obs with Some o -> Some o.obs_tracer | None -> None

(* ---- execution planes ----

   Everything a *running* session body writes on the service side — typed
   counters, the service clock, the post-mortem ring, the observation — is
   reached through a [worker] plane rather than [t] directly. A
   single-domain run executes against the identity plane ({!worker_of}:
   every field aliases [t]'s own, so behaviour is byte-identical to the
   pre-sharding code). A parallel run gives each domain a private plane
   and folds the planes back into [t] deterministically after the join
   ([merge_worker]). [w_histories] is the exception: it aliases the shared
   per-group table in every plane, and is read-only during execution (all
   groups are materialized at plan time). *)

type worker = {
  w_svc : Counters.t;
  w_svc_m : Metrics.t;
  w_clock : Clock.t;
  w_trace : Trace.t;
  w_obs : observation option;
  w_histories : (string, Spec_history.t) Hashtbl.t;
}

let worker_of t =
  {
    w_svc = t.svc;
    w_svc_m = t.svc_m;
    w_clock = t.svc_clock;
    w_trace = t.svc_trace;
    w_obs = t.obs;
    w_histories = t.histories;
  }

let tracer_of_obs = function Some o -> Some o.obs_tracer | None -> None

let key_hist tbl label =
  match Hashtbl.find_opt tbl label with
  | Some h -> h
  | None ->
    let h = Hist.create ~name:label () in
    Hashtbl.add tbl label h;
    h

(* Sample a session-local duration (ns so far on the session clock) into a
   fleet series, in µs, plus the per-key table when one is given. *)
let obs_sample w ?label hkey ns =
  match w.w_obs with
  | None -> ()
  | Some o ->
    let us = Int64.to_int (Int64.div ns 1_000L) in
    Hist.record o.obs_hists hkey us;
    (match label with
    | Some (tbl, l) -> Hist.observe (key_hist (tbl o) l) us
    | None -> ())

let obs_ttfb w (e : entry) ctx =
  obs_sample w
    ~label:((fun o -> o.obs_key_ttfb), e.keyed.label)
    Hist.Svc_ttfb_us
    (Clock.now_ns ctx.Ctx.clock)

let register_track w (spec : client_spec) ctx =
  match (w.w_obs, ctx.Ctx.tracer) with
  | Some o, Some tr ->
    o.obs_tracks <-
      { track_client = spec.client_id; track_arrival_ns = spec.arrival_ns; track_tracer = tr }
      :: o.obs_tracks
  | _ -> ()

(* Perfetto lanes: tid 0 is the service plane, client [i] renders on lane
   [i + 1], shifted onto global time by its arrival. A promoted waiter's
   record-phase tracer registers a second track on the same lane. *)
let fleet_tracks t =
  match t.obs with
  | None -> []
  | Some o ->
    {
      Tracer.track_tid = 0;
      track_name = "service";
      track_offset_ns = 0L;
      track_tracer = o.obs_tracer;
    }
    :: List.rev_map
         (fun tr ->
           {
             Tracer.track_tid = tr.track_client + 1;
             track_name = Printf.sprintf "client-%d" tr.track_client;
             track_offset_ns = tr.track_arrival_ns;
             track_tracer = tr.track_tracer;
           })
         o.obs_tracks

let share_group_of ~(net : Network.t) ~(sku : Sku.t) = net.Network.name ^ "|" ^ sku.Sku.name
let share_group (spec : client_spec) = share_group_of ~net:spec.net ~sku:spec.sku

(* Plan-time lookup-or-create; during parallel execution the table is only
   ever *read* (every group a session can name was materialized by its own
   plan pass), so concurrent shards never mutate it. *)
let history_for w spec =
  let g = share_group spec in
  match Hashtbl.find_opt w.w_histories g with
  | Some h -> h
  | None ->
    let h = Spec_history.create () in
    Hashtbl.add w.w_histories g h;
    h

let keyed_for t key ~label =
  match Hashtbl.find_opt t.keyed_tbl key with
  | Some k -> k
  | None ->
    let k =
      { key; label; sync_store = Memsync.Store.create (); hits = 0; recordings = 0; evictions = 0 }
    in
    Hashtbl.add t.keyed_tbl key k;
    k

(* ---- arrival-time decisions ----

   The cache decision for every client is taken at its *arrival*, in
   arrival order, before any session work runs. Decisions therefore form
   the same sequence whether the sessions then run multiplexed or
   sequentially — which makes eviction, recorder identity and the shared
   stores deterministic across execution modes (the interleaving-
   determinism property leans on this). *)

type decision =
  | D_serve of entry  (* blob resident *)
  | D_wait of entry  (* recording in flight: coalesce onto it *)
  | D_record of entry  (* this client triggers the recording *)

let evict_if_full t ~for_client =
  if t.capacity > 0 && Hashtbl.length t.cache >= t.capacity then begin
    (* LRU victim, preferring entries idle since before this run: an entry
       touched this run may (under multiplexed execution) carry an
       in-flight recording or coalesced waiters, so it is the worse
       victim. The preference is computed from the decision sequence
       alone — never from [inflight], which reads differently under the
       two execution modes at decision time (sequential settles every
       recording before the next arrival is examined), so consulting it
       would break cross-mode determinism. When every resident entry is
       active this run this degrades to plain LRU, and evicting an entry
       mid-recording stays safe: its waiters keep their reference and are
       served when it settles, while a later same-key miss re-records
       through the key-shared stores — the exact analogue of sequential
       mode's re-record after eviction. *)
    let worse (a : entry) (b : entry) =
      (a.touch_epoch = t.run_epoch, a.last_touch) > (b.touch_epoch = t.run_epoch, b.last_touch)
    in
    let victim =
      Hashtbl.fold
        (fun _ e acc -> match acc with Some b when worse e b -> acc | _ -> Some e)
        t.cache None
    in
    match victim with
    | Some e ->
      Hashtbl.remove t.cache e.keyed.key;
      e.keyed.evictions <- e.keyed.evictions + 1;
      Metrics.incr t.svc_m Metrics.Svc_evictions;
      let blob_bytes = match e.blob with Some b -> Bytes.length b | None -> 0 in
      Trace.event t.svc_trace
        (Trace.Evict { label = e.keyed.label; client = for_client; blob_bytes });
      Tracer.instant_opt (obs_tracer t) ~cat:Tracer.Svc_evict
        ~args:
          [
            ("label", e.keyed.label);
            ("for", Printf.sprintf "client-%d" for_client);
            ("blob_bytes", string_of_int blob_bytes);
          ]
        "evict"
    | None -> ()
  end

let decision_name = function D_serve _ -> "serve" | D_wait _ -> "wait" | D_record _ -> "record"
let decision_entry = function D_serve e | D_wait e | D_record e -> e

let decide t (spec : client_spec) =
  (* Admissions are examined in arrival order (the plan pass sorts), so the
     service clock only ever moves forward here. *)
  Clock.advance_to t.svc_clock spec.arrival_ns;
  let key = cache_key ~cfg:spec.cfg ~sku:spec.sku ~net:spec.net in
  t.touch_seq <- t.touch_seq + 1;
  let touch = t.touch_seq in
  let touch_entry e =
    e.last_touch <- touch;
    e.touch_epoch <- t.run_epoch
  in
  let d =
    match Hashtbl.find_opt t.cache key with
    | Some e when e.blob <> None ->
      touch_entry e;
      D_serve e
    | Some e when e.inflight ->
      touch_entry e;
      D_wait e
    | Some e ->
      (* resident but its recording failed: this client retries *)
      touch_entry e;
      e.inflight <- true;
      Metrics.incr t.svc_m Metrics.Svc_cache_misses;
      Trace.event t.svc_trace (Trace.Rearm { label = e.keyed.label; client = spec.client_id });
      D_record e
    | None ->
      evict_if_full t ~for_client:spec.client_id;
      let keyed = keyed_for t key ~label:(key_label ~cfg:spec.cfg ~sku:spec.sku ~net:spec.net) in
      t.uid_seq <- t.uid_seq + 1;
      let e =
        {
          uid = t.uid_seq;
          keyed;
          blob = None;
          inflight = true;
          last_touch = touch;
          touch_epoch = t.run_epoch;
        }
      in
      Hashtbl.replace t.cache key e;
      Metrics.incr t.svc_m Metrics.Svc_cache_misses;
      D_record e
  in
  Tracer.instant_opt (obs_tracer t) ~cat:Tracer.Svc_cache_lookup
    ~args:
      [
        ("client", string_of_int spec.client_id);
        ("key", (decision_entry d).keyed.label);
        ("decision", decision_name d);
      ]
    "cache-lookup";
  d

(* ---- session bodies ----

   The session's context (and so its clock) is built at plan time: under
   the scheduler the ctx clock is the task clock, so every blocking wait
   inside the session is a scheduler yield point. *)

let serve_ctx w (spec : client_spec) ~seed =
  let options = { Ctx.default_options with Ctx.observe = w.w_obs <> None } in
  Ctx.create ~options ~cfg:spec.cfg ~profile:spec.profile ~sku:spec.sku ~net:spec.net ~seed
    ~granularity:`Monolithic ()

let record_ctx ?clock w (spec : client_spec) (e : entry) =
  let options =
    {
      Ctx.default_options with
      Ctx.history = Some (history_for w spec);
      sync_store = Some e.keyed.sync_store;
      inject_fault_after = spec.inject_fault_after;
      observe = w.w_obs <> None;
    }
  in
  Ctx.create ~options ?clock ~cfg:spec.cfg ~profile:spec.profile ~sku:spec.sku ~net:spec.net
    ~seed:(recording_seed e.keyed.key) ~granularity:`Monolithic ()

let report_of ctx (spec : client_spec) (e : entry) outcome ~blob_bytes =
  {
    spec;
    key = e.keyed.key;
    label = e.keyed.label;
    outcome;
    turnaround_s = Grt_sim.Clock.now_s ctx.Ctx.clock;
    blob_bytes;
    counters = ctx.Ctx.counters;
  }

(* Serve a resident blob over [ctx]: attested establishment + download +
   verification — everything of a session except the dry run. *)
let serve w spec (e : entry) ctx ~coalesced =
  let blob = Option.get e.blob in
  Tracer.span_opt ctx.Ctx.tracer ~cat:Tracer.Svc_serve_cached
    ~args:[ ("key", e.keyed.label) ]
    ~name:"serve-cached"
    (fun () -> Orchestrate.serve_cached ctx ~blob);
  e.keyed.hits <- e.keyed.hits + 1;
  Metrics.incr w.w_svc_m (if coalesced then Metrics.Svc_coalesced else Metrics.Svc_cache_hits);
  report_of ctx spec e
    (if coalesced then Coalesced else Cache_hit)
    ~blob_bytes:(Bytes.length blob)

(* Record under the key-derived seed and publish the blob into the entry.
   The caller owns turnstile ordering and completion signalling. *)
let record_into w spec (e : entry) ctx =
  let history = history_for w spec in
  Spec_history.new_epoch history;
  let cross0 = Spec_history.cross_hits history in
  match
    Tracer.span_opt ctx.Ctx.tracer ~cat:Tracer.Svc_record
      ~args:[ ("key", e.keyed.label) ]
      ~name:"record"
      (fun () -> Orchestrate.Pipeline.run (Orchestrate.Pipeline.create ctx))
  with
  | outcome ->
    let cross = Spec_history.cross_hits history - cross0 in
    if cross > 0 then Metrics.add ctx.Ctx.metrics Metrics.Spec_cross_hits cross;
    e.blob <- Some outcome.Orchestrate.blob;
    e.inflight <- false;
    e.keyed.recordings <- e.keyed.recordings + 1;
    Metrics.incr w.w_svc_m Metrics.Svc_recordings;
    report_of ctx spec e (Recorded outcome) ~blob_bytes:(Bytes.length outcome.Orchestrate.blob)
  | exception exn ->
    e.inflight <- false;
    Metrics.incr w.w_svc_m Metrics.Svc_failures;
    report_of ctx spec e (Failed (Printexc.to_string exn)) ~blob_bytes:0

(* Report a client that never got a session body to run. [ctx] is the
   session's real context, so turnaround and counters reflect any wait the
   client actually spent (not a fresh zeroed clock). *)
let fail_report w spec (e : entry) ctx msg =
  Metrics.incr w.w_svc_m Metrics.Svc_failures;
  report_of ctx spec e (Failed msg) ~blob_bytes:0

(* A serve can fail live (ARQ collapse on a degraded channel, verification
   failure): keep the fleet running and report the client as failed. *)
let serve_safe w spec (e : entry) ctx ~coalesced =
  try serve w spec e ctx ~coalesced
  with exn ->
    Metrics.incr w.w_svc_m Metrics.Svc_failures;
    report_of ctx spec e (Failed (Printexc.to_string exn)) ~blob_bytes:0

(* ---- sequential execution ----

   Each session runs to completion at its decision point. [D_wait] is
   unreachable: a recording always finishes (or fails) before the next
   arrival is examined. *)

let run_sequential t specs =
  let w = worker_of t in
  List.map
    (fun spec ->
      Metrics.incr t.svc_m Metrics.Svc_sessions;
      match decide t spec with
      | D_serve e ->
        let ctx = serve_ctx w spec ~seed:(serve_seed e.keyed.key ~client_id:spec.client_id) in
        register_track w spec ctx;
        obs_ttfb w e ctx;
        serve_safe w spec e ctx ~coalesced:false
      | D_record e ->
        let ctx = record_ctx w spec e in
        register_track w spec ctx;
        obs_ttfb w e ctx;
        record_into w spec e ctx
      | D_wait e -> (
        let ctx = serve_ctx w spec ~seed:(serve_seed e.keyed.key ~client_id:spec.client_id) in
        register_track w spec ctx;
        match e.blob with
        | Some _ ->
          obs_ttfb w e ctx;
          serve_safe w spec e ctx ~coalesced:true
        | None -> fail_report w spec e ctx "recording in flight with no scheduler"))
    specs

(* ---- multiplexed execution ----

   Decisions are taken up front (arrival order), then every session becomes
   a scheduler task entering the shared timeline at its arrival time.
   Same-key sessions coalesce on the entry's condition; recordings of the
   same share group are serialized through a FIFO turnstile (they mutate
   the shared speculation history, and the ticket order — assigned at
   decision time — keeps that mutation order identical to the sequential
   mode's).

   Recording failure re-arms the entry: sequential mode retries a failed
   key at the next same-key arrival, so the failed recorder promotes the
   earliest planned waiter into the recorder role. The promoted waiter
   takes the turnstile slot its own decision position dictates — behind
   group recorders that were decided between the failed recording and the
   waiter's arrival — keeping the shared history/store mutation order, and
   therefore every signed blob and counter, identical to the sequential
   schedule. *)

type entry_sync = {
  e_cond : Sched.cond;  (* signalled whenever the entry's recording settles *)
  mutable e_waiting : int list;  (* plan-order FIFO of coalesced client ids *)
  mutable e_elected : int option;  (* waiter promoted to recorder, if any *)
}

(* Shared planning state. Fully populated by the plan pass (main domain);
   during execution the tables themselves are only read — shards mutate
   the *interior* of per-group/per-entry values they own (queue refs,
   entry syncs), which sharding confines to one domain each. *)
type run_aux = {
  entry_syncs : (int, entry_sync) Hashtbl.t;  (* entry uid -> sync state *)
  group_queues : (string, int list ref) Hashtbl.t;  (* group -> ticket FIFO *)
  group_conds : (string, Sched.cond) Hashtbl.t;
  decision_idx : (int, int) Hashtbl.t;  (* client id -> plan (decision) order *)
}

let aux_cond tbl k =
  match Hashtbl.find_opt tbl k with
  | Some c -> c
  | None ->
    let c = Sched.new_cond () in
    Hashtbl.add tbl k c;
    c

let entry_sync aux uid =
  match Hashtbl.find_opt aux.entry_syncs uid with
  | Some s -> s
  | None ->
    let s = { e_cond = Sched.new_cond (); e_waiting = []; e_elected = None } in
    Hashtbl.add aux.entry_syncs uid s;
    s

let group_queue aux g =
  match Hashtbl.find_opt aux.group_queues g with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.add aux.group_queues g q;
    q

(* Execute planned sessions over one scheduler against one worker plane.
   [plans] must be share-group-complete: every planned session of every
   group it contains is in the list, so the conds, entries, shared stores
   and speculation histories those sessions touch are driven by exactly
   one scheduler — this is the invariant the sharding below maintains. *)
let exec_sessions aux sched w reports plans =
  let put (spec : client_spec) r = Hashtbl.replace reports spec.client_id r in
  (* Record while holding (or acquiring) a group-turnstile ticket. On
     failure, promote the next planned waiter so the key retries exactly
     where sequential mode would. *)
  let record_with_ticket (spec : client_spec) (e : entry) ctx =
    let q = group_queue aux (share_group spec) in
    let gcond = aux_cond aux.group_conds (share_group spec) in
    let es = entry_sync aux e.uid in
    let promoted = ref None in
    (* Sequential mode runs a group's recordings in decision order — the
       promoted waiter's retry included, at the waiter's own decision
       position. Insert accordingly: group recorders decided between the
       failed recording and the waiter's arrival keep their earlier
       turnstile slots. *)
    let insert_by_decision wid rest =
      let idx id = Hashtbl.find aux.decision_idx id in
      let rec ins = function
        | x :: tl when idx x < idx wid -> x :: ins tl
        | tl -> wid :: tl
      in
      ins rest
    in
    let finish () =
      (match !promoted with
      | Some wid -> q := insert_by_decision wid (List.tl !q)
      | None -> q := List.filter (fun id -> id <> spec.client_id) !q);
      Sched.signal_all sched gcond;
      Sched.signal_all sched es.e_cond
    in
    Fun.protect ~finally:finish (fun () ->
        let rec turn () =
          match !q with
          | head :: _ when head = spec.client_id -> ()
          | _ ->
            Sched.await sched gcond;
            turn ()
        in
        let t0 = Clock.now_ns ctx.Ctx.clock in
        Tracer.span_opt ctx.Ctx.tracer ~cat:Tracer.Svc_turnstile_wait
          ~args:[ ("group", share_group spec) ]
          ~name:"turnstile-wait" turn;
        obs_sample w Hist.Svc_turnstile_wait_us (Int64.sub (Clock.now_ns ctx.Ctx.clock) t0);
        obs_ttfb w e ctx;
        let r = record_into w spec e ctx in
        (match r.outcome with
        | Failed _ -> (
          match es.e_waiting with
          | wid :: rest ->
            (* Re-arm the entry for the promoted waiter — the retry this
               key would get at its next arrival in sequential mode. *)
            es.e_waiting <- rest;
            es.e_elected <- Some wid;
            e.inflight <- true;
            promoted := Some wid;
            Metrics.incr w.w_svc_m Metrics.Svc_promotions;
            (* the promoted waiter re-records: the miss a sequential run
               would charge at its retry arrival *)
            Metrics.incr w.w_svc_m Metrics.Svc_cache_misses;
            Clock.advance_to w.w_clock
              (Int64.add spec.arrival_ns (Clock.now_ns ctx.Ctx.clock));
            Trace.event w.w_trace (Trace.Promote { label = e.keyed.label; client = wid });
            Tracer.instant_opt (tracer_of_obs w.w_obs) ~cat:Tracer.Svc_promotion
              ~args:
                [
                  ("label", e.keyed.label);
                  ("failed", Printf.sprintf "client-%d" spec.client_id);
                  ("promoted", Printf.sprintf "client-%d" wid);
                ]
              "waiter-promotion"
          | [] -> ())
        | Recorded _ | Cache_hit | Coalesced -> ());
        put spec r)
  in
  (* Spawn pass: one task per session, entering at its arrival time. *)
  List.iter
    (fun ((spec : client_spec), d, ctx) ->
      let body () =
        match d with
        | D_serve e ->
          obs_ttfb w e ctx;
          put spec (serve_safe w spec e ctx ~coalesced:false)
        | D_wait e ->
          let es = entry_sync aux e.uid in
          let rec wait () =
            if es.e_elected = Some spec.client_id then `Record
            else
              match e.blob with
              | Some _ -> `Serve
              | None when e.inflight ->
                Sched.await sched es.e_cond;
                wait ()
              | None -> `Orphaned
          in
          let t0 = Clock.now_ns ctx.Ctx.clock in
          let got =
            Tracer.span_opt ctx.Ctx.tracer ~cat:Tracer.Svc_coalesce_wait
              ~args:[ ("key", e.keyed.label) ]
              ~name:"coalesce-wait" wait
          in
          obs_sample w Hist.Svc_coalesce_wait_us (Int64.sub (Clock.now_ns ctx.Ctx.clock) t0);
          (match got with
          | `Serve ->
            obs_ttfb w e ctx;
            put spec (serve_safe w spec e ctx ~coalesced:true)
          | `Record ->
            es.e_elected <- None;
            (* Promoted: re-record on this task's scheduler-registered
               clock, under the same key-derived seed and options a planned
               recorder uses. *)
            let rctx = record_ctx w spec e ~clock:ctx.Ctx.clock in
            register_track w spec rctx;
            record_with_ticket spec e rctx
          | `Orphaned ->
            (* Unreachable while promotion elects every remaining waiter;
               kept so an unexpected settle still yields a report. *)
            put spec (fail_report w spec e ctx "recording failed upstream"))
        | D_record e -> record_with_ticket spec e ctx
      in
      ignore
        (Sched.spawn sched ~arrival_ns:spec.arrival_ns
           ~name:(Printf.sprintf "client-%d" spec.client_id)
           ~clock:ctx.Ctx.clock body))
    plans;
  Sched.run sched

(* Plan pass: decisions + session contexts, taken on the calling domain in
   arrival order — identically whatever [domains] the execution then uses,
   so eviction, recorder identity and the shared stores never depend on the
   execution geometry. Pre-creates every cond/sync/queue a planned session
   can name, leaving the [aux] tables structurally read-only during
   (possibly parallel) execution. *)
let plan_fleet t aux specs =
  let w = worker_of t in
  List.mapi
    (fun i (spec : client_spec) ->
      Hashtbl.replace aux.decision_idx spec.client_id i;
      Metrics.incr t.svc_m Metrics.Svc_sessions;
      let d = decide t spec in
      let ctx =
        match d with
        | D_record e ->
          let g = share_group spec in
          let q = group_queue aux g in
          q := !q @ [ spec.client_id ];
          ignore (aux_cond aux.group_conds g);
          ignore (entry_sync aux e.uid);
          record_ctx w spec e
        | D_wait e ->
          let es = entry_sync aux e.uid in
          es.e_waiting <- es.e_waiting @ [ spec.client_id ];
          serve_ctx w spec ~seed:(serve_seed e.keyed.key ~client_id:spec.client_id)
        | D_serve e -> serve_ctx w spec ~seed:(serve_seed e.keyed.key ~client_id:spec.client_id)
      in
      register_track w spec ctx;
      (spec, d, ctx))
    specs

(* ---- sharded (domain-parallel) execution ----

   Sessions only share mutable state *within* a share group: the group's
   turnstile queue/cond, its speculation history, and — because the cache
   key refines the group with runtime and mode flags — every entry, keyed
   record and memsync store a session can touch. Partitioning the plan by
   share group therefore yields shards with no shared mutable session
   state, and each shard's virtual-time facts (waits, signal instants,
   turnstile order) are intrinsic to the shard: a scheduler only ever
   interleaves tasks that could interact anyway. That is why running the
   shards on separate domains and folding the worker planes back in shard
   order reproduces the single-scheduler run's outcomes bit for bit. *)

let distinct_groups plans =
  let seen = Hashtbl.create 16 in
  List.iter (fun ((spec : client_spec), _, _) -> Hashtbl.replace seen (share_group spec) ()) plans;
  Hashtbl.length seen

(* Partition a plan into at most [domains] share-group-complete shards.
   Greedy bin-packing: groups by descending session count (ties: earliest
   first decision), each to the least-loaded shard (ties: lowest index).
   Deterministic — shard composition is a pure function of the plan. *)
let shard_plans ~domains plans =
  let first_idx = Hashtbl.create 16 and counts = Hashtbl.create 16 in
  List.iteri
    (fun i ((spec : client_spec), _, _) ->
      let g = share_group spec in
      if not (Hashtbl.mem first_idx g) then Hashtbl.add first_idx g i;
      Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g)))
    plans;
  let groups =
    Hashtbl.fold (fun g c acc -> (g, Hashtbl.find first_idx g, c) :: acc) counts []
    |> List.sort (fun (_, ia, ca) (_, ib, cb) ->
           match compare (cb : int) ca with 0 -> compare (ia : int) ib | c -> c)
  in
  let loads = Array.make domains 0 in
  let assign = Hashtbl.create 16 in
  List.iter
    (fun (g, _, c) ->
      let best = ref 0 in
      for k = 1 to domains - 1 do
        if loads.(k) < loads.(!best) then best := k
      done;
      Hashtbl.replace assign g !best;
      loads.(!best) <- loads.(!best) + c)
    groups;
  let buckets = Array.make domains [] in
  List.iter
    (fun (((spec : client_spec), _, _) as p) ->
      let k = Hashtbl.find assign (share_group spec) in
      buckets.(k) <- p :: buckets.(k))
    plans;
  Array.to_list buckets
  |> List.filter_map (function [] -> None | b -> Some (List.rev b))
  |> Array.of_list

(* One executed shard: its worker plane, scheduler and private report
   table, kept for the deterministic merge and the run stats. *)
type shard = {
  sh_worker : worker;
  sh_sched : Sched.t;
  sh_reports : (int, session_report) Hashtbl.t;
  sh_groups : int;
  sh_clients : int;
}

let new_observation_over clock =
  {
    obs_hists = Hist.create_set ();
    obs_tracer = Tracer.create clock;
    obs_tracks = [];
    obs_key_ttfb = Hashtbl.create 32;
    obs_key_turnaround = Hashtbl.create 32;
  }

let new_observation t = new_observation_over t.svc_clock

let observe_switches sched = function
  | Some o ->
    Sched.set_switch_observer sched
      (Some (fun runnable -> Hist.record o.obs_hists Hist.Sched_runnable runnable))
  | None -> ()

(* Fold one shard's private planes back into [t]. Called in shard-index
   order; every fold is either commutative (counter sums, histogram bucket
   sums) or made deterministic by that fixed order (tracer streams, track
   lists), so the merged run is a pure function of the plan — never of
   domain scheduling. *)
let merge_shard t sh =
  let w = sh.sh_worker in
  Counters.merge_into ~dst:t.svc ~src:w.w_svc;
  Clock.advance_to t.svc_clock (Clock.now_ns w.w_clock);
  match (t.obs, w.w_obs) with
  | Some o, Some wo ->
    Hist.merge_set ~into:o.obs_hists wo.obs_hists;
    Tracer.absorb ~into:o.obs_tracer wo.obs_tracer;
    o.obs_tracks <- wo.obs_tracks @ o.obs_tracks;
    let merge_keyed dst src =
      Hashtbl.fold (fun l h acc -> (l, h) :: acc) src []
      |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
      |> List.iter (fun (l, h) -> Hist.merge ~into:(key_hist dst l) h)
    in
    merge_keyed o.obs_key_ttfb wo.obs_key_ttfb;
    merge_keyed o.obs_key_turnaround wo.obs_key_turnaround
  | _ -> ()

let run_multiplexed ?backend ~domains t specs =
  let aux =
    {
      entry_syncs = Hashtbl.create 64;
      group_queues = Hashtbl.create 16;
      group_conds = Hashtbl.create 16;
      decision_idx = Hashtbl.create 64;
    }
  in
  let plans = plan_fleet t aux specs in
  let shards =
    if domains <= 1 then begin
      (* Identity plane on a single scheduler: byte-identical to the
         pre-sharding code path, with nothing to merge. *)
      let sched = Sched.create ?backend () in
      observe_switches sched t.obs;
      let sh =
        {
          sh_worker = worker_of t;
          sh_sched = sched;
          sh_reports = Hashtbl.create 256;
          sh_groups = distinct_groups plans;
          sh_clients = List.length plans;
        }
      in
      exec_sessions aux sched sh.sh_worker sh.sh_reports plans;
      [ sh ]
    end
    else begin
      let parts = shard_plans ~domains plans in
      let observing = t.obs <> None in
      let mk plans_k =
        let sched = Sched.create ?backend () in
        let c = Counters.create () in
        let w_clock = Clock.create () in
        let w =
          {
            w_svc = c;
            w_svc_m = Metrics.of_counters c;
            w_clock;
            w_trace = Trace.create ~capacity:1024 w_clock;
            w_obs = (if observing then Some (new_observation_over w_clock) else None);
            w_histories = t.histories;
          }
        in
        observe_switches sched w.w_obs;
        {
          sh_worker = w;
          sh_sched = sched;
          sh_reports = Hashtbl.create 64;
          sh_groups = distinct_groups plans_k;
          sh_clients = List.length plans_k;
        }
      in
      let shards = Array.map mk parts in
      (* Run the shards (across domains when the compiler has them); each
         returns its domain-local memo-cache profile, exported on the
         domain that owns the tables. Export only when shards really run
         on spawned domains — on the serial fallback (4.14, or a single
         shard) they execute on the calling domain and already count into
         its cells, so absorbing an export would double-count. *)
      let exported = Grt_util.Par.parallelism_available && Array.length parts > 1 in
      let memo =
        Grt_util.Par.run_shards
          (fun k plans_k ->
            let sh = shards.(k) in
            exec_sessions aux sh.sh_sched sh.sh_worker sh.sh_reports plans_k;
            if exported then Grt_util.Memo_stats.export () else [])
          parts
      in
      Array.iter Grt_util.Memo_stats.absorb memo;
      Array.iter (merge_shard t) shards;
      (* The service ring holds timestamped events: interleave the
         per-shard rings on the global timeline (stable sort — shard order
         breaks ties deterministically). *)
      Array.to_list shards
      |> List.concat_map (fun sh -> Trace.all sh.sh_worker.w_trace)
      |> List.stable_sort (fun (a : Trace.event) b -> Int64.compare a.Trace.at_ns b.Trace.at_ns)
      |> Trace.absorb t.svc_trace;
      Array.to_list shards
    end
  in
  let reports =
    List.map
      (fun (spec : client_spec) ->
        let rec find = function
          | [] ->
            failwith (Printf.sprintf "Service: client %d produced no report" spec.client_id)
          | sh :: tl -> (
            match Hashtbl.find_opt sh.sh_reports spec.client_id with
            | Some r -> r
            | None -> find tl)
        in
        find shards)
      specs
  in
  (reports, shards)

(* Turnaround series are filled from the finished reports — one place, both
   execution modes, labels included. *)
let finalize_obs t reports =
  match t.obs with
  | None -> ()
  | Some o ->
    List.iter
      (fun r ->
        let us = int_of_float (r.turnaround_s *. 1e6) in
        Hist.record o.obs_hists Hist.Svc_turnaround_us us;
        Hist.observe (key_hist o.obs_key_turnaround r.label) us)
      reports

type shard_stat = {
  shard_index : int;
  shard_groups : int;
  shard_clients : int;
  shard_yields : int;
  shard_switches : int;
}

type run_stats = {
  rs_mode : string;  (* "sequential" | "multiplexed" | "parallel" *)
  rs_domains : int;  (* domains requested (1 for sequential/multiplexed) *)
  rs_parallel : bool;  (* shards actually ran on separate domains *)
  rs_backend : string option;  (* scheduler engine; [None] for sequential *)
  rs_virtual_ns : int64;  (* fleet makespan on the virtual timeline *)
  rs_yields : int;
  rs_switches : int;
  rs_shards : shard_stat list;  (* one row per executed shard *)
}

let run ?backend ?(sequential = false) ?(observe = false) ?(domains = 1) t specs =
  if domains < 1 then invalid_arg "Service.run: domains must be >= 1";
  t.run_epoch <- t.run_epoch + 1;
  t.obs <- (if observe then Some (new_observation t) else None);
  let specs =
    List.stable_sort
      (fun (a : client_spec) b ->
        match Int64.compare a.arrival_ns b.arrival_ns with
        | 0 -> compare a.client_id b.client_id
        | c -> c)
      specs
  in
  let reports, stats =
    if sequential then begin
      let reports = run_sequential t specs in
      (* Sequential sessions run back-to-back off the shared timeline; the
         fleet makespan is still the last session's completion instant. *)
      let virtual_ns =
        List.fold_left
          (fun acc r ->
            let fin = Int64.add r.spec.arrival_ns (Int64.of_float (r.turnaround_s *. 1e9)) in
            if Int64.compare fin acc > 0 then fin else acc)
          0L reports
      in
      ( reports,
        {
          rs_mode = "sequential";
          rs_domains = 1;
          rs_parallel = false;
          rs_backend = None;
          rs_virtual_ns = virtual_ns;
          rs_yields = 0;
          rs_switches = 0;
          rs_shards = [];
        } )
    end
    else begin
      let reports, shards = run_multiplexed ?backend ~domains t specs in
      let backend_name =
        match shards with
        | sh :: _ -> Sched.backend_name (Sched.backend sh.sh_sched)
        | [] -> Sched.backend_name Sched.default_backend
      in
      let shard_stats =
        List.mapi
          (fun i sh ->
            {
              shard_index = i;
              shard_groups = sh.sh_groups;
              shard_clients = sh.sh_clients;
              shard_yields = Sched.yields sh.sh_sched;
              shard_switches = Sched.switches sh.sh_sched;
            })
          shards
      in
      ( reports,
        {
          rs_mode = (if domains > 1 then "parallel" else "multiplexed");
          rs_domains = domains;
          rs_parallel = domains > 1 && Grt_util.Par.parallelism_available && List.length shards > 1;
          rs_backend = Some backend_name;
          rs_virtual_ns =
            List.fold_left
              (fun acc sh ->
                let v = Sched.now_ns sh.sh_sched in
                if Int64.compare v acc > 0 then v else acc)
              0L shards;
          rs_yields = List.fold_left (fun acc sh -> acc + Sched.yields sh.sh_sched) 0 shards;
          rs_switches = List.fold_left (fun acc sh -> acc + Sched.switches sh.sh_sched) 0 shards;
          rs_shards = shard_stats;
        } )
    end
  in
  finalize_obs t reports;
  (reports, stats)

(* ---- aggregation, stats, cache listing ---- *)

let aggregate t reports =
  let dst = Counters.create () in
  List.iter (fun r -> Counters.merge_into ~dst ~src:r.counters) reports;
  Counters.merge_into ~dst ~src:t.svc;
  dst

type stats = {
  sessions : int;
  recordings : int;
  cache_hits : int;
  cache_misses : int;
  coalesced : int;
  promotions : int;
  failures : int;
  evictions : int;
  resident : int;
  resident_bytes : int;
}

let stats t =
  let get k = Metrics.get_int t.svc_m k in
  let resident, resident_bytes =
    Hashtbl.fold
      (fun _ e (n, b) ->
        (n + 1, b + (match e.blob with Some blob -> Bytes.length blob | None -> 0)))
      t.cache (0, 0)
  in
  {
    sessions = get Metrics.Svc_sessions;
    recordings = get Metrics.Svc_recordings;
    cache_hits = get Metrics.Svc_cache_hits;
    cache_misses = get Metrics.Svc_cache_misses;
    coalesced = get Metrics.Svc_coalesced;
    promotions = get Metrics.Svc_promotions;
    failures = get Metrics.Svc_failures;
    evictions = get Metrics.Svc_evictions;
    resident;
    resident_bytes;
  }

let hit_rate s =
  if s.sessions = 0 then 0. else float_of_int (s.cache_hits + s.coalesced) /. float_of_int s.sessions

type listing_row = {
  row_key : key;
  row_label : string;
  row_resident : bool;
  row_blob_bytes : int;
  row_hits : int;
  row_recordings : int;
  row_evictions : int;
}

let cache_listing t =
  Hashtbl.fold
    (fun key (k : keyed) acc ->
      let resident, blob_bytes =
        match Hashtbl.find_opt t.cache key with
        | Some { blob = Some b; _ } -> (true, Bytes.length b)
        | Some { blob = None; _ } -> (true, 0)
        | None -> (false, 0)
      in
      {
        row_key = key;
        row_label = k.label;
        row_resident = resident;
        row_blob_bytes = blob_bytes;
        row_hits = k.hits;
        row_recordings = k.recordings;
        row_evictions = k.evictions;
      }
      :: acc)
    t.keyed_tbl []
  |> List.sort (fun a b -> compare a.row_label b.row_label)

(* ---- fleet generation ---- *)

type fleet_options = {
  clients : int;
  zipf_s : float;  (* popularity skew over (net, sku) ranks *)
  nets : Network.t list;
  skus : Sku.t list;
  fleet_cfg : Mode.config;
  mean_interarrival_s : float;
  fault_fraction : float;  (* clients that arm [inject_fault_after] *)
  degraded_fraction : float;  (* clients behind a lossy channel *)
  fleet_seed : int64;
}

(* The fast-path configuration: the small tagged wire keeps 10k+ downloads
   and verifications cheap, and it is the configuration whose recordings
   benefit from the shared dedup store. *)
let fastpath_cfg =
  { (Mode.default_config Mode.Ours_mds) with Mode.memsync_dedup = true; memsync_adaptive = true }

let default_fleet =
  {
    clients = 10_000;
    zipf_s = 1.1;
    nets = Grt_mlfw.Zoo.all;
    skus = Grt_gpu.Sku.all;
    fleet_cfg = fastpath_cfg;
    mean_interarrival_s = 0.005;
    fault_fraction = 0.05;
    degraded_fraction = 0.10;
    fleet_seed = 0x666C656574L (* "fleet" *);
  }

let zipf_fleet (o : fleet_options) =
  if o.clients <= 0 then invalid_arg "Service.zipf_fleet: clients must be positive";
  if o.nets = [] || o.skus = [] then invalid_arg "Service.zipf_fleet: empty catalog";
  let rng = Grt_util.Rng.create ~seed:o.fleet_seed in
  let pairs =
    Array.of_list (List.concat_map (fun n -> List.map (fun s -> (n, s)) o.skus) o.nets)
  in
  let n = Array.length pairs in
  (* Zipf over popularity ranks: weight(rank r) = r^-s. *)
  let cum = Array.make n 0. in
  let total = ref 0. in
  Array.iteri
    (fun i _ ->
      total := !total +. (1. /. (float_of_int (i + 1) ** o.zipf_s));
      cum.(i) <- !total)
    pairs;
  let pick_pair u =
    let target = u *. !total in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) < target then bisect (mid + 1) hi else bisect lo mid
    in
    pairs.(bisect 0 (n - 1))
  in
  let arrival = ref 0. in
  List.init o.clients (fun client_id ->
      let net, sku = pick_pair (Grt_util.Rng.float rng 1.0) in
      (* WiFi-heavy mix, echoing §7.2's evaluated conditions. *)
      let base_profile =
        let p = Grt_util.Rng.float rng 1.0 in
        if p < 0.5 then Profile.wifi else if p < 0.85 then Profile.cellular else Profile.lan
      in
      let profile =
        if Grt_util.Rng.float rng 1.0 < o.degraded_fraction then
          Profile.degrade
            ~drop_prob:(0.005 +. Grt_util.Rng.float rng 0.015)
            ~jitter_s:(Grt_util.Rng.float rng 0.002) base_profile
        else base_profile
      in
      let inject_fault_after =
        if Grt_util.Rng.float rng 1.0 < o.fault_fraction then
          Some (1 + Grt_util.Rng.int rng 4)
        else None
      in
      (* Exponential interarrivals: a Poisson arrival process. *)
      let u = Grt_util.Rng.float rng 1.0 in
      arrival := !arrival +. (-.log (1. -. u) *. o.mean_interarrival_s);
      {
        client_id;
        arrival_ns = Int64.of_float (!arrival *. 1e9);
        net;
        sku;
        profile;
        cfg = o.fleet_cfg;
        inject_fault_after;
      })
