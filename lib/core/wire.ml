module Sexpr = Grt_util.Sexpr

type pending = Qr of { reg : int; sym : Sexpr.sym } | Qw of { reg : int; expr : Sexpr.t }

exception Need_drain

let to_wire queue =
  let batch_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let n_reads = ref 0 in
  List.iter
    (function
      | Qr { sym; _ } ->
        Hashtbl.replace batch_index sym.Sexpr.id !n_reads;
        incr n_reads
      | Qw _ -> ())
    queue;
  let rec conv = function
    | Sexpr.Const v -> Gpushim.Lit v
    | Sexpr.Sym s -> (
      match Hashtbl.find_opt batch_index s.Sexpr.id with
      | Some i -> Gpushim.Batch i
      | None -> (
        match s.Sexpr.binding with
        | Some v when not s.Sexpr.speculative -> Gpushim.Lit v
        | Some _ -> raise Need_drain
        | None -> failwith "Wire: write references unbound symbol outside batch"))
    | Sexpr.Bin (op, a, b) -> Gpushim.Bop (op, conv a, conv b)
    | Sexpr.Un (Sexpr.Not, a) -> Gpushim.Unot (conv a)
  in
  List.map
    (function
      | Qr { reg; _ } -> Gpushim.W_read reg
      | Qw { reg; expr } -> Gpushim.W_write (reg, conv expr))
    queue

let request_bytes ~overhead n_accesses = 24 + (14 * n_accesses) + overhead

let response_bytes ~overhead n_reads = 16 + (8 * n_reads) + overhead

let read_syms queue =
  List.filter_map (function Qr { reg; sym } -> Some (reg, sym) | Qw _ -> None) queue

let site_key ~fn ~trigger queue =
  let sig_hash =
    List.fold_left
      (fun acc q ->
        let v = match q with Qr { reg; _ } -> (reg * 2) + 1 | Qw { reg; _ } -> reg * 2 in
        Grt_util.Hashing.combine acc (Int64.of_int v))
      (Grt_util.Hashing.fnv1a_string fn)
      queue
  in
  Printf.sprintf "%s@%s#%Lx" fn trigger sig_hash
