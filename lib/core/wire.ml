module Sexpr = Grt_util.Sexpr

type pending = Qr of { reg : int; sym : Sexpr.sym } | Qw of { reg : int; expr : Sexpr.t }

exception Need_drain

(* Scratch for the queue→wire lowering: the sym id of each read, in batch
   order. The lowering runs on every commit, so the buffer is reused across
   calls (grown amortized, never shrunk); queues are a handful of accesses,
   so write expressions resolve their reads by a backwards linear scan —
   the last read of a sym wins, matching the replace semantics of the
   hash-table this replaces. *)
(* Domain-local: the scratch is mutated in place on every commit, so
   parallel fleet shards each get their own. *)
let scratch_ids_key : int array ref Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> ref (Array.make 64 0))

let to_wire queue =
  let scratch_ids = Grt_util.Par.Dls.get scratch_ids_key in
  let n_reads = ref 0 in
  List.iter
    (function
      | Qr { sym; _ } ->
        let n = !n_reads in
        if n >= Array.length !scratch_ids then begin
          let bigger = Array.make (2 * Array.length !scratch_ids) 0 in
          Array.blit !scratch_ids 0 bigger 0 n;
          scratch_ids := bigger
        end;
        !scratch_ids.(n) <- sym.Sexpr.id;
        n_reads := n + 1
      | Qw _ -> ())
    queue;
  let ids = !scratch_ids in
  let n = !n_reads in
  let rec find_batch id i =
    if i < 0 then -1 else if Array.unsafe_get ids i = id then i else find_batch id (i - 1)
  in
  let rec conv = function
    | Sexpr.Const v -> Gpushim.Lit v
    | Sexpr.Sym s -> (
      match find_batch s.Sexpr.id (n - 1) with
      | i when i >= 0 -> Gpushim.Batch i
      | _ -> (
        match s.Sexpr.binding with
        | Some v when not s.Sexpr.speculative -> Gpushim.Lit v
        | Some _ -> raise Need_drain
        | None -> failwith "Wire: write references unbound symbol outside batch"))
    | Sexpr.Bin (op, a, b) -> Gpushim.Bop (op, conv a, conv b)
    | Sexpr.Un (Sexpr.Not, a) -> Gpushim.Unot (conv a)
  in
  List.map
    (function
      | Qr { reg; _ } -> Gpushim.W_read reg
      | Qw { reg; expr } -> Gpushim.W_write (reg, conv expr))
    queue

let request_bytes ~overhead n_accesses = 24 + (14 * n_accesses) + overhead

let response_bytes ~overhead n_reads = 16 + (8 * n_reads) + overhead

let read_syms queue =
  List.filter_map (function Qr { reg; sym } -> Some (reg, sym) | Qw _ -> None) queue

(* Site keys repeat heavily — the driver has a fixed set of commit sites —
   and building one allocates (printf, boxed 64-bit hash chain). Memoize
   the exact key string under a cheap native-int hash of the same
   (fn, trigger, access-signature) triple; the key is a pure function of
   the triple, so the memo is shared by every caller — per domain
   (Par.Dls), which keeps parallel fleet shards off each other's table. *)
let site_memo_key : (int, string) Hashtbl.t Grt_util.Par.Dls.key =
  Grt_util.Par.Dls.key (fun () -> Hashtbl.create 256)

let int_fnv_prime = 0x100000001B3

let fold_string h s =
  let h = ref h in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * int_fnv_prime
  done;
  !h

let site_key ~fn ~trigger queue =
  let site_memo = Grt_util.Par.Dls.get site_memo_key in
  let h = fold_string (fold_string 0x3BF29CE484222325 fn) trigger in
  let h =
    List.fold_left
      (fun h q ->
        let v = match q with Qr { reg; _ } -> (reg * 2) + 1 | Qw { reg; _ } -> reg * 2 in
        (h lxor v) * int_fnv_prime)
      h queue
  in
  match Hashtbl.find site_memo h with
  | s -> s
  | exception Not_found ->
    let sig_hash =
      List.fold_left
        (fun acc q ->
          let v = match q with Qr { reg; _ } -> (reg * 2) + 1 | Qw { reg; _ } -> reg * 2 in
          Grt_util.Hashing.combine acc (Int64.of_int v))
        (Grt_util.Hashing.fnv1a_string fn)
        queue
    in
    let s = Printf.sprintf "%s@%s#%Lx" fn trigger sig_hash in
    Hashtbl.add site_memo h s;
    s
