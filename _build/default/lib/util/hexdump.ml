let pp_bytes ppf b =
  let n = Bytes.length b in
  let lines = (n + 15) / 16 in
  for line = 0 to lines - 1 do
    let base = line * 16 in
    Format.fprintf ppf "%08x  " base;
    for i = 0 to 15 do
      let off = base + i in
      if off < n then Format.fprintf ppf "%02x " (Char.code (Bytes.get b off))
      else Format.fprintf ppf "   ";
      if i = 7 then Format.fprintf ppf " "
    done;
    Format.fprintf ppf " |";
    for i = 0 to 15 do
      let off = base + i in
      if off < n then begin
        let c = Bytes.get b off in
        Format.fprintf ppf "%c" (if c >= ' ' && c < '\x7f' then c else '.')
      end
    done;
    Format.fprintf ppf "|@\n"
  done

let size_to_string n =
  let f = float_of_int n in
  if f >= 1_073_741_824. then Printf.sprintf "%.2f GB" (f /. 1_073_741_824.)
  else if f >= 1_048_576. then Printf.sprintf "%.2f MB" (f /. 1_048_576.)
  else if f >= 1024. then Printf.sprintf "%.1f KB" (f /. 1024.)
  else Printf.sprintf "%d B" n

let pp_size ppf n = Format.pp_print_string ppf (size_to_string n)
