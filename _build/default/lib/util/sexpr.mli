(** Symbolic 64-bit expressions.

    Register access deferral (§4.1) queues register reads and lets the GPU
    driver keep executing with *symbols* standing in for the unread values;
    later writes may encode those symbols (e.g. [WRITE(MMU_CONFIG, S | 0x10)]).
    When a commit returns concrete register values, the shim binds the
    symbols and every expression referencing them becomes evaluable — the
    paper's "resolving the symbolic state".

    Symbols carry a speculation mark used for taint tracking (§4.2): a value
    bound from a *predicted* commit taints every expression built on it until
    the commit is validated. *)

type sym = private {
  id : int;
  origin : string;  (** register name / site, for diagnostics *)
  mutable binding : int64 option;
  mutable speculative : bool;
}

type t =
  | Const of int64
  | Sym of sym
  | Bin of binop * t * t
  | Un of unop * t

and binop = Or | And | Xor | Add | Sub | Shl | Shr

and unop = Not

val const : int64 -> t
val of_int : int -> t

val fresh_sym : origin:string -> sym
(** Globally unique ids (per process). *)

val sym : sym -> t

val bind : sym -> int64 -> speculative:bool -> unit
(** Bind a symbol's value. Raises [Invalid_argument] if already bound with a
    different value. *)

val confirm : sym -> unit
(** Clear the speculation mark after validation. *)

val rebind : sym -> int64 -> unit
(** Replace a (speculative) binding with the actual value — used during
    misprediction handling before rollback decisions. *)

val logor : t -> t -> t
val logand : t -> t -> t
val logxor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val lognot : t -> t

val eval : t -> int64 option
(** [None] while any symbol underneath is unbound. Constant folds. *)

val force_exn : t -> int64
(** Raises [Failure] if unbound symbols remain. *)

val is_concrete : t -> bool
val unbound_syms : t -> sym list
(** Unbound symbols, deduplicated, in first-use order. *)

val speculative : t -> bool
(** True if any bound symbol underneath is still marked speculative. *)

val pp : Format.formatter -> t -> unit
