(** Span-based binary delta between two equal-length buffers.

    Each shim transfers only the deltas of memory dumps between consecutive
    synchronization points (§5). A delta is the list of changed spans with
    their new contents; applying it to the old buffer reconstructs the new
    one. Deltas of mostly-unchanged pages are tiny and further shrink under
    range coding. *)

val diff : old_:bytes -> fresh:bytes -> bytes
(** [diff ~old_ ~fresh] encodes the changes needed to turn [old_] into
    [fresh]. Both buffers must have the same length. *)

val apply : old_:bytes -> delta:bytes -> bytes
(** [apply ~old_ ~delta] reconstructs the fresh buffer. Raises [Failure] if
    the delta does not match [old_]'s length. *)

val is_identity : bytes -> bool
(** [is_identity delta] is true when the delta encodes zero changed spans. *)
