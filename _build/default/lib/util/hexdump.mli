(** Debug helpers for rendering binary data and sizes. *)

val pp_bytes : Format.formatter -> bytes -> unit
(** Classic 16-bytes-per-line hex + ASCII dump. *)

val pp_size : Format.formatter -> int -> unit
(** Human-readable byte size, e.g. "4.2 MB". *)

val size_to_string : int -> string
