type t = { mutable data : bytes; mutable len : int }

let create ?(capacity = 64) () = { data = Bytes.create (max 1 capacity); len = 0 }

let length t = t.len

let clear t = t.len <- 0

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.data then begin
    let cap = ref (Bytes.length t.data * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let contents t = Bytes.sub t.data 0 t.len

let add_u8 t v =
  ensure t 1;
  Bytes.unsafe_set t.data t.len (Char.unsafe_chr (v land 0xFF));
  t.len <- t.len + 1

let add_u16 t v =
  add_u8 t v;
  add_u8 t (v lsr 8)

let add_u32 t v =
  add_u16 t v;
  add_u16 t (v lsr 16)

let add_i64 t v =
  ensure t 8;
  Bytes.set_int64_le t.data t.len v;
  t.len <- t.len + 8

let add_varint t v =
  if v < 0 then invalid_arg "Byte_buf.add_varint: negative";
  let rec go v =
    if v < 0x80 then add_u8 t v
    else begin
      add_u8 t (0x80 lor (v land 0x7F));
      go (v lsr 7)
    end
  in
  go v

let add_sub t b ~pos ~len =
  ensure t len;
  Bytes.blit b pos t.data t.len len;
  t.len <- t.len + len

let add_bytes t b = add_sub t b ~pos:0 ~len:(Bytes.length b)

let add_string t s =
  add_varint t (String.length s);
  add_sub t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

module Reader = struct
  type r = { src : bytes; mutable pos : int }

  let of_bytes src = { src; pos = 0 }

  let pos r = r.pos

  let remaining r = Bytes.length r.src - r.pos

  let need r n = if remaining r < n then failwith "Byte_buf.Reader: truncated input"

  let u8 r =
    need r 1;
    let v = Char.code (Bytes.get r.src r.pos) in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let lo = u8 r in
    let hi = u8 r in
    lo lor (hi lsl 8)

  let u32 r =
    let lo = u16 r in
    let hi = u16 r in
    lo lor (hi lsl 16)

  let i64 r =
    need r 8;
    let v = Bytes.get_int64_le r.src r.pos in
    r.pos <- r.pos + 8;
    v

  let varint r =
    let rec go shift acc =
      let b = u8 r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bytes r n =
    need r n;
    let b = Bytes.sub r.src r.pos n in
    r.pos <- r.pos + n;
    b

  let string r =
    let n = varint r in
    Bytes.to_string (bytes r n)
end
