(** Growable byte buffer with little-endian primitive accessors, plus a
    cursor-based reader. This is the wire-format workhorse for recordings,
    network messages and memory dumps. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val clear : t -> unit
val contents : t -> bytes
(** [contents t] copies the written region into a fresh [bytes]. *)

val add_u8 : t -> int -> unit
val add_u16 : t -> int -> unit
val add_u32 : t -> int -> unit
val add_i64 : t -> int64 -> unit
val add_varint : t -> int -> unit
(** LEB128-style unsigned varint; [v] must be non-negative. *)

val add_bytes : t -> bytes -> unit
val add_sub : t -> bytes -> pos:int -> len:int -> unit
val add_string : t -> string -> unit
(** Length-prefixed string. *)

(** Sequential reader over a [bytes] value. All [read_*] functions raise
    [Failure] on truncated input — deliberately, since recordings are
    integrity-checked before parsing. *)
module Reader : sig
  type r

  val of_bytes : bytes -> r
  val pos : r -> int
  val remaining : r -> int
  val u8 : r -> int
  val u16 : r -> int
  val u32 : r -> int
  val i64 : r -> int64
  val varint : r -> int
  val bytes : r -> int -> bytes
  val string : r -> string
end
