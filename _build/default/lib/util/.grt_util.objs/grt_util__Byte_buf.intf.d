lib/util/byte_buf.mli:
