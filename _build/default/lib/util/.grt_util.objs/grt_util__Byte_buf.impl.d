lib/util/byte_buf.ml: Bytes Char String
