lib/util/delta.mli:
