lib/util/delta.ml: Byte_buf Bytes List
