lib/util/rng.mli:
