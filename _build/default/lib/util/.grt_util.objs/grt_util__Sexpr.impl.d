lib/util/sexpr.ml: Format Hashtbl Int64 List Option Printf
