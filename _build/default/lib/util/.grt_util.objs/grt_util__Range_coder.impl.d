lib/util/range_coder.ml: Array Byte_buf Bytes Char Int64
