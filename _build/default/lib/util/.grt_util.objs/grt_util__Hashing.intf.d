lib/util/hashing.mli:
