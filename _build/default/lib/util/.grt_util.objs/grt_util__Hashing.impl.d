lib/util/hashing.ml: Array Bytes Char Int32 Int64 Lazy
