lib/util/range_coder.mli:
