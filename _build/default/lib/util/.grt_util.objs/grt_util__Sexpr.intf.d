lib/util/sexpr.mli: Format
