type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let int64_range t lo hi =
  if Int64.compare lo hi >= 0 then invalid_arg "Rng.int64_range: empty range";
  let span = Int64.sub hi lo in
  let v = Int64.rem (Int64.shift_right_logical (next64 t) 1) span in
  Int64.add lo v

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (Int64.to_int (Int64.logand (next64 t) 0xFFL)))
  done;
  b

let split t = { state = mix (next64 t) }
