(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that record
    runs, replay runs and benchmarks are reproducible bit-for-bit. The
    generator is SplitMix64, which is small, fast and has good statistical
    quality for simulation purposes. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next64 : t -> int64
(** [next64 t] advances the state and returns 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val int64_range : t -> int64 -> int64 -> int64
(** [int64_range t lo hi] is uniform in [\[lo, hi)] with [lo < hi]. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    subsequent outputs of [t]. *)
