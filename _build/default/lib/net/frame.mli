(** Message framing for the cloud/client channel: a type tag, a length and a
    CRC-32 trailer. The secure-channel layer in [Grt_tee] wraps frames with
    authentication; this layer catches accidental corruption. *)

type kind =
  | Commit_request
  | Commit_response
  | Poll_offload
  | Poll_result
  | Mem_sync
  | Mem_sync_ack
  | Irq_notify
  | Recording_download
  | Control

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

val seal : kind -> bytes -> bytes
(** [seal kind payload] builds a framed message. *)

val open_ : bytes -> (kind * bytes, string) result
(** [open_ frame] validates length and CRC and returns the payload. *)

val overhead_bytes : int
(** Framing overhead added to every message. *)
