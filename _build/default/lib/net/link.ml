type t = {
  profile : Profile.t;
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t option;
  counters : Grt_sim.Counters.t option;
}

let create ~clock ?energy ?counters profile = { profile; clock; energy; counters }

let profile t = t.profile

let clock t = t.clock

let count t name v = match t.counters with Some c -> Grt_sim.Counters.add c name v | None -> ()

let charge_radio t ~tx_bytes ~rx_bytes =
  (* The client radio is active while bytes are on the air in either
     direction; energy is charged per transfer rather than via rails because
     async sends overlap with computation. *)
  match t.energy with
  | None -> ()
  | Some e ->
    let tx_s = float_of_int (8 * tx_bytes) /. t.profile.Profile.bandwidth_bps in
    let rx_s = float_of_int (8 * rx_bytes) /. t.profile.Profile.bandwidth_bps in
    (* Each message also keeps the radio awake for roughly the per-message
       overhead window. *)
    let awake = 2. *. t.profile.Profile.per_message_s in
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_tx
      ((tx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_tx);
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Radio_rx
      ((rx_s +. awake) *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Radio_rx)

let account t ~send_bytes ~recv_bytes =
  count t "net.msgs" 2;
  count t "net.bytes_tx" send_bytes;
  count t "net.bytes_rx" recv_bytes;
  charge_radio t ~tx_bytes:recv_bytes ~rx_bytes:send_bytes
(* Note: [send_bytes] is cloud->client, which the *client* receives; the
   client energy model therefore sees it as RX. *)

let round_trip t ~send_bytes ~recv_bytes =
  account t ~send_bytes ~recv_bytes;
  count t "net.blocking_rtts" 1;
  Grt_sim.Clock.advance_s t.clock (Profile.round_trip_s t.profile ~send_bytes ~recv_bytes)

let async_send t ~send_bytes ~recv_bytes =
  account t ~send_bytes ~recv_bytes;
  count t "net.async_sends" 1;
  let latency = Profile.round_trip_s t.profile ~send_bytes ~recv_bytes in
  Int64.add (Grt_sim.Clock.now_ns t.clock) (Int64.of_float (latency *. 1e9))

let wait_until t deadline =
  if Int64.compare deadline (Grt_sim.Clock.now_ns t.clock) > 0 then begin
    count t "net.blocking_rtts" 1;
    count t "net.stall_waits" 1;
    Grt_sim.Clock.advance_to t.clock deadline
  end

let one_way_to_client t ~bytes =
  count t "net.msgs" 1;
  count t "net.bytes_tx" bytes;
  charge_radio t ~tx_bytes:0 ~rx_bytes:bytes;
  Grt_sim.Clock.advance_s t.clock (Profile.one_way_s t.profile bytes)

let one_way_from_client t ~bytes =
  count t "net.msgs" 1;
  count t "net.bytes_rx" bytes;
  charge_radio t ~tx_bytes:bytes ~rx_bytes:0;
  Grt_sim.Clock.advance_s t.clock (Profile.one_way_s t.profile bytes)

let stats t ~blocking_rtts:() =
  match t.counters with
  | Some c -> Grt_sim.Counters.get_int c "net.blocking_rtts"
  | None -> 0

let bytes_tx t =
  match t.counters with Some c -> Grt_sim.Counters.get c "net.bytes_tx" | None -> 0L

let bytes_rx t =
  match t.counters with Some c -> Grt_sim.Counters.get c "net.bytes_rx" | None -> 0L
