type t = {
  name : string;
  rtt_s : float;
  bandwidth_bps : float;
  per_message_s : float;
}

let wifi = { name = "wifi"; rtt_s = 0.020; bandwidth_bps = 80.0e6; per_message_s = 40e-6 }

let cellular = { name = "cellular"; rtt_s = 0.050; bandwidth_bps = 40.0e6; per_message_s = 60e-6 }

let lan = { name = "lan"; rtt_s = 0.0002; bandwidth_bps = 1.0e9; per_message_s = 5e-6 }

let custom ~name ~rtt_ms ~bandwidth_mbps =
  if rtt_ms < 0. || bandwidth_mbps <= 0. then invalid_arg "Profile.custom";
  { name; rtt_s = rtt_ms /. 1e3; bandwidth_bps = bandwidth_mbps *. 1e6; per_message_s = 40e-6 }

let one_way_s p bytes =
  (p.rtt_s /. 2.) +. (float_of_int (8 * bytes) /. p.bandwidth_bps) +. p.per_message_s

let round_trip_s p ~send_bytes ~recv_bytes = one_way_s p send_bytes +. one_way_s p recv_bytes

let pp ppf p =
  Format.fprintf ppf "%s (RTT %.0f ms, BW %.0f Mbps)" p.name (p.rtt_s *. 1e3)
    (p.bandwidth_bps /. 1e6)
