(** Cost-accounting view of the cloud/client connection.

    The recording session is simulated in one process; the link does not move
    bytes, it charges their cost: virtual-clock delay, radio energy on the
    client, and statistic counters. It supports both blocking round trips
    (synchronous commits) and fire-and-forget sends whose completion time is
    returned so callers can overlap computation (speculative commits, §4.2). *)

type t

val create :
  clock:Grt_sim.Clock.t ->
  ?energy:Grt_sim.Energy.t ->
  ?counters:Grt_sim.Counters.t ->
  Profile.t ->
  t

val profile : t -> Profile.t
val clock : t -> Grt_sim.Clock.t

val round_trip : t -> send_bytes:int -> recv_bytes:int -> unit
(** Blocking exchange: advances the clock by the full round-trip latency and
    counts one blocking RTT. *)

val async_send : t -> send_bytes:int -> recv_bytes:int -> int64
(** Non-blocking exchange: charges bytes and energy now, returns the absolute
    virtual time (ns) at which the response will have arrived. Does not
    advance the clock and does not count a blocking RTT. *)

val wait_until : t -> int64 -> unit
(** Advance the clock to an [async_send] completion time (no-op if already
    past). Counts a blocking RTT only if an actual wait occurred, mirroring
    how a stalled speculative commit degenerates to a synchronous one. *)

val one_way_to_client : t -> bytes:int -> unit
(** Blocking one-way push (e.g. the final recording download). *)

val one_way_from_client : t -> bytes:int -> unit
(** Blocking one-way upload (interrupt forwarding plus the client's memory
    dump, §5). *)

val stats : t -> blocking_rtts:unit -> int
(** Number of blocking round trips charged so far. *)

val bytes_tx : t -> int64
val bytes_rx : t -> int64
