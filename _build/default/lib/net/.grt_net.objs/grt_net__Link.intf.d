lib/net/link.mli: Grt_sim Profile
