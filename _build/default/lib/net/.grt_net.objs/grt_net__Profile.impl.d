lib/net/profile.ml: Format
