lib/net/profile.mli: Format
