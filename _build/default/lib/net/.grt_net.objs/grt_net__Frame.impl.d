lib/net/frame.ml: Bytes Grt_util Int32
