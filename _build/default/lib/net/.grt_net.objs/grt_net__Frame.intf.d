lib/net/frame.mli:
