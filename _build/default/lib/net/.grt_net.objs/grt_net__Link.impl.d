lib/net/link.ml: Grt_sim Int64 Profile
