lib/tee/attestation.ml: Crypto Grt_util Int64 Printf
