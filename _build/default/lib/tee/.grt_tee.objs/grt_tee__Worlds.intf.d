lib/tee/worlds.mli: Format
