lib/tee/monitor.mli: Worlds
