lib/tee/channel.ml: Attestation Crypto Grt_net Int64 Printf
