lib/tee/channel.mli: Attestation Crypto Grt_net
