lib/tee/monitor.ml: Hashtbl List Printf Worlds
