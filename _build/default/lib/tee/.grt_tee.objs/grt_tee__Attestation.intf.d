lib/tee/attestation.mli: Crypto
