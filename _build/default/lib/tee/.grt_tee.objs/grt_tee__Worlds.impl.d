lib/tee/worlds.ml: Format Hashtbl
