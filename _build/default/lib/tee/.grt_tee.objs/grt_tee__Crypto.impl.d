lib/tee/crypto.ml: Bytes Char Grt_util Int64 Printf
