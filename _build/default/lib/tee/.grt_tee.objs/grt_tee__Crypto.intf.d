lib/tee/crypto.mli:
