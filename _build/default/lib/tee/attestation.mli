(** Remote attestation of the cloud recording VM.

    Before a record run, the client TEE challenges the cloud VM with a
    nonce; the VM responds with a quote over its measurement (kernel + GPU
    stack image) signed by a key the verifier trusts. Only the control flow
    matters for the reproduction: good quotes verify, tampered measurements
    or replayed nonces fail (§7.1). *)

type measurement = { kernel : string; gpu_stack : string; devicetree : string }

val measure : measurement -> int64

type quote

val make_quote : signing_key:Crypto.key -> measurement -> nonce:int64 -> quote
val quote_measurement : quote -> int64
val quote_nonce : quote -> int64

val verify :
  verification_key:Crypto.key ->
  expected:measurement ->
  nonce:int64 ->
  quote ->
  (unit, string) result

val tamper : quote -> quote
(** Flip a bit in the signature — for negative tests. *)
