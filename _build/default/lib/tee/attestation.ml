type measurement = { kernel : string; gpu_stack : string; devicetree : string }

let measure m =
  Grt_util.Hashing.fnv1a_string (Printf.sprintf "%s\x00%s\x00%s" m.kernel m.gpu_stack m.devicetree)

type quote = { digest : int64; nonce : int64; signature : int64 }

let signed_payload digest nonce =
  let buf = Grt_util.Byte_buf.create ~capacity:16 () in
  Grt_util.Byte_buf.add_i64 buf digest;
  Grt_util.Byte_buf.add_i64 buf nonce;
  Grt_util.Byte_buf.contents buf

let make_quote ~signing_key m ~nonce =
  let digest = measure m in
  { digest; nonce; signature = Crypto.mac ~key:signing_key (signed_payload digest nonce) }

let quote_measurement q = q.digest
let quote_nonce q = q.nonce

let verify ~verification_key ~expected ~nonce q =
  if not (Crypto.verify ~key:verification_key (signed_payload q.digest q.nonce) q.signature) then
    Error "attestation: bad signature"
  else if not (Int64.equal q.nonce nonce) then Error "attestation: nonce mismatch (replay?)"
  else if not (Int64.equal q.digest (measure expected)) then
    Error "attestation: unexpected measurement"
  else Ok ()

let tamper q = { q with signature = Int64.logxor q.signature 0x4L }
