type key = string

let derive k label = Printf.sprintf "%s/%Lx" label (Grt_util.Hashing.fnv1a_string (k ^ "|" ^ label))

let mac ~key data = Grt_util.Hashing.hmac ~key data

let verify ~key data tag = Int64.equal (mac ~key data) tag

let keystream ~key ~nonce n =
  let rng =
    Grt_util.Rng.create
      ~seed:(Grt_util.Hashing.combine (Grt_util.Hashing.fnv1a_string key) nonce)
  in
  Grt_util.Rng.bytes rng n

let xor_into data ks =
  let out = Bytes.copy data in
  for i = 0 to Bytes.length out - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get out i) lxor Char.code (Bytes.unsafe_get ks i)))
  done;
  out

let sealed_overhead = 16

let seal ~key ~nonce data =
  let enc_key = derive key "enc" and mac_key = derive key "mac" in
  let ct = xor_into data (keystream ~key:enc_key ~nonce (Bytes.length data)) in
  let buf = Grt_util.Byte_buf.create ~capacity:(Bytes.length ct + sealed_overhead) () in
  Grt_util.Byte_buf.add_bytes buf ct;
  Grt_util.Byte_buf.add_i64 buf (mac ~key:mac_key ct);
  Grt_util.Byte_buf.add_i64 buf nonce;
  Grt_util.Byte_buf.contents buf

let open_ ~key blob =
  let n = Bytes.length blob in
  if n < sealed_overhead then Error "sealed message too short"
  else begin
    let ct = Bytes.sub blob 0 (n - sealed_overhead) in
    let tag = Bytes.get_int64_le blob (n - 16) in
    let nonce = Bytes.get_int64_le blob (n - 8) in
    let enc_key = derive key "enc" and mac_key = derive key "mac" in
    if not (verify ~key:mac_key ct tag) then Error "MAC verification failed"
    else Ok (xor_into ct (keystream ~key:enc_key ~nonce (Bytes.length ct)))
  end
