type world = Normal | Secure

let pp_world ppf w = Format.pp_print_string ppf (match w with Normal -> "normal" | Secure -> "secure")

type violation = { world : world; what : string }

exception Access_denied of violation

type t = {
  resources : (string, bool ref) Hashtbl.t;
  mutable violations : violation list;
}

let create () = { resources = Hashtbl.create 8; violations = [] }

let add_resource t ~name ~secure =
  if Hashtbl.mem t.resources name then invalid_arg "Worlds.add_resource: duplicate";
  Hashtbl.replace t.resources name (ref secure)

let cell t name =
  match Hashtbl.find_opt t.resources name with
  | Some c -> c
  | None -> invalid_arg ("Worlds: unknown resource " ^ name)

let set_secure t ~name v = cell t name := v

let is_secure t ~name = !(cell t name)

let check_access t world ~name =
  match world with
  | Secure -> ignore (cell t name)
  | Normal ->
    if !(cell t name) then begin
      let v = { world; what = name } in
      t.violations <- v :: t.violations;
      raise (Access_denied v)
    end

let violations t = t.violations
