type world = Worlds.world

type route = To_normal | To_secure

type t = {
  worlds : Worlds.t;
  routes : (int, route) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable claims : int;
}

exception Denied of string

let create worlds = { worlds; routes = Hashtbl.create 8; names = Hashtbl.create 8; claims = 0 }

let register_interrupt t ~irq ~name =
  if Hashtbl.mem t.routes irq then invalid_arg "Monitor.register_interrupt: duplicate irq";
  Hashtbl.replace t.routes irq To_normal;
  Hashtbl.replace t.names irq name

let route_of t ~irq =
  match Hashtbl.find_opt t.routes irq with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Monitor: unknown irq %d" irq)

let require_secure caller what =
  match caller with
  | Worlds.Secure -> ()
  | Worlds.Normal -> raise (Denied ("normal world may not " ^ what))

let smc_claim_for_secure t ~caller ~resources ~irqs =
  require_secure caller "claim resources for the secure world";
  List.iter (fun name -> Worlds.set_secure t.worlds ~name true) resources;
  List.iter
    (fun irq ->
      ignore (route_of t ~irq);
      Hashtbl.replace t.routes irq To_secure)
    irqs;
  t.claims <- t.claims + 1

let smc_release t ~caller ~resources ~irqs =
  require_secure caller "release secure resources";
  List.iter (fun name -> Worlds.set_secure t.worlds ~name false) resources;
  List.iter
    (fun irq ->
      ignore (route_of t ~irq);
      Hashtbl.replace t.routes irq To_normal)
    irqs

let deliver_irq t ~irq =
  match route_of t ~irq with To_secure -> Worlds.Secure | To_normal -> Worlds.Normal

let claims t = t.claims
