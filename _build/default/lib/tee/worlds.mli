(** TrustZone worlds and the address-space controller.

    The TZASC partitions physical address ranges (and the GPU MMIO block)
    between the normal world and the secure world. GPUShim flips the GPU's
    assignment when a record or replay session starts and restores it after
    (§3.2, §6); any normal-world access to a secure resource while it is
    locked raises a (recorded) violation instead of silently succeeding. *)

type world = Normal | Secure

val pp_world : Format.formatter -> world -> unit

type violation = {
  world : world;
  what : string;  (** resource name, e.g. "gpu-mmio" *)
}

exception Access_denied of violation

type t

val create : unit -> t

val add_resource : t -> name:string -> secure:bool -> unit
(** Register a protectable resource (GPU MMIO, GPU memory carveout,
    power/clock controls). *)

val set_secure : t -> name:string -> bool -> unit
(** Flip a resource's world assignment (secure-monitor operation). *)

val is_secure : t -> name:string -> bool

val check_access : t -> world -> name:string -> unit
(** Raises {!Access_denied} when [world = Normal] and the resource is
    secure. Secure world may access everything. Violations are also
    counted. *)

val violations : t -> violation list
(** Most recent first. *)
