(** The secure monitor (EL3): world switching and interrupt routing.

    The paper modifies the client's secure monitor so that GPU interrupts
    are delivered to the TEE while a record or replay session holds the GPU
    (§6), and so that SoC resources the GPU driver does not manage (power
    and clock controls) can be claimed by the secure world rather than
    requested from the normal-world OS by RPC.

    The monitor is the only component allowed to flip TZASC assignments and
    interrupt routes, and it does so only on behalf of secure-world callers
    — a normal-world SMC asking to take a secure resource is denied. *)

type world = Worlds.world

type route = To_normal | To_secure

type t

val create : Worlds.t -> t

val register_interrupt : t -> irq:int -> name:string -> unit
(** Declare a hardware interrupt line (e.g. the GPU's job/gpu/mmu lines). *)

val route_of : t -> irq:int -> route
(** Defaults to [To_normal] until reassigned. *)

exception Denied of string

val smc_claim_for_secure : t -> caller:world -> resources:string list -> irqs:int list -> unit
(** The TEE's "claim the GPU" SMC: flips the TZASC for [resources] and
    routes [irqs] to the secure world. Raises {!Denied} when invoked from
    the normal world. *)

val smc_release : t -> caller:world -> resources:string list -> irqs:int list -> unit
(** Return everything to the normal world. Secure-world callers only. *)

val deliver_irq : t -> irq:int -> world
(** Which world an asserted interrupt is delivered to right now. *)

val claims : t -> int
(** Number of successful claim SMCs (telemetry). *)
