(** Simulation-grade cryptography for the trust chain.

    These primitives exercise the paper's *control flow* — attested
    channels, signed recordings, sealed messages — with keyed constructions
    over non-cryptographic hashes. They are NOT real cryptography and must
    never be used outside this simulator; the point is that tampering is
    *detected* in the model, so the security tests can exercise both
    accept and reject paths. *)

type key = string

val derive : key -> string -> key
(** [derive k label] — independent subkey derivation. *)

val mac : key:key -> bytes -> int64
val verify : key:key -> bytes -> int64 -> bool

val seal : key:key -> nonce:int64 -> bytes -> bytes
(** Authenticated "encryption": keystream-XOR plus an appended MAC over the
    ciphertext. Output is ciphertext ∥ mac(8) ∥ nonce(8). *)

val open_ : key:key -> bytes -> (bytes, string) result

val sealed_overhead : int
