lib/core/debugcheck.ml: Array Format Grt_gpu Hashtbl Int64 List Option Printf Recording
