lib/core/gpushim.ml: Array Grt_driver Grt_gpu Grt_sim Grt_tee Grt_util Int64 List Memsync
