lib/core/cloudvm.ml: Format Grt_gpu Grt_tee Int64 List Printf String
