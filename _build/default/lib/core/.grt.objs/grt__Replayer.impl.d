lib/core/replayer.ml: Array Gpushim Grt_gpu Grt_sim Int64 List Option Printf Recording String
