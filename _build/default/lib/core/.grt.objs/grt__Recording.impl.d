lib/core/recording.ml: Array Bytes Grt_gpu Grt_tee Grt_util List Printf
