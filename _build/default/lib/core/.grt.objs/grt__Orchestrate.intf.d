lib/core/orchestrate.mli: Drivershim Grt_gpu Grt_mlfw Grt_net Grt_sim Grt_tee Mode Recording Replayer
