lib/core/debugcheck.mli: Format Recording
