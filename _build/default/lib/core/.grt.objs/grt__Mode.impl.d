lib/core/mode.ml: Format List String
