lib/core/replayer.mli: Gpushim Grt_sim Grt_tee
