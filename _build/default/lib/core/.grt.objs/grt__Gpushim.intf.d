lib/core/gpushim.mli: Grt_driver Grt_gpu Grt_sim Grt_tee Grt_util Memsync Mode
