lib/core/drivershim.ml: Array Fun Gpushim Grt_driver Grt_gpu Grt_net Grt_sim Grt_util Hashtbl Int64 List Memsync Mode Option Printf Recording String
