lib/core/memsync.ml: Bytes Grt_gpu Grt_runtime Grt_util Hashtbl Int64 List Mode
