lib/core/experiments.ml: Array Drivershim Grt_gpu Grt_mlfw Grt_net Grt_sim Hashtbl Int32 Int64 List Mode Native Option Orchestrate Printf Recording Replayer
