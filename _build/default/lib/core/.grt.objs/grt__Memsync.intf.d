lib/core/memsync.mli: Grt_gpu Grt_runtime Mode
