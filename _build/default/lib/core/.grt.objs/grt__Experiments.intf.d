lib/core/experiments.mli: Drivershim Grt_gpu Grt_mlfw Grt_net Mode Orchestrate
