lib/core/recording.mli: Grt_gpu Grt_tee
