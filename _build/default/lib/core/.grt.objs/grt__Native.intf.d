lib/core/native.mli: Grt_driver Grt_gpu Grt_mlfw Grt_sim
