lib/core/drivershim.mli: Gpushim Grt_driver Grt_gpu Grt_net Grt_sim Memsync Mode Recording
