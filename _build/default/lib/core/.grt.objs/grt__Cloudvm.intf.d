lib/core/cloudvm.mli: Format Grt_gpu Grt_tee
