lib/core/native.ml: Grt_driver Grt_gpu Grt_mlfw Grt_runtime Grt_sim Grt_util Int64 Option
