module Sku = Grt_gpu.Sku

type devicetree = {
  compatible : string;
  model : string;
  gpu_id : int64;
  mmio_base : int64;
  irq_lines : int list;
  coherency_ace : bool;
}

let devicetree_for (sku : Sku.t) =
  let family = if Int64.compare sku.Sku.gpu_id 0x7000_0000L >= 0 then "bifrost-g2" else "bifrost" in
  {
    compatible = Printf.sprintf "arm,mali-%s" family;
    model = String.lowercase_ascii (String.map (fun c -> if c = ' ' then '-' else c) sku.Sku.name);
    gpu_id = sku.Sku.gpu_id;
    mmio_base = 0xE82C_0000L (* HiKey960's Mali block, for flavor *);
    irq_lines = [ 33; 34; 35 ];
    coherency_ace = sku.Sku.needs_snoop_disparity;
  }

type image = {
  image_name : string;
  kernel : string;
  gpu_stack : string;
  trees : devicetree list;
  measurement : Grt_tee.Attestation.measurement;
}

let default_image =
  let trees = List.map devicetree_for Sku.all in
  {
    image_name = "grt-recorder-vm";
    kernel = "linux-4.14-grt";
    gpu_stack = "acl-20.05+libmali+bifrost-r24";
    trees;
    measurement =
      {
        Grt_tee.Attestation.kernel = "linux-4.14-grt";
        gpu_stack = "acl-20.05+libmali+bifrost-r24";
        devicetree = String.concat "," (List.map (fun t -> t.model) trees);
      };
  }

type t = {
  image : image;
  tree : devicetree;
  mutable client : string option;
  mutable sessions : int;
}

type boot_error = Unsupported_gpu of int64 | Already_serving

let pp_boot_error ppf = function
  | Unsupported_gpu id -> Format.fprintf ppf "no devicetree for GPU %Lx in the VM image" id
  | Already_serving -> Format.pp_print_string ppf "VM is sealed to another client"

let boot image ~client_gpu_id =
  match List.find_opt (fun t -> Int64.equal t.gpu_id client_gpu_id) image.trees with
  | Some tree -> Ok { image; tree; client = None; sessions = 0 }
  | None -> Error (Unsupported_gpu client_gpu_id)

let selected_tree t = t.tree
let image_of t = t.image

let begin_session t ~client =
  match t.client with
  | Some _ -> Error Already_serving
  | None ->
    t.client <- Some client;
    t.sessions <- t.sessions + 1;
    Ok ()

let end_session t = t.client <- None

let serving t = t.client
let sessions_served t = t.sessions
