module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Session = Grt_runtime.Session

type region = {
  name : string;
  usage : Session.usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

let region_of_session (r : Session.region) =
  {
    name = r.Session.name;
    usage = r.Session.usage;
    va = r.Session.va;
    pa = r.Session.pa;
    model_bytes = r.Session.model_bytes;
    actual_bytes = r.Session.actual_bytes;
  }

type t = {
  cfg : Mode.config;
  mutable regions : region list;
  mutable pt_roots : (Grt_gpu.Sku.pt_format * int64) list;
  baseline : (int64, bytes) Hashtbl.t;
  shipped_data : (string, unit) Hashtbl.t; (* data regions the peer holds (Naive) *)
}

let create cfg =
  {
    cfg;
    regions = [];
    pt_roots = [];
    baseline = Hashtbl.create 256;
    shipped_data = Hashtbl.create 64;
  }

let register_region t r = t.regions <- r :: t.regions

let regions t = List.rev t.regions

let region_containing t ~va =
  List.find_opt
    (fun r ->
      Int64.compare va r.va >= 0
      && Int64.compare va (Int64.add r.va (Int64.of_int (max r.model_bytes r.actual_bytes))) < 0)
    t.regions

let register_pt_root t ~fmt ~root_pa =
  if not (List.exists (fun (_, r) -> Int64.equal r root_pa) t.pt_roots) then
    t.pt_roots <- (fmt, root_pa) :: t.pt_roots

let region_pfns mem r =
  (* Materialized pages of a region: its allocation is PA-contiguous. *)
  let first = Mem.page_of_addr r.pa in
  let n_pages = (r.actual_bytes + Mem.page_size - 1) / Mem.page_size in
  ignore mem;
  List.init (max 1 n_pages) (fun i -> Int64.add first (Int64.of_int i))

let meta_pfns t mem =
  let pt =
    List.concat_map
      (fun (fmt, root) -> Mmu.table_pages (Mmu.of_root mem ~fmt ~root))
      t.pt_roots
  in
  let meta_regions =
    List.filter (fun r -> Session.usage_is_metastate r.usage) t.regions
    |> List.concat_map (region_pfns mem)
  in
  List.sort_uniq Int64.compare (pt @ meta_regions)

type sync_payload = {
  pages : (int64 * bytes) list;
  wire_bytes : int;
  raw_bytes : int;
}

let per_page_header = 12 (* pfn + length on the wire *)

let sync_meta t mem =
  let pfns = meta_pfns t mem in
  let changed = ref [] and wire = ref 0 and raw = ref 0 in
  List.iter
    (fun pfn ->
      let current = Mem.get_page mem pfn in
      let previous = Hashtbl.find_opt t.baseline pfn in
      let same = match previous with Some p -> Bytes.equal p current | None -> false in
      if not same then begin
        changed := (pfn, current) :: !changed;
        raw := !raw + Mem.page_size;
        let payload =
          match (t.cfg.Mode.delta_dumps, previous) with
          | true, Some prev -> Grt_util.Delta.diff ~old_:prev ~fresh:current
          | _ -> current
        in
        let payload =
          if t.cfg.Mode.compress_dumps then Grt_util.Range_coder.encode payload else payload
        in
        wire := !wire + Bytes.length payload + per_page_header;
        Hashtbl.replace t.baseline pfn (Bytes.copy current)
      end)
    pfns;
  { pages = List.rev !changed; wire_bytes = !wire; raw_bytes = !raw }

let apply mem payload = List.iter (fun (pfn, data) -> Mem.set_page mem pfn data) payload.pages

let note_peer_page t pfn contents = Hashtbl.replace t.baseline pfn (Bytes.copy contents)

(* Walk the descriptor chain in local memory and apply [f] to every data
   region it references, tagged with its role. *)
let fold_chain_regions t mem ~chain_va f =
  let desc_pa_of_va va =
    match region_containing t ~va with
    | Some r -> Some (Int64.add r.pa (Int64.sub va r.va))
    | None -> None
  in
  let note role va =
    if not (Int64.equal va 0L) then
      match region_containing t ~va with
      | Some r when not (Session.usage_is_metastate r.usage) -> f role r
      | _ -> ()
  in
  let rec walk va guard =
    if guard > 0 && not (Int64.equal va 0L) then
      match desc_pa_of_va va with
      | None -> ()
      | Some pa -> (
        match Grt_gpu.Job_desc.read mem ~pa with
        | Error _ -> ()
        | Ok d ->
          note `In d.Grt_gpu.Job_desc.input_va;
          note `In d.Grt_gpu.Job_desc.input2_va;
          note `In d.Grt_gpu.Job_desc.bias_va;
          note `Out d.Grt_gpu.Job_desc.output_va;
          walk d.Grt_gpu.Job_desc.next_va (guard - 1))
  in
  walk chain_va 64

let naive_down_bytes t mem ~chain_va =
  let total = ref 0 in
  fold_chain_regions t mem ~chain_va (fun _role r ->
      if not (Hashtbl.mem t.shipped_data r.name) then begin
        Hashtbl.add t.shipped_data r.name ();
        total := !total + r.model_bytes
      end);
  !total

let naive_up_bytes t mem ~chain_va =
  let seen = Hashtbl.create 4 in
  let total = ref 0 in
  fold_chain_regions t mem ~chain_va (fun role r ->
      match role with
      | `Out ->
        if not (Hashtbl.mem seen r.name) then begin
          Hashtbl.add seen r.name ();
          total := !total + r.model_bytes
        end
      | `In -> ());
  !total
