(** Remote debugging on top of recordings (§3.2 "Broader applicability").

    By comparing a client's GPU register log and memory dumps with the ones
    the cloud holds (or with a reference recording from a known-good
    device), the cloud can detect firmware or silicon misbehaviour and
    vendors can troubleshoot remotely. This module diffs two interaction
    logs and localizes the first divergence. *)

type divergence =
  | Value_differs of { index : int; reg : int; reference : int64; subject : int64 }
      (** same access, different register value — the classic erratum
          signature *)
  | Structure_differs of { index : int; reference : string; subject : string }
      (** the interaction sequences themselves disagree *)
  | Subject_truncated of { at : int }
  | Subject_longer of { extra : int }

val pp_divergence : Format.formatter -> divergence -> unit

type report = {
  compared : int;  (** entries compared *)
  matching : int;
  first_divergence : divergence option;
  value_divergences : int;  (** total count of differing verified reads *)
  divergent_regs : (int * int) list;  (** register -> count, sorted by count *)
}

val compare_logs : reference:Recording.t -> subject:Recording.t -> report
(** Nondeterministic registers ([verify = false] reads) and memory-dump
    payload differences are ignored; everything else must match. *)

val healthy : report -> bool

val pp_report : Format.formatter -> report -> unit
