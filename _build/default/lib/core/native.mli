(** Native execution: the full GPU stack running against a local GPU in the
    normal world — the insecure baseline of Table 2 and the machinery the
    cloud VM uses when its "device" is the forwarding shim instead.

    The backend executes every access synchronously against a
    {!Grt_gpu.Device.t} and returns concrete values. *)

val backend :
  ?counters:Grt_sim.Counters.t ->
  Grt_gpu.Device.t ->
  Grt_driver.Backend.t
(** Counters recorded: [reg.reads], [reg.writes], [poll.instances],
    [poll.iters], [irq.waits]. *)

type run_result = {
  output : float array;
  delay_s : float;  (** end-to-end inference time, virtual *)
  job_delay_s : float;  (** inference time excluding one-time setup *)
  setup_s : float;
  energy_j : float option;
}

val run_inference :
  ?energy:Grt_sim.Energy.t ->
  ?counters:Grt_sim.Counters.t ->
  clock:Grt_sim.Clock.t ->
  sku:Grt_gpu.Sku.t ->
  net:Grt_mlfw.Network.t ->
  seed:int64 ->
  input:float array ->
  unit ->
  run_result
(** Full native pipeline on one device: driver init, session setup, weight
    load, inference. *)
