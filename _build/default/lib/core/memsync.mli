(** Selective memory synchronization (§5).

    The cloud (GPU stack) and client (GPU) each hold a local memory; at job
    boundaries the shims exchange just enough of it to preserve the semantics
    of CPU/GPU interaction. A [t] tracks one direction's baseline — the pages
    the peer is known to hold — so each sync ships only page deltas, range-
    coded when the config enables compression.

    Metastate = page-table pages (walked from the registered roots) plus the
    materialized pages of regions mapped as [Code] or [Cmd]. Program data
    (inputs, weights, activations) is never shipped in meta-only mode; in
    Naive mode its *model-scale* size is charged per referenced buffer. *)

type region = {
  name : string;
  usage : Grt_runtime.Session.usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

val region_of_session : Grt_runtime.Session.region -> region

type t

val create : Mode.config -> t

val register_region : t -> region -> unit
val regions : t -> region list
val region_containing : t -> va:int64 -> region option

val register_pt_root : t -> fmt:Grt_gpu.Sku.pt_format -> root_pa:int64 -> unit
(** Called when the shim observes an AS_TRANSTAB programming. *)

val meta_pfns : t -> Grt_gpu.Mem.t -> int64 list
(** Current metastate page set, sorted. *)

type sync_payload = {
  pages : (int64 * bytes) list;  (** changed pages, full contents *)
  wire_bytes : int;  (** bytes on the wire after delta + compression *)
  raw_bytes : int;  (** bytes before delta + compression *)
}

val sync_meta : t -> Grt_gpu.Mem.t -> sync_payload
(** Diff the metastate against the baseline, advance the baseline, and
    return what must be shipped. *)

val apply : Grt_gpu.Mem.t -> sync_payload -> unit
(** Install the shipped pages into the receiving memory. *)

val note_peer_page : t -> int64 -> bytes -> unit
(** Teach the baseline that the peer now holds [contents] for [pfn] —
    called when a page arrives from the other direction, so it is not
    echoed back on the next sync. *)

val naive_down_bytes : t -> Grt_gpu.Mem.t -> chain_va:int64 -> int
(** Model-scale bytes Naive mode must push to the client before the job at
    [chain_va]: every referenced data buffer the client does not hold yet
    (weights and staged inputs ship once; activations the GPU produced are
    already client-side). *)

val naive_up_bytes : t -> Grt_gpu.Mem.t -> chain_va:int64 -> int
(** Model-scale bytes Naive mode pulls back after the job: the output
    buffers the GPU wrote. *)
