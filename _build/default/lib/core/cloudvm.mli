(** The cloud recording VM (§3.2, §6).

    The cloud service keeps one lean VM image per GPU-stack variant. The
    image carries no GPU hardware; instead a *device tree* describes the
    client's GPU so the stack can run transparently against the forwarding
    shim. A single image embeds device trees (and thus driver bindings) for
    every supported GPU family; when a VM boots to serve a client, the
    matching device tree is selected from the client's attested GPU
    identity and the corresponding driver is loaded (§6's "load per-GPU
    device-tree when a VM boots").

    A VM instance is sealed to exactly one client: it refuses a second
    session, and tearing it down wipes its recording state — recordings are
    never cached across clients (§3.1). *)

type devicetree = {
  compatible : string;  (** e.g. "arm,mali-bifrost" *)
  model : string;  (** human name, e.g. "mali-g71" *)
  gpu_id : int64;  (** identity the driver probe must find *)
  mmio_base : int64;
  irq_lines : int list;  (** job, gpu, mmu *)
  coherency_ace : bool;
}

val devicetree_for : Grt_gpu.Sku.t -> devicetree
(** The tree the image ships for a catalog SKU. *)

type image = {
  image_name : string;
  kernel : string;
  gpu_stack : string;
  trees : devicetree list;
  measurement : Grt_tee.Attestation.measurement;
}

val default_image : image
(** The image used by the evaluation: ACL + libmali + the Bifrost driver,
    with device trees for every catalog SKU. *)

type t
(** A booted VM instance. *)

type boot_error =
  | Unsupported_gpu of int64  (** no devicetree matches the client's GPU *)
  | Already_serving  (** the VM is sealed to another client *)

val pp_boot_error : Format.formatter -> boot_error -> unit

val boot : image -> client_gpu_id:int64 -> (t, boot_error) result
(** Select the device tree matching the client GPU and "load" the driver
    binding for it. *)

val selected_tree : t -> devicetree
val image_of : t -> image

val begin_session : t -> client:string -> (unit, boot_error) result
(** Seal the VM to one client. A second client is refused. *)

val end_session : t -> unit
(** Release and scrub: recording state is destroyed, never reused. *)

val serving : t -> string option
val sessions_served : t -> int
