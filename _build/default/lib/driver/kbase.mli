(** A kbase-shaped Mali GPU kernel driver.

    Structured after the Bifrost kernel driver the paper instruments: probe
    and quirk discovery at load, a soft-reset path, power-domain sequencing,
    per-address-space MMU management with lock/flush/unlock command
    sequences, serialized job submission on slot 0 (the job queue length is
    pinned to 1, §5) and interrupt-driven completion.

    All hardware access flows through {!Backend.t}; the driver never touches
    a device directly, so the same code records remotely, runs natively and
    replays during recovery. *)

exception Driver_error of string

type t

val create : backend:Backend.t -> mem:Grt_gpu.Mem.t -> coherency_ace:bool -> t
(** [mem] is the CPU-visible shared memory on the machine hosting the GPU
    stack. [coherency_ace] is the platform's interconnect attribute, driving
    the quirk branch of Listing 1(a). *)

val init : t -> unit
(** Probe, soft-reset, quirk setup, interrupt unmasking, initial power-up.
    Raises {!Driver_error} on timeout or unsupported hardware. *)

val shutdown : t -> unit
(** Power everything down and mask interrupts. *)

val backend : t -> Backend.t
val mem : t -> Grt_gpu.Mem.t
val gpu_id : t -> int64
(** Valid after [init]. *)

val pt_format : t -> Grt_gpu.Sku.pt_format
val shader_present : t -> int64
val powered : t -> bool

val create_address_space : t -> as_idx:int -> Grt_gpu.Mmu.t
(** Allocate a page-table hierarchy in shared memory and program the AS's
    TRANSTAB/MEMATTR registers (with the update/flush command dance). *)

val map_region :
  t ->
  mmu:Grt_gpu.Mmu.t ->
  as_idx:int ->
  va:int64 ->
  pa:int64 ->
  pages:int ->
  flags:Grt_gpu.Mmu.flags ->
  unit
(** Install 4 KiB mappings and flush the AS's page-table walks. *)

val map_block_region :
  t ->
  mmu:Grt_gpu.Mmu.t ->
  as_idx:int ->
  va:int64 ->
  pa:int64 ->
  blocks:int ->
  flags:Grt_gpu.Mmu.flags ->
  unit
(** Same, with 2 MiB block mappings (large data buffers). *)

val run_job : t -> as_idx:int -> chain_va:int64 -> unit
(** The serialized per-job pipeline: wake the GPU if needed, flush MMU and
    caches, submit the chain on slot 0, sleep until the job interrupt, check
    status, flush caches, and let the shader cores power down. Raises
    {!Driver_error} if the GPU reports a fault or a timeout expires. *)

val jobs_submitted : t -> int

val hang_recoveries : t -> int
(** Times the job watchdog fired and the driver reset + resubmitted — the
    constant-exceptions failure mode of unoptimized remote recording
    (§3.3). Always 0 on local execution and on optimized links. *)
