(** The register-access backend the GPU driver is written against.

    This interface is the OCaml equivalent of the paper's driver
    instrumentation (§4.1, §6): every register accessor, polling loop, kernel
    API call and interrupt wait goes through it. Three implementations exist:

    - the native backend ([Grt.Native]) executes against a local device with
      concrete values — the GPU stack as it runs outside any TEE;
    - the forwarding backends ([Grt.Drivershim]) queue, defer, speculate and
      forward accesses to the client GPU over the network, per recording
      mode;
    - the replay-feed backend replays a validated interaction log into the
      driver during misprediction recovery (§4.2).

    Register values are symbolic expressions ({!Grt_util.Sexpr.t}); a backend
    that executes synchronously simply returns constants. [force] is the
    control-dependency point: the driver calls it when it must branch on a
    value, and a deferring backend commits there. *)

type poll_cond =
  | Bits_set  (** wait until [value & mask = mask] *)
  | Bits_clear  (** wait until [value & mask = 0] *)

type poll_result = Poll_ok of { iters : int; value : int64 } | Poll_timeout

type t = {
  read_reg : Grt_gpu.Regs.t -> Grt_util.Sexpr.t;
  write_reg : Grt_gpu.Regs.t -> Grt_util.Sexpr.t -> unit;
  force : Grt_util.Sexpr.t -> int64;
      (** Resolve a value the driver is about to branch on. *)
  poll_reg :
    reg:Grt_gpu.Regs.t ->
    mask:int64 ->
    cond:poll_cond ->
    max_iters:int ->
    spin_ns:int64 ->
    poll_result;
      (** A simple polling loop (§4.3): idempotent reads, local iteration
          count, no external effects in the body — eligible for offload. *)
  delay_us : int -> unit;  (** kernel delay family — a commit point *)
  lock : string -> unit;
  unlock : string -> unit;  (** commits precede lock release (§4.1) *)
  externalize : string -> unit;
      (** printk-like state externalization — a speculation stall point *)
  now_us : unit -> int64;
      (** kernel time (jiffies) — drives the driver's watchdogs *)
  wait_irq : timeout_us:int -> Grt_gpu.Device.irq_line option;
  irq_scope : 'a. (unit -> 'a) -> 'a;
      (** Run an interrupt handler: accesses inside use the IRQ thread's
          deferral queue. *)
  enter_hot : string -> unit;
      (** Driver control flow enters a profiled hot function. *)
  exit_hot : string -> unit;
      (** ... and leaves it: deferred accesses are committed (§4.1). *)
}

val in_hot : t -> string -> (unit -> 'a) -> 'a
(** Bracket a hot function, exception-safely. *)
