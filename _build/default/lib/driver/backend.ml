type poll_cond = Bits_set | Bits_clear

type poll_result = Poll_ok of { iters : int; value : int64 } | Poll_timeout

type t = {
  read_reg : Grt_gpu.Regs.t -> Grt_util.Sexpr.t;
  write_reg : Grt_gpu.Regs.t -> Grt_util.Sexpr.t -> unit;
  force : Grt_util.Sexpr.t -> int64;
  poll_reg :
    reg:Grt_gpu.Regs.t ->
    mask:int64 ->
    cond:poll_cond ->
    max_iters:int ->
    spin_ns:int64 ->
    poll_result;
  delay_us : int -> unit;
  lock : string -> unit;
  unlock : string -> unit;
  externalize : string -> unit;
  now_us : unit -> int64;
  wait_irq : timeout_us:int -> Grt_gpu.Device.irq_line option;
  irq_scope : 'a. (unit -> 'a) -> 'a;
  enter_hot : string -> unit;
  exit_hot : string -> unit;
}

let in_hot t name f =
  t.enter_hot name;
  Fun.protect ~finally:(fun () -> t.exit_hot name) f
