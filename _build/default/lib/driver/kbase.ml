exception Driver_error of string

module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Mmu = Grt_gpu.Mmu
module Sexpr = Grt_util.Sexpr

let fail fmt = Printf.ksprintf (fun s -> raise (Driver_error s)) fmt

type t = {
  b : Backend.t;
  mem : Grt_gpu.Mem.t;
  coherency_ace : bool;
  mutable gpu_id : int64;
  mutable pt_format : Sku.pt_format;
  mutable shader_present : int64;
  mutable tiler_present : int64;
  mutable l2_present : int64;
  mutable as_present : int64;
  (* Quirk registers are carried symbolically: under deferral they may stay
     unresolved across the whole init sequence (Listing 1a). *)
  mutable quirk_shader : Sexpr.t;
  mutable quirk_mmu : Sexpr.t;
  mutable powered : bool;
  mutable l2_on : bool;
  mutable initialized : bool;
  mutable jobs_submitted : int;
  mutable as_roots : (int * int64) list; (* AS index -> table root, for hang recovery *)
  mutable hang_recoveries : int;
}

let create ~backend ~mem ~coherency_ace =
  {
    b = backend;
    mem;
    coherency_ace;
    gpu_id = 0L;
    pt_format = Sku.Lpae_v7;
    shader_present = 0L;
    tiler_present = 0L;
    l2_present = 0L;
    as_present = 0L;
    quirk_shader = Sexpr.const 0L;
    quirk_mmu = Sexpr.const 0L;
    powered = false;
    l2_on = false;
    initialized = false;
    jobs_submitted = 0;
    as_roots = [];
    hang_recoveries = 0;
  }

let backend t = t.b
let mem t = t.mem
let gpu_id t = t.gpu_id
let pt_format t = t.pt_format
let shader_present t = t.shader_present
let powered t = t.powered
let jobs_submitted t = t.jobs_submitted
let hang_recoveries t = t.hang_recoveries

let poll_or_fail t ~what ~reg ~mask ~cond ~max_iters ~spin_ns =
  match t.b.Backend.poll_reg ~reg ~mask ~cond ~max_iters ~spin_ns with
  | Backend.Poll_ok { iters; value } -> (iters, value)
  | Backend.Poll_timeout -> fail "timeout while polling %s (%s)" (Regs.name reg) what

(* ---- probe: hardware discovery (§4.2 "Init" category) ---- *)

let probe t =
  Backend.in_hot t.b "kbase_gpuprops_get_props" (fun () ->
      let b = t.b in
      t.gpu_id <- b.Backend.force (b.Backend.read_reg Regs.gpu_id);
      let mmu_features = b.Backend.force (b.Backend.read_reg Regs.mmu_features) in
      t.pt_format <-
        (if Int64.logand mmu_features 0x200L <> 0L then Sku.Lpae_v8 else Sku.Lpae_v7);
      (* Feature words are consumed lazily; reading them keeps them in the
         deferral queue without forcing. *)
      let feature_regs =
        [
          Regs.l2_features;
          Regs.tiler_features;
          Regs.mem_features;
          Regs.thread_max_threads;
          Regs.thread_max_workgroup_size;
          Regs.thread_features;
          Regs.texture_features 0;
          Regs.texture_features 1;
          Regs.texture_features 2;
          Regs.texture_features 3;
        ]
      in
      List.iter (fun r -> ignore (b.Backend.read_reg r)) feature_regs;
      t.as_present <- b.Backend.force (b.Backend.read_reg Regs.as_present);
      t.shader_present <- b.Backend.force (b.Backend.read_reg Regs.shader_present_lo);
      ignore (b.Backend.read_reg Regs.shader_present_hi);
      t.tiler_present <- b.Backend.force (b.Backend.read_reg Regs.tiler_present_lo);
      t.l2_present <- b.Backend.force (b.Backend.read_reg Regs.l2_present_lo);
      (* Scan the job slots and address spaces the way the real probe does:
         all 16 architectural feature words, then the implemented slots. *)
      for i = 0 to 15 do
        ignore (b.Backend.read_reg (Regs.js_features i))
      done;
      for slot = 0 to Regs.job_slot_count - 1 do
        ignore (b.Backend.read_reg (Regs.js_config slot));
        ignore (b.Backend.read_reg (Regs.js_status slot))
      done;
      for as_idx = 0 to Regs.as_count - 1 do
        ignore (b.Backend.read_reg (Regs.as_status as_idx))
      done)

(* ---- quirks: Listing 1(a) ---- *)

let mmu_allow_snoop_disparity = 0x10L

let apply_quirks t =
  Backend.in_hot t.b "kbase_pm_hw_issues_apply" (fun () ->
      let b = t.b in
      let qrk_shader = b.Backend.read_reg Regs.shader_config in
      let qrk_mmu = b.Backend.read_reg Regs.mmu_config in
      (* Data dependency: the written value encodes the (possibly still
         symbolic) read value. *)
      let qrk_mmu =
        if t.coherency_ace then Sexpr.logor qrk_mmu (Sexpr.const mmu_allow_snoop_disparity)
        else qrk_mmu
      in
      b.Backend.write_reg Regs.shader_config qrk_shader;
      b.Backend.write_reg Regs.mmu_config qrk_mmu;
      t.quirk_shader <- qrk_shader;
      t.quirk_mmu <- qrk_mmu)

(* ---- reset ---- *)

let soft_reset t =
  Backend.in_hot t.b "kbase_pm_init_hw" (fun () ->
      let b = t.b in
      b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const 0xFFFF_FFFFL);
      b.Backend.write_reg Regs.gpu_command (Sexpr.const Regs.cmd_soft_reset);
      (* The driver gives the GPU a moment before polling — an explicit
         delay, i.e. a commit barrier (§4.1). *)
      b.Backend.delay_us 1;
      let _ =
        poll_or_fail t ~what:"soft reset" ~reg:Regs.gpu_irq_rawstat
          ~mask:Regs.irq_reset_completed ~cond:Backend.Bits_set ~max_iters:3000 ~spin_ns:1_000L
      in
      b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const Regs.irq_reset_completed);
      t.powered <- false;
      t.l2_on <- false)

let setup_perf_counters t =
  Backend.in_hot t.b "kbase_instr_hwcnt_setup" (fun () ->
      let b = t.b in
      b.Backend.write_reg Regs.prfcnt_config (Sexpr.const 0L);
      b.Backend.write_reg Regs.prfcnt_base_lo (Sexpr.const 0L);
      b.Backend.write_reg Regs.prfcnt_base_hi (Sexpr.const 0L);
      b.Backend.write_reg Regs.prfcnt_jm_en (Sexpr.const 0xFFFF_FFFFL);
      b.Backend.write_reg Regs.prfcnt_shader_en (Sexpr.const 0xFFFF_FFFFL);
      b.Backend.write_reg Regs.prfcnt_tiler_en (Sexpr.const 0xFFFF_FFFFL);
      b.Backend.write_reg Regs.prfcnt_mmu_l2_en (Sexpr.const 0xFFFF_FFFFL))

let enable_interrupts t =
  let b = t.b in
  b.Backend.write_reg Regs.gpu_irq_mask
    (Sexpr.const
       (Int64.logor Regs.irq_reset_completed
          (Int64.logor Regs.irq_power_changed_all Regs.irq_clean_caches_completed)));
  b.Backend.write_reg Regs.job_irq_mask (Sexpr.const 0xFFFF_FFFFL);
  b.Backend.write_reg Regs.mmu_irq_mask (Sexpr.const 0xFFFF_FFFFL)

(* ---- power domains (§4.2 "Power state" category) ---- *)

let power_up_domain t ~what ~pwron ~ready ~mask =
  let b = t.b in
  if Int64.equal mask 0L then fail "power_up: empty %s mask" what;
  (* Read the current ready state for bookkeeping (stays in the deferral
     queue — no branch on it). *)
  ignore (b.Backend.read_reg ready);
  b.Backend.write_reg pwron (Sexpr.const mask);
  let _ =
    poll_or_fail t ~what ~reg:ready ~mask ~cond:Backend.Bits_set ~max_iters:10_000 ~spin_ns:1_000L
  in
  ()

let power_up t =
  Backend.in_hot t.b "kbase_pm_do_poweron" (fun () ->
      let b = t.b in
      b.Backend.lock "pm.lock";
      (* The L2 and tiler stay up between jobs; only power them when cold. *)
      if not t.l2_on then begin
        power_up_domain t ~what:"L2" ~pwron:Regs.l2_pwron_lo ~ready:Regs.l2_ready_lo
          ~mask:t.l2_present;
        if Int64.compare t.tiler_present 0L > 0 then
          power_up_domain t ~what:"tiler" ~pwron:Regs.tiler_pwron_lo ~ready:Regs.tiler_ready_lo
            ~mask:t.tiler_present;
        t.l2_on <- true
      end;
      power_up_domain t ~what:"shader" ~pwron:Regs.shader_pwron_lo ~ready:Regs.shader_ready_lo
        ~mask:t.shader_present;
      b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const Regs.irq_power_changed_all);
      t.powered <- true;
      b.Backend.unlock "pm.lock")

let power_down_shaders t =
  Backend.in_hot t.b "kbase_pm_do_poweroff" (fun () ->
      let b = t.b in
      b.Backend.lock "pm.lock";
      b.Backend.write_reg Regs.shader_pwroff_lo (Sexpr.const t.shader_present);
      let _ =
        poll_or_fail t ~what:"shader poweroff" ~reg:Regs.shader_ready_lo ~mask:t.shader_present
          ~cond:Backend.Bits_clear ~max_iters:10_000 ~spin_ns:1_000L
      in
      b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const Regs.irq_power_changed_all);
      t.powered <- false;
      b.Backend.unlock "pm.lock")

let wake_if_needed t = if not t.powered then power_up t

(* ---- MMU management ---- *)

let as_wait_idle t ~as_idx ~what =
  let _ =
    poll_or_fail t ~what ~reg:(Regs.as_status as_idx) ~mask:Regs.as_status_flush_active
      ~cond:Backend.Bits_clear ~max_iters:5_000 ~spin_ns:1_000L
  in
  ()

let create_address_space t ~as_idx =
  if Int64.logand t.as_present (Int64.shift_left 1L as_idx) = 0L then
    fail "address space %d not present on this GPU" as_idx;
  Backend.in_hot t.b "kbase_mmu_hw_configure" (fun () ->
      let b = t.b in
      let mmu = Mmu.create t.mem ~fmt:t.pt_format in
      b.Backend.lock "mmu_hw.lock";
      let root = Mmu.root_pa mmu in
      t.as_roots <- (as_idx, root) :: t.as_roots;
      b.Backend.write_reg (Regs.as_transtab_lo as_idx)
        (Sexpr.const (Int64.logand root 0xFFFF_FFFFL));
      b.Backend.write_reg (Regs.as_transtab_hi as_idx)
        (Sexpr.const (Int64.shift_right_logical root 32));
      b.Backend.write_reg (Regs.as_memattr_lo as_idx) (Sexpr.const 0x8888_8888L);
      b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_update);
      as_wait_idle t ~as_idx ~what:"AS update";
      b.Backend.unlock "mmu_hw.lock";
      mmu)

let flush_pt t ~as_idx ~va ~pages =
  Backend.in_hot t.b "kbase_mmu_hw_do_operation" (fun () ->
      let b = t.b in
      b.Backend.lock "mmu_hw.lock";
      (* lockaddr encodes region base | log2(size), as on real hardware *)
      let log2_pages = max 1 (int_of_float (ceil (log (float_of_int (max 2 pages)) /. log 2.))) in
      b.Backend.write_reg (Regs.as_lockaddr_lo as_idx)
        (Sexpr.const (Int64.logor va (Int64.of_int (log2_pages + 12))));
      b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_lock);
      b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_flush_pt);
      as_wait_idle t ~as_idx ~what:"AS flush_pt";
      b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_unlock);
      b.Backend.unlock "mmu_hw.lock")

let flush_mem t ~as_idx =
  Backend.in_hot t.b "kbase_mmu_hw_do_flush_mem" (fun () ->
      let b = t.b in
      b.Backend.lock "mmu_hw.lock";
      b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_flush_mem);
      as_wait_idle t ~as_idx ~what:"AS flush_mem";
      b.Backend.unlock "mmu_hw.lock")

let map_region t ~mmu ~as_idx ~va ~pa ~pages ~flags =
  if pages <= 0 then fail "map_region: no pages";
  for i = 0 to pages - 1 do
    let off = Int64.of_int (i * Grt_gpu.Mem.page_size) in
    Mmu.map_page mmu ~va:(Int64.add va off) ~pa:(Int64.add pa off) ~flags
  done;
  flush_pt t ~as_idx ~va ~pages

let map_block_region t ~mmu ~as_idx ~va ~pa ~blocks ~flags =
  if blocks <= 0 then fail "map_block_region: no blocks";
  for i = 0 to blocks - 1 do
    let off = Int64.of_int (i * (1 lsl 21)) in
    Mmu.map_block mmu ~va:(Int64.add va off) ~pa:(Int64.add pa off) ~flags
  done;
  flush_pt t ~as_idx ~va ~pages:(blocks * 512)

(* ---- cache maintenance ---- *)

let cache_flush t =
  Backend.in_hot t.b "kbase_gpu_cache_clean" (fun () ->
      let b = t.b in
      b.Backend.lock "hwaccess.lock";
      b.Backend.write_reg Regs.gpu_command (Sexpr.const Regs.cmd_clean_inv_caches);
      let _ =
        poll_or_fail t ~what:"cache clean" ~reg:Regs.gpu_irq_rawstat
          ~mask:Regs.irq_clean_caches_completed ~cond:Backend.Bits_set ~max_iters:20_000
          ~spin_ns:1_000L
      in
      b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const Regs.irq_clean_caches_completed);
      b.Backend.unlock "hwaccess.lock")

(* ---- job submission and completion ---- *)

let submit_job t ~as_idx ~chain_va =
  Backend.in_hot t.b "kbase_job_hw_submit" (fun () ->
      let b = t.b in
      b.Backend.lock "hwaccess.lock";
      (* The flush id is read on every submission and folded into the job
         config — a genuinely nondeterministic register (§7.3). *)
      let flush_id = b.Backend.read_reg Regs.latest_flush_id in
      (* Check the slot is idle (bookkeeping read, no branch). *)
      ignore (b.Backend.read_reg (Regs.js_status 0));
      b.Backend.write_reg (Regs.js_head_next_lo 0)
        (Sexpr.const (Int64.logand chain_va 0xFFFF_FFFFL));
      b.Backend.write_reg (Regs.js_head_next_hi 0)
        (Sexpr.const (Int64.shift_right_logical chain_va 32));
      b.Backend.write_reg (Regs.js_affinity_next_lo 0) (Sexpr.const t.shader_present);
      let config =
        Sexpr.logor (Sexpr.const (Int64.of_int as_idx)) (Sexpr.shift_left flush_id 8)
      in
      b.Backend.write_reg (Regs.js_config_next 0) config;
      b.Backend.write_reg (Regs.js_command_next 0) (Sexpr.const Regs.js_cmd_start);
      t.jobs_submitted <- t.jobs_submitted + 1;
      b.Backend.unlock "hwaccess.lock")

(* Listing 1(b): the job interrupt handler. *)
let job_irq_handler t =
  t.b.Backend.irq_scope (fun () ->
      Backend.in_hot t.b "kbase_job_irq_handler" (fun () ->
          let b = t.b in
          let done_bits = b.Backend.force (b.Backend.read_reg Regs.job_irq_status) in
          if Int64.equal done_bits 0L then `Irq_none
          else begin
            b.Backend.write_reg Regs.job_irq_clear (Sexpr.const done_bits);
            if Int64.logand done_bits 0x1_0000L <> 0L then begin
              let status = b.Backend.force (b.Backend.read_reg (Regs.js_status 0)) in
              b.Backend.externalize (Printf.sprintf "job fault, JS0_STATUS=%#Lx" status);
              `Fault status
            end
            else begin
              let status = b.Backend.force (b.Backend.read_reg (Regs.js_status 0)) in
              (* Bookkeeping reads the handler performs for the dequeued
                 atom; they ride along in the same commit. *)
              ignore (b.Backend.read_reg Regs.job_irq_rawstat);
              ignore (b.Backend.read_reg (Regs.js_head_lo 0));
              ignore (b.Backend.read_reg (Regs.js_tail_lo 0));
              if Int64.equal status Regs.js_status_done then `Done else `Fault status
            end
          end))

let mmu_irq_handler t =
  t.b.Backend.irq_scope (fun () ->
      Backend.in_hot t.b "kbase_mmu_irq_handler" (fun () ->
          let b = t.b in
          let stat = b.Backend.force (b.Backend.read_reg Regs.mmu_irq_status) in
          if Int64.equal stat 0L then `Irq_none
          else begin
            (* Find the faulting AS, fetch its fault registers, clear. *)
            let as_idx =
              let rec first_bit i =
                if i >= Regs.as_count then 0
                else if Int64.logand stat (Int64.shift_left 1L i) <> 0L then i
                else first_bit (i + 1)
              in
              first_bit 0
            in
            let fstat = b.Backend.force (b.Backend.read_reg (Regs.as_faultstatus as_idx)) in
            let faddr = b.Backend.force (b.Backend.read_reg (Regs.as_faultaddress_lo as_idx)) in
            b.Backend.write_reg Regs.mmu_irq_clear (Sexpr.const stat);
            b.Backend.externalize
              (Printf.sprintf "MMU fault: AS%d status=%#Lx addr=%#Lx" as_idx fstat faddr);
            `Fault fstat
          end))

(* The job watchdog (as in the real stack, §3.3): if a submitted job does
   not complete within the window, the driver declares a GPU hang, resets
   the hardware and resubmits. Under naive per-access forwarding on a slow
   link the submission path alone can blow the window, which is exactly
   why unoptimized remote recording "constantly throws exceptions". *)
let job_watchdog_us = 4_000_000L

exception Job_hang

let wait_job_done t ~submitted_at =
  let rec loop attempts =
    if attempts <= 0 then fail "job completion timed out";
    if Int64.compare (Int64.sub (t.b.Backend.now_us ()) submitted_at) job_watchdog_us > 0 then
      raise Job_hang;
    match t.b.Backend.wait_irq ~timeout_us:2_000_000 with
    | None -> fail "no interrupt within timeout"
    | Some Grt_gpu.Device.Job_irq -> (
      match job_irq_handler t with
      | `Done -> ()
      | `Irq_none -> loop (attempts - 1)
      | `Fault status -> fail "GPU job fault, status=%#Lx" status)
    | Some Grt_gpu.Device.Mmu_irq -> (
      match mmu_irq_handler t with
      | `Irq_none -> loop (attempts - 1)
      | `Fault status -> fail "GPU MMU fault, status=%#Lx" status)
    | Some Grt_gpu.Device.Gpu_irq ->
      (* Stale power/cache bits: acknowledge and keep waiting. *)
      t.b.Backend.write_reg Regs.gpu_irq_clear
        (Sexpr.const (Int64.logor Regs.irq_power_changed_all Regs.irq_clean_caches_completed));
      loop (attempts - 1)
  in
  loop 16

let reconfigure_as t ~as_idx =
  match List.assoc_opt as_idx t.as_roots with
  | None -> fail "hang recovery: AS %d was never configured" as_idx
  | Some root ->
    Backend.in_hot t.b "kbase_mmu_hw_configure" (fun () ->
        let b = t.b in
        b.Backend.lock "mmu_hw.lock";
        b.Backend.write_reg (Regs.as_transtab_lo as_idx)
          (Sexpr.const (Int64.logand root 0xFFFF_FFFFL));
        b.Backend.write_reg (Regs.as_transtab_hi as_idx)
          (Sexpr.const (Int64.shift_right_logical root 32));
        b.Backend.write_reg (Regs.as_memattr_lo as_idx) (Sexpr.const 0x8888_8888L);
        b.Backend.write_reg (Regs.as_command as_idx) (Sexpr.const Regs.as_cmd_update);
        as_wait_idle t ~as_idx ~what:"AS update";
        b.Backend.unlock "mmu_hw.lock")

(* GPU hang recovery, as the real driver does it: full reset, quirk and
   interrupt reprogramming, AS reconfiguration, then resubmission. *)
let recover_from_hang t ~as_idx =
  t.hang_recoveries <- t.hang_recoveries + 1;
  t.b.Backend.externalize "GPU job hang: resetting GPU";
  soft_reset t;
  apply_quirks t;
  enable_interrupts t;
  power_up t;
  reconfigure_as t ~as_idx

let run_job t ~as_idx ~chain_va =
  if not t.initialized then fail "run_job before init";
  let rec attempt tries =
    if tries > 3 then fail "GPU hang persists after %d resets (link too slow?)" (tries - 1);
    wake_if_needed t;
    flush_mem t ~as_idx;
    cache_flush t;
    let submitted_at = t.b.Backend.now_us () in
    submit_job t ~as_idx ~chain_va;
    match wait_job_done t ~submitted_at with
    | () -> ()
    | exception Job_hang ->
      recover_from_hang t ~as_idx;
      attempt (tries + 1)
  in
  attempt 1;
  cache_flush t;
  power_down_shaders t

(* ---- lifecycle ---- *)

let init t =
  if t.initialized then fail "driver already initialized";
  probe t;
  soft_reset t;
  apply_quirks t;
  setup_perf_counters t;
  enable_interrupts t;
  power_up t;
  t.initialized <- true

let shutdown t =
  if t.powered then power_down_shaders t;
  let b = t.b in
  b.Backend.write_reg Regs.gpu_irq_mask (Sexpr.const 0L);
  b.Backend.write_reg Regs.job_irq_mask (Sexpr.const 0L);
  b.Backend.write_reg Regs.mmu_irq_mask (Sexpr.const 0L);
  t.initialized <- false
