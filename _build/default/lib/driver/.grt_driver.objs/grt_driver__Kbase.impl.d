lib/driver/kbase.ml: Backend Grt_gpu Grt_util Int64 List Printf
