lib/driver/backend.mli: Grt_gpu Grt_util
