lib/driver/kbase.mli: Backend Grt_gpu
