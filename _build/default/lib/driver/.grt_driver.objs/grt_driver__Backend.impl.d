lib/driver/backend.ml: Fun Grt_gpu Grt_util
