type op =
  | Copy
  | Relu
  | Add
  | Concat2
  | Softmax
  | Maxpool
  | Avgpool
  | Conv2d
  | Depthwise
  | Fc
  | Tanh
  | Sigmoid
  | Mul

let op_code = function
  | Copy -> 1
  | Relu -> 2
  | Add -> 3
  | Concat2 -> 4
  | Softmax -> 5
  | Maxpool -> 6
  | Avgpool -> 7
  | Conv2d -> 8
  | Depthwise -> 9
  | Fc -> 10
  | Tanh -> 11
  | Sigmoid -> 12
  | Mul -> 13

let op_of_code = function
  | 1 -> Some Copy
  | 2 -> Some Relu
  | 3 -> Some Add
  | 4 -> Some Concat2
  | 5 -> Some Softmax
  | 6 -> Some Maxpool
  | 7 -> Some Avgpool
  | 8 -> Some Conv2d
  | 9 -> Some Depthwise
  | 10 -> Some Fc
  | 11 -> Some Tanh
  | 12 -> Some Sigmoid
  | 13 -> Some Mul
  | _ -> None

let op_name = function
  | Copy -> "copy"
  | Relu -> "relu"
  | Add -> "add"
  | Concat2 -> "concat2"
  | Softmax -> "softmax"
  | Maxpool -> "maxpool"
  | Avgpool -> "avgpool"
  | Conv2d -> "conv2d"
  | Depthwise -> "depthwise"
  | Fc -> "fc"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Mul -> "mul"

let magic = 0x47525348L (* "GRSH" *)

let header_size = 32

let tile_size sku =
  (* One quad per core pair; mirrors how real compilers scale work-group
     shape with the core count. *)
  let t = 4 * sku.Sku.shader_cores in
  max 8 (min 64 t)

let code_complexity = function
  | Copy | Relu -> 48
  | Add | Concat2 | Mul -> 64
  | Tanh | Sigmoid -> 96
  | Softmax -> 160
  | Maxpool | Avgpool -> 128
  | Depthwise -> 384
  | Fc -> 448
  | Conv2d -> 640

let size_bytes op ~sku =
  (* Bigger tiles unroll more; code grows with log2(tile). *)
  let tile = tile_size sku in
  let unroll = int_of_float (log (float_of_int tile) /. log 2.) in
  header_size + (code_complexity op * unroll / 3)

let compile ~sku ~op =
  let total = size_bytes op ~sku in
  let buf = Grt_util.Byte_buf.create ~capacity:total () in
  Grt_util.Byte_buf.add_u32 buf (Int64.to_int magic);
  Grt_util.Byte_buf.add_u32 buf 1;
  (* version *)
  Grt_util.Byte_buf.add_i64 buf sku.Sku.gpu_id;
  Grt_util.Byte_buf.add_u32 buf (op_code op);
  Grt_util.Byte_buf.add_u32 buf (tile_size sku);
  Grt_util.Byte_buf.add_u32 buf (total - header_size);
  Grt_util.Byte_buf.add_u32 buf 0;
  (* pad to header_size *)
  (* Synthetic instruction stream: deterministic bytes derived from the op
     and SKU so that identical compilations are byte-identical (and thus
     delta-sync to nothing on repeated jobs). *)
  let seed =
    Grt_util.Hashing.combine sku.Sku.gpu_id (Int64.of_int (op_code op))
  in
  let rng = Grt_util.Rng.create ~seed in
  for _ = 1 to total - header_size do
    Grt_util.Byte_buf.add_u8 buf (Grt_util.Rng.int rng 256)
  done;
  Grt_util.Byte_buf.contents buf

type header = { version : int; gpu_id : int64; op : op; tile : int; code_len : int }

let parse_header b =
  if Bytes.length b < header_size then Error "shader: too short"
  else
    let r = Grt_util.Byte_buf.Reader.of_bytes b in
    let m = Grt_util.Byte_buf.Reader.u32 r in
    if Int64.of_int m <> magic then Error "shader: bad magic"
    else
      let version = Grt_util.Byte_buf.Reader.u32 r in
      let gpu_id = Grt_util.Byte_buf.Reader.i64 r in
      let code = Grt_util.Byte_buf.Reader.u32 r in
      let tile = Grt_util.Byte_buf.Reader.u32 r in
      let code_len = Grt_util.Byte_buf.Reader.u32 r in
      match op_of_code code with
      | None -> Error "shader: unknown opcode"
      | Some op -> Ok { version; gpu_id; op; tile; code_len }
