(** GPU job descriptors.

    A job descriptor lives in shared memory; the runtime writes it, the GPU
    reads it when a job chain is started on a slot, executes the referenced
    shader over the referenced buffers and writes back a status word. Jobs
    chain through [next_va], letting one slot submission cover a whole
    command list — the unit the recorder captures (§2.1). *)

type params = {
  in_c : int;
  in_h : int;
  in_w : int;
  in2_c : int;  (** channel count of the second operand (concat). *)
  out_c : int;
  out_h : int;
  out_w : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  relu : bool;
  part_idx : int;  (** output-channel partition index (0-based) *)
  part_count : int;  (** number of partitions this op was split into *)
  flops_hint : int64;
      (** model-scale FLOPs of this job, used by the GPU timing model; the
          materialized tensors may be smaller than the modeled ones. *)
}

val default_params : params

type t = {
  op : Shader.op;
  shader_va : int64;
  input_va : int64;
  input2_va : int64;
  bias_va : int64;
  output_va : int64;
  params : params;
  next_va : int64;  (** 0 terminates the chain *)
}

val size_bytes : int
val status_offset : int

type status = Pending | Done | Fault of int

val status_to_int : status -> int
val status_of_int : int -> status

val write : Mem.t -> pa:int64 -> t -> unit
val read : Mem.t -> pa:int64 -> (t, string) result
val read_status : Mem.t -> pa:int64 -> status
val write_status : Mem.t -> pa:int64 -> status -> unit
