(** Register map of the modeled Mali-style GPU.

    The layout follows the Midgard/Bifrost job-manager architecture: a GPU
    control block (identity, features, power domains, cache maintenance), a
    job control block (interrupt registers plus per-slot job registers) and
    an MMU block (interrupt registers plus per-address-space registers).
    Offsets are byte offsets from the GPU MMIO base. *)

type t = int
(** A register is its byte offset. *)

(* GPU control block *)

val gpu_id : t
val l2_features : t
val tiler_features : t
val mem_features : t
val mmu_features : t
val as_present : t
val gpu_irq_rawstat : t
val gpu_irq_clear : t
val gpu_irq_mask : t
val gpu_irq_status : t
val gpu_command : t
val gpu_status : t
val latest_flush_id : t
val shader_present_lo : t
val shader_present_hi : t
val tiler_present_lo : t
val l2_present_lo : t
val shader_ready_lo : t
val tiler_ready_lo : t
val l2_ready_lo : t
val shader_pwron_lo : t
val tiler_pwron_lo : t
val l2_pwron_lo : t
val shader_pwroff_lo : t
val tiler_pwroff_lo : t
val l2_pwroff_lo : t
val shader_config : t
val tiler_config : t
val l2_mmu_config : t
val mmu_config : t
val thread_max_threads : t
val thread_max_workgroup_size : t
val thread_features : t
val texture_features : int -> t
(** [texture_features i] for i in 0..3. *)

val js_features : int -> t
(** [js_features i] for i in 0..15 — per-slot capability words the probe
    scans even for unimplemented slots. *)

(* Performance-counter setup block *)

val prfcnt_base_lo : t
val prfcnt_base_hi : t
val prfcnt_config : t
val prfcnt_jm_en : t
val prfcnt_shader_en : t
val prfcnt_tiler_en : t
val prfcnt_mmu_l2_en : t

(* GPU_IRQ bits *)

val irq_gpu_fault : int64
val irq_reset_completed : int64
val irq_power_changed_all : int64
val irq_clean_caches_completed : int64

(* GPU_COMMAND codes *)

val cmd_nop : int64
val cmd_soft_reset : int64
val cmd_hard_reset : int64
val cmd_clean_caches : int64
val cmd_clean_inv_caches : int64

(* Job control block *)

val job_irq_rawstat : t
val job_irq_clear : t
val job_irq_mask : t
val job_irq_status : t
val job_slot_count : int

val js_head_lo : int -> t
val js_head_hi : int -> t
val js_tail_lo : int -> t
val js_affinity_lo : int -> t
val js_config : int -> t
val js_status : int -> t
val js_command : int -> t
val js_head_next_lo : int -> t
val js_head_next_hi : int -> t
val js_affinity_next_lo : int -> t
val js_config_next : int -> t
val js_command_next : int -> t

val js_cmd_nop : int64
val js_cmd_start : int64
val js_cmd_soft_stop : int64
val js_cmd_hard_stop : int64

val js_status_idle : int64
val js_status_active : int64
val js_status_done : int64
val js_status_fault_shader_mismatch : int64
val js_status_fault_bad_descriptor : int64
val js_status_fault_translation : int64

(* MMU block *)

val mmu_irq_rawstat : t
val mmu_irq_clear : t
val mmu_irq_mask : t
val mmu_irq_status : t
val as_count : int

val as_transtab_lo : int -> t
val as_transtab_hi : int -> t
val as_memattr_lo : int -> t
val as_lockaddr_lo : int -> t
val as_command : int -> t
val as_faultstatus : int -> t
val as_faultaddress_lo : int -> t
val as_status : int -> t

val as_cmd_nop : int64
val as_cmd_update : int64
val as_cmd_lock : int64
val as_cmd_unlock : int64
val as_cmd_flush_pt : int64
val as_cmd_flush_mem : int64

val as_status_flush_active : int64

val name : t -> string
(** Human-readable register name for traces and dumps. *)

val is_nondeterministic : t -> bool
(** Registers whose read values legitimately differ between record runs
    (e.g. [latest_flush_id]); the replayer skips verification on these and
    the speculation engine will never build confidence on them. *)
