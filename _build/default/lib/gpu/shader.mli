(** Shader binaries.

    A shader is what the per-SKU JIT emits for one hardware-neutral kernel:
    a header binding it to a GPU id plus a code section whose size and tiling
    reflect the SKU (core count drives the tile size, §2.4). The GPU refuses
    to run a shader built for a different SKU — this is what makes replay
    recordings SKU-specific, and what the [sku_matrix] example demonstrates. *)

type op =
  | Copy
  | Relu
  | Add
  | Concat2
  | Softmax
  | Maxpool
  | Avgpool
  | Conv2d
  | Depthwise
  | Fc
  | Tanh
  | Sigmoid
  | Mul  (** elementwise product — recurrent gating *)

val op_code : op -> int
val op_of_code : int -> op option
val op_name : op -> string

val magic : int64

val tile_size : Sku.t -> int
(** SKU-dependent codegen decision: work-group tile derived from the shader
    core count. *)

val compile : sku:Sku.t -> op:op -> bytes
(** Emit the shader binary for [op] on [sku]. Deterministic. *)

val size_bytes : op -> sku:Sku.t -> int

type header = { version : int; gpu_id : int64; op : op; tile : int; code_len : int }

val parse_header : bytes -> (header, string) result

val header_size : int
