type params = {
  in_c : int;
  in_h : int;
  in_w : int;
  in2_c : int;
  out_c : int;
  out_h : int;
  out_w : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  relu : bool;
  part_idx : int;
  part_count : int;
  flops_hint : int64;
}

let default_params =
  {
    in_c = 0;
    in_h = 0;
    in_w = 0;
    in2_c = 0;
    out_c = 0;
    out_h = 0;
    out_w = 0;
    kh = 0;
    kw = 0;
    stride = 1;
    pad = 0;
    relu = false;
    part_idx = 0;
    part_count = 1;
    flops_hint = 0L;
  }

type t = {
  op : Shader.op;
  shader_va : int64;
  input_va : int64;
  input2_va : int64;
  bias_va : int64;
  output_va : int64;
  params : params;
  next_va : int64;
}

let magic = 0x47524A44L (* "GRJD" *)

let size_bytes = 128
let status_offset = 120

type status = Pending | Done | Fault of int

let status_to_int = function Pending -> 0 | Done -> 1 | Fault code -> 0x40 lor (code land 0x3F)

let status_of_int = function
  | 0 -> Pending
  | 1 -> Done
  | v -> Fault (v land 0x3F)

let u32 = Int64.of_int

let write mem ~pa t =
  let p = t.params in
  Mem.write_u32 mem pa magic;
  Mem.write_u32 mem (Int64.add pa 4L) (u32 (Shader.op_code t.op));
  Mem.write_u64 mem (Int64.add pa 8L) t.shader_va;
  Mem.write_u64 mem (Int64.add pa 16L) t.input_va;
  Mem.write_u64 mem (Int64.add pa 24L) t.input2_va;
  Mem.write_u64 mem (Int64.add pa 32L) t.bias_va;
  Mem.write_u64 mem (Int64.add pa 40L) t.output_va;
  let params_base = Int64.add pa 48L in
  let fields =
    [|
      p.in_c; p.in_h; p.in_w; p.in2_c; p.out_c; p.out_h; p.out_w; p.kh; p.kw; p.stride; p.pad;
      (if p.relu then 1 else 0); p.part_idx; p.part_count;
    |]
  in
  Array.iteri (fun i v -> Mem.write_u32 mem (Int64.add params_base (u32 (4 * i))) (u32 v)) fields;
  Mem.write_u64 mem (Int64.add pa 104L) p.flops_hint;
  Mem.write_u64 mem (Int64.add pa 112L) t.next_va;
  Mem.write_u32 mem (Int64.add pa (u32 status_offset)) (u32 (status_to_int Pending))

let read mem ~pa =
  if Mem.read_u32 mem pa <> magic then Error "job descriptor: bad magic"
  else
    match Shader.op_of_code (Int64.to_int (Mem.read_u32 mem (Int64.add pa 4L))) with
    | None -> Error "job descriptor: unknown opcode"
    | Some op ->
      let rd64 off = Mem.read_u64 mem (Int64.add pa (u32 off)) in
      let rdp i = Int64.to_int (Mem.read_u32 mem (Int64.add pa (u32 (48 + (4 * i))))) in
      let params =
        {
          in_c = rdp 0;
          in_h = rdp 1;
          in_w = rdp 2;
          in2_c = rdp 3;
          out_c = rdp 4;
          out_h = rdp 5;
          out_w = rdp 6;
          kh = rdp 7;
          kw = rdp 8;
          stride = rdp 9;
          pad = rdp 10;
          relu = rdp 11 <> 0;
          part_idx = rdp 12;
          part_count = rdp 13;
          flops_hint = rd64 104;
        }
      in
      Ok
        {
          op;
          shader_va = rd64 8;
          input_va = rd64 16;
          input2_va = rd64 24;
          bias_va = rd64 32;
          output_va = rd64 40;
          params;
          next_va = rd64 112;
        }

let read_status mem ~pa =
  status_of_int (Int64.to_int (Mem.read_u32 mem (Int64.add pa (u32 status_offset))))

let write_status mem ~pa s =
  Mem.write_u32 mem (Int64.add pa (u32 status_offset)) (u32 (status_to_int s))
