(** GPU SKU catalog.

    §2.4 stresses that recordings are SKU-specific: shader-core counts drive
    JIT tiling decisions, page-table format revisions differ, and quirk
    registers take different reset values. The catalog models a family of
    Mali-like SKUs sharing one driver, mirroring how the Bifrost kbase driver
    supports several GPUs (§3). *)

type pt_format = Lpae_v7 | Lpae_v8
(** Page-table descriptor revision. Both are 3-level/4 KiB formats; v8 adds
    an access-flag bit the walker enforces. *)

type t = {
  name : string;
  gpu_id : int64;  (** identity register value: product | revision *)
  shader_cores : int;
  tiler_units : int;
  l2_slices : int;
  address_spaces : int;  (** how many AS slots the MMU exposes (<= 8) *)
  clock_mhz : int;
  flops_scale : float;  (** shader throughput relative to the G71 MP8 baseline *)
  pt_format : pt_format;
  quirk_shader_config : int64;  (** reset value of SHADER_CONFIG *)
  quirk_mmu_config : int64;  (** reset value of MMU_CONFIG *)
  needs_snoop_disparity : bool;  (** erratum: MMU_CONFIG needs bit 4 set *)
  power_up_us : int;  (** per-domain power transition latency *)
  reset_us : int;
}

val g71_mp8 : t
(** The paper's client GPU (HiKey960). Baseline for throughput. *)

val g52_mp4 : t
val g31_mp2 : t
val g76_mp12 : t
val g72_mp12 : t

val all : t list

val find : string -> t option
val shader_present_mask : t -> int64
val tiler_present_mask : t -> int64
val l2_present_mask : t -> int64
val flops_per_s : t -> float
val equal_id : t -> t -> bool

val pp : Format.formatter -> t -> unit

val find_by_id : int64 -> t option
(** Look a SKU up by its identity-register value. *)
