exception Kernel_fault of string

type ctx = { getf : int64 -> float; setf : int64 -> float -> unit }

let fail fmt = Printf.ksprintf (fun s -> raise (Kernel_fault s)) fmt

let partition_range ~total ~part_idx ~part_count =
  if part_count <= 0 || part_idx < 0 || part_idx >= part_count then
    fail "bad partition %d/%d" part_idx part_count;
  let q = total / part_count and r = total mod part_count in
  let first = (part_idx * q) + min part_idx r in
  let count = q + if part_idx < r then 1 else 0 in
  (first, count)

let f32 = 4L

let elem base idx = Int64.add base (Int64.mul f32 (Int64.of_int idx))

(* CHW indexing *)
let chw ~h ~w c y x = (((c * h) + y) * w) + x

let check_conv_geometry p =
  let open Job_desc in
  let expect_h = ((p.in_h + (2 * p.pad) - p.kh) / p.stride) + 1 in
  let expect_w = ((p.in_w + (2 * p.pad) - p.kw) / p.stride) + 1 in
  if expect_h <> p.out_h || expect_w <> p.out_w then
    fail "conv geometry mismatch: got %dx%d want %dx%d" p.out_h p.out_w expect_h expect_w

let conv2d ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  let first_oc, n_oc = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  for oc = first_oc to first_oc + n_oc - 1 do
    let bias = if Int64.equal d.bias_va 0L then 0.0 else ctx.getf (elem d.bias_va oc) in
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let acc = ref bias in
        for ic = 0 to p.in_c - 1 do
          for ky = 0 to p.kh - 1 do
            let iy = (oy * p.stride) + ky - p.pad in
            if iy >= 0 && iy < p.in_h then
              for kx = 0 to p.kw - 1 do
                let ix = (ox * p.stride) + kx - p.pad in
                if ix >= 0 && ix < p.in_w then begin
                  let wi = (((((oc * p.in_c) + ic) * p.kh) + ky) * p.kw) + kx in
                  let v = ctx.getf (elem d.input_va (in_idx ic iy ix)) in
                  let w = ctx.getf (elem d.input2_va wi) in
                  acc := !acc +. (v *. w)
                end
              done
          done
        done;
        let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
        ctx.setf (elem d.output_va (out_idx oc oy ox)) r
      done
    done
  done

let depthwise ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  if p.in_c <> p.out_c then fail "depthwise needs in_c = out_c";
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  for c = 0 to p.out_c - 1 do
    let bias = if Int64.equal d.bias_va 0L then 0.0 else ctx.getf (elem d.bias_va c) in
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let acc = ref bias in
        for ky = 0 to p.kh - 1 do
          let iy = (oy * p.stride) + ky - p.pad in
          if iy >= 0 && iy < p.in_h then
            for kx = 0 to p.kw - 1 do
              let ix = (ox * p.stride) + kx - p.pad in
              if ix >= 0 && ix < p.in_w then begin
                let wi = (((c * p.kh) + ky) * p.kw) + kx in
                acc :=
                  !acc +. (ctx.getf (elem d.input_va (in_idx c iy ix)) *. ctx.getf (elem d.input2_va wi))
              end
            done
        done;
        let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
        ctx.setf (elem d.output_va (out_idx c oy ox)) r
      done
    done
  done

let fc ctx (d : Job_desc.t) =
  let p = d.params in
  let in_n = p.in_c * p.in_h * p.in_w in
  let out_n = p.out_c in
  if in_n <= 0 || out_n <= 0 then fail "fc: empty shape";
  let first, count = partition_range ~total:out_n ~part_idx:p.part_idx ~part_count:p.part_count in
  for o = first to first + count - 1 do
    let acc = ref (if Int64.equal d.bias_va 0L then 0.0 else ctx.getf (elem d.bias_va o)) in
    for i = 0 to in_n - 1 do
      acc := !acc +. (ctx.getf (elem d.input_va i) *. ctx.getf (elem d.input2_va ((o * in_n) + i)))
    done;
    let r = if p.relu && !acc < 0.0 then 0.0 else !acc in
    ctx.setf (elem d.output_va o) r
  done

let maxpool ctx (d : Job_desc.t) =
  let p = d.params in
  check_conv_geometry p;
  if p.in_c <> p.out_c then fail "maxpool needs in_c = out_c";
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  let out_idx = chw ~h:p.out_h ~w:p.out_w in
  for c = 0 to p.out_c - 1 do
    for oy = 0 to p.out_h - 1 do
      for ox = 0 to p.out_w - 1 do
        let best = ref neg_infinity in
        for ky = 0 to p.kh - 1 do
          let iy = (oy * p.stride) + ky - p.pad in
          if iy >= 0 && iy < p.in_h then
            for kx = 0 to p.kw - 1 do
              let ix = (ox * p.stride) + kx - p.pad in
              if ix >= 0 && ix < p.in_w then begin
                let v = ctx.getf (elem d.input_va (in_idx c iy ix)) in
                if v > !best then best := v
              end
            done
        done;
        ctx.setf (elem d.output_va (out_idx c oy ox)) !best
      done
    done
  done

let avgpool_global ctx (d : Job_desc.t) =
  let p = d.params in
  if p.out_h <> 1 || p.out_w <> 1 || p.in_c <> p.out_c then fail "avgpool: expects global CxHxW -> Cx1x1";
  let n = p.in_h * p.in_w in
  let in_idx = chw ~h:p.in_h ~w:p.in_w in
  for c = 0 to p.in_c - 1 do
    let acc = ref 0.0 in
    for y = 0 to p.in_h - 1 do
      for x = 0 to p.in_w - 1 do
        acc := !acc +. ctx.getf (elem d.input_va (in_idx c y x))
      done
    done;
    ctx.setf (elem d.output_va c) (!acc /. float_of_int n)
  done

let flat_len (p : Job_desc.params) = p.out_c * p.out_h * p.out_w

let relu ctx (d : Job_desc.t) =
  for i = 0 to flat_len d.params - 1 do
    let v = ctx.getf (elem d.input_va i) in
    ctx.setf (elem d.output_va i) (if v < 0.0 then 0.0 else v)
  done

let copy ctx (d : Job_desc.t) =
  for i = 0 to flat_len d.params - 1 do
    ctx.setf (elem d.output_va i) (ctx.getf (elem d.input_va i))
  done

let add ctx (d : Job_desc.t) =
  let p = d.params in
  for i = 0 to flat_len p - 1 do
    let v = ctx.getf (elem d.input_va i) +. ctx.getf (elem d.input2_va i) in
    ctx.setf (elem d.output_va i) (if p.relu && v < 0.0 then 0.0 else v)
  done

let unary_elementwise f ctx (d : Job_desc.t) =
  for i = 0 to flat_len d.params - 1 do
    ctx.setf (elem d.output_va i) (f (ctx.getf (elem d.input_va i)))
  done

let mul ctx (d : Job_desc.t) =
  for i = 0 to flat_len d.params - 1 do
    ctx.setf (elem d.output_va i)
      (ctx.getf (elem d.input_va i) *. ctx.getf (elem d.input2_va i))
  done

let concat2 ctx (d : Job_desc.t) =
  let p = d.params in
  if p.in_c + p.in2_c <> p.out_c then fail "concat2: channel mismatch";
  if p.in_h <> p.out_h || p.in_w <> p.out_w then fail "concat2: spatial mismatch";
  let plane = p.out_h * p.out_w in
  for i = 0 to (p.in_c * plane) - 1 do
    ctx.setf (elem d.output_va i) (ctx.getf (elem d.input_va i))
  done;
  let off = p.in_c * plane in
  for i = 0 to (p.in2_c * plane) - 1 do
    ctx.setf (elem d.output_va (off + i)) (ctx.getf (elem d.input2_va i))
  done

let softmax ctx (d : Job_desc.t) =
  let p = d.params in
  let n = p.in_c * p.in_h * p.in_w in
  if n <= 0 then fail "softmax: empty";
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = ctx.getf (elem d.input_va i) in
    if v > !m then m := v
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    let e = exp (ctx.getf (elem d.input_va i) -. !m) in
    ctx.setf (elem d.output_va i) e;
    sum := !sum +. e
  done;
  for i = 0 to n - 1 do
    ctx.setf (elem d.output_va i) (ctx.getf (elem d.output_va i) /. !sum)
  done

let execute ctx (d : Job_desc.t) =
  match d.op with
  | Shader.Conv2d -> conv2d ctx d
  | Shader.Depthwise -> depthwise ctx d
  | Shader.Fc -> fc ctx d
  | Shader.Maxpool -> maxpool ctx d
  | Shader.Avgpool -> avgpool_global ctx d
  | Shader.Relu -> relu ctx d
  | Shader.Copy -> copy ctx d
  | Shader.Add -> add ctx d
  | Shader.Concat2 -> concat2 ctx d
  | Shader.Softmax -> softmax ctx d
  | Shader.Tanh -> unary_elementwise tanh ctx d
  | Shader.Sigmoid -> unary_elementwise (fun x -> 1.0 /. (1.0 +. exp (-.x))) ctx d
  | Shader.Mul -> mul ctx d

let flops op (p : Job_desc.params) =
  let i64 = Int64.of_int in
  let out_plane = p.out_h * p.out_w in
  match op with
  | Shader.Conv2d ->
    let _, n_oc = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
    i64 (2 * n_oc * out_plane * p.in_c * p.kh * p.kw)
  | Shader.Depthwise -> i64 (2 * p.out_c * out_plane * p.kh * p.kw)
  | Shader.Fc ->
    let in_n = p.in_c * p.in_h * p.in_w in
    let _, count = partition_range ~total:p.out_c ~part_idx:p.part_idx ~part_count:p.part_count in
    i64 (2 * count * in_n)
  | Shader.Maxpool -> i64 (p.out_c * out_plane * p.kh * p.kw)
  | Shader.Avgpool -> i64 (p.in_c * p.in_h * p.in_w)
  | Shader.Relu | Shader.Copy -> i64 (p.out_c * out_plane)
  | Shader.Add | Shader.Mul -> i64 (2 * p.out_c * out_plane)
  | Shader.Tanh | Shader.Sigmoid -> i64 (8 * p.out_c * out_plane)
  | Shader.Concat2 -> i64 (p.out_c * out_plane)
  | Shader.Softmax -> i64 (4 * p.in_c * p.in_h * p.in_w)
