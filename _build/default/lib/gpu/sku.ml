type pt_format = Lpae_v7 | Lpae_v8

type t = {
  name : string;
  gpu_id : int64;
  shader_cores : int;
  tiler_units : int;
  l2_slices : int;
  address_spaces : int;
  clock_mhz : int;
  flops_scale : float;
  pt_format : pt_format;
  quirk_shader_config : int64;
  quirk_mmu_config : int64;
  needs_snoop_disparity : bool;
  power_up_us : int;
  reset_us : int;
}

let g71_mp8 =
  {
    name = "Mali-G71 MP8";
    gpu_id = 0x6000_0101L;
    shader_cores = 8;
    tiler_units = 1;
    l2_slices = 2;
    address_spaces = 8;
    clock_mhz = 850;
    flops_scale = 1.0;
    pt_format = Lpae_v7;
    quirk_shader_config = 0x0000_0040L;
    quirk_mmu_config = 0x0000_0008L;
    needs_snoop_disparity = true;
    power_up_us = 120;
    reset_us = 350;
  }

let g52_mp4 =
  {
    name = "Mali-G52 MP4";
    gpu_id = 0x7402_0000L;
    shader_cores = 4;
    tiler_units = 1;
    l2_slices = 1;
    address_spaces = 8;
    clock_mhz = 950;
    flops_scale = 0.62;
    pt_format = Lpae_v8;
    quirk_shader_config = 0x0000_0040L;
    quirk_mmu_config = 0x0000_0000L;
    needs_snoop_disparity = false;
    power_up_us = 90;
    reset_us = 280;
  }

let g31_mp2 =
  {
    name = "Mali-G31 MP2";
    gpu_id = 0x7003_0000L;
    shader_cores = 2;
    tiler_units = 1;
    l2_slices = 1;
    address_spaces = 4;
    clock_mhz = 650;
    flops_scale = 0.21;
    pt_format = Lpae_v8;
    quirk_shader_config = 0x0000_0000L;
    quirk_mmu_config = 0x0000_0000L;
    needs_snoop_disparity = false;
    power_up_us = 70;
    reset_us = 220;
  }

let g76_mp12 =
  {
    name = "Mali-G76 MP12";
    gpu_id = 0x7201_0011L;
    shader_cores = 12;
    tiler_units = 1;
    l2_slices = 4;
    address_spaces = 8;
    clock_mhz = 800;
    flops_scale = 2.4;
    pt_format = Lpae_v8;
    quirk_shader_config = 0x0000_0400L;
    quirk_mmu_config = 0x0000_0008L;
    needs_snoop_disparity = true;
    power_up_us = 150;
    reset_us = 400;
  }

let g72_mp12 =
  {
    name = "Mali-G72 MP12";
    gpu_id = 0x6221_0030L;
    shader_cores = 12;
    tiler_units = 1;
    l2_slices = 2;
    address_spaces = 8;
    clock_mhz = 850;
    flops_scale = 1.7;
    pt_format = Lpae_v7;
    quirk_shader_config = 0x0000_0040L;
    quirk_mmu_config = 0x0000_0008L;
    needs_snoop_disparity = true;
    power_up_us = 130;
    reset_us = 360;
  }

let all = [ g71_mp8; g52_mp4; g31_mp2; g76_mp12; g72_mp12 ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

let mask_of_count n = Int64.sub (Int64.shift_left 1L n) 1L

let shader_present_mask t = mask_of_count t.shader_cores
let tiler_present_mask t = mask_of_count t.tiler_units
let l2_present_mask t = mask_of_count t.l2_slices

let flops_per_s t = Grt_sim.Costs.gpu_flops_per_s *. t.flops_scale

let equal_id a b = Int64.equal a.gpu_id b.gpu_id

let pp ppf t =
  Format.fprintf ppf "%s (id=%08Lx, %d cores, %d MHz)" t.name t.gpu_id t.shader_cores t.clock_mhz

let find_by_id gpu_id = List.find_opt (fun s -> Int64.equal s.gpu_id gpu_id) all
