(** Compute kernels — the numerics the shader cores perform.

    Tensors are FP32 in CHW layout at GPU virtual addresses. Kernels see
    memory only through the access callbacks the device provides (which
    perform MMU translation), exactly as real shader cores do. Output-channel
    partitioning ([part_idx]/[part_count]) lets the runtime split one logical
    operator across several GPU jobs. *)

exception Kernel_fault of string

type ctx = {
  getf : int64 -> float;  (** read an FP32 at a GPU VA *)
  setf : int64 -> float -> unit;  (** write an FP32 at a GPU VA *)
}

val execute : ctx -> Job_desc.t -> unit
(** Run the job's operator. Raises {!Kernel_fault} on inconsistent shapes. *)

val partition_range : total:int -> part_idx:int -> part_count:int -> int * int
(** [(first, count)] of the slice a partition covers; partitions differ by at
    most one element and tile the whole range. *)

val flops : Shader.op -> Job_desc.params -> int64
(** Analytic FLOP count of a job at the shapes given — used both by the
    runtime to stamp [flops_hint] at model scale and by tests. *)
