lib/gpu/kernels.mli: Job_desc Shader
