lib/gpu/mem.mli:
