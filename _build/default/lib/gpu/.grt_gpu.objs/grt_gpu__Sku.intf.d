lib/gpu/sku.mli: Format
