lib/gpu/mmu.mli: Format Mem Sku
