lib/gpu/device.ml: Array Format Grt_sim Hashtbl Int64 Job_desc Kernels List Mem Mmu Option Printf Regs Shader Sku
