lib/gpu/shader.ml: Bytes Grt_util Int64 Sku
