lib/gpu/sku.ml: Format Grt_sim Int64 List String
