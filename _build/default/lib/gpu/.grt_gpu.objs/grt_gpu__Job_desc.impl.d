lib/gpu/job_desc.ml: Array Int64 Mem Shader
