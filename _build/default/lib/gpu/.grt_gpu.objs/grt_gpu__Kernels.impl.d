lib/gpu/kernels.ml: Int64 Job_desc Printf Shader
