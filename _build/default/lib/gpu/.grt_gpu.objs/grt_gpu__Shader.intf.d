lib/gpu/shader.mli: Sku
