lib/gpu/regs.ml: List Printf
