lib/gpu/mmu.ml: Format Int64 List Mem Printf Sku
