lib/gpu/mem.ml: Bytes Char Hashtbl Int32 Int64 List
