lib/gpu/device.mli: Format Grt_sim Mem Regs Sku
