lib/gpu/job_desc.mli: Mem Shader
