lib/gpu/regs.mli:
