module Session = Grt_runtime.Session
module Job_desc = Grt_gpu.Job_desc
module Shader = Grt_gpu.Shader

type t = {
  plan : Network.plan;
  session : Session.t;
  mutable regions : (string * Session.region) list;
}

let plan t = t.plan
let session t = t.session

let region t name =
  match List.assoc_opt name t.regions with
  | Some r -> r
  | None -> raise Not_found

let job_fan_in (j : Network.job_spec) =
  let p = j.Network.mat in
  match j.Network.op with
  | Shader.Conv2d -> p.Job_desc.in_c * p.Job_desc.kh * p.Job_desc.kw
  | Shader.Depthwise -> p.Job_desc.kh * p.Job_desc.kw
  | Shader.Fc -> p.Job_desc.in_c * p.Job_desc.in_h * p.Job_desc.in_w
  | _ -> 1

let weight_values plan ~seed =
  let rng = Grt_util.Rng.create ~seed in
  List.filter_map
    (fun (b : Network.buffer_spec) ->
      if b.Network.busage <> Session.Weights then None
      else begin
        let n = b.Network.actual_bytes / 4 in
        let is_bias = String.length b.Network.bname > 0 && b.Network.bname.[0] = 'b' in
        let fan_in =
          if is_bias then 1
          else
            (* Find the consuming job to derive fan-in for scaling. *)
            match
              List.find_opt (fun j -> j.Network.input2 = Some b.Network.bname) plan.Network.jobs
            with
            | Some j -> max 1 (job_fan_in j)
            | None -> 1
        in
        let a = if is_bias then 0.01 else sqrt (3.0 /. float_of_int fan_in) in
        let values =
          Array.init n (fun _ -> (Grt_util.Rng.float rng (2.0 *. a)) -. a)
        in
        Some (b.Network.bname, values)
      end)
    plan.Network.buffers

let input_values plan ~seed =
  let rng = Grt_util.Rng.create ~seed:(Int64.add seed 0x1234L) in
  let n = Network.elems plan.Network.mat_input in
  Array.init n (fun _ -> Grt_util.Rng.float rng 1.0)

let setup ~session ~plan ~seed ~load_weights =
  let t = { plan; session; regions = [] } in
  List.iter
    (fun (b : Network.buffer_spec) ->
      let r =
        Session.alloc session ~name:b.Network.bname ~usage:b.Network.busage
          ~model_bytes:b.Network.model_bytes ~actual_bytes:b.Network.actual_bytes
      in
      t.regions <- (b.Network.bname, r) :: t.regions)
    plan.Network.buffers;
  if load_weights then
    List.iter
      (fun (name, values) -> Session.write_floats session (region t name) values)
      (weight_values plan ~seed);
  t

let set_input t values = Session.write_floats t.session (region t t.plan.Network.input_buffer) values

let get_output t =
  Session.read_floats t.session
    (region t t.plan.Network.output_buffer)
    (Network.elems t.plan.Network.mat_output)

let desc_of_job t (j : Network.job_spec) =
  let va name = (region t name).Session.va in
  {
    Job_desc.op = j.Network.op;
    shader_va = 0L (* filled from the JIT cache by build_chain *);
    input_va = va j.Network.input;
    input2_va = (match j.Network.input2 with Some n -> va n | None -> 0L);
    bias_va = (match j.Network.bias with Some n -> va n | None -> 0L);
    output_va = va j.Network.output;
    params = j.Network.mat;
    next_va = 0L;
  }

let submit_job t j =
  let chain_va = Session.build_chain t.session [ desc_of_job t j ] in
  Session.submit t.session ~chain_va

let run ?between_layers t =
  let last_layer = ref (-1) in
  List.iter
    (fun (j : Network.job_spec) ->
      (match between_layers with
      | Some f when !last_layer >= 0 && j.Network.layer <> !last_layer ->
        f ~prev:!last_layer ~next:j.Network.layer
      | _ -> ());
      last_layer := j.Network.layer;
      submit_job t j)
    t.plan.Network.jobs

let run_one t i =
  match List.nth_opt t.plan.Network.jobs i with
  | Some j -> submit_job t j
  | None -> invalid_arg "Runner.run_one: job index out of range"
