lib/mlfw/runner.mli: Grt_runtime Network
