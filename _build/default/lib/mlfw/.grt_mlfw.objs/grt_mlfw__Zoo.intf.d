lib/mlfw/zoo.mli: Network
