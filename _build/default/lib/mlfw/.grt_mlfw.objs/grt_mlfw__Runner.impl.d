lib/mlfw/runner.ml: Array Grt_gpu Grt_runtime Grt_util Int64 List Network String
