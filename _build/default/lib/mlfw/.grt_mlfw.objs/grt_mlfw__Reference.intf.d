lib/mlfw/reference.mli: Network
