lib/mlfw/network.ml: Array Format Grt_gpu Grt_runtime Int64 List Option Printf
