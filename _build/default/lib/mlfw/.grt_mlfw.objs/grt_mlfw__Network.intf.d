lib/mlfw/network.mli: Format Grt_gpu Grt_runtime
