lib/mlfw/zoo.ml: Array Builder List Network String
