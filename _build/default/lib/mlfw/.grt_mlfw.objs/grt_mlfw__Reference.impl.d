lib/mlfw/reference.ml: Array Grt_gpu Int64 List Network
