open Network

let shape c h w = { c; h; w }

let mnist =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 6; k = 5; s = 1; p = 0; relu = true; parts = 4 }) in
  let _ = Builder.add b (Maxpool { k = 2; s = 2 }) in
  let _ = Builder.add b (Conv { oc = 16; k = 5; s = 1; p = 0; relu = true; parts = 6 }) in
  let _ = Builder.add b (Maxpool { k = 2; s = 2 }) in
  let _ = Builder.add b (Fc { out = 120; relu = true; parts = 4 }) in
  let _ = Builder.add b (Fc { out = 84; relu = true; parts = 3 }) in
  let _ = Builder.add b (Fc { out = 10; relu = false; parts = 2 }) in
  let _ = Builder.add b Softmax in
  {
    name = "MNIST";
    model_input = shape 1 28 28;
    mat_input = shape 1 28 28;
    nodes = Builder.nodes b;
  }

let alexnet =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 96; k = 11; s = 4; p = 2; relu = true; parts = 6 }) in
  let _ = Builder.add b (Maxpool { k = 3; s = 2 }) in
  let _ = Builder.add b (Conv { oc = 256; k = 5; s = 1; p = 2; relu = true; parts = 8 }) in
  let _ = Builder.add b (Maxpool { k = 3; s = 2 }) in
  let _ = Builder.add b (Conv { oc = 384; k = 3; s = 1; p = 1; relu = true; parts = 8 }) in
  let _ = Builder.add b (Conv { oc = 384; k = 3; s = 1; p = 1; relu = true; parts = 8 }) in
  let _ = Builder.add b (Conv { oc = 256; k = 3; s = 1; p = 1; relu = true; parts = 8 }) in
  let _ = Builder.add b (Maxpool { k = 3; s = 2 }) in
  let _ = Builder.add b (Fc { out = 4096; relu = true; parts = 6 }) in
  let _ = Builder.add b (Fc { out = 4096; relu = true; parts = 6 }) in
  let _ = Builder.add b (Fc { out = 1000; relu = false; parts = 5 }) in
  let _ = Builder.add b Softmax in
  {
    name = "AlexNet";
    model_input = shape 3 224 224;
    mat_input = shape 3 32 32;
    nodes = Builder.nodes b;
  }

let mobilenet =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 32; k = 3; s = 2; p = 1; relu = true; parts = 2 }) in
  let block ~stride ~oc =
    let _ = Builder.add b (Depthwise { k = 3; s = stride; p = 1; relu = true }) in
    let _ = Builder.add b (Conv { oc; k = 1; s = 1; p = 0; relu = true; parts = 6 }) in
    ()
  in
  block ~stride:1 ~oc:64;
  block ~stride:2 ~oc:128;
  block ~stride:1 ~oc:128;
  block ~stride:2 ~oc:256;
  block ~stride:1 ~oc:256;
  block ~stride:2 ~oc:512;
  for _ = 1 to 5 do
    block ~stride:1 ~oc:512
  done;
  block ~stride:2 ~oc:1024;
  block ~stride:1 ~oc:1024;
  let _ = Builder.add b Avgpool_global in
  let _ = Builder.add b (Fc { out = 1000; relu = false; parts = 8 }) in
  let _ = Builder.add b Softmax in
  {
    name = "MobileNet";
    model_input = shape 3 224 224;
    mat_input = shape 3 32 32;
    nodes = Builder.nodes b;
  }

let squeezenet =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 96; k = 7; s = 2; p = 0; relu = true; parts = 4 }) in
  let _ = Builder.add b (Maxpool { k = 3; s = 2 }) in
  let fire ~squeeze ~expand =
    let s = Builder.add b (Conv { oc = squeeze; k = 1; s = 1; p = 0; relu = true; parts = 2 }) in
    let e1 =
      Builder.add b ~from:s (Conv { oc = expand; k = 1; s = 1; p = 0; relu = true; parts = 3 })
    in
    let e3 =
      Builder.add b ~from:s (Conv { oc = expand; k = 3; s = 1; p = 1; relu = true; parts = 3 })
    in
    Builder.add b ~from:e1 (Concat { other = e3 })
  in
  let _ = fire ~squeeze:16 ~expand:64 in
  let _ = fire ~squeeze:16 ~expand:64 in
  let f4 = fire ~squeeze:32 ~expand:128 in
  let _ = Builder.add b ~from:f4 (Maxpool { k = 3; s = 2 }) in
  let _ = fire ~squeeze:32 ~expand:128 in
  let _ = fire ~squeeze:48 ~expand:192 in
  let _ = fire ~squeeze:48 ~expand:192 in
  let f8 = fire ~squeeze:64 ~expand:256 in
  let _ = Builder.add b ~from:f8 (Maxpool { k = 3; s = 2 }) in
  let _ = fire ~squeeze:64 ~expand:256 in
  let _ = Builder.add b (Conv { oc = 1000; k = 1; s = 1; p = 0; relu = true; parts = 16 }) in
  let _ = Builder.add b Avgpool_global in
  let _ = Builder.add b Softmax in
  {
    name = "SqueezeNet";
    model_input = shape 3 224 224;
    mat_input = shape 3 32 32;
    nodes = Builder.nodes b;
  }

let resnet12 =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 64; k = 3; s = 1; p = 1; relu = true; parts = 6 }) in
  let _ = Builder.add b (Maxpool { k = 2; s = 2 }) in
  for _ = 1 to 5 do
    let entry = Builder.nodes b |> Array.length in
    let x = entry - 1 in
    let _ = Builder.add b (Conv { oc = 64; k = 3; s = 1; p = 1; relu = true; parts = 8 }) in
    let _ = Builder.add b (Conv { oc = 64; k = 3; s = 1; p = 1; relu = false; parts = 8 }) in
    let _ = Builder.add b (Add { other = x }) in
    let _ = Builder.add b Relu_layer in
    ()
  done;
  let _ = Builder.add b Avgpool_global in
  let _ = Builder.add b (Fc { out = 128; relu = true; parts = 10 }) in
  let _ = Builder.add b (Fc { out = 10; relu = false; parts = 1 }) in
  let _ = Builder.add b Softmax in
  {
    name = "ResNet12";
    model_input = shape 3 64 64;
    mat_input = shape 3 16 16;
    nodes = Builder.nodes b;
  }

let vgg16 =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let conv oc parts = ignore (Builder.add b (Conv { oc; k = 3; s = 1; p = 1; relu = true; parts })) in
  let pool () = ignore (Builder.add b (Maxpool { k = 2; s = 2 })) in
  conv 64 4;
  conv 64 4;
  pool ();
  conv 128 5;
  conv 128 5;
  pool ();
  conv 256 6;
  conv 256 6;
  conv 256 6;
  pool ();
  conv 512 7;
  conv 512 7;
  conv 512 7;
  pool ();
  conv 512 7;
  conv 512 7;
  conv 512 7;
  pool ();
  let _ = Builder.add b (Fc { out = 4096; relu = true; parts = 4 }) in
  let _ = Builder.add b (Fc { out = 4096; relu = true; parts = 4 }) in
  let _ = Builder.add b (Fc { out = 1000; relu = false; parts = 3 }) in
  let _ = Builder.add b Softmax in
  {
    name = "VGG16";
    model_input = shape 3 224 224;
    mat_input = shape 3 32 32;
    nodes = Builder.nodes b;
  }

(* Extension workload: an unrolled gated recurrent unit over feature maps,
   h' = h + sigmoid(conv(h)) * tanh(conv(h)) — a static graph of
   sigmoid/tanh gates and elementwise products, the RNN-shaped case of
   §2.3. *)
let gatednet =
  let b = Builder.create () in
  let _ = Builder.add b ~from:(-1) Stage_input in
  let _ = Builder.add b (Conv { oc = 32; k = 3; s = 1; p = 1; relu = true; parts = 2 }) in
  let _ = Builder.add b (Maxpool { k = 2; s = 2 }) in
  for _ = 1 to 4 do
    let h = Array.length (Builder.nodes b) - 1 in
    let zc = Builder.add b ~from:h (Conv { oc = 32; k = 3; s = 1; p = 1; relu = false; parts = 3 }) in
    let z = Builder.add b ~from:zc Sigmoid_layer in
    let cc = Builder.add b ~from:h (Conv { oc = 32; k = 3; s = 1; p = 1; relu = false; parts = 3 }) in
    let c = Builder.add b ~from:cc Tanh_layer in
    let g = Builder.add b ~from:z (Mul { other = c }) in
    let _ = Builder.add b ~from:g (Add { other = h }) in
    ()
  done;
  let _ = Builder.add b Avgpool_global in
  let _ = Builder.add b (Fc { out = 10; relu = false; parts = 2 }) in
  let _ = Builder.add b Softmax in
  {
    name = "GatedNet";
    model_input = shape 3 64 64;
    mat_input = shape 3 16 16;
    nodes = Builder.nodes b;
  }

let all = [ mnist; alexnet; mobilenet; squeezenet; resnet12; vgg16 ]

let all_with_extensions = all @ [ gatednet ]

let find name = List.find_opt (fun n -> String.equal n.name name) all_with_extensions

let paper_job_count net =
  match net.name with
  | "MNIST" -> 23
  | "AlexNet" -> 60
  | "MobileNet" -> 104
  | "SqueezeNet" -> 98
  | "ResNet12" -> 111
  | "VGG16" -> 96
  | _ -> job_count net
