(** Network descriptions and their expansion into GPU job plans.

    A network is a DAG of layers over CHW tensors. Layers carry *model*
    (paper-scale) shapes; expansion derives *materialized* shapes — a small
    prefix the simulator actually computes — and splits heavy operators into
    several GPU jobs by output-channel partitioning, the way a mobile runtime
    tiles work across shader cores. Per-job model-scale FLOPs and buffer
    sizes drive the timing/traffic model; materialized shapes drive real
    numerics. *)

type shape = { c : int; h : int; w : int }

val elems : shape -> int
val shape_bytes : shape -> int
val pp_shape : Format.formatter -> shape -> unit

type spec =
  | Stage_input
  | Conv of { oc : int; k : int; s : int; p : int; relu : bool; parts : int }
  | Depthwise of { k : int; s : int; p : int; relu : bool }
  | Maxpool of { k : int; s : int }
  | Avgpool_global
  | Fc of { out : int; relu : bool; parts : int }
  | Relu_layer
  | Tanh_layer
  | Sigmoid_layer
  | Add of { other : int }  (** residual add with layer [other]'s output *)
  | Mul of { other : int }  (** elementwise gate with layer [other]'s output *)
  | Concat of { other : int }  (** channel concat with layer [other]'s output *)
  | Softmax

type node = { spec : spec; from : int }
(** [from] is the producing layer index ([-1] = network input). *)

type t = {
  name : string;
  model_input : shape;
  mat_input : shape;
  nodes : node array;
}

(** Builder for wiring DAGs without hand-counting indices. *)
module Builder : sig
  type b

  val create : unit -> b
  val add : b -> ?from:int -> spec -> int
  (** Append a node consuming [from] (default: the previous node's output)
      and return its layer index. *)

  val nodes : b -> node array
end

val job_count : t -> int
(** Number of GPU jobs the network expands to. *)

(** Expanded execution plan. *)

type buffer_spec = {
  bname : string;
  busage : Grt_runtime.Session.usage;
  model_bytes : int;
  actual_bytes : int;
}

type job_spec = {
  jname : string;
  op : Grt_gpu.Shader.op;
  layer : int;
  input : string;
  input2 : string option;
  bias : string option;
  output : string;
  mat : Grt_gpu.Job_desc.params;  (** materialized geometry; [flops_hint] is model-scale *)
}

type plan = {
  net : t;
  buffers : buffer_spec list;
  jobs : job_spec list;
  input_buffer : string;
  output_buffer : string;
  mat_input : shape;
  mat_output : shape;
  weight_buffers : string list;  (** names of weight/bias buffers, in layer order *)
}

val expand : t -> plan
(** Raises [Invalid_argument] on malformed networks (bad wiring, shapes that
    collapse to zero). *)

val model_flops : plan -> int64
(** Total model-scale FLOPs over all jobs. *)

val model_weight_bytes : plan -> int
(** Total model-scale bytes of weight/bias buffers. *)
