(** Executes a network plan on a GPU session.

    One GPU job per submission: the driver's job queue length is pinned to 1
    (§5), so each of the plan's jobs becomes its own descriptor chain and
    [run] submits them strictly in order — the deterministic, serialized
    execution the recorder relies on (§2.3). *)

type t

val setup :
  session:Grt_runtime.Session.t ->
  plan:Network.plan ->
  seed:int64 ->
  load_weights:bool ->
  t
(** Allocate every buffer of the plan in the session's address space and,
    when [load_weights] (native execution), write the deterministic weight
    values into GPU memory. During a record run the weights stay zero —
    GR-T's dry run never sees model parameters (§7.1). *)

val plan : t -> Network.plan
val session : t -> Grt_runtime.Session.t
val region : t -> string -> Grt_runtime.Session.region
(** Raises [Not_found] for unknown buffer names. *)

val weight_values : Network.plan -> seed:int64 -> (string * float array) list
(** The deterministic weights for a plan: fan-in-scaled uniforms. Exposed so
    the replayer (inside the TEE) can inject the same parameters the native
    run used. *)

val input_values : Network.plan -> seed:int64 -> float array

val set_input : t -> float array -> unit
val get_output : t -> float array

val run : ?between_layers:(prev:int -> next:int -> unit) -> t -> unit
(** Build and submit every job chain in order. [between_layers] fires at
    every layer boundary — the hook the recorder uses to cut per-layer
    recording segments (Figure 2). *)

val run_one : t -> int -> unit
(** Build and submit only job [i] (for tests). *)
