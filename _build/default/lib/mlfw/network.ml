module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Kernels = Grt_gpu.Kernels
module Session = Grt_runtime.Session

type shape = { c : int; h : int; w : int }

let elems s = s.c * s.h * s.w
let shape_bytes s = 4 * elems s
let pp_shape ppf s = Format.fprintf ppf "%dx%dx%d" s.c s.h s.w

type spec =
  | Stage_input
  | Conv of { oc : int; k : int; s : int; p : int; relu : bool; parts : int }
  | Depthwise of { k : int; s : int; p : int; relu : bool }
  | Maxpool of { k : int; s : int }
  | Avgpool_global
  | Fc of { out : int; relu : bool; parts : int }
  | Relu_layer
  | Tanh_layer
  | Sigmoid_layer
  | Add of { other : int }
  | Mul of { other : int }
  | Concat of { other : int }
  | Softmax

type node = { spec : spec; from : int }

type t = {
  name : string;
  model_input : shape;
  mat_input : shape;
  nodes : node array;
}

module Builder = struct
  type b = { mutable rev_nodes : node list; mutable count : int }

  let create () = { rev_nodes = []; count = 0 }

  let add b ?from spec =
    let from = match from with Some f -> f | None -> b.count - 1 in
    if from < -1 || from >= b.count then invalid_arg "Builder.add: dangling from";
    b.rev_nodes <- { spec; from } :: b.rev_nodes;
    b.count <- b.count + 1;
    b.count - 1

  let nodes b = Array.of_list (List.rev b.rev_nodes)
end

let jobs_of_spec = function
  | Stage_input | Depthwise _ | Maxpool _ | Avgpool_global | Relu_layer | Tanh_layer
  | Sigmoid_layer | Add _ | Mul _ | Concat _ | Softmax ->
    1
  | Conv { parts; _ } | Fc { parts; _ } -> parts

let job_count t = Array.fold_left (fun acc n -> acc + jobs_of_spec n.spec) 0 t.nodes

(* ---- shape propagation ---- *)

let conv_out ~in_s ~oc ~k ~s ~p =
  let o d = ((d + (2 * p) - k) / s) + 1 in
  { c = oc; h = o in_s.h; w = o in_s.w }

let fail net fmt = Printf.ksprintf (fun m -> invalid_arg (net ^ ": " ^ m)) fmt

let model_out_shape net_name spec ~in_s ~other_s =
  match spec with
  | Stage_input | Relu_layer | Tanh_layer | Sigmoid_layer | Softmax -> in_s
  | Conv { oc; k; s; p; _ } ->
    let out = conv_out ~in_s ~oc ~k ~s ~p in
    if out.h <= 0 || out.w <= 0 then fail net_name "conv collapses to empty output";
    out
  | Depthwise { k; s; p; _ } ->
    let out = conv_out ~in_s ~oc:in_s.c ~k ~s ~p in
    if out.h <= 0 then fail net_name "depthwise collapses";
    out
  | Maxpool { k; s } ->
    let out = conv_out ~in_s ~oc:in_s.c ~k ~s ~p:0 in
    if out.h <= 0 then fail net_name "maxpool collapses";
    out
  | Avgpool_global -> { c = in_s.c; h = 1; w = 1 }
  | Fc { out; _ } -> { c = out; h = 1; w = 1 }
  | Add _ | Mul _ -> (
    match other_s with
    | Some o when o = in_s -> in_s
    | Some _ -> fail net_name "elementwise combine over mismatched shapes"
    | None -> assert false)
  | Concat _ -> (
    match other_s with
    | Some o when o.h = in_s.h && o.w = in_s.w -> { c = in_s.c + o.c; h = in_s.h; w = in_s.w }
    | Some _ -> fail net_name "concat over mismatched spatial dims"
    | None -> assert false)

(* Materialized channel count: keep tensors tiny but never smaller than the
   partition fan-out. *)
let mat_channels ~model ~parts = min model (max 8 parts)

(* Clamp a kernel so the materialized spatial extent never collapses. *)
let clamp_k ~k ~dim ~p = min k (dim + (2 * p))

let mat_out_shape spec ~mat_in ~other_mat =
  match spec with
  | Stage_input | Relu_layer | Tanh_layer | Sigmoid_layer | Softmax -> mat_in
  | Conv { oc; k; s; p; parts; _ } ->
    let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p in
    conv_out ~in_s:mat_in ~oc:(mat_channels ~model:oc ~parts) ~k:mk ~s ~p
  | Depthwise { k; s; p; _ } ->
    let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p in
    conv_out ~in_s:mat_in ~oc:mat_in.c ~k:mk ~s ~p
  | Maxpool { k; s } ->
    let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p:0 in
    conv_out ~in_s:mat_in ~oc:mat_in.c ~k:mk ~s ~p:0
  | Avgpool_global -> { c = mat_in.c; h = 1; w = 1 }
  | Fc { out; parts; _ } -> { c = mat_channels ~model:out ~parts; h = 1; w = 1 }
  | Add _ | Mul _ -> mat_in
  | Concat _ -> (
    match other_mat with
    | Some o -> { c = mat_in.c + o.c; h = mat_in.h; w = mat_in.w }
    | None -> assert false)

(* ---- plan ---- *)

type buffer_spec = {
  bname : string;
  busage : Session.usage;
  model_bytes : int;
  actual_bytes : int;
}

type job_spec = {
  jname : string;
  op : Shader.op;
  layer : int;
  input : string;
  input2 : string option;
  bias : string option;
  output : string;
  mat : Job_desc.params;
}

type plan = {
  net : t;
  buffers : buffer_spec list;
  jobs : job_spec list;
  input_buffer : string;
  output_buffer : string;
  mat_input : shape;
  mat_output : shape;
  weight_buffers : string list;
}

let base_params ~(mat_in : shape) ~(mat_out : shape) =
  {
    Job_desc.default_params with
    Job_desc.in_c = mat_in.c;
    in_h = mat_in.h;
    in_w = mat_in.w;
    out_c = mat_out.c;
    out_h = mat_out.h;
    out_w = mat_out.w;
  }

let op_of_spec = function
  | Stage_input -> Shader.Copy
  | Tanh_layer -> Shader.Tanh
  | Sigmoid_layer -> Shader.Sigmoid
  | Mul _ -> Shader.Mul
  | Conv _ -> Shader.Conv2d
  | Depthwise _ -> Shader.Depthwise
  | Maxpool _ -> Shader.Maxpool
  | Avgpool_global -> Shader.Avgpool
  | Fc _ -> Shader.Fc
  | Relu_layer -> Shader.Relu
  | Add _ -> Shader.Add
  | Concat _ -> Shader.Concat2
  | Softmax -> Shader.Softmax

let expand t =
  let n = Array.length t.nodes in
  if n = 0 then invalid_arg (t.name ^ ": empty network");
  let model_shapes = Array.make n t.model_input in
  let mat_shapes = Array.make n t.mat_input in
  let buffers = ref [] and jobs = ref [] and weight_names = ref [] in
  let add_buffer b = buffers := b :: !buffers in
  let act_name i = Printf.sprintf "act.%02d" i in
  let input_shape_of from arr = if from = -1 then None else Some arr.(from) in
  for i = 0 to n - 1 do
    let { spec; from } = t.nodes.(i) in
    if from >= i then invalid_arg (t.name ^ ": forward reference");
    let model_in = if from = -1 then t.model_input else model_shapes.(from) in
    let mat_in = if from = -1 then t.mat_input else mat_shapes.(from) in
    let other =
      match spec with
      | Add { other } | Mul { other } | Concat { other } ->
        if other < 0 || other >= i then invalid_arg (t.name ^ ": bad other reference");
        Some other
      | _ -> None
    in
    let other_model = Option.bind other (fun o -> input_shape_of o model_shapes) in
    let other_mat = Option.bind other (fun o -> input_shape_of o mat_shapes) in
    let model_out = model_out_shape t.name spec ~in_s:model_in ~other_s:other_model in
    let mat_out = mat_out_shape spec ~mat_in ~other_mat in
    model_shapes.(i) <- model_out;
    mat_shapes.(i) <- mat_out;
    (* Output activation buffer for this layer. *)
    let usage = if i = n - 1 then Session.Output else Session.Scratch in
    add_buffer
      {
        bname = act_name i;
        busage = usage;
        model_bytes = shape_bytes model_out;
        actual_bytes = shape_bytes mat_out;
      };
    let input_name = if from = -1 then "input" else act_name from in
    let op = op_of_spec spec in
    let emit ?(suffix = "") ?input2 ?bias mat =
      jobs :=
        {
          jname = Printf.sprintf "L%02d.%s%s" i (Shader.op_name op) suffix;
          op;
          layer = i;
          input = input_name;
          input2;
          bias;
          output = act_name i;
          mat;
        }
        :: !jobs
    in
    let weights ~model_bytes ~actual_bytes ~bias_n ~mat_bias_n =
      let w = Printf.sprintf "w.%02d" i and b = Printf.sprintf "b.%02d" i in
      add_buffer { bname = w; busage = Session.Weights; model_bytes; actual_bytes };
      add_buffer
        {
          bname = b;
          busage = Session.Weights;
          model_bytes = 4 * bias_n;
          actual_bytes = 4 * mat_bias_n;
        };
      weight_names := b :: w :: !weight_names;
      (w, b)
    in
    match spec with
    | Stage_input | Relu_layer | Tanh_layer | Sigmoid_layer | Softmax ->
      let p = base_params ~mat_in ~mat_out in
      emit { p with Job_desc.flops_hint = Kernels.flops op (base_params ~mat_in:model_in ~mat_out:model_out) }
    | Maxpool { k; s } ->
      let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p:0 in
      let p = { (base_params ~mat_in ~mat_out) with Job_desc.kh = mk; kw = mk; stride = s } in
      let model_p =
        { (base_params ~mat_in:model_in ~mat_out:model_out) with Job_desc.kh = k; kw = k; stride = s }
      in
      emit { p with Job_desc.flops_hint = Kernels.flops op model_p }
    | Avgpool_global ->
      let p = base_params ~mat_in ~mat_out in
      emit { p with Job_desc.flops_hint = Kernels.flops op (base_params ~mat_in:model_in ~mat_out:model_out) }
    | Add { other } ->
      (* Activation, when wanted, is an explicit Relu_layer after the add. *)
      let p = base_params ~mat_in ~mat_out in
      let model_p = base_params ~mat_in:model_in ~mat_out:model_out in
      emit ~input2:(act_name other) { p with Job_desc.flops_hint = Kernels.flops op model_p }
    | Mul { other } ->
      let p = base_params ~mat_in ~mat_out in
      let model_p = base_params ~mat_in:model_in ~mat_out:model_out in
      emit ~input2:(act_name other) { p with Job_desc.flops_hint = Kernels.flops op model_p }
    | Concat { other } ->
      let o_mat = Option.get other_mat and o_model = Option.get other_model in
      let p = { (base_params ~mat_in ~mat_out) with Job_desc.in2_c = o_mat.c } in
      let model_p =
        { (base_params ~mat_in:model_in ~mat_out:model_out) with Job_desc.in2_c = o_model.c }
      in
      emit ~input2:(act_name other) { p with Job_desc.flops_hint = Kernels.flops op model_p }
    | Depthwise { k; s; p = pad; relu } ->
      let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p:pad in
      let w, b =
        weights
          ~model_bytes:(4 * model_in.c * k * k)
          ~actual_bytes:(4 * mat_in.c * mk * mk)
          ~bias_n:model_in.c ~mat_bias_n:mat_in.c
      in
      let p =
        { (base_params ~mat_in ~mat_out) with Job_desc.kh = mk; kw = mk; stride = s; pad; relu }
      in
      let model_p =
        {
          (base_params ~mat_in:model_in ~mat_out:model_out) with
          Job_desc.kh = k;
          kw = k;
          stride = s;
          pad;
          relu;
        }
      in
      emit ~input2:w ~bias:b { p with Job_desc.flops_hint = Kernels.flops op model_p }
    | Conv { oc; k; s; p = pad; relu; parts } ->
      let mk = clamp_k ~k ~dim:(min mat_in.h mat_in.w) ~p:pad in
      let w, b =
        weights
          ~model_bytes:(4 * oc * model_in.c * k * k)
          ~actual_bytes:(4 * mat_out.c * mat_in.c * mk * mk)
          ~bias_n:oc ~mat_bias_n:mat_out.c
      in
      for part = 0 to parts - 1 do
        let p =
          {
            (base_params ~mat_in ~mat_out) with
            Job_desc.kh = mk;
            kw = mk;
            stride = s;
            pad;
            relu;
            part_idx = part;
            part_count = parts;
          }
        in
        let model_p =
          {
            (base_params ~mat_in:model_in ~mat_out:model_out) with
            Job_desc.kh = k;
            kw = k;
            stride = s;
            pad;
            relu;
            part_idx = part;
            part_count = parts;
          }
        in
        emit
          ~suffix:(Printf.sprintf ".%dof%d" (part + 1) parts)
          ~input2:w ~bias:b
          { p with Job_desc.flops_hint = Kernels.flops op model_p }
      done
    | Fc { out; relu; parts } ->
      let model_in_n = elems model_in and mat_in_n = elems mat_in in
      let w, b =
        weights
          ~model_bytes:(4 * out * model_in_n)
          ~actual_bytes:(4 * mat_out.c * mat_in_n)
          ~bias_n:out ~mat_bias_n:mat_out.c
      in
      for part = 0 to parts - 1 do
        let p =
          {
            (base_params ~mat_in ~mat_out) with
            Job_desc.relu;
            part_idx = part;
            part_count = parts;
          }
        in
        let model_p =
          {
            (base_params ~mat_in:model_in ~mat_out:model_out) with
            Job_desc.relu;
            part_idx = part;
            part_count = parts;
          }
        in
        emit
          ~suffix:(Printf.sprintf ".%dof%d" (part + 1) parts)
          ~input2:w ~bias:b
          { p with Job_desc.flops_hint = Kernels.flops op model_p }
      done
  done;
  let input_buffer = "input" in
  add_buffer
    {
      bname = input_buffer;
      busage = Session.Input;
      model_bytes = shape_bytes t.model_input;
      actual_bytes = shape_bytes t.mat_input;
    };
  {
    net = t;
    buffers = List.rev !buffers;
    jobs = List.rev !jobs;
    input_buffer;
    output_buffer = act_name (n - 1);
    mat_input = t.mat_input;
    mat_output = mat_shapes.(n - 1);
    weight_buffers = List.rev !weight_names;
  }

let model_flops plan =
  List.fold_left (fun acc j -> Int64.add acc j.mat.Job_desc.flops_hint) 0L plan.jobs

let model_weight_bytes plan =
  List.fold_left
    (fun acc b -> if b.busage = Session.Weights then acc + b.model_bytes else acc)
    0 plan.buffers
