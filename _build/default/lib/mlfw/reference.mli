(** CPU reference execution of a plan.

    Runs the same job specs over plain float arrays (no GPU, no MMU, no
    driver). Used to check that native GPU execution and in-TEE replay both
    produce exactly this output — the end-to-end correctness property of
    record/replay. *)

val run : Network.plan -> weights:(string * float array) list -> input:float array -> float array
(** Returns the final output activation (materialized shape). *)
