module Kernels = Grt_gpu.Kernels
module Job_desc = Grt_gpu.Job_desc

(* Buffers live in a synthetic flat address space: buffer [i] starts at
   [i * buf_stride] bytes, giving Kernels the same VA-based interface the GPU
   provides, backed by float arrays. *)

let buf_stride = 1 lsl 24

let run (plan : Network.plan) ~weights ~input =
  let names = List.mapi (fun i (b : Network.buffer_spec) -> (b.Network.bname, i)) plan.Network.buffers in
  let arrays =
    List.map
      (fun (b : Network.buffer_spec) -> Array.make (max 1 (b.Network.actual_bytes / 4)) 0.0)
      plan.Network.buffers
    |> Array.of_list
  in
  let index name =
    match List.assoc_opt name names with
    | Some i -> i
    | None -> invalid_arg ("Reference.run: unknown buffer " ^ name)
  in
  let va name = Int64.of_int (index name * buf_stride) in
  let locate a =
    let addr = Int64.to_int a in
    let buf = addr / buf_stride and off = (addr mod buf_stride) / 4 in
    (arrays.(buf), off)
  in
  let ctx =
    {
      Kernels.getf =
        (fun a ->
          let arr, off = locate a in
          if off < Array.length arr then arr.(off) else 0.0);
      Kernels.setf =
        (fun a v ->
          let arr, off = locate a in
          if off < Array.length arr then arr.(off) <- v);
    }
  in
  (* Load inputs and weights. *)
  let blit name values =
    let arr = arrays.(index name) in
    Array.iteri (fun i v -> if i < Array.length arr then arr.(i) <- v) values
  in
  blit plan.Network.input_buffer input;
  List.iter (fun (name, values) -> blit name values) weights;
  List.iter
    (fun (j : Network.job_spec) ->
      let desc =
        {
          Job_desc.op = j.Network.op;
          shader_va = 0L;
          input_va = va j.Network.input;
          input2_va = (match j.Network.input2 with Some n -> va n | None -> 0L);
          bias_va = (match j.Network.bias with Some n -> va n | None -> 0L);
          output_va = va j.Network.output;
          params = j.Network.mat;
          next_va = 0L;
        }
      in
      Kernels.execute ctx desc)
    plan.Network.jobs;
  Array.copy (arrays.(index plan.Network.output_buffer))
