(** The six neural networks the paper evaluates (Table 1).

    Model-scale shapes follow the classic architectures; materialized shapes
    are scaled-down prefixes (see [Network]). Each network expands to exactly
    the GPU job count Table 1 reports, which pins the register-traffic and
    memory-sync shapes of every experiment. *)

val mnist : Network.t
(** LeNet-style MNIST classifier — 23 GPU jobs. *)

val alexnet : Network.t
(** 60 GPU jobs. *)

val mobilenet : Network.t
(** MobileNet v1 — 104 GPU jobs. *)

val squeezenet : Network.t
(** SqueezeNet v1.0 — 98 GPU jobs. *)

val resnet12 : Network.t
(** A compact residual network (5 two-conv residual blocks) — 111 GPU
    jobs. *)

val vgg16 : Network.t
(** 96 GPU jobs. *)

val gatednet : Network.t
(** Extension workload (not in the paper's evaluation): an unrolled gated
    recurrent refinement network — sigmoid/tanh gates, elementwise products
    — demonstrating §2.3's claim that RNN-style static graphs record and
    replay exactly like CNNs. *)

val all : Network.t list
(** The paper's six, in Table 1 order. *)

val all_with_extensions : Network.t list
(** The paper's six plus the extension workloads. *)

val find : string -> Network.t option

val paper_job_count : Network.t -> int
(** The "# GPU jobs" column of Table 1. *)
