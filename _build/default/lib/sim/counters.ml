type t = (string, int64 ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t name =
  match Hashtbl.find_opt t name with
  | Some c -> c
  | None ->
    let c = ref 0L in
    Hashtbl.add t name c;
    c

let add64 t name v =
  let c = cell t name in
  c := Int64.add !c v

let add t name v = add64 t name (Int64.of_int v)

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with Some c -> !c | None -> 0L

let get_int t name = Int64.to_int (get t name)

let reset t = Hashtbl.reset t

let to_alist t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst ~src = List.iter (fun (k, v) -> add64 dst k v) (to_alist src)

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-40s %Ld@\n" k v) (to_alist t)
