(** Whole-client energy model (§7.4).

    The paper measures the HiKey960's power at the barrel jack while
    recording and replaying. We model the client as a set of power rails —
    SoC base, CPU busy, radio TX/RX, GPU busy — and integrate power over the
    virtual clock. Components toggle their rails as they work; energy is the
    integral of the sum of active rails. *)

type rail = Soc_base | Cpu_busy | Radio_tx | Radio_rx | Gpu_busy

val rail_power_w : rail -> float
(** Calibrated against small-board measurements: SoC base ~1.3 W, CPU busy
    adds ~1.6 W, WiFi TX ~0.9 W / RX ~0.7 W, GPU busy ~2.4 W. *)

type t

val create : Clock.t -> t
(** Attaches to the clock: every advance integrates the currently active
    rails. [Soc_base] is always active. *)

val set_active : t -> rail -> bool -> unit
val with_rail : t -> rail -> (unit -> 'a) -> 'a
(** Activates the rail for the duration of the callback (restores the
    previous state afterwards, exception-safe). *)

val charge_j : t -> rail -> float -> unit
(** Event-based charge: add [j] joules to a rail directly, without advancing
    the clock. Used for transfers whose duration is tracked elsewhere (e.g.
    asynchronous network sends overlapping computation). *)

val total_j : t -> float
(** Energy consumed since creation or last [reset], in joules. *)

val by_rail_j : t -> (rail * float) list
val reset : t -> unit
val pp_rail : Format.formatter -> rail -> unit
