type event = { at_ns : int64; topic : string; detail : string }

type t = {
  clock : Clock.t;
  ring : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) clock =
  { clock; ring = Array.make (max 1 capacity) None; next = 0; total = 0 }

let emit t ~topic detail =
  let e = { at_ns = Clock.now_ns t.clock; topic; detail } in
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let emitf t ~topic fmt = Format.kasprintf (fun s -> emit t ~topic s) fmt

let recent ?topic t n =
  let cap = Array.length t.ring in
  let matches e = match topic with None -> true | Some want -> String.equal e.topic want in
  let rec go i collected acc =
    if collected >= n || i >= cap then List.rev acc
    else
      let idx = (t.next - 1 - i + (2 * cap)) mod cap in
      match t.ring.(idx) with
      | Some e when matches e -> go (i + 1) (collected + 1) (e :: acc)
      | Some _ -> go (i + 1) collected acc
      | None -> List.rev acc
  in
  go 0 0 []

let count t = t.total

let pp_event ppf e =
  Format.fprintf ppf "[%8.3f ms] %-12s %s" (Int64.to_float e.at_ns *. 1e-6) e.topic e.detail
