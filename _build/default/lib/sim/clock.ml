type t = { mutable now : int64; mutable observers : (int64 -> int64 -> unit) list }

let create () = { now = 0L; observers = [] }

let now_ns t = t.now

let now_s t = Int64.to_float t.now *. 1e-9

let advance_ns t d =
  if Int64.compare d 0L < 0 then invalid_arg "Clock.advance_ns: negative delta";
  if Int64.compare d 0L > 0 then begin
    let old_now = t.now in
    t.now <- Int64.add t.now d;
    List.iter (fun f -> f old_now t.now) t.observers
  end

let advance_s t s =
  if s < 0. then invalid_arg "Clock.advance_s: negative delta";
  advance_ns t (Int64.of_float (s *. 1e9))

let advance_to t deadline =
  if Int64.compare deadline t.now > 0 then advance_ns t (Int64.sub deadline t.now)

let on_advance t f = t.observers <- f :: t.observers

type span = { start_ns : int64; stop_ns : int64 }

let time t f =
  let start_ns = t.now in
  let v = f () in
  (v, { start_ns; stop_ns = t.now })

let span_s { start_ns; stop_ns } = Int64.to_float (Int64.sub stop_ns start_ns) *. 1e-9
