lib/sim/costs.mli:
