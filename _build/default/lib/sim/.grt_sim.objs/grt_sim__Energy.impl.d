lib/sim/energy.ml: Array Clock Format Fun Int64 List
