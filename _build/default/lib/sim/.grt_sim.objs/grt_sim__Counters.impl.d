lib/sim/counters.ml: Format Hashtbl Int64 List String
