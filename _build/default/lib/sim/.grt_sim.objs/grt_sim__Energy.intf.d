lib/sim/energy.mli: Clock Format
