lib/sim/clock.mli:
