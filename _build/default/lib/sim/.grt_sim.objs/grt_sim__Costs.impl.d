lib/sim/costs.ml:
