lib/sim/clock.ml: Int64 List
