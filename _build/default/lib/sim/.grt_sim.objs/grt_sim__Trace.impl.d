lib/sim/trace.ml: Array Clock Format Int64 List String
