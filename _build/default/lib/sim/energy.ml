type rail = Soc_base | Cpu_busy | Radio_tx | Radio_rx | Gpu_busy

let rail_power_w = function
  | Soc_base -> 1.3
  | Cpu_busy -> 1.6
  | Radio_tx -> 0.9
  | Radio_rx -> 0.7
  | Gpu_busy -> 2.4

let rail_index = function
  | Soc_base -> 0
  | Cpu_busy -> 1
  | Radio_tx -> 2
  | Radio_rx -> 3
  | Gpu_busy -> 4

let all_rails = [ Soc_base; Cpu_busy; Radio_tx; Radio_rx; Gpu_busy ]

type t = { active : bool array; joules : float array }

let create clock =
  let t = { active = Array.make 5 false; joules = Array.make 5 0. } in
  t.active.(rail_index Soc_base) <- true;
  Clock.on_advance clock (fun old_now new_now ->
      let dt = Int64.to_float (Int64.sub new_now old_now) *. 1e-9 in
      List.iter
        (fun r ->
          let i = rail_index r in
          if t.active.(i) then t.joules.(i) <- t.joules.(i) +. (rail_power_w r *. dt))
        all_rails);
  t

let set_active t rail on = t.active.(rail_index rail) <- on

let with_rail t rail f =
  let i = rail_index rail in
  let prev = t.active.(i) in
  t.active.(i) <- true;
  Fun.protect ~finally:(fun () -> t.active.(i) <- prev) f

let charge_j t rail j = t.joules.(rail_index rail) <- t.joules.(rail_index rail) +. j

let total_j t = Array.fold_left ( +. ) 0. t.joules

let by_rail_j t = List.map (fun r -> (r, t.joules.(rail_index r))) all_rails

let reset t = Array.fill t.joules 0 5 0.

let pp_rail ppf r =
  Format.pp_print_string ppf
    (match r with
    | Soc_base -> "soc_base"
    | Cpu_busy -> "cpu_busy"
    | Radio_tx -> "radio_tx"
    | Radio_rx -> "radio_rx"
    | Gpu_busy -> "gpu_busy")
