(** Bounded in-memory event trace.

    Components append timestamped events; tests and the debugging CLI can
    inspect the most recent ones. Keeping the trace bounded makes it safe to
    leave enabled during long benchmark sweeps. *)

type event = { at_ns : int64; topic : string; detail : string }

type t

val create : ?capacity:int -> Clock.t -> t
val emit : t -> topic:string -> string -> unit
val emitf : t -> topic:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val recent : ?topic:string -> t -> int -> event list
(** Most recent events first; optionally filtered by topic. *)

val count : t -> int
(** Total events emitted (including evicted ones). *)

val pp_event : Format.formatter -> event -> unit
