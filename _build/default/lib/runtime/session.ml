module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Sku = Grt_gpu.Sku
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Kbase = Grt_driver.Kbase

type usage = Code | Cmd | Input | Output | Weights | Scratch

let usage_is_metastate = function Code | Cmd -> true | Input | Output | Weights | Scratch -> false

let pp_usage ppf u =
  Format.pp_print_string ppf
    (match u with
    | Code -> "code"
    | Cmd -> "cmd"
    | Input -> "input"
    | Output -> "output"
    | Weights -> "weights"
    | Scratch -> "scratch")

type region = {
  name : string;
  usage : usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

type t = {
  drv : Kbase.t;
  mem : Mem.t;
  mmu : Mmu.t;
  as_idx : int;
  sku : Sku.t;
  clock : Grt_sim.Clock.t;
  energy : Grt_sim.Energy.t option;
  on_region : region -> unit;
  mutable code_cursor : int64;
  mutable cmd_cursor : int64;
  mutable data_cursor : int64;
  mutable regions : region list;
  mutable shader_cache : (Shader.op * int64) list;
  mutable jit_compiles : int;
  (* Synthetic physical backing for block-mapped, never-materialized model
     bytes: a distinct high range so it cannot collide with real pages. *)
  mutable phantom_pa : int64;
}

let block_size = 1 lsl 21

let cpu_work t ns =
  Grt_sim.Clock.advance_ns t.clock ns;
  match t.energy with
  | Some e ->
    Grt_sim.Energy.charge_j e Grt_sim.Energy.Cpu_busy
      (Int64.to_float ns *. 1e-9 *. Grt_sim.Energy.rail_power_w Grt_sim.Energy.Cpu_busy)
  | None -> ()

let create ~drv ~as_idx ~clock ?energy ?(on_region = fun _ -> ()) () =
  let sku =
    match Sku.find_by_id (Kbase.gpu_id drv) with
    | Some s -> s
    | None -> invalid_arg "Session.create: driver not initialized or unknown GPU"
  in
  let mmu = Kbase.create_address_space drv ~as_idx in
  {
    drv;
    mem = Kbase.mem drv;
    mmu;
    as_idx;
    sku;
    clock;
    energy;
    on_region;
    code_cursor = 0x1000_0000L;
    cmd_cursor = 0x2000_0000L;
    data_cursor = 0x4000_0000L;
    regions = [];
    shader_cache = [];
    jit_compiles = 0;
    phantom_pa = 0x40_0000_0000L;
  }

let sku t = t.sku
let as_idx t = t.as_idx
let regions t = List.rev t.regions
let jit_compiles t = t.jit_compiles

let region_by_name t name = List.find_opt (fun r -> String.equal r.name name) t.regions

let region_containing t ~va =
  List.find_opt
    (fun r ->
      Int64.compare va r.va >= 0
      && Int64.compare va (Int64.add r.va (Int64.of_int (max r.model_bytes r.actual_bytes))) < 0)
    t.regions

let flags_of_usage = function
  | Code -> Mmu.rx_code
  | Cmd -> Mmu.rw_data
  | Input | Weights -> Mmu.ro_data
  | Output | Scratch -> Mmu.rw_data

let round_up v quantum = (v + quantum - 1) / quantum * quantum

let take_va t usage bytes =
  let aligned = Int64.of_int (round_up (max bytes 1) block_size) in
  match usage with
  | Code ->
    let va = t.code_cursor in
    t.code_cursor <- Int64.add t.code_cursor aligned;
    va
  | Cmd ->
    let va = t.cmd_cursor in
    t.cmd_cursor <- Int64.add t.cmd_cursor aligned;
    va
  | Input | Output | Weights | Scratch ->
    let va = t.data_cursor in
    t.data_cursor <- Int64.add t.data_cursor aligned;
    va

let alloc t ~name ~usage ~model_bytes ~actual_bytes =
  if actual_bytes <= 0 then invalid_arg "Session.alloc: empty buffer";
  if model_bytes < actual_bytes then invalid_arg "Session.alloc: model smaller than materialized";
  let flags = flags_of_usage usage in
  let va = take_va t usage (max model_bytes actual_bytes) in
  let pages = round_up actual_bytes Mem.page_size / Mem.page_size in
  let pa = Mem.alloc_pages t.mem pages in
  (* Touch the first byte so the backing pages exist. *)
  Mem.write_u8 t.mem pa 0;
  Kbase.map_region t.drv ~mmu:t.mmu ~as_idx:t.as_idx ~va ~pa ~pages ~flags;
  (* Block-map the modeled remainder so page tables cover the paper-scale
     footprint without materializing it. *)
  let mapped = pages * Mem.page_size in
  if model_bytes > mapped then begin
    let remainder = model_bytes - mapped in
    let blocks = round_up remainder block_size / block_size in
    let block_va = Int64.add va (Int64.of_int (round_up mapped block_size)) in
    Kbase.map_block_region t.drv ~mmu:t.mmu ~as_idx:t.as_idx ~va:block_va ~pa:t.phantom_pa
      ~blocks ~flags;
    t.phantom_pa <- Int64.add t.phantom_pa (Int64.of_int (blocks * block_size))
  end;
  (* ioctl + allocator cost on the CPU side *)
  cpu_work t 25_000L;
  let region = { name; usage; va; pa; model_bytes; actual_bytes } in
  t.regions <- region :: t.regions;
  t.on_region region;
  region

let shader_for t op =
  match List.assoc_opt op t.shader_cache with
  | Some va -> va
  | None ->
    let binary = Shader.compile ~sku:t.sku ~op in
    cpu_work t Grt_sim.Costs.jit_compile_ns_per_kernel;
    t.jit_compiles <- t.jit_compiles + 1;
    let region =
      alloc t
        ~name:(Printf.sprintf "shader.%s" (Shader.op_name op))
        ~usage:Code ~model_bytes:(Bytes.length binary) ~actual_bytes:(Bytes.length binary)
    in
    Mem.write_bytes t.mem region.pa binary;
    t.shader_cache <- (op, region.va) :: t.shader_cache;
    region.va

let write_floats t region values =
  let needed = 4 * Array.length values in
  if needed > region.actual_bytes then invalid_arg "Session.write_floats: buffer too small";
  Array.iteri
    (fun i v -> Mem.write_f32 t.mem (Int64.add region.pa (Int64.of_int (4 * i))) v)
    values

let read_floats t region n =
  if 4 * n > region.actual_bytes then invalid_arg "Session.read_floats: buffer too small";
  Array.init n (fun i -> Mem.read_f32 t.mem (Int64.add region.pa (Int64.of_int (4 * i))))

let build_chain t jobs =
  if jobs = [] then invalid_arg "Session.build_chain: empty chain";
  let n = List.length jobs in
  let bytes = n * Job_desc.size_bytes in
  let region =
    alloc t
      ~name:(Printf.sprintf "chain.%d" (Grt_sim.Clock.now_ns t.clock |> Int64.to_int))
      ~usage:Cmd ~model_bytes:bytes ~actual_bytes:bytes
  in
  (* Command emission cost per job. *)
  cpu_work t (Int64.mul (Int64.of_int n) Grt_sim.Costs.runtime_job_prep_ns);
  List.iteri
    (fun i job ->
      let pa = Int64.add region.pa (Int64.of_int (i * Job_desc.size_bytes)) in
      let next_va =
        if i = n - 1 then 0L else Int64.add region.va (Int64.of_int ((i + 1) * Job_desc.size_bytes))
      in
      let shader_va =
        if Int64.equal job.Job_desc.shader_va 0L then shader_for t job.Job_desc.op
        else job.Job_desc.shader_va
      in
      Job_desc.write t.mem ~pa { job with Job_desc.next_va; shader_va })
    jobs;
  region.va

let submit t ~chain_va =
  cpu_work t Grt_sim.Costs.driver_submit_overhead_ns;
  Kbase.run_job t.drv ~as_idx:t.as_idx ~chain_va
