lib/runtime/session.ml: Array Bytes Format Grt_driver Grt_gpu Grt_sim Int64 List Printf String
