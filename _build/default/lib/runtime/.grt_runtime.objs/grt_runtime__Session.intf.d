lib/runtime/session.mli: Format Grt_driver Grt_gpu Grt_sim
