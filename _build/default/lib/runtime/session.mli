(** The userspace GPU runtime (libmali/OpenCL stand-in).

    A session owns one GPU address space: it allocates buffers with
    ioctl-style usage flags, JIT-compiles hardware-neutral kernels into
    SKU-specific shaders (late binding, §2.4), emits job descriptors into
    command memory and submits job chains through the kernel driver.

    Buffers are two-scale: [model_bytes] is the paper-scale size used by the
    traffic/timing model (a VGG16 weight tensor is hundreds of MB), while
    [actual_bytes] is the materialized prefix real numerics run on. The
    model-scale remainder of a data buffer is mapped with 2 MiB blocks, so
    page tables have realistic shape without materializing gigabytes. *)

type usage = Code | Cmd | Input | Output | Weights | Scratch

val usage_is_metastate : usage -> bool
(** [Code] and [Cmd] regions are GPU metastate (§5): shaders, command lists
    and job descriptions. Everything else is program data. *)

val pp_usage : Format.formatter -> usage -> unit

type region = {
  name : string;
  usage : usage;
  va : int64;
  pa : int64;
  model_bytes : int;
  actual_bytes : int;
}

type t

val create :
  drv:Grt_driver.Kbase.t ->
  as_idx:int ->
  clock:Grt_sim.Clock.t ->
  ?energy:Grt_sim.Energy.t ->
  ?on_region:(region -> unit) ->
  unit ->
  t
(** The driver must already be initialized. [on_region] fires for every
    allocation — the recording orchestrator uses it to build the data-slot
    binding table. *)

val sku : t -> Grt_gpu.Sku.t
val as_idx : t -> int
val regions : t -> region list
val region_by_name : t -> string -> region option
val region_containing : t -> va:int64 -> region option

val alloc : t -> name:string -> usage:usage -> model_bytes:int -> actual_bytes:int -> region
(** Allocates physical pages for the materialized part, maps it into the GPU
    address space with flags derived from [usage], block-maps the modeled
    remainder, and flushes the MMU. *)

val shader_for : t -> Grt_gpu.Shader.op -> int64
(** VA of the JIT-compiled shader for [op]; compiled and mapped on first
    use (one-time cost per kernel). *)

val write_floats : t -> region -> float array -> unit
val read_floats : t -> region -> int -> float array

val build_chain : t -> Grt_gpu.Job_desc.t list -> int64
(** Write descriptors into command memory, linked in order; returns the
    chain head VA. [shader_va] fields may be 0 — they are filled from the
    JIT cache based on each job's [op]. *)

val submit : t -> chain_va:int64 -> unit
(** Run one chain to completion through the driver (job queue length 1). *)

val jit_compiles : t -> int
