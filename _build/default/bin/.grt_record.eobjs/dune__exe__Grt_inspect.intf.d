bin/grt_inspect.mli:
