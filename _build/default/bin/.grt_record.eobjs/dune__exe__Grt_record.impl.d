bin/grt_record.ml: Arg Array Bytes Cmd Cmdliner Format Grt Grt_gpu Grt_mlfw Grt_net Grt_sim Grt_util Int64 List Printf Term
