bin/grt_replay.mli:
