bin/grt_replay.ml: Arg Array Bytes Cmd Cmdliner Grt Grt_gpu Grt_mlfw Int64 List Printf Term
