bin/grt_record.mli:
