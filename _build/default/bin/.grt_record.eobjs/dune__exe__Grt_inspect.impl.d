bin/grt_inspect.ml: Arg Array Bytes Cmd Cmdliner Format Grt Grt_gpu Grt_util List Printf Term
