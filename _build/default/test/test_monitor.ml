(* Secure monitor tests (§6): SMC-gated TZASC flips and GPU interrupt
   routing, plus the GPUShim integration. *)

module Monitor = Grt_tee.Monitor
module Worlds = Grt_tee.Worlds
module Gpushim = Grt.Gpushim
module Mode = Grt.Mode
module Sku = Grt_gpu.Sku

let check = Alcotest.check

let fresh () =
  let w = Worlds.create () in
  Worlds.add_resource w ~name:"gpu-mmio" ~secure:false;
  let m = Monitor.create w in
  Monitor.register_interrupt m ~irq:33 ~name:"gpu-job";
  (w, m)

let default_route_is_normal () =
  let _, m = fresh () in
  check Alcotest.bool "normal by default" true (Monitor.route_of m ~irq:33 = Monitor.To_normal);
  check Alcotest.bool "delivered to normal" true (Monitor.deliver_irq m ~irq:33 = Worlds.Normal)

let claim_flips_tzasc_and_routes () =
  let w, m = fresh () in
  Monitor.smc_claim_for_secure m ~caller:Worlds.Secure ~resources:[ "gpu-mmio" ] ~irqs:[ 33 ];
  check Alcotest.bool "resource secured" true (Worlds.is_secure w ~name:"gpu-mmio");
  check Alcotest.bool "irq to secure" true (Monitor.deliver_irq m ~irq:33 = Worlds.Secure);
  check Alcotest.int "claim counted" 1 (Monitor.claims m);
  Monitor.smc_release m ~caller:Worlds.Secure ~resources:[ "gpu-mmio" ] ~irqs:[ 33 ];
  check Alcotest.bool "resource returned" false (Worlds.is_secure w ~name:"gpu-mmio");
  check Alcotest.bool "irq back to normal" true (Monitor.deliver_irq m ~irq:33 = Worlds.Normal)

let normal_world_smc_denied () =
  (* A compromised OS must not be able to grab (or release!) secure
     resources through the monitor. *)
  let _, m = fresh () in
  (match
     Monitor.smc_claim_for_secure m ~caller:Worlds.Normal ~resources:[ "gpu-mmio" ] ~irqs:[ 33 ]
   with
  | () -> Alcotest.fail "normal world claimed secure resources"
  | exception Monitor.Denied _ -> ());
  Monitor.smc_claim_for_secure m ~caller:Worlds.Secure ~resources:[ "gpu-mmio" ] ~irqs:[ 33 ];
  match Monitor.smc_release m ~caller:Worlds.Normal ~resources:[ "gpu-mmio" ] ~irqs:[ 33 ] with
  | () -> Alcotest.fail "normal world released secure resources"
  | exception Monitor.Denied _ -> ()

let unknown_irq_rejected () =
  let _, m = fresh () in
  Alcotest.check_raises "unknown irq" (Invalid_argument "Monitor: unknown irq 99") (fun () ->
      ignore (Monitor.route_of m ~irq:99))

let duplicate_irq_rejected () =
  let _, m = fresh () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Monitor.register_interrupt: duplicate irq")
    (fun () -> Monitor.register_interrupt m ~irq:33 ~name:"again")

(* ---- GPUShim integration ---- *)

let shim () =
  let clock = Grt_sim.Clock.create () in
  Gpushim.create ~clock ~sku:Sku.g71_mp8 ~session_salt:1L
    ~cfg:(Mode.default_config Mode.Ours_mds) ()

let gpushim_claims_power_clock () =
  (* §6: SoC resources not managed by the GPU driver (power/clock) are
     protected inside the TEE during a session. *)
  let g = shim () in
  Gpushim.isolate g;
  check Alcotest.bool "power/clock secured" true
    (Worlds.is_secure (Gpushim.worlds g) ~name:"gpu-power-clock");
  Gpushim.release g;
  check Alcotest.bool "returned" false (Worlds.is_secure (Gpushim.worlds g) ~name:"gpu-power-clock")

let gpushim_irqs_routed_during_session () =
  let g = shim () in
  check Alcotest.bool "job irq to normal before" true
    (Monitor.deliver_irq (Gpushim.monitor g) ~irq:33 = Worlds.Normal);
  Gpushim.isolate g;
  check Alcotest.bool "job irq to secure during" true
    (Monitor.deliver_irq (Gpushim.monitor g) ~irq:33 = Worlds.Secure);
  check Alcotest.bool "mmu irq to secure during" true
    (Monitor.deliver_irq (Gpushim.monitor g) ~irq:35 = Worlds.Secure)

let () =
  Alcotest.run "grt_monitor"
    [
      ( "monitor",
        [
          Alcotest.test_case "default route" `Quick default_route_is_normal;
          Alcotest.test_case "claim and release" `Quick claim_flips_tzasc_and_routes;
          Alcotest.test_case "normal-world SMC denied" `Quick normal_world_smc_denied;
          Alcotest.test_case "unknown irq" `Quick unknown_irq_rejected;
          Alcotest.test_case "duplicate irq" `Quick duplicate_irq_rejected;
        ] );
      ( "gpushim",
        [
          Alcotest.test_case "claims power/clock" `Quick gpushim_claims_power_clock;
          Alcotest.test_case "irqs routed during session" `Quick gpushim_irqs_routed_during_session;
        ] );
    ]
