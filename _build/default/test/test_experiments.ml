(* Qualitative checks of the paper's evaluation claims (§7) against the
   experiment drivers — the "shape" assertions of the reproduction: who
   wins, in which direction, with sane magnitudes. Run on a subset of
   workloads to keep the suite fast; the bench harness covers all six. *)

module E = Grt.Experiments
module Mode = Grt.Mode
module Profile = Grt_net.Profile
module Zoo = Grt_mlfw.Zoo

let check = Alcotest.check

let ctx = E.create_ctx ()

let delays_of (row : E.fig7_row) = row.E.delays

let fig7_rows = lazy (E.fig7 ctx ~profile:Profile.wifi)

let row_for name (rows : E.fig7_row list) =
  List.find (fun (r : E.fig7_row) -> r.E.workload = name) rows

let fig7_mode_monotonic () =
  (* Each added technique must help (or at least not hurt) every workload:
     Naive >= OursM >= OursMD >= OursMDS. *)
  List.iter
    (fun (row : E.fig7_row) ->
      let d m = List.assoc m (delays_of row) in
      let naive = d Mode.Naive and m = d Mode.Ours_m in
      let md = d Mode.Ours_md and mds = d Mode.Ours_mds in
      if not (naive >= m && m >= md && md >= mds) then
        Alcotest.failf "%s: non-monotonic %f %f %f %f" row.E.workload naive m md mds)
    (Lazy.force fig7_rows)

let fig7_big_reduction () =
  (* §7.2: OursMDS reduces recording delay by an order of magnitude. *)
  List.iter
    (fun (row : E.fig7_row) ->
      let d m = List.assoc m (delays_of row) in
      let reduction = 1.0 -. (d Mode.Ours_mds /. d Mode.Naive) in
      if reduction < 0.75 then
        Alcotest.failf "%s: only %.0f%% reduction" row.E.workload (100. *. reduction))
    (Lazy.force fig7_rows)

let fig7_meta_sync_helps_large_nets_most () =
  (* §7.3: OursM vs Naive is pronounced for large NNs, marginal for MNIST. *)
  let gain (row : E.fig7_row) =
    let d m = List.assoc m (delays_of row) in
    1.0 -. (d Mode.Ours_m /. d Mode.Naive)
  in
  let rows = Lazy.force fig7_rows in
  let mnist = gain (row_for "MNIST" rows) in
  let vgg = gain (row_for "VGG16" rows) in
  check Alcotest.bool "MNIST gain small" true (mnist < 0.10);
  check Alcotest.bool "VGG16 gain large" true (vgg > 0.30)

let fig7_cellular_slower () =
  let wifi = Lazy.force fig7_rows in
  let cell = E.fig7 ctx ~profile:Profile.cellular in
  List.iter2
    (fun (w : E.fig7_row) (c : E.fig7_row) ->
      let dw = List.assoc Mode.Ours_mds (delays_of w) in
      let dc = List.assoc Mode.Ours_mds (delays_of c) in
      if dc <= dw then Alcotest.failf "%s: cellular not slower" w.E.workload)
    wifi cell

let table1_rtt_reductions () =
  (* Deferral and speculation each cut blocking round trips substantially
     (73% and 86% cumulative in the paper). *)
  List.iter
    (fun (r : E.table1_row) ->
      if not (r.E.rtts_md < r.E.rtts_m) then
        Alcotest.failf "%s: deferral did not reduce RTTs" r.E.workload;
      if not (float_of_int r.E.rtts_mds < 0.5 *. float_of_int r.E.rtts_m) then
        Alcotest.failf "%s: speculation cut less than half" r.E.workload)
    (E.table1 ctx ~profile:Profile.wifi)

let table1_memsync_reduction () =
  (* §7.3: meta-only sync reduces traffic by 72-99%. *)
  List.iter
    (fun (r : E.table1_row) ->
      let reduction = 1.0 -. (r.E.memsync_ours_mb /. r.E.memsync_naive_mb) in
      if reduction < 0.35 then
        Alcotest.failf "%s: memsync reduction only %.0f%%" r.E.workload (100. *. reduction))
    (E.table1 ctx ~profile:Profile.wifi)

let table1_job_counts () =
  List.iter
    (fun (r : E.table1_row) ->
      let net = Option.get (Zoo.find r.E.workload) in
      check Alcotest.int (r.E.workload ^ " job count") (Zoo.paper_job_count net) r.E.gpu_jobs)
    (E.table1 ctx ~profile:Profile.wifi)

let table2_replay_competitive () =
  (* Table 2: replay is faster on average, never catastrophically slower,
     and outputs are bit-exact. *)
  let rows = E.table2 ctx in
  List.iter
    (fun (r : E.table2_row) ->
      check Alcotest.bool (r.E.workload ^ " bit-exact") true r.E.outputs_match;
      if r.E.replay_ms > 1.10 *. r.E.native_ms then
        Alcotest.failf "%s: replay %.1f ms vs native %.1f ms" r.E.workload r.E.replay_ms
          r.E.native_ms)
    rows;
  let avg =
    List.fold_left (fun acc r -> acc +. (r.E.replay_ms /. r.E.native_ms)) 0.0 rows
    /. float_of_int (List.length rows)
  in
  check Alcotest.bool "replay faster on average" true (avg < 1.0)

let fig8_shares_normalized () =
  List.iter
    (fun (r : E.fig8_row) ->
      let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.E.shares in
      if abs_float (sum -. 1.0) > 1e-6 then Alcotest.failf "%s: shares sum to %f" r.E.workload sum;
      check Alcotest.bool (r.E.workload ^ " speculates a lot") true (r.E.total_speculated > 100);
      (* All four paper categories are populated. *)
      List.iter
        (fun cat ->
          let s = List.assoc cat r.E.shares in
          if s <= 0.0 then
            Alcotest.failf "%s: category %s empty" r.E.workload (Grt.Drivershim.category_name cat))
        [ Grt.Drivershim.Interrupt; Grt.Drivershim.Power; Grt.Drivershim.Polling ])
    (E.fig8 ctx ~profile:Profile.wifi)

let fig9_energy_savings () =
  (* §7.4: GR-T reduces record energy by 84-99%; replay energy is tiny. *)
  List.iter
    (fun (r : E.fig9_row) ->
      let saving = 1.0 -. (r.E.record_mds_j /. r.E.record_naive_j) in
      if saving < 0.7 then Alcotest.failf "%s: only %.0f%% saved" r.E.workload (100. *. saving);
      check Alcotest.bool (r.E.workload ^ " replay energy well below record") true
        (r.E.replay_j < 0.5 *. r.E.record_mds_j))
    (E.fig9 ctx ~profile:Profile.wifi)

let stats_speculation_rate () =
  (* §7.3: the vast majority of commits satisfy the speculation criteria;
     the rejects are the nondeterministic flush-id reads (one per job). *)
  List.iter
    (fun (r : E.stats_row) ->
      if r.E.speculated_pct < 80.0 then
        Alcotest.failf "%s: speculation rate %.0f%%" r.E.workload r.E.speculated_pct;
      let net = Option.get (Zoo.find r.E.workload) in
      check Alcotest.int
        (r.E.workload ^ " one nondet reject per job")
        (Zoo.paper_job_count net) r.E.rejected_nondet)
    (E.deferral_stats ctx ~profile:Profile.wifi)

let polling_offload_saves_rtts () =
  List.iter
    (fun (r : E.polling_row) ->
      check Alcotest.int (r.E.workload ^ " everything offloaded") r.E.instances r.E.offloaded;
      if r.E.rtts_with_offload >= r.E.rtts_without_offload then
        Alcotest.failf "%s: offload saved nothing" r.E.workload)
    (E.polling ctx ~profile:Profile.wifi)

let rollback_detected_and_bounded () =
  List.iter
    (fun (r : E.rollback_row) ->
      check Alcotest.bool (r.E.workload ^ " detected") true r.E.detected;
      check Alcotest.bool (r.E.workload ^ " completed") true r.E.completed;
      if r.E.rollback_s <= 0.0 || r.E.rollback_s > 10.0 then
        Alcotest.failf "%s: rollback %.1f s out of range" r.E.workload r.E.rollback_s)
    (E.rollback ctx ~profile:Profile.wifi ~nets:[ Zoo.mnist ])

let ablation_polling_matters () =
  let rows = E.ablation ctx ~profile:Profile.wifi ~net:Zoo.mnist in
  let find label = List.find (fun (r : E.ablation_row) -> r.E.label = label) rows in
  let base = find "GR-T (all techniques)" in
  let no_poll = find "no polling offload" in
  check Alcotest.bool "offload is significant" true (no_poll.E.rtts > base.E.rtts);
  let no_comp = find "no dump compression" in
  check Alcotest.bool "compression shrinks sync" true (no_comp.E.sync_mb > base.E.sync_mb)

let () =
  Alcotest.run "grt_experiments"
    [
      ( "fig7",
        [
          Alcotest.test_case "modes monotonic" `Slow fig7_mode_monotonic;
          Alcotest.test_case "big reduction" `Slow fig7_big_reduction;
          Alcotest.test_case "meta sync helps big nets" `Slow fig7_meta_sync_helps_large_nets_most;
          Alcotest.test_case "cellular slower" `Slow fig7_cellular_slower;
        ] );
      ( "table1",
        [
          Alcotest.test_case "rtt reductions" `Slow table1_rtt_reductions;
          Alcotest.test_case "memsync reduction" `Slow table1_memsync_reduction;
          Alcotest.test_case "job counts" `Slow table1_job_counts;
        ] );
      ("table2", [ Alcotest.test_case "replay competitive" `Slow table2_replay_competitive ]);
      ("fig8", [ Alcotest.test_case "shares normalized" `Slow fig8_shares_normalized ]);
      ("fig9", [ Alcotest.test_case "energy savings" `Slow fig9_energy_savings ]);
      ( "sec7.3",
        [
          Alcotest.test_case "speculation rate" `Slow stats_speculation_rate;
          Alcotest.test_case "polling offload" `Slow polling_offload_saves_rtts;
          Alcotest.test_case "rollback" `Slow rollback_detected_and_bounded;
          Alcotest.test_case "ablation" `Slow ablation_polling_matters;
        ] );
    ]
