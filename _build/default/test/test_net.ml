(* Tests for the network model: profile math, link cost accounting
   (blocking round trips, async sends, stall waits, one-ways) and message
   framing. *)

module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Frame = Grt_net.Frame
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* ---- Profile ---- *)

let profile_presets () =
  check feq "wifi rtt" 0.020 Profile.wifi.Profile.rtt_s;
  check feq "wifi bw" 80.0e6 Profile.wifi.Profile.bandwidth_bps;
  check feq "cellular rtt" 0.050 Profile.cellular.Profile.rtt_s;
  check feq "cellular bw" 40.0e6 Profile.cellular.Profile.bandwidth_bps

let profile_one_way_math () =
  let p = Profile.custom ~name:"t" ~rtt_ms:10.0 ~bandwidth_mbps:8.0 in
  (* half RTT (5 ms) + 1000 bytes at 8 Mbps (1 ms) + per-message. *)
  check feq "one way" (0.005 +. 0.001 +. p.Profile.per_message_s) (Profile.one_way_s p 1000)

let profile_round_trip_math () =
  let p = Profile.wifi in
  check feq "rt = both ways"
    (Profile.one_way_s p 100 +. Profile.one_way_s p 200)
    (Profile.round_trip_s p ~send_bytes:100 ~recv_bytes:200)

let profile_custom_validation () =
  Alcotest.check_raises "bad bw" (Invalid_argument "Profile.custom") (fun () ->
      ignore (Profile.custom ~name:"x" ~rtt_ms:1.0 ~bandwidth_mbps:0.0))

let profile_ordering () =
  (* Cellular must be strictly slower than WiFi for any message size —
     Figure 7b sits above Figure 7a because of this. *)
  List.iter
    (fun bytes ->
      check Alcotest.bool "cellular slower" true
        (Profile.one_way_s Profile.cellular bytes > Profile.one_way_s Profile.wifi bytes))
    [ 0; 100; 10_000; 1_000_000 ]

(* ---- Link ---- *)

let make_link profile =
  let clock = Clock.create () in
  let counters = Counters.create () in
  (Link.create ~clock ~counters profile, clock, counters)

let link_round_trip_blocks () =
  let link, clock, counters = make_link Profile.wifi in
  Link.round_trip link ~send_bytes:100 ~recv_bytes:100;
  check Alcotest.bool "clock advanced by ~rtt" true (Clock.now_s clock >= 0.020);
  check Alcotest.int "one blocking rtt" 1 (Counters.get_int counters "net.blocking_rtts");
  check Alcotest.int64 "tx counted" 100L (Counters.get counters "net.bytes_tx");
  check Alcotest.int64 "rx counted" 100L (Counters.get counters "net.bytes_rx")

let link_async_does_not_block () =
  let link, clock, counters = make_link Profile.wifi in
  let completion = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  check Alcotest.int64 "clock unchanged" 0L (Clock.now_ns clock);
  check Alcotest.int "no blocking rtt" 0 (Counters.get_int counters "net.blocking_rtts");
  check Alcotest.bool "completion in future" true (Int64.compare completion 0L > 0)

let link_wait_until_counts_only_real_waits () =
  let link, clock, counters = make_link Profile.wifi in
  let completion = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  Link.wait_until link completion;
  check Alcotest.int "stalled once" 1 (Counters.get_int counters "net.stall_waits");
  check Alcotest.int64 "clock at completion" completion (Clock.now_ns clock);
  (* Second wait on the same (past) deadline is free. *)
  Link.wait_until link completion;
  check Alcotest.int "no extra stall" 1 (Counters.get_int counters "net.stall_waits")

let link_one_ways () =
  let link, clock, counters = make_link Profile.wifi in
  Link.one_way_to_client link ~bytes:1000;
  let after_down = Clock.now_s clock in
  check Alcotest.bool "half rtt-ish" true (after_down >= 0.010);
  Link.one_way_from_client link ~bytes:500;
  check Alcotest.int64 "down counted as tx" 1000L (Counters.get counters "net.bytes_tx");
  check Alcotest.int64 "up counted as rx" 500L (Counters.get counters "net.bytes_rx")

let link_async_fifo_order () =
  let link, _, _ = make_link Profile.wifi in
  let c1 = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  let c2 = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  check Alcotest.bool "later send completes no earlier" true (Int64.compare c2 c1 >= 0)

let link_bandwidth_matters () =
  let link_fast, clock_fast, _ = make_link Profile.lan in
  let link_slow, clock_slow, _ = make_link Profile.cellular in
  Link.round_trip link_fast ~send_bytes:1_000_000 ~recv_bytes:0;
  Link.round_trip link_slow ~send_bytes:1_000_000 ~recv_bytes:0;
  check Alcotest.bool "lan much faster" true (Clock.now_s clock_fast *. 5. < Clock.now_s clock_slow)

(* ---- Frame ---- *)

let frame_roundtrip () =
  let payload = Bytes.of_string "commit #42" in
  let framed = Frame.seal Frame.Commit_request payload in
  match Frame.open_ framed with
  | Ok (Frame.Commit_request, p) -> check Alcotest.bytes "payload" payload p
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e

let frame_all_kinds () =
  List.iter
    (fun k ->
      match Frame.kind_of_int (Frame.kind_to_int k) with
      | Some k' when k = k' -> ()
      | _ -> Alcotest.fail "kind roundtrip failed")
    [
      Frame.Commit_request;
      Frame.Commit_response;
      Frame.Poll_offload;
      Frame.Poll_result;
      Frame.Mem_sync;
      Frame.Mem_sync_ack;
      Frame.Irq_notify;
      Frame.Recording_download;
      Frame.Control;
    ]

let frame_detects_corruption () =
  let framed = Frame.seal Frame.Mem_sync (Bytes.of_string "page data here") in
  let corrupted = Bytes.copy framed in
  let pos = Bytes.length framed - 6 in
  Bytes.set corrupted pos (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0xFF));
  (match Frame.open_ corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption not detected");
  (* Also corrupt inside the payload. *)
  let corrupted2 = Bytes.copy framed in
  Bytes.set corrupted2 12 '!';
  match Frame.open_ corrupted2 with
  | Error _ -> ()
  | Ok (_, p) ->
    if not (Bytes.equal p (Bytes.of_string "page data here")) then ()
    else Alcotest.fail "payload corruption not detected"

let frame_bad_magic () =
  match Frame.open_ (Bytes.of_string "garbage frame data") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let frame_truncated () =
  let framed = Frame.seal Frame.Control (Bytes.of_string "x") in
  match Frame.open_ (Bytes.sub framed 0 (Bytes.length framed - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated frame"

let frame_overhead_accurate () =
  let framed = Frame.seal Frame.Control (Bytes.create 10) in
  check Alcotest.int "overhead constant" Frame.overhead_bytes (Bytes.length framed - 10)

let () =
  Alcotest.run "grt_net"
    [
      ( "profile",
        [
          Alcotest.test_case "presets" `Quick profile_presets;
          Alcotest.test_case "one-way math" `Quick profile_one_way_math;
          Alcotest.test_case "round-trip math" `Quick profile_round_trip_math;
          Alcotest.test_case "custom validation" `Quick profile_custom_validation;
          Alcotest.test_case "cellular slower than wifi" `Quick profile_ordering;
        ] );
      ( "link",
        [
          Alcotest.test_case "round trip blocks" `Quick link_round_trip_blocks;
          Alcotest.test_case "async does not block" `Quick link_async_does_not_block;
          Alcotest.test_case "wait_until semantics" `Quick link_wait_until_counts_only_real_waits;
          Alcotest.test_case "one-way transfers" `Quick link_one_ways;
          Alcotest.test_case "async FIFO order" `Quick link_async_fifo_order;
          Alcotest.test_case "bandwidth matters" `Quick link_bandwidth_matters;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick frame_roundtrip;
          Alcotest.test_case "all kinds" `Quick frame_all_kinds;
          Alcotest.test_case "detects corruption" `Quick frame_detects_corruption;
          Alcotest.test_case "bad magic" `Quick frame_bad_magic;
          Alcotest.test_case "truncated" `Quick frame_truncated;
          Alcotest.test_case "overhead constant" `Quick frame_overhead_accurate;
        ] );
    ]
