(* Tests for the TEE substrate: crypto seal/open, attestation, world
   isolation (TZASC) and the attested channel. *)

module Crypto = Grt_tee.Crypto
module Attestation = Grt_tee.Attestation
module Worlds = Grt_tee.Worlds
module Channel = Grt_tee.Channel
module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Frame = Grt_net.Frame

let check = Alcotest.check

(* ---- crypto ---- *)

let crypto_seal_open () =
  let data = Bytes.of_string "register access batch" in
  let sealed = Crypto.seal ~key:"k" ~nonce:42L data in
  match Crypto.open_ ~key:"k" sealed with
  | Ok got -> check Alcotest.bytes "roundtrip" data got
  | Error e -> Alcotest.fail e

let crypto_wrong_key_fails () =
  let sealed = Crypto.seal ~key:"k1" ~nonce:1L (Bytes.of_string "secret") in
  match Crypto.open_ ~key:"k2" sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"

let crypto_tamper_detected () =
  let sealed = Crypto.seal ~key:"k" ~nonce:1L (Bytes.of_string "payload bytes") in
  Bytes.set sealed 2 (Char.chr (Char.code (Bytes.get sealed 2) lxor 1));
  match Crypto.open_ ~key:"k" sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tamper not detected"

let crypto_ciphertext_hides_plaintext () =
  let data = Bytes.of_string "aaaaaaaaaaaaaaaaaaaaaaaa" in
  let sealed = Crypto.seal ~key:"k" ~nonce:7L data in
  let ct = Bytes.sub sealed 0 (Bytes.length data) in
  check Alcotest.bool "not plaintext" false (Bytes.equal ct data)

let crypto_nonce_varies_ciphertext () =
  let data = Bytes.of_string "same plaintext" in
  let a = Crypto.seal ~key:"k" ~nonce:1L data in
  let b = Crypto.seal ~key:"k" ~nonce:2L data in
  check Alcotest.bool "distinct ciphertexts" false (Bytes.equal a b)

let crypto_mac_verify () =
  let data = Bytes.of_string "x" in
  let tag = Crypto.mac ~key:"k" data in
  check Alcotest.bool "verifies" true (Crypto.verify ~key:"k" data tag);
  check Alcotest.bool "wrong key" false (Crypto.verify ~key:"k2" data tag)

let crypto_derive_distinct () =
  check Alcotest.bool "labels derive distinct keys" false
    (String.equal (Crypto.derive "k" "enc") (Crypto.derive "k" "mac"))

(* ---- attestation ---- *)

let m = { Attestation.kernel = "linux-4.14"; gpu_stack = "acl+mali"; devicetree = "dt" }

let attestation_accepts_good_quote () =
  let q = Attestation.make_quote ~signing_key:"vmkey" m ~nonce:99L in
  match Attestation.verify ~verification_key:"vmkey" ~expected:m ~nonce:99L q with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let attestation_rejects_tampered () =
  let q = Attestation.tamper (Attestation.make_quote ~signing_key:"vmkey" m ~nonce:99L) in
  match Attestation.verify ~verification_key:"vmkey" ~expected:m ~nonce:99L q with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered quote accepted"

let attestation_rejects_nonce_replay () =
  let q = Attestation.make_quote ~signing_key:"vmkey" m ~nonce:1L in
  match Attestation.verify ~verification_key:"vmkey" ~expected:m ~nonce:2L q with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale nonce accepted"

let attestation_rejects_wrong_measurement () =
  (* A cloud VM running a modified GPU stack must not attest. *)
  let evil = { m with Attestation.gpu_stack = "acl+mali+backdoor" } in
  let q = Attestation.make_quote ~signing_key:"vmkey" evil ~nonce:1L in
  match Attestation.verify ~verification_key:"vmkey" ~expected:m ~nonce:1L q with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong measurement accepted"

(* ---- worlds ---- *)

let worlds_basic_isolation () =
  let w = Worlds.create () in
  Worlds.add_resource w ~name:"gpu-mmio" ~secure:false;
  Worlds.check_access w Worlds.Normal ~name:"gpu-mmio";
  Worlds.set_secure w ~name:"gpu-mmio" true;
  (match Worlds.check_access w Worlds.Normal ~name:"gpu-mmio" with
  | () -> Alcotest.fail "normal world accessed secure resource"
  | exception Worlds.Access_denied v ->
    check Alcotest.string "names resource" "gpu-mmio" v.Worlds.what);
  (* The secure world always may. *)
  Worlds.check_access w Worlds.Secure ~name:"gpu-mmio";
  check Alcotest.int "violation recorded" 1 (List.length (Worlds.violations w))

let worlds_unknown_resource () =
  let w = Worlds.create () in
  Alcotest.check_raises "unknown" (Invalid_argument "Worlds: unknown resource nope") (fun () ->
      Worlds.check_access w Worlds.Secure ~name:"nope")

let worlds_duplicate_rejected () =
  let w = Worlds.create () in
  Worlds.add_resource w ~name:"x" ~secure:false;
  Alcotest.check_raises "dup" (Invalid_argument "Worlds.add_resource: duplicate") (fun () ->
      Worlds.add_resource w ~name:"x" ~secure:true)

(* ---- channel ---- *)

let make_link () =
  let clock = Grt_sim.Clock.create () in
  let counters = Grt_sim.Counters.create () in
  (Link.create ~clock ~counters Profile.wifi, clock, counters)

let channel_establish_and_exchange () =
  let link, clock, counters = make_link () in
  match
    Channel.establish ~link ~verification_key:"vmkey" ~vm_signing_key:"vmkey" ~vm_measurement:m
      ~expected:m ~nonce:5L
  with
  | Error e -> Alcotest.fail e
  | Ok ch ->
    (* Handshake costs two round trips (§7.1). *)
    check Alcotest.int "2 rtts" 2 (Grt_sim.Counters.get_int counters "net.blocking_rtts");
    check Alcotest.bool "clock advanced" true (Grt_sim.Clock.now_s clock >= 0.04);
    let msg = Channel.seal_message ch Frame.Commit_request (Bytes.of_string "batch") in
    (match Channel.open_message ch msg with
    | Ok (Frame.Commit_request, p) -> check Alcotest.bytes "payload" (Bytes.of_string "batch") p
    | Ok _ -> Alcotest.fail "wrong kind"
    | Error e -> Alcotest.fail e)

let channel_rejects_bad_vm () =
  let link, _, _ = make_link () in
  let evil = { m with Attestation.kernel = "linux-rootkit" } in
  match
    Channel.establish ~link ~verification_key:"vmkey" ~vm_signing_key:"vmkey"
      ~vm_measurement:evil ~expected:m ~nonce:5L
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad VM attested"

let channel_eavesdropper_cannot_read () =
  let link, _, _ = make_link () in
  match
    Channel.establish ~link ~verification_key:"vmkey" ~vm_signing_key:"vmkey" ~vm_measurement:m
      ~expected:m ~nonce:5L
  with
  | Error e -> Alcotest.fail e
  | Ok ch ->
    let msg = Channel.seal_message ch Frame.Mem_sync (Bytes.of_string "shader code") in
    (* the wire bytes must not contain the plaintext *)
    let hay = Bytes.to_string msg in
    let contains needle =
      let n = String.length hay and mlen = String.length needle in
      let rec go i = i + mlen <= n && (String.sub hay i mlen = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "opaque on the wire" false (contains "shader code")

let channel_tamper_rejected () =
  let link, _, _ = make_link () in
  match
    Channel.establish ~link ~verification_key:"vmkey" ~vm_signing_key:"vmkey" ~vm_measurement:m
      ~expected:m ~nonce:5L
  with
  | Error e -> Alcotest.fail e
  | Ok ch ->
    let msg = Channel.seal_message ch Frame.Mem_sync (Bytes.of_string "page") in
    Bytes.set msg 1 'z';
    (match Channel.open_message ch msg with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "tampered message accepted")

let () =
  Alcotest.run "grt_tee"
    [
      ( "crypto",
        [
          Alcotest.test_case "seal/open" `Quick crypto_seal_open;
          Alcotest.test_case "wrong key" `Quick crypto_wrong_key_fails;
          Alcotest.test_case "tamper detected" `Quick crypto_tamper_detected;
          Alcotest.test_case "ciphertext hides plaintext" `Quick crypto_ciphertext_hides_plaintext;
          Alcotest.test_case "nonce varies ciphertext" `Quick crypto_nonce_varies_ciphertext;
          Alcotest.test_case "mac verify" `Quick crypto_mac_verify;
          Alcotest.test_case "derive distinct" `Quick crypto_derive_distinct;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "accepts good quote" `Quick attestation_accepts_good_quote;
          Alcotest.test_case "rejects tampered" `Quick attestation_rejects_tampered;
          Alcotest.test_case "rejects nonce replay" `Quick attestation_rejects_nonce_replay;
          Alcotest.test_case "rejects wrong measurement" `Quick attestation_rejects_wrong_measurement;
        ] );
      ( "worlds",
        [
          Alcotest.test_case "basic isolation" `Quick worlds_basic_isolation;
          Alcotest.test_case "unknown resource" `Quick worlds_unknown_resource;
          Alcotest.test_case "duplicate rejected" `Quick worlds_duplicate_rejected;
        ] );
      ( "channel",
        [
          Alcotest.test_case "establish and exchange" `Quick channel_establish_and_exchange;
          Alcotest.test_case "rejects bad VM" `Quick channel_rejects_bad_vm;
          Alcotest.test_case "eavesdropper cannot read" `Quick channel_eavesdropper_cannot_read;
          Alcotest.test_case "tamper rejected" `Quick channel_tamper_rejected;
        ] );
    ]
