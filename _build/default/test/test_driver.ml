(* Tests for the kbase-style driver running on the native backend against a
   local device: probe, quirks, power cycling, MMU management, job
   submission and fault propagation. *)

module Kbase = Grt_driver.Kbase
module Backend = Grt_driver.Backend
module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters

let check = Alcotest.check

let make ?(sku = Sku.g71_mp8) ?(coherency_ace = true) () =
  let clock = Clock.create () in
  let counters = Counters.create () in
  let mem = Mem.create () in
  let dev = Device.create ~clock ~mem ~sku ~session_salt:7L () in
  let b = Grt.Native.backend ~counters dev in
  let drv = Kbase.create ~backend:b ~mem ~coherency_ace in
  (drv, dev, mem, clock, counters)

let driver_init_discovers_hardware () =
  let drv, _, _, _, _ = make () in
  Kbase.init drv;
  check Alcotest.int64 "gpu id" Sku.g71_mp8.Sku.gpu_id (Kbase.gpu_id drv);
  check Alcotest.int64 "shader mask" 0xFFL (Kbase.shader_present drv);
  check Alcotest.bool "pt format" true (Kbase.pt_format drv = Sku.Lpae_v7);
  check Alcotest.bool "powered after init" true (Kbase.powered drv)

let driver_detects_v8_format () =
  let drv, _, _, _, _ = make ~sku:Sku.g52_mp4 () in
  Kbase.init drv;
  check Alcotest.bool "v8 detected from MMU_FEATURES" true (Kbase.pt_format drv = Sku.Lpae_v8)

let driver_applies_quirks () =
  (* Listing 1(a): on an ACE platform MMU_CONFIG must have the snoop
     disparity bit OR'd in after init. *)
  let drv, dev, _, _, _ = make ~coherency_ace:true () in
  Kbase.init drv;
  let v = Device.read_reg dev Regs.mmu_config in
  check Alcotest.bool "snoop disparity set" true (Int64.logand v 0x10L <> 0L);
  (* Reset value is preserved underneath. *)
  check Alcotest.bool "quirk bits preserved" true
    (Int64.logand v Sku.g71_mp8.Sku.quirk_mmu_config = Sku.g71_mp8.Sku.quirk_mmu_config)

let driver_no_quirk_without_ace () =
  let drv, dev, _, _, _ = make ~coherency_ace:false () in
  Kbase.init drv;
  check Alcotest.bool "no snoop disparity" true
    (Int64.logand (Device.read_reg dev Regs.mmu_config) 0x10L
    = Int64.logand Sku.g71_mp8.Sku.quirk_mmu_config 0x10L)

let driver_double_init_rejected () =
  let drv, _, _, _, _ = make () in
  Kbase.init drv;
  match Kbase.init drv with
  | () -> Alcotest.fail "double init"
  | exception Kbase.Driver_error _ -> ()

let driver_power_cycles_cores () =
  let drv, dev, _, _, _ = make () in
  Kbase.init drv;
  check Alcotest.int64 "cores ready" 0xFFL (Device.read_reg dev Regs.shader_ready_lo);
  Kbase.shutdown drv;
  check Alcotest.int64 "cores off after shutdown" 0L (Device.read_reg dev Regs.shader_ready_lo);
  check Alcotest.bool "not powered" false (Kbase.powered drv)

(* Full pipeline: map a ReLU job and run it through Kbase.run_job. *)
let run_relu_job () =
  let drv, _, mem, _, counters = make () in
  Kbase.init drv;
  let mmu = Kbase.create_address_space drv ~as_idx:2 in
  let shader_bin = Shader.compile ~sku:Sku.g71_mp8 ~op:Shader.Relu in
  let code_pa = Mem.alloc_pages mem 1 in
  Mem.write_bytes mem code_pa shader_bin;
  let data_pa = Mem.alloc_pages mem 1 in
  let desc_pa = Mem.alloc_pages mem 1 in
  Kbase.map_region drv ~mmu ~as_idx:2 ~va:0x10_0000L ~pa:code_pa ~pages:1 ~flags:Mmu.rx_code;
  Kbase.map_region drv ~mmu ~as_idx:2 ~va:0x20_0000L ~pa:data_pa ~pages:1 ~flags:Mmu.rw_data;
  Kbase.map_region drv ~mmu ~as_idx:2 ~va:0x30_0000L ~pa:desc_pa ~pages:1 ~flags:Mmu.rw_data;
  List.iteri
    (fun i v -> Mem.write_f32 mem (Int64.add data_pa (Int64.of_int (4 * i))) v)
    [ -2.0; 5.0 ];
  Job_desc.write mem ~pa:desc_pa
    {
      Job_desc.op = Shader.Relu;
      shader_va = 0x10_0000L;
      input_va = 0x20_0000L;
      input2_va = 0L;
      bias_va = 0L;
      output_va = 0x20_0100L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 2;
          in_h = 1;
          in_w = 1;
          out_c = 2;
          out_h = 1;
          out_w = 1;
          flops_hint = 100L;
        };
      next_va = 0L;
    };
  (drv, mem, data_pa, desc_pa, counters)

let driver_runs_job () =
  let drv, mem, data_pa, desc_pa, _ = run_relu_job () in
  Kbase.run_job drv ~as_idx:2 ~chain_va:0x30_0000L;
  check Alcotest.bool "descriptor done" true (Job_desc.read_status mem ~pa:desc_pa = Job_desc.Done);
  check (Alcotest.float 1e-6) "relu(-2)" 0.0 (Mem.read_f32 mem (Int64.add data_pa 0x100L));
  check (Alcotest.float 1e-6) "relu(5)" 5.0 (Mem.read_f32 mem (Int64.add data_pa 0x104L));
  check Alcotest.int "one submission" 1 (Kbase.jobs_submitted drv)

let driver_serializes_jobs () =
  let drv, _, _, _, _counters = run_relu_job () in
  Kbase.run_job drv ~as_idx:2 ~chain_va:0x30_0000L;
  Kbase.run_job drv ~as_idx:2 ~chain_va:0x30_0000L;
  Kbase.run_job drv ~as_idx:2 ~chain_va:0x30_0000L;
  check Alcotest.int "three serialized submissions" 3 (Kbase.jobs_submitted drv)

let driver_powers_down_between_jobs () =
  let drv, _, _, _, _ = run_relu_job () in
  Kbase.run_job drv ~as_idx:2 ~chain_va:0x30_0000L;
  (* After the pipeline, shader cores are parked. *)
  check Alcotest.bool "shaders parked after job" false (Kbase.powered drv)

let driver_job_fault_raises () =
  let drv, _, _, _, _ = run_relu_job () in
  match Kbase.run_job drv ~as_idx:2 ~chain_va:0x66_0000L (* unmapped *) with
  | () -> Alcotest.fail "fault not raised"
  | exception Kbase.Driver_error msg ->
    check Alcotest.bool "mentions fault" true (String.length msg > 0)

let driver_run_before_init () =
  let drv, _, _, _, _ = make () in
  match Kbase.run_job drv ~as_idx:0 ~chain_va:0x1000L with
  | () -> Alcotest.fail "should reject"
  | exception Kbase.Driver_error _ -> ()

let driver_as_not_present () =
  let drv, _, _, _, _ = make ~sku:Sku.g31_mp2 () in
  Kbase.init drv;
  (* G31 exposes only 4 address spaces. *)
  match Kbase.create_address_space drv ~as_idx:6 with
  | _ -> Alcotest.fail "AS 6 should not exist on G31"
  | exception Kbase.Driver_error _ -> ()

let driver_register_traffic_profile () =
  (* The recorder's whole premise: driver activity is dominated by register
     reads (>90% of accesses are reads in the paper's measurement; our
     modeled driver is more write-heavy at init but reads dominate polling).
     Check the gross counts are in sane ranges. *)
  let drv, _, _, _, counters = make () in
  Kbase.init drv;
  let reads = Counters.get_int counters "reg.reads" in
  let writes = Counters.get_int counters "reg.writes" in
  check Alcotest.bool "init does >40 accesses" true (reads + writes > 40);
  check Alcotest.bool "polls happened" true (Counters.get_int counters "poll.instances" > 0)

let driver_block_mapping () =
  let drv, _, mem, _, _ = make () in
  Kbase.init drv;
  let mmu = Kbase.create_address_space drv ~as_idx:1 in
  Kbase.map_block_region drv ~mmu ~as_idx:1 ~va:(Int64.of_int (1 lsl 21))
    ~pa:(Int64.of_int (16 * (1 lsl 21))) ~blocks:2 ~flags:Mmu.ro_data;
  ignore mem;
  match Mmu.translate mmu ~va:(Int64.of_int ((1 lsl 21) + 123)) ~access:`Read with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "block mapping not visible"

let () =
  Alcotest.run "grt_driver"
    [
      ( "init",
        [
          Alcotest.test_case "discovers hardware" `Quick driver_init_discovers_hardware;
          Alcotest.test_case "detects v8 page tables" `Quick driver_detects_v8_format;
          Alcotest.test_case "applies quirks (listing 1a)" `Quick driver_applies_quirks;
          Alcotest.test_case "no quirk without ACE" `Quick driver_no_quirk_without_ace;
          Alcotest.test_case "double init rejected" `Quick driver_double_init_rejected;
          Alcotest.test_case "power cycles" `Quick driver_power_cycles_cores;
          Alcotest.test_case "register traffic profile" `Quick driver_register_traffic_profile;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "runs a job" `Quick driver_runs_job;
          Alcotest.test_case "serializes jobs" `Quick driver_serializes_jobs;
          Alcotest.test_case "parks cores between jobs" `Quick driver_powers_down_between_jobs;
          Alcotest.test_case "job fault raises" `Quick driver_job_fault_raises;
          Alcotest.test_case "run before init" `Quick driver_run_before_init;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "absent AS rejected" `Quick driver_as_not_present;
          Alcotest.test_case "block mapping" `Quick driver_block_mapping;
        ] );
    ]
