(* Tests for the cloud recording VM (§6): devicetree selection per client
   GPU, one-client sealing, and the continuous-validation page guards the
   recorder arms around each job (§5). *)

module Cloudvm = Grt.Cloudvm
module Sku = Grt_gpu.Sku
module Mem = Grt_gpu.Mem

let check = Alcotest.check

let image = Cloudvm.default_image

let image_covers_catalog () =
  check Alcotest.int "one tree per SKU" (List.length Sku.all)
    (List.length image.Cloudvm.trees);
  List.iter
    (fun sku ->
      match Cloudvm.boot image ~client_gpu_id:sku.Sku.gpu_id with
      | Ok vm ->
        let t = Cloudvm.selected_tree vm in
        check Alcotest.int64 (sku.Sku.name ^ " tree id") sku.Sku.gpu_id t.Cloudvm.gpu_id
      | Error _ -> Alcotest.failf "no devicetree for %s" sku.Sku.name)
    Sku.all

let boot_rejects_unknown_gpu () =
  match Cloudvm.boot image ~client_gpu_id:0xDEAD_BEEFL with
  | Error (Cloudvm.Unsupported_gpu id) -> check Alcotest.int64 "echoes id" 0xDEAD_BEEFL id
  | _ -> Alcotest.fail "unknown GPU booted"

let devicetree_fields () =
  let t = Cloudvm.devicetree_for Sku.g71_mp8 in
  check Alcotest.string "compatible" "arm,mali-bifrost" t.Cloudvm.compatible;
  check Alcotest.string "model" "mali-g71-mp8" t.Cloudvm.model;
  check Alcotest.int "three irq lines" 3 (List.length t.Cloudvm.irq_lines);
  check Alcotest.bool "ACE platform" true t.Cloudvm.coherency_ace;
  let t31 = Cloudvm.devicetree_for Sku.g31_mp2 in
  check Alcotest.bool "G31 not ACE" false t31.Cloudvm.coherency_ace

let vm_seals_to_one_client () =
  match Cloudvm.boot image ~client_gpu_id:Sku.g71_mp8.Sku.gpu_id with
  | Error _ -> Alcotest.fail "boot failed"
  | Ok vm -> (
    (match Cloudvm.begin_session vm ~client:"alice" with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "first client refused");
    (match Cloudvm.begin_session vm ~client:"bob" with
    | Error Cloudvm.Already_serving -> ()
    | _ -> Alcotest.fail "second client accepted — VM not sealed");
    check (Alcotest.option Alcotest.string) "serving alice" (Some "alice") (Cloudvm.serving vm);
    Cloudvm.end_session vm;
    match Cloudvm.begin_session vm ~client:"bob" with
    | Ok () -> check Alcotest.int "two sessions total" 2 (Cloudvm.sessions_served vm)
    | Error _ -> Alcotest.fail "VM not reusable after scrub")

let measurement_covers_trees () =
  (* Changing the set of shipped devicetrees must change the measurement —
     the client's attestation pins the exact image. *)
  let m1 = Grt_tee.Attestation.measure image.Cloudvm.measurement in
  let m2 =
    Grt_tee.Attestation.measure
      { image.Cloudvm.measurement with Grt_tee.Attestation.devicetree = "mali-g71-mp8" }
  in
  check Alcotest.bool "tree set is measured" false (Int64.equal m1 m2)

(* ---- continuous validation (§5) ---- *)

let guard_basic () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 2 in
  Mem.write_u32 m pa 1L;
  Mem.protect_pages m [ Mem.page_of_addr pa ];
  (match Mem.write_u32 m pa 2L with
  | () -> Alcotest.fail "protected write succeeded"
  | exception Mem.Protected_page_write pfn ->
    check Alcotest.int64 "names the page" (Mem.page_of_addr pa) pfn);
  (* Reads remain allowed; other pages remain writable. *)
  check Alcotest.int64 "read ok" 1L (Mem.read_u32 m pa);
  Mem.write_u32 m (Int64.add pa (Int64.of_int Mem.page_size)) 3L;
  Mem.unprotect_all m;
  Mem.write_u32 m pa 2L;
  check Alcotest.int64 "writable after unprotect" 2L (Mem.read_u32 m pa)

let guard_set_page () =
  let m = Mem.create () in
  Mem.protect_pages m [ 0x55L ];
  match Mem.set_page m 0x55L (Bytes.make Mem.page_size 'x') with
  | () -> Alcotest.fail "set_page bypassed protection"
  | exception Mem.Protected_page_write _ -> ()

let record_runs_clean_under_validation () =
  (* The whole record pipeline executes with the guards armed around every
     job; if the driver or runtime touched dumped metastate mid-job, this
     would raise. *)
  let o =
    Grt.Orchestrate.record ~profile:Grt_net.Profile.wifi ~mode:Grt.Mode.Ours_mds
      ~sku:Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed:50L ()
  in
  check Alcotest.bool "completed" true (Array.length o.Grt.Orchestrate.recording.Grt.Recording.entries > 0)

let spurious_access_trapped () =
  (* Simulate the §5 scenario directly: once the job-start dump is shipped,
     a stray CPU write into a dumped (protected) page must trap. *)
  let mem = Mem.create () in
  let pa = Mem.alloc_pages mem 1 in
  Mem.write_u32 mem pa 0xAAL;
  (* "ship the dump" *)
  Mem.protect_pages mem [ Mem.page_of_addr pa ];
  let trapped =
    match Mem.write_u8 mem (Int64.add pa 100L) 1 with
    | () -> false
    | exception Mem.Protected_page_write _ -> true
  in
  check Alcotest.bool "spurious access reported as error" true trapped

let recordings_not_shared_across_clients () =
  (* §3.1: the cloud never caches and reuses recordings across clients,
     even for identical SKUs and workloads — each client session produces
     its own recording (distinct physical-GPU nondeterminism, distinct
     signatures over it). *)
  let record seed =
    Grt.Orchestrate.record ~profile:Grt_net.Profile.wifi ~mode:Grt.Mode.Ours_mds
      ~sku:Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed ()
  in
  let a = record 1L and b = record 2L in
  check Alcotest.bool "per-client recordings differ" false
    (Bytes.equal a.Grt.Orchestrate.blob b.Grt.Orchestrate.blob);
  (* Both are nevertheless valid recordings of the same workload. *)
  List.iter
    (fun (o : Grt.Orchestrate.record_outcome) ->
      match
        Grt.Recording.verify_and_parse ~key:Grt.Orchestrate.cloud_signing_key
          o.Grt.Orchestrate.blob
      with
      | Ok r -> check Alcotest.string "same workload" "MNIST" r.Grt.Recording.workload
      | Error e -> Alcotest.fail e)
    [ a; b ]

let () =
  Alcotest.run "grt_cloudvm"
    [
      ( "devicetrees",
        [
          Alcotest.test_case "image covers catalog" `Quick image_covers_catalog;
          Alcotest.test_case "unknown GPU rejected" `Quick boot_rejects_unknown_gpu;
          Alcotest.test_case "devicetree fields" `Quick devicetree_fields;
          Alcotest.test_case "measurement covers trees" `Quick measurement_covers_trees;
        ] );
      ( "sealing",
        [
          Alcotest.test_case "one client at a time" `Quick vm_seals_to_one_client;
          Alcotest.test_case "recordings not shared across clients" `Quick
            recordings_not_shared_across_clients;
        ] );
      ( "continuous-validation",
        [
          Alcotest.test_case "guard basics" `Quick guard_basic;
          Alcotest.test_case "guard set_page" `Quick guard_set_page;
          Alcotest.test_case "record runs clean" `Quick record_runs_clean_under_validation;
          Alcotest.test_case "spurious access trapped" `Quick spurious_access_trapped;
        ] );
    ]
