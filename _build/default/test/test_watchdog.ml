(* §3.3's motivation, reproduced: naive per-access forwarding over a slow
   link violates the GPU stack's timing assumptions — the job watchdog
   fires, the driver keeps resetting the GPU, and recording becomes
   unusable. The optimized recorder on the same link stays inside the
   window. *)

module Kbase = Grt_driver.Kbase
module Mode = Grt.Mode
module Gpushim = Grt.Gpushim
module Drivershim = Grt.Drivershim
module Memsync = Grt.Memsync
module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Sku = Grt_gpu.Sku
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Clock = Grt_sim.Clock

let check = Alcotest.check

(* One ReLU job driven through the full remote pipeline on [profile]. *)
let run_one_job ~mode ~profile =
  let clock = Clock.create () in
  let link = Link.create ~clock profile in
  let cfg = Mode.default_config mode in
  let gpushim = Gpushim.create ~clock ~sku:Sku.g71_mp8 ~session_salt:3L ~cfg () in
  Gpushim.isolate gpushim;
  let cloud_mem = Mem.create () in
  let shim = Drivershim.create ~cfg ~link ~gpushim ~cloud_mem () in
  let drv = Kbase.create ~backend:(Drivershim.backend shim) ~mem:cloud_mem ~coherency_ace:true in
  Kbase.init drv;
  let mmu = Kbase.create_address_space drv ~as_idx:1 in
  let shader_bin = Shader.compile ~sku:Sku.g71_mp8 ~op:Shader.Relu in
  let code_pa = Mem.alloc_pages cloud_mem 1 in
  Mem.write_bytes cloud_mem code_pa shader_bin;
  let data_pa = Mem.alloc_pages cloud_mem 1 in
  let desc_pa = Mem.alloc_pages cloud_mem 1 in
  Kbase.map_region drv ~mmu ~as_idx:1 ~va:0x10_0000L ~pa:code_pa ~pages:1 ~flags:Mmu.rx_code;
  Kbase.map_region drv ~mmu ~as_idx:1 ~va:0x20_0000L ~pa:data_pa ~pages:1 ~flags:Mmu.rw_data;
  Kbase.map_region drv ~mmu ~as_idx:1 ~va:0x30_0000L ~pa:desc_pa ~pages:1 ~flags:Mmu.rw_data;
  (* Classify regions so memory sync works on this hand-built session. *)
  List.iter
    (fun (name, usage, pa, va) ->
      let r =
        {
          Memsync.name;
          usage;
          va;
          pa;
          model_bytes = Mem.page_size;
          actual_bytes = Mem.page_size;
        }
      in
      Memsync.register_region (Drivershim.downlink shim) r;
      Memsync.register_region (Gpushim.uplink gpushim) r)
    [
      ("code", Grt_runtime.Session.Code, code_pa, 0x10_0000L);
      ("data", Grt_runtime.Session.Scratch, data_pa, 0x20_0000L);
      ("cmd", Grt_runtime.Session.Cmd, desc_pa, 0x30_0000L);
    ];
  Job_desc.write cloud_mem ~pa:desc_pa
    {
      Job_desc.op = Shader.Relu;
      shader_va = 0x10_0000L;
      input_va = 0x20_0000L;
      input2_va = 0L;
      bias_va = 0L;
      output_va = 0x20_0100L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 2;
          in_h = 1;
          in_w = 1;
          out_c = 2;
          out_h = 1;
          out_w = 1;
          flops_hint = 100L;
        };
      next_va = 0L;
    };
  let outcome =
    match Kbase.run_job drv ~as_idx:1 ~chain_va:0x30_0000L with
    | () -> `Completed
    | exception Kbase.Driver_error msg -> `Failed msg
  in
  (outcome, Kbase.hang_recoveries drv)

(* A pathologically slow link: each naive register access costs ~1.2 s. *)
let swamp = Profile.custom ~name:"swamp" ~rtt_ms:1200.0 ~bandwidth_mbps:2.0

let naive_healthy_on_wifi () =
  let outcome, hangs = run_one_job ~mode:Mode.Naive ~profile:Profile.wifi in
  check Alcotest.bool "completes" true (outcome = `Completed);
  check Alcotest.int "no watchdog resets" 0 hangs

let naive_thrashes_on_slow_link () =
  (* The submission path alone (several accesses x 1.2 s) blows the 4 s
     watchdog: the driver resets and retries until it gives up. *)
  let outcome, hangs = run_one_job ~mode:Mode.Naive ~profile:swamp in
  (match outcome with
  | `Failed msg ->
    check Alcotest.bool "gives up on persistent hang" true
      (String.length msg > 0)
  | `Completed -> Alcotest.fail "naive forwarding should be unusable on this link");
  check Alcotest.bool "watchdog fired repeatedly" true (hangs >= 3)

let optimized_survives_slow_link () =
  (* With deferral + speculation the submit batch is one commit, well
     inside the watchdog window even on the swamp link. *)
  let outcome, hangs = run_one_job ~mode:Mode.Ours_mds ~profile:swamp in
  check Alcotest.bool "completes" true (outcome = `Completed);
  check Alcotest.int "no watchdog resets" 0 hangs

let deferral_alone_survives () =
  let outcome, _ = run_one_job ~mode:Mode.Ours_md ~profile:swamp in
  check Alcotest.bool "completes" true (outcome = `Completed)

let native_never_hangs () =
  (* Sanity: local execution is orders of magnitude inside the window. *)
  let clock = Clock.create () in
  let plan = Grt_mlfw.Network.expand Grt_mlfw.Zoo.mnist in
  let input = Grt_mlfw.Runner.input_values plan ~seed:1L in
  let r =
    Grt.Native.run_inference ~clock ~sku:Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed:1L ~input ()
  in
  check Alcotest.bool "ran" true (Array.length r.Grt.Native.output > 0)

let () =
  Alcotest.run "grt_watchdog"
    [
      ( "timing-assumptions",
        [
          Alcotest.test_case "naive healthy on wifi" `Quick naive_healthy_on_wifi;
          Alcotest.test_case "naive thrashes on slow link" `Quick naive_thrashes_on_slow_link;
          Alcotest.test_case "GR-T survives slow link" `Quick optimized_survives_slow_link;
          Alcotest.test_case "deferral alone survives" `Quick deferral_alone_survives;
          Alcotest.test_case "native never hangs" `Quick native_never_hangs;
        ] );
    ]
