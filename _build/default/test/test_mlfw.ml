(* Tests for the ML framework: network expansion invariants, the six
   paper networks (exact job counts from Table 1), runner execution and
   CPU-reference agreement. *)

module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo
module Runner = Grt_mlfw.Runner
module Reference = Grt_mlfw.Reference
module Session = Grt_runtime.Session
module Job_desc = Grt_gpu.Job_desc
module Shader = Grt_gpu.Shader
module Sku = Grt_gpu.Sku

let check = Alcotest.check

(* ---- exact job counts: the anchor of Table 1 ---- *)

let zoo_job_counts () =
  List.iter
    (fun net ->
      check Alcotest.int
        (Printf.sprintf "%s job count matches Table 1" net.Network.name)
        (Zoo.paper_job_count net) (Network.job_count net))
    Zoo.all

let zoo_expansion_counts_agree () =
  List.iter
    (fun net ->
      let plan = Network.expand net in
      check Alcotest.int
        (Printf.sprintf "%s plan jobs = declared count" net.Network.name)
        (Network.job_count net)
        (List.length plan.Network.jobs))
    Zoo.all

let zoo_model_scale_sanity () =
  (* Classic architectures: VGG16 has ~528 MB of FP32 weights, AlexNet
     ~230-240 MB, MobileNet ~16 MB. *)
  let weight_mb net =
    float_of_int (Network.model_weight_bytes (Network.expand net)) /. 1048576.
  in
  let vgg = weight_mb Zoo.vgg16 in
  if vgg < 480. || vgg > 580. then Alcotest.failf "vgg16 weights %.0f MB" vgg;
  let alex = weight_mb Zoo.alexnet in
  if alex < 200. || alex > 280. then Alcotest.failf "alexnet weights %.0f MB" alex;
  let mob = weight_mb Zoo.mobilenet in
  if mob < 10. || mob > 25. then Alcotest.failf "mobilenet weights %.0f MB" mob;
  check Alcotest.bool "mnist tiny" true (weight_mb Zoo.mnist < 1.0)

let zoo_flops_ordering () =
  let flops net = Network.model_flops (Network.expand net) in
  check Alcotest.bool "vgg heaviest" true
    (List.for_all (fun n -> Int64.compare (flops Zoo.vgg16) (flops n) >= 0) Zoo.all);
  check Alcotest.bool "mnist lightest" true
    (List.for_all (fun n -> Int64.compare (flops Zoo.mnist) (flops n) <= 0) Zoo.all)

let zoo_find () =
  check Alcotest.bool "find by name" true (Zoo.find "VGG16" = Some Zoo.vgg16);
  check Alcotest.bool "unknown" true (Zoo.find "GPT4" = None)

(* ---- plan structural invariants ---- *)

let plan_invariants () =
  List.iter
    (fun net ->
      let plan = Network.expand net in
      let buffer_names =
        List.map (fun (b : Network.buffer_spec) -> b.Network.bname) plan.Network.buffers
      in
      let unique = List.sort_uniq compare buffer_names in
      check Alcotest.int
        (net.Network.name ^ ": buffer names unique")
        (List.length buffer_names) (List.length unique);
      let exists n = List.mem n buffer_names in
      List.iter
        (fun (j : Network.job_spec) ->
          if not (exists j.Network.input) then Alcotest.failf "dangling input %s" j.Network.input;
          if not (exists j.Network.output) then Alcotest.failf "dangling output %s" j.Network.output;
          Option.iter
            (fun n -> if not (exists n) then Alcotest.failf "dangling input2 %s" n)
            j.Network.input2;
          (* materialized geometry is positive *)
          let p = j.Network.mat in
          if p.Job_desc.out_c <= 0 || p.Job_desc.out_h <= 0 || p.Job_desc.out_w <= 0 then
            Alcotest.failf "%s: empty materialized output in %s" net.Network.name j.Network.jname;
          if Int64.compare p.Job_desc.flops_hint 0L <= 0 then
            Alcotest.failf "%s: no flops hint in %s" net.Network.name j.Network.jname)
        plan.Network.jobs;
      check Alcotest.bool "input buffer exists" true (exists plan.Network.input_buffer);
      check Alcotest.bool "output buffer exists" true (exists plan.Network.output_buffer))
    Zoo.all

let plan_weight_buffers_are_weights () =
  let plan = Network.expand Zoo.vgg16 in
  List.iter
    (fun name ->
      match List.find_opt (fun (b : Network.buffer_spec) -> b.Network.bname = name) plan.Network.buffers with
      | Some b ->
        if b.Network.busage <> Session.Weights then Alcotest.failf "%s not a weight buffer" name
      | None -> Alcotest.failf "missing weight buffer %s" name)
    plan.Network.weight_buffers

let plan_partition_counts () =
  (* Each conv/fc layer's jobs must tile its partitions exactly once. *)
  let plan = Network.expand Zoo.alexnet in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (j : Network.job_spec) ->
      match j.Network.op with
      | Shader.Conv2d | Shader.Fc ->
        let key = (j.Network.layer, j.Network.mat.Job_desc.part_count) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    plan.Network.jobs;
  Hashtbl.iter
    (fun (layer, parts) seen ->
      if seen <> parts then Alcotest.failf "layer %d: %d jobs for %d parts" layer seen parts)
    tbl

let builder_rejects_dangling () =
  let b = Network.Builder.create () in
  match Network.Builder.add b ~from:3 Network.Softmax with
  | _ -> Alcotest.fail "dangling from accepted"
  | exception Invalid_argument _ -> ()

let qcheck_mat_shapes_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"materialized tensors stay small"
       (QCheck2.Gen.oneofl Zoo.all)
       (fun net ->
         let plan = Network.expand net in
         List.for_all
           (fun (b : Network.buffer_spec) -> b.Network.actual_bytes <= 1 lsl 20)
           plan.Network.buffers))

(* ---- runner + reference ---- *)

let run_native net =
  let clock = Grt_sim.Clock.create () in
  let plan = Network.expand net in
  let input = Runner.input_values plan ~seed:11L in
  let r = Grt.Native.run_inference ~clock ~sku:Sku.g71_mp8 ~net ~seed:11L ~input () in
  (plan, input, r)

let runner_matches_reference name net () =
  let plan, input, r = run_native net in
  let weights = Runner.weight_values plan ~seed:11L in
  let expected = Reference.run plan ~weights ~input in
  check Alcotest.int (name ^ " output length") (Array.length expected)
    (Array.length r.Grt.Native.output);
  Array.iteri
    (fun i v ->
      if abs_float (v -. r.Grt.Native.output.(i)) > 1e-5 then
        Alcotest.failf "%s: output[%d] gpu=%f ref=%f" name i r.Grt.Native.output.(i) v)
    expected

let runner_output_is_probability name net () =
  (* Every zoo network ends in softmax (over the materialized classes). *)
  let _, _, r = run_native net in
  let sum = Array.fold_left ( +. ) 0.0 r.Grt.Native.output in
  check (Alcotest.float 1e-4) (name ^ " softmax sums to 1") 1.0 sum;
  Array.iter (fun v -> if v < 0.0 || v > 1.0 then Alcotest.failf "bad probability %f" v)
    r.Grt.Native.output

let weights_deterministic () =
  let plan = Network.expand Zoo.mnist in
  let a = Runner.weight_values plan ~seed:5L and b = Runner.weight_values plan ~seed:5L in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      check Alcotest.string "same order" n1 n2;
      check Alcotest.bool "same values" true (v1 = v2))
    a b;
  let c = Runner.weight_values plan ~seed:6L in
  check Alcotest.bool "different seed differs" false
    (List.for_all2 (fun (_, v1) (_, v2) -> v1 = v2) a c)

let input_sensitivity () =
  (* Different inputs through the same weights must give different outputs —
     i.e. the pipeline is actually computing, not constant. *)
  let net = Zoo.mnist in
  let clock = Grt_sim.Clock.create () in
  let plan = Network.expand net in
  let i1 = Runner.input_values plan ~seed:1L in
  let r1 = Grt.Native.run_inference ~clock ~sku:Sku.g71_mp8 ~net ~seed:11L ~input:i1 () in
  let clock2 = Grt_sim.Clock.create () in
  let i2 = Runner.input_values plan ~seed:2L in
  let r2 = Grt.Native.run_inference ~clock:clock2 ~sku:Sku.g71_mp8 ~net ~seed:11L ~input:i2 () in
  check Alcotest.bool "outputs differ" false (r1.Grt.Native.output = r2.Grt.Native.output)

let native_delay_ordering () =
  let delay net =
    let _, _, r = run_native net in
    r.Grt.Native.delay_s
  in
  let mnist = delay Zoo.mnist and vgg = delay Zoo.vgg16 in
  check Alcotest.bool "vgg16 much slower than mnist" true (vgg > 5.0 *. mnist)

let () =
  Alcotest.run "grt_mlfw"
    [
      ( "zoo",
        [
          Alcotest.test_case "exact Table 1 job counts" `Quick zoo_job_counts;
          Alcotest.test_case "expansion counts agree" `Quick zoo_expansion_counts_agree;
          Alcotest.test_case "model-scale weights" `Quick zoo_model_scale_sanity;
          Alcotest.test_case "flops ordering" `Quick zoo_flops_ordering;
          Alcotest.test_case "find" `Quick zoo_find;
        ] );
      ( "plan",
        [
          Alcotest.test_case "structural invariants" `Quick plan_invariants;
          Alcotest.test_case "weight buffers tagged" `Quick plan_weight_buffers_are_weights;
          Alcotest.test_case "partitions tile layers" `Quick plan_partition_counts;
          Alcotest.test_case "builder rejects dangling" `Quick builder_rejects_dangling;
          qcheck_mat_shapes_bounded;
        ] );
      ( "execution",
        [
          Alcotest.test_case "mnist matches reference" `Quick
            (runner_matches_reference "mnist" Zoo.mnist);
          Alcotest.test_case "squeezenet matches reference" `Quick
            (runner_matches_reference "squeezenet" Zoo.squeezenet);
          Alcotest.test_case "resnet12 matches reference" `Quick
            (runner_matches_reference "resnet12" Zoo.resnet12);
          Alcotest.test_case "mobilenet matches reference" `Slow
            (runner_matches_reference "mobilenet" Zoo.mobilenet);
          Alcotest.test_case "vgg16 matches reference" `Slow
            (runner_matches_reference "vgg16" Zoo.vgg16);
          Alcotest.test_case "mnist outputs probabilities" `Quick
            (runner_output_is_probability "mnist" Zoo.mnist);
          Alcotest.test_case "alexnet outputs probabilities" `Quick
            (runner_output_is_probability "alexnet" Zoo.alexnet);
          Alcotest.test_case "weights deterministic" `Quick weights_deterministic;
          Alcotest.test_case "input sensitivity" `Quick input_sensitivity;
          Alcotest.test_case "native delay ordering" `Quick native_delay_ordering;
        ] );
    ]
