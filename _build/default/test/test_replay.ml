(* End-to-end record → replay tests: correctness of replayed computation,
   input independence, SKU specificity, security rejections, misprediction
   recovery and the full orchestration pipeline. *)

module Orchestrate = Grt.Orchestrate
module Replayer = Grt.Replayer
module Recording = Grt.Recording
module Gpushim = Grt.Gpushim
module Mode = Grt.Mode
module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo
module Runner = Grt_mlfw.Runner
module Profile = Grt_net.Profile
module Sku = Grt_gpu.Sku

let check = Alcotest.check

let sku = Sku.g71_mp8

let record ?history ?(mode = Mode.Ours_mds) ?(net = Zoo.mnist) ?(seed = 42L) () =
  Orchestrate.record ?history ~profile:Profile.wifi ~mode ~sku ~net ~seed ()

let mnist_recording = lazy (record ())

let plan = lazy (Network.expand Zoo.mnist)

let native_output input =
  let clock = Grt_sim.Clock.create () in
  (Grt.Native.run_inference ~clock ~sku ~net:Zoo.mnist ~seed:42L ~input ()).Grt.Native.output

let replay ?(blob = (Lazy.force mnist_recording).Orchestrate.blob) ?(seed = 42L) input =
  let params = Runner.weight_values (Lazy.force plan) ~seed:42L in
  Orchestrate.replay_recording ~sku ~blob ~input ~params ~seed ()

let replay_matches_native () =
  let input = Runner.input_values (Lazy.force plan) ~seed:42L in
  let ro = replay input in
  check Alcotest.bool "bit-identical output" true
    (ro.Orchestrate.r.Replayer.output = native_output input)

let replay_input_independence () =
  (* §2.3: one recording, arbitrarily many fresh inputs. *)
  let p = Lazy.force plan in
  List.iter
    (fun seed ->
      let input = Runner.input_values p ~seed in
      let ro = replay input in
      check Alcotest.bool
        (Printf.sprintf "fresh input (seed %Ld) replays correctly" seed)
        true
        (ro.Orchestrate.r.Replayer.output = native_output input))
    [ 1L; 2L; 3L ]

let replay_without_params_differs () =
  (* Parameters are injected by the TEE app; skipping them must change the
     result (the recording itself contains no model weights). *)
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let o = Lazy.force mnist_recording in
  let ro = Orchestrate.replay_recording ~sku ~blob:o.Orchestrate.blob ~input ~params:[] ~seed:1L () in
  check Alcotest.bool "weights matter" false
    (ro.Orchestrate.r.Replayer.output = native_output input)

let recording_contains_no_weights () =
  (* Confidentiality (§7.1): the signed recording must not embed the
     parameter values anywhere. Weights stay zero during the dry run, so
     simply assert no Mem_load page overlaps a parameter slot. *)
  let o = Lazy.force mnist_recording in
  let rec_t = o.Orchestrate.recording in
  let param_pfns =
    List.concat_map
      (fun s ->
        let first = Int64.shift_right_logical s.Recording.pa 12 in
        let pages = (s.Recording.actual_bytes + 4095) / 4096 in
        List.init pages (fun i -> Int64.add first (Int64.of_int i)))
      (Recording.param_slots rec_t)
  in
  Array.iter
    (function
      | Recording.Mem_load { pages } ->
        List.iter
          (fun (pfn, _) ->
            if List.mem pfn param_pfns then Alcotest.fail "weight page leaked into recording")
          pages
      | _ -> ())
    rec_t.Recording.entries

let replay_faster_than_native () =
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let ro = replay input in
  let clock = Grt_sim.Clock.create () in
  let nat = Grt.Native.run_inference ~clock ~sku ~net:Zoo.mnist ~seed:42L ~input () in
  check Alcotest.bool "replay beats native for small NNs" true
    (ro.Orchestrate.r.Replayer.delay_s < nat.Grt.Native.delay_s)

let replay_rejects_wrong_sku () =
  (* §2.4: subtle SKU differences break replay — here it is rejected up
     front by the identity check. *)
  let o = Lazy.force mnist_recording in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let params = Runner.weight_values p ~seed:42L in
  match
    Orchestrate.replay_recording ~sku:Sku.g76_mp12 ~blob:o.Orchestrate.blob ~input ~params
      ~seed:1L ()
  with
  | _ -> Alcotest.fail "foreign SKU accepted"
  | exception Replayer.Rejected msg ->
    check Alcotest.bool "mentions SKU" true
      (String.length msg > 0 && String.contains msg 'S')

let replay_rejects_tampered_blob () =
  let o = Lazy.force mnist_recording in
  let blob = Bytes.copy o.Orchestrate.blob in
  Bytes.set blob (Bytes.length blob / 2) '\xFF';
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  match Orchestrate.replay_recording ~sku ~blob ~input ~params:[] ~seed:1L () with
  | _ -> Alcotest.fail "tampered blob accepted"
  | exception Replayer.Rejected _ -> ()

let replay_rejects_unknown_param_slot () =
  let o = Lazy.force mnist_recording in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  match
    Orchestrate.replay_recording ~sku ~blob:o.Orchestrate.blob ~input
      ~params:[ ("w.99", [| 1.0 |]) ] ~seed:1L ()
  with
  | _ -> Alcotest.fail "unknown slot accepted"
  | exception Replayer.Rejected _ -> ()

let replay_detects_divergence () =
  (* Corrupt a verified register READ value inside a resigned recording:
     the replayer must notice the GPU disagreeing. (An adversary with the
     signing key still cannot make the GPU lie.) *)
  let o = Lazy.force mnist_recording in
  let rec_t = o.Orchestrate.recording in
  let entries = Array.copy rec_t.Recording.entries in
  let patched = ref false in
  Array.iteri
    (fun i e ->
      match e with
      | Recording.Reg_read { reg; value; verify = true } when not !patched ->
        entries.(i) <- Recording.Reg_read { reg; value = Int64.logxor value 0x5L; verify = true };
        patched := true
      | _ -> ())
    entries;
  check Alcotest.bool "found a verified read to corrupt" true !patched;
  let blob =
    Recording.sign ~key:Orchestrate.cloud_signing_key { rec_t with Recording.entries }
  in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let params = Runner.weight_values p ~seed:42L in
  match Orchestrate.replay_recording ~sku ~blob ~input ~params ~seed:1L () with
  | _ -> Alcotest.fail "divergence not detected"
  | exception Replayer.Divergence _ -> ()

let replay_all_modes_equivalent () =
  (* Recordings from every recorder configuration replay to the same
     output: the optimizations must not change semantics. *)
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let expected = native_output input in
  List.iter
    (fun mode ->
      let o = record ~mode () in
      let ro = replay ~blob:o.Orchestrate.blob input in
      check Alcotest.bool
        (Printf.sprintf "%s recording replays correctly" (Mode.name mode))
        true
        (ro.Orchestrate.r.Replayer.output = expected))
    Mode.all

let replay_gpu_isolated_during_session () =
  let o = Lazy.force mnist_recording in
  let clock = Grt_sim.Clock.create () in
  let g =
    Gpushim.create ~clock ~sku ~session_salt:77L ~cfg:(Mode.default_config Mode.Ours_mds) ()
  in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let params = Runner.weight_values p ~seed:42L in
  let r =
    Replayer.replay ~gpushim:g ~signing_key:Orchestrate.cloud_signing_key
      ~blob:o.Orchestrate.blob ~input ~params ()
  in
  check Alcotest.bool "released after replay" false (Gpushim.isolated g);
  check Alcotest.bool "entries applied" true (r.Replayer.entries_applied > 100);
  check Alcotest.bool "nondet reads skipped" true (r.Replayer.reads_skipped_nondet > 0)

let record_with_injected_fault_recovers () =
  (* §7.3: warm the history, poison one response, expect exactly one
     rollback and a recording that still replays correctly. *)
  let history = Grt.Drivershim.fresh_history () in
  ignore (record ~history ());
  let o =
    Orchestrate.record ~history ~inject_fault_after:120 ~profile:Profile.wifi
      ~mode:Mode.Ours_mds ~sku ~net:Zoo.mnist ~seed:43L ()
  in
  check Alcotest.int "one rollback" 1 o.Orchestrate.rollbacks;
  check Alcotest.bool "recovery took time" true (o.Orchestrate.rollback_s > 0.1);
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:42L in
  let ro = replay ~blob:o.Orchestrate.blob input in
  check Alcotest.bool "post-recovery recording is correct" true
    (ro.Orchestrate.r.Replayer.output = native_output input)

let sku_matrix_records_everywhere () =
  (* Late binding: the same hardware-neutral workload records on any SKU,
     and each recording replays only on its own SKU. *)
  List.iter
    (fun client_sku ->
      let o =
        Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku:client_sku
          ~net:Zoo.mnist ~seed:42L ()
      in
      check Alcotest.int64
        (client_sku.Sku.name ^ " recording bound to its SKU")
        client_sku.Sku.gpu_id o.Orchestrate.recording.Recording.gpu_id;
      let p = Lazy.force plan in
      let input = Runner.input_values p ~seed:42L in
      let params = Runner.weight_values p ~seed:42L in
      let ro =
        Orchestrate.replay_recording ~sku:client_sku ~blob:o.Orchestrate.blob ~input ~params
          ~seed:1L ()
      in
      check Alcotest.bool
        (client_sku.Sku.name ^ " replays on itself")
        true
        (Array.length ro.Orchestrate.r.Replayer.output > 0))
    [ Sku.g52_mp4; Sku.g31_mp2 ]

let () =
  Alcotest.run "grt_replay"
    [
      ( "correctness",
        [
          Alcotest.test_case "replay matches native" `Quick replay_matches_native;
          Alcotest.test_case "input independence" `Quick replay_input_independence;
          Alcotest.test_case "weights matter" `Quick replay_without_params_differs;
          Alcotest.test_case "all modes equivalent" `Slow replay_all_modes_equivalent;
          Alcotest.test_case "replay faster than native" `Quick replay_faster_than_native;
        ] );
      ( "security",
        [
          Alcotest.test_case "no weights in recording" `Quick recording_contains_no_weights;
          Alcotest.test_case "rejects wrong SKU" `Quick replay_rejects_wrong_sku;
          Alcotest.test_case "rejects tampered blob" `Quick replay_rejects_tampered_blob;
          Alcotest.test_case "rejects unknown param slot" `Quick replay_rejects_unknown_param_slot;
          Alcotest.test_case "detects GPU divergence" `Quick replay_detects_divergence;
          Alcotest.test_case "GPU isolated during session" `Quick replay_gpu_isolated_during_session;
        ] );
      ( "recovery",
        [ Alcotest.test_case "injected fault recovers" `Quick record_with_injected_fault_recovers ]
      );
      ("sku", [ Alcotest.test_case "records on every SKU" `Slow sku_matrix_records_everywhere ]);
    ]
