(* Remote debugging via log comparison (§3.2): record the same workload on
   a healthy client and on one with a silicon/firmware erratum; the diff
   must localize the divergence to the faulty register. *)

module Orchestrate = Grt.Orchestrate
module Debugcheck = Grt.Debugcheck
module Recording = Grt.Recording
module Mode = Grt.Mode
module Zoo = Grt_mlfw.Zoo
module Profile = Grt_net.Profile
module Sku = Grt_gpu.Sku
module Regs = Grt_gpu.Regs

let check = Alcotest.check

let record_on sku =
  Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_md ~sku ~net:Zoo.mnist ~seed:77L ()

let reference = lazy (record_on Sku.g71_mp8).Orchestrate.recording

(* A "buggy" client: same GPU identity, but the shader-config register
   resets to a different value — a silicon-revision erratum the cloud's
   driver does not know about. *)
let erratic_sku = { Sku.g71_mp8 with Sku.quirk_shader_config = 0x0000_0042L }

let same_device_is_healthy () =
  let a = Lazy.force reference in
  let b = (record_on Sku.g71_mp8).Orchestrate.recording in
  let r = Debugcheck.compare_logs ~reference:a ~subject:b in
  check Alcotest.bool "healthy" true (Debugcheck.healthy r);
  check Alcotest.int "all compared match" r.Debugcheck.compared r.Debugcheck.matching

let erratum_is_detected_and_localized () =
  let a = Lazy.force reference in
  let b = (record_on erratic_sku).Orchestrate.recording in
  let r = Debugcheck.compare_logs ~reference:a ~subject:b in
  check Alcotest.bool "not healthy" false (Debugcheck.healthy r);
  (match r.Debugcheck.first_divergence with
  | Some (Debugcheck.Value_differs { reg; reference; subject; _ }) ->
    check Alcotest.int "localized to SHADER_CONFIG" Regs.shader_config reg;
    check Alcotest.int64 "reference value" Sku.g71_mp8.Sku.quirk_shader_config reference;
    check Alcotest.int64 "erratic value" 0x42L subject
  | other ->
    Alcotest.failf "unexpected divergence: %s"
      (match other with
      | Some d -> Format.asprintf "%a" Debugcheck.pp_divergence d
      | None -> "none"));
  (* The offending register tops the histogram. *)
  match r.Debugcheck.divergent_regs with
  | (reg, _) :: _ -> check Alcotest.int "histogram top" Regs.shader_config reg
  | [] -> Alcotest.fail "no histogram"

let nondeterministic_registers_ignored () =
  (* Two record runs of the same device differ in LATEST_FLUSH_ID values
     (different session salts) — the comparison must not flag them. *)
  let a = Lazy.force reference in
  let b =
    (Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_md ~sku:Sku.g71_mp8 ~net:Zoo.mnist
       ~seed:78L ())
      .Orchestrate.recording
  in
  let r = Debugcheck.compare_logs ~reference:a ~subject:b in
  check Alcotest.bool "flush-id noise ignored" true (Debugcheck.healthy r)

let truncation_detected () =
  let a = Lazy.force reference in
  let b =
    { a with Recording.entries = Array.sub a.Recording.entries 0 (Array.length a.Recording.entries - 5) }
  in
  match (Debugcheck.compare_logs ~reference:a ~subject:b).Debugcheck.first_divergence with
  | Some (Debugcheck.Subject_truncated _) -> ()
  | _ -> Alcotest.fail "truncation not reported"

let extra_entries_detected () =
  let a = Lazy.force reference in
  let b = { a with Recording.entries = Array.append a.Recording.entries a.Recording.entries } in
  match (Debugcheck.compare_logs ~reference:a ~subject:b).Debugcheck.first_divergence with
  | Some (Debugcheck.Subject_longer { extra }) ->
    check Alcotest.int "counts extras" (Array.length a.Recording.entries) extra
  | _ -> Alcotest.fail "extra entries not reported"

let structure_divergence_detected () =
  let a = Lazy.force reference in
  let entries = Array.copy a.Recording.entries in
  (* Replace a mid-log entry with a different interaction kind. *)
  let idx = Array.length entries / 2 in
  entries.(idx) <- Recording.Wait_irq { line = 2 };
  let b = { a with Recording.entries } in
  match (Debugcheck.compare_logs ~reference:a ~subject:b).Debugcheck.first_divergence with
  | Some (Debugcheck.Structure_differs { index; _ }) ->
    check Alcotest.bool "at or before the patch" true (index <= idx)
  | other ->
    Alcotest.failf "expected structural divergence, got %s"
      (match other with
      | Some d -> Format.asprintf "%a" Debugcheck.pp_divergence d
      | None -> "none")

let report_renders () =
  let a = Lazy.force reference in
  let b = (record_on erratic_sku).Orchestrate.recording in
  let r = Debugcheck.compare_logs ~reference:a ~subject:b in
  let text = Format.asprintf "%a" Debugcheck.pp_report r in
  check Alcotest.bool "mentions divergence" true (String.length text > 20)

let () =
  Alcotest.run "grt_debugcheck"
    [
      ( "compare",
        [
          Alcotest.test_case "same device healthy" `Quick same_device_is_healthy;
          Alcotest.test_case "erratum localized" `Quick erratum_is_detected_and_localized;
          Alcotest.test_case "nondet ignored" `Quick nondeterministic_registers_ignored;
          Alcotest.test_case "truncation" `Quick truncation_detected;
          Alcotest.test_case "extra entries" `Quick extra_entries_detected;
          Alcotest.test_case "structural divergence" `Quick structure_divergence_detected;
          Alcotest.test_case "report renders" `Quick report_renders;
        ] );
    ]
