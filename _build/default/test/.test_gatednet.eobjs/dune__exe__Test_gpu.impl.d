test/test_gpu.ml: Alcotest Array Bytes Grt_gpu Grt_sim Grt_util Int64 List Printf QCheck2 QCheck_alcotest String
