test/test_monitor.ml: Alcotest Grt Grt_gpu Grt_sim Grt_tee
