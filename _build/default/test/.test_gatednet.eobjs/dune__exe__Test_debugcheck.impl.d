test/test_debugcheck.ml: Alcotest Array Format Grt Grt_gpu Grt_mlfw Grt_net Lazy String
