test/test_mlfw.ml: Alcotest Array Grt Grt_gpu Grt_mlfw Grt_runtime Grt_sim Hashtbl Int64 List Option Printf QCheck2 QCheck_alcotest
