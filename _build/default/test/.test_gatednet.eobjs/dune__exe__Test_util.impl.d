test/test_util.ml: Alcotest Bytes Char Format Grt_util Int32 Int64 List Option Printf QCheck2 QCheck_alcotest String
