test/test_replay.ml: Alcotest Array Bytes Grt Grt_gpu Grt_mlfw Grt_net Grt_sim Int64 Lazy List Printf String
