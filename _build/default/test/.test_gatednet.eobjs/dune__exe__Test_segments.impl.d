test/test_segments.ml: Alcotest Array Bytes Grt Grt_gpu Grt_mlfw Grt_net Grt_sim Lazy List Printf
