test/test_driver.ml: Alcotest Grt Grt_driver Grt_gpu Grt_sim Int64 List String
