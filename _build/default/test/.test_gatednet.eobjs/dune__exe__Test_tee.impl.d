test/test_tee.ml: Alcotest Bytes Char Grt_net Grt_sim Grt_tee List String
