test/test_cloudvm.mli:
