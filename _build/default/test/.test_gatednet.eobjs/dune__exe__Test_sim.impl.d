test/test_sim.ml: Alcotest Grt_sim Int64 List
