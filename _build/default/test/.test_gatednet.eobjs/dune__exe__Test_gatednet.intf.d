test/test_gatednet.mli:
