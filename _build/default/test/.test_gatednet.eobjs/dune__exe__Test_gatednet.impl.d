test/test_gatednet.ml: Alcotest Array Grt Grt_gpu Grt_mlfw Grt_net Grt_sim Int64 Lazy List Printf
