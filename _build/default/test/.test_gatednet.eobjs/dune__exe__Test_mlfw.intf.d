test/test_mlfw.mli:
