test/test_experiments.ml: Alcotest Grt Grt_mlfw Grt_net Lazy List Option
