test/test_tee.mli:
