test/test_cloudvm.ml: Alcotest Array Bytes Grt Grt_gpu Grt_mlfw Grt_net Grt_tee Int64 List
