test/test_watchdog.mli:
