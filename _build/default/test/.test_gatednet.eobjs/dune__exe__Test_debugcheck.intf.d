test/test_debugcheck.mli:
