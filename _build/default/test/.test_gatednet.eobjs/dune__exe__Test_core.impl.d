test/test_core.ml: Alcotest Array Bytes Char Fun Grt Grt_driver Grt_gpu Grt_net Grt_runtime Grt_sim Grt_tee Grt_util Int64 List Option QCheck2 QCheck_alcotest
