test/test_net.ml: Alcotest Bytes Char Grt_net Grt_sim Int64 List
