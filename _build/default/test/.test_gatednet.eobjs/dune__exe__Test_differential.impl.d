test/test_differential.ml: Alcotest Array Fun Grt Grt_driver Grt_gpu Grt_net Grt_sim Grt_util Int64 List Option QCheck2 QCheck_alcotest
