test/test_runtime.ml: Alcotest Array Grt Grt_driver Grt_gpu Grt_runtime Grt_sim Int64 List Option
