test/test_watchdog.ml: Alcotest Array Grt Grt_driver Grt_gpu Grt_mlfw Grt_net Grt_runtime Grt_sim List String
