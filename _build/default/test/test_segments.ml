(* Per-layer recording granularity (Figure 2, §2.3): recordings are a
   developer choice between one monolithic recording and one per NN layer;
   per-layer segments compose at replay time and must produce the same
   result. *)

module Orchestrate = Grt.Orchestrate
module Recording = Grt.Recording
module Replayer = Grt.Replayer
module Mode = Grt.Mode
module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo
module Runner = Grt_mlfw.Runner
module Profile = Grt_net.Profile
module Sku = Grt_gpu.Sku

let check = Alcotest.check

let sku = Sku.g71_mp8

let layered net =
  Orchestrate.record ~granularity:`Per_layer ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku ~net
    ~seed:42L ()

let mnist_layered = lazy (layered Zoo.mnist)

let plan = lazy (Network.expand Zoo.mnist)

let one_segment_per_layer () =
  let o = Lazy.force mnist_layered in
  let layers = Array.length Zoo.mnist.Network.nodes in
  check Alcotest.int "segment count = layer count" layers
    (List.length o.Orchestrate.segments)

let segments_individually_signed () =
  let o = Lazy.force mnist_layered in
  List.iteri
    (fun i blob ->
      match Recording.verify_and_parse ~key:Orchestrate.cloud_signing_key blob with
      | Ok seg ->
        check Alcotest.string
          (Printf.sprintf "segment %d names its layer" i)
          (Printf.sprintf "MNIST/layer%02d" i)
          seg.Recording.workload
      | Error e -> Alcotest.fail e)
    o.Orchestrate.segments;
  (* Tampering with one segment breaks only that segment. *)
  let blob = Bytes.copy (List.nth o.Orchestrate.segments 3) in
  Bytes.set blob 10 '\xFF';
  match Recording.verify_and_parse ~key:Orchestrate.cloud_signing_key blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered segment verified"

let segments_partition_the_log () =
  let o = Lazy.force mnist_layered in
  let total =
    List.fold_left
      (fun acc blob ->
        match Recording.verify_and_parse ~key:Orchestrate.cloud_signing_key blob with
        | Ok seg -> acc + Array.length seg.Recording.entries
        | Error e -> Alcotest.fail e)
      0 o.Orchestrate.segments
  in
  check Alcotest.int "no entry lost or duplicated"
    (Array.length o.Orchestrate.recording.Recording.entries)
    total

let composed_replay_matches_monolithic () =
  let o = Lazy.force mnist_layered in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:9L in
  let params = Runner.weight_values p ~seed:42L in
  let seg =
    Orchestrate.replay_segments ~sku ~blobs:o.Orchestrate.segments ~input ~params ~seed:5L ()
  in
  let mono =
    Orchestrate.replay_recording ~sku ~blob:o.Orchestrate.blob ~input ~params ~seed:5L ()
  in
  check Alcotest.bool "same output" true
    (seg.Orchestrate.r.Replayer.output = mono.Orchestrate.r.Replayer.output);
  (* And both equal native execution. *)
  let clock = Grt_sim.Clock.create () in
  let nat = Grt.Native.run_inference ~clock ~sku ~net:Zoo.mnist ~seed:42L ~input () in
  check Alcotest.bool "matches native" true
    (seg.Orchestrate.r.Replayer.output = nat.Grt.Native.output)

let composed_replay_fresh_inputs () =
  let o = Lazy.force mnist_layered in
  let p = Lazy.force plan in
  let params = Runner.weight_values p ~seed:42L in
  List.iter
    (fun seed ->
      let input = Runner.input_values p ~seed in
      let seg =
        Orchestrate.replay_segments ~sku ~blobs:o.Orchestrate.segments ~input ~params ~seed ()
      in
      let clock = Grt_sim.Clock.create () in
      let nat = Grt.Native.run_inference ~clock ~sku ~net:Zoo.mnist ~seed:42L ~input () in
      check Alcotest.bool
        (Printf.sprintf "seed %Ld" seed)
        true
        (seg.Orchestrate.r.Replayer.output = nat.Grt.Native.output))
    [ 100L; 101L ]

let segment_slots_are_scoped () =
  (* Layer 1 (the first conv) should declare its weight slot; the pool
     layers declare none. *)
  let o = Lazy.force mnist_layered in
  let seg i =
    match Recording.verify_and_parse ~key:Orchestrate.cloud_signing_key (List.nth o.Orchestrate.segments i) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "conv layer has w+b" 2 (List.length (Recording.param_slots (seg 1)));
  check Alcotest.int "pool layer has none" 0 (List.length (Recording.param_slots (seg 2)))

let missing_segment_rejected_or_diverges () =
  (* Dropping a middle segment must not silently produce a result: the GPU
     state no longer lines up, so the replayer reports divergence (or the
     result disagrees with native — never a silent pass). *)
  let o = Lazy.force mnist_layered in
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:9L in
  let params = Runner.weight_values p ~seed:42L in
  let blobs = List.filteri (fun i _ -> i <> 3) o.Orchestrate.segments in
  let clock = Grt_sim.Clock.create () in
  let nat = Grt.Native.run_inference ~clock ~sku ~net:Zoo.mnist ~seed:42L ~input () in
  match Orchestrate.replay_segments ~sku ~blobs ~input ~params ~seed:5L () with
  | exception Replayer.Divergence _ -> ()
  | exception Replayer.Rejected _ -> ()
  | out ->
    check Alcotest.bool "hole changes the result" false
      (out.Orchestrate.r.Replayer.output = nat.Grt.Native.output)

let monolithic_unaffected () =
  (* Default granularity still produces no segments. *)
  let o =
    Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku ~net:Zoo.mnist ~seed:42L ()
  in
  check Alcotest.int "no segments" 0 (List.length o.Orchestrate.segments)

let () =
  Alcotest.run "grt_segments"
    [
      ( "granularity",
        [
          Alcotest.test_case "one segment per layer" `Quick one_segment_per_layer;
          Alcotest.test_case "individually signed" `Quick segments_individually_signed;
          Alcotest.test_case "partition the log" `Quick segments_partition_the_log;
          Alcotest.test_case "slots scoped per layer" `Quick segment_slots_are_scoped;
          Alcotest.test_case "monolithic unaffected" `Quick monolithic_unaffected;
        ] );
      ( "composition",
        [
          Alcotest.test_case "composed replay = monolithic" `Quick
            composed_replay_matches_monolithic;
          Alcotest.test_case "fresh inputs" `Quick composed_replay_fresh_inputs;
          Alcotest.test_case "missing segment not silent" `Quick
            missing_segment_rejected_or_diverges;
        ] );
    ]
