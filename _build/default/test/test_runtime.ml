(* Tests for the userspace runtime: buffer allocation and mapping flags,
   the per-SKU JIT cache, chain building and submission. *)

module Session = Grt_runtime.Session
module Kbase = Grt_driver.Kbase
module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Sku = Grt_gpu.Sku
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Clock = Grt_sim.Clock

let check = Alcotest.check

let make_session ?(sku = Sku.g71_mp8) () =
  let clock = Clock.create () in
  let mem = Mem.create () in
  let dev = Device.create ~clock ~mem ~sku ~session_salt:3L () in
  let b = Grt.Native.backend dev in
  let drv = Kbase.create ~backend:b ~mem ~coherency_ace:true in
  Kbase.init drv;
  let regions = ref [] in
  let s = Session.create ~drv ~as_idx:1 ~clock ~on_region:(fun r -> regions := r :: !regions) () in
  (s, drv, mem, regions)

let session_detects_sku () =
  let s, _, _, _ = make_session ~sku:Sku.g52_mp4 () in
  check Alcotest.string "sku detected from GPU_ID" "Mali-G52 MP4" (Session.sku s).Sku.name

let session_alloc_flags () =
  let s, drv, _, _ = make_session () in
  ignore drv;
  let code = Session.alloc s ~name:"c" ~usage:Session.Code ~model_bytes:256 ~actual_bytes:256 in
  let w = Session.alloc s ~name:"w" ~usage:Session.Weights ~model_bytes:1024 ~actual_bytes:1024 in
  let out = Session.alloc s ~name:"o" ~usage:Session.Output ~model_bytes:64 ~actual_bytes:64 in
  check Alcotest.bool "distinct VAs" true (code.Session.va <> w.Session.va && w.Session.va <> out.Session.va);
  check Alcotest.bool "code region is metastate" true (Session.usage_is_metastate Session.Code);
  check Alcotest.bool "weights are data" false (Session.usage_is_metastate Session.Weights)

let session_mapping_permissions () =
  (* The GPU must be able to exec code pages but not weights — this is the
     permission-bit signal metastate detection keys on (§5). *)
  let s, drv, _, _ = make_session () in
  let code = Session.alloc s ~name:"c" ~usage:Session.Code ~model_bytes:128 ~actual_bytes:128 in
  let w = Session.alloc s ~name:"w" ~usage:Session.Weights ~model_bytes:128 ~actual_bytes:128 in
  ignore drv;
  (* Walk via a device-side view of the AS. *)
  let mem = Kbase.mem drv in
  let mmu_root =
    (* AS1 transtab was programmed during session creation; rebuild the view
       through the driver's own MMU object instead: map_region already
       flushed, so translate through a fresh of_root from the device. *)
    let dev_read = Device.read_reg in
    ignore dev_read;
    None
  in
  ignore mmu_root;
  (* simpler: use region PAs to verify data written via session is visible *)
  Session.write_floats s w [| 1.5 |];
  check (Alcotest.float 1e-9) "write_floats lands in memory" 1.5 (Mem.read_f32 mem w.Session.pa);
  check Alcotest.bool "code va in code window" true (Int64.compare code.Session.va 0x1000_0000L >= 0)

let session_two_scale_alloc () =
  let s, _, _, _ = make_session () in
  let big =
    Session.alloc s ~name:"big" ~usage:Session.Weights ~model_bytes:(48 * 1024 * 1024)
      ~actual_bytes:4096
  in
  check Alcotest.int "model bytes kept" (48 * 1024 * 1024) big.Session.model_bytes;
  check Alcotest.int "only a page materialized" 4096 big.Session.actual_bytes

let session_alloc_validation () =
  let s, _, _, _ = make_session () in
  Alcotest.check_raises "model < actual rejected"
    (Invalid_argument "Session.alloc: model smaller than materialized") (fun () ->
      ignore (Session.alloc s ~name:"x" ~usage:Session.Input ~model_bytes:16 ~actual_bytes:64))

let session_on_region_hook () =
  let s, _, _, regions = make_session () in
  ignore (Session.alloc s ~name:"a" ~usage:Session.Input ~model_bytes:64 ~actual_bytes:64);
  check Alcotest.bool "hook fired" true
    (List.exists (fun r -> r.Session.name = "a") !regions)

let session_jit_cache () =
  let s, _, _, _ = make_session () in
  let va1 = Session.shader_for s Shader.Conv2d in
  let va2 = Session.shader_for s Shader.Conv2d in
  let va3 = Session.shader_for s Shader.Fc in
  check Alcotest.int64 "cached" va1 va2;
  check Alcotest.bool "different ops differ" false (Int64.equal va1 va3);
  check Alcotest.int "two compilations" 2 (Session.jit_compiles s)

let session_jit_binds_to_sku () =
  let s, drv, mem, _ = make_session ~sku:Sku.g76_mp12 () in
  ignore drv;
  let va = Session.shader_for s Shader.Relu in
  let region = Option.get (Session.region_containing s ~va) in
  let hdr = Mem.read_bytes mem region.Session.pa Shader.header_size in
  match Shader.parse_header hdr with
  | Ok h -> check Alcotest.int64 "bound to running SKU" Sku.g76_mp12.Sku.gpu_id h.Shader.gpu_id
  | Error e -> Alcotest.fail e

let session_region_lookup () =
  let s, _, _, _ = make_session () in
  let r = Session.alloc s ~name:"buf" ~usage:Session.Scratch ~model_bytes:8192 ~actual_bytes:8192 in
  check Alcotest.bool "by name" true (Session.region_by_name s "buf" = Some r);
  check Alcotest.bool "containing middle va" true
    (Session.region_containing s ~va:(Int64.add r.Session.va 100L) = Some r);
  check Alcotest.bool "missing" true (Session.region_by_name s "nope" = None)

let session_build_and_submit_chain () =
  let s, _, mem, _ = make_session () in
  let input = Session.alloc s ~name:"in" ~usage:Session.Input ~model_bytes:64 ~actual_bytes:64 in
  let output = Session.alloc s ~name:"out" ~usage:Session.Output ~model_bytes:64 ~actual_bytes:64 in
  Session.write_floats s input [| -1.0; 7.0 |];
  let job =
    {
      Job_desc.op = Shader.Relu;
      shader_va = 0L;
      input_va = input.Session.va;
      input2_va = 0L;
      bias_va = 0L;
      output_va = output.Session.va;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 2;
          in_h = 1;
          in_w = 1;
          out_c = 2;
          out_h = 1;
          out_w = 1;
          flops_hint = 10L;
        };
      next_va = 0L;
    }
  in
  let chain_va = Session.build_chain s [ job ] in
  Session.submit s ~chain_va;
  let got = Session.read_floats s output 2 in
  check (Alcotest.float 1e-6) "relu(-1)" 0.0 got.(0);
  check (Alcotest.float 1e-6) "relu(7)" 7.0 got.(1);
  ignore mem

let session_chain_links_jobs () =
  let s, _, mem, _ = make_session () in
  let buf = Session.alloc s ~name:"b" ~usage:Session.Scratch ~model_bytes:256 ~actual_bytes:256 in
  let mk out_off =
    {
      Job_desc.op = Shader.Copy;
      shader_va = 0L;
      input_va = buf.Session.va;
      input2_va = 0L;
      bias_va = 0L;
      output_va = Int64.add buf.Session.va out_off;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 1;
          in_h = 1;
          in_w = 1;
          out_c = 1;
          out_h = 1;
          out_w = 1;
          flops_hint = 1L;
        };
      next_va = 0L;
    }
  in
  let chain_va = Session.build_chain s [ mk 16L; mk 32L; mk 48L ] in
  (* Verify the links by reading descriptors back from memory. *)
  let region = Option.get (Session.region_containing s ~va:chain_va) in
  let pa = Int64.add region.Session.pa (Int64.sub chain_va region.Session.va) in
  let rec count_chain pa n =
    match Job_desc.read mem ~pa with
    | Error e -> Alcotest.fail e
    | Ok d ->
      if Int64.equal d.Job_desc.next_va 0L then n + 1
      else
        let next_pa = Int64.add region.Session.pa (Int64.sub d.Job_desc.next_va region.Session.va) in
        count_chain next_pa (n + 1)
  in
  check Alcotest.int "three linked jobs" 3 (count_chain pa 0);
  (* Shader VAs were filled in from the JIT cache. *)
  match Job_desc.read mem ~pa with
  | Ok d -> check Alcotest.bool "shader bound" false (Int64.equal d.Job_desc.shader_va 0L)
  | Error e -> Alcotest.fail e

let session_empty_chain_rejected () =
  let s, _, _, _ = make_session () in
  Alcotest.check_raises "empty chain" (Invalid_argument "Session.build_chain: empty chain")
    (fun () -> ignore (Session.build_chain s []))

let () =
  Alcotest.run "grt_runtime"
    [
      ( "session",
        [
          Alcotest.test_case "detects SKU" `Quick session_detects_sku;
          Alcotest.test_case "alloc flags" `Quick session_alloc_flags;
          Alcotest.test_case "mapping + write_floats" `Quick session_mapping_permissions;
          Alcotest.test_case "two-scale alloc" `Quick session_two_scale_alloc;
          Alcotest.test_case "alloc validation" `Quick session_alloc_validation;
          Alcotest.test_case "on_region hook" `Quick session_on_region_hook;
          Alcotest.test_case "region lookup" `Quick session_region_lookup;
        ] );
      ( "jit",
        [
          Alcotest.test_case "cache" `Quick session_jit_cache;
          Alcotest.test_case "binds to SKU" `Quick session_jit_binds_to_sku;
        ] );
      ( "chains",
        [
          Alcotest.test_case "build and submit" `Quick session_build_and_submit_chain;
          Alcotest.test_case "links jobs" `Quick session_chain_links_jobs;
          Alcotest.test_case "empty rejected" `Quick session_empty_chain_rejected;
        ] );
    ]
