(* Recording granularity (Figure 2, §2.3): developers choose between one
   monolithic recording and one recording per NN layer, trading
   composability against (small) per-segment overhead.

     dune exec examples/layered_recording.exe

   The cloud cuts the interaction log at layer boundaries, signs each
   segment independently, and the TEE replays them back to back — each
   segment enclosing that layer's GPU jobs, intermediate activations
   flowing through GPU memory exactly as in the figure's timeline. *)

let () =
  let net = Grt_mlfw.Zoo.mnist in
  let sku = Grt_gpu.Sku.g71_mp8 in
  let plan = Grt_mlfw.Network.expand net in

  Printf.printf "recording %s with per-layer granularity...\n%!" net.Grt_mlfw.Network.name;
  let o =
    Grt.Orchestrate.record ~granularity:`Per_layer ~profile:Grt_net.Profile.wifi
      ~mode:Grt.Mode.Ours_mds ~sku ~net ~seed:2026L ()
  in
  Printf.printf "got %d signed segments (plus the monolithic recording, %s):\n\n"
    (List.length o.Grt.Orchestrate.segments)
    (Grt_util.Hexdump.size_to_string (Bytes.length o.Grt.Orchestrate.blob));

  Printf.printf "%-18s %10s %9s %8s\n" "segment" "size" "entries" "params";
  List.iter
    (fun blob ->
      match Grt.Recording.verify_and_parse ~key:Grt.Orchestrate.cloud_signing_key blob with
      | Ok seg ->
        Printf.printf "%-18s %10s %9d %8d\n" seg.Grt.Recording.workload
          (Grt_util.Hexdump.size_to_string (Bytes.length blob))
          (Array.length seg.Grt.Recording.entries)
          (List.length (Grt.Recording.param_slots seg))
      | Error e -> Printf.printf "  segment rejected: %s\n" e)
    o.Grt.Orchestrate.segments;

  (* Replay the segment chain on a fresh input, as in Figure 2's timeline. *)
  let input = Grt_mlfw.Runner.input_values plan ~seed:31L in
  let params = Grt_mlfw.Runner.weight_values plan ~seed:2026L in
  let seg_replay =
    Grt.Orchestrate.replay_segments ~sku ~blobs:o.Grt.Orchestrate.segments ~input ~params
      ~seed:1L ()
  in
  let mono_replay =
    Grt.Orchestrate.replay_recording ~sku ~blob:o.Grt.Orchestrate.blob ~input ~params ~seed:1L ()
  in
  Printf.printf
    "\nreplay (composed segments): %.2f ms\nreplay (monolithic):        %.2f ms\noutputs %s\n"
    (seg_replay.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3)
    (mono_replay.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3)
    (if seg_replay.Grt.Orchestrate.r.Grt.Replayer.output
        = mono_replay.Grt.Orchestrate.r.Grt.Replayer.output
     then "bit-identical"
     else "DIFFERENT (bug!)")
