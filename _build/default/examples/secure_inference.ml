(* Secure on-device inference, end to end: a video-analytics-style app that
   records SqueezeNet once and then serves many classification requests
   from inside the TEE.

     dune exec examples/secure_inference.exe

   Demonstrates the security story of §7.1 alongside performance:
   - the cloud VM is attested before any recording traffic flows;
   - the GPU is TZASC-locked to the secure world during record and replay,
     and a normal-world access attempt is denied;
   - the recording carries no model parameters (they never leave the TEE);
   - replayed results are bit-identical to insecure native execution while
     arriving faster. *)

let () =
  let net = Grt_mlfw.Zoo.squeezenet in
  let sku = Grt_gpu.Sku.g71_mp8 in
  let plan = Grt_mlfw.Network.expand net in
  Printf.printf "=== Secure %s inference on %s ===\n\n" net.Grt_mlfw.Network.name
    sku.Grt_gpu.Sku.name;

  (* -- recording, with the attested channel established inside -- *)
  let outcome =
    Grt.Orchestrate.record ~profile:Grt_net.Profile.cellular ~mode:Grt.Mode.Ours_mds ~sku ~net
      ~seed:99L ()
  in
  Printf.printf "recording: %.1f s over cellular, %.1f J of client energy, %d round trips\n"
    outcome.Grt.Orchestrate.total_s outcome.Grt.Orchestrate.client_energy_j
    outcome.Grt.Orchestrate.blocking_rtts;

  (* -- confidentiality: no parameter bytes in the recording -- *)
  let rec_t = outcome.Grt.Orchestrate.recording in
  let param_slots = Grt.Recording.param_slots rec_t in
  Printf.printf "recording declares %d parameter slots but ships 0 parameter bytes\n"
    (List.length param_slots);

  (* -- isolation: the normal world cannot touch the GPU mid-session -- *)
  let clock = Grt_sim.Clock.create () in
  let gpushim =
    Grt.Gpushim.create ~clock ~sku ~session_salt:1L
      ~cfg:(Grt.Mode.default_config Grt.Mode.Ours_mds) ()
  in
  Grt.Gpushim.isolate gpushim;
  (match
     Grt_tee.Worlds.check_access (Grt.Gpushim.worlds gpushim) Grt_tee.Worlds.Normal
       ~name:"gpu-mmio"
   with
  | () -> Printf.printf "!! normal world reached the GPU — isolation broken\n"
  | exception Grt_tee.Worlds.Access_denied _ ->
    Printf.printf "TZASC: normal-world GPU access denied while session active\n");
  Grt.Gpushim.release gpushim;

  (* -- serve a batch of requests from the TEE -- *)
  let params = Grt_mlfw.Runner.weight_values plan ~seed:99L in
  Printf.printf "\nserving 5 inference requests from the TEE:\n";
  let total_replay = ref 0.0 in
  for request = 1 to 5 do
    let input = Grt_mlfw.Runner.input_values plan ~seed:(Int64.of_int (1000 + request)) in
    let ro =
      Grt.Orchestrate.replay_recording ~sku ~blob:outcome.Grt.Orchestrate.blob ~input ~params
        ~seed:(Int64.of_int request) ()
    in
    let out = ro.Grt.Orchestrate.r.Grt.Replayer.output in
    let best = ref 0 in
    Array.iteri (fun i p -> if p > out.(!best) then best := i) out;
    total_replay := !total_replay +. ro.Grt.Orchestrate.r.Grt.Replayer.delay_s;
    Printf.printf "  request %d -> class %2d (%.1f%%) in %.1f ms\n" request !best
      (100. *. out.(!best))
      (ro.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3)
  done;

  (* -- compare against the insecure native baseline -- *)
  let input = Grt_mlfw.Runner.input_values plan ~seed:1001L in
  let clock2 = Grt_sim.Clock.create () in
  let nat = Grt.Native.run_inference ~clock:clock2 ~sku ~net ~seed:99L ~input () in
  let ro =
    Grt.Orchestrate.replay_recording ~sku ~blob:outcome.Grt.Orchestrate.blob ~input ~params
      ~seed:9L ()
  in
  let identical = ro.Grt.Orchestrate.r.Grt.Replayer.output = nat.Grt.Native.output in
  Printf.printf "\nreplay vs native (insecure): %.1f ms vs %.1f ms, outputs %s\n"
    (ro.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3)
    (nat.Grt.Native.delay_s *. 1e3)
    (if identical then "bit-identical" else "DIFFERENT (bug!)");
  Printf.printf "avg replay latency over 5 requests: %.1f ms\n" (!total_replay /. 5.0 *. 1e3)
