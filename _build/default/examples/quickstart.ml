(* Quickstart: record an MNIST inference once with the cloud service, then
   replay it inside the client TEE on a fresh input.

     dune exec examples/quickstart.exe

   This is the paper's headline workflow (§3.1): the developer ships a
   hardware-neutral workload; the client TEE asks the cloud to dry-run the
   GPU stack against the client's own GPU; afterwards the TEE replays the
   signed recording locally, with no GPU stack and no network. *)

let () =
  let net = Grt_mlfw.Zoo.mnist in
  let sku = Grt_gpu.Sku.g71_mp8 in
  Printf.printf "Workload: %s inference (%d GPU jobs)\nClient GPU: %s\n\n" net.Grt_mlfw.Network.name
    (Grt_mlfw.Network.job_count net) sku.Grt_gpu.Sku.name;

  (* 1. Record once: the cloud dry-runs the GPU stack over WiFi while the
     client TEE executes the register accesses on the real GPU. *)
  Printf.printf "[1/3] recording over %s...\n%!"
    (Format.asprintf "%a" Grt_net.Profile.pp Grt_net.Profile.wifi);
  let outcome =
    Grt.Orchestrate.record ~profile:Grt_net.Profile.wifi ~mode:Grt.Mode.Ours_mds ~sku ~net
      ~seed:2026L ()
  in
  Printf.printf "      done in %.1f s (virtual), %d blocking round trips, %s recording\n\n"
    outcome.Grt.Orchestrate.total_s outcome.Grt.Orchestrate.blocking_rtts
    (Grt_util.Hexdump.size_to_string (Bytes.length outcome.Grt.Orchestrate.blob));

  (* 2. The app supplies model parameters and a fresh input inside the TEE —
     neither ever reached the cloud. *)
  let plan = Grt_mlfw.Network.expand net in
  let params = Grt_mlfw.Runner.weight_values plan ~seed:2026L in
  let input = Grt_mlfw.Runner.input_values plan ~seed:7L in
  Printf.printf "[2/3] injecting %d parameter tensors and a fresh 28x28 input in the TEE\n\n"
    (List.length params);

  (* 3. Replay: no cloud, no GPU stack — just the recording and the GPU. *)
  let ro =
    Grt.Orchestrate.replay_recording ~sku ~blob:outcome.Grt.Orchestrate.blob ~input ~params
      ~seed:1L ()
  in
  let out = ro.Grt.Orchestrate.r.Grt.Replayer.output in
  Printf.printf "[3/3] replayed in %.2f ms — class probabilities:\n"
    (ro.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3);
  Array.iteri (fun i p -> Printf.printf "      class %d: %5.1f%%\n" i (100. *. p)) out;
  let best = ref 0 in
  Array.iteri (fun i p -> if p > out.(!best) then best := i) out;
  Printf.printf "\npredicted class: %d\n" !best
