(* The SKU problem (§2.4) made concrete: one hardware-neutral workload,
   several client GPU models.

     dune exec examples/sku_matrix.exe

   For each SKU in the catalog, the cloud service dry-runs the same MNIST
   workload against that client's GPU; the JIT emits SKU-specific shaders
   (different tiling, different binaries), the recording binds to the SKU
   identity, and replaying a recording on any *other* SKU is rejected —
   which is precisely why the paper's online recording architecture is
   needed: nobody can pre-record for 80 SKUs they do not own. *)

let () =
  let net = Grt_mlfw.Zoo.mnist in
  let plan = Grt_mlfw.Network.expand net in
  let input = Grt_mlfw.Runner.input_values plan ~seed:5L in
  let params = Grt_mlfw.Runner.weight_values plan ~seed:5L in

  Printf.printf "recording %s on every SKU in the catalog:\n\n" net.Grt_mlfw.Network.name;
  Printf.printf "%-16s %10s %10s %12s %10s\n" "SKU" "record(s)" "RTTs" "recording" "replay(ms)";
  let recordings =
    List.map
      (fun sku ->
        let o =
          Grt.Orchestrate.record ~profile:Grt_net.Profile.wifi ~mode:Grt.Mode.Ours_mds ~sku ~net
            ~seed:5L ()
        in
        let ro =
          Grt.Orchestrate.replay_recording ~sku ~blob:o.Grt.Orchestrate.blob ~input ~params
            ~seed:1L ()
        in
        Printf.printf "%-16s %10.1f %10d %12s %10.2f\n" sku.Grt_gpu.Sku.name
          o.Grt.Orchestrate.total_s o.Grt.Orchestrate.blocking_rtts
          (Grt_util.Hexdump.size_to_string (Bytes.length o.Grt.Orchestrate.blob))
          (ro.Grt.Orchestrate.r.Grt.Replayer.delay_s *. 1e3);
        (sku, o.Grt.Orchestrate.blob))
      Grt_gpu.Sku.all
  in

  (* Shader binaries really differ per SKU. *)
  let bin sku = Grt_gpu.Shader.compile ~sku ~op:Grt_gpu.Shader.Conv2d in
  Printf.printf "\nconv2d shader: %d bytes on G31 MP2, %d bytes on G76 MP12 (tile %d vs %d)\n"
    (Bytes.length (bin Grt_gpu.Sku.g31_mp2))
    (Bytes.length (bin Grt_gpu.Sku.g76_mp12))
    (Grt_gpu.Shader.tile_size Grt_gpu.Sku.g31_mp2)
    (Grt_gpu.Shader.tile_size Grt_gpu.Sku.g76_mp12);

  (* Cross-replay matrix: every off-diagonal cell must be rejected. *)
  let short_name sku =
    match String.split_on_char ' ' sku.Grt_gpu.Sku.name with
    | full :: _ -> (match String.split_on_char '-' full with [ _; g ] -> g | _ -> full)
    | [] -> sku.Grt_gpu.Sku.name
  in
  Printf.printf "\ncross-SKU replay matrix (rows: recorded on, cols: replayed on):\n\n%-16s" "";
  List.iter (fun s -> Printf.printf " %-9s" (short_name s)) Grt_gpu.Sku.all;
  print_newline ();
  List.iter
    (fun (rec_sku, blob) ->
      Printf.printf "%-16s" rec_sku.Grt_gpu.Sku.name;
      List.iter
        (fun replay_sku ->
          let cell =
            match
              Grt.Orchestrate.replay_recording ~sku:replay_sku ~blob ~input ~params ~seed:2L ()
            with
            | _ -> "ok"
            | exception Grt.Replayer.Rejected _ -> "rejected"
            | exception Grt.Replayer.Divergence _ -> "diverged"
          in
          Printf.printf " %-9s" cell)
        Grt_gpu.Sku.all;
      print_newline ())
    recordings;
  Printf.printf
    "\nonly the diagonal replays: recordings are bound to the exact GPU model (§2.4).\n"
