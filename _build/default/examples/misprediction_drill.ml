(* Misprediction drill (§4.2, §7.3): what happens when speculation goes
   wrong mid-recording.

     dune exec examples/misprediction_drill.exe

   The drill warms the speculation history with clean runs, then poisons
   one register-read response during a fresh record run. GR-T must detect
   the mismatch when the commit validates, roll both parties back (replaying
   the validated interaction log locally, no network), fast-forward and
   finish — and the resulting recording must still replay bit-correctly. *)

let () =
  let sku = Grt_gpu.Sku.g71_mp8 in
  let profile = Grt_net.Profile.wifi in
  List.iter
    (fun (net, inject_at) ->
      Printf.printf "=== %s ===\n" net.Grt_mlfw.Network.name;
      let history = Grt.Drivershim.fresh_history () in
      (* Warm runs: build up k=3 confidence at the recurring commit sites. *)
      Printf.printf "warming speculation history";
      let clean = ref 0.0 in
      for _ = 1 to 2 do
        let o = Grt.Orchestrate.record ~history ~profile ~mode:Grt.Mode.Ours_mds ~sku ~net ~seed:1L () in
        clean := o.Grt.Orchestrate.total_s;
        print_char '.'
      done;
      Printf.printf " done (clean run: %.1f s, no rollbacks)\n" !clean;

      (* Poisoned run. *)
      let o =
        Grt.Orchestrate.record ~history ~inject_fault_after:inject_at ~profile
          ~mode:Grt.Mode.Ours_mds ~sku ~net ~seed:2L ()
      in
      Printf.printf
        "injected a wrong register value after %d speculated commits:\n\
        \  detected:   %s\n\
        \  rollbacks:  %d\n\
        \  recovery:   %.2f s (driver reload + job re-preparation, no network)\n\
        \  total:      %.1f s (vs %.1f s clean)\n"
        inject_at
        (if o.Grt.Orchestrate.rollbacks > 0 then "yes" else "NO (bug!)")
        o.Grt.Orchestrate.rollbacks o.Grt.Orchestrate.rollback_s o.Grt.Orchestrate.total_s !clean;

      (* Prove the recovered recording is still correct. *)
      let plan = Grt_mlfw.Network.expand net in
      let input = Grt_mlfw.Runner.input_values plan ~seed:3L in
      let params = Grt_mlfw.Runner.weight_values plan ~seed:2L in
      let ro =
        Grt.Orchestrate.replay_recording ~sku ~blob:o.Grt.Orchestrate.blob ~input ~params
          ~seed:3L ()
      in
      let clock = Grt_sim.Clock.create () in
      let nat = Grt.Native.run_inference ~clock ~sku ~net ~seed:2L ~input () in
      Printf.printf "  post-recovery recording replays %s\n\n"
        (if ro.Grt.Orchestrate.r.Grt.Replayer.output = nat.Grt.Native.output then
           "bit-identically to native"
         else "WRONG (bug!)"))
    [ (Grt_mlfw.Zoo.mnist, 150); (Grt_mlfw.Zoo.vgg16, 1500) ]
