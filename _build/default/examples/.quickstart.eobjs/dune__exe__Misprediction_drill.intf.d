examples/misprediction_drill.mli:
