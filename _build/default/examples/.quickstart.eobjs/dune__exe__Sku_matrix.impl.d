examples/sku_matrix.ml: Bytes Grt Grt_gpu Grt_mlfw Grt_net Grt_util List Printf String
