examples/quickstart.mli:
