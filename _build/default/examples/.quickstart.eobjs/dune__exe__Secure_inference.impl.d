examples/secure_inference.ml: Array Grt Grt_gpu Grt_mlfw Grt_net Grt_sim Grt_tee Int64 List Printf
