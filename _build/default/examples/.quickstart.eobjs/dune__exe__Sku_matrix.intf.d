examples/sku_matrix.mli:
